package writecache

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lsvd/internal/block"
	"lsvd/internal/simdev"
)

// Property: for any committed sequence of writes, a crash that loses
// all unflushed device state followed by recovery yields exactly the
// committed state — every committed write readable, in overwrite
// order.
func TestQuickCommittedWritesSurviveCrash(t *testing.T) {
	type wr struct {
		LBA uint16
		N   uint8
	}
	f := func(ops []wr, seed int64) bool {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		dev := simdev.NewMem(64 * block.MiB)
		c, err := Format(dev, Config{CheckpointEvery: 1 << 30})
		if err != nil {
			return false
		}
		// Sector-granular mirror of what was written.
		mirror := map[block.LBA]byte{}
		rng := rand.New(rand.NewSource(seed))
		for i, o := range ops {
			e := block.Extent{LBA: block.LBA(o.LBA % 4096), Sectors: uint32(o.N%16) + 1}
			fill := byte(rng.Intn(255) + 1)
			data := bytes.Repeat([]byte{fill}, int(e.Bytes()))
			if err := c.Append(uint64(i+1), e, data); err != nil {
				return false
			}
			for s := block.LBA(0); s < block.LBA(e.Sectors); s++ {
				mirror[e.LBA+s] = fill
			}
		}
		if err := c.Flush(); err != nil {
			return false
		}
		dev.Crash(1.0, rng)
		c2, err := Open(dev, Config{})
		if err != nil {
			return false
		}
		// Every mirrored sector reads back with the right fill.
		for lba, fill := range mirror {
			e := block.Extent{LBA: lba, Sectors: 1}
			runs := c2.Lookup(e)
			if len(runs) != 1 || !runs[0].Present {
				return false
			}
			buf := make([]byte, block.SectorSize)
			if err := c2.ReadAt(runs[0].Target, buf); err != nil {
				return false
			}
			if buf[0] != fill {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: recovery never yields a sequence gap — MaxWriteSeq after a
// partial-loss crash equals the length of the surviving record prefix.
func TestQuickRecoveryIsPrefix(t *testing.T) {
	f := func(nWrites uint8, lossPct uint8, seed int64) bool {
		n := int(nWrites%30) + 5
		dev := simdev.NewMem(64 * block.MiB)
		c, err := Format(dev, Config{CheckpointEvery: 1 << 30})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			e := block.Extent{LBA: block.LBA(i * 64), Sectors: 8}
			if err := c.Append(uint64(i+1), e, make([]byte, e.Bytes())); err != nil {
				return false
			}
		}
		rng := rand.New(rand.NewSource(seed))
		dev.Crash(float64(lossPct%100)/100, rng)
		c2, err := Open(dev, Config{})
		if err != nil {
			return false
		}
		k := c2.MaxWriteSeq()
		if k > uint64(n) {
			return false
		}
		// All writes <= k must be present in the map.
		for i := uint64(1); i <= k; i++ {
			e := block.Extent{LBA: block.LBA((i - 1) * 64), Sectors: 8}
			runs := c2.Lookup(e)
			if len(runs) != 1 || !runs[0].Present {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
