package core

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentIO hammers one disk from multiple goroutines; run
// under -race this validates the locking across all three layers.
// Each goroutine owns a disjoint region, so contents are checkable.
func TestConcurrentIO(t *testing.T) {
	h := newHarness(t, func(o *Options) { o.BatchBytes = 256 * 1024 })
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g) * (8 << 20)
			buf := payload(int64(g), 16*1024)
			rd := make([]byte, len(buf))
			for i := 0; i < 60; i++ {
				off := base + int64(i%16)*16*1024
				if err := h.disk.WriteAt(buf, off); err != nil {
					errs <- err
					return
				}
				if i%10 == 9 {
					if err := h.disk.Flush(); err != nil {
						errs <- err
						return
					}
				}
				if err := h.disk.ReadAt(rd, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(rd, buf) {
					t.Errorf("worker %d: read mismatch at %d", g, off)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Everything still consistent after a drain + reopen.
	h.disk.Drain()
	h.disk.Close()
	h.reopen(t)
	for g := 0; g < workers; g++ {
		buf := payload(int64(g), 16*1024)
		rd := make([]byte, len(buf))
		if err := h.disk.ReadAt(rd, int64(g)*(8<<20)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rd, buf) {
			t.Fatalf("worker %d region corrupted after reopen", g)
		}
	}
}
