package consistency

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/core"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

// GC torture: the concurrent-writer workload with the paced background
// GC service deliberately kept busy (low-water raised to 0.95, so any
// overwrite garbage wakes it) while the backend injects faults and the
// main goroutine kills the disk mid-pass. On top of the per-writer
// prefix-consistency audit this asserts what the GC must never break:
// the utilization accounting stays exact across aborted passes,
// crash-orphaned GC objects, and the open-time deferred-delete resweep.
func TestGCTorture(t *testing.T) {
	seed := envInt("LSVD_FAULT_SEED", 1)
	iters := envInt("LSVD_FAULT_ITERS", 12)
	if testing.Short() && iters > 4 {
		iters = 4
	}
	baseGoroutines := runtime.NumGoroutine()
	for it := int64(0); it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("seed=%d", seed+it), func(t *testing.T) {
			gcTortureIteration(t, seed+it)
		})
		if t.Failed() {
			break
		}
	}
	waitGoroutines(t, baseGoroutines)
}

func gcTortureIteration(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x67635f74))
	store := objstore.NewFaulty(objstore.NewMem())
	cache := simdev.NewMem(32 * block.MiB)
	opts := core.Options{
		Volume: "vol", Store: store, CacheDev: cache,
		VolBytes: 16 * block.MiB, BatchBytes: 128 << 10,
		CheckpointEvery: 4, UploadDepth: 2, DestageQueueDepth: 32,
		// Keep the service hungry: almost any garbage pulls utilization
		// under the low-water mark, so passes overlap the writers, the
		// faults and the Kill.
		GCLowWater: 0.95, GCHighWater: 0.98, GCWAFTarget: 2.0,
		Retry: objstore.RetryPolicy{
			MaxAttempts: 16,
			BaseDelay:   50 * time.Microsecond,
			MaxDelay:    time.Millisecond,
			Seed:        seed,
		},
	}
	disk, err := core.Create(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	store.Arm(objstore.FaultConfig{
		Seed:       seed,
		Rates:      objstore.UniformRates(cwFaultRate),
		TornWrites: true,
	})
	defer store.Disarm()

	writers := make([]*cwWriter, cwWriters)
	var wg sync.WaitGroup
	for g := 0; g < cwWriters; g++ {
		w := &cwWriter{gid: g, base: int64(g) * cwSpan}
		writers[g] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(disk, seed*int64(cwWriters)+int64(w.gid))
		}()
	}
	time.Sleep(time.Duration(2+rng.Intn(7)) * time.Millisecond)
	disk.Kill()
	wg.Wait()
	for _, w := range writers {
		if w.err != nil {
			t.Fatalf("writer %d failed outside the fault model: %v", w.gid, w.err)
		}
	}

	cacheSurvives := rng.Intn(2) == 0
	if !cacheSurvives {
		opts.CacheDev = simdev.NewMem(32 * block.MiB)
	}
	disk2, err := openWithRetry(t, opts)
	if err != nil {
		t.Fatalf("recovery failed (cacheSurvives=%v): %v", cacheSurvives, err)
	}
	for _, w := range writers {
		if err := w.check(disk2, cacheSurvives); err != nil {
			t.Error(err)
			store.Disarm()
			dumpObjects(t, store, w.base, w.base+cwSpan)
		}
	}
	// The counters the GC steers by must match a from-scratch recompute
	// right after recovery — a drift here is exactly the class of bug an
	// aborted pass or a half-done deferred delete used to leave behind.
	if err := disk2.Backend().AuditUtilization(); err != nil {
		t.Errorf("utilization drift after recovery: %v", err)
	}

	// The recovered disk must keep working with the service running:
	// stamped overwrites per range (fresh garbage for the GC), a
	// barrier, a read-back, and a second accounting audit.
	for _, w := range writers {
		seq := uint64(len(w.ops)) + 1
		buf := make([]byte, block.BlockSize)
		stampBlock(buf, cwStamp(w.gid, seq), w.base)
		if err := disk2.WriteAt(buf, w.base*block.BlockSize); err != nil {
			if errors.Is(err, objstore.ErrInjected) {
				store.Disarm()
				_ = disk2.Close()
				return // legal crash point; this iteration ends here
			}
			t.Fatalf("post-recovery write (writer %d): %v", w.gid, err)
		}
	}
	if err := disk2.Flush(); err != nil && !errors.Is(err, objstore.ErrInjected) {
		t.Fatalf("post-recovery barrier: %v", err)
	}
	for _, w := range writers {
		buf := make([]byte, block.BlockSize)
		if err := disk2.ReadAt(buf, w.base*block.BlockSize); err != nil {
			t.Fatalf("post-recovery read (writer %d): %v", w.gid, err)
		}
		v, idx, ok := readStamp(buf)
		if gid, seq := cwDecode(v); !ok || gid != w.gid || idx != w.base || seq != uint64(len(w.ops))+1 {
			t.Fatalf("post-recovery read-back (writer %d): got stamp ok=%v v=%d idx=%d", w.gid, ok, v, idx)
		}
	}
	if err := disk2.Backend().AuditUtilization(); err != nil {
		t.Errorf("utilization drift under post-recovery GC: %v", err)
	}
	st := disk2.Backend().Stats()
	t.Logf("post-recovery gc: runs=%d victims=%d copied=%d yields=%d util=%.3f",
		st.GCRuns, st.GCVictims, st.GCBytesCopied, st.GCYields, disk2.Backend().Utilization())

	store.Disarm() // let Close drain without injected failures
	if err := disk2.Close(); err != nil {
		t.Logf("close after GC torture: %v", err)
	}
}
