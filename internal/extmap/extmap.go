// Package extmap implements the in-memory extent map used by every
// LSVD translation layer (paper §3.1, §3.7): an ordered map from
// virtual-disk sector ranges to locations, where a location is either a
// physical SSD address (write cache, read cache) or an
// (object, offset) pair (block store).
//
// The map is stored as a two-level B+-tree-like structure: a sorted
// sequence of chunks, each holding up to chunkMax sorted,
// non-overlapping extents. Entries cost 24 bytes, matching the paper's
// revised B+-tree figure (§3.7). Updates split and trim overlapping
// extents, report what they displaced (so the block store can maintain
// per-object live-data counters for garbage collection), and merge
// adjacent extents whose targets are contiguous.
package extmap

import (
	"encoding/binary"
	"fmt"
	"sort"

	"lsvd/internal/block"
)

// Target is the value side of a mapping. For the block store, Obj is
// the backend object sequence number and Off the sector offset of the
// data within that object. For SSD caches, Obj carries the slab or
// generation number (zero if unused) and Off the physical SSD sector.
type Target struct {
	Obj uint32
	Off block.LBA
}

// Shift returns the target advanced by d sectors, used when an extent
// is split.
func (t Target) Shift(d block.LBA) Target { return Target{Obj: t.Obj, Off: t.Off + d} }

// Contiguous reports whether o continues t after sectors n.
func (t Target) Contiguous(n uint32, o Target) bool {
	return t.Obj == o.Obj && t.Off+block.LBA(n) == o.Off
}

func (t Target) String() string { return fmt.Sprintf("%d@%d", t.Obj, t.Off) }

// Run is a mapped (or unmapped) portion of the virtual address space
// returned by lookups and updates.
type Run struct {
	block.Extent
	Target  Target
	Present bool
}

type entry struct {
	start   block.LBA
	sectors uint32
	tgt     Target
}

func (e entry) end() block.LBA    { return e.start + block.LBA(e.sectors) }
func (e entry) ext() block.Extent { return block.Extent{LBA: e.start, Sectors: e.sectors} }
func (e entry) run() Run          { return Run{Extent: e.ext(), Target: e.tgt, Present: true} }
func (e entry) shift(d block.LBA) entry {
	return entry{start: e.start + d, sectors: e.sectors - uint32(d), tgt: e.tgt.Shift(d)}
}

const (
	chunkMax    = 256 // split threshold
	chunkTarget = 128 // size of freshly built chunks
)

// Map is an ordered extent map. The zero value is not usable; call New.
// Map is not safe for concurrent use; callers hold their own locks
// (the LSVD layers each guard their map with the layer lock).
type Map struct {
	chunks [][]entry // non-empty, globally sorted, non-overlapping
	count  int
	mapped uint64 // total mapped sectors
}

// New returns an empty extent map.
func New() *Map { return &Map{} }

// Len returns the number of extents in the map.
func (m *Map) Len() int { return m.count }

// MappedSectors returns the total number of mapped sectors.
func (m *Map) MappedSectors() uint64 { return m.mapped }

// chunkFor returns the index of the chunk that could contain an entry
// overlapping lba: the last chunk whose first entry starts at or before
// lba, or 0.
func (m *Map) chunkFor(lba block.LBA) int {
	i := sort.Search(len(m.chunks), func(i int) bool {
		return m.chunks[i][0].start > lba
	})
	if i > 0 {
		i--
	}
	return i
}

// Update maps ext to t, displacing any overlapping mappings, which are
// returned (in order) so callers can account for invalidated data.
func (m *Map) Update(ext block.Extent, t Target) []Run {
	return m.mutate(ext, t, true, nil)
}

// UpdateExisting remaps only the portions of ext that are currently
// mapped and accepted by pred; holes stay holes. This is the operation
// the garbage collector needs: data is moved only where the map still
// points at the copied source, and ranges trimmed in the meantime are
// not resurrected (DESIGN.md §6).
func (m *Map) UpdateExisting(ext block.Extent, t Target, pred func(Run) bool) []Run {
	if pred == nil {
		pred = func(Run) bool { return true }
	}
	return m.mutateNoFill(ext, t, pred)
}

// UpdateIf maps ext to t but only over portions where pred accepts the
// existing mapping (holes always accept). Portions whose existing
// mapping is rejected are left untouched. Displaced runs are returned.
// This implements the conditional update needed when garbage collection
// races with fresh writes (DESIGN.md §6).
func (m *Map) UpdateIf(ext block.Extent, t Target, pred func(Run) bool) []Run {
	return m.mutate(ext, t, true, pred)
}

// Delete removes all mappings within ext (TRIM), returning them.
func (m *Map) Delete(ext block.Extent) []Run {
	return m.mutate(ext, Target{}, false, nil)
}

// DeleteIf removes mappings within ext whose existing Run is accepted
// by pred, leaving the rest in place; used by the caches to drop map
// entries that still point into a reclaimed log region.
func (m *Map) DeleteIf(ext block.Extent, pred func(Run) bool) []Run {
	return m.mutate(ext, Target{}, false, pred)
}

// mutate is the shared update/delete engine. Within ext it walks the
// existing coverage in order; overlapped portions accepted by pred are
// displaced (returned) and, when hasNew, re-covered by the new target;
// rejected portions are preserved. Partially overlapped extents are
// split, and the result is re-merged with its neighbours.
func (m *Map) mutate(ext block.Extent, t Target, hasNew bool, pred func(Run) bool) []Run {
	return m.mutateFull(ext, t, hasNew, true, pred)
}

// mutateNoFill is mutate but leaves unmapped holes unmapped.
func (m *Map) mutateNoFill(ext block.Extent, t Target, pred func(Run) bool) []Run {
	return m.mutateFull(ext, t, true, false, pred)
}

func (m *Map) mutateFull(ext block.Extent, t Target, hasNew, fillHoles bool, pred func(Run) bool) []Run {
	if ext.Empty() {
		return nil
	}
	c0, i0, c1, i1 := m.affected(ext)
	var displaced []Run
	var repl []entry

	// newRun tracks the pending new-target fragment being assembled.
	newStart, newEnd := block.LBA(0), block.LBA(0)
	haveFrag := false
	flushNew := func() {
		if haveFrag && hasNew {
			d := newStart - ext.LBA
			appendMerged(&repl, entry{start: newStart, sectors: uint32(newEnd - newStart), tgt: t.Shift(d)})
		}
		haveFrag = false
	}
	coverNew := func(lo, hi block.LBA) {
		if lo >= hi {
			return
		}
		if haveFrag && newEnd == lo {
			newEnd = hi
			return
		}
		flushNew()
		newStart, newEnd, haveFrag = lo, hi, true
	}

	cursor := ext.LBA
	m.forRange(c0, i0, c1, i1, func(e entry) {
		// Hole before this entry (within ext).
		if e.start > cursor && fillHoles {
			coverNew(cursor, min(e.start, ext.End()))
		}
		ov, ok := e.ext().Intersect(ext)
		if !ok {
			// Entirely outside ext (can only be the boundary entries).
			appendMerged(&repl, e)
			return
		}
		// Left remainder.
		if e.start < ov.LBA {
			left := e
			left.sectors = uint32(ov.LBA - e.start)
			flushNew()
			appendMerged(&repl, left)
		}
		mid := e.shift(ov.LBA - e.start)
		mid.sectors = ov.Sectors
		if pred == nil || pred(mid.run()) {
			displaced = append(displaced, mid.run())
			coverNew(ov.LBA, ov.End())
		} else {
			flushNew()
			appendMerged(&repl, mid)
		}
		// Right remainder.
		if e.end() > ov.End() {
			right := e.shift(ov.End() - e.start)
			flushNew()
			appendMerged(&repl, right)
		}
		if ov.End() > cursor {
			cursor = ov.End()
		}
	})
	// Trailing hole.
	if cursor < ext.End() && fillHoles {
		coverNew(cursor, ext.End())
	}
	flushNew()

	m.splice(c0, i0, c1, i1, repl)
	return displaced
}

// affected locates the half-open global range [ (c0,i0), (c1,i1) ) of
// entries that must be examined for ext: all entries overlapping it,
// extended to include the entry immediately before if it overlaps.
func (m *Map) affected(ext block.Extent) (c0, i0, c1, i1 int) {
	if len(m.chunks) == 0 {
		return 0, 0, 0, 0
	}
	// First entry with end > ext.LBA.
	c0 = m.chunkFor(ext.LBA)
	ch := m.chunks[c0]
	i0 = sort.Search(len(ch), func(i int) bool { return ch[i].end() > ext.LBA })
	if i0 == len(ch) {
		c0++
		i0 = 0
		if c0 == len(m.chunks) {
			return c0, 0, c0, 0
		}
	}
	// First entry with start >= ext.End() at or after (c0,i0).
	c1, i1 = c0, i0
	for c1 < len(m.chunks) {
		ch := m.chunks[c1]
		j := sort.Search(len(ch)-i1, func(i int) bool { return ch[i1+i].start >= ext.End() })
		i1 += j
		if i1 < len(ch) {
			break
		}
		c1++
		i1 = 0
	}
	return
}

// forRange calls fn for each entry in the global range, in order.
func (m *Map) forRange(c0, i0, c1, i1 int, fn func(entry)) {
	for c := c0; c <= c1 && c < len(m.chunks); c++ {
		ch := m.chunks[c]
		lo, hi := 0, len(ch)
		if c == c0 {
			lo = i0
		}
		if c == c1 {
			hi = i1
		}
		for _, e := range ch[lo:hi] {
			fn(e)
		}
	}
}

// splice replaces the global entry range with repl, then re-balances
// the touched chunks and merges across the boundaries.
func (m *Map) splice(c0, i0, c1, i1 int, repl []entry) {
	// Pull in the entry before the range and after the range so that
	// boundary merging happens naturally inside repl.
	type edge struct{ c, i int }
	pre := edge{c0, i0 - 1}
	if i0 == 0 {
		pre = edge{c0 - 1, -1}
		if pre.c >= 0 {
			pre.i = len(m.chunks[pre.c]) - 1
		}
	}
	hasPre := pre.c >= 0 && pre.i >= 0
	hasPost := c1 < len(m.chunks) && i1 < len(m.chunks[c1])

	var merged []entry
	if hasPre {
		merged = append(merged, m.chunks[pre.c][pre.i])
	}
	for _, e := range repl {
		appendMerged(&merged, e)
	}
	if hasPost {
		appendMerged(&merged, m.chunks[c1][i1])
	}

	// Build the replacement chunk list for chunks [firstC, lastC].
	firstC, firstI := c0, i0
	if hasPre {
		firstC, firstI = pre.c, pre.i
	}
	lastC, lastI := c1, i1 // exclusive end adjusted to include post entry
	if hasPost {
		lastI = i1 + 1
	}
	var flat []entry
	if firstC < len(m.chunks) {
		flat = append(flat, m.chunks[firstC][:firstI]...)
	}
	flat = append(flat, merged...)
	if lastC < len(m.chunks) {
		flat = append(flat, m.chunks[lastC][lastI:]...)
	}

	endC := lastC
	if endC >= len(m.chunks) {
		endC = len(m.chunks) - 1
	}
	// Incremental counter maintenance: only the chunks in
	// [firstC, endC] are replaced by rechunk(flat).
	for c := firstC; c <= endC && c >= 0; c++ {
		m.count -= len(m.chunks[c])
		for _, e := range m.chunks[c] {
			m.mapped -= uint64(e.sectors)
		}
	}
	m.count += len(flat)
	for _, e := range flat {
		m.mapped += uint64(e.sectors)
	}
	newChunks := rechunk(flat)
	out := m.chunks[:firstC:firstC]
	out = append(out, newChunks...)
	if endC+1 <= len(m.chunks) {
		out = append(out, m.chunks[endC+1:]...)
	}
	m.chunks = out
}

// appendMerged appends e to *s, merging with the last element when the
// extents are adjacent and the targets contiguous.
func appendMerged(s *[]entry, e entry) {
	if e.sectors == 0 {
		return
	}
	if n := len(*s); n > 0 {
		last := &(*s)[n-1]
		if last.end() == e.start && last.tgt.Contiguous(last.sectors, e.tgt) {
			last.sectors += e.sectors
			return
		}
	}
	*s = append(*s, e)
}

func rechunk(flat []entry) [][]entry {
	var out [][]entry
	for len(flat) > 0 {
		n := min(len(flat), chunkTarget)
		c := make([]entry, n)
		copy(c, flat[:n])
		out = append(out, c)
		flat = flat[n:]
	}
	return out
}

// Lookup returns the coverage of ext, in order, as alternating present
// and absent runs; absent runs have Present=false and zero Target.
func (m *Map) Lookup(ext block.Extent) []Run {
	return m.LookupAppend(nil, ext)
}

// LookupAppend is Lookup appending into dst, for hot read paths that
// reuse a caller-owned buffer across calls. A nil dst is allocated once
// with exact worst-case capacity (n overlapping entries produce at most
// 2n+1 runs), so Lookup itself costs a single allocation.
func (m *Map) LookupAppend(dst []Run, ext block.Extent) []Run {
	if ext.Empty() {
		return dst
	}
	c0, i0, c1, i1 := m.affected(ext)
	if dst == nil {
		dst = make([]Run, 0, 2*m.rangeCount(c0, i0, c1, i1)+1)
	}
	cursor := ext.LBA
	m.forRange(c0, i0, c1, i1, func(e entry) {
		ov, ok := e.ext().Intersect(ext)
		if !ok {
			return
		}
		if ov.LBA > cursor {
			dst = append(dst, Run{Extent: block.Extent{LBA: cursor, Sectors: uint32(ov.LBA - cursor)}})
		}
		sub := e.shift(ov.LBA - e.start)
		sub.sectors = ov.Sectors
		dst = append(dst, sub.run())
		cursor = ov.End()
	})
	if cursor < ext.End() {
		dst = append(dst, Run{Extent: block.Extent{LBA: cursor, Sectors: uint32(ext.End() - cursor)}})
	}
	return dst
}

// rangeCount returns the number of entries in the half-open global
// range returned by affected.
func (m *Map) rangeCount(c0, i0, c1, i1 int) int {
	if c0 >= len(m.chunks) {
		return 0
	}
	if c0 == c1 {
		return i1 - i0
	}
	n := len(m.chunks[c0]) - i0
	for c := c0 + 1; c < c1 && c < len(m.chunks); c++ {
		n += len(m.chunks[c])
	}
	if c1 < len(m.chunks) {
		n += i1
	}
	return n
}

// Foreach calls fn for every extent in ascending order; returning false
// stops the walk.
func (m *Map) Foreach(fn func(ext block.Extent, t Target) bool) {
	for _, ch := range m.chunks {
		for _, e := range ch {
			if !fn(e.ext(), e.tgt) {
				return
			}
		}
	}
}

// Clone returns a deep copy of the map.
func (m *Map) Clone() *Map {
	n := &Map{count: m.count, mapped: m.mapped}
	n.chunks = make([][]entry, len(m.chunks))
	for i, ch := range m.chunks {
		c := make([]entry, len(ch))
		copy(c, ch)
		n.chunks[i] = c
	}
	return n
}

// Reset empties the map.
func (m *Map) Reset() {
	m.chunks = nil
	m.count = 0
	m.mapped = 0
}

const entrySize = 8 + 4 + 4 + 8 // start, sectors, obj, off

// MarshalBinary serializes the map (checkpoints, §3.3).
func (m *Map) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(nil), nil
}

// AppendBinary appends the serialized map to dst and returns the
// extended slice, reusing dst's capacity. Checkpointing calls it with
// the previous checkpoint's buffer so the periodic map snapshot stops
// allocating once the buffer reaches steady-state size — the snapshot
// happens under the store lock, where every saved microsecond is
// foreground latency.
func (m *Map) AppendBinary(dst []byte) []byte {
	base := len(dst)
	need := 4 + m.count*entrySize
	if cap(dst)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[base : base+need]
	binary.LittleEndian.PutUint32(buf, uint32(m.count))
	off := 4
	m.Foreach(func(ext block.Extent, t Target) bool {
		binary.LittleEndian.PutUint64(buf[off:], uint64(ext.LBA))
		binary.LittleEndian.PutUint32(buf[off+8:], ext.Sectors)
		binary.LittleEndian.PutUint32(buf[off+12:], t.Obj)
		binary.LittleEndian.PutUint64(buf[off+16:], uint64(t.Off))
		off += entrySize
		return true
	})
	return dst[:base+need]
}

// UnmarshalBinary restores a map serialized by MarshalBinary.
func (m *Map) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("extmap: truncated serialization (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if len(data) < 4+n*entrySize {
		return fmt.Errorf("extmap: serialization holds %d bytes, need %d", len(data), 4+n*entrySize)
	}
	m.Reset()
	var flat []entry
	off := 4
	var prevEnd block.LBA
	for i := 0; i < n; i++ {
		e := entry{
			start:   block.LBA(binary.LittleEndian.Uint64(data[off:])),
			sectors: binary.LittleEndian.Uint32(data[off+8:]),
			tgt: Target{
				Obj: binary.LittleEndian.Uint32(data[off+12:]),
				Off: block.LBA(binary.LittleEndian.Uint64(data[off+16:])),
			},
		}
		off += entrySize
		if e.sectors == 0 || (i > 0 && e.start < prevEnd) {
			return fmt.Errorf("extmap: corrupt serialization at entry %d", i)
		}
		prevEnd = e.end()
		flat = append(flat, e)
		m.count++
		m.mapped += uint64(e.sectors)
	}
	m.chunks = rechunk(flat)
	return nil
}

// checkInvariants verifies global ordering, non-overlap, chunk shape
// and cached counters; used by tests.
func (m *Map) checkInvariants() error {
	count, mapped := 0, uint64(0)
	var prev *entry
	for ci, ch := range m.chunks {
		if len(ch) == 0 {
			return fmt.Errorf("chunk %d empty", ci)
		}
		if len(ch) > chunkMax {
			return fmt.Errorf("chunk %d oversize: %d", ci, len(ch))
		}
		for ei := range ch {
			e := &ch[ei]
			if e.sectors == 0 {
				return fmt.Errorf("zero-length extent at %d/%d", ci, ei)
			}
			if prev != nil && prev.end() > e.start {
				return fmt.Errorf("overlap: %v then %v", prev.ext(), e.ext())
			}
			count++
			mapped += uint64(e.sectors)
			prev = e
		}
	}
	if count != m.count || mapped != m.mapped {
		return fmt.Errorf("counters stale: have %d/%d want %d/%d", m.count, m.mapped, count, mapped)
	}
	return nil
}
