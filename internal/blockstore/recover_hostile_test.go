package blockstore

import (
	"bytes"
	"encoding/binary"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/objstore"
)

// An object whose header DataLen is corrupted to a value that wraps
// int64 negative must be classified as a torn PUT (the crash gap) and
// dropped, not replayed with a negative size. Regression test for the
// length bounding in replayObject.
func TestRecoverHostileObjectDataLen(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{})

	ext1 := block.Extent{LBA: 0, Sectors: 8}
	data1 := payload(1, int(ext1.Bytes()))
	if err := s.Append(1, ext1, data1); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	ext2 := block.Extent{LBA: 100, Sectors: 8}
	if err := s.Append(2, ext2, payload(2, int(ext2.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest object's DataLen to 2^63: without the bound
	// check the int64 conversion goes negative and the truncation test
	// passes vacuously.
	victim := objName("vol", s.nextSeq-1)
	raw, err := store.Get(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(raw[32:], 1<<63)
	if err := store.Put(ctx, victim, raw); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(ctx, Config{Volume: "vol", Store: store, VolSectors: volSectors})
	if err != nil {
		t.Fatalf("Open with torn object: %v", err)
	}
	// The consistent prefix survives; the torn object is the gap.
	if got := readAll(t, s2, ext1); !bytes.Equal(got, data1) {
		t.Fatal("first object's data lost")
	}
	for _, run := range s2.Lookup(ext2) {
		if run.Present {
			t.Fatalf("extent of the torn object still mapped: %v", run)
		}
	}
	// And the stranded object was deleted from the backend.
	if _, err := store.Get(ctx, victim); err == nil {
		t.Fatal("torn object still in the backend after recovery")
	}
}
