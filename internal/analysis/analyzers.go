package analysis

// Analyzers returns fresh instances of the full lsvd-vet suite.
// Instances carry per-run state (lockorder accumulates the module-wide
// graph between Run and Finish), so they must not be reused.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		newAnnform(),
		newChanleak(),
		newCtxflow(),
		newDeferorder(),
		newErrclass(),
		newGoroguard(),
		newLockheld(),
		newLockorder(),
		newSectmath(),
		newSpinwait(),
	}
}
