// Package bcache implements the paper's client-side caching baseline:
// a Linux-bcache-like write-back SSD cache layered over a remote
// virtual disk. It reproduces the three behaviours the evaluation
// measures:
//
//   - Its B-tree index lives in memory and dirty index nodes (plus a
//     journal entry) must be written to the SSD at every commit
//     barrier — the extra metadata I/O that costs it 4x against LSVD
//     on sync-heavy workloads (§4.2.2).
//   - Write-back to the backing device is paused while the client is
//     loading the cache and proceeds only when the harness grants idle
//     time (§4.4, Fig 11: "bcache disables writeback under heavy
//     load").
//   - Write-back proceeds in LBA (B-tree) order, not arrival order, so
//     losing the cache mid-writeback leaves the backing image
//     inconsistent — not prefix consistent (Table 4).
//
// Allocation models bcache's bucket allocator: data fills 64 KiB
// bucket segments, so sequential runs observed by the SSD are shorter
// than LSVD's log (§4.2.1's "moderately faster for sequential writes"
// advantage goes to LSVD).
package bcache

import (
	"fmt"
	"sort"
	"sync"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/simdev"
	"lsvd/internal/vdisk"
)

// Options configures the cache.
type Options struct {
	// Dev is the cache SSD.
	Dev simdev.Device
	// Backing is the remote virtual disk being cached.
	Backing vdisk.Disk
	// BucketBytes is the allocation segment size. Default 64 KiB.
	BucketBytes int64
	// WritesPerMetadata models the steady-state journal/index write
	// rate: one 4 KiB metadata write per this many client writes.
	// Default 16.
	WritesPerMetadata int
	// NodeEntries is the number of index entries per B-tree node; all
	// nodes dirtied since the last barrier are written at the next
	// barrier. Default 128.
	NodeEntries int
}

// Stats reports cache state.
type Stats struct {
	Writes, Reads, Flushes uint64
	DirtyBytes             int64
	CacheHitSectors        uint64
	MissSectors            uint64
	MetadataWrites         uint64
	WriteBackBytes         uint64
	Evictions              uint64
}

// metaArea reserves the front of the SSD for the journal and index
// nodes; data allocation starts past it.
const metaArea = int64(1) << 20

// Cache is a write-back cache over a backing disk.
type Cache struct {
	mu   sync.Mutex
	opts Options

	m     *extmap.Map // vLBA -> cache offset (sectors)
	dirty *extmap.Map // subset of m not yet written back
	alloc int64       // bump allocator over the cache device
	size  int64

	dirtyNodes map[int64]bool // B-tree nodes touched since last barrier

	stats Stats
}

var _ vdisk.Disk = (*Cache)(nil)

// New builds a write-back cache.
func New(opts Options) (*Cache, error) {
	if opts.Dev == nil || opts.Backing == nil {
		return nil, fmt.Errorf("bcache: nil device or backing disk")
	}
	if opts.BucketBytes == 0 {
		opts.BucketBytes = 64 * 1024
	}
	if opts.WritesPerMetadata == 0 {
		opts.WritesPerMetadata = 16
	}
	if opts.NodeEntries == 0 {
		opts.NodeEntries = 128
	}
	if opts.Dev.Size() <= 2*metaArea {
		return nil, fmt.Errorf("bcache: cache device of %d bytes too small", opts.Dev.Size())
	}
	return &Cache{
		opts: opts, m: extmap.New(), dirty: extmap.New(),
		alloc: metaArea, size: opts.Dev.Size(), dirtyNodes: make(map[int64]bool),
	}, nil
}

// Size implements vdisk.Disk.
func (c *Cache) Size() int64 { return c.opts.Backing.Size() }

func (c *Cache) checkIO(p []byte, off int64) (block.Extent, error) {
	if off%block.SectorSize != 0 || len(p)%block.SectorSize != 0 {
		return block.Extent{}, fmt.Errorf("bcache: unaligned I/O at %d len %d", off, len(p))
	}
	if off < 0 || off+int64(len(p)) > c.Size() {
		return block.Extent{}, fmt.Errorf("bcache: I/O outside disk")
	}
	return block.Extent{LBA: block.LBAFromBytes(off), Sectors: uint32(len(p) / block.SectorSize)}, nil
}

// allocFor reserves space on the SSD; full=false when the cache has no
// room left. Allocation skips to a new bucket whenever the current one
// fills, bounding sequential runs at BucketBytes.
func (c *Cache) allocFor(n int64) (off int64, ok bool) {
	off = c.alloc
	bucketEnd := (off/c.opts.BucketBytes + 1) * c.opts.BucketBytes
	if off+n > bucketEnd {
		off = bucketEnd // skip to the next bucket
	}
	if off+n > c.size {
		return 0, false
	}
	c.alloc = off + n
	return off, true
}

// WriteAt implements vdisk.Disk. When the cache is full of dirty data
// bcache stops caching writes and sends them around the cache straight
// to the backing device (its congestion behaviour under sustained
// load, §4.3: "uncached RBD achieving nearly the same performance").
func (c *Cache) WriteAt(p []byte, off int64) error {
	ext, err := c.checkIO(p, off)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pos, ok := c.allocFor(int64(len(p)))
	if !ok {
		// Write around: the backend gets the write directly; any
		// cached copy (clean or dirty) is now stale.
		c.m.Delete(ext)
		c.dirty.Delete(ext)
		c.stats.Evictions++
		c.stats.Writes++
		return c.opts.Backing.WriteAt(p, off)
	}
	if err := c.opts.Dev.WriteAt(p, pos); err != nil {
		return err
	}
	t := extmap.Target{Off: block.LBAFromBytes(pos)}
	c.m.Update(ext, t)
	c.dirty.Update(ext, t)
	c.markNodeDirty(ext.LBA)
	c.stats.Writes++
	// Steady-state journal/index write.
	if c.stats.Writes%uint64(c.opts.WritesPerMetadata) == 0 {
		if err := c.metadataWrite(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cache) markNodeDirty(lba block.LBA) {
	c.dirtyNodes[int64(lba)/int64(c.opts.NodeEntries*8)] = true
}

func (c *Cache) metadataWrite() error {
	// Metadata lands at a fixed journal area: offset 0 (distinct from
	// the bump allocator's run, so the device sees it as random).
	c.stats.MetadataWrites++
	buf := make([]byte, block.BlockSize)
	return c.opts.Dev.WriteAt(buf, 0)
}

// ReadAt implements vdisk.Disk.
func (c *Cache) ReadAt(p []byte, off int64) error {
	ext, err := c.checkIO(p, off)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Reads++
	for _, run := range c.m.Lookup(ext) {
		sub := p[(run.LBA - ext.LBA).Bytes():][:run.Bytes()]
		if run.Present {
			if err := c.opts.Dev.ReadAt(sub, run.Target.Off.Bytes()); err != nil {
				return err
			}
			c.stats.CacheHitSectors += uint64(run.Sectors)
			continue
		}
		// Miss: read from backing, insert into cache.
		if err := c.opts.Backing.ReadAt(sub, run.LBA.Bytes()); err != nil {
			return err
		}
		c.stats.MissSectors += uint64(run.Sectors)
		pos, ok := c.allocFor(run.Bytes())
		if !ok {
			continue // full: serve the miss uncached
		}
		if err := c.opts.Dev.WriteAt(sub, pos); err != nil {
			return err
		}
		c.m.Update(run.Extent, extmap.Target{Off: block.LBAFromBytes(pos)})
	}
	return nil
}

// Flush implements the commit barrier. Unlike LSVD's log, the B-tree
// index is not recoverable from data writes, so every node dirtied
// since the last barrier must be persisted, plus a journal commit.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Flushes++
	for range c.dirtyNodes {
		if err := c.metadataWrite(); err != nil {
			return err
		}
	}
	c.dirtyNodes = make(map[int64]bool)
	return c.opts.Dev.Flush()
}

// Trim implements vdisk.Disk.
func (c *Cache) Trim(off, length int64) error {
	ext, err := c.checkIO(make([]byte, length), off)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.Delete(ext)
	c.dirty.Delete(ext)
	return c.opts.Backing.Trim(off, length)
}

// WriteBack destages up to budget bytes of dirty data to the backing
// disk in LBA order (the B-tree iteration order bcache uses — NOT
// arrival order, which is why a crash mid-writeback is not prefix
// consistent). The harness calls this only during idle periods,
// mirroring bcache's load-gated write-back.
func (c *Cache) WriteBack(budget int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeBackLocked(budget)
}

func (c *Cache) writeBackLocked(budget int64) error {
	type piece struct {
		ext block.Extent
		off block.LBA
	}
	var pieces []piece
	var total int64
	c.dirty.Foreach(func(ext block.Extent, t extmap.Target) bool {
		pieces = append(pieces, piece{ext, t.Off})
		total += ext.Bytes()
		return total < budget
	})
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].ext.LBA < pieces[j].ext.LBA })
	for _, p := range pieces {
		buf := make([]byte, p.ext.Bytes())
		if err := c.opts.Dev.ReadAt(buf, p.off.Bytes()); err != nil {
			return err
		}
		if err := c.opts.Backing.WriteAt(buf, p.ext.LBA.Bytes()); err != nil {
			return err
		}
		c.dirty.Delete(p.ext)
		c.stats.WriteBackBytes += uint64(len(buf))
	}
	return nil
}

// DirtyBytes returns bytes awaiting write-back.
func (c *Cache) DirtyBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	sectors := int64(c.dirty.MappedSectors()) // bounded by the backing disk size
	return sectors * block.SectorSize
}

// Stats returns a statistics snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	dirtySectors := int64(c.dirty.MappedSectors()) // bounded by the backing disk size
	st.DirtyBytes = dirtySectors * block.SectorSize
	return st
}

// Crash models losing the cache SSD: the backing disk is left exactly
// as write-back progressed (LBA order), and the cache state is gone.
// The backing disk is returned for inspection.
func (c *Cache) Crash() vdisk.Disk {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.Reset()
	c.dirty.Reset()
	c.alloc = metaArea
	return c.opts.Backing
}
