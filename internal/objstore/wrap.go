package objstore

import (
	"context"
	"sync/atomic"
	"time"
)

// Stats counts operations and bytes through a Metered store.
type Stats struct {
	Puts, Gets, GetRanges, Deletes, Lists uint64
	BytesPut, BytesGot                    uint64
}

// Metered wraps a Store, counting operations and bytes. It also
// carries the S3 endpoint latency model used when converting metered
// activity into time (paper Table 6 measures ~5.9 ms per S3 range GET).
type Metered struct {
	Inner Store

	// Latency models for the endpoint; zero values mean "not modeled".
	PutLatency, GetLatency time.Duration
	// Bandwidth in bytes/sec shared by all transfers (e.g. a 10 Gbit
	// client NIC is 1.25e9); zero means unmodeled.
	Bandwidth float64

	puts, gets, getRanges, deletes, lists atomic.Uint64
	bytesPut, bytesGot                    atomic.Uint64
}

// NewMetered wraps inner with default RGW-like latency parameters.
func NewMetered(inner Store) *Metered {
	return &Metered{
		Inner:      inner,
		PutLatency: 12 * time.Millisecond,
		GetLatency: 5920 * time.Microsecond, // Table 6: S3 range request
		Bandwidth:  1.25e9,                  // 10 Gbit
	}
}

// Put implements Store.
func (s *Metered) Put(ctx context.Context, name string, data []byte) error {
	s.puts.Add(1)
	s.bytesPut.Add(uint64(len(data)))
	return s.Inner.Put(ctx, name, data)
}

// PutV implements VectorPutter.
func (s *Metered) PutV(ctx context.Context, name string, bufs [][]byte) error {
	s.puts.Add(1)
	s.bytesPut.Add(uint64(VecLen(bufs)))
	return PutVec(ctx, s.Inner, name, bufs)
}

// Get implements Store.
func (s *Metered) Get(ctx context.Context, name string) ([]byte, error) {
	s.gets.Add(1)
	data, err := s.Inner.Get(ctx, name)
	s.bytesGot.Add(uint64(len(data)))
	return data, err
}

// GetRange implements Store.
func (s *Metered) GetRange(ctx context.Context, name string, off, length int64) ([]byte, error) {
	s.getRanges.Add(1)
	data, err := s.Inner.GetRange(ctx, name, off, length)
	s.bytesGot.Add(uint64(len(data)))
	return data, err
}

// Delete implements Store.
func (s *Metered) Delete(ctx context.Context, name string) error {
	s.deletes.Add(1)
	return s.Inner.Delete(ctx, name)
}

// List implements Store.
func (s *Metered) List(ctx context.Context, prefix string) ([]string, error) {
	s.lists.Add(1)
	return s.Inner.List(ctx, prefix)
}

// Size implements Store.
func (s *Metered) Size(ctx context.Context, name string) (int64, error) {
	return s.Inner.Size(ctx, name)
}

// Stats returns a snapshot of the counters.
func (s *Metered) Stats() Stats {
	return Stats{
		Puts: s.puts.Load(), Gets: s.gets.Load(), GetRanges: s.getRanges.Load(),
		Deletes: s.deletes.Load(), Lists: s.lists.Load(),
		BytesPut: s.bytesPut.Load(), BytesGot: s.bytesGot.Load(),
	}
}

// Reset zeroes the counters.
func (s *Metered) Reset() {
	s.puts.Store(0)
	s.gets.Store(0)
	s.getRanges.Store(0)
	s.deletes.Store(0)
	s.lists.Store(0)
	s.bytesPut.Store(0)
	s.bytesGot.Store(0)
}

// ModeledTime returns the endpoint-model time for the store's traffic
// so far: per-op latency amortized over queue depth qd plus transfer
// time at the modeled bandwidth.
func (s *Metered) ModeledTime(qd int) time.Duration {
	if qd < 1 {
		qd = 1
	}
	st := s.Stats()
	ops := time.Duration(st.Puts+st.Deletes)*s.PutLatency +
		time.Duration(st.Gets+st.GetRanges)*s.GetLatency
	e := ops / time.Duration(qd)
	if s.Bandwidth > 0 {
		xfer := time.Duration(float64(st.BytesPut+st.BytesGot) / s.Bandwidth * float64(time.Second))
		if xfer > e {
			e = xfer
		}
	}
	return e
}
