// Package replica implements LSVD's asynchronous replication (paper
// §4.8) on top of the blockstore's commit feed (ship.go, DESIGN.md
// §5i): because the volume is an ordered stream of immutable numbered
// objects, a crash-consistent replica is maintained by copying objects
// to a second object store in commit order and refreshing the
// superblock only once the checkpoint it names is present there.
//
// A Shipper is one volume's replication goroutine. It attaches to the
// blockstore's feed (blockstore.ShipAttach), works off the backlog —
// probing the replica so a re-attach after restart copies only what is
// missing — then drains live commit events. Each ack advances the
// blockstore's shipped watermark, which both measures the replication
// lag (the RPO) and releases the deferred deletions the watermark was
// pinning on the primary. Backend I/O takes background-class gate
// slots (iosched.Gate.AcquireBackground) so shipping only ever uses
// upload capacity foreground destage is not using.
package replica

import (
	"context"
	"errors"
	"sync"
	"time"

	"lsvd/internal/blockstore"
	"lsvd/internal/invariant"
	"lsvd/internal/iosched"
	"lsvd/internal/objstore"
)

// Config wires one volume's shipper.
type Config struct {
	// Backend is the primary volume's blockstore — the feed source.
	// The primary object store is taken from it (retry-wrapped).
	Backend *blockstore.Store
	// Replica is the destination store. Wrap it in an objstore.Retrier
	// for transient-fault absorption; the shipper itself retries
	// indefinitely (the object MUST eventually ship — lag growth is the
	// escalation path, not data loss) but backs off between attempts.
	Replica objstore.Store
	// Gate/GateID, when set, bound the shipper's backend I/O with
	// background-class slots of the shared upload gate; GateID is a
	// borrow-only identity (conventionally "<uploadID>#ship") that
	// needs no Register.
	Gate   *iosched.Gate
	GateID string
	// MaxLagObjects/MaxLagBytes are the RPO bound: when the unshipped
	// backlog exceeds either, OverBound() turns true and the owner
	// (core's destage loop) applies write backpressure until the
	// shipper catches up. 0 disables that bound.
	MaxLagObjects int
	MaxLagBytes   int64
	// OnAck, when set, is called after every ack (object copied,
	// verified present, or deliberately skipped) — i.e. whenever the
	// lag shrinks. Core uses it to wake writers stalled on the RPO
	// bound instead of having them poll.
	OnAck func()
}

// Stats reports replication progress and the current lag.
type Stats struct {
	ShippedSeq     uint32 // watermark: contiguously replicated prefix
	LagObjects     int    // committed but unshipped objects
	LagBytes       int64  // their payload bytes
	CopiedObjects  uint64
	CopiedBytes    int64
	SkippedPresent uint64 // backlog objects already on the replica
	SkippedGone    uint64 // gone from the primary before shipping
	SuperCopies    uint64 // superblock refreshes applied to the replica
	SuperSkips     uint64 // super updates held back (checkpoint not shipped yet)
	Retries        uint64 // replica-store transient retries (Retrier)
	Errors         uint64 // ship attempts that failed after retry policy
	LastShipNanos  int64  // duration of the most recent object copy
}

// Shipper drains one volume's commit feed into the replica store.
type Shipper struct {
	cfg     Config
	ctx     context.Context
	primary objstore.Store
	volume  string

	quit     chan struct{}
	done     chan struct{}
	draining chan struct{}
	attached chan struct{}

	mu    sync.Mutex //lsvd:lock replica.mu
	stats Stats
}

// drainAttempts bounds per-object retries once a clean Close has been
// requested: a dead replica backend must not wedge volume shutdown.
// The replica simply stays at its last consistent watermark.
const drainAttempts = 3

// Start attaches a shipper to the volume and begins replication.
func Start(ctx context.Context, cfg Config) *Shipper {
	s := &Shipper{
		cfg:      cfg,
		ctx:      ctx,
		primary:  cfg.Backend.ObjectStore(),
		volume:   cfg.Backend.Volume(),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		draining: make(chan struct{}),
		attached: make(chan struct{}),
	}
	invariant.Go("replica.shipper", s.run)
	return s
}

func (s *Shipper) run() {
	defer close(s.done)
	backlog := s.cfg.Backend.ShipAttach()
	// Close/Abort wait for this before calling ShipClose: ShipAttach
	// re-arms the feed, so a close racing ahead of it would be undone
	// and the drain wait would never end.
	close(s.attached)
	if !s.processBatch(backlog, true) {
		return
	}
	for {
		evs, more := s.cfg.Backend.ShipNext()
		if !s.processBatch(evs, false) {
			return
		}
		if !more {
			return
		}
	}
}

// processBatch ships a slice of feed events in order. probe marks the
// attach backlog: objects already on the replica (an earlier session
// shipped them) are acked without copying, which is what makes
// re-attach incremental. Returns false when the shipper should stop.
func (s *Shipper) processBatch(evs []blockstore.ShipEvent, probe bool) bool {
	for _, ev := range evs {
		if s.stopped() {
			return false
		}
		if ev.IsSuper() {
			s.shipSuper()
			continue
		}
		if probe {
			// Presence alone is not proof of a durable copy: a shipper
			// killed between a torn PUT (the objstore fault model leaves
			// prefix-torn objects) and its retry leaves a partial object
			// on the replica. ev.Bytes is the committed object's exact
			// backend size, so ack only on an exact match and re-ship
			// otherwise — the PUT overwrites the torn copy.
			if n, err := s.cfg.Replica.Size(s.ctx, ev.Name); err == nil && n == ev.Bytes {
				s.acked(ev)
				s.bump(func(st *Stats) { st.SkippedPresent++ })
				continue
			}
		}
		if !s.shipObject(ev) {
			return false
		}
	}
	return true
}

// shipObject copies one numbered object and acks it. It never acks an
// object it has not durably copied (or proven gone): on failure it
// backs off and retries, letting the lag grow until the bound
// escalates to destage backpressure — the RPO contract is "bounded or
// blocked", never "silently dropped". Only an explicit drain (clean
// Close with the replica down) abandons the attempt, leaving the
// watermark where it was.
func (s *Shipper) shipObject(ev blockstore.ShipEvent) bool {
	for attempt := 1; ; attempt++ {
		if s.stopped() {
			return false
		}
		err := s.copyObject(ev)
		if err == nil {
			s.acked(ev)
			return true
		}
		if errors.Is(err, objstore.ErrNotFound) {
			// Deleted at the primary before shipping. The watermark pin
			// prevents this for every object the feed publishes while
			// replication is armed, so this only covers streams whose
			// history predates Config.Replicated; the recovery rules
			// tolerate the hole exactly as they do for a GC'd object.
			s.acked(ev)
			s.bump(func(st *Stats) { st.SkippedGone++ })
			return true
		}
		s.bump(func(st *Stats) { st.Errors++ })
		if s.drainRequested() && attempt >= drainAttempts {
			return false
		}
		if !s.sleep(backoff(attempt)) {
			return false
		}
	}
}

// copyObject is one GET(primary) + PUT(replica) under a background
// gate slot.
func (s *Shipper) copyObject(ev blockstore.ShipEvent) error {
	if s.cfg.Gate != nil {
		s.cfg.Gate.AcquireBackground(s.cfg.GateID)
		defer s.cfg.Gate.ReleaseBackground(s.cfg.GateID)
	}
	start := time.Now()
	data, err := s.primary.Get(s.ctx, ev.Name)
	if err != nil {
		return err
	}
	if err := s.cfg.Replica.Put(s.ctx, ev.Name, data); err != nil {
		return err
	}
	s.bump(func(st *Stats) {
		st.CopiedObjects++
		st.CopiedBytes += int64(len(data))
		st.LastShipNanos = time.Since(start).Nanoseconds()
	})
	return nil
}

// shipSuper refreshes the replica's superblock from the primary's LIVE
// super — feed super events are triggers, not payloads, so a burst of
// checkpoints collapses into one copy of the final state. The copy is
// applied only when the checkpoint it names is already on the replica
// (the feed orders the checkpoint's own event first, so in the steady
// state it is); otherwise the event is skipped and the checkpoint that
// eventually ships brings its own super event. Super failures are not
// retried here for the same reason: the replica merely stays on its
// previous — still consistent — superblock.
func (s *Shipper) shipSuper() {
	if s.cfg.Gate != nil {
		s.cfg.Gate.AcquireBackground(s.cfg.GateID)
		defer s.cfg.Gate.ReleaseBackground(s.cfg.GateID)
	}
	raw, err := s.primary.Get(s.ctx, blockstore.SuperName(s.volume))
	if err != nil {
		s.bump(func(st *Stats) { st.Errors++ })
		return
	}
	info, err := blockstore.DecodeSuperInfo(raw)
	if err != nil {
		s.bump(func(st *Stats) { st.Errors++ })
		return
	}
	if info.LastCheckpoint != 0 {
		ckpt := blockstore.ObjName(s.volume, info.LastCheckpoint)
		if _, err := s.cfg.Replica.Size(s.ctx, ckpt); err != nil {
			s.bump(func(st *Stats) { st.SuperSkips++ })
			return
		}
	}
	if err := s.cfg.Replica.Put(s.ctx, blockstore.SuperName(s.volume), raw); err != nil {
		s.bump(func(st *Stats) { st.Errors++ })
		return
	}
	s.bump(func(st *Stats) { st.SuperCopies++ })
}

// OverBound reports whether the replication lag currently exceeds the
// configured RPO bound. The destage loop polls this to decide whether
// to admit more foreground work.
func (s *Shipper) OverBound() bool {
	if s.cfg.MaxLagObjects <= 0 && s.cfg.MaxLagBytes <= 0 {
		return false
	}
	objs, bytes := s.cfg.Backend.ShipLag()
	return (s.cfg.MaxLagObjects > 0 && objs > s.cfg.MaxLagObjects) ||
		(s.cfg.MaxLagBytes > 0 && bytes > s.cfg.MaxLagBytes)
}

// Stats returns cumulative progress plus the live lag.
func (s *Shipper) Stats() Stats {
	invariant.LockOrder("replica.mu")
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	invariant.LockRelease("replica.mu")
	st.ShippedSeq = s.cfg.Backend.ShippedSeq()
	st.LagObjects, st.LagBytes = s.cfg.Backend.ShipLag()
	if rt, ok := s.cfg.Replica.(*objstore.Retrier); ok {
		st.Retries = rt.Retries()
	}
	return st
}

// Close drains the feed — every already-committed event ships — and
// stops the shipper. If the replica backend is unreachable, each
// remaining object gets drainAttempts tries before the drain is
// abandoned with the watermark (and the replica) at the last
// consistent state.
func (s *Shipper) Close() {
	close(s.draining)
	<-s.attached
	s.cfg.Backend.ShipClose(true)
	<-s.done
}

// Abort stops the shipper immediately, dropping queued feed events
// (crash modeling — the replica stays a consistent prefix).
func (s *Shipper) Abort() {
	close(s.quit)
	<-s.attached
	s.cfg.Backend.ShipClose(false)
	<-s.done
}

// acked advances the blockstore's shipped watermark for ev and fires
// the owner's wake hook — the lag just shrank, so writers stalled on
// the RPO bound should re-check it.
func (s *Shipper) acked(ev blockstore.ShipEvent) {
	s.cfg.Backend.ShipAck(ev)
	if s.cfg.OnAck != nil {
		s.cfg.OnAck()
	}
}

func (s *Shipper) stopped() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

func (s *Shipper) drainRequested() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// sleep waits d or until Abort; returns false when aborted.
func (s *Shipper) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.quit:
		return false
	case <-t.C:
		return true
	}
}

func (s *Shipper) bump(f func(*Stats)) {
	invariant.LockOrder("replica.mu")
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
	invariant.LockRelease("replica.mu")
}

// backoff is the per-object retry schedule: exponential from 1ms,
// capped at 100ms — long enough to ride out a fault burst, short
// enough that the lag bound reacts promptly once the backend heals.
func backoff(attempt int) time.Duration {
	// Clamp the exponent before shifting: attempt grows without bound
	// during a long outage, and 1ms << 44+ overflows int64 to a
	// negative (then zero) duration, which would bypass the cap below
	// and turn the retry loop into a busy-spin.
	if attempt > 8 {
		return 100 * time.Millisecond
	}
	d := time.Millisecond << uint(attempt-1)
	if d > 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}
