// Package errclass is the golden self-test for the errclass analyzer:
// raw objstore calls must be flagged; calls through an
// objstore.Retrier receiver, an //lsvd:classifies-errors field, or an
// //lsvd:classifies-errors function must not.
package errclass

import (
	"context"
	"errors"

	"lsvd/internal/objstore"
)

type box struct {
	raw objstore.Store

	// classified is the wrapped backend handle: setDefaults-style
	// construction guarantees errors through it are classified.
	//lsvd:classifies-errors
	classified objstore.Store

	retrier *objstore.Retrier
}

func (b *box) rawPut(ctx context.Context) error {
	return b.raw.Put(ctx, "k", nil) // want "raw objstore.Put call"
}

func (b *box) rawList(ctx context.Context) error {
	names, err := b.raw.List(ctx, "v/") // want "raw objstore.List call"
	_ = names
	return err
}

func (b *box) rawDelete(ctx context.Context) error {
	return b.raw.Delete(ctx, "k") // want "raw objstore.Delete call"
}

func (b *box) viaClassifiedField(ctx context.Context) error {
	return b.classified.Put(ctx, "k", nil)
}

func (b *box) viaRetrier(ctx context.Context) ([]byte, error) {
	return b.retrier.Get(ctx, "k")
}

// probeExists does its own classification: ErrNotFound is an expected
// answer, not a failure to retry.
//
//lsvd:classifies-errors
func (b *box) probeExists(ctx context.Context) (bool, error) {
	_, err := b.raw.Get(ctx, "k")
	if errors.Is(err, objstore.ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}

func (b *box) sanctionedRaw(ctx context.Context) error {
	//lsvd:ignore self-test: super rewrite goes raw by design
	return b.raw.Put(ctx, "super", nil)
}
