// Command lsvd-ctl administers LSVD volumes on an object store
// directory: create, info, snapshot, clone, gc, checkpoint, fsck.
//
//	lsvd-ctl -store DIR create VOLUME SIZE
//	lsvd-ctl -store DIR info VOLUME
//	lsvd-ctl -store DIR snapshot VOLUME NAME
//	lsvd-ctl -store DIR delete-snapshot VOLUME NAME
//	lsvd-ctl -store DIR clone BASE SNAPSHOT NEWVOLUME
//	lsvd-ctl -store DIR gc VOLUME
//	lsvd-ctl -store DIR checkpoint VOLUME
//	lsvd-ctl -store DIR fsck VOLUME
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/objstore"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lsvd-ctl -store DIR {create|info|snapshot|delete-snapshot|clone|gc|checkpoint|fsck} ARGS...")
	os.Exit(2)
}

func main() {
	storeDir := flag.String("store", "", "object store directory (required)")
	flag.Parse()
	args := flag.Args()
	if *storeDir == "" || len(args) < 1 {
		usage()
	}
	store, err := objstore.NewDir(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	openVol := func(name string) *blockstore.Store {
		s, err := blockstore.Open(ctx, blockstore.Config{Volume: name, Store: store})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	switch cmd, rest := args[0], args[1:]; cmd {
	case "create":
		if len(rest) != 2 {
			usage()
		}
		size, err := parseSize(rest[1])
		if err != nil {
			log.Fatal(err)
		}
		s, err := blockstore.Create(ctx, blockstore.Config{
			Volume: rest[0], Store: store, VolSectors: block.LBAFromBytes(size),
		})
		if err != nil {
			log.Fatal(err)
		}
		_ = s.Checkpoint()
		fmt.Printf("created volume %q (%d bytes)\n", rest[0], size)

	case "info":
		if len(rest) != 1 {
			usage()
		}
		s := openVol(rest[0])
		st := s.Stats()
		base, baseSeq := s.BaseImage()
		fmt.Printf("volume:       %s\n", rest[0])
		fmt.Printf("size:         %d bytes\n", s.VolSectors().Bytes())
		fmt.Printf("objects:      %d (next seq %d)\n", st.Objects, st.NextSeq)
		fmt.Printf("live data:    %d MiB of %d MiB (util %.2f)\n",
			st.LiveSectors*block.SectorSize/(1<<20), st.DataSectors*block.SectorSize/(1<<20), s.Utilization())
		fmt.Printf("map extents:  %d\n", st.MapExtents)
		fmt.Printf("read path:    %d GETs, %d deduped, %d runs coalesced, %d header fetches\n",
			st.FetchGETs, st.FetchesDeduped, st.RunsCoalesced, st.HeaderFetches)
		if base != "" {
			fmt.Printf("clone of:     %s@%d\n", base, baseSeq)
		}
		for _, sn := range s.Snapshots() {
			fmt.Printf("snapshot:     %s (seq %d)\n", sn.Name, sn.Seq)
		}

	case "snapshot":
		if len(rest) != 2 {
			usage()
		}
		s := openVol(rest[0])
		info, err := s.CreateSnapshot(rest[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot %q at seq %d\n", info.Name, info.Seq)

	case "delete-snapshot":
		if len(rest) != 2 {
			usage()
		}
		if err := openVol(rest[0]).DeleteSnapshot(rest[1]); err != nil {
			log.Fatal(err)
		}
		fmt.Println("deleted")

	case "clone":
		if len(rest) != 3 {
			usage()
		}
		if err := blockstore.Clone(ctx, blockstore.Config{Volume: rest[0], Store: store}, rest[1], rest[2]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cloned %s@%s -> %s\n", rest[0], rest[1], rest[2])

	case "gc":
		if len(rest) != 1 {
			usage()
		}
		s := openVol(rest[0])
		before := s.Stats()
		if err := s.RunGC(); err != nil {
			log.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		after := s.Stats()
		fmt.Printf("gc: %d objects deleted, utilization %.2f\n",
			after.ObjectsDeleted-before.ObjectsDeleted, s.Utilization())

	case "checkpoint":
		if len(rest) != 1 {
			usage()
		}
		if err := openVol(rest[0]).Checkpoint(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("checkpointed")

	case "fsck":
		if len(rest) != 1 {
			usage()
		}
		// Opening performs full recovery: prefix validation, stranded
		// object deletion, and map reconstruction. Reaching here means
		// the volume is consistent.
		s := openVol(rest[0])
		st := s.Stats()
		fmt.Printf("ok: %d objects, %d map extents, durable write seq %d\n",
			st.Objects, st.MapExtents, st.DurableWriteSeq)

	default:
		usage()
	}
}

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "T"):
		mult, s = block.TiB, strings.TrimSuffix(s, "T")
	case strings.HasSuffix(s, "G"):
		mult, s = block.GiB, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = block.MiB, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = block.KiB, strings.TrimSuffix(s, "K")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}
