package blockstore

import (
	"encoding/binary"
	"time"

	"lsvd/internal/invariant"
	"lsvd/internal/journal"
)

// Checkpoints (§3.3) are written WITHOUT holding s.mu across backend
// I/O: the map and object table are snapshotted under a short lock
// (ckptShot), then the encode finish and the two PUTs — checkpoint
// object, then superblock — run with the lock released. Two paths
// share the snapshot/PUT/finalize pieces:
//
//   - The periodic checkpoint on the asynchronous write path is a
//     MARKER in the upload pipeline (queueCheckpointLocked): it
//     reserves its sequence number at seal time, and the snapshot is
//     taken only when the marker reaches the front of the in-flight
//     list — i.e. once every earlier object has committed — so the
//     checkpoint covers exactly the committed prefix without draining
//     the pipeline. Later objects cannot commit until the marker is
//     done (the in-order commit walk stops at it), so a crash can
//     never leave acked data above a gap at the checkpoint's sequence.
//   - checkpointLocked is the synchronous path (Create, Clone, the
//     Checkpoint API, snapshot creation, sync-mode seals, the GC
//     service's idle checkpoint): callers drain the pipeline first;
//     ckptActive parks every sequence reservation while the lock is
//     down so a failed checkpoint can return its sequence number and
//     no gap is ever left in the log.
//
// Ordering rules the crash-consistency tests depend on:
//
//   1. The superblock PUT starts only after the checkpoint object PUT
//      completed — the super never names a checkpoint that isn't
//      durable.
//   2. Deferred GC victim deletions released by a checkpoint run only
//      after the super PUT succeeded — deleting a victim below the
//      named checkpoint earlier would hole the replayable prefix.
//   3. While a checkpoint marker is queued, GC object writes wait
//      (writeGCObjectLocked): a GC object with a sequence number above
//      the checkpoint's must not enter the checkpoint's map snapshot,
//      or recovery's gap rule could delete an object the recovered map
//      still references.

// checkpointPayload: the serialized object map, the object table,
// deferred deletes, the durable write watermark and a pointer to the
// previous checkpoint (for snapshot mounts that need an older one).
type checkpointPayload struct {
	prevCkpt        uint32
	durableWriteSeq uint64
	nextSeq         uint32
	objects         []objInfo
	deferred        []deferredDelete
	mapBytes        []byte
}

// ckptShot is one checkpoint's state snapshot, taken under s.mu in
// fillCkptShotLocked and consumed off-lock by putCheckpoint. payload
// aliases s.ckptBuf (reused across checkpoints; the single-flight
// guards — ckptQueued for markers, ckptActive for the synchronous
// path — keep at most one shot alive). rec and objDone carry resubmit
// state: a retry after a failed superblock PUT reuses the encoded
// record and skips the already-durable object PUT.
type ckptShot struct {
	seq      uint32
	writeSeq uint64
	payload  []byte
	super    []byte
	nPending int
	prevTick int // sinceCkpt before the snapshot, restored on sync-path failure

	rec     []byte
	objDone bool
}

// fillCkptShotLocked snapshots the volume state for a checkpoint at
// shot.seq (already reserved by the caller) into the reused encode
// buffer. It is the only part of a checkpoint that runs under s.mu;
// its duration is the foreground stall and is recorded for the
// tooling.
//
//lsvd:requires bs.mu
func (s *Store) fillCkptShotLocked(shot *ckptShot) error {
	start := time.Now()
	if err := s.sweepOrphansLocked(); err != nil {
		return err
	}
	var w binWriter
	w.buf = s.ckptBuf[:0]
	w.u32(s.lastCkpt)
	w.u64(s.durableWriteSeq)
	w.u32(s.nextSeq)
	w.u32(uint32(len(s.objects)))
	for _, o := range s.objects {
		w.u32(o.seq)
		w.u32(uint32(o.typ))
		w.u64(uint64(o.totalBytes))
		w.u32(o.hdrSectors)
		w.u32(o.dataSectors)
		w.u32(o.liveSectors)
		w.u64(o.writeSeq)
	}
	w.u32(uint32(len(s.deferred) + len(s.pending)))
	for _, d := range s.deferred {
		w.u32(d.Obj)
		w.u32(d.GCSeq)
	}
	for _, d := range s.pending {
		w.u32(d.Obj)
		w.u32(d.GCSeq)
	}
	// The map marshals straight into the payload buffer behind its
	// length prefix — no intermediate allocation.
	lenOff := len(w.buf)
	w.u32(0)
	w.buf = s.m.AppendBinary(w.buf)
	binary.LittleEndian.PutUint32(w.buf[lenOff:], uint32(len(w.buf)-lenOff-4))
	s.ckptBuf = w.buf

	super, err := encodeSuper(&superblock{
		volSectors: s.volSectors, lastCkpt: shot.seq,
		baseVol: s.baseVol, baseSeq: s.baseSeq, snapshots: s.snapshots,
	})
	if err != nil {
		return err
	}
	shot.payload = w.buf
	shot.super = super
	shot.writeSeq = s.durableWriteSeq
	shot.nPending = len(s.pending)
	shot.prevTick = s.sinceCkpt
	s.sinceCkpt = 0
	s.stats.lastCkptStallNanos = time.Since(start).Nanoseconds()
	return nil
}

// putCheckpoint performs a checkpoint's backend I/O. Called WITHOUT
// s.mu held. The superblock PUT is ordered strictly after the
// checkpoint object is durable (rule 1 above). It deliberately takes
// no upload-gate slot: a GC pass parked on ckptQueued may hold gate
// slots, so gating the checkpoint could deadlock — and checkpoints are
// rare control-plane I/O.
func (s *Store) putCheckpoint(shot *ckptShot) error {
	if shot.rec == nil {
		h := &journal.Header{
			Type: journal.TypeCheckpoint, Seq: uint64(shot.seq),
			WriteSeq: shot.writeSeq, DataLen: uint64(len(shot.payload)),
		}
		rec, err := journal.EncodeSectorHeader(h, shot.payload)
		if err != nil {
			return err
		}
		shot.rec = rec
	}
	if !shot.objDone {
		if err := s.cfg.Store.Put(s.ctx, objName(s.cfg.Volume, shot.seq), shot.rec); err != nil {
			return err
		}
		shot.objDone = true
	}
	return s.cfg.Store.Put(s.ctx, superName(s.cfg.Volume), shot.super)
}

// finalizeCheckpointLocked applies a durable checkpoint (object and
// super both PUT) to the in-memory state and releases the GC victim
// deletions that were waiting for it (rule 2 above). Only the pending
// entries that existed at snapshot time are released — the payload's
// deferred list covers exactly those, so recovery can re-drive a
// delete the crash interrupted; entries queued since wait for the next
// checkpoint.
//
//lsvd:requires bs.mu
func (s *Store) finalizeCheckpointLocked(shot *ckptShot) {
	s.objects[shot.seq] = &objInfo{seq: shot.seq, typ: journal.TypeCheckpoint, totalBytes: int64(len(shot.rec))}
	s.lastCkpt = shot.seq
	s.stats.checkpoints++
	// The checkpoint object and the superblock naming it are both
	// durable here: publish the object to the replication feed, then a
	// super event so the shipper re-copies the superblock once the
	// checkpoint itself is on the replica.
	s.shipPublishLocked(shot.seq, journal.TypeCheckpoint, int64(len(shot.rec)))
	s.shipPublishLocked(0, journal.TypeSuper, 0)
	released := s.pending[:shot.nPending]
	s.pending = append([]deferredDelete(nil), s.pending[shot.nPending:]...)
	for _, d := range released {
		if err := s.completeDelete(d); err != nil {
			// Deletion is space reclaim, not correctness: a transient
			// Delete failure re-defers the object to the next
			// checkpoint instead of failing this one.
			s.pending = append(s.pending, d)
		}
	}
}

// Checkpoint writes the volume's map and metadata as a numbered object
// in the stream (§3.3), updates the superblock pointer, and releases
// object deletions that were waiting for a checkpoint.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	// A checkpoint must never record a nextSeq beyond an uncommitted
	// object (recovery replay only covers seqs after the checkpoint),
	// so drain the upload pipeline first.
	if s.cfg.UploadDepth > 0 {
		for _, inf := range s.inflight {
			if inf.done && inf.err != nil {
				inf.attempts = 0
			}
		}
		s.resubmitFailedLocked()
		if err := s.waitInflightLocked(); err != nil {
			return err
		}
	}
	return s.checkpointLocked()
}

// checkpointLocked is the synchronous checkpoint: snapshot under s.mu,
// PUT with the lock RELEASED, finalize. Callers hold s.mu with the
// upload pipeline drained. ckptActive single-flights concurrent
// synchronous checkpoints and parks every sequence reservation (seals,
// GC objects) for the duration of the lock drop, so on failure the
// reserved sequence number can be returned with no gap left behind.
//
//lsvd:requires bs.mu
func (s *Store) checkpointLocked() error {
	for s.ckptActive {
		s.commitCond.Wait()
	}
	invariant.Assertf(!s.ckptQueued,
		"blockstore: synchronous checkpoint with a checkpoint marker still queued")
	shot := &ckptShot{seq: s.nextSeq}
	s.nextSeq++
	if err := s.fillCkptShotLocked(shot); err != nil {
		s.nextSeq--
		return err
	}
	s.ckptActive = true
	s.mu.Unlock()
	err := s.putCheckpoint(shot)
	s.mu.Lock()
	s.ckptActive = false
	if err != nil {
		// No reservation advanced while ckptActive: the checkpoint's
		// sequence number goes back so the log stays gapless. A
		// checkpoint object whose PUT landed but whose super didn't is
		// either overwritten by the next object at this seq or replayed
		// wholesale by recovery — both consistent.
		invariant.Assertf(s.nextSeq == shot.seq+1,
			"blockstore: sequence %d reserved during a synchronous checkpoint at %d", s.nextSeq-1, shot.seq)
		s.nextSeq = shot.seq
		s.sinceCkpt = shot.prevTick
		s.commitCond.Broadcast()
		return err
	}
	s.finalizeCheckpointLocked(shot)
	s.commitCond.Broadcast()
	return nil
}

// completeDelete deletes a cleaned object unless a snapshot or the
// replication shipped watermark pins it, in which case it joins the
// persistent deferred list. The watermark pin (ship.go rule 2) is what
// keeps a lagging replica's checkpoints dereferenceable: the victim
// stays on the primary until the shipper has acked it, then the
// watermark advance re-drives this list (redriveShipDeferredLocked).
//
//lsvd:requires bs.mu
func (s *Store) completeDelete(d deferredDelete) error {
	if s.shipPinnedLocked(d.Obj) {
		s.deferred = append(s.deferred, d)
		return nil
	}
	for _, sn := range s.snapshots {
		if sn.Seq >= d.Obj && sn.Seq < d.GCSeq {
			s.deferred = append(s.deferred, d)
			return nil
		}
	}
	return s.deleteObject(d.Obj)
}

func decodeCheckpoint(data []byte) (*checkpointPayload, error) {
	r := binReader{buf: data}
	p := &checkpointPayload{}
	p.prevCkpt = r.u32()
	p.durableWriteSeq = r.u64()
	p.nextSeq = r.u32()
	nObj := int(r.u32())
	for i := 0; i < nObj && r.err == nil; i++ {
		o := objInfo{}
		o.seq = r.u32()
		o.typ = journal.Type(r.u32())
		o.totalBytes = int64(r.u64())
		o.hdrSectors = r.u32()
		o.dataSectors = r.u32()
		o.liveSectors = r.u32()
		o.writeSeq = r.u64()
		p.objects = append(p.objects, o)
	}
	nDef := int(r.u32())
	for i := 0; i < nDef && r.err == nil; i++ {
		d := deferredDelete{Obj: r.u32(), GCSeq: r.u32()}
		p.deferred = append(p.deferred, d)
	}
	p.mapBytes = r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}
