// Package vdisk defines the block-device interface shared by the LSVD
// disk, the baselines it is compared against, the workload generators
// and the NBD server: byte-addressed, sector-aligned reads and writes,
// a commit barrier, and discard.
package vdisk

// Disk is a virtual block device. Offsets and lengths must be
// 512-byte aligned. WriteAt acknowledges the write (it is crash-safe
// per the implementation's contract only after Flush); Flush is the
// commit barrier.
type Disk interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Flush() error
	Trim(off, length int64) error
	Size() int64
}
