// Command lsvd-tracesim runs the Table 5 garbage-collection
// simulations: LSVD write batching and greedy GC driven by
// CloudPhysics-like traces, in no-merge / merge / defrag modes.
//
//	lsvd-tracesim [-scale 256] [-trace w66]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"lsvd/internal/gcsim"
	"lsvd/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 256, "trace scale-down factor")
	trace := flag.String("trace", "", "run a single trace (default: all)")
	flag.Parse()

	cfg := gcsim.Defaults(*scale)
	ctx := context.Background()
	specs := workload.PaperTraces
	if *trace != "" {
		specs = nil
		for _, s := range workload.PaperTraces {
			if s.ID == *trace {
				specs = []workload.TraceSpec{s}
			}
		}
		if specs == nil {
			log.Fatalf("unknown trace %q", *trace)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\twrites GB\text(no merge)\text(merge)\text(defrag)\tWAF(nm)\tWAF(m)\tWAF(d)\tmerge ratio")
	for _, spec := range specs {
		var row [3]gcsim.Result
		for i, mode := range []gcsim.Mode{gcsim.NoMerge, gcsim.Merge, gcsim.Defrag} {
			r, err := gcsim.Simulate(ctx, spec, mode, cfg)
			if err != nil {
				log.Fatal(err)
			}
			row[i] = r
		}
		fmt.Fprintf(w, "%s\t%.2f\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\t%.2f\n",
			spec.ID, row[1].WriteGB,
			row[0].Extents, row[1].Extents, row[2].Extents,
			row[0].WAF, row[1].WAF, row[2].WAF, row[1].MergeRat)
		w.Flush()
	}
}
