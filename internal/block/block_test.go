package block

import (
	"testing"
	"testing/quick"
)

func TestLBAConversions(t *testing.T) {
	if LBA(8).Bytes() != 4096 {
		t.Fatal("LBA.Bytes wrong")
	}
	if LBAFromBytes(4096) != 8 {
		t.Fatal("LBAFromBytes wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned LBAFromBytes did not panic")
		}
	}()
	LBAFromBytes(100)
}

func TestExtentBasics(t *testing.T) {
	e := Extent{LBA: 10, Sectors: 5}
	if e.End() != 15 || e.Bytes() != 5*512 || e.Empty() {
		t.Fatalf("extent basics: %+v", e)
	}
	if !e.Contains(10) || !e.Contains(14) || e.Contains(15) || e.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if (Extent{}).Empty() != true {
		t.Fatal("zero extent not empty")
	}
	if e.String() == "" {
		t.Fatal("no string form")
	}
}

func TestOverlapIntersect(t *testing.T) {
	a := Extent{LBA: 0, Sectors: 10}
	b := Extent{LBA: 5, Sectors: 10}
	c := Extent{LBA: 10, Sectors: 5}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlap missed")
	}
	if a.Overlaps(c) {
		t.Fatal("adjacent extents reported overlapping")
	}
	if !a.Adjacent(c) {
		t.Fatal("adjacency missed")
	}
	iv, ok := a.Intersect(b)
	if !ok || iv.LBA != 5 || iv.Sectors != 5 {
		t.Fatalf("intersect %+v", iv)
	}
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint intersect")
	}
}

// Property: Intersect is commutative and the result is contained in
// both operands.
func TestQuickIntersect(t *testing.T) {
	f := func(a1, a2 uint32, n1, n2 uint16) bool {
		a := Extent{LBA: LBA(a1), Sectors: uint32(n1) + 1}
		b := Extent{LBA: LBA(a2), Sectors: uint32(n2) + 1}
		iab, okab := a.Intersect(b)
		iba, okba := b.Intersect(a)
		if okab != okba {
			return false
		}
		if okab != a.Overlaps(b) {
			return false
		}
		if !okab {
			return true
		}
		if iab != iba {
			return false
		}
		return iab.LBA >= a.LBA && iab.End() <= a.End() &&
			iab.LBA >= b.LBA && iab.End() <= b.End()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckIO(t *testing.T) {
	if err := CheckIO(100, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if err := CheckIO(100, 0, make([]byte, 100)); err == nil {
		t.Fatal("unaligned buffer accepted")
	}
	if err := CheckIO(100, 100, make([]byte, 512)); err == nil {
		t.Fatal("I/O past end accepted")
	}
	if err := CheckIO(100, 99, make([]byte, 512)); err != nil {
		t.Fatal("last-sector I/O rejected")
	}
}
