// Package replica implements LSVD's asynchronous geo-replication
// (paper §4.8): because the volume is an ordered stream of immutable
// numbered objects, a replica is maintained by lazily copying objects
// from the primary object store to a secondary one. Objects may arrive
// out of order or be skipped entirely when the primary's garbage
// collector deletes them before they are copied; the standard LSVD
// recovery rules (checkpoint + consecutive-prefix replay) still
// produce a consistent disk on the replica.
package replica

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"lsvd/internal/blockstore"
	"lsvd/internal/objstore"
)

// Replicator copies one volume's object stream between stores.
type Replicator struct {
	// Primary and Replica are the source and destination stores.
	Primary, Replica objstore.Store
	// Volume is the object name prefix.
	Volume string
	// LagObjects is the age threshold expressed in stream positions:
	// the newest LagObjects sequence objects are not yet copied
	// (the paper used "older than 60 seconds").
	LagObjects int

	copied      int
	copiedBytes int64
	skipped     int
}

// Stats reports replication progress.
type Stats struct {
	CopiedObjects int
	CopiedBytes   int64
	SkippedGone   int // deleted at the primary before they were copied
}

// Stats returns cumulative progress.
func (r *Replicator) Stats() Stats {
	return Stats{CopiedObjects: r.copied, CopiedBytes: r.copiedBytes, SkippedGone: r.skipped}
}

func (r *Replicator) seqOf(name string) (uint64, bool) {
	suffix, found := strings.CutPrefix(name, r.Volume+".")
	if !found || len(suffix) != 8 {
		return 0, false
	}
	n, err := strconv.ParseUint(suffix, 10, 32)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Sync performs one replication pass: it copies every sequence object
// present at the primary but not at the replica, except the newest
// LagObjects ones, and then refreshes the superblock if the checkpoint
// it references has been copied. It returns the number of objects
// copied this pass.
func (r *Replicator) Sync(ctx context.Context) (int, error) {
	srcNames, err := r.Primary.List(ctx, r.Volume+".")
	if err != nil {
		return 0, err
	}
	dstNames, err := r.Replica.List(ctx, r.Volume+".")
	if err != nil {
		return 0, err
	}
	have := make(map[string]bool, len(dstNames))
	for _, n := range dstNames {
		have[n] = true
	}

	var seqNames []string
	var maxSeq uint64
	for _, n := range srcNames {
		if seq, ok := r.seqOf(n); ok {
			seqNames = append(seqNames, n)
			if seq > maxSeq {
				maxSeq = seq
			}
		}
	}
	cutoff := uint64(0)
	if maxSeq > uint64(r.LagObjects) {
		cutoff = maxSeq - uint64(r.LagObjects)
	}

	copied := 0
	for _, name := range seqNames {
		seq, _ := r.seqOf(name)
		if seq > cutoff || have[name] {
			continue
		}
		data, err := r.Primary.Get(ctx, name)
		if errors.Is(err, objstore.ErrNotFound) {
			// Garbage collected at the primary between List and Get:
			// fine, the stream no longer needs it.
			r.skipped++
			continue
		}
		if err != nil {
			return copied, err
		}
		if err := r.Replica.Put(ctx, name, data); err != nil {
			return copied, err
		}
		copied++
		r.copied++
		r.copiedBytes += int64(len(data))
	}

	if err := r.syncSuper(ctx); err != nil {
		return copied, err
	}
	return copied, nil
}

// syncSuper copies the superblock when doing so leaves the replica
// openable — i.e. the checkpoint it points to has been copied.
func (r *Replicator) syncSuper(ctx context.Context) error {
	super := r.Volume + ".super"
	raw, err := r.Primary.Get(ctx, super)
	if errors.Is(err, objstore.ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	// Publish the superblock only once the checkpoint it references
	// has been copied, so the replica is openable at all times.
	info, err := blockstore.DecodeSuperInfo(raw)
	if err != nil {
		return err
	}
	if info.LastCheckpoint != 0 {
		ckptName := fmt.Sprintf("%s.%08d", r.Volume, info.LastCheckpoint)
		if _, err := r.Replica.Size(ctx, ckptName); err != nil {
			return nil // checkpoint not replicated yet; keep old super
		}
	}
	return r.Replica.Put(ctx, super, raw)
}
