package experiments

import (
	"context"
	"fmt"
	"sort"
)

// Driver runs one experiment.
type Driver func(ctx context.Context, e Env) (*Table, error)

// Registry maps experiment names (as used by cmd/lsvd-bench and the
// root benchmarks) to drivers, one per paper table/figure.
var Registry = map[string]Driver{
	"fig6":       Fig6,
	"fig7":       Fig7,
	"seqread":    SeqRead,
	"fig8":       Fig8,
	"table3":     Table3,
	"fig9":       Fig9,
	"fig10":      Fig10,
	"fig11":      Fig11,
	"table4":     Table4,
	"fig12":      Fig12,
	"fig13":      Fig13,
	"fig14":      Fig14,
	"fig15":      Fig15,
	"gcslowdown": GCSlowdown,
	"table5":     Table5,
	"table6":     Table6,
	"fig16":      Fig16,
	"sec49":      Sec49,
	"ablations":  Ablations,
	"setup":      Setup,
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for n := range Registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func Run(ctx context.Context, e Env, name string) (*Table, error) {
	d, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return d(ctx, e)
}
