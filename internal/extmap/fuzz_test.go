package extmap

import (
	"bytes"
	"encoding/binary"
	"testing"

	"lsvd/internal/block"
)

// FuzzOpsOracle drives the extent map with an arbitrary op stream and
// checks it against the sector-granular model after every mutation:
// structural invariants hold, and a checkpoint round trip
// (MarshalBinary → UnmarshalBinary) reproduces exactly the same
// mapping. Each op is 5 bytes: kind, lba (2), sectors, obj.
func FuzzOpsOracle(f *testing.F) {
	f.Add([]byte{0, 0, 0, 8, 1})
	f.Add([]byte{0, 0, 0, 8, 1, 1, 0, 4, 8, 0})
	f.Add([]byte{0, 0, 0, 64, 1, 0, 0, 32, 8, 2, 2, 0, 16, 4, 0})
	f.Add([]byte{0, 255, 255, 64, 9, 1, 255, 255, 64, 0})

	f.Fuzz(func(t *testing.T, ops []byte) {
		m := New()
		md := model{}
		for len(ops) >= 5 {
			kind := ops[0]
			lba := block.LBA(binary.LittleEndian.Uint16(ops[1:3]))
			e := block.Extent{LBA: lba, Sectors: uint32(ops[3]%64) + 1}
			obj := uint32(ops[4]) + 1
			ops = ops[5:]
			switch kind % 3 {
			case 0:
				tgt := Target{Obj: obj, Off: lba * 2}
				m.Update(e, tgt)
				md.update(e, tgt)
			case 1:
				m.Delete(e)
				md.del(e)
			case 2:
				// UpdateExisting only rewrites sectors already mapped
				// to an older object — the GC's conditional install.
				tgt := Target{Obj: obj, Off: lba * 2}
				m.UpdateExisting(e, tgt, func(r Run) bool { return r.Target.Obj < obj })
				for i := block.LBA(0); i < block.LBA(e.Sectors); i++ {
					if old, ok := md[e.LBA+i]; ok && old.Obj < obj {
						md[e.LBA+i] = tgt.Shift(i)
					}
				}
			}
			if err := m.checkInvariants(); err != nil {
				t.Fatalf("invariants after op %d on %v: %v", kind%3, e, err)
			}
		}
		raw, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		m2 := New()
		if err := m2.UnmarshalBinary(raw); err != nil {
			t.Fatalf("round trip rejected own checkpoint: %v", err)
		}
		for _, mm := range []*Map{m, m2} {
			got := map[block.LBA]Target{}
			for _, r := range mm.Lookup(block.Extent{LBA: 0, Sectors: 1 << 17}) {
				if !r.Present {
					continue
				}
				for i := block.LBA(0); i < block.LBA(r.Sectors); i++ {
					got[r.LBA+i] = r.Target.Shift(i)
				}
			}
			if len(got) != len(md) {
				t.Fatalf("map holds %d sectors, oracle %d", len(got), len(md))
			}
			for lba, want := range md {
				if got[lba] != want {
					t.Fatalf("sector %d maps to %v, oracle says %v", lba, got[lba], want)
				}
			}
		}
	})
}

// FuzzUnmarshalBinary throws hostile bytes at the checkpoint loader —
// the parser recovery trusts after a crash. It must never panic, must
// bound allocation by the input length, and anything it accepts must
// satisfy the structural invariants and survive a round trip.
func FuzzUnmarshalBinary(f *testing.F) {
	m := New()
	m.Update(block.Extent{LBA: 0, Sectors: 16}, Target{Obj: 3, Off: 64})
	m.Update(block.Extent{LBA: 100, Sectors: 8}, Target{Obj: 4, Off: 0})
	if raw, err := m.MarshalBinary(); err == nil {
		f.Add(raw)
		f.Add(raw[:len(raw)-3])
		// Entry count inflated past the payload.
		bad := append([]byte{}, raw...)
		binary.LittleEndian.PutUint32(bad, 1<<30)
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5})

	f.Fuzz(func(t *testing.T, raw []byte) {
		m := New()
		if err := m.UnmarshalBinary(raw); err != nil {
			return
		}
		if err := m.checkInvariants(); err != nil {
			t.Fatalf("accepted checkpoint violates invariants: %v", err)
		}
		again, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		m2 := New()
		if err := m2.UnmarshalBinary(again); err != nil {
			t.Fatalf("re-marshaled checkpoint rejected: %v", err)
		}
		raw2, err := m2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, raw2) {
			t.Fatal("marshal/unmarshal/marshal is not a fixed point")
		}
	})
}
