package experiments

import (
	"context"
	"strconv"
	"testing"
)

var ctx = context.Background()

func testEnv() Env { return Env{Scale: 128, Seed: 42} }

func cell(t *testing.T, tab *Table, row int, col string) string {
	t.Helper()
	for i, h := range tab.Header {
		if h == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("no column %q in %v", col, tab.Header)
	return ""
}

func cellF(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("cell %d/%s = %q: %v", row, col, cell(t, tab, row, col), err)
	}
	return v
}

func findRow(t *testing.T, tab *Table, match func(row []string) bool) int {
	t.Helper()
	for i, r := range tab.Rows {
		if match(r) {
			return i
		}
	}
	t.Fatalf("no matching row in %q", tab.Title)
	return -1
}

// TestFig6Shape: LSVD wins small random writes (paper: 20-30% faster
// for 4/16 KiB) and falls behind only for 64 KiB at QD 32.
func TestFig6Shape(t *testing.T) {
	tab, err := Fig6(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	small := findRow(t, tab, func(r []string) bool { return r[0] == "4K" && r[1] == "32" })
	if ratio := cellF(t, tab, small, "ratio"); ratio < 1.05 {
		t.Errorf("4K QD32: LSVD/bcache ratio %.2f, want > 1.05", ratio)
	}
	big := findRow(t, tab, func(r []string) bool { return r[0] == "64K" && r[1] == "32" })
	if ratio := cellF(t, tab, big, "ratio"); ratio > 1.15 {
		t.Errorf("64K QD32: ratio %.2f, paper has LSVD falling behind", ratio)
	}
	// Sanity: 4K QD32 LSVD throughput in the paper's ballpark
	// (~245 MB/s => 60K IOPS).
	if mbs := cellF(t, tab, small, "LSVD"); mbs < 120 || mbs > 500 {
		t.Errorf("4K QD32 LSVD %.0f MB/s, expected paper-ballpark ~245", mbs)
	}
}

// TestFig7Shape: reads are equivalent at low QD; bcache up to ~30%
// ahead at high QD (unoptimized LSVD read path).
func TestFig7Shape(t *testing.T) {
	tab, err := Fig7(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	hi := findRow(t, tab, func(r []string) bool { return r[0] == "4K" && r[1] == "32" })
	ratio := cellF(t, tab, hi, "ratio")
	if ratio > 1.02 || ratio < 0.6 {
		t.Errorf("4K QD32 read ratio %.2f, want bcache ahead (0.6-1.0)", ratio)
	}
}

// TestFig8Shape: varmail 4x, oltp ~1.25x, fileserver ~0.8-1x.
func TestFig8Shape(t *testing.T) {
	tab, err := Fig8(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	vm := findRow(t, tab, func(r []string) bool { return r[0] == "varmail" })
	if norm := cellF(t, tab, vm, "normalized"); norm < 1.5 {
		t.Errorf("varmail normalized %.2f, paper has 4x", norm)
	}
	ol := findRow(t, tab, func(r []string) bool { return r[0] == "oltp" })
	if norm := cellF(t, tab, ol, "normalized"); norm < 1.0 {
		t.Errorf("oltp normalized %.2f, paper has 1.25x", norm)
	}
}

// TestTable4Shape: LSVD mounts in all trials; bcache fails at least
// one (paper: trial 2 unmountable).
func TestTable4Shape(t *testing.T) {
	tab, err := Table4(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	var lsvdOK, bcacheFail int
	for _, r := range tab.Rows {
		switch r[0] {
		case "LSVD":
			if r[2] == "yes" {
				lsvdOK++
			}
		case "bcache+RBD":
			if r[2] == "no" {
				bcacheFail++
			}
		}
	}
	if lsvdOK != 3 {
		t.Errorf("LSVD mounted %d/3 trials", lsvdOK)
	}
	if bcacheFail == 0 {
		t.Error("bcache never failed a crash trial; paper has 1/3 unmountable")
	}
}

// TestFig13Shape: RBD op amplification ~6x; LSVD well under 1 backend
// op per client write (paper: 0.25).
func TestFig13Shape(t *testing.T) {
	tab, err := Fig13(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	rbdRow := findRow(t, tab, func(r []string) bool { return r[0] == "RBD" })
	if ampl := cellF(t, tab, rbdRow, "op ampl"); ampl < 5.5 || ampl > 6.5 {
		t.Errorf("RBD op amplification %.2f, want ~6", ampl)
	}
	if ampl := cellF(t, tab, rbdRow, "byte ampl"); ampl < 5.5 {
		t.Errorf("RBD byte amplification %.2f, want ~6+", ampl)
	}
	lsvdRow := findRow(t, tab, func(r []string) bool { return r[0] == "LSVD" })
	if ampl := cellF(t, tab, lsvdRow, "op ampl"); ampl > 0.8 {
		t.Errorf("LSVD op amplification %.2f, want << 1 (paper 0.25)", ampl)
	}
	if ampl := cellF(t, tab, lsvdRow, "byte ampl"); ampl < 1.2 || ampl > 2.2 {
		t.Errorf("LSVD byte amplification %.2f, want ~1.5-1.7 (EC + meta)", ampl)
	}
}

// TestFig12Shape: LSVD reaches much higher IOPS while leaving the
// backend mostly idle; RBD saturates the pool at far lower IOPS.
func TestFig12Shape(t *testing.T) {
	tab, err := Fig12(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	l32 := findRow(t, tab, func(r []string) bool { return r[0] == "LSVD" && r[1] == "32" })
	r32 := findRow(t, tab, func(r []string) bool { return r[0] == "RBD" && r[1] == "32" })
	lIOPS, lUtil := cellF(t, tab, l32, "kIOPS"), cellF(t, tab, l32, "backend util %")
	rIOPS, rUtil := cellF(t, tab, r32, "kIOPS"), cellF(t, tab, r32, "backend util %")
	if lIOPS < 2*rIOPS {
		t.Errorf("LSVD %.0f kIOPS vs RBD %.0f: want large advantage (paper ~4x)", lIOPS, rIOPS)
	}
	if lUtil >= rUtil/2 {
		t.Errorf("LSVD util %.0f%% vs RBD %.0f%%: want LSVD mostly idle", lUtil, rUtil)
	}
}

func TestFig11Shape(t *testing.T) {
	tab, err := Fig11(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	l := findRow(t, tab, func(r []string) bool { return r[0] == "LSVD" })
	b := findRow(t, tab, func(r []string) bool { return r[0] == "bcache+RBD" })
	lSync := cellF(t, tab, l, "synced (s)")
	bSync := cellF(t, tab, b, "synced (s)")
	if bSync < 3*lSync {
		t.Errorf("bcache synced in %.0fs vs LSVD %.0fs: paper has ~11.5x gap", bSync, lSync)
	}
	lwb := cellF(t, tab, l, "avg writeback MB/s")
	bwb := cellF(t, tab, b, "avg writeback MB/s")
	if lwb < 3*bwb {
		t.Errorf("writeback speeds %.0f vs %.0f MB/s: paper has 173 vs 15", lwb, bwb)
	}
}

func TestFig15Shape(t *testing.T) {
	tab, err := Fig15(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	// Last sample with GC on: utilization near/above the 70% target;
	// with GC off: utilization keeps degrading below it.
	var lastOff, lastOn float64
	for _, r := range tab.Rows {
		u, _ := strconv.ParseFloat(r[4], 64)
		if r[0] == "off" {
			lastOff = u
		} else {
			lastOn = u
		}
	}
	if lastOn < 0.60 {
		t.Errorf("GC on: final utilization %.2f, want >= ~0.65", lastOn)
	}
	if lastOff >= lastOn {
		t.Errorf("GC off utilization %.2f not worse than on %.2f", lastOff, lastOn)
	}
}

func TestTable3Runs(t *testing.T) {
	tab, err := Table3(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	if len(tab.Rows) != 3 {
		t.Fatal("want 3 workloads")
	}
}

func TestTable6Runs(t *testing.T) {
	tab, err := Table6(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	// The S3 request dominates the read-miss path (paper: 5.9 ms of a
	// ~6.2 ms total).
	var s3us, totalus float64
	for _, r := range tab.Rows {
		if r[0] == "read miss" && r[1] == "S3 range request" {
			s3us, _ = strconv.ParseFloat(r[2], 64)
		}
		if r[0] == "read miss" && r[1] == "TOTAL" {
			totalus, _ = strconv.ParseFloat(r[2], 64)
		}
	}
	if s3us < 0.8*totalus-300 || s3us == 0 {
		t.Errorf("S3 term %.0fµs of %.0fµs total; paper has it dominant", s3us, totalus)
	}
}

func TestFig16Runs(t *testing.T) {
	tab, err := Fig16(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	found := false
	for _, r := range tab.Rows {
		if r[0] == "replica mounts consistently" && r[1] == "yes" {
			found = true
		}
	}
	if !found {
		t.Fatal("replica consistency row missing")
	}
}

func TestSec49Runs(t *testing.T) {
	tab, err := Sec49(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"table3", "table4", "table5", "table6", "sec49", "seqread", "gcslowdown", "ablations", "setup"}
	for _, n := range want {
		if _, ok := Registry[n]; !ok {
			t.Errorf("experiment %q missing from registry", n)
		}
	}
	if _, err := Run(ctx, testEnv(), "nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "x", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if s := tab.String(); s == "" {
		t.Fatal("empty render")
	}
	if csv := tab.CSV(); csv != "a,b\n1,2\n" {
		t.Fatalf("csv %q", csv)
	}
}

// TestFig9Shape: with a small cache the run is write-back bound; LSVD
// keeps near-SSD speed while bcache+RBD degrades toward uncached RBD
// (paper §4.3: 2x-8x).
func TestFig9Shape(t *testing.T) {
	tab, err := Fig9(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	small := findRow(t, tab, func(r []string) bool { return r[0] == "4K" && r[1] == "32" })
	if ratio := cellF(t, tab, small, "ratio"); ratio < 1.4 {
		t.Errorf("4K QD32 small-cache ratio %.2f, paper has 2-8x", ratio)
	}
	// Sustained throughput must be below the in-cache number for the
	// baseline (it is now backend-bound).
	if b := cellF(t, tab, small, "bcache+RBD"); b > 150 {
		t.Errorf("bcache sustained 4K %.0f MB/s, should be backend-bound", b)
	}
}

// TestAblations: each design-choice toggle must move its metric in the
// documented direction.
func TestAblations(t *testing.T) {
	tab, err := Ablations(ctx, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	get := func(name string) (off, on float64) {
		r := findRow(t, tab, func(r []string) bool { return r[0] == name })
		return cellF(t, tab, r, "off"), cellF(t, tab, r, "on")
	}
	if off, on := get("temporal prefetch"); on >= off {
		t.Errorf("prefetch did not reduce backend reads: %v -> %v", off, on)
	}
	if off, on := get("GC reads from cache"); on >= off {
		t.Errorf("GC cache fetch did not reduce backend GETs: %v -> %v", off, on)
	}
	if off, on := get("intra-batch coalescing"); on >= off {
		t.Errorf("coalescing did not reduce backend bytes: %v -> %v", off, on)
	}
	if off, on := get("destage via SSD (kernel/user split)"); on <= off {
		t.Errorf("SSD pass-through did not add device reads: %v -> %v", off, on)
	}
}
