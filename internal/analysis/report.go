package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Machine-readable findings. The CI gate works by set difference
// against a checked-in baseline, so two properties matter more than
// anything else:
//
//   - Stability: the same tree must serialize to byte-identical JSON
//     on every run and every machine. Findings are sorted, paths are
//     module-relative with forward slashes, and absolute paths are
//     stripped out of messages.
//
//   - Churn resistance: the fingerprint identifies a finding across
//     unrelated edits. It hashes analyzer, file, and the normalized
//     message — NOT the line number — so inserting a function above a
//     waived finding does not manufacture a "new" one. Moving a
//     finding to another file, or the message changing (which means
//     the defect itself changed), rotates the fingerprint and the gate
//     fires; that is the intended tradeoff.

// Finding is one diagnostic in stable, machine-readable form.
type Finding struct {
	Analyzer    string `json:"analyzer"`
	File        string `json:"file"` // module-relative, forward slashes
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Message     string `json:"message"`
	Fingerprint string `json:"fingerprint"`
}

// Baseline is the checked-in vet-baseline.json: the set of findings
// the tree is allowed to have. Empty is the steady state; entries are
// parked debt, each visible in review when added.
type Baseline struct {
	// Comment is free-form documentation carried in the file.
	Comment  string    `json:"comment,omitempty"`
	Findings []Finding `json:"findings"`
}

// MakeFindings converts driver diagnostics into sorted findings.
// absRoot is the module root used to relativize file paths; it is also
// scrubbed from message text (lockheld's "reaches ... at <pos>" embeds
// positions) so output does not vary with the checkout location.
func MakeFindings(diags []Diagnostic, absRoot string) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, Finding{
			Analyzer:    d.Analyzer,
			File:        relPath(absRoot, d.Pos.Filename),
			Line:        d.Pos.Line,
			Col:         d.Pos.Column,
			Message:     scrubRoot(d.Message, absRoot),
			Fingerprint: "",
		})
	}
	for i := range out {
		out[i].Fingerprint = fingerprint(out[i])
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

func relPath(absRoot, file string) string {
	if absRoot != "" {
		if r, err := filepath.Rel(absRoot, file); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
	}
	return filepath.ToSlash(file)
}

func scrubRoot(msg, absRoot string) string {
	if absRoot == "" {
		return msg
	}
	prefix := absRoot
	if !strings.HasSuffix(prefix, string(os.PathSeparator)) {
		prefix += string(os.PathSeparator)
	}
	msg = strings.ReplaceAll(msg, prefix, "")
	return strings.ReplaceAll(msg, "\\", "/")
}

// fingerprint is a short content hash of (analyzer, file, message).
// Line and column are deliberately excluded; see the package comment
// above for why.
func fingerprint(f Finding) string {
	h := sha256.Sum256([]byte(f.Analyzer + "\x00" + f.File + "\x00" + f.Message))
	return hex.EncodeToString(h[:8])
}

// EncodeFindings renders findings as the canonical JSON document:
// two-space indent, sorted input, trailing newline. Byte-stable for
// identical finding sets.
func EncodeFindings(fs []Finding) []byte {
	doc := struct {
		Findings []Finding `json:"findings"`
	}{Findings: fs}
	if doc.Findings == nil {
		doc.Findings = []Finding{}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err) // plain structs cannot fail to marshal
	}
	return append(b, '\n')
}

// EncodeBaseline renders a baseline file with the same canonical
// formatting as EncodeFindings.
func EncodeBaseline(bl *Baseline) []byte {
	if bl.Findings == nil {
		bl.Findings = []Finding{}
	}
	b, err := json.MarshalIndent(bl, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// LoadBaseline reads a vet-baseline.json. A missing file is an empty
// baseline, so bootstrapping a repo needs no ceremony.
func LoadBaseline(path string) (*Baseline, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Baseline{}, nil
		}
		return nil, err
	}
	var bl Baseline
	if err := json.Unmarshal(b, &bl); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bl, nil
}

// DiffBaseline splits current findings against the baseline:
// fresh = present now, not in the baseline (the gate fails on these);
// stale = baseline entries no longer reported (debt that got paid —
// the operator should regenerate the file so it cannot mask a future
// regression at the same fingerprint).
func DiffBaseline(current []Finding, bl *Baseline) (fresh []Finding, stale []Finding) {
	known := make(map[string]bool, len(bl.Findings))
	for _, f := range bl.Findings {
		known[f.Fingerprint] = true
	}
	seen := make(map[string]bool, len(current))
	for _, f := range current {
		seen[f.Fingerprint] = true
		if !known[f.Fingerprint] {
			fresh = append(fresh, f)
		}
	}
	for _, f := range bl.Findings {
		if !seen[f.Fingerprint] {
			stale = append(stale, f)
		}
	}
	return fresh, stale
}
