package analysis

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder builds the module-wide acquired-before graph over the
// //lsvd:lock mutexes and fails on cycles: two code paths taking the
// same pair of locks in opposite orders is a deadlock waiting for the
// right interleaving, and no test reliably produces it. Direct edges
// come from acquisitions with another lock held; indirect edges from
// a global fixpoint over per-function summaries ("locks acquired while
// L is still held"), materialized only at call sites actually reached
// with L held — so a helper that takes its own private lock does not
// manufacture edges for callers that never hold anything. The walker's
// lock-drop modeling keeps release-then-call-then-reacquire protocols
// (blockstore header fetch, GC writeback) out of the graph.
func newLockorder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "the acquired-before graph over //lsvd:lock mutexes must be acyclic",
	}

	type edge struct{ from, to string }
	type rootCall struct {
		lock   string
		callee string // fn.FullName()
		pos    token.Position
	}
	edges := make(map[edge]token.Position)
	addEdge := func(e edge, pos token.Position) {
		if _, ok := edges[e]; !ok {
			edges[e] = pos
		}
	}
	// awh[fn][L]: locks acquired while the caller's L is still held.
	awh := make(map[string]map[string]map[string]bool)
	// heldCalls[fn][L]: module callees invoked while L is still held.
	heldCalls := make(map[string]map[string]map[string]bool)
	var rootCalls []rootCall
	at := func(m map[string]map[string]map[string]bool, fn, l string) map[string]bool {
		if m[fn] == nil {
			m[fn] = make(map[string]map[string]bool)
		}
		if m[fn][l] == nil {
			m[fn][l] = make(map[string]bool)
		}
		return m[fn][l]
	}
	contains := func(held []string, l string) bool {
		for _, h := range held {
			if h == l {
				return true
			}
		}
		return false
	}

	a.Run = func(pass *Pass) {
		locks := pass.Ann.Global.LockNames
		for fn, fd := range declaredFuncs(pass) {
			key := fn.FullName()
			walkFunc(pass, fd.Body, nil, flowEvents{
				onAcquire: func(pos token.Pos, lock string, held []string) {
					for _, h := range uniqStrings(held) {
						addEdge(edge{h, lock}, pass.Fset.Position(pos))
					}
				},
				onCall: func(pos token.Pos, callee *types.Func, held []string) {
					for _, h := range uniqStrings(held) {
						rootCalls = append(rootCalls, rootCall{h, callee.FullName(), pass.Fset.Position(pos)})
					}
				},
			})
			for _, l := range locks {
				lock := l
				acq := at(awh, key, lock)
				calls := at(heldCalls, key, lock)
				walkFunc(pass, fd.Body, []string{lock}, flowEvents{
					onAcquire: func(pos token.Pos, acquired string, held []string) {
						if contains(held, lock) {
							acq[acquired] = true
						}
					},
					onCall: func(pos token.Pos, callee *types.Func, held []string) {
						if contains(held, lock) {
							calls[callee.FullName()] = true
						}
					},
				})
			}
		}
	}

	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		// Global fixpoint: calling G while L is held imports G's
		// L-summary (locks acquired, deeper calls).
		for changed := true; changed; {
			changed = false
			for fn := range heldCalls {
				for l, calls := range heldCalls[fn] {
					for callee := range calls {
						for acquired := range awh[callee][l] {
							if !at(awh, fn, l)[acquired] {
								at(awh, fn, l)[acquired] = true
								changed = true
							}
						}
						for deeper := range heldCalls[callee][l] {
							if !calls[deeper] {
								calls[deeper] = true
								changed = true
							}
						}
					}
				}
			}
		}
		// Materialize indirect edges only at call sites actually made
		// with the lock held from a normal entry.
		for _, rc := range rootCalls {
			for acquired := range awh[rc.callee][rc.lock] {
				addEdge(edge{rc.lock, acquired}, rc.pos)
			}
		}

		succ := make(map[string][]string)
		for e := range edges {
			succ[e.from] = append(succ[e.from], e.to)
		}
		reaches := func(from, to string) []string {
			if from == to {
				return []string{from}
			}
			seen := map[string]bool{from: true}
			var dfs func(n string, path []string) []string
			dfs = func(n string, path []string) []string {
				path = append(path, n)
				if n == to {
					return path
				}
				for _, m := range succ[n] {
					if !seen[m] {
						seen[m] = true
						if p := dfs(m, path); p != nil {
							return p
						}
					}
				}
				return nil
			}
			return dfs(from, nil)
		}

		var sorted []edge
		for e := range edges {
			sorted = append(sorted, e)
		}
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].from != sorted[j].from {
				return sorted[i].from < sorted[j].from
			}
			return sorted[i].to < sorted[j].to
		})
		for _, e := range sorted {
			if e.from == e.to {
				report(edges[e], "lock %s acquired while already held", e.from)
				continue
			}
			if path := reaches(e.to, e.from); path != nil {
				report(edges[e], "lock order cycle: %s acquired while holding %s, but the reverse order %s -> %s is also established",
					e.to, e.from, strings.Join(path, " -> "), e.to)
			}
		}
	}
	return a
}
