package blockstore

import (
	"sort"

	"lsvd/internal/invariant"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
)

// The replication change feed (DESIGN.md §5i). A volume opened with
// Config.Replicated publishes every COMMITTED object — data objects,
// GC objects, checkpoints — plus superblock updates, in commit order,
// to an in-memory feed that a single shipper goroutine drains into a
// second backend. Two properties make the replica a crash-consistent
// prefix of the primary (§3.4 applied across backends):
//
//  1. Events enter the feed at the exact point the object becomes
//     visible to readers and recovery (installObject for data/GC,
//     finalizeCheckpointLocked for checkpoints), so feed order IS
//     commit order. Note commit order is not sequence order: a GC
//     object reserves its sequence after in-flight data objects and
//     commits immediately, so it can precede lower-numbered data
//     objects in the feed.
//  2. The shipped watermark below is the highest sequence S such that
//     every committed object with seq <= S has been acked by the
//     shipper. completeDelete refuses to delete any primary object
//     above the watermark (shipPinnedLocked), parking it on the same
//     persistent deferred list the snapshot pin uses — so no object
//     the replica's checkpoints may reference disappears from the
//     primary before the replica holds its own copy.
//
// Because feed order can run ahead of sequence order, the watermark is
// NOT "highest acked seq": acking a GC object at seq 10 while data
// objects 8 and 9 are still unshipped must not unpin them. Instead the
// feed tracks the set of published-but-unacked seqs and the watermark
// is min(unacked)-1 (or the highest published seq when the set is
// empty) — exactly the contiguously-shipped prefix.
//
// Superblock updates ride the feed as Seq-0 events (journal.TypeSuper)
// that carry no lag accounting: the shipper re-reads the LIVE super
// when it processes one, and only copies it once the checkpoint it
// names exists on the replica, so the replica's super never points at
// an object the replica doesn't have.

// ShipEvent is one entry of the replication change feed: a committed
// numbered object or a superblock update. Numbered events carry the
// resolved backend key (clone-base objects resolve to the base
// volume's key) and the object's size for lag accounting; superblock
// events have Seq 0 and Typ journal.TypeSuper.
type ShipEvent struct {
	Seq   uint32
	Typ   journal.Type
	Name  string
	Bytes int64
}

// IsSuper reports whether the event is a superblock update rather than
// a numbered object.
func (e ShipEvent) IsSuper() bool { return e.Typ == journal.TypeSuper }

// shipPublishLocked appends a committed object (or super update) to
// the feed. No-op unless the volume is replicated and a shipper has
// attached — recovery-time installs run before attach and are covered
// by the ShipAttach backlog instead.
//
//lsvd:requires bs.mu
func (s *Store) shipPublishLocked(seq uint32, typ journal.Type, bytes int64) {
	if !s.cfg.Replicated || !s.shipAttached || s.shipClosed {
		return
	}
	ev := ShipEvent{Seq: seq, Typ: typ, Bytes: bytes}
	if typ == journal.TypeSuper {
		ev.Name = superName(s.cfg.Volume)
	} else {
		ev.Name = s.name(seq)
		s.shipUnacked[seq] = struct{}{}
		if seq > s.shipMaxPub {
			s.shipMaxPub = seq
		}
		s.shipLagBytes += bytes
	}
	s.shipFeed = append(s.shipFeed, ev)
	s.shipCond.Broadcast()
}

// ShipAttach registers the volume's shipper and returns the backlog:
// one event per committed object, ascending by sequence number, plus a
// trailing superblock event. It resets the watermark to zero — every
// object counts as unshipped until acked (the shipper probes the
// replica and acks without copying what is already there), so deferred
// deletions stay pinned until each object is confirmed on the replica.
func (s *Store) ShipAttach() []ShipEvent {
	invariant.LockOrder("bs.mu")
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
		invariant.LockRelease("bs.mu")
	}()
	s.shipAttached = true
	s.shipClosed = false
	s.shipFeed = nil
	s.shipUnacked = make(map[uint32]struct{}, len(s.objects))
	s.shipMaxPub, s.shipMark, s.shipLagBytes = 0, 0, 0
	seqs := make([]uint32, 0, len(s.objects))
	for seq := range s.objects {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	evs := make([]ShipEvent, 0, len(seqs)+1)
	for _, seq := range seqs {
		o := s.objects[seq]
		evs = append(evs, ShipEvent{Seq: seq, Typ: o.typ, Name: s.name(seq), Bytes: o.totalBytes})
		s.shipUnacked[seq] = struct{}{}
		if seq > s.shipMaxPub {
			s.shipMaxPub = seq
		}
		s.shipLagBytes += o.totalBytes
	}
	evs = append(evs, ShipEvent{Typ: journal.TypeSuper, Name: superName(s.cfg.Volume)})
	return evs
}

// ShipNext blocks until the feed has events or is closed, then drains
// it. The second return is false only when the feed is closed AND
// empty — a drain-mode close delivers every queued event first.
func (s *Store) ShipNext() ([]ShipEvent, bool) {
	invariant.LockOrder("bs.mu")
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
		invariant.LockRelease("bs.mu")
	}()
	for len(s.shipFeed) == 0 && !s.shipClosed {
		s.shipCond.Wait()
	}
	evs := s.shipFeed
	s.shipFeed = nil
	return evs, len(evs) > 0 || !s.shipClosed
}

// ShipAck records that the shipper has durably copied (or verified, or
// deliberately skipped) one numbered object, advances the watermark,
// and — when it moved — re-drives the deferred deletions the watermark
// was pinning. Super events need no ack.
func (s *Store) ShipAck(ev ShipEvent) {
	if ev.IsSuper() {
		return
	}
	invariant.LockOrder("bs.mu")
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
		invariant.LockRelease("bs.mu")
	}()
	if _, ok := s.shipUnacked[ev.Seq]; !ok {
		return
	}
	delete(s.shipUnacked, ev.Seq)
	s.shipLagBytes -= ev.Bytes
	mark := s.shipMaxPub
	for seq := range s.shipUnacked {
		if seq <= mark {
			mark = seq - 1
		}
	}
	if mark != s.shipMark {
		s.shipMark = mark
		s.redriveShipDeferredLocked()
	}
}

// redriveShipDeferredLocked re-runs the deferred-deletion list after
// the shipped watermark advanced: entries no longer pinned (by the
// watermark or a snapshot) delete now instead of waiting for the next
// DeleteSnapshot or checkpoint sweep. Failures re-defer, as on the
// checkpoint release path — deletion is space reclaim, not
// correctness.
//
//lsvd:requires bs.mu
func (s *Store) redriveShipDeferredLocked() {
	// A late ack racing Abort must not mutate the backend after the
	// kill point (crash modeling: the store is quiescing).
	if s.aborting || len(s.deferred) == 0 {
		return
	}
	deferred := s.deferred
	s.deferred = nil
	for _, d := range deferred {
		if err := s.completeDelete(d); err != nil {
			s.deferred = append(s.deferred, d)
		}
	}
}

// shipPinnedLocked reports whether deleting obj from the primary would
// race the shipper: anything above the shipped watermark may not have
// reached the replica, and the replica's latest checkpoint may still
// reference it. Before a shipper attaches the watermark is zero, so a
// replicated volume conservatively pins everything — the attach
// backlog probe acks already-shipped objects and unpins them promptly.
//
//lsvd:requires bs.mu
func (s *Store) shipPinnedLocked(obj uint32) bool {
	return s.cfg.Replicated && obj > s.shipMark
}

// ShipClose detaches the feed. drain=true leaves queued events for the
// shipper to finish (clean close); drain=false drops them (Kill).
func (s *Store) ShipClose(drain bool) {
	invariant.LockOrder("bs.mu")
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
		invariant.LockRelease("bs.mu")
	}()
	s.shipClosed = true
	if !drain {
		s.shipFeed = nil
	}
	s.shipCond.Broadcast()
}

// ShipLag returns the published-but-unacked backlog: object count and
// payload bytes. This is the measured replication lag the RPO bound
// compares against.
func (s *Store) ShipLag() (objects int, bytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.shipUnacked), s.shipLagBytes
}

// ShippedSeq returns the shipped watermark: every committed object
// with seq <= ShippedSeq() is on the replica (or was deliberately
// skipped as already present).
func (s *Store) ShippedSeq() uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shipMark
}

// ObjectStore returns the volume's (retry-wrapped) backend store, for
// the shipper's source reads.
func (s *Store) ObjectStore() objstore.Store { return s.cfg.Store }

// ObjName and SuperName expose the volume's backend key layout for the
// replication shipper and admin tooling.
func ObjName(vol string, seq uint32) string { return objName(vol, seq) }

// SuperName returns the volume's superblock key.
func SuperName(vol string) string { return superName(vol) }

// Volume returns the volume name the store was configured with.
func (s *Store) Volume() string { return s.cfg.Volume }
