//go:build !lsvdcheck

package invariant

// Enabled reports whether the lsvdcheck build tag is on.
const Enabled = false

// Assert is a no-op without the lsvdcheck tag.
func Assert(bool, string) {}

// Assertf is a no-op without the lsvdcheck tag.
func Assertf(bool, string, ...any) {}

// LockOrder is a no-op without the lsvdcheck tag.
func LockOrder(string) {}

// LockRelease is a no-op without the lsvdcheck tag.
func LockRelease(string) {}
