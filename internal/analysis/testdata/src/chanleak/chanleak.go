// Package chanleak is the golden self-test for the chanleak analyzer:
// unbuffered channels whose every use lives inside a single spawned
// goroutine, so the goroutine's send or receive blocks forever.
package chanleak

func leakSend() {
	ch := make(chan int) // want "blocks forever"
	go func() { ch <- 1 }()
}

func leakRecv() {
	done := make(chan struct{}) // want "blocks forever"
	go func() { <-done }()
}

func leakRange() {
	ch := make(chan int, 0) // want "blocks forever"
	go func() {
		for range ch {
		}
	}()
}

// spawner mirrors the invariant.Go spawn-helper shape: the analyzer
// treats a function literal handed to a .Go(...) call as a goroutine
// body.
type spawner struct{}

func (spawner) Go(name string, fn func()) { go fn() }

func leakSpawnHelper() {
	var inv spawner
	ch := make(chan int) // want "blocks forever"
	inv.Go("worker", func() { ch <- 1 })
}

// okConsumed: the receive outside the goroutine pairs the send.
func okConsumed() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

// okBuffered: the lone send completes against the buffer.
func okBuffered() {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
}

// okEscapes: the channel is passed to another function, which may pair
// the operation.
func sink(ch chan int) {}

func okEscapes() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	sink(ch)
}

// okSelectDefault: the default case keeps the goroutine from parking.
func okSelectDefault() {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// okPaired: two goroutines share the channel and pair each other.
func okPaired() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	go func() { <-ch }()
}

// okClosed: close cannot park; no blocking op means no report.
func okClosed() {
	ch := make(chan int)
	go func() { close(ch) }()
}

// okDeferConsumer: a deferred literal runs in a context the analyzer
// does not model — treated as a potential pairing, so no report.
func okDeferConsumer() {
	ch := make(chan int)
	defer func() { <-ch }()
	go func() { ch <- 1 }()
}

// okIgnored: suppression comment is honored.
func okIgnored() {
	ch := make(chan int) //lsvd:ignore chanleak -- intentional park for the golden test
	go func() { ch <- 1 }()
}
