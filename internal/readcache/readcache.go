// Package readcache implements LSVD's SSD read cache (paper §3.1).
// Unlike the write-back cache it holds only clean data fetched from the
// backend, so its metadata needs no logging: losing the map merely
// costs re-fetches. The cache allocates space in large slabs, evicting
// whole slabs FIFO (the prototype's policy) or by LRU, and keeps an
// in-memory extent map from vLBA to SSD location that is periodically
// persisted to a reserved region to avoid cold restarts (§3.2).
//
// The slab pool is a shared Arena (§3.7: one local SSD statically
// partitioned between the host's virtual disks — except the read cache
// is shared dynamically rather than carved up): every volume on a host
// opens a named view (Cache) with its own extent map, while all views
// draw slabs from one pool. Each slab is owned by exactly one view, so
// the arena can account occupancy per volume and evict fairly: a slab
// is only ever reclaimed from a view holding more than its
// proportional share of the pool, which means a hot volume churning
// the arena can never push a cold volume below its share — the
// foreground/background interference guard the multi-tenant host
// needs.
//
// Write-after-read hazards — a backend fetch racing with a newer client
// write — are handled two ways: reads always consult the write cache
// first (§3.1), and the core invalidates overlapping read-cache entries
// on every write so that stale data cannot be exposed after the write
// cache evicts the newer copy.
package readcache

import (
	"encoding/binary"
	"fmt"
	"sync"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/invariant"
	"lsvd/internal/journal"
	"lsvd/internal/simdev"
)

// Policy selects the slab eviction policy (within the victim view).
type Policy int

const (
	// FIFO evicts the oldest-filled slab, as in the paper's prototype.
	FIFO Policy = iota
	// LRU evicts the slab least recently hit.
	LRU
)

// Config configures a read-cache arena.
type Config struct {
	// SlabBytes is the allocation/eviction unit. Default 4 MiB.
	SlabBytes int64
	// Policy is the eviction policy. Default FIFO.
	Policy Policy
	// MapBytes reserves space for map persistence. Default 16 MiB.
	MapBytes int64
}

func (c *Config) setDefaults() {
	if c.SlabBytes == 0 {
		c.SlabBytes = 4 * block.MiB
	}
	if c.MapBytes == 0 {
		c.MapBytes = 16 * block.MiB
	}
}

// SizedConfig scales the metadata reservation and slab size to the
// cache device so small experiment caches still hold a useful number
// of slabs (>= 8 where possible). Both the single-volume core and the
// multi-volume host size their arenas with it, so the two paths agree.
func SizedConfig(devBytes int64, policy Policy) Config {
	mapBytes := devBytes / 8
	if mapBytes > 16*block.MiB {
		mapBytes = 16 * block.MiB
	}
	if mapBytes < block.BlockSize {
		mapBytes = block.BlockSize
	}
	slab := int64(4 * block.MiB)
	for slab > 256<<10 && (devBytes-mapBytes)/slab < 8 {
		slab /= 2
	}
	return Config{Policy: policy, MapBytes: mapBytes, SlabBytes: slab}
}

// noOwner marks a slab no view owns.
const noOwner = -1

type slab struct {
	idx      int
	gen      uint32 // generation: bumped on reuse, stored in map targets
	owner    int    // view id owning every byte in the slab, or noOwner
	stale    bool   // restored for a persisted view that has not reopened
	fill     int64  // bytes used
	lastHit  uint64 // logical clock of last lookup hit
	inserted []block.Extent

	// pendingOwnerName names the persisted owner of a stale slab until
	// that view reopens and adopts it.
	pendingOwnerName string
}

// Stats reports one view's cache activity plus the arena-wide slab
// picture it shares.
type Stats struct {
	Slabs, LiveSlabs   int // arena-wide
	Hits, Misses       uint64
	Inserts            uint64
	SlabEvictions      uint64 // arena-wide
	MapExtents         int
	PersistedMapBytes  int64
	PrefetchHitSectors uint64 // hit sectors that were inserted by prefetch

	// OwnedSlabs/OwnedBytes are this view's arena occupancy;
	// FairShareSlabs is the proportional floor fair eviction protects.
	OwnedSlabs     int
	OwnedBytes     int64
	FairShareSlabs int
}

// Occupancy is one view's row in the arena-wide accounting.
type Occupancy struct {
	Volume string
	Slabs  int
	Bytes  int64
}

// ArenaStats is the arena-wide picture: slab totals and the per-view
// occupancy table (sorted by view creation order).
type ArenaStats struct {
	Slabs, LiveSlabs int
	SlabBytes        int64
	Evictions        uint64
	FairShareSlabs   int
	Views            []Occupancy
}

// Arena is a slab pool on one cache device shared by any number of
// per-volume views. All state is guarded by one mutex: data-path reads
// hold it across lookup+read so slab reuse cannot race a read.
type Arena struct {
	mu  sync.Mutex //lsvd:lock arena.mu
	dev simdev.Device
	cfg Config

	dataStart int64
	slabs     []*slab
	views     []*Cache
	byName    map[string]*Cache
	clock     uint64
	nextGen   uint32

	evictions      uint64
	persistedBytes int64

	// pending holds persisted view maps (keyed by name) awaiting their
	// Open; stale slab ownership is tracked on the slabs themselves.
	pending map[string][]byte
}

// Cache is one volume's view of an Arena: a private extent map over
// the shared slab pool. The single-volume New constructor returns a
// one-view arena, so existing callers see the historical behavior.
type Cache struct {
	a    *Arena
	id   int
	name string

	m *extmap.Map
	// pf marks vLBA ranges whose cached copy came from temporal
	// prefetch rather than a demand miss; hits on them feed the
	// PrefetchHitSectors counter. Stats-only: it is not persisted.
	pf *extmap.Map

	active int // slab being filled, -1 if none

	hits, misses, inserts uint64
	pfHitSectors          uint64
}

// NewArena builds a shared read-cache arena on dev, attempting to load
// persisted state (slab table + per-view maps).
func NewArena(dev simdev.Device, cfg Config) (*Arena, error) {
	cfg.setDefaults()
	a := &Arena{
		dev: dev, cfg: cfg, nextGen: 1,
		byName:  make(map[string]*Cache),
		pending: make(map[string][]byte),
	}
	a.dataStart = block.BlockSize + cfg.MapBytes
	n := (dev.Size() - a.dataStart) / cfg.SlabBytes
	if n < 2 {
		return nil, fmt.Errorf("readcache: device of %d bytes holds %d slabs; need >= 2", dev.Size(), n)
	}
	for i := 0; i < int(n); i++ {
		a.slabs = append(a.slabs, &slab{idx: i, owner: noOwner})
	}
	a.loadState() // best effort; failure just means a cold cache
	return a, nil
}

// New builds a single-view read cache on dev (the pre-arena API): a
// fresh arena with one anonymous view.
func New(dev simdev.Device, cfg Config) (*Cache, error) {
	a, err := NewArena(dev, cfg)
	if err != nil {
		return nil, err
	}
	return a.Open(""), nil
}

// Open returns the named view, creating it if needed. Reopening a name
// returns the same view — a volume that closes and reopens on a live
// host finds its cached data warm. If a persisted map for the name was
// loaded, it is restored (entries validated against the slab table).
func (a *Arena) Open(name string) *Cache {
	a.mu.Lock()
	defer a.mu.Unlock()
	if v, ok := a.byName[name]; ok {
		return v
	}
	v := &Cache{a: a, id: len(a.views), name: name, m: extmap.New(), pf: extmap.New(), active: -1}
	a.views = append(a.views, v)
	a.byName[name] = v
	if raw, ok := a.pending[name]; ok {
		delete(a.pending, name)
		a.restoreView(v, raw)
	}
	return v
}

// Purge drops every cached byte and map entry of the named view and
// returns its slabs to the free pool (volume deletion). The view stays
// registered; its next inserts start cold.
func (a *Arena) Purge(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.pending, name)
	v, ok := a.byName[name]
	if !ok {
		return
	}
	for _, s := range a.slabs {
		if s.owner == v.id {
			s.gen, s.owner, s.fill, s.lastHit, s.inserted, s.stale = 0, noOwner, 0, 0, nil, false
		}
	}
	v.m.Reset()
	v.pf.Reset()
	v.active = -1
}

// Views returns the registered view names in creation order.
func (a *Arena) Views() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.views))
	for i, v := range a.views {
		out[i] = v.name
	}
	return out
}

func (a *Arena) slabBase(idx int) int64 { return a.dataStart + int64(idx)*a.cfg.SlabBytes }

// fairShareSlabs is the proportional occupancy floor: the slab pool
// divided by the number of registered views. Eviction never reclaims
// from a view at or below it while any view is above it.
func (a *Arena) fairShareSlabs() int {
	n := len(a.views)
	if n == 0 {
		n = 1
	}
	share := len(a.slabs) / n
	if share < 1 {
		share = 1
	}
	return share
}

func (a *Arena) ownedSlabs(id int) (slabs int, bytes int64) {
	for _, s := range a.slabs {
		if s.owner == id {
			slabs++
			bytes += s.fill
		}
	}
	return slabs, bytes
}

// Name returns the view's name ("" for the single-volume view).
func (c *Cache) Name() string { return c.name }

// Arena returns the arena backing this view.
func (c *Cache) Arena() *Arena { return c.a }

// Lookup returns the view's coverage of ext and bumps hit statistics.
func (c *Cache) Lookup(ext block.Extent) []extmap.Run {
	a := c.a
	a.mu.Lock()
	defer a.mu.Unlock()
	runs := c.m.Lookup(ext)
	hit := false
	for _, r := range runs {
		if r.Present {
			hit = true
			a.clock++
			if s := a.slabOfTarget(c, r.Target); s != nil {
				s.lastHit = a.clock
			}
			c.notePrefetchHit(r.Extent)
		}
	}
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	return runs
}

// notePrefetchHit credits hit sectors that prefetch (rather than a
// demand miss) brought into the cache.
func (c *Cache) notePrefetchHit(ext block.Extent) {
	if c.pf.Len() == 0 {
		return
	}
	for _, pr := range c.pf.Lookup(ext) {
		if pr.Present {
			c.pfHitSectors += uint64(pr.Sectors)
		}
	}
}

// slabOfTarget resolves a map target to its slab iff the slab still
// holds this view's generation of the data.
func (a *Arena) slabOfTarget(c *Cache, t extmap.Target) *slab {
	off := t.Off.Bytes()
	if off < a.dataStart {
		return nil
	}
	idx := int((off - a.dataStart) / a.cfg.SlabBytes)
	if idx < 0 || idx >= len(a.slabs) {
		return nil
	}
	s := a.slabs[idx]
	if s.gen != t.Obj || s.owner != c.id {
		return nil
	}
	return s
}

// ReadAt reads cached data previously located via Lookup. Under
// concurrency a Lookup target can be evicted before the read; callers
// on the data path should use ReadExtent, which holds the lock across
// lookup and read.
func (c *Cache) ReadAt(t extmap.Target, buf []byte) error {
	return c.a.dev.ReadAt(buf, t.Off.Bytes())
}

// ReadExtent looks up ext, bumps hit statistics, and reads every
// present run into the matching positions of buf (len(buf) ==
// ext.Bytes()), all under one lock acquisition so a concurrent slab
// eviction cannot reuse the space mid-read. Absent runs are returned
// untouched for the caller's next level.
func (c *Cache) ReadExtent(ext block.Extent, buf []byte) ([]extmap.Run, error) {
	a := c.a
	a.mu.Lock()
	defer a.mu.Unlock()
	runs := c.m.Lookup(ext)
	hit := false
	for _, r := range runs {
		if !r.Present {
			continue
		}
		hit = true
		a.clock++
		if s := a.slabOfTarget(c, r.Target); s != nil {
			s.lastHit = a.clock
		}
		c.notePrefetchHit(r.Extent)
		off := (r.LBA - ext.LBA).Bytes()
		if err := a.dev.ReadAt(buf[off:off+r.Bytes()], r.Target.Off.Bytes()); err != nil {
			return nil, err
		}
	}
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	return runs, nil
}

// Insert stores fetched backend data for ext, splitting across slabs
// as needed and evicting old slabs when the arena is full.
func (c *Cache) Insert(ext block.Extent, data []byte) error {
	return c.insert(ext, data, false)
}

// InsertPrefetched is Insert for data brought in by temporal prefetch
// rather than a demand miss; later hits on it are counted separately
// so bench runs can report what the read-ahead earned.
func (c *Cache) InsertPrefetched(ext block.Extent, data []byte) error {
	return c.insert(ext, data, true)
}

func (c *Cache) insert(ext block.Extent, data []byte, prefetched bool) error {
	if int64(len(data)) != ext.Bytes() {
		return fmt.Errorf("readcache: extent %v does not match %d data bytes", ext, len(data))
	}
	a := c.a
	a.mu.Lock()
	defer a.mu.Unlock()
	if prefetched {
		// Identity target (Off = LBA) so adjacent tags merge in the map.
		c.pf.Update(ext, extmap.Target{Off: ext.LBA})
	} else if c.pf.Len() > 0 {
		c.pf.Delete(ext) // demand data over a prefetched range drops the tag
	}
	for ext.Sectors > 0 {
		s, err := a.writableSlab(c)
		if err != nil {
			return err
		}
		room := a.cfg.SlabBytes - s.fill
		take := ext.Bytes()
		if take > room {
			take = room &^ (block.SectorSize - 1)
		}
		sectors := uint32(take >> block.SectorShift)
		sub := block.Extent{LBA: ext.LBA, Sectors: sectors}
		off := a.slabBase(s.idx) + s.fill
		if err := a.dev.WriteAt(data[:take], off); err != nil {
			return err
		}
		c.m.Update(sub, extmap.Target{Obj: s.gen, Off: block.LBAFromBytes(off)})
		s.inserted = append(s.inserted, sub)
		s.fill += take
		c.inserts++
		data = data[take:]
		ext.LBA += block.LBA(sectors)
		ext.Sectors -= sectors
	}
	return nil
}

// writableSlab returns the view's active slab if it has space, or
// claims a fresh slab: free first, then stale (persisted for a view
// that never reopened), then a fair eviction.
func (a *Arena) writableSlab(c *Cache) (*slab, error) {
	if c.active >= 0 {
		if s := a.slabs[c.active]; s.owner == c.id && s.fill < a.cfg.SlabBytes {
			return s, nil
		}
		c.active = -1 // evicted out from under us or full
	}
	// A never-used slab, else the oldest stale one.
	var claim *slab
	for _, s := range a.slabs {
		if s.owner != noOwner {
			continue
		}
		if s.gen == 0 {
			claim = s
			break
		}
		if s.stale && (claim == nil || s.gen < claim.gen) {
			claim = s
		}
	}
	if claim == nil {
		victim := a.pickVictim(c)
		if victim < 0 {
			return nil, fmt.Errorf("readcache: no evictable slab")
		}
		a.evict(victim)
		claim = a.slabs[victim]
	}
	claim.gen = a.nextGen
	a.nextGen++
	claim.owner = c.id
	claim.stale = false
	claim.fill = 0
	claim.inserted = nil
	c.active = claim.idx
	return claim, nil
}

// pickVictim chooses the slab to evict for requester c: the victim
// view is the one holding the most slabs among views over the fair
// share — so a view at or below its proportional floor is untouchable
// while anyone (including the requester) is over it — and within the
// victim view the policy picks FIFO-oldest (lowest generation) or LRU.
// Active slabs are spared unless they are the view's only slab.
func (a *Arena) pickVictim(c *Cache) int {
	share := a.fairShareSlabs()
	owned := make([]int, len(a.views))
	for _, s := range a.slabs {
		if s.owner >= 0 && s.owner < len(owned) {
			owned[s.owner]++
		}
	}
	victim := -1
	for id, n := range owned {
		if n > share && (victim < 0 || n > owned[victim]) {
			victim = id
		}
	}
	if victim < 0 {
		// No view is over its share (the pool divides exactly): the
		// requester recycles its own slabs; a requester with none takes
		// from the largest holder.
		if owned[c.id] > 0 {
			victim = c.id
		} else {
			for id, n := range owned {
				if victim < 0 || n > owned[victim] {
					victim = id
				}
			}
			if victim < 0 || owned[victim] == 0 {
				return -1
			}
		}
	}
	v := a.views[victim]
	best := -1
	var bestGen uint32
	var bestHit uint64
	for _, s := range a.slabs {
		if s.owner != victim || s.idx == v.active {
			continue
		}
		switch a.cfg.Policy {
		case LRU:
			if best < 0 || s.lastHit < bestHit {
				best, bestHit = s.idx, s.lastHit
			}
		default: // FIFO: generations are assigned in fill order
			if best < 0 || s.gen < bestGen {
				best, bestGen = s.idx, s.gen
			}
		}
	}
	if best < 0 && v.active >= 0 && a.slabs[v.active].owner == victim {
		best = v.active // only the active slab is left
	}
	return best
}

// evict empties one slab: the owning view's map entries for it are
// dropped (so a later read misses instead of reading recycled bytes).
func (a *Arena) evict(idx int) {
	s := a.slabs[idx]
	if s.owner == noOwner {
		return
	}
	invariant.Assertf(s.owner >= 0 && s.owner < len(a.views),
		"readcache: slab %d owned by unknown view %d", idx, s.owner)
	v := a.views[s.owner]
	lo := block.LBAFromBytes(a.slabBase(idx))
	hi := lo + block.LBA(a.cfg.SlabBytes>>block.SectorShift)
	gen := s.gen
	for _, ext := range s.inserted {
		v.m.DeleteIf(ext, func(r extmap.Run) bool {
			return r.Target.Obj == gen && r.Target.Off >= lo && r.Target.Off < hi
		})
	}
	// Drop prefetch tags for whatever the eviction actually removed
	// (overlapping data re-inserted into newer slabs keeps its tag).
	if v.pf.Len() > 0 {
		for _, ext := range s.inserted {
			for _, r := range v.m.Lookup(ext) {
				if !r.Present {
					v.pf.Delete(r.Extent)
				}
			}
		}
	}
	if v.active == idx {
		v.active = -1
	}
	s.inserted = nil
	s.fill = 0
	s.lastHit = 0
	s.owner = noOwner
	s.stale = false
	a.evictions++
}

// Invalidate drops any cached data overlapping ext (called by the core
// on every client write).
func (c *Cache) Invalidate(ext block.Extent) {
	a := c.a
	a.mu.Lock()
	invariant.LockOrder("arena.mu")
	defer a.mu.Unlock()
	defer invariant.LockRelease("arena.mu")
	c.m.Delete(ext)
	if c.pf.Len() > 0 {
		c.pf.Delete(ext)
	}
}

// persistVersion tags the reserved-region layout: v2 adds per-slab
// ownership and multiple named view maps. v1 blobs (or any parse
// failure) load as a cold cache, which is safe.
const persistVersion = 2

// Persist writes the arena state — slab table plus every view's map —
// to the reserved region (best effort; §3.2: "the read cache map is
// periodically persisted to SSD").
func (c *Cache) Persist() error { return c.a.Persist() }

// Persist writes the arena state to the reserved region.
func (a *Arena) Persist() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var w payloadWriter
	w.u32(persistVersion)
	w.u32(uint32(len(a.slabs)))
	for _, s := range a.slabs {
		w.u32(s.gen)
		w.u64(uint64(s.fill))
		owner := int32(noOwner)
		if s.owner >= 0 {
			owner = int32(s.owner)
		}
		w.u32(uint32(owner))
	}
	w.u32(uint32(len(a.views)))
	for _, v := range a.views {
		mapBytes, err := v.m.MarshalBinary()
		if err != nil {
			return err
		}
		w.str(v.name)
		w.bytes(mapBytes)
	}
	rec, err := journal.Encode(&journal.Header{Type: journal.TypeCheckpoint, Seq: 1, DataLen: uint64(len(w.buf))}, w.buf, true)
	if err != nil {
		return err
	}
	if int64(len(rec)) > a.cfg.MapBytes {
		return fmt.Errorf("readcache: persisted map of %d bytes exceeds reserved %d", len(rec), a.cfg.MapBytes)
	}
	if err := a.dev.WriteAt(rec, block.BlockSize); err != nil {
		return err
	}
	a.persistedBytes = int64(len(rec))
	return a.dev.Flush()
}

// loadState attempts to restore persisted arena state; any failure
// leaves the arena cold, which is safe.
func (a *Arena) loadState() {
	hdr := make([]byte, block.BlockSize)
	if err := a.dev.ReadAt(hdr, block.BlockSize); err != nil {
		return
	}
	h, _, err := journal.DecodeHeader(hdr)
	if err != nil || h.Type != journal.TypeCheckpoint {
		return
	}
	// Bound the on-disk length field before converting: a corrupt
	// DataLen would wrap int64 negative, pass the MapBytes ceiling,
	// and panic in make below.
	if h.DataLen > uint64(a.cfg.MapBytes) {
		return
	}
	dataLen := int64(h.DataLen)
	total := int64(journal.AlignedHeaderSize(len(h.Extents))) + dataLen
	total = (total + block.BlockSize - 1) &^ (block.BlockSize - 1)
	if total > a.cfg.MapBytes {
		return
	}
	full := make([]byte, total)
	if err := a.dev.ReadAt(full, block.BlockSize); err != nil {
		return
	}
	_, payload, _, err := journal.Decode(full, true)
	if err != nil {
		return
	}
	r := payloadReader{buf: payload}
	if r.u32() != persistVersion {
		return
	}
	n := int(r.u32())
	if r.err != nil || n != len(a.slabs) {
		return
	}
	type slabState struct {
		gen   uint32
		fill  int64
		owner int32
	}
	state := make([]slabState, n)
	maxGen := uint32(0)
	for i := range state {
		state[i].gen = r.u32()
		state[i].fill = int64(r.u64())
		state[i].owner = int32(r.u32())
		if state[i].gen > maxGen {
			maxGen = state[i].gen
		}
	}
	nviews := int(r.u32())
	if r.err != nil || nviews < 0 || nviews > n {
		return
	}
	names := make([]string, nviews)
	maps := make([][]byte, nviews)
	for i := 0; i < nviews; i++ {
		names[i] = r.str()
		maps[i] = r.bytes()
	}
	if r.err != nil {
		return
	}
	// Commit: slab table first, then stash each view's map for its
	// Open. Restored slabs are "stale" until their view reopens; a
	// stale slab is reclaimable without a fairness pass.
	for i, st := range state {
		s := a.slabs[i]
		s.gen = st.gen
		s.fill = st.fill
		s.owner = noOwner
		s.stale = st.gen != 0 && st.owner >= 0 && int(st.owner) < nviews
		if s.stale {
			s.pendingOwnerName = names[st.owner]
		}
	}
	a.nextGen = maxGen + 1
	for i, name := range names {
		if len(maps[i]) > 0 {
			a.pending[name] = maps[i]
		}
	}
}

// restoreView adopts the stale slabs persisted for v and loads its
// map, dropping any entry that no longer matches a slab it owns (the
// slab may have been reclaimed between load and open).
func (a *Arena) restoreView(v *Cache, raw []byte) {
	for _, s := range a.slabs {
		if s.stale && s.pendingOwnerName == v.name {
			s.owner = v.id
			s.stale = false
			s.pendingOwnerName = ""
		}
	}
	m := extmap.New()
	if err := m.UnmarshalBinary(raw); err != nil {
		return
	}
	// Validate entries against the adopted slabs and rebuild the
	// per-slab insert lists so future evictions can clean them.
	type drop struct{ ext block.Extent }
	var drops []drop
	m.Foreach(func(ext block.Extent, t extmap.Target) bool {
		if s := a.slabOfTargetID(v.id, t); s != nil {
			s.inserted = append(s.inserted, ext)
		} else {
			drops = append(drops, drop{ext})
		}
		return true
	})
	for _, d := range drops {
		m.Delete(d.ext)
	}
	v.m = m
}

func (a *Arena) slabOfTargetID(id int, t extmap.Target) *slab {
	off := t.Off.Bytes()
	if off < a.dataStart {
		return nil
	}
	idx := int((off - a.dataStart) / a.cfg.SlabBytes)
	if idx < 0 || idx >= len(a.slabs) {
		return nil
	}
	s := a.slabs[idx]
	if s.gen != t.Obj || s.owner != id {
		return nil
	}
	return s
}

// Stats returns a snapshot of this view's statistics plus the shared
// slab picture.
func (c *Cache) Stats() Stats {
	a := c.a
	a.mu.Lock()
	defer a.mu.Unlock()
	live := 0
	for _, s := range a.slabs {
		if s.gen != 0 && (s.owner != noOwner || s.stale) {
			live++
		}
	}
	ownedSlabs, ownedBytes := a.ownedSlabs(c.id)
	return Stats{
		Slabs: len(a.slabs), LiveSlabs: live,
		Hits: c.hits, Misses: c.misses, Inserts: c.inserts,
		SlabEvictions: a.evictions, MapExtents: c.m.Len(),
		PersistedMapBytes:  a.persistedBytes,
		PrefetchHitSectors: c.pfHitSectors,
		OwnedSlabs:         ownedSlabs,
		OwnedBytes:         ownedBytes,
		FairShareSlabs:     a.fairShareSlabs(),
	}
}

// Stats returns the arena-wide picture with the per-view occupancy
// table.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := ArenaStats{
		Slabs: len(a.slabs), SlabBytes: a.cfg.SlabBytes,
		Evictions: a.evictions, FairShareSlabs: a.fairShareSlabs(),
	}
	for _, s := range a.slabs {
		if s.gen != 0 && (s.owner != noOwner || s.stale) {
			st.LiveSlabs++
		}
	}
	for _, v := range a.views {
		slabs, bytes := a.ownedSlabs(v.id)
		st.Views = append(st.Views, Occupancy{Volume: v.name, Slabs: slabs, Bytes: bytes})
	}
	// Persisted occupancy of views that have not reopened (offline
	// inspection sees every volume's footprint this way).
	stale := make(map[string]int)
	for _, s := range a.slabs {
		if s.stale {
			if i, ok := stale[s.pendingOwnerName]; ok {
				st.Views[i].Slabs++
				st.Views[i].Bytes += s.fill
			} else {
				stale[s.pendingOwnerName] = len(st.Views)
				st.Views = append(st.Views, Occupancy{Volume: s.pendingOwnerName, Slabs: 1, Bytes: s.fill})
			}
		}
	}
	return st
}

// --- persistence payload codec ---

type payloadWriter struct{ buf []byte }

func (w *payloadWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *payloadWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *payloadWriter) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.buf = append(w.buf, p...)
}

func (w *payloadWriter) str(s string) { w.bytes([]byte(s)) }

type payloadReader struct {
	buf []byte
	err error
}

func (r *payloadReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf) < n {
		r.err = fmt.Errorf("truncated at %d (need %d)", len(r.buf), n)
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *payloadReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *payloadReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *payloadReader) bytes() []byte { return r.take(int(r.u32())) }

func (r *payloadReader) str() string { return string(r.bytes()) }
