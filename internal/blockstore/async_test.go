package blockstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/objstore"
)

// gateStore blocks selected PUTs until the test releases them, so a
// test can force uploads to complete (or fail) in any order it likes.
type gateStore struct {
	objstore.Store

	mu    sync.Mutex
	gated map[string]bool
	gates map[string]chan error
}

func newGateStore(inner objstore.Store) *gateStore {
	return &gateStore{
		Store: inner,
		gated: make(map[string]bool),
		gates: make(map[string]chan error),
	}
}

// gate arms a hold on the named object's next Put.
func (g *gateStore) gate(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gated[name] = true
}

// release lets a held Put proceed, waiting for it to arrive first. A
// non-nil err makes the Put fail without writing.
func (g *gateStore) release(t *testing.T, name string, err error) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		ch, ok := g.gates[name]
		if ok {
			delete(g.gates, name)
		}
		g.mu.Unlock()
		if ok {
			ch <- err
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no Put arrived for %s", name)
		}
		time.Sleep(time.Millisecond)
	}
}

func (g *gateStore) Put(ctx context.Context, name string, data []byte) error {
	g.mu.Lock()
	var ch chan error
	if g.gated[name] {
		delete(g.gated, name)
		ch = make(chan error)
		g.gates[name] = ch
	}
	g.mu.Unlock()
	if ch != nil {
		if err := <-ch; err != nil {
			return err
		}
	}
	return g.Store.Put(ctx, name, data)
}

// waitDurable polls until DurableWriteSeq reaches want.
func waitDurable(t *testing.T, s *Store, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.DurableWriteSeq() < want {
		if time.Now().After(deadline) {
			t.Fatalf("durable watermark stuck at %d, want %d", s.DurableWriteSeq(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsyncCommitStaysInOrder: with concurrent uploads, map commit and
// the durable watermark must advance strictly in sequence order even
// when later objects' PUTs finish first (§3.4 prefix consistency).
func TestAsyncCommitStaysInOrder(t *testing.T) {
	gs := newGateStore(objstore.NewMem())
	s := newVolume(t, gs, Config{BatchBytes: 32 * 1024, UploadDepth: 4, CheckpointEvery: 1 << 30})

	// Three batch-sized appends auto-seal three objects; hold all of
	// their uploads.
	first := s.Stats().NextSeq
	for i := uint32(0); i < 3; i++ {
		gs.gate(objName("vol", first+i))
	}
	exts := make([]block.Extent, 3)
	data := make([][]byte, 3)
	for i := range exts {
		exts[i] = block.Extent{LBA: block.LBA(i * 64), Sectors: 64}
		data[i] = payload(int64(i+1), int(exts[i].Bytes()))
		if err := s.Append(uint64(i+1), exts[i], data[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().InflightObjects; got != 3 {
		t.Fatalf("inflight objects = %d, want 3", got)
	}

	// Let the NEWEST object land first: nothing may commit, or a crash
	// here would expose write 3 without writes 1 and 2.
	gs.release(t, objName("vol", first+2), nil)
	time.Sleep(5 * time.Millisecond)
	if got := s.DurableWriteSeq(); got != 0 {
		t.Fatalf("out-of-order commit: durable=%d with earlier uploads pending", got)
	}

	// Oldest lands: exactly write 1 commits (the middle object still
	// holds back the already-uploaded newest).
	gs.release(t, objName("vol", first), nil)
	waitDurable(t, s, 1)
	time.Sleep(5 * time.Millisecond)
	if got := s.DurableWriteSeq(); got != 1 {
		t.Fatalf("durable=%d after first object, want 1", got)
	}

	// Middle lands: it and the newest commit together.
	gs.release(t, objName("vol", first+1), nil)
	waitDurable(t, s, 3)

	for i := range exts {
		if got := readAll(t, s, exts[i]); !bytes.Equal(got, data[i]) {
			t.Fatalf("extent %d wrong after async commit", i)
		}
	}
	if got := s.Stats().InflightObjects; got != 0 {
		t.Fatalf("inflight objects = %d after full commit", got)
	}
}

// TestAsyncUploadFailureRetriedBySeal: a failed async upload must not
// be lost — the Seal fence resubmits it and succeeds.
func TestAsyncUploadFailureRetriedBySeal(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{BatchBytes: 32 * 1024, UploadDepth: 2, CheckpointEvery: 1 << 30})

	ext := block.Extent{LBA: 0, Sectors: 64}
	data := payload(7, int(ext.Bytes()))
	// Fail the upload's whole Retrier budget so it surfaces as a failed
	// in-flight object; the fence's resubmission then succeeds.
	faulty.FailPuts(objName("vol", s.Stats().NextSeq), objstore.RetryPolicy{}.Attempts())
	if err := s.Append(1, ext, data); err != nil {
		t.Fatal(err) // the PUT failure is asynchronous; Append succeeds
	}
	if err := s.Seal(); err != nil {
		t.Fatalf("seal fence did not retry the failed upload: %v", err)
	}
	if got := s.DurableWriteSeq(); got != 1 {
		t.Fatalf("durable=%d after fenced retry, want 1", got)
	}
	if s.Stats().UploadRetries == 0 {
		t.Fatal("retry not counted")
	}
	if got := readAll(t, s, ext); !bytes.Equal(got, data) {
		t.Fatal("data wrong after retried async upload")
	}
}

// TestAsyncPersistentFailureSurfaces: a PUT that keeps failing must
// surface an error at the fence instead of wedging or silently
// dropping the object.
func TestAsyncPersistentFailureSurfaces(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{BatchBytes: 32 * 1024, UploadDepth: 2, CheckpointEvery: 1 << 30})
	faulty.FailEveryNth(1) // every mutation fails

	ext := block.Extent{LBA: 0, Sectors: 64}
	if err := s.Append(1, ext, payload(8, int(ext.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); !errors.Is(err, objstore.ErrInjected) {
		t.Fatalf("persistent failure not surfaced: %v", err)
	}
	// Healing the store lets a later fence succeed.
	faulty.FailEveryNth(0)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := s.DurableWriteSeq(); got != 1 {
		t.Fatalf("durable=%d after healed retry, want 1", got)
	}
}

// TestAbortStrandsOutOfOrderUploads: Abort models a crash while later
// uploads have landed but an earlier one has not. Nothing may commit
// in memory, and recovery's gap rule must delete the stranded objects
// so the volume reopens to a consistent prefix.
func TestAbortStrandsOutOfOrderUploads(t *testing.T) {
	gs := newGateStore(objstore.NewMem())
	s := newVolume(t, gs, Config{BatchBytes: 32 * 1024, UploadDepth: 4, CheckpointEvery: 1 << 30})

	first := s.Stats().NextSeq
	gs.gate(objName("vol", first)) // hold the oldest object's PUT
	exts := make([]block.Extent, 3)
	for i := range exts {
		exts[i] = block.Extent{LBA: block.LBA(i * 64), Sectors: 64}
		if err := s.Append(uint64(i+1), exts[i], payload(int64(i+1), int(exts[i].Bytes()))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the later uploads to land out of order.
	waitObject := func(name string) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, err := gs.Store.Size(ctx, name); err == nil {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("object %s never landed", name)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitObject(objName("vol", first+1))
	waitObject(objName("vol", first+2))

	// "Crash": the held PUT dies with the process. Abort blocks until
	// every issued PUT finishes, so fail the held one concurrently.
	// The error wraps context.Canceled so the Retrier treats it as
	// terminal instead of reissuing the PUT past the cleared gate.
	crash := fmt.Errorf("crash before PUT completed: %w", context.Canceled)
	done := make(chan struct{})
	go func() {
		defer close(done)
		gs.release(t, objName("vol", first), crash)
	}()
	s.Abort()
	<-done
	if got := s.DurableWriteSeq(); got != 0 {
		t.Fatalf("aborted store committed writes: durable=%d", got)
	}

	// Recovery: the oldest object is missing, so the stranded later
	// objects must be deleted and every read comes back a hole.
	s2, err := Open(ctx, Config{Volume: "vol", Store: gs})
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, exts[0].Bytes())
	for i := range exts {
		if got := readAll(t, s2, exts[i]); !bytes.Equal(got, zero) {
			t.Fatalf("extent %d visible despite broken prefix", i)
		}
	}
	for i := uint32(0); i < 3; i++ {
		if _, err := gs.Store.Size(ctx, objName("vol", first+i)); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("stranded object %d not cleaned up: %v", first+i, err)
		}
	}
}
