package lsvd

// Replication bench (DESIGN.md §5i): 8 volumes share one host while
// each ships its object log to a per-volume replica backend, measuring
// what asynchronous replication costs the foreground. The shipper is a
// background-class citizen — it copies committed objects outside the
// write path, metered through the host's upload gate at background
// priority — so the gate is that foreground ack p99 with replication
// on stays within 1.3x of the replication-off baseline, while the
// drain proves every committed object shipped (zero final lag). Runs
// as a quick smoke test under `make check`; `make bench-replica` sets
// LSVD_REPLICABENCH_OUT to record BENCH_replica.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"
)

const (
	replicaBenchVolumes  = 8
	replicaBenchLagBound = 32 // generous: measure shipping cost, not backpressure
)

type replicaBenchRun struct {
	ReplicaOn  bool    `json:"replica_on"`
	Volumes    int     `json:"volumes"`
	TotalMiB   int64   `json:"total_mib"`
	MBPerSec   float64 `json:"mb_per_s"`
	P50WriteUS float64 `json:"p50_write_us"`
	P99WriteUS float64 `json:"p99_write_us"`
	// Shipping results (replica_on only). ShipMBPerSec is committed
	// bytes copied to the replicas over the whole run including the
	// close-time drain — the sustained ship throughput the RPO bound
	// depends on.
	ShipMBPerSec  float64 `json:"ship_mb_per_s,omitempty"`
	CopiedObjects uint64  `json:"ship_copied_objects,omitempty"`
	CopiedMiB     int64   `json:"ship_copied_mib,omitempty"`
	Stalls        uint64  `json:"write_stalls_on_lag,omitempty"`
	PeakLag       int     `json:"peak_lag_objects,omitempty"`
	FinalLag      int     `json:"final_lag_objects"`
}

type replicaBenchReport struct {
	Off      replicaBenchRun `json:"off"`
	On       replicaBenchRun `json:"on"`
	P99Ratio float64         `json:"p99_ratio"`
}

// runReplicaBench writes each volume's working set concurrently on an
// 8-volume host, with or without per-volume replication, then closes
// the host (which drains every shipper) and reads the final counters.
func runReplicaBench(t *testing.T, replicaOn bool) replicaBenchRun {
	t.Helper()
	const (
		perVolBytes = 8 * MiB
		chunkBytes  = 128 * KiB
	)
	ctx := context.Background()
	h, err := OpenHost(ctx, HostOptions{
		Store: MemStore(), Cache: MemCacheDevice(256 * MiB),
	})
	if err != nil {
		t.Fatal(err)
	}
	disks := make([]*Disk, replicaBenchVolumes)
	for i := range disks {
		spec := VolumeSpec{VolBytes: 32 * MiB, BatchBytes: 1 * MiB}
		if replicaOn {
			spec.ReplicaStore = MemStore()
			spec.ReplicaMaxLagObjects = replicaBenchLagBound
		}
		d, err := h.Create(ctx, fmt.Sprintf("vm%d", i), spec)
		if err != nil {
			t.Fatal(err)
		}
		disks[i] = d
	}

	// Sample host-aggregate lag while the writers run: the steady-state
	// lag the RPO bound keeps in check.
	var peakLag int
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stopSampler:
				return
			case <-time.After(2 * time.Millisecond):
				if lag := h.Stats().Replica.LagObjects; lag > peakLag {
					peakLag = lag
				}
			}
		}
	}()

	var wg sync.WaitGroup
	lats := make([][]time.Duration, len(disks))
	start := time.Now()
	for vi, d := range disks {
		wg.Add(1)
		go func(vi int, d *Disk) {
			defer wg.Done()
			chunk := make([]byte, chunkBytes)
			for off := int64(0); off < perVolBytes; off += chunkBytes {
				chunk[0], chunk[1] = byte(vi), byte(off>>17)
				t0 := time.Now()
				if err := d.WriteAt(chunk, off); err != nil {
					t.Error(err)
					return
				}
				lats[vi] = append(lats[vi], time.Since(t0))
			}
			if err := d.Drain(); err != nil {
				t.Error(err)
			}
		}(vi, d)
	}
	wg.Wait()
	writeElapsed := time.Since(start)
	close(stopSampler)
	<-samplerDone

	// Close drains the shippers: afterwards every committed object is
	// on its replica. The counters are in-memory reads, safe on a
	// closed disk.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	totalElapsed := time.Since(start)

	total := int64(len(disks)) * perVolBytes
	run := replicaBenchRun{
		ReplicaOn: replicaOn,
		Volumes:   len(disks),
		TotalMiB:  total / MiB,
		MBPerSec:  float64(total) / writeElapsed.Seconds() / 1e6,
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))]) / float64(time.Microsecond)
	}
	run.P50WriteUS, run.P99WriteUS = pct(0.50), pct(0.99)

	var copiedBytes int64
	for _, d := range disks {
		st := d.Stats()
		if !replicaOn {
			continue
		}
		if !st.ReplicaEnabled {
			t.Fatalf("replication never started on a replicated volume")
		}
		run.CopiedObjects += st.Replica.CopiedObjects
		copiedBytes += st.Replica.CopiedBytes
		run.Stalls += st.ReplicaStalls
		run.FinalLag += st.Replica.LagObjects
	}
	if replicaOn {
		run.PeakLag = peakLag
		run.CopiedMiB = copiedBytes / MiB
		run.ShipMBPerSec = float64(copiedBytes) / totalElapsed.Seconds() / 1e6
		if run.FinalLag != 0 {
			t.Errorf("shipper did not drain at close: %d objects still lagging", run.FinalLag)
		}
		if run.CopiedObjects == 0 {
			t.Error("replication shipped nothing")
		}
	}
	return run
}

// TestReplicaShipping is the acceptance gate for asynchronous
// replication overhead plus the recorder behind `make bench-replica`.
func TestReplicaShipping(t *testing.T) {
	report := replicaBenchReport{
		Off: runReplicaBench(t, false),
		On:  runReplicaBench(t, true),
	}
	logRun := func(r replicaBenchRun) {
		t.Logf("replica=%v: %d vols, %d MiB at %.1f MB/s, p50 %.0fµs p99 %.0fµs, shipped %d objs %d MiB at %.1f MB/s, stalls=%d peakLag=%d finalLag=%d",
			r.ReplicaOn, r.Volumes, r.TotalMiB, r.MBPerSec, r.P50WriteUS, r.P99WriteUS,
			r.CopiedObjects, r.CopiedMiB, r.ShipMBPerSec, r.Stalls, r.PeakLag, r.FinalLag)
	}
	logRun(report.Off)
	logRun(report.On)

	// Latency gate, remeasured on flaky CI hosts like the GC and
	// multi-volume gates: background-class shipping must not cost the
	// foreground more than 30% of its ack p99.
	off, on := report.Off, report.On
	for retry := 0; on.P99WriteUS > 1.3*off.P99WriteUS && retry < 2; retry++ {
		off = runReplicaBench(t, false)
		on = runReplicaBench(t, true)
		t.Logf("gate retry %d: p99 off %.0fµs on %.0fµs", retry+1, off.P99WriteUS, on.P99WriteUS)
	}
	if on.P99WriteUS > 1.3*off.P99WriteUS {
		t.Errorf("replication-on ack p99 %.0fµs > 1.3x replication-off %.0fµs",
			on.P99WriteUS, off.P99WriteUS)
	}

	report.P99Ratio = report.On.P99WriteUS / report.Off.P99WriteUS
	if out := os.Getenv("LSVD_REPLICABENCH_OUT"); out != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
