# Stdlib-only Go module; these targets are the whole workflow.

GO ?= go

# Packages whose concurrency is load-bearing (the async destage
# pipeline, the shared read arena, the multi-volume host, and the NBD
# worker pool); `make race` runs them under the race detector,
# including the destage stress tests.
RACE_PKGS := ./internal/core ./internal/blockstore ./internal/writecache ./internal/nbd ./internal/consistency ./internal/host ./internal/readcache

.PHONY: all build fmt vet test race bench bench-read bench-multivol fault check clean

all: check

build:
	$(GO) build ./...

# Formatting gate: fail if any tracked Go file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l . | grep -v '^related/' || true); \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Recovery torture harness (§3.4 under injected backend faults): the
# pinned seed keeps CI deterministic, the second run sweeps a hostile
# 35% per-op failure rate. Override LSVD_FAULT_{SEED,RATE,ITERS} to
# explore.
fault:
	LSVD_FAULT_SEED=1 $(GO) test -count=1 -run TestFaultTorture ./internal/consistency
	LSVD_FAULT_SEED=100 LSVD_FAULT_RATE=0.35 LSVD_FAULT_ITERS=8 \
		$(GO) test -count=1 -run TestFaultTorture ./internal/consistency

# Destage-pipeline micro-benchmarks: sync vs async write-ack latency
# and concurrent-reader throughput.
bench:
	$(GO) test -run xxx -bench 'DiskWriteAck|DiskConcurrentReads' -benchtime 2s .

# Read-miss-path benchmarks (cold seqread + QD-sweep random read
# against a simulated-latency backend), recording BENCH_readpath.json.
# The same test runs without the env var as a smoke check in `check`.
bench-read:
	LSVD_READBENCH_OUT=BENCH_readpath.json $(GO) test -count=1 -run TestReadPathQDSweep -v .

# Multi-volume host benchmark (§3.7 shared-SSD packing): aggregate
# write throughput as 1→8 volumes share one host, plus a fairness
# sweep, recording BENCH_multivol.json. Runs without the env var as a
# smoke check in `check`.
bench-multivol:
	LSVD_MULTIVOL_OUT=BENCH_multivol.json $(GO) test -count=1 -run TestMultiVolScaling -v .

check: build fmt vet test race fault
	$(GO) test -count=1 -run 'TestReadPathQDSweep|TestMultiVolScaling' .

clean:
	$(GO) clean -testcache
