// Package journal implements the log-record format shared by the
// on-SSD write cache and the backend object store (paper Fig 2 and
// Fig 4): a header carrying a magic number, record type, sequence
// number, CRC and the list of virtual-disk extents described by the
// following data blocks. The CRC covers header and data so that
// recovery uses only complete records (§3.3): replay stops at the first
// record whose magic, sequence number or CRC does not line up.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"lsvd/internal/block"
)

// Magic identifies an LSVD log record ("LSVD" little-endian).
const Magic uint32 = 0x4456534c

// ErrCorrupt tags every decode failure — short buffer, bad magic,
// impossible lengths, CRC mismatch — so callers can tell a truncated
// or torn record (errors.Is(err, ErrCorrupt)) apart from an I/O error
// fetching it. Backend recovery uses this to treat a torn tail object
// as the crash gap rather than a fatal error.
var ErrCorrupt = errors.New("journal: corrupt record")

// Type discriminates log records and backend objects.
type Type uint32

const (
	// TypeData is a batch of client writes (cache record or backend
	// data object).
	TypeData Type = iota + 1
	// TypeCheckpoint is a serialized map checkpoint (§3.3).
	TypeCheckpoint
	// TypeSuper is the volume superblock, the only mutable object.
	TypeSuper
	// TypeTrim records a discarded range in the cache log.
	TypeTrim
	// TypePad fills the tail of the circular cache log before
	// wrap-around; it carries no data.
	TypePad
	// TypeGC is a backend object written by the garbage collector;
	// its extents carry the source object sequence numbers so that
	// recovery replay cannot resurrect stale data (DESIGN.md §4).
	TypeGC
)

func (t Type) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeCheckpoint:
		return "checkpoint"
	case TypeSuper:
		return "super"
	case TypeTrim:
		return "trim"
	case TypePad:
		return "pad"
	case TypeGC:
		return "gc"
	default:
		return fmt.Sprintf("type(%d)", uint32(t))
	}
}

// ExtentEntry describes one run of data blocks within a record. SrcSeq
// is meaningful for TypeGC objects: the sequence number of the object
// the data was copied from; for fresh data it equals the record's own
// sequence number (and may be left zero in cache records).
type ExtentEntry struct {
	LBA     block.LBA
	Sectors uint32
	SrcSeq  uint64
}

// Header is the decoded form of a record header.
type Header struct {
	Type     Type
	Seq      uint64 // position in this log's sequence
	WriteSeq uint64 // last client write sequence folded into the record
	Extents  []ExtentEntry
	DataLen  uint64 // bytes of data following the header
}

// DataSectors returns the total sectors described by the extent list.
func (h *Header) DataSectors() uint64 {
	var n uint64
	for _, e := range h.Extents {
		n += uint64(e.Sectors)
	}
	return n
}

const (
	headerFixed = 4 + 4 + 4 + 4 + 8 + 8 + 8 + 4 + 4 // magic,type,hdrLen,crc,seq,writeSeq,dataLen,nExtents,reserved
	entrySize   = 8 + 4 + 8                         // lba, sectors, srcSeq

	crcOffset = 8 // byte offset of the crc field within the header
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// HeaderSize returns the encoded header size for n extents, before any
// alignment padding.
func HeaderSize(n int) int { return headerFixed + n*entrySize }

// AlignedHeaderSize returns HeaderSize rounded up to the 4 KiB cache
// log alignment.
func AlignedHeaderSize(n int) int {
	s := HeaderSize(n)
	return (s + block.BlockSize - 1) &^ (block.BlockSize - 1)
}

// Encode serializes the header followed by data. If align4K, the header
// is padded to a 4 KiB multiple before the data, and the whole record
// is padded to a 4 KiB multiple at the end, matching the cache log
// layout (§3.1); backend objects use the unaligned form. The CRC is
// computed over the padded header (crc field zeroed) and the data.
func Encode(h *Header, data []byte, align4K bool) ([]byte, error) {
	if align4K {
		return encode(h, data, block.BlockSize, block.BlockSize)
	}
	return encode(h, data, 1, 1)
}

// EncodeSectorHeader serializes a record whose header is padded to a
// 512-byte sector boundary with no trailing padding — the backend
// object layout, where data offsets must be sector-addressable.
func EncodeSectorHeader(h *Header, data []byte) ([]byte, error) {
	return encode(h, data, block.SectorSize, 1)
}

func encode(h *Header, data []byte, hdrAlign, totalAlign int) ([]byte, error) {
	if uint64(len(data)) != h.DataLen {
		return nil, fmt.Errorf("journal: header DataLen %d != data %d", h.DataLen, len(data))
	}
	hs := HeaderSize(len(h.Extents))
	hs = (hs + hdrAlign - 1) / hdrAlign * hdrAlign
	total := hs + len(data)
	total = (total + totalAlign - 1) / totalAlign * totalAlign
	buf := make([]byte, total)
	putHeader(buf, h, hs)
	copy(buf[hs:], data)
	crc := crc32.Update(0, castagnoli, buf[:hs])
	crc = crc32.Update(crc, castagnoli, data)
	binary.LittleEndian.PutUint32(buf[crcOffset:], crc)
	return buf, nil
}

// putHeader writes h's fields into buf[:hs] with the CRC field zero;
// buf[:hs] must already be zeroed (freshly allocated or cleared).
func putHeader(buf []byte, h *Header, hs int) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:], Magic)
	le.PutUint32(buf[4:], uint32(h.Type))
	le.PutUint32(buf[12:], uint32(hs))
	le.PutUint64(buf[16:], h.Seq)
	le.PutUint64(buf[24:], h.WriteSeq)
	le.PutUint64(buf[32:], h.DataLen)
	le.PutUint32(buf[40:], uint32(len(h.Extents)))
	off := headerFixed
	for _, e := range h.Extents {
		le.PutUint64(buf[off:], uint64(e.LBA))
		le.PutUint32(buf[off+8:], e.Sectors)
		le.PutUint64(buf[off+12:], e.SrcSeq)
		off += entrySize
	}
}

// EncodeHeader serializes only the record header, padded to hdrAlign,
// with the CRC computed as if the data slices followed the header
// contiguously. The result decodes identically to Encode's header, but
// the payload is never copied: callers issue one vectored device write
// of [header, data...] instead of materializing the full record.
func EncodeHeader(h *Header, hdrAlign int, data ...[]byte) ([]byte, error) {
	var n uint64
	for _, d := range data {
		n += uint64(len(d))
	}
	if n != h.DataLen {
		return nil, fmt.Errorf("journal: header DataLen %d != data %d", h.DataLen, n)
	}
	hs := HeaderSize(len(h.Extents))
	hs = (hs + hdrAlign - 1) / hdrAlign * hdrAlign
	buf := make([]byte, hs)
	putHeader(buf, h, hs)
	crc := crc32.Update(0, castagnoli, buf)
	for _, d := range data {
		crc = crc32.Update(crc, castagnoli, d)
	}
	binary.LittleEndian.PutUint32(buf[crcOffset:], crc)
	return buf, nil
}

// EncodeInto stamps h's header over the front of buf, whose data
// payload must already be in place at buf[hdrLen:hdrLen+h.DataLen]
// with hdrLen the hdrAlign-padded header size. It returns hdrLen.
// This builds a record in a single caller-owned allocation — the
// backend object path uses it to gather extents directly into the
// final object image instead of copying data twice.
func EncodeInto(h *Header, buf []byte, hdrAlign int) (int, error) {
	hs := HeaderSize(len(h.Extents))
	hs = (hs + hdrAlign - 1) / hdrAlign * hdrAlign
	if uint64(len(buf)) < uint64(hs)+h.DataLen {
		return 0, fmt.Errorf("journal: buffer of %d bytes too small for header %d + data %d", len(buf), hs, h.DataLen)
	}
	dl := int(h.DataLen) // safe: bounds-checked against len(buf) above
	clear(buf[:hs])
	putHeader(buf, h, hs)
	crc := crc32.Update(0, castagnoli, buf[:hs])
	crc = crc32.Update(crc, castagnoli, buf[hs:hs+dl])
	binary.LittleEndian.PutUint32(buf[crcOffset:], crc)
	return hs, nil
}

// DecodeHeader parses a header from the front of buf without verifying
// the data CRC (the data may not have been read yet). It returns the
// header and the header's encoded length (including alignment padding).
func DecodeHeader(buf []byte) (*Header, int, error) {
	if len(buf) < headerFixed {
		return nil, 0, fmt.Errorf("%w: short header: %d bytes", ErrCorrupt, len(buf))
	}
	le := binary.LittleEndian
	if m := le.Uint32(buf); m != Magic {
		return nil, 0, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, m)
	}
	h := &Header{
		Type:     Type(le.Uint32(buf[4:])),
		Seq:      le.Uint64(buf[16:]),
		WriteSeq: le.Uint64(buf[24:]),
		DataLen:  le.Uint64(buf[32:]),
	}
	hdrLen := int(le.Uint32(buf[12:]))
	n := int(le.Uint32(buf[40:]))
	if hdrLen < HeaderSize(n) || hdrLen > len(buf) {
		return nil, 0, fmt.Errorf("%w: header length %d invalid for %d extents (buf %d)", ErrCorrupt, hdrLen, n, len(buf))
	}
	if n > 0 {
		h.Extents = make([]ExtentEntry, n)
		off := headerFixed
		for i := range h.Extents {
			h.Extents[i] = ExtentEntry{
				LBA:     block.LBA(le.Uint64(buf[off:])),
				Sectors: le.Uint32(buf[off+8:]),
				SrcSeq:  le.Uint64(buf[off+12:]),
			}
			off += entrySize
		}
	}
	return h, hdrLen, nil
}

// Verify checks the record CRC given the padded header bytes and the
// data bytes.
func Verify(hdrBytes, data []byte) error {
	if len(hdrBytes) < headerFixed {
		return fmt.Errorf("%w: short header", ErrCorrupt)
	}
	le := binary.LittleEndian
	want := le.Uint32(hdrBytes[crcOffset:])
	tmp := make([]byte, len(hdrBytes))
	copy(tmp, hdrBytes)
	le.PutUint32(tmp[crcOffset:], 0)
	crc := crc32.Update(0, castagnoli, tmp)
	crc = crc32.Update(crc, castagnoli, data)
	if crc != want {
		return fmt.Errorf("%w: CRC mismatch: computed %#x, stored %#x", ErrCorrupt, crc, want)
	}
	return nil
}

// Decode parses and fully verifies a record from buf, returning the
// header, the data, and the total encoded record length. align4K must
// match the flag used at encode time.
func Decode(buf []byte, align4K bool) (*Header, []byte, int, error) {
	h, hdrLen, err := DecodeHeader(buf)
	if err != nil {
		return nil, nil, 0, err
	}
	// Bound the length field BEFORE converting: a hostile DataLen
	// wraps int(h.DataLen) negative, which would slip past the total
	// check below and panic slicing. DecodeHeader guarantees
	// hdrLen <= len(buf).
	if h.DataLen > uint64(len(buf)-hdrLen) {
		return nil, nil, 0, fmt.Errorf("%w: data length %d exceeds buffer %d", ErrCorrupt, h.DataLen, len(buf))
	}
	dataLen := int(h.DataLen)
	total := hdrLen + dataLen
	if align4K {
		total = (total + block.BlockSize - 1) &^ (block.BlockSize - 1)
	}
	if total > len(buf) {
		return nil, nil, 0, fmt.Errorf("%w: record of %d bytes exceeds buffer %d", ErrCorrupt, total, len(buf))
	}
	data := buf[hdrLen : hdrLen+dataLen]
	if err := Verify(buf[:hdrLen], data); err != nil {
		return nil, nil, 0, err
	}
	return h, data, total, nil
}
