package costmodel

import "testing"

// TestPaperClaim: §4.9 — "a 50,000 provisioned IOPS EBS volume would
// cost over $3000 per month ... the local NVMe and remote S3 needed by
// LSVD would in contrast cost only a few dollars per month."
func TestPaperClaim(t *testing.T) {
	r := Compare(AWS2022, PaperScenario())
	if r.EBSMonthly < 2900 {
		t.Fatalf("EBS monthly $%.0f, paper says over $3000", r.EBSMonthly)
	}
	if r.LSVDMonthly > 15 {
		t.Fatalf("LSVD monthly $%.2f, paper says a few dollars", r.LSVDMonthly)
	}
	if r.Ratio < 100 {
		t.Fatalf("ratio %.0fx implausibly small", r.Ratio)
	}
}

func TestTieredEBSPricing(t *testing.T) {
	low := Compare(AWS2022, Workload{IOPS: 10000, WriteFrac: 1, IOSizeBytes: 4096, VolumeGB: 100, BatchBytes: 8 << 20, DutyCycle: 1})
	if want := 10000*0.065 + 100*0.125; low.EBSMonthly != want {
		t.Fatalf("EBS %.2f want %.2f", low.EBSMonthly, want)
	}
	high := Compare(AWS2022, Workload{IOPS: 50000, WriteFrac: 1, IOSizeBytes: 4096, VolumeGB: 100, BatchBytes: 8 << 20, DutyCycle: 1})
	if want := 32000*0.065 + 18000*0.046 + 100*0.125; high.EBSMonthly != want {
		t.Fatalf("EBS %.2f want %.2f", high.EBSMonthly, want)
	}
}

func TestBatchingDrivesLSVDCost(t *testing.T) {
	small := Compare(AWS2022, Workload{IOPS: 10000, WriteFrac: 1, IOSizeBytes: 16384, VolumeGB: 80, BatchBytes: 1 << 20, DutyCycle: 1})
	big := Compare(AWS2022, Workload{IOPS: 10000, WriteFrac: 1, IOSizeBytes: 16384, VolumeGB: 80, BatchBytes: 32 << 20, DutyCycle: 1})
	if big.LSVDMonthly >= small.LSVDMonthly {
		t.Fatalf("bigger batches should cost less: %.2f vs %.2f", big.LSVDMonthly, small.LSVDMonthly)
	}
}

func TestDefaultDutyCycle(t *testing.T) {
	w := Workload{IOPS: 1000, WriteFrac: 1, IOSizeBytes: 4096, VolumeGB: 10, BatchBytes: 8 << 20}
	r := Compare(AWS2022, w) // DutyCycle defaults to 1
	if r.LSVDMonthly <= 10*0.023 {
		t.Fatal("duty cycle default not applied")
	}
}
