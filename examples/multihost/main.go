// Multihost: pack several volumes onto one host — one cache SSD, one
// backend bucket — and serve them all as named NBD exports from a
// single endpoint (paper §3.7: a hypervisor's disks share its SSD).
//
//	go run ./examples/multihost
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"lsvd"
	"lsvd/internal/invariant"
	"lsvd/internal/nbd"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "lsvd-multihost-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One backend bucket and ONE cache SSD for the whole host. The
	// host carves the SSD: a private write-log slot per volume
	// (default 8 slots from 20% of the device) and one shared
	// read-cache arena with fair per-volume eviction on the rest.
	store, err := lsvd.DirStore(filepath.Join(dir, "objects"))
	if err != nil {
		log.Fatal(err)
	}
	cache, err := lsvd.FileCacheDevice(filepath.Join(dir, "cache.img"), 256*lsvd.MiB)
	if err != nil {
		log.Fatal(err)
	}
	h, err := lsvd.OpenHost(ctx, lsvd.HostOptions{Store: store, Cache: cache})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()

	// Volumes are namespaced on the backend ("vol/<name>/...") and
	// lease write-log slots; they share the host's upload/fetch
	// budgets, so eight destaging volumes present the backend with
	// the same concurrency envelope as one.
	for _, name := range []string{"vm1", "vm2", "vm3"} {
		d, err := h.Create(ctx, name, lsvd.VolumeSpec{VolBytes: 1 * lsvd.GiB})
		if err != nil {
			log.Fatal(err)
		}
		tag := bytes.Repeat([]byte(name+"-"), 1024)[:4096]
		if err := d.WriteAt(tag, 0); err != nil {
			log.Fatal(err)
		}
		if err := d.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("host volumes:", h.Volumes())

	// One NBD endpoint, one named export per open volume:
	//   nbd-client myhost <port> /dev/nbd0 -name vm2
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	invariant.Go("multihost-nbd-server", func() { _ = h.ServeNBD(ln) })
	addr := ln.Addr().String()

	exports, err := nbd.List(addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("NBD exports at", addr, "->", exports)

	// Attach to one export and read the tag back over the wire.
	c, err := nbd.Dial(addr, "vm2")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := c.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vm2 over NBD reads: %q...\n", buf[:8])
	if err := c.Close(); err != nil {
		log.Fatal(err)
	}

	// Host-aggregate observability: per-volume stats, shared-arena
	// occupancy, and true backend op counts from one call.
	st := h.Stats()
	fmt.Printf("host stats: %d volumes, backend %d PUTs %d GETs, arena %d/%d slabs live\n",
		len(st.Volumes), st.Backend.Puts, st.Backend.Gets+st.Backend.GetRanges,
		st.Arena.LiveSlabs, st.Arena.Slabs)
	for _, occ := range st.Arena.Views {
		fmt.Printf("  arena view %-4s %d slabs, %d KiB\n", occ.Volume, occ.Slabs, occ.Bytes/1024)
	}
}
