package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// chanleak flags the goroutine-leak shape the replication and destage
// pipelines must never grow: an unbuffered channel created in a
// function whose ONLY uses live inside a single spawned goroutine. A
// send or receive there can never find a partner — nothing outside the
// goroutine ever touches the channel — so the goroutine parks forever
// and leaks (typically a worker whose result channel lost its reader
// on an early-return error path).
//
// The analysis is deliberately conservative: any use that could pair
// the operation elsewhere disqualifies the channel —
//
//   - a use outside the goroutine (receive, send, close, comparison);
//   - the channel escaping (passed to a call, aliased, returned,
//     stored, captured by a non-goroutine literal such as a defer);
//   - a buffered channel (the lone send completes);
//   - the goroutine's ops living under a select (another case or a
//     default can unblock it);
//   - two or more goroutines sharing the channel (they pair up).
//
// Goroutines count whether spawned with a plain `go` statement or a
// spawn helper of the invariant.Go shape (a method or function named
// Go taking the literal).
func newChanleak() *Analyzer {
	a := &Analyzer{
		Name: "chanleak",
		Doc:  "unbuffered channel used only inside one goroutine: its send/recv blocks forever",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						chanleakBody(pass, n.Body)
					}
				case *ast.FuncLit:
					chanleakBody(pass, n.Body)
				}
				return true
			})
		}
	}
	return a
}

// chanleakBody analyzes the channels defined directly in one function
// body (nested function literals are separate scopes, analyzed on
// their own visit).
func chanleakBody(pass *Pass, body *ast.BlockStmt) {
	type candidate struct {
		obj types.Object
		pos token.Pos
		id  *ast.Ident
	}
	var cands []candidate
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" || !unbufferedChanMake(pass, as.Rhs[0]) {
			return true
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			cands = append(cands, candidate{obj: obj, pos: as.Pos(), id: id})
		}
		return true
	})

	for _, c := range cands {
		escaped := false
		outside := 0
		goLits := make(map[*ast.FuncLit]bool)
		goBlocking := 0
		walkWithStack(body, func(stack []ast.Node) {
			id, ok := stack[len(stack)-1].(*ast.Ident)
			if !ok || pass.Info.Uses[id] != c.obj || escaped {
				return
			}
			kind := chanUseKind(pass, stack)
			if kind == chanUseEscape {
				escaped = true
				return
			}
			lit, isGo := enclosingGoroutine(stack)
			switch {
			case lit == nil:
				outside++
			case !isGo:
				// Captured by a defer or callback literal: it runs in an
				// execution context we do not model — assume it pairs.
				escaped = true
			default:
				goLits[lit] = true
				if kind == chanUseBlocking && !underSelect(stack, lit) {
					goBlocking++
				}
			}
		})
		if !escaped && outside == 0 && len(goLits) == 1 && goBlocking > 0 {
			pass.Reportf(c.pos,
				"unbuffered channel %s is used only inside one goroutine; its send/receive blocks forever (nothing outside ever pairs it)",
				c.id.Name)
		}
	}
}

const (
	chanUseNonblock = iota // close/len/cap/comparison: cannot park
	chanUseBlocking        // send, receive, range
	chanUseEscape          // aliased, passed, returned, stored
)

// chanUseKind classifies one identifier use of the channel by its
// immediate syntactic context. stack[len-1] is the ident.
func chanUseKind(pass *Pass, stack []ast.Node) int {
	id := stack[len(stack)-1].(*ast.Ident)
	if len(stack) < 2 {
		return chanUseEscape
	}
	switch p := stack[len(stack)-2].(type) {
	case *ast.SendStmt:
		if p.Chan == id {
			return chanUseBlocking
		}
		return chanUseEscape // the channel itself is the value sent
	case *ast.UnaryExpr:
		if p.Op == token.ARROW {
			return chanUseBlocking
		}
		return chanUseEscape
	case *ast.RangeStmt:
		if p.X == id {
			return chanUseBlocking
		}
		return chanUseEscape
	case *ast.CallExpr:
		if fn, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			if b, isB := pass.Info.Uses[fn].(*types.Builtin); isB {
				switch b.Name() {
				case "close", "len", "cap":
					return chanUseNonblock
				}
			}
		}
		return chanUseEscape
	case *ast.BinaryExpr:
		return chanUseNonblock // ch == nil and friends
	default:
		return chanUseEscape
	}
}

// enclosingGoroutine finds the innermost function-literal boundary
// above the use. Returns (nil, false) when the use sits directly in
// the defining body, (lit, true) when that literal is a goroutine
// target — `go func(){...}()` or a spawn call like invariant.Go("x",
// func(){...}) — and (lit, false) for any other literal (defer,
// callback).
func enclosingGoroutine(stack []ast.Node) (*ast.FuncLit, bool) {
	for i := len(stack) - 2; i > 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok {
			return lit, false
		}
		if ast.Unparen(call.Fun) == lit && i >= 2 {
			if _, isGo := stack[i-2].(*ast.GoStmt); isGo {
				return lit, true
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Go" {
			for _, arg := range call.Args {
				if ast.Unparen(arg) == lit {
					return lit, true
				}
			}
		}
		return lit, false
	}
	return nil, false
}

// underSelect reports whether the use sits inside a select case
// between the goroutine literal and the ident — there another case or
// a default can unblock the goroutine, so the op is not a guaranteed
// park.
func underSelect(stack []ast.Node, lit *ast.FuncLit) bool {
	for i := len(stack) - 2; i > 0; i-- {
		if stack[i] == lit {
			return false
		}
		if _, ok := stack[i].(*ast.CommClause); ok {
			return true
		}
	}
	return false
}

// unbufferedChanMake matches `make(chan T)` and `make(chan T, 0)`.
func unbufferedChanMake(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, isB := pass.Info.Uses[fn].(*types.Builtin); !isB || b.Name() != "make" {
		return false
	}
	if tv, ok := pass.Info.Types[call]; !ok || tv.Type == nil {
		return false
	} else if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	switch len(call.Args) {
	case 1:
		return true
	case 2:
		tv, ok := pass.Info.Types[call.Args[1]]
		return ok && tv.Value != nil && constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
	}
	return false
}

// walkWithStack visits every node under root, handing the visitor the
// full ancestor stack (root first, the node itself last).
func walkWithStack(root ast.Node, visit func(stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		visit(stack)
		return true
	})
}
