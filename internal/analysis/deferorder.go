package analysis

import (
	"go/ast"
	"go/token"
)

// deferorder flags two defer mistakes around resource release:
//
//   - Inverted unlock order: `defer a.Unlock()` followed by
//     `defer b.Unlock()` runs b's release FIRST (defers are LIFO). If
//     a was acquired after b, the pair is idiomatic — releases invert
//     acquisitions. If b was acquired first, the later defer releases
//     the OUTER lock while the inner one is still held: waiters on b
//     wake up, immediately contend on a, and the critical sections
//     interleave in an order the acquire discipline never allowed.
//     Only //lsvd:lock-annotated mutexes participate, and only when
//     both acquisitions are visible in the same function.
//
//   - defer inside a loop: a deferred Unlock/RUnlock/Close in a for or
//     range body does not run per iteration — every deferred call
//     queues up until the function returns, so the lock is still held
//     (or the handle still open) when the next iteration tries again.
//
// Both shapes type-check, run fine in small tests, and deadlock or
// leak only under production iteration counts and contention.
func newDeferorder() *Analyzer {
	a := &Analyzer{
		Name: "deferorder",
		Doc:  "deferred releases must run in inverse acquisition order and must not sit inside loops",
	}
	a.Run = func(pass *Pass) {
		for _, fd := range declaredFuncs(pass) {
			checkDeferOrder(pass, fd)
		}
	}
	return a
}

type deferredUnlock struct {
	lock string
	pos  token.Pos
}

func checkDeferOrder(pass *Pass, fd *ast.FuncDecl) {
	// Per function-literal scope: defers queue on their own function's
	// frame, so each FuncLit restarts the analysis.
	type scope struct {
		acquired map[string]token.Pos // lock -> first acquisition
		defers   []deferredUnlock
	}
	var walk func(n ast.Node, sc *scope, loopDepth int)
	flush := func(sc *scope) {
		for i, d1 := range sc.defers {
			for _, d2 := range sc.defers[i+1:] {
				if d1.lock == d2.lock {
					continue
				}
				a1, ok1 := sc.acquired[d1.lock]
				a2, ok2 := sc.acquired[d2.lock]
				if !ok1 || !ok2 {
					continue
				}
				// d2 (deferred later) releases first. That is wrong
				// when d2's lock was acquired before d1's.
				if a2 < a1 && a1 < d1.pos && a2 < d2.pos {
					pass.Reportf(d2.pos, "deferred unlock order inverted: defers run LIFO, so %s is released before %s even though %s was acquired first — swap the defer statements", d2.lock, d1.lock, d2.lock)
				}
			}
		}
	}
	walk = func(n ast.Node, sc *scope, loopDepth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m == n {
					return true
				}
				inner := &scope{acquired: make(map[string]token.Pos)}
				walk(m.Body, inner, 0)
				flush(inner)
				return false
			case *ast.ForStmt:
				if m == n {
					return true
				}
				walk(m.Body, sc, loopDepth+1)
				return false
			case *ast.RangeStmt:
				if m == n {
					return true
				}
				walk(m.Body, sc, loopDepth+1)
				return false
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "Lock", "RLock":
						if name, isLock := lockNameOf(pass, sel.X); isLock {
							if _, seen := sc.acquired[name]; !seen {
								sc.acquired[name] = m.Pos()
							}
						}
					}
				}
			case *ast.DeferStmt:
				if loopDepth > 0 {
					if sel, ok := ast.Unparen(m.Call.Fun).(*ast.SelectorExpr); ok {
						switch sel.Sel.Name {
						case "Unlock", "RUnlock", "Close":
							pass.Reportf(m.Pos(), "defer %s.%s inside a loop runs only when the function returns, not per iteration — release it explicitly or hoist the loop body into a function", exprText(sel.X), sel.Sel.Name)
						}
					}
				}
				if sel, ok := ast.Unparen(m.Call.Fun).(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") && loopDepth == 0 {
					if name, isLock := lockNameOf(pass, sel.X); isLock {
						sc.defers = append(sc.defers, deferredUnlock{lock: name, pos: m.Pos()})
					}
				}
			}
			return true
		})
	}
	sc := &scope{acquired: make(map[string]token.Pos)}
	walk(fd.Body, sc, 0)
	flush(sc)
}

// lockNameOf resolves an expression to an annotated lock name, exactly
// as the flow walker does but without walker state.
func lockNameOf(pass *Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if o := pass.Info.Uses[e.Sel]; o != nil {
			if name, ok := pass.Ann.Locks[o]; ok {
				return name, true
			}
			return pass.Ann.Global.lockObj(o)
		}
	case *ast.Ident:
		if o := pass.Info.Uses[e]; o != nil {
			if name, ok := pass.Ann.Locks[o]; ok {
				return name, true
			}
			return pass.Ann.Global.lockObj(o)
		}
	}
	return "", false
}

// exprText renders a short receiver expression for messages (x.mu,
// file). Falls back to "<expr>" for anything exotic.
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	}
	return "<expr>"
}
