// Package writecache implements LSVD's log-structured write-back cache
// (paper §3.1, Fig 2): incoming writes are persisted as sequential log
// records on the cache SSD — a 4 KiB-aligned header carrying the
// virtual LBA, sequence number and CRC, followed by the data — and
// indexed by an in-memory extent map from vLBA to physical SSD
// location.
//
// Because the cache is a log:
//
//   - write ordering is preserved, which lets the block store preserve
//     it too (prefix consistency);
//   - small random writes become sequential SSD writes;
//   - a commit barrier is a single device flush — no metadata pages
//     need be written (the map is recoverable from the record
//     headers), the property behind the paper's 4x varmail win over
//     bcache (§4.2.2).
//
// The log is a circular buffer. Records are reclaimed strictly FIFO
// and only after the core marks them destaged to the backend; the map
// is periodically checkpointed to a reserved SSD region to bound
// replay time (§3.3).
package writecache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/invariant"
	"lsvd/internal/journal"
	"lsvd/internal/simdev"
)

// ErrFull is returned by Append when the log cannot admit the record
// because the head of the ring has not yet been destaged to the
// backend; the caller must destage and mark progress, then retry.
var ErrFull = errors.New("writecache: log full of un-destaged records")

const (
	superSlot0 = 0
	superSlot1 = block.BlockSize
	ckptStart  = 2 * block.BlockSize
)

// Config configures a cache instance.
type Config struct {
	// CheckpointBytes reserves space for two rotating map checkpoint
	// slots. Default 16 MiB.
	CheckpointBytes int64
	// CheckpointEvery triggers an automatic checkpoint after this many
	// appended records. Default 8192. Zero disables automatic
	// checkpoints (explicit Checkpoint calls still work).
	CheckpointEvery int
}

func (c *Config) setDefaults() {
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = 16 * block.MiB
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8192
	}
}

// record is the in-memory ring index entry for one live log record.
type record struct {
	off      int64 // byte offset of the header on the device
	size     int64 // total record bytes (header + padded data)
	seq      uint64
	writeSeq uint64
	typ      journal.Type
	ext      block.Extent // data extent (zero for pads)
}

func (r *record) dataOff() int64 { return r.off + int64(journal.AlignedHeaderSize(1)) }

// Stats reports cache occupancy and activity.
type Stats struct {
	LogBytes      int64  // capacity of the log area
	UsedBytes     int64  // bytes between head and tail
	DirtyBytes    int64  // bytes not yet destaged to the backend
	Records       int    // live records in the ring
	MapExtents    int    // extent map entries
	Appends       uint64 // records appended since open
	Evictions     uint64 // records reclaimed
	Checkpoints   uint64
	MaxWriteSeq   uint64 // newest client write in the log
	DestagedSeq   uint64 // newest client write known durable remotely
	RecoveredRecs int    // records replayed at open
}

// Cache is a log-structured write-back cache on a block device.
// Mutations take the write lock; lookups and data reads share the read
// lock, so concurrent readers never block each other and an eviction
// can never reuse log space out from under an in-progress read.
type Cache struct {
	mu  sync.RWMutex //lsvd:lock wcache.mu
	dev simdev.Device
	cfg Config

	logStart, logEnd int64
	head, tail       int64 // byte offsets into [logStart, logEnd)
	used             int64
	nextSeq          uint64
	maxWriteSeq      uint64
	destagedSeq      uint64
	superGen         uint64
	ckptSlot         int // which slot the next checkpoint uses (0/1)

	ring []record // FIFO of live records, oldest first
	m    *extmap.Map

	appends, evictions, checkpoints uint64
	sinceCkpt                       int
	recovered                       int
}

// Format initializes a device as an empty cache and returns it opened.
func Format(dev simdev.Device, cfg Config) (*Cache, error) {
	cfg.setDefaults()
	c := &Cache{dev: dev, cfg: cfg, m: extmap.New(), nextSeq: 1}
	c.logStart = ckptStart + cfg.CheckpointBytes
	c.logEnd = dev.Size() &^ (block.BlockSize - 1)
	if c.logEnd-c.logStart < 4*block.MiB {
		return nil, fmt.Errorf("writecache: device of %d bytes too small (log area %d)", dev.Size(), c.logEnd-c.logStart)
	}
	c.head, c.tail = c.logStart, c.logStart
	if err := c.checkpointLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Open recovers a cache from a formatted device: it loads the latest
// checkpoint and replays the log tail, stopping at the first record
// whose magic, CRC or sequence number does not line up (§3.3).
func Open(dev simdev.Device, cfg Config) (*Cache, error) {
	cfg.setDefaults()
	c := &Cache{dev: dev, cfg: cfg, m: extmap.New()}
	c.logStart = ckptStart + cfg.CheckpointBytes
	c.logEnd = dev.Size() &^ (block.BlockSize - 1)
	if err := c.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := c.replay(); err != nil {
		return nil, err
	}
	return c, nil
}

// superblock payload: generation, checkpoint slot, checkpoint length.
// The record is encoded unaligned (it is a few dozen bytes) so that it
// fits entirely within its 4 KiB slot.
func encodeSuper(gen uint64, slot uint32, ckptLen int64) ([]byte, error) {
	data := make([]byte, 20)
	binary.LittleEndian.PutUint64(data, gen)
	binary.LittleEndian.PutUint32(data[8:], slot)
	binary.LittleEndian.PutUint64(data[12:], uint64(ckptLen))
	return journal.Encode(&journal.Header{Type: journal.TypeSuper, Seq: gen, DataLen: uint64(len(data))}, data, false)
}

func (c *Cache) writeSuper(ckptLen int64) error {
	c.superGen++
	rec, err := encodeSuper(c.superGen, uint32(c.ckptSlot), ckptLen)
	if err != nil {
		return err
	}
	slotOff := int64(superSlot0)
	if c.superGen%2 == 1 {
		slotOff = superSlot1
	}
	if err := c.dev.WriteAt(rec, slotOff); err != nil {
		return err
	}
	return c.dev.Flush()
}

func (c *Cache) readSuper() (gen uint64, slot uint32, ckptLen int64, err error) {
	best := uint64(0)
	found := false
	buf := make([]byte, block.BlockSize)
	for _, off := range []int64{superSlot0, superSlot1} {
		if rerr := c.dev.ReadAt(buf, off); rerr != nil {
			continue
		}
		h, data, _, derr := journal.Decode(buf, false)
		if derr != nil || h.Type != journal.TypeSuper || len(data) < 20 {
			continue
		}
		g := binary.LittleEndian.Uint64(data)
		if !found || g > best {
			best = g
			slot = binary.LittleEndian.Uint32(data[8:])
			ckptLen = int64(binary.LittleEndian.Uint64(data[12:]))
			found = true
		}
	}
	if !found {
		return 0, 0, 0, fmt.Errorf("writecache: no valid superblock (device not formatted?)")
	}
	return best, slot, ckptLen, nil
}

// checkpoint payload layout.
func (c *Cache) encodeCheckpoint() ([]byte, error) {
	mapBytes, err := c.m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	// head, tail, nextSeq, maxWriteSeq, destagedSeq, nRing, mapLen
	buf := make([]byte, 0, 7*8+len(c.ring)*44+len(mapBytes))
	var scratch [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	put64(uint64(c.head))
	put64(uint64(c.tail))
	put64(c.nextSeq)
	put64(c.maxWriteSeq)
	put64(c.destagedSeq)
	put64(uint64(len(c.ring)))
	put64(uint64(len(mapBytes)))
	for _, r := range c.ring {
		put64(uint64(r.off))
		put64(uint64(r.size))
		put64(r.seq)
		put64(r.writeSeq)
		put64(uint64(r.ext.LBA))
		binary.LittleEndian.PutUint32(scratch[:4], r.ext.Sectors)
		buf = append(buf, scratch[:4]...)
		buf = append(buf, byte(r.typ))
	}
	buf = append(buf, mapBytes...)
	return buf, nil
}

func (c *Cache) decodeCheckpoint(data []byte) error {
	if len(data) < 56 {
		return fmt.Errorf("writecache: checkpoint too short (%d bytes)", len(data))
	}
	g := func(i int) uint64 { return binary.LittleEndian.Uint64(data[i*8:]) }
	c.head = int64(g(0))
	c.tail = int64(g(1))
	c.nextSeq = g(2)
	c.maxWriteSeq = g(3)
	c.destagedSeq = g(4)
	off := 56
	const ringEntry = 45
	// Bound both counts against the data actually present BEFORE
	// converting: hostile 64-bit counts would wrap negative, pass the
	// truncation check, and panic in make below. This also bounds the
	// ring allocation by the checkpoint size.
	if g(5) > uint64(len(data)-off)/ringEntry || g(6) > uint64(len(data)) {
		return fmt.Errorf("writecache: checkpoint truncated")
	}
	nRing := int(g(5))
	mapLen := int(g(6))
	if len(data) < off+nRing*ringEntry+mapLen {
		return fmt.Errorf("writecache: checkpoint truncated")
	}
	c.ring = make([]record, 0, nRing)
	c.used = 0
	for i := 0; i < nRing; i++ {
		p := data[off:]
		r := record{
			off:      int64(binary.LittleEndian.Uint64(p)),
			size:     int64(binary.LittleEndian.Uint64(p[8:])),
			seq:      binary.LittleEndian.Uint64(p[16:]),
			writeSeq: binary.LittleEndian.Uint64(p[24:]),
			ext: block.Extent{
				LBA:     block.LBA(binary.LittleEndian.Uint64(p[32:])),
				Sectors: binary.LittleEndian.Uint32(p[40:]),
			},
			typ: journal.Type(p[44]),
		}
		c.ring = append(c.ring, r)
		c.used += r.size
		off += ringEntry
	}
	return c.m.UnmarshalBinary(data[off : off+mapLen])
}

func (c *Cache) ckptSlotOff(slot int) int64 {
	half := c.cfg.CheckpointBytes / 2
	return ckptStart + int64(slot)*half
}

// Checkpoint persists the map and ring index to the reserved SSD
// region and commits it via the superblock, bounding recovery replay.
func (c *Cache) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkpointLocked()
}

func (c *Cache) checkpointLocked() error {
	payload, err := c.encodeCheckpoint()
	if err != nil {
		return err
	}
	rec, err := journal.Encode(&journal.Header{Type: journal.TypeCheckpoint, Seq: c.superGen + 1, DataLen: uint64(len(payload))}, payload, true)
	if err != nil {
		return err
	}
	if int64(len(rec)) > c.cfg.CheckpointBytes/2 {
		return fmt.Errorf("writecache: checkpoint of %d bytes exceeds slot of %d", len(rec), c.cfg.CheckpointBytes/2)
	}
	slot := (c.ckptSlot + 1) % 2
	if err := c.dev.WriteAt(rec, c.ckptSlotOff(slot)); err != nil {
		return err
	}
	if err := c.dev.Flush(); err != nil {
		return err
	}
	c.ckptSlot = slot
	if err := c.writeSuper(int64(len(rec))); err != nil {
		return err
	}
	c.checkpoints++
	c.sinceCkpt = 0
	return nil
}

func (c *Cache) loadCheckpoint() error {
	gen, slot, ckptLen, err := c.readSuper()
	if err != nil {
		return err
	}
	c.superGen = gen
	c.ckptSlot = int(slot)
	buf := make([]byte, ckptLen)
	if err := c.dev.ReadAt(buf, c.ckptSlotOff(int(slot))); err != nil {
		return err
	}
	h, payload, _, err := journal.Decode(buf, true)
	if err != nil {
		return fmt.Errorf("writecache: checkpoint unreadable: %w", err)
	}
	if h.Type != journal.TypeCheckpoint {
		return fmt.Errorf("writecache: checkpoint slot holds %v record", h.Type)
	}
	return c.decodeCheckpoint(payload)
}

// replay scans the log from the checkpointed tail, applying every
// complete record in sequence until the chain breaks.
func (c *Cache) replay() error {
	hdr := make([]byte, journal.AlignedHeaderSize(1))
	for {
		if c.tail == c.logEnd {
			c.tail = c.logStart
		}
		if err := c.dev.ReadAt(hdr, c.tail); err != nil {
			return err
		}
		h, _, err := journal.DecodeHeader(hdr)
		if err != nil || h.Seq != c.nextSeq {
			break // end of log
		}
		var total int64
		if h.Type == journal.TypePad {
			// A pad claims the rest of the ring; only its header is
			// on disk.
			if len(h.Extents) != 1 {
				break
			}
			total = int64(h.Extents[0].Sectors) << block.SectorShift
			if c.tail+total != c.logEnd {
				break // pad must end exactly at the ring boundary
			}
			if _, _, _, err := journal.Decode(hdr, true); err != nil {
				break
			}
		} else {
			if h.DataLen > uint64(c.logEnd) {
				break // corrupt length field: would wrap the conversion
			}
			dataLen := int64(h.DataLen)
			total = int64(journal.AlignedHeaderSize(len(h.Extents))) + dataLen
			total = (total + block.BlockSize - 1) &^ (block.BlockSize - 1)
			if c.tail+total > c.logEnd {
				break // would run off the ring: corrupt length
			}
			full := make([]byte, total)
			if err := c.dev.ReadAt(full, c.tail); err != nil {
				return err
			}
			if _, _, _, err := journal.Decode(full, true); err != nil {
				break // incomplete record (torn write): stop here
			}
		}
		c.applyRecord(h, c.tail, total)
		c.tail += total
		c.recovered++
	}
	return nil
}

func (c *Cache) applyRecord(h *journal.Header, off, size int64) {
	r := record{off: off, size: size, seq: h.Seq, writeSeq: h.WriteSeq, typ: h.Type}
	if len(h.Extents) > 0 {
		r.ext = block.Extent{LBA: h.Extents[0].LBA, Sectors: h.Extents[0].Sectors}
	}
	switch h.Type {
	case journal.TypeData:
		dataOff := off + int64(journal.AlignedHeaderSize(len(h.Extents)))
		c.m.Update(r.ext, extmap.Target{Off: block.LBAFromBytes(dataOff)})
	case journal.TypeTrim:
		c.m.Update(r.ext, extmap.Target{Off: trimTombstoneOff})
	}
	c.ring = append(c.ring, r)
	c.used += size
	c.nextSeq = h.Seq + 1
	if h.WriteSeq > c.maxWriteSeq {
		c.maxWriteSeq = h.WriteSeq
	}
}

// contiguousFree returns how many bytes can be written at the tail
// without crossing the head, and whether the tail would first need to
// wrap (pad) to the start of the log.
func (c *Cache) freeAt(tail int64) int64 {
	if c.used == 0 {
		return c.logEnd - tail
	}
	if tail >= c.head {
		return c.logEnd - tail
	}
	return c.head - tail
}

// Append persists one client write to the log. writeSeq is the global
// client write sequence number assigned by the core; ErrFull means the
// ring has no reclaimable space and the caller must destage first.
func (c *Cache) Append(writeSeq uint64, ext block.Extent, data []byte) error {
	if int64(len(data)) != ext.Bytes() {
		return fmt.Errorf("writecache: extent %v does not match %d data bytes", ext, len(data))
	}
	return c.append(writeSeq, journal.TypeData, ext, data)
}

// AppendTrim logs a discard of ext.
func (c *Cache) AppendTrim(writeSeq uint64, ext block.Extent) error {
	return c.append(writeSeq, journal.TypeTrim, ext, nil)
}

func (c *Cache) append(writeSeq uint64, typ journal.Type, ext block.Extent, data []byte) error {
	c.mu.Lock()
	invariant.LockOrder("wcache.mu")
	defer c.mu.Unlock()
	defer invariant.LockRelease("wcache.mu")

	hdrLen := int64(journal.AlignedHeaderSize(1))
	need := hdrLen + int64(len(data))
	need = (need + block.BlockSize - 1) &^ (block.BlockSize - 1)
	if need > c.logEnd-c.logStart-int64(block.BlockSize) {
		return fmt.Errorf("writecache: record of %d bytes exceeds log of %d", need, c.logEnd-c.logStart)
	}

	// Make room: wrap with a pad record when the front of the ring has
	// space, otherwise evict destaged records from the head. A one
	// block guard gap keeps tail from ever catching head, which would
	// make a full ring indistinguishable from an empty one.
	guard := int64(block.BlockSize)
	for {
		free := c.freeAt(c.tail)
		if free >= need+guard {
			break
		}
		if c.tail >= c.head {
			frontRoom := c.head - c.logStart
			if c.used == 0 {
				frontRoom = c.tail - c.logStart
			}
			if frontRoom >= need+2*guard {
				if err := c.writePad(); err != nil {
					return err
				}
				continue
			}
		}
		if !c.evictOne() {
			return ErrFull
		}
	}

	h := &journal.Header{
		Type:     typ,
		Seq:      c.nextSeq,
		WriteSeq: writeSeq,
		Extents:  []journal.ExtentEntry{{LBA: ext.LBA, Sectors: ext.Sectors}},
		DataLen:  uint64(len(data)),
	}
	rec, err := journal.Encode(h, data, true)
	if err != nil {
		return err
	}
	if err := c.dev.WriteAt(rec, c.tail); err != nil {
		return err
	}
	r := record{off: c.tail, size: int64(len(rec)), seq: c.nextSeq, writeSeq: writeSeq, typ: typ, ext: ext}
	switch typ {
	case journal.TypeData:
		c.m.Update(ext, extmap.Target{Off: block.LBAFromBytes(r.dataOff())})
	case journal.TypeTrim:
		c.m.Update(ext, extmap.Target{Off: trimTombstoneOff})
	}
	c.ring = append(c.ring, r)
	c.used += r.size
	c.tail += r.size
	if c.tail == c.logEnd {
		c.tail = c.logStart
	}
	invariant.Assert(c.used <= c.logEnd-c.logStart && c.tail >= c.logStart && c.tail < c.logEnd,
		"writecache: ring accounting out of bounds after append")
	c.nextSeq++
	if writeSeq > c.maxWriteSeq {
		c.maxWriteSeq = writeSeq
	}
	c.appends++
	c.sinceCkpt++
	if c.cfg.CheckpointEvery > 0 && c.sinceCkpt >= c.cfg.CheckpointEvery {
		return c.checkpointLocked()
	}
	return nil
}

// writePad claims the space from tail to the end of the log with a pad
// record so the next record starts at logStart. Only the 4 KiB header
// is written; the skipped length rides in the header's extent entry, so
// no zero payload is materialized.
func (c *Cache) writePad() error {
	padLen := c.logEnd - c.tail
	h := &journal.Header{
		Type:    journal.TypePad,
		Seq:     c.nextSeq,
		Extents: []journal.ExtentEntry{{Sectors: uint32(padLen >> block.SectorShift)}},
	}
	rec, err := journal.Encode(h, nil, true)
	if err != nil {
		return err
	}
	if err := c.dev.WriteAt(rec, c.tail); err != nil {
		return err
	}
	c.ring = append(c.ring, record{off: c.tail, size: padLen, seq: c.nextSeq, typ: journal.TypePad})
	c.used += padLen
	c.nextSeq++
	c.tail = c.logStart
	return nil
}

// evictOne reclaims the oldest record if the backend has it; the map
// entries still pointing at its data are dropped.
func (c *Cache) evictOne() bool {
	if len(c.ring) == 0 {
		return false
	}
	r := c.ring[0]
	if (r.typ == journal.TypeData || r.typ == journal.TypeTrim) && r.writeSeq > c.destagedSeq {
		return false
	}
	switch r.typ {
	case journal.TypeData:
		dataLo := block.LBAFromBytes(r.dataOff())
		dataHi := dataLo + block.LBA(r.ext.Sectors)
		c.m.DeleteIf(r.ext, func(run extmap.Run) bool {
			return run.Target.Off >= dataLo && run.Target.Off < dataHi
		})
	case journal.TypeTrim:
		// Dropping a tombstone owned by a newer overlapping trim is
		// harmless: this trim is destaged, so the backend already
		// reads as zeros for the shared range.
		c.m.DeleteIf(r.ext, IsTombstone)
	}
	c.ring = c.ring[1:]
	c.used -= r.size
	invariant.Assert(c.used >= 0, "writecache: used bytes negative after evicting a record")
	if len(c.ring) > 0 {
		c.head = c.ring[0].off
	} else {
		c.head = c.tail
	}
	c.evictions++
	return true
}

// SetDestaged tells the cache that all client writes up to and
// including writeSeq are durable in the backend, unlocking FIFO
// reclamation of the corresponding records.
func (c *Cache) SetDestaged(writeSeq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if writeSeq > c.destagedSeq {
		c.destagedSeq = writeSeq
	}
}

// Flush is the commit barrier: one device flush makes every prior log
// record durable (§3.2). No metadata writes are needed. The read lock
// suffices: any append that has been acknowledged finished its device
// write before releasing the write lock, so the flush covers it.
func (c *Cache) Flush() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dev.Flush()
}

// Trims are held in the map as tombstone runs — Present, but with this
// sentinel target — so a read of a discarded range is answered (with
// zeros) by the cache instead of falling through to a backend that may
// not have applied the trim yet. The tombstone lives exactly as long
// as the trim's log record: eviction removes both together.
const trimTombstoneOff = block.LBA(1) << 60

// IsTombstone reports whether a run returned by Lookup/ReadExtent is a
// trim tombstone (reads as zeros, no backing log data). Partial lookups
// and splits shift a run's target by its offset into the entry, so the
// test is on the sentinel bit, not equality.
func IsTombstone(run extmap.Run) bool {
	return run.Present && run.Target.Off >= trimTombstoneOff
}

// Lookup returns the cache's coverage of ext.
func (c *Cache) Lookup(ext block.Extent) []extmap.Run {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.Lookup(ext)
}

// ReadAt reads cached data previously located via Lookup. Under
// concurrency a Lookup target can be evicted before the read; callers
// on the data path should use ReadExtent or ReadFull, which hold the
// lock across lookup and read.
func (c *Cache) ReadAt(t extmap.Target, buf []byte) error {
	return c.dev.ReadAt(buf, t.Off.Bytes())
}

// ReadExtent looks up ext and reads every present run into the
// matching positions of buf (len(buf) == ext.Bytes()), all under one
// lock acquisition so a concurrent eviction cannot reuse the log space
// mid-read. Absent runs are returned untouched for the caller's next
// cache level.
func (c *Cache) ReadExtent(ext block.Extent, buf []byte) ([]extmap.Run, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	runs := c.m.Lookup(ext)
	for _, run := range runs {
		if !run.Present {
			continue
		}
		off := (run.LBA - ext.LBA).Bytes()
		if IsTombstone(run) {
			clear(buf[off : off+run.Bytes()])
			continue
		}
		if err := c.dev.ReadAt(buf[off:off+run.Bytes()], run.Target.Off.Bytes()); err != nil {
			return nil, err
		}
	}
	return runs, nil
}

// ReadFull fills buf with the cache's data for ext if the extent is
// fully resident, holding the lock across the device reads. Used by
// the destage/GC fetch path (§3.5) and the SSD readback mode (§3.7).
func (c *Cache) ReadFull(ext block.Extent, buf []byte) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	runs := c.m.Lookup(ext)
	for _, run := range runs {
		// Tombstones count as not-resident: the destage/GC callers want
		// the extent's logged data, not the zeros of a newer discard.
		if !run.Present || IsTombstone(run) {
			return false
		}
	}
	for _, run := range runs {
		off := (run.LBA - ext.LBA).Bytes()
		if err := c.dev.ReadAt(buf[off:off+run.Bytes()], run.Target.Off.Bytes()); err != nil {
			return false
		}
	}
	return true
}

// RecordsAfter replays, in order, every data/trim record with writeSeq
// greater than the given sequence, passing the write's extent and data
// (nil for trims). Used for crash recovery: the core re-sends these to
// the backend (§3.3 "rewind and replay").
func (c *Cache) RecordsAfter(writeSeq uint64, fn func(writeSeq uint64, typ journal.Type, ext block.Extent, data []byte) error) error {
	c.mu.RLock()
	ring := make([]record, len(c.ring))
	copy(ring, c.ring)
	c.mu.RUnlock()
	for _, r := range ring {
		if r.writeSeq <= writeSeq || r.typ == journal.TypePad {
			continue
		}
		var data []byte
		if r.typ == journal.TypeData {
			data = make([]byte, r.ext.Bytes())
			if err := c.dev.ReadAt(data, r.dataOff()); err != nil {
				return err
			}
		}
		if err := fn(r.writeSeq, r.typ, r.ext, data); err != nil {
			return err
		}
	}
	return nil
}

// MaxWriteSeq returns the newest client write sequence in the log.
func (c *Cache) MaxWriteSeq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.maxWriteSeq
}

// Stats returns a snapshot of cache statistics.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	dirty := int64(0)
	for _, r := range c.ring {
		if r.typ == journal.TypeData && r.writeSeq > c.destagedSeq {
			dirty += r.size
		}
	}
	return Stats{
		LogBytes: c.logEnd - c.logStart, UsedBytes: c.used, DirtyBytes: dirty,
		Records: len(c.ring), MapExtents: c.m.Len(),
		Appends: c.appends, Evictions: c.evictions, Checkpoints: c.checkpoints,
		MaxWriteSeq: c.maxWriteSeq, DestagedSeq: c.destagedSeq, RecoveredRecs: c.recovered,
	}
}

// Close checkpoints and flushes the cache.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkpointLocked(); err != nil {
		return err
	}
	return c.dev.Flush()
}
