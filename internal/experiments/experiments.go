// Package experiments regenerates every table and figure of the
// paper's evaluation (§4). Each driver builds the real LSVD stack (and
// where applicable the bcache+RBD baseline) over simulated devices,
// runs a scaled version of the paper's workload through the actual
// code paths, and converts the metered I/O into time with the
// calibrated iomodel (DESIGN.md §7). Absolute numbers are model
// outputs; relative results come from the genuine I/O streams.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"lsvd/internal/baseline/bcache"
	"lsvd/internal/baseline/rbd"
	"lsvd/internal/block"
	"lsvd/internal/cluster"
	"lsvd/internal/core"
	"lsvd/internal/iomodel"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
	"lsvd/internal/vdisk"
)

// Env sets the global scale of all experiments: volumes, cache sizes
// and write volumes are the paper's divided by Scale. Scale 32 gives
// quick, benchmark-friendly runs; Scale 8 runs closer to paper sizes.
type Env struct {
	Scale int64
	Seed  int64

	// UploadDepth overrides core.Options.UploadDepth for every LSVD
	// stack an experiment builds (0 keeps the core default).
	UploadDepth int
	// SyncDestage forces the synchronous destage path everywhere, for
	// before/after comparisons of the async pipeline.
	SyncDestage bool
	// FetchDepth overrides core.Options.FetchDepth (1 serializes the
	// read-miss path, for before/after comparisons of the fan-out).
	FetchDepth int
	// OpenFanout overrides core.Options.OpenFanout (1 serializes
	// recovery I/O at open, for before/after comparisons of the
	// parallel replay).
	OpenFanout int
	// GroupStall overrides core.Options.GroupCommitStall, the time
	// the group-commit leader lingers for followers per batch.
	GroupStall time.Duration
	// GroupMaxRecords overrides core.Options.GroupCommitMaxRecords,
	// the record cap of one group-commit device write.
	GroupMaxRecords int
	// GCWAFTarget overrides core.Options.GCWAFTarget, the background
	// GC service's write-amplification budget (< 0 disables pacing).
	GCWAFTarget float64
}

// DefaultEnv is the scale used by the bench harness.
func DefaultEnv() Env { return Env{Scale: 32, Seed: 1} }

// tune applies the Env's destage-pipeline overrides to opts.
func (e Env) tune(opts *core.Options) {
	if e.UploadDepth != 0 {
		opts.UploadDepth = e.UploadDepth
	}
	if e.SyncDestage {
		opts.SyncDestage = true
	}
	if e.FetchDepth != 0 {
		opts.FetchDepth = e.FetchDepth
	}
	if e.OpenFanout != 0 {
		opts.OpenFanout = e.OpenFanout
	}
	if e.GroupStall != 0 {
		opts.GroupCommitStall = e.GroupStall
	}
	if e.GroupMaxRecords != 0 {
		opts.GroupCommitMaxRecords = e.GroupMaxRecords
	}
	if e.GCWAFTarget != 0 {
		opts.GCWAFTarget = e.GCWAFTarget
	}
}

func (e Env) volBytes() int64   { return 80 * block.GiB / e.Scale }  // 80 GiB volumes (§4.1)
func (e Env) bigCache() int64   { return 160 * block.GiB / e.Scale } // "cache larger than the volume"
func (e Env) smallCache() int64 { return 5 * block.GiB / e.Scale }   // §4.3 5 GB cache

// Client-path software overhead per operation, calibrated from the
// paper's Table 6 breakdown: the LSVD prototype's kernel/user path
// serializes ~16 µs of CPU per I/O (which is what limits it to ~60 K
// IOPS at 4 KiB, §4.2.1); bcache's in-kernel B-tree path costs more
// per write; RBD's client path is lighter but every I/O pays the
// network round trip.
const (
	lsvdSoftSerial   = 16 * time.Microsecond
	bcacheSoftSerial = 22 * time.Microsecond
	rbdSoftSerial    = 6 * time.Microsecond
	rbdNetRTT        = 500 * time.Microsecond
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as CSV.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// lsvdStack is a fully metered LSVD deployment.
type lsvdStack struct {
	disk     *core.Disk
	cacheDev *simdev.Metered
	cacheMem *simdev.MemDevice
	store    *objstore.Metered
	pool     *cluster.Pool
}

// newLSVD builds an LSVD disk over a metered NVMe cache and an
// erasure-coded simulated pool fronted by an S3 endpoint model.
func newLSVD(ctx context.Context, e Env, cacheBytes int64, poolCfg cluster.Config, opts core.Options) (*lsvdStack, error) {
	st := &lsvdStack{cacheMem: simdev.NewMem(cacheBytes)}
	st.cacheDev = simdev.NewMetered(st.cacheMem, iomodel.NVMeP3700)
	var err error
	if st.pool, err = cluster.New(poolCfg); err != nil {
		return nil, err
	}
	st.store = objstore.NewMetered(cluster.NewStore(objstore.NewMemSlim(), st.pool))
	opts.Volume = "vol"
	opts.Store = st.store
	opts.CacheDev = st.cacheDev
	if opts.VolBytes == 0 {
		opts.VolBytes = e.volBytes()
	}
	e.tune(&opts)
	if st.disk, err = core.Create(ctx, opts); err != nil {
		return nil, err
	}
	return st, nil
}

// elapsed models the wall-clock of a run: the binding constraint among
// client software serialization, per-op latency under the queue depth,
// the cache device, the backend pool, and the S3 endpoint.
func (st *lsvdStack) elapsed(ops uint64, qd int, extra time.Duration) time.Duration {
	soft := time.Duration(ops) * lsvdSoftSerial
	perOp := lsvdSoftSerial + iomodel.NVMeP3700.WriteLatency
	lat := time.Duration(ops) * perOp / time.Duration(max(qd, 1))
	dev := iomodel.ElapsedMeter(st.cacheDev.Meter, qd)
	pool := st.pool.MaxBusy()
	s3 := st.store.ModeledTime(8) // destage/read pipeline depth
	return maxDur(soft, lat, dev, pool, s3, extra)
}

// bcacheStack is the metered bcache+RBD baseline.
type bcacheStack struct {
	cache    *bcache.Cache
	cacheDev *simdev.Metered
	backing  *rbd.Disk
	pool     *cluster.Pool
}

func newBcacheRBD(e Env, cacheBytes int64, poolCfg cluster.Config) (*bcacheStack, error) {
	st := &bcacheStack{}
	st.cacheDev = simdev.NewMetered(simdev.NewMem(cacheBytes), iomodel.NVMeP3700)
	var err error
	if st.pool, err = cluster.New(poolCfg); err != nil {
		return nil, err
	}
	if st.backing, err = rbd.New(rbd.Options{Volume: "img", Pool: st.pool, VolBytes: e.volBytes()}); err != nil {
		return nil, err
	}
	if st.cache, err = bcache.New(bcache.Options{Dev: st.cacheDev, Backing: st.backing}); err != nil {
		return nil, err
	}
	return st, nil
}

func (st *bcacheStack) elapsed(ops uint64, qd int, extra time.Duration) time.Duration {
	soft := time.Duration(ops) * bcacheSoftSerial
	perOp := bcacheSoftSerial + iomodel.NVMeP3700.WriteLatency
	lat := time.Duration(ops) * perOp / time.Duration(max(qd, 1))
	dev := iomodel.ElapsedMeter(st.cacheDev.Meter, qd)
	// Every backend (RBD) op pays the network round trip plus the
	// replicated two-phase commit at the storage devices.
	w, r := st.backing.Ops()
	commit := rbdNetRTT + 2*st.pool.Config().Disk.WriteLatency
	net := time.Duration(w+r) * commit / time.Duration(max(qd, 1))
	pool := st.pool.MaxBusy()
	return maxDur(soft, lat, dev, pool, net, extra)
}

// throughputMBs converts bytes over a modeled duration to MB/s.
func throughputMBs(bytes uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}

func maxDur(ds ...time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

var _ vdisk.Disk = (*core.Disk)(nil)
