package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// sectmath flags sector<->byte conversions whose integer types can
// overflow, truncate, or sign-flip on hostile or merely large inputs.
// Two rules:
//
//   - S1 (scaling width): a conversion to int/int32/uint32 used as an
//     operand of a multiply or left-shift by a sector-scale constant
//     (>= 512, or shift >= 9). int(sectors)*512 overflows on 32-bit
//     platforms; uint32(off64)*512 truncates before scaling.
//
//   - S2 (hostile sign-flip): a conversion to int/int64 from a 64-bit
//     unsigned value (LBAs, on-disk length fields) used in arithmetic,
//     a make() size, or an index/slice bound. A crafted length like
//     0xffffffffffffffff converts negative, slips past an upper-bound
//     check, and panics (or worse) downstream. The sanctioned idiom —
//     bounds-check the unsigned value first, then convert in a bare
//     assignment — is deliberately not flagged.
//
// The conversion helpers in lsvd/internal/block are the blessed
// conversion point and carry //lsvd:ignore annotations documenting
// their bounds argument.
func newSectmath() *Analyzer {
	a := &Analyzer{
		Name: "sectmath",
		Doc:  "sector/byte integer conversions must not overflow, truncate, or sign-flip",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if call, ok := n.(*ast.CallExpr); ok {
					checkConv(pass, call, stack)
				}
				stack = append(stack, n)
				return true
			})
		}
	}
	return a
}

func checkConv(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst, ok := tv.Type.(*types.Basic)
	if !ok {
		return
	}
	src, ok := pass.Info.Types[call.Args[0]].Type.Underlying().(*types.Basic)
	if !ok {
		return
	}
	parent := enclosing(stack, call)

	// S1: narrow or platform-dependent target scaled by a sector
	// constant.
	if c, op, scaled := scaleContext(pass, parent, call); scaled {
		narrow := dst.Kind() == types.Int32 || dst.Kind() == types.Uint32
		platform := dst.Kind() == types.Int && (src.Kind() == types.Uint32 || src.Kind() == types.Uint)
		if (narrow && is64(src)) || platform {
			pass.Reportf(call.Pos(),
				"%s(%s) %s %s in sector scaling can overflow or truncate; widen to int64 first (see internal/block)",
				dst.Name(), src.Name(), op, c)
			return
		}
	}

	// S2: signed target fed from 64-bit unsigned, used where a
	// negative value bites.
	if (dst.Kind() == types.Int || dst.Kind() == types.Int64) &&
		(src.Kind() == types.Uint64 || src.Kind() == types.Uint || src.Kind() == types.Uintptr) {
		if ctx := hostileContext(parent, call); ctx != "" {
			pass.Reportf(call.Pos(),
				"%s(%s) in %s can go negative on hostile input; bounds-check the unsigned value first, then convert",
				dst.Name(), src.Name(), ctx)
		}
	}
}

func is64(b *types.Basic) bool {
	switch b.Kind() {
	case types.Int64, types.Uint64, types.Int, types.Uint, types.Uintptr:
		return true
	}
	return false
}

// enclosing returns the nearest non-paren ancestor of n on the stack.
func enclosing(stack []ast.Node, n ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	_ = n
	return nil
}

// scaleContext reports whether the conversion is an operand of a
// multiply/shift by a sector-scale constant, returning the constant's
// text and the operator.
func scaleContext(pass *Pass, parent ast.Node, conv *ast.CallExpr) (string, string, bool) {
	be, ok := parent.(*ast.BinaryExpr)
	if !ok || (be.Op != token.MUL && be.Op != token.SHL) {
		return "", "", false
	}
	other := be.Y
	if ast.Unparen(be.Y) == conv {
		if be.Op == token.SHL {
			return "", "", false // conv is the shift count, not the value
		}
		other = be.X
	}
	tv, ok := pass.Info.Types[other]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return "", "", false
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return "", "", false
	}
	if (be.Op == token.MUL && v >= 512) || (be.Op == token.SHL && v >= 9) {
		return tv.Value.ExactString(), be.Op.String(), true
	}
	return "", "", false
}

// hostileContext classifies where a sign-flip matters: arithmetic,
// allocation sizes, index and slice bounds.
func hostileContext(parent ast.Node, conv *ast.CallExpr) string {
	switch p := parent.(type) {
	case *ast.BinaryExpr:
		switch p.Op {
		case token.ADD, token.SUB, token.MUL, token.SHL:
			return "arithmetic"
		}
	case *ast.IndexExpr:
		if ast.Unparen(p.Index) == conv {
			return "an index expression"
		}
	case *ast.SliceExpr:
		if ast.Unparen(p.Low) == conv || ast.Unparen(p.High) == conv || ast.Unparen(p.Max) == conv {
			return "a slice bound"
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok && id.Name == "make" {
			for _, arg := range p.Args[1:] {
				if ast.Unparen(arg) == conv {
					return "a make() size"
				}
			}
		}
	}
	return ""
}
