// Package simdev provides the block devices LSVD layers sit on: a
// sparse in-memory device with realistic crash semantics (writes
// acknowledged before a flush may be lost), a file-backed device for
// real deployments, and a metering wrapper that records the I/O stream
// for the iomodel timing analysis.
//
// The memory device elides all-zero pages, so multi-gigabyte
// experiment volumes written with zero payloads cost almost no RAM
// while correctness tests with random payloads still see exact data.
package simdev

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"lsvd/internal/iomodel"
)

// Device is the block-device abstraction used by the caches.
type Device interface {
	// ReadAt fills p from the device at byte offset off.
	ReadAt(p []byte, off int64) error
	// WriteAt stores p at byte offset off. The write is acknowledged
	// when WriteAt returns but is only durable after Flush.
	WriteAt(p []byte, off int64) error
	// Flush is the commit barrier: all previously acknowledged writes
	// are durable when it returns.
	Flush() error
	// Size returns the device capacity in bytes.
	Size() int64
}

const pageSize = 64 << 10

// VectorWriter is an optional Device extension: WriteAtv stores the
// concatenation of bufs at byte offset off as one device operation.
// The write-cache group-commit leader uses it to land a whole batch of
// log records (headers, payloads, padding) with a single call instead
// of one WriteAt per fragment.
type VectorWriter interface {
	WriteAtv(bufs [][]byte, off int64) error
}

// WriteVec writes the concatenation of bufs at off, using the device's
// native vectored write when it has one and falling back to sequential
// WriteAt calls otherwise.
func WriteVec(dev Device, off int64, bufs ...[]byte) error {
	if vw, ok := dev.(VectorWriter); ok {
		return vw.WriteAtv(bufs, off)
	}
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		if err := dev.WriteAt(b, off); err != nil {
			return err
		}
		off += int64(len(b))
	}
	return nil
}

func vecLen(bufs [][]byte) int64 {
	var n int64
	for _, b := range bufs {
		n += int64(len(b))
	}
	return n
}

// MemDevice is a sparse in-memory device. Nil pages read as zeros and
// all-zero writes release pages, so only genuinely non-zero data costs
// memory. Writes since the last Flush retain pre-images so Crash can
// roll an arbitrary subset of them back, modeling a volatile device
// cache lost on power failure.
type MemDevice struct {
	mu        sync.RWMutex
	size      int64
	pages     map[int64][]byte
	preimages map[int64][]byte // page index -> content at last flush
	hasPre    map[int64]bool   // distinguishes "preimage is zero page"
}

// NewMem returns a sparse in-memory device of the given size.
func NewMem(size int64) *MemDevice {
	return &MemDevice{
		size:      size,
		pages:     make(map[int64][]byte),
		preimages: make(map[int64][]byte),
		hasPre:    make(map[int64]bool),
	}
}

// Size returns the device capacity in bytes.
func (d *MemDevice) Size() int64 { return d.size }

func (d *MemDevice) check(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > d.size {
		return fmt.Errorf("simdev: I/O [%d,%d) outside device of %d bytes", off, off+int64(len(p)), d.size)
	}
	return nil
}

// ReadAt implements Device.
func (d *MemDevice) ReadAt(p []byte, off int64) error {
	if err := d.check(p, off); err != nil {
		return err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	for len(p) > 0 {
		pg := off / pageSize
		po := off % pageSize
		n := int64(len(p))
		if n > pageSize-po {
			n = pageSize - po
		}
		if page := d.pages[pg]; page != nil {
			copy(p[:n], page[po:po+n])
		} else {
			clear(p[:n])
		}
		p = p[n:]
		off += n
	}
	return nil
}

// WriteAt implements Device.
func (d *MemDevice) WriteAt(p []byte, off int64) error {
	if err := d.check(p, off); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writeLocked(p, off)
	return nil
}

// WriteAtv implements VectorWriter: the whole batch lands under one
// lock acquisition.
func (d *MemDevice) WriteAtv(bufs [][]byte, off int64) error {
	if total := vecLen(bufs); off < 0 || off+total > d.size {
		return fmt.Errorf("simdev: I/O [%d,%d) outside device of %d bytes", off, off+total, d.size)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range bufs {
		d.writeLocked(p, off)
		off += int64(len(p))
	}
	return nil
}

func (d *MemDevice) writeLocked(p []byte, off int64) {
	for len(p) > 0 {
		pg := off / pageSize
		po := off % pageSize
		n := int64(len(p))
		if n > pageSize-po {
			n = pageSize - po
		}
		d.savePreimage(pg)
		page := d.pages[pg]
		if page == nil {
			if allZero(p[:n]) {
				// Writing zeros over a zero page: nothing to do.
				p = p[n:]
				off += n
				continue
			}
			page = make([]byte, pageSize)
			d.pages[pg] = page
		}
		copy(page[po:po+n], p[:n])
		if allZero(page) {
			delete(d.pages, pg)
		}
		p = p[n:]
		off += n
	}
}

func (d *MemDevice) savePreimage(pg int64) {
	if d.hasPre[pg] {
		return
	}
	d.hasPre[pg] = true
	if page := d.pages[pg]; page != nil {
		cp := make([]byte, pageSize)
		copy(cp, page)
		d.preimages[pg] = cp
	} else {
		d.preimages[pg] = nil // zero page
	}
}

// Flush implements Device: it commits all acknowledged writes, clearing
// the crash pre-images.
func (d *MemDevice) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropPreimages()
	return nil
}

func (d *MemDevice) dropPreimages() {
	d.preimages = make(map[int64][]byte)
	d.hasPre = make(map[int64]bool)
}

// Crash simulates a power failure: every page written since the last
// Flush is independently rolled back to its pre-image with probability
// lossProb, using rng for determinism. lossProb 1 loses all unflushed
// writes; 0 keeps them all (writes that happened to reach media).
func (d *MemDevice) Crash(lossProb float64, rng *rand.Rand) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for pg := range d.hasPre {
		if rng.Float64() >= lossProb {
			continue
		}
		if pre := d.preimages[pg]; pre != nil {
			page := make([]byte, pageSize)
			copy(page, pre)
			d.pages[pg] = page
		} else {
			delete(d.pages, pg)
		}
	}
	d.dropPreimages()
}

// DirtyPages returns the number of pages written since the last flush.
func (d *MemDevice) DirtyPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.hasPre)
}

// Discard erases the whole device (used to model losing the cache SSD
// entirely, §4.4 Table 4).
func (d *MemDevice) Discard() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages = make(map[int64][]byte)
	d.dropPreimages()
}

// PagesInUse returns the number of materialized (non-zero) pages.
func (d *MemDevice) PagesInUse() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

func allZero(p []byte) bool {
	// Word loads (the compiler elides the per-iteration bounds checks)
	// rather than a byte loop: this runs over every zero page written,
	// so it shows up in write-path profiles.
	for len(p) >= 32 {
		if binary.LittleEndian.Uint64(p)|binary.LittleEndian.Uint64(p[8:])|
			binary.LittleEndian.Uint64(p[16:])|binary.LittleEndian.Uint64(p[24:]) != 0 {
			return false
		}
		p = p[32:]
	}
	for len(p) >= 8 {
		if binary.LittleEndian.Uint64(p) != 0 {
			return false
		}
		p = p[8:]
	}
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// FileDevice is a Device backed by a file (or raw block device path);
// used by the NBD server and the CLI tools for real deployments.
type FileDevice struct {
	f    *os.File
	size int64
}

// OpenFile opens (creating and sizing if needed) a file-backed device.
func OpenFile(path string, size int64) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, err
		}
	} else if size == 0 {
		size = st.Size()
	}
	return &FileDevice{f: f, size: size}, nil
}

// ReadAt implements Device.
func (d *FileDevice) ReadAt(p []byte, off int64) error {
	_, err := d.f.ReadAt(p, off)
	return err
}

// WriteAt implements Device.
func (d *FileDevice) WriteAt(p []byte, off int64) error {
	_, err := d.f.WriteAt(p, off)
	return err
}

// Flush implements Device via fsync.
func (d *FileDevice) Flush() error { return d.f.Sync() }

// Size implements Device.
func (d *FileDevice) Size() int64 { return d.size }

// Close closes the underlying file.
func (d *FileDevice) Close() error { return d.f.Close() }

// Section exposes a contiguous region of a parent device as its own
// Device; LSVD statically partitions the cache SSD into a write-cache
// area and a read-cache area this way (§3.7).
type Section struct {
	parent Device
	off    int64
	size   int64
}

// NewSection returns the [off, off+size) window of parent.
func NewSection(parent Device, off, size int64) (*Section, error) {
	if off < 0 || size <= 0 || off+size > parent.Size() {
		return nil, fmt.Errorf("simdev: section [%d,%d) outside parent of %d bytes", off, off+size, parent.Size())
	}
	return &Section{parent: parent, off: off, size: size}, nil
}

func (s *Section) check(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.size {
		return fmt.Errorf("simdev: I/O [%d,%d) outside section of %d bytes", off, off+int64(len(p)), s.size)
	}
	return nil
}

// ReadAt implements Device.
func (s *Section) ReadAt(p []byte, off int64) error {
	if err := s.check(p, off); err != nil {
		return err
	}
	return s.parent.ReadAt(p, s.off+off)
}

// WriteAt implements Device.
func (s *Section) WriteAt(p []byte, off int64) error {
	if err := s.check(p, off); err != nil {
		return err
	}
	return s.parent.WriteAt(p, s.off+off)
}

// WriteAtv implements VectorWriter by delegating to the parent's
// vectored write (or its fallback), so the per-volume write-log
// sections carved from a shared host SSD keep single-op group commits.
func (s *Section) WriteAtv(bufs [][]byte, off int64) error {
	if total := vecLen(bufs); off < 0 || off+total > s.size {
		return fmt.Errorf("simdev: I/O [%d,%d) outside section of %d bytes", off, off+total, s.size)
	}
	return WriteVec(s.parent, s.off+off, bufs...)
}

// Flush implements Device.
func (s *Section) Flush() error { return s.parent.Flush() }

// Size implements Device.
func (s *Section) Size() int64 { return s.size }

// Metered wraps a Device, recording every operation in an
// iomodel.Meter for timing analysis.
type Metered struct {
	Dev   Device
	Meter *iomodel.Meter
}

// NewMetered wraps dev with a meter using device parameters p.
func NewMetered(dev Device, p iomodel.Params) *Metered {
	return &Metered{Dev: dev, Meter: iomodel.NewMeter(p)}
}

// ReadAt implements Device.
func (m *Metered) ReadAt(p []byte, off int64) error {
	m.Meter.Record(iomodel.OpRead, off, int64(len(p)))
	return m.Dev.ReadAt(p, off)
}

// WriteAt implements Device.
func (m *Metered) WriteAt(p []byte, off int64) error {
	m.Meter.Record(iomodel.OpWrite, off, int64(len(p)))
	return m.Dev.WriteAt(p, off)
}

// WriteAtv implements VectorWriter: a vectored batch meters as the
// single device write it is.
func (m *Metered) WriteAtv(bufs [][]byte, off int64) error {
	m.Meter.Record(iomodel.OpWrite, off, vecLen(bufs))
	return WriteVec(m.Dev, off, bufs...)
}

// Flush implements Device.
func (m *Metered) Flush() error {
	m.Meter.RecordFlush()
	return m.Dev.Flush()
}

// Size implements Device.
func (m *Metered) Size() int64 { return m.Dev.Size() }
