package objstore

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Default retry policy: 4 attempts, 2 ms base backoff capped at 250 ms.
const (
	defaultRetryAttempts = 4
	defaultBaseDelay     = 2 * time.Millisecond
	defaultMaxDelay      = 250 * time.Millisecond
)

// RetryPolicy configures a Retrier. The zero value means "defaults".
type RetryPolicy struct {
	// MaxAttempts is the per-operation attempt budget. 0 means the
	// package default; negative disables retries entirely (a single
	// attempt, and blockstore skips wrapping the store).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry up to MaxDelay. Zero values mean the package defaults.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed fixes the jitter sequence for deterministic tests. Jitter
	// only spreads load; it carries no correctness weight, so sharing
	// the default Seed 0 stream across Retriers is fine.
	Seed int64
}

// Attempts returns the effective per-operation attempt budget: the
// configured MaxAttempts, the package default when zero, and a single
// attempt when retries are disabled.
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 0 {
		return 1
	}
	if p.MaxAttempts == 0 {
		return defaultRetryAttempts
	}
	return p.MaxAttempts
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return defaultBaseDelay
	}
	return p.BaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return defaultMaxDelay
	}
	return p.MaxDelay
}

// IsTerminal reports whether err cannot be fixed by retrying: missing
// objects, invalid names or ranges, and context cancellation.
func IsTerminal(err error) bool {
	return errors.Is(err, ErrNotFound) ||
		errors.Is(err, ErrBadName) ||
		errors.Is(err, ErrBadRange) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// Retrier wraps a Store with retry/backoff on transient failures.
// Terminal errors (IsTerminal) pass through unchanged — errors.Is
// classification is preserved because the last attempt's error is
// returned as-is, never re-wrapped.
type Retrier struct {
	Inner Store

	policy RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Uint64
}

// NewRetrier wraps inner with the given policy.
func NewRetrier(inner Store, policy RetryPolicy) *Retrier {
	return &Retrier{
		Inner:  inner,
		policy: policy,
		rng:    rand.New(rand.NewSource(policy.Seed)),
	}
}

// Retries returns the number of retried attempts (attempts beyond each
// operation's first) so far.
func (s *Retrier) Retries() uint64 { return s.retries.Load() }

// Policy returns the wrapper's retry policy.
func (s *Retrier) Policy() RetryPolicy { return s.policy }

// jitter returns a random duration in [d/2, d].
func (s *Retrier) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return d/2 + time.Duration(s.rng.Int63n(int64(d)/2+1))
}

// do runs op up to Attempts() times with exponential backoff between
// tries. It returns the LAST error unchanged so callers can classify
// it with errors.Is — including when the backoff sleep is cut short by
// context cancellation.
func (s *Retrier) do(ctx context.Context, op func() error) error {
	attempts := s.policy.Attempts()
	delay := s.policy.baseDelay()
	maxDelay := s.policy.maxDelay()
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return err
			}
			return cerr
		}
		err = op()
		if err == nil || IsTerminal(err) || attempt >= attempts {
			return err
		}
		s.retries.Add(1)
		select {
		case <-time.After(s.jitter(delay)):
		case <-ctx.Done():
			return err
		}
		if delay < maxDelay {
			delay *= 2
			if delay > maxDelay {
				delay = maxDelay
			}
		}
	}
}

// PutV implements VectorPutter.
func (s *Retrier) PutV(ctx context.Context, name string, bufs [][]byte) error {
	return s.do(ctx, func() error { return PutVec(ctx, s.Inner, name, bufs) })
}

// Put implements Store.
func (s *Retrier) Put(ctx context.Context, name string, data []byte) error {
	return s.do(ctx, func() error { return s.Inner.Put(ctx, name, data) })
}

// Get implements Store.
func (s *Retrier) Get(ctx context.Context, name string) ([]byte, error) {
	var out []byte
	err := s.do(ctx, func() error {
		var e error
		out, e = s.Inner.Get(ctx, name)
		return e
	})
	return out, err
}

// GetRange implements Store.
func (s *Retrier) GetRange(ctx context.Context, name string, off, length int64) ([]byte, error) {
	var out []byte
	err := s.do(ctx, func() error {
		var e error
		out, e = s.Inner.GetRange(ctx, name, off, length)
		return e
	})
	return out, err
}

// Delete implements Store.
func (s *Retrier) Delete(ctx context.Context, name string) error {
	return s.do(ctx, func() error { return s.Inner.Delete(ctx, name) })
}

// List implements Store.
func (s *Retrier) List(ctx context.Context, prefix string) ([]string, error) {
	var out []string
	err := s.do(ctx, func() error {
		var e error
		out, e = s.Inner.List(ctx, prefix)
		return e
	})
	return out, err
}

// Size implements Store.
func (s *Retrier) Size(ctx context.Context, name string) (int64, error) {
	var out int64
	err := s.do(ctx, func() error {
		var e error
		out, e = s.Inner.Size(ctx, name)
		return e
	})
	return out, err
}
