// Fileserver: run Filebench-style application workloads (fileserver,
// oltp, varmail — §4.2.2 of the paper) against an LSVD volume and the
// bcache+RBD baseline on the same simulated hardware, and print the
// modeled throughput side by side, reproducing the shape of the
// paper's Figure 8 (LSVD ~4x on the sync-heavy varmail).
//
//	go run ./examples/fileserver
package main

import (
	"context"
	"fmt"
	"log"

	"lsvd/internal/experiments"
)

func main() {
	ctx := context.Background()
	env := experiments.Env{Scale: 64, Seed: 1}

	fmt.Println("Running Filebench models on LSVD and bcache+RBD (scaled 1/64)...")
	tab, err := experiments.Fig8(ctx, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab.String())

	fmt.Println("Block-level signatures of the generated workloads (paper Table 3):")
	t3, err := experiments.Table3(ctx, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t3.String())

	fmt.Println("The varmail advantage comes from commit barriers: LSVD's log needs")
	fmt.Println("one SSD flush per barrier, while a B-tree cache must persist its")
	fmt.Println("dirty index nodes first (paper §4.2.2).")
}
