// Package host packs many LSVD volumes onto one cache SSD and one
// backend session (paper §3.7: a single local SSD is partitioned
// between the virtual disks of a host; the evaluation runs many
// volumes against one backend pool). A Host owns the shared hardware
// and the global budgets, and volumes lease from it:
//
//   - The SSD's write-cache region is statically carved into
//     MaxVolumes equal log sections, one per volume slot, so a
//     neighbor's burst can never consume another volume's log space.
//   - The rest of the SSD is ONE shared read-cache arena: all volumes
//     draw slabs from the same pool, with per-volume occupancy
//     accounting and fair eviction (a hot volume can only evict a
//     neighbor above its proportional share — see readcache.Arena).
//   - Backend uploads and miss fetches across ALL volumes share one
//     upload gate and one fetch semaphore, so the host's total backend
//     concurrency is bounded regardless of tenant count; the gate
//     additionally guarantees every open volume a minimum share of the
//     upload budget (iosched.Gate), so one hot volume cannot starve
//     its neighbors' destage pipelines.
//   - Each volume's objects live under its own key prefix
//     ("vol/<name>/…", objstore.Prefixed), so volumes are created,
//     listed and deleted independently inside one bucket.
//
// Volume-name → slot assignments persist in a small JSON object at
// key "host/slots", so reopening a host reattaches every volume to
// the write-cache section holding its log.
package host

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"

	"lsvd/internal/block"
	"lsvd/internal/core"
	"lsvd/internal/invariant"
	"lsvd/internal/iosched"
	"lsvd/internal/nbd"
	"lsvd/internal/objstore"
	"lsvd/internal/readcache"
	"lsvd/internal/simdev"
)

// Options configures a Host: the shared hardware and the global
// budgets. Per-volume knobs live in core.VolumeOptions, passed to
// Create/Open.
type Options struct {
	// Store is the backend bucket shared by every volume.
	Store objstore.Store
	// CacheDev is the host's cache SSD, shared by every volume.
	CacheDev simdev.Device

	// MaxVolumes is the number of write-cache slots carved from the
	// SSD (default 8). It bounds how many volumes the host can serve;
	// the read-cache arena is shared dynamically and needs no slots.
	MaxVolumes int
	// WriteCacheFrac is the fraction of the SSD carved into
	// write-cache slots; the rest is the shared read arena. Default
	// 0.2, as in the single-volume layout.
	WriteCacheFrac float64
	// ReadCachePolicy selects the arena's slab eviction policy.
	ReadCachePolicy readcache.Policy

	// UploadDepth / FetchDepth are the HOST-WIDE backend concurrency
	// budgets: at most UploadDepth object PUTs and FetchDepth range
	// GETs in flight across all volumes combined. Defaults 4 and 8
	// (the single-volume defaults — one tenant gets what it had;
	// eight tenants share it, which is the point).
	UploadDepth int
	FetchDepth  int

	// OpenFanout bounds each volume's concurrent recovery reads at
	// open (see core.Options.OpenFanout). 0 selects the block-store
	// default; 1 serializes recovery I/O. Independent of FetchDepth:
	// recovery runs before the volume registers on the shared fetch
	// semaphore.
	OpenFanout int

	// Retry is the backend retry policy every volume inherits.
	Retry objstore.RetryPolicy

	// FlatKeys serves a single volume with the historical flat key
	// layout ("<name>.<seq>" at bucket root, no slot metadata, no op
	// metering) so the pre-host lsvd.Open API stays byte-compatible
	// with existing buckets. Requires MaxVolumes == 1 (or 0, which
	// then defaults to 1).
	FlatKeys bool
}

func (o *Options) setDefaults() error {
	if o.MaxVolumes == 0 {
		if o.FlatKeys {
			o.MaxVolumes = 1
		} else {
			o.MaxVolumes = 8
		}
	}
	if o.FlatKeys && o.MaxVolumes != 1 {
		return fmt.Errorf("host: FlatKeys requires MaxVolumes == 1, got %d", o.MaxVolumes)
	}
	if o.MaxVolumes < 1 {
		return fmt.Errorf("host: MaxVolumes %d < 1", o.MaxVolumes)
	}
	if o.WriteCacheFrac == 0 {
		o.WriteCacheFrac = 0.2
	}
	if o.UploadDepth <= 0 {
		o.UploadDepth = 4
	}
	if o.FetchDepth <= 0 {
		o.FetchDepth = 8
	}
	return nil
}

// slotsKey is where the volume→slot table lives in the bucket.
const slotsKey = "host/slots"

// volPrefix is the key namespace of one volume.
func volPrefix(name string) string { return "vol/" + name + "/" }

type slotsFile struct {
	Version int            `json:"version"`
	Slots   map[string]int `json:"slots"`
}

// Host owns one cache SSD and one backend session and serves
// MaxVolumes volumes on top of them.
type Host struct {
	opts  Options
	store objstore.Store    // what volumes see (metered unless FlatKeys)
	meter *objstore.Metered // nil in FlatKeys mode

	// retry wraps the host's own direct backend operations (slot
	// table I/O, volume deletion sweeps) with the same transient-error
	// policy the volumes inherit.
	retry *objstore.Retrier

	arena      *readcache.Arena
	slotBytes  int64
	uploadGate *iosched.Gate
	fetchSem   chan struct{}

	// slotsMu serializes slot-table persistence: snapshot-under-mu
	// plus PUT happen atomically with respect to other writers, so a
	// later snapshot can never be overwritten by an earlier one. It
	// is taken before host.mu and never held across volume I/O.
	slotsMu sync.Mutex

	mu     sync.Mutex            //lsvd:lock host.mu
	slots  map[string]int        // volume name -> write-cache slot
	open   map[string]*core.Disk // volumes currently open
	closed bool
}

// New opens a host on the SSD + bucket: the SSD is carved (write-cache
// slots + shared arena), the volume→slot table is loaded, and the
// global semaphores are built. Volumes are then opened individually.
func New(ctx context.Context, opts Options) (*Host, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if opts.Store == nil || opts.CacheDev == nil {
		return nil, fmt.Errorf("host: Store and CacheDev are required")
	}
	h := &Host{
		opts:  opts,
		store: opts.Store,
		slots: make(map[string]int),
		open:  make(map[string]*core.Disk),
	}
	if !opts.FlatKeys {
		h.meter = &objstore.Metered{Inner: opts.Store}
		h.store = h.meter
	}
	h.retry = objstore.NewRetrier(h.store, opts.Retry)

	var arenaDev simdev.Device
	var err error
	h.slotBytes, arenaDev, err = carve(opts.CacheDev, opts.MaxVolumes, opts.WriteCacheFrac)
	if err != nil {
		return nil, err
	}
	h.arena, err = readcache.NewArena(arenaDev, readcache.SizedConfig(arenaDev.Size(), opts.ReadCachePolicy))
	if err != nil {
		return nil, fmt.Errorf("host: arena: %w", err)
	}

	h.uploadGate = iosched.NewGate(opts.UploadDepth)
	h.fetchSem = make(chan struct{}, opts.FetchDepth)

	if !opts.FlatKeys {
		if err := h.loadSlots(ctx); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// carve splits the SSD: MaxVolumes equal write-cache slots at the
// front, the shared read arena on the remainder.
func carve(dev simdev.Device, maxVolumes int, frac float64) (int64, simdev.Device, error) {
	total := dev.Size()
	wcBytes := int64(float64(total)*frac) &^ (block.BlockSize - 1)
	slotBytes := (wcBytes / int64(maxVolumes)) &^ (block.BlockSize - 1)
	wcBytes = slotBytes * int64(maxVolumes)
	if slotBytes <= 0 {
		return 0, nil, fmt.Errorf("host: cache of %d bytes cannot hold %d write-cache slots", total, maxVolumes)
	}
	arenaDev, err := simdev.NewSection(dev, wcBytes, total-wcBytes)
	if err != nil {
		return 0, nil, fmt.Errorf("host: arena carve: %w", err)
	}
	return slotBytes, arenaDev, nil
}

// InspectArena loads the persisted read-arena occupancy of a host
// cache device without opening any volume (offline observability:
// lsvd-ctl). The geometry arguments must match the host that wrote
// the device; zero values select the host defaults.
func InspectArena(dev simdev.Device, maxVolumes int, frac float64, policy readcache.Policy) (readcache.ArenaStats, error) {
	if maxVolumes <= 0 {
		maxVolumes = 8
	}
	if frac == 0 {
		frac = 0.2
	}
	_, arenaDev, err := carve(dev, maxVolumes, frac)
	if err != nil {
		return readcache.ArenaStats{}, err
	}
	a, err := readcache.NewArena(arenaDev, readcache.SizedConfig(arenaDev.Size(), policy))
	if err != nil {
		return readcache.ArenaStats{}, err
	}
	return a.Stats(), nil
}

func (h *Host) loadSlots(ctx context.Context) error {
	raw, err := h.retry.Get(ctx, slotsKey)
	if err != nil {
		if errors.Is(err, objstore.ErrNotFound) {
			return nil // fresh bucket
		}
		return fmt.Errorf("host: loading %s: %w", slotsKey, err)
	}
	var f slotsFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("host: parsing %s: %w", slotsKey, err)
	}
	for name, slot := range f.Slots {
		if slot < 0 || slot >= h.opts.MaxVolumes {
			return fmt.Errorf("host: %s assigns %q slot %d outside 0..%d (MaxVolumes shrank?)",
				slotsKey, name, slot, h.opts.MaxVolumes-1)
		}
		h.slots[name] = slot
	}
	return nil
}

// saveSlots persists the slot table. It must be called WITHOUT h.mu:
// the backend PUT (which can retry through a whole backoff schedule)
// must never stall Volumes/Disk/Open on the host lock. slotsMu keeps
// snapshot+PUT atomic across writers, so the persisted table can only
// move forward.
func (h *Host) saveSlots(ctx context.Context) error {
	if h.opts.FlatKeys {
		return nil
	}
	h.slotsMu.Lock()
	invariant.LockOrder("host.slotsMu")
	defer h.slotsMu.Unlock()
	defer invariant.LockRelease("host.slotsMu")
	h.mu.Lock()
	invariant.LockOrder("host.mu")
	f := slotsFile{Version: 1, Slots: make(map[string]int, len(h.slots))}
	for name, slot := range h.slots {
		f.Slots[name] = slot
	}
	invariant.LockRelease("host.mu")
	h.mu.Unlock()
	raw, err := json.Marshal(f)
	if err != nil {
		return err
	}
	return h.retry.Put(ctx, slotsKey, raw)
}

func checkVolName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") || strings.Contains(name, "#tmp#") {
		return fmt.Errorf("host: invalid volume name %q", name)
	}
	return nil
}

// volStore returns the namespaced backend view of one volume.
func (h *Host) volStore(name string) (objstore.Store, error) {
	if h.opts.FlatKeys {
		return h.store, nil
	}
	return objstore.NewPrefixed(h.store, volPrefix(name))
}

// leaseLocked reserves the volume's slot and marks it open (mu held).
// assign controls whether a missing name gets a fresh slot.
//
//lsvd:requires host.mu
func (h *Host) leaseLocked(name string, assign bool) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("host: closed")
	}
	if invariant.Enabled {
		// Slot assignments are a bijection: two volumes sharing a
		// write-cache slot would corrupt each other's logs.
		seen := make(map[int]string, len(h.slots))
		for n, s := range h.slots {
			prev, dup := seen[s]
			invariant.Assertf(!dup, "host: volumes %q and %q share write-cache slot %d", prev, n, s)
			seen[s] = n
		}
	}
	if _, isOpen := h.open[name]; isOpen {
		return 0, fmt.Errorf("host: volume %q is already open", name)
	}
	slot, ok := h.slots[name]
	if !ok {
		if !assign {
			return 0, fmt.Errorf("host: unknown volume %q", name)
		}
		used := make([]bool, h.opts.MaxVolumes)
		for _, s := range h.slots {
			if s >= 0 && s < len(used) {
				used[s] = true
			}
		}
		slot = -1
		for i, u := range used {
			if !u {
				slot = i
				break
			}
		}
		if slot < 0 {
			return 0, fmt.Errorf("host: all %d volume slots in use", h.opts.MaxVolumes)
		}
		h.slots[name] = slot
	}
	// Reserve against concurrent Create/Open of the same name; the
	// entry is replaced with the real disk (or removed) by the caller.
	h.open[name] = nil
	return slot, nil
}

// resources builds the core.Resources lease for one volume,
// registering it on the shared upload gate so it is guaranteed a
// minimum share of the host's PUT budget while open.
func (h *Host) resources(name string, slot int) (*core.Resources, error) {
	wcDev, err := simdev.NewSection(h.opts.CacheDev, int64(slot)*h.slotBytes, h.slotBytes)
	if err != nil {
		return nil, fmt.Errorf("host: slot %d carve: %w", slot, err)
	}
	viewName := name
	if h.opts.FlatKeys {
		viewName = "" // the historical single-view arena name
	}
	h.uploadGate.Register(name)
	return &core.Resources{
		WCDev:      wcDev,
		ReadCache:  h.arena.Open(viewName),
		UploadGate: h.uploadGate,
		UploadID:   name,
		FetchSem:   h.fetchSem,
		OnClose: func() {
			h.uploadGate.Unregister(name)
			h.mu.Lock()
			delete(h.open, name)
			h.mu.Unlock()
		},
	}, nil
}

// coreOptions assembles the full core.Options for one volume: the
// host-level half from the host, the volume-level half from v.
func (h *Host) coreOptions(name string, v core.VolumeOptions) (core.Options, error) {
	st, err := h.volStore(name)
	if err != nil {
		return core.Options{}, err
	}
	v.Volume = name
	return core.Combine(core.HostOptions{
		Store:           st,
		WriteCacheFrac:  h.opts.WriteCacheFrac, // unused with Resources, kept coherent
		ReadCachePolicy: h.opts.ReadCachePolicy,
		UploadDepth:     h.opts.UploadDepth,
		FetchDepth:      h.opts.FetchDepth,
		OpenFanout:      h.opts.OpenFanout,
		Retry:           h.opts.Retry,
	}, v), nil
}

func (h *Host) openVolume(ctx context.Context, name string, v core.VolumeOptions, create bool) (*core.Disk, error) {
	if err := checkVolName(name); err != nil {
		return nil, err
	}
	h.mu.Lock()
	// A flat-key host has no slot table: Open of a pre-host bucket
	// self-assigns the (only) slot.
	slot, err := h.leaseLocked(name, create || h.opts.FlatKeys)
	if err != nil {
		h.mu.Unlock()
		return nil, err
	}
	h.mu.Unlock()

	fail := func(err error) (*core.Disk, error) {
		h.uploadGate.Unregister(name) // no-op unless resources() registered it
		h.mu.Lock()
		delete(h.open, name)
		if create {
			delete(h.slots, name)
		}
		h.mu.Unlock()
		if create {
			_ = h.saveSlots(ctx) // best effort rollback
		}
		return nil, err
	}
	if create {
		if err := h.saveSlots(ctx); err != nil {
			return fail(err)
		}
	}
	opts, err := h.coreOptions(name, v)
	if err != nil {
		return fail(err)
	}
	res, err := h.resources(name, slot)
	if err != nil {
		return fail(err)
	}
	var d *core.Disk
	if create {
		d, err = core.CreateShared(ctx, opts, res)
	} else {
		d, err = core.OpenShared(ctx, opts, res)
	}
	if err != nil {
		return fail(err)
	}
	h.mu.Lock()
	h.open[name] = d
	h.mu.Unlock()
	return d, nil
}

// Create initializes a new volume on a free write-cache slot.
// v.VolBytes must be set; v.Volume is overridden with name.
func (h *Host) Create(ctx context.Context, name string, v core.VolumeOptions) (*core.Disk, error) {
	return h.openVolume(ctx, name, v, true)
}

// Open recovers an existing volume (crash recovery included, exactly
// as the single-volume core.Open).
func (h *Host) Open(ctx context.Context, name string, v core.VolumeOptions) (*core.Disk, error) {
	return h.openVolume(ctx, name, v, false)
}

// OpenAll recovers several volumes concurrently — the host-restart
// path, where attach time is the sum of per-volume recoveries if done
// serially. Each volume runs the full Open (lease, cache replay,
// backend recovery) on its own goroutine; per-name leasing in
// leaseLocked keeps the volumes from interfering, and the slot table
// is read-only here (Open never assigns slots). Failures are isolated:
// one volume's error lands in the errs map while its neighbors attach
// normally. Every requested name appears in exactly one of the two
// maps; errs is nil when every volume opened.
func (h *Host) OpenAll(ctx context.Context, vols map[string]core.VolumeOptions) (map[string]*core.Disk, map[string]error) {
	type result struct {
		name string
		d    *core.Disk
		err  error
	}
	ch := make(chan result, len(vols))
	for name, v := range vols {
		name, v := name, v
		invariant.Go("host-openall", func() {
			d, err := h.Open(ctx, name, v)
			ch <- result{name, d, err}
		})
	}
	disks := make(map[string]*core.Disk, len(vols))
	var errs map[string]error
	for range vols {
		r := <-ch
		if r.err != nil {
			if errs == nil {
				errs = make(map[string]error)
			}
			errs[r.name] = r.err
			continue
		}
		disks[r.name] = r.d
	}
	return disks, errs
}

// Delete removes a volume: its slot, its arena view, and every object
// under its key prefix. The volume must not be open.
func (h *Host) Delete(ctx context.Context, name string) error {
	if err := checkVolName(name); err != nil {
		return err
	}
	if h.opts.FlatKeys {
		return fmt.Errorf("host: flat-key hosts do not manage volume lifecycles")
	}
	h.mu.Lock()
	if _, isOpen := h.open[name]; isOpen {
		h.mu.Unlock()
		return fmt.Errorf("host: volume %q is open", name)
	}
	slot, ok := h.slots[name]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("host: unknown volume %q", name)
	}
	delete(h.slots, name)
	h.mu.Unlock()
	if err := h.saveSlots(ctx); err != nil {
		// Restore the lease so the volume is not orphaned in memory
		// while the persisted table still lists it.
		h.mu.Lock()
		if _, taken := h.slots[name]; !taken {
			h.slots[name] = slot
		}
		h.mu.Unlock()
		return err
	}
	h.arena.Purge(name)
	vs, err := h.volStore(name)
	if err != nil {
		return err
	}
	vsr := objstore.NewRetrier(vs, h.opts.Retry)
	names, err := vsr.List(ctx, "")
	if err != nil {
		return err
	}
	for _, n := range names {
		if err := vsr.Delete(ctx, n); err != nil {
			return fmt.Errorf("host: deleting %q of volume %q: %w", n, name, err)
		}
	}
	return nil
}

// Volumes lists every volume the host knows (open or not), sorted.
func (h *Host) Volumes() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.slots))
	for name := range h.slots {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Disk returns the open disk for name, if any.
func (h *Host) Disk(name string) (*core.Disk, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.open[name]
	return d, ok && d != nil
}

// openSnapshot returns the open volumes (name-sorted), skipping
// reserved-but-not-yet-open entries.
func (h *Host) openSnapshot() []nbd.Export {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]nbd.Export, 0, len(h.open))
	for name, d := range h.open {
		if d != nil {
			out = append(out, nbd.Export{Name: name, Disk: d})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NBDServer builds an NBD server exporting every currently-open
// volume under its name.
func (h *Host) NBDServer() *nbd.Server {
	srv := nbd.NewServer(h.openSnapshot()...)
	return srv
}

// ServeNBD exports every open volume over NBD on ln, blocking until
// the listener closes.
func (h *Host) ServeNBD(ln net.Listener) error {
	return h.NBDServer().Serve(ln)
}

// VolumeStats is one open volume's stats row.
type VolumeStats struct {
	Name  string
	Stats core.Stats
}

// Stats is the host-aggregate picture: per-open-volume stats, the
// shared arena's occupancy table, host-wide backend op counts
// (zero-valued on FlatKeys hosts, which do not meter), and the
// aggregate GC picture across open volumes.
type Stats struct {
	Volumes []VolumeStats
	Arena   readcache.ArenaStats
	Backend objstore.Stats
	GC      GCStats
	Replica ReplicaStats
}

// ReplicaStats aggregates replication across the host's open volumes:
// how many volumes replicate, the combined live lag (the host-wide
// recovery-point exposure), and cumulative shipping progress.
type ReplicaStats struct {
	Volumes       int // replicated volumes currently open
	LagObjects    int
	LagBytes      int64
	CopiedObjects uint64
	CopiedBytes   int64
	Retries       uint64
	Errors        uint64
	Stalls        uint64 // foreground ops blocked on an RPO bound
}

// GCStats aggregates the garbage collectors of every open volume.
// MeasuredWAF is the realized host-wide write amplification:
// (foreground bytes + GC copy bytes) / foreground bytes — the quantity
// each volume's GCWAFTarget budgets. Zero before any foreground write.
type GCStats struct {
	Runs        uint64
	Victims     uint64
	BytesCopied uint64
	PaceWaits   uint64
	Backoffs    uint64
	Yields      uint64
	MeasuredWAF float64
}

// Stats snapshots the host.
func (h *Host) Stats() Stats {
	var st Stats
	var appended uint64
	for _, e := range h.openSnapshot() {
		vs := e.Disk.(*core.Disk).Stats()
		st.Volumes = append(st.Volumes, VolumeStats{Name: e.Name, Stats: vs})
		st.GC.Runs += vs.Backend.GCRuns
		st.GC.Victims += vs.Backend.GCVictims
		st.GC.BytesCopied += vs.Backend.GCBytesCopied
		st.GC.PaceWaits += vs.Backend.GCPaceWaits
		st.GC.Backoffs += vs.Backend.GCBackoffs
		st.GC.Yields += vs.Backend.GCYields
		appended += vs.Backend.BytesAppended
		if vs.ReplicaEnabled {
			st.Replica.Volumes++
			st.Replica.LagObjects += vs.Replica.LagObjects
			st.Replica.LagBytes += vs.Replica.LagBytes
			st.Replica.CopiedObjects += vs.Replica.CopiedObjects
			st.Replica.CopiedBytes += vs.Replica.CopiedBytes
			st.Replica.Retries += vs.Replica.Retries
			st.Replica.Errors += vs.Replica.Errors
			st.Replica.Stalls += vs.ReplicaStalls
		}
	}
	if appended > 0 {
		st.GC.MeasuredWAF = float64(appended+st.GC.BytesCopied) / float64(appended)
	}
	st.Arena = h.arena.Stats()
	if h.meter != nil {
		st.Backend = h.meter.Stats()
	}
	return st
}

// Close closes every open volume (draining and checkpointing each)
// and persists the shared arena. Each volume's write-path counters
// are snapshotted after its close drains (so close-time seals and
// uploads are counted; the gate retires counters rather than losing
// them) and persisted at statsKey, keeping the session's group-commit
// and upload-pipeline behavior observable offline via
// `lsvd-ctl volumes`.
func (h *Host) Close() error {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	var first error
	var rows []WritePathCounters
	for _, e := range h.openSnapshot() {
		d := e.Disk.(*core.Disk)
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
		rows = append(rows, writePathCounters(e.Name, d.Stats()))
	}
	if err := h.arena.Persist(); err != nil && first == nil {
		first = err
	}
	// Advisory observability only: a failed snapshot PUT never turns a
	// clean close into an error.
	h.persistStats(rows)
	return first
}

// statsKey is where the last session's write-path counter snapshot
// lives in the bucket.
const statsKey = "host/stats"

// WritePathCounters is one volume's write-path counter snapshot:
// group-commit activity in the cache log, ring flow-control events,
// and the seal/upload pipeline's stall and share accounting.
type WritePathCounters struct {
	Volume        string   `json:"volume"`
	Writes        uint64   `json:"writes"`
	GroupBatches  uint64   `json:"group_batches"`
	GroupRecords  uint64   `json:"group_records"`
	DevWrites     uint64   `json:"dev_writes"`
	ReserveWaits  uint64   `json:"reserve_waits"`
	BatchSizeHist []uint64 `json:"batch_size_hist"` // buckets 1,2,≤4,≤8,…
	RingKicks     uint64   `json:"ring_kicks"`
	RingFences    uint64   `json:"ring_fences"`
	SealStalls    uint64   `json:"seal_stalls"`
	UploadGrants  uint64   `json:"upload_grants"`
	UploadBorrows uint64   `json:"upload_borrows"`
	UploadWaits   uint64   `json:"upload_waits"`
	RunsCoalesced uint64   `json:"runs_coalesced"`

	// GC service counters (format version >= 2).
	GCRuns        uint64  `json:"gc_runs"`
	GCVictims     uint64  `json:"gc_victims"`
	GCCopiedBytes uint64  `json:"gc_copied_bytes"`
	GCPaceWaits   uint64  `json:"gc_pace_waits"`
	GCBackoffs    uint64  `json:"gc_backoffs"`
	GCYields      uint64  `json:"gc_yields"`
	GCWAFTarget   float64 `json:"gc_waf_target"`
	GCMeasuredWAF float64 `json:"gc_measured_waf"`

	// Replication counters (format version >= 3). Lag fields are the
	// residual at close time — zero after a clean drain.
	ReplicaEnabled       bool   `json:"replica_enabled,omitempty"`
	ReplicaShippedSeq    uint32 `json:"replica_shipped_seq,omitempty"`
	ReplicaLagObjects    int    `json:"replica_lag_objects,omitempty"`
	ReplicaLagBytes      int64  `json:"replica_lag_bytes,omitempty"`
	ReplicaCopied        uint64 `json:"replica_copied_objects,omitempty"`
	ReplicaCopiedBytes   int64  `json:"replica_copied_bytes,omitempty"`
	ReplicaRetries       uint64 `json:"replica_retries,omitempty"`
	ReplicaErrors        uint64 `json:"replica_errors,omitempty"`
	ReplicaStalls        uint64 `json:"replica_stalls,omitempty"`
	ReplicaLastShipNanos int64  `json:"replica_last_ship_nanos,omitempty"`
}

type statsFile struct {
	Version int                 `json:"version"`
	Volumes []WritePathCounters `json:"volumes"`
}

// writePathCounters flattens one volume's Stats into its snapshot row.
func writePathCounters(name string, st core.Stats) WritePathCounters {
	hist := make([]uint64, len(st.WriteCache.BatchSizeHist))
	copy(hist, st.WriteCache.BatchSizeHist[:])
	row := WritePathCounters{
		Volume:        name,
		Writes:        st.Writes,
		GroupBatches:  st.WriteCache.GroupBatches,
		GroupRecords:  st.WriteCache.GroupRecords,
		DevWrites:     st.WriteCache.DevWrites,
		ReserveWaits:  st.WriteCache.ReserveWaits,
		BatchSizeHist: hist,
		RingKicks:     st.RingKicks,
		RingFences:    st.RingFences,
		SealStalls:    st.Backend.SealStalls,
		UploadGrants:  st.Backend.UploadGrants,
		UploadBorrows: st.Backend.UploadBorrows,
		UploadWaits:   st.Backend.UploadWaits,
		RunsCoalesced: st.RunsCoalesced,
		GCRuns:        st.Backend.GCRuns,
		GCVictims:     st.Backend.GCVictims,
		GCCopiedBytes: st.Backend.GCBytesCopied,
		GCPaceWaits:   st.Backend.GCPaceWaits,
		GCBackoffs:    st.Backend.GCBackoffs,
		GCYields:      st.Backend.GCYields,
		GCWAFTarget:   st.Backend.GCWAFTarget,
	}
	if st.Backend.BytesAppended > 0 {
		row.GCMeasuredWAF = float64(st.Backend.BytesAppended+st.Backend.GCBytesCopied) /
			float64(st.Backend.BytesAppended)
	}
	if st.ReplicaEnabled {
		row.ReplicaEnabled = true
		row.ReplicaShippedSeq = st.Replica.ShippedSeq
		row.ReplicaLagObjects = st.Replica.LagObjects
		row.ReplicaLagBytes = st.Replica.LagBytes
		row.ReplicaCopied = st.Replica.CopiedObjects
		row.ReplicaCopiedBytes = st.Replica.CopiedBytes
		row.ReplicaRetries = st.Replica.Retries
		row.ReplicaErrors = st.Replica.Errors
		row.ReplicaStalls = st.ReplicaStalls
		row.ReplicaLastShipNanos = st.Replica.LastShipNanos
	}
	return row
}

// persistStats writes the snapshot; FlatKeys hosts have no reserved
// key namespace to write into, so they skip it.
func (h *Host) persistStats(rows []WritePathCounters) {
	if h.opts.FlatKeys {
		return
	}
	f := statsFile{Version: statsVersion, Volumes: rows}
	raw, err := json.Marshal(f)
	if err != nil {
		return
	}
	_ = h.retry.Put(context.Background(), statsKey, raw)
}

// statsVersion is the current snapshot format. Version 1 predates the
// GC service counters, version 2 the replication counters; current
// readers accept all three (absent fields simply decode as zero) and
// report the version so tools can label an older snapshot honestly.
const statsVersion = 3

// StatsSnapshot is the decoded host/stats object plus its format
// version, for readers that care which fields are meaningful.
type StatsSnapshot struct {
	Version int
	Volumes []WritePathCounters
}

// LoadWritePathStats reads the write-path counter snapshot persisted
// by the last clean host Close. A bucket no host has closed yet (or a
// snapshot from a future format) yields nil, nil.
//
//lsvd:classifies-errors
func LoadWritePathStats(ctx context.Context, store objstore.Store) ([]WritePathCounters, error) {
	snap, err := LoadStatsSnapshot(ctx, store)
	if err != nil || snap == nil {
		return nil, err
	}
	return snap.Volumes, nil
}

// LoadStatsSnapshot is LoadWritePathStats with the format version
// attached. Absent snapshots, unparseable ones and future formats all
// yield nil, nil — the caller degrades to "n/a", never to an error.
//
//lsvd:classifies-errors
func LoadStatsSnapshot(ctx context.Context, store objstore.Store) (*StatsSnapshot, error) {
	raw, err := store.Get(ctx, statsKey)
	if err != nil {
		if errors.Is(err, objstore.ErrNotFound) {
			return nil, nil
		}
		return nil, err
	}
	var f statsFile
	if err := json.Unmarshal(raw, &f); err != nil || f.Version < 1 || f.Version > statsVersion {
		return nil, nil
	}
	return &StatsSnapshot{Version: f.Version, Volumes: f.Volumes}, nil
}
