package experiments

import (
	"context"
	"fmt"

	"lsvd/internal/block"
	"lsvd/internal/cluster"
	"lsvd/internal/core"
	"lsvd/internal/objstore"
	"lsvd/internal/workload"
)

// Fig15 reproduces Figure 15: live vs stale backend data over the
// course of a varmail run, with the garbage collector on and off. With
// GC off, garbage grows without bound; with GC on, stale data is held
// to ~30% of the total (the 70% threshold) at a small throughput cost
// (§4.6).
func Fig15(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Fig 15: GC effectiveness, varmail (data sizes in MiB over run fraction)",
		Header: []string{"gc", "t%", "live MiB", "garbage MiB", "util"},
	}
	for _, gcOn := range []bool{false, true} {
		// Frequent checkpoints release cleaned objects promptly so the
		// on-store garbage tracks the GC's 70/75% thresholds.
		opts := core.Options{WriteCacheFrac: 0.6, BatchBytes: 2 * block.MiB, CheckpointEvery: 8}
		if !gcOn {
			opts.GCLowWater = -1 // disabled
		}
		st, err := newLSVD(ctx, e, e.smallCache(), cluster.SSDConfig1(), opts)
		if err != nil {
			return nil, err
		}
		gen := &workload.Filebench{Model: workload.Varmail, VolBytes: e.volBytes(), TotalBytes: 1 << 62, Seed: e.Seed}
		// Sample backend composition at 10 points through the run.
		const samples = 10
		opsPerSample := uint64(1500)
		for i := 1; i <= samples; i++ {
			if _, err := workload.Run(st.disk, gen, nil, opsPerSample); err != nil {
				return nil, err
			}
			bst := st.disk.Backend().Stats()
			liveMiB := float64(bst.LiveSectors) * block.SectorSize / (1 << 20)
			garbageMiB := float64(bst.DataSectors-bst.LiveSectors) * block.SectorSize / (1 << 20)
			util := 1.0
			if bst.DataSectors > 0 {
				util = float64(bst.LiveSectors) / float64(bst.DataSectors)
			}
			t.Rows = append(t.Rows, []string{
				onOff(gcOn), fmt.Sprint(i * 100 / samples), f1(liveMiB), f1(garbageMiB), f2(util),
			})
		}
	}
	return t, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// GCSlowdown reproduces §4.6's throughput-impact numbers: varmail-like
// churn with GC on vs off (paper: ~2-10% slowdown).
func GCSlowdown(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Sec 4.6: GC throughput impact",
		Header: []string{"workload", "MB/s gc off", "MB/s gc on", "slowdown %"},
	}
	for _, m := range filebenchModels {
		var mbps [2]float64
		for i, gcOn := range []bool{false, true} {
			opts := core.Options{WriteCacheFrac: 0.6, BatchBytes: 2 * block.MiB}
			if !gcOn {
				opts.GCLowWater = -1
			}
			st, err := newLSVD(ctx, e, e.smallCache(), cluster.SSDConfig1(), opts)
			if err != nil {
				return nil, err
			}
			gen := &workload.Filebench{Model: m, VolBytes: e.volBytes(), TotalBytes: filebenchBudget(e), Seed: e.Seed}
			c, err := workload.Run(st.disk, gen, nil, 0)
			if err != nil {
				return nil, err
			}
			el := st.elapsed(c.Writes+c.Reads, 16, 0)
			mbps[i] = throughputMBs(c.BytesWritten+c.BytesRead, el)
		}
		slow := 0.0
		if mbps[0] > 0 {
			slow = (1 - mbps[1]/mbps[0]) * 100
		}
		t.Rows = append(t.Rows, []string{m.String(), f1(mbps[0]), f1(mbps[1]), f1(slow)})
	}
	return t, nil
}

// Fig16 reproduces Figure 16: asynchronous replication. Three
// fileserver-like workloads (hot/medium/cold) write to the primary
// while the per-volume shipper drains the commit feed into a second
// store under a bounded lag (§4.8); a clean close drains the shipper,
// so the replica ends at zero lag and mounts consistently.
func Fig16(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Fig 16: asynchronous replication",
		Header: []string{"metric", "value"},
	}
	secondary := objstore.NewMem()
	st, err := newLSVD(ctx, e, e.smallCache(), cluster.SSDConfig1(), core.Options{
		BatchBytes: 2 * block.MiB, WriteCacheFrac: 0.6,
		ReplicaStore: secondary, ReplicaMaxLagObjects: 8,
	})
	if err != nil {
		return nil, err
	}

	// Hot, medium and cold regions via three interleaved generators.
	gens := []*workload.Filebench{
		{Model: workload.Varmail, VolBytes: e.volBytes() / 4, TotalBytes: filebenchBudget(e), Seed: e.Seed},
		{Model: workload.Fileserver, VolBytes: e.volBytes() / 2, TotalBytes: filebenchBudget(e) / 2, Seed: e.Seed + 1},
		{Model: workload.Fileserver, VolBytes: e.volBytes(), TotalBytes: filebenchBudget(e) / 4, Seed: e.Seed + 2},
	}
	for round := 0; round < 12; round++ {
		for _, g := range gens {
			if _, err := workload.Run(st.disk, g, nil, 2000); err != nil {
				return nil, err
			}
		}
	}
	if err := st.disk.Close(); err != nil {
		return nil, err
	}

	// All counters are in-memory reads; safe on a closed disk.
	cst := st.disk.Stats()
	t.Rows = append(t.Rows, []string{"primary object bytes written (MiB)", f1(float64(cst.Backend.BytesPut) / (1 << 20))})
	t.Rows = append(t.Rows, []string{"replicated bytes (MiB)", f1(float64(cst.Replica.CopiedBytes) / (1 << 20))})
	t.Rows = append(t.Rows, []string{"objects copied", fmt.Sprint(cst.Replica.CopiedObjects)})
	t.Rows = append(t.Rows, []string{"write stalls on lag bound", fmt.Sprint(cst.ReplicaStalls)})
	t.Rows = append(t.Rows, []string{"final lag objects", fmt.Sprint(cst.Replica.LagObjects)})

	// The replica must mount consistently (the paper's key check).
	if _, err := replicaMountCheck(ctx, secondary); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"replica mounts consistently", "yes"})
	return t, nil
}

func replicaMountCheck(ctx context.Context, secondary objstore.Store) (bool, error) {
	_, err := coreOpenBackendOnly(ctx, secondary)
	if err != nil {
		return false, fmt.Errorf("replica mount failed: %w", err)
	}
	return true, nil
}
