// Package ctxflow is the golden self-test for the ctxflow analyzer:
// a context.Context parameter must reach the blocking work it was
// passed for, and time.Sleep must never ignore one.
package ctxflow

import (
	"context"
	"time"

	"lsvd/internal/objstore"
)

type svc struct {
	be objstore.Store
}

// sleepy consults ctx once, then sleeps unconditionally: a canceled
// caller still waits out the full delay.
func (s *svc) sleepy(ctx context.Context, d time.Duration) {
	if ctx.Err() != nil {
		return
	}
	time.Sleep(d) // want "time.Sleep in sleepy ignores its ctx parameter"
}

// dropped takes ctx, never touches it, and blocks on the backend with
// a context of its own making: cancellation stops propagating here.
func (s *svc) dropped(ctx context.Context, key string) error { // want "dropped accepts ctx but never uses it, and it blocks"
	return s.be.Put(context.Background(), key, nil)
}

// flows is the correct shape: the parameter reaches the blocking call.
func (s *svc) flows(ctx context.Context, key string) error {
	return s.be.Put(ctx, key, nil)
}

// discarded declares the drop explicitly with `_`; that is exempt.
func (s *svc) discarded(_ context.Context, key string) error {
	return s.be.Put(context.Background(), key, nil)
}

// pure takes ctx it never uses but performs no classified blocking
// work, so there is nothing for cancellation to interrupt.
func (s *svc) pure(ctx context.Context, n int) int {
	return n * 2
}

// sleepyEvenWhenUsed shows the sleep rule is independent of the usage
// rule: ctx flows into the Put, but the sleep between retries still
// ignores it.
func (s *svc) sleepyEvenWhenUsed(ctx context.Context, key string) error {
	if err := s.be.Put(ctx, key, nil); err != nil {
		time.Sleep(time.Second) // want "time.Sleep in sleepyEvenWhenUsed ignores its ctx parameter"
		return s.be.Put(ctx, key, nil)
	}
	return nil
}
