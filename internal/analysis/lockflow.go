package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockflow is the flow walker shared by lockheld and lockorder: an
// abstract interpretation of one function body that tracks the multiset
// of annotated locks held at each point and fires events for lock
// acquisitions, potentially-blocking operations, and calls to module
// functions. It is deliberately linear and branch-approximate — after
// an if/else the held set is the intersection of the branches (a
// branch ending in return/panic/break is discarded), loops and switch
// arms are assumed lock-balanced — which keeps it fast and nearly
// false-positive-free at the cost of under-approximating exotic
// control flow; the golden self-tests pin the required detections.
//
// Goroutine bodies and stray function literals are walked as
// independent roots with an empty held set: they do not run under the
// spawner's locks. Immediately-invoked literals run synchronously and
// inherit the current set. Operations covered by //lsvd:ignore fire no
// events at all, so they also stay out of call-graph summaries.

type flowEvents struct {
	// onBlocking fires for a potentially-blocking operation (backend
	// call, channel send/receive, select without default,
	// sync.WaitGroup.Wait, time.Sleep) while at least one annotated
	// lock is held.
	onBlocking func(pos token.Pos, desc string, held []string)
	// onAnyBlocking fires for every potentially-blocking operation on
	// the function's own goroutine (spawned-goroutine bodies excluded),
	// regardless of the held set. The interprocedural summaries use it
	// to decide whether a function can block at all.
	onAnyBlocking func(pos token.Pos, desc string)
	// onAcquire fires when an annotated lock is acquired; held is the
	// set before the acquisition.
	onAcquire func(pos token.Pos, lock string, held []string)
	// onCall fires for a statically-resolved call to a module function.
	onCall func(pos token.Pos, callee *types.Func, held []string)
	// onAnyCall fires for a statically-resolved module call made on the
	// function's own goroutine (spawned bodies excluded), regardless of
	// locks: the call-graph edge set.
	onAnyCall func(pos token.Pos, callee *types.Func)
}

type lockWalker struct {
	pass      *Pass
	ev        flowEvents
	held      []string
	inComm    bool                  // inside a select comm clause: channel ops are the select's
	rootDepth int                   // >0 while inside a spawned/escaping literal body
	synced    map[*ast.FuncLit]bool // literals invoked in place: not independent roots
}

// walkFunc runs the walker over one function body with the given
// initial held set (nil for a normal entry; a single caller-held lock
// for summary computation).
func walkFunc(pass *Pass, body *ast.BlockStmt, initial []string, ev flowEvents) {
	w := &lockWalker{
		pass: pass, ev: ev,
		held:   append([]string(nil), initial...),
		synced: make(map[*ast.FuncLit]bool),
	}
	w.walkStmt(body)
}

func cloneHeld(h []string) []string { return append([]string(nil), h...) }

// intersectHeld keeps the elements of a also present in b (multiset,
// order of a preserved).
func intersectHeld(a, b []string) []string {
	avail := make(map[string]int, len(b))
	for _, n := range b {
		avail[n]++
	}
	var out []string
	for _, n := range a {
		if avail[n] > 0 {
			avail[n]--
			out = append(out, n)
		}
	}
	return out
}

func (w *lockWalker) removeHeld(name string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == name {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// terminates reports whether a statement always leaves the enclosing
// block (return, branch, panic).
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		if n := len(s.List); n > 0 {
			return terminates(s.List[n-1])
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.walkStmt(st)
		}
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		before := cloneHeld(w.held)
		w.walkStmt(s.Body)
		bodyHeld, bodyTerm := w.held, terminates(s.Body)
		elseHeld, elseTerm := before, false
		if s.Else != nil {
			w.held = cloneHeld(before)
			w.walkStmt(s.Else)
			elseHeld, elseTerm = w.held, terminates(s.Else)
		}
		switch {
		case bodyTerm && elseTerm:
			w.held = before
		case bodyTerm:
			w.held = elseHeld
		case elseTerm:
			w.held = bodyHeld
		default:
			w.held = intersectHeld(bodyHeld, elseHeld)
		}
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		before := cloneHeld(w.held)
		w.walkStmt(s.Body)
		w.walkStmt(s.Post)
		w.held = before // loops are assumed lock-balanced
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		if tv, ok := w.pass.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.blocking(s.Pos(), "range over channel")
			}
		}
		before := cloneHeld(w.held)
		w.walkStmt(s.Body)
		w.held = before
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Tag)
		w.walkClauses(s.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		w.walkClauses(s.Body)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blocking(s.Pos(), "select without default")
		}
		before := cloneHeld(w.held)
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			w.held = cloneHeld(before)
			w.inComm = true
			w.walkStmt(cc.Comm)
			w.inComm = false
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
		}
		w.held = before
	case *ast.SendStmt:
		if !w.inComm {
			w.blocking(s.Pos(), "channel send")
		}
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
	case *ast.DeferStmt:
		if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") {
			if _, isLock := w.lockName(sel.X); isLock {
				// Deferred release: the lock stays held to the end of
				// the function, which is what the held set says.
				w.walkExpr(sel.X)
				return
			}
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// Deferred literal (defer func() { mu.Unlock(); ... }()):
			// the body runs at function exit under whatever is held
			// there, so walk it against a snapshot of the current held
			// set — a release inside it happens after the function's
			// own flow and must not drain the main walk's held set.
			for _, arg := range s.Call.Args {
				w.walkExpr(arg)
			}
			w.synced[lit] = true
			saved := cloneHeld(w.held)
			w.walkStmt(lit.Body)
			w.held = saved
			return
		}
		w.walkExpr(s.Call)
	case *ast.GoStmt:
		// Arguments are evaluated on the spawning goroutine.
		for _, arg := range s.Call.Args {
			w.walkExpr(arg)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkRoot(lit)
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e)
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e)
					}
				}
			}
		}
	}
}

func (w *lockWalker) walkClauses(body *ast.BlockStmt) {
	before := cloneHeld(w.held)
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		w.held = cloneHeld(before)
		for _, e := range cc.List {
			w.walkExpr(e)
		}
		for _, st := range cc.Body {
			w.walkStmt(st)
		}
	}
	w.held = before
}

// walkRoot analyzes a function literal that runs on its own goroutine
// (or escapes to an unknown caller): fresh walker state, empty held.
func (w *lockWalker) walkRoot(lit *ast.FuncLit) {
	saved, savedComm := w.held, w.inComm
	w.held, w.inComm = nil, false
	w.rootDepth++
	w.walkStmt(lit.Body)
	w.rootDepth--
	w.held, w.inComm = saved, savedComm
}

func (w *lockWalker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !w.synced[n] {
				w.walkRoot(n)
			}
			return false
		case *ast.CallExpr:
			w.call(n)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !w.inComm {
				w.blocking(n.Pos(), "channel receive")
			}
		}
		return true
	})
}

func (w *lockWalker) call(call *ast.CallExpr) {
	if tv, ok := w.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked literal: runs synchronously under the
		// current held set.
		w.synced[lit] = true
		w.walkStmt(lit.Body)
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if name, isLock := w.lockName(sel.X); isLock {
				if w.ev.onAcquire != nil && !w.pass.Ann.IgnoredAt(call.Pos()) {
					w.ev.onAcquire(call.Pos(), name, cloneHeld(w.held))
				}
				w.held = append(w.held, name)
				return
			}
		case "Unlock", "RUnlock":
			if name, isLock := w.lockName(sel.X); isLock {
				w.removeHeld(name)
				return
			}
		}
	}
	fn := calleeOf(w.pass.Info, call)
	if fn == nil {
		return
	}
	if desc, isBlocking := blockingCallee(fn); isBlocking {
		w.blocking(call.Pos(), desc)
		return
	}
	if fn.Pkg() != nil && isModulePath(fn.Pkg().Path()) && !w.pass.Ann.IgnoredAt(call.Pos()) {
		if w.ev.onAnyCall != nil && w.rootDepth == 0 {
			w.ev.onAnyCall(call.Pos(), fn)
		}
		if w.ev.onCall != nil {
			w.ev.onCall(call.Pos(), fn, cloneHeld(w.held))
		}
	}
}

func (w *lockWalker) blocking(pos token.Pos, desc string) {
	if w.pass.Ann.IgnoredAt(pos) {
		return
	}
	if w.ev.onAnyBlocking != nil && w.rootDepth == 0 {
		w.ev.onAnyBlocking(pos, desc)
	}
	if w.ev.onBlocking != nil && len(w.held) > 0 {
		w.ev.onBlocking(pos, desc, cloneHeld(w.held))
	}
}

// lockName resolves an expression to an annotated lock's name: the
// expression must (syntactically) select or name a struct field
// carrying //lsvd:lock. Identity is the field object, so every
// instance of the struct shares the name. Lookup goes through the
// module-wide registry, so a target package manipulating another
// target package's annotated mutex resolves too (source-loaded
// packages share one type universe).
func (w *lockWalker) lockName(e ast.Expr) (string, bool) {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj = w.pass.Info.Uses[e.Sel]
	case *ast.Ident:
		obj = w.pass.Info.Uses[e]
	}
	if obj == nil {
		return "", false
	}
	if name, ok := w.pass.Ann.Locks[obj]; ok {
		return name, ok
	}
	name, ok := w.pass.Ann.Global.lockObj(obj)
	return name, ok
}

// calleeOf returns the statically-resolved callee of a call, if any
// (package functions, methods, interface methods; nil for func values
// and builtins).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

const objstorePath = "lsvd/internal/objstore"

func isModulePath(path string) bool {
	return path == "lsvd" || strings.HasPrefix(path, "lsvd/")
}

// blockingCallee classifies callees that can block indefinitely:
// backend store operations (each may sleep through a whole retry
// schedule), sync.WaitGroup.Wait and time.Sleep. sync.Cond.Wait is
// deliberately NOT in the set: it releases the mutex it is
// conditioned on, and the blockstore's commit pipeline depends on
// exactly that idiom.
func blockingCallee(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if fn.Name() == "Wait" && recvTypeName(fn) == "WaitGroup" {
			return "sync.WaitGroup.Wait", true
		}
	case objstorePath:
		switch fn.Name() {
		case "Put", "Get", "GetRange", "Delete", "List", "Size":
			return "objstore." + fn.Name(), true
		}
	}
	return "", false
}

// recvTypeName returns the name of a method's receiver type ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
