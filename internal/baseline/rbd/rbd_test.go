package rbd

import (
	"bytes"
	"math/rand"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/cluster"
)

func newDisk(t *testing.T) (*Disk, *cluster.Pool) {
	t.Helper()
	pool, err := cluster.New(cluster.HDDConfig2())
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Options{Volume: "img", Pool: pool, VolBytes: 256 * block.MiB})
	if err != nil {
		t.Fatal(err)
	}
	return d, pool
}

func TestRoundTrip(t *testing.T) {
	d, _ := newDisk(t)
	data := make([]byte, 64*1024)
	rand.New(rand.NewSource(1)).Read(data)
	if err := d.WriteAt(data, 8<<20); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 8<<20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestSixXAmplification(t *testing.T) {
	d, pool := newDisk(t)
	buf := make([]byte, 16*1024)
	const n = 500
	for i := 0; i < n; i++ {
		if err := d.WriteAt(buf, int64(i)*32*1024); err != nil {
			t.Fatal(err)
		}
	}
	c := pool.Totals()
	if c.WriteOps != 6*n {
		t.Fatalf("backend ops %d, want %d (6x)", c.WriteOps, 6*n)
	}
}

func TestObjectBoundarySplit(t *testing.T) {
	d, pool := newDisk(t)
	// A write straddling a 4 MiB boundary becomes two replicated writes.
	buf := make([]byte, 64*1024)
	if err := d.WriteAt(buf, 4*block.MiB-32*1024); err != nil {
		t.Fatal(err)
	}
	if w, _ := d.Ops(); w != 2 {
		t.Fatalf("straddling write split into %d pieces", w)
	}
	if c := pool.Totals(); c.WriteOps != 12 {
		t.Fatalf("backend ops %d", c.WriteOps)
	}
}

func TestTrimZeroes(t *testing.T) {
	d, _ := newDisk(t)
	data := bytes.Repeat([]byte{0xAA}, 128*1024)
	_ = d.WriteAt(data, 0)
	if err := d.Trim(0, 64*1024); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128*1024)
	_ = d.ReadAt(got, 0)
	for i := 0; i < 64*1024; i++ {
		if got[i] != 0 {
			t.Fatal("trim did not zero")
		}
	}
	if got[64*1024] != 0xAA {
		t.Fatal("trim zeroed too much")
	}
}

func TestValidation(t *testing.T) {
	pool, _ := cluster.New(cluster.HDDConfig2())
	if _, err := New(Options{Volume: "x", Pool: pool, VolBytes: 100}); err == nil {
		t.Fatal("unaligned size accepted")
	}
	if _, err := New(Options{Volume: "x", VolBytes: 1 << 20}); err == nil {
		t.Fatal("nil pool accepted")
	}
}
