package blockstore

import (
	"context"
	"fmt"

	"lsvd/internal/journal"
)

// SnapshotInfo describes one snapshot.
type SnapshotInfo struct {
	Name string
	Seq  uint32
}

// CreateSnapshot seals the pending batch and designates the resulting
// log position as a snapshot (§3.6: "any object in the object stream
// can be designated as a snapshot"). The snapshot is durable once the
// accompanying checkpoint and superblock update complete.
func (s *Store) CreateSnapshot(name string) (SnapshotInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return SnapshotInfo{}, ErrReadOnly
	}
	for _, sn := range s.snapshots {
		if sn.Name == name {
			return SnapshotInfo{}, fmt.Errorf("blockstore: snapshot %q already exists", name)
		}
	}
	if err := s.sealAndWaitLocked(); err != nil {
		return SnapshotInfo{}, err
	}
	seq := s.nextSeq - 1
	s.snapshots = append(s.snapshots, snapshot{Name: name, Seq: seq})
	if err := s.checkpointLocked(); err != nil {
		s.snapshots = s.snapshots[:len(s.snapshots)-1]
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{Name: name, Seq: seq}, nil
}

// DeleteSnapshot removes a snapshot and performs any deferred object
// deletions that it alone was pinning (§3.6).
func (s *Store) DeleteSnapshot(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	idx := -1
	for i, sn := range s.snapshots {
		if sn.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("blockstore: snapshot %q not found", name)
	}
	// The superblock rewrite below must not race a checkpoint's
	// off-lock super PUT (marker in the pipeline or a synchronous
	// checkpoint's lock-drop window) — last-writer-wins on the super
	// could resurrect the snapshot or lose the checkpoint pointer. Wait
	// out any synchronous checkpoint, then drain the pipeline; holding
	// s.mu from here on keeps new checkpoints out until the super is
	// written.
	for s.ckptActive {
		s.commitCond.Wait()
	}
	if s.cfg.UploadDepth > 0 {
		for _, inf := range s.inflight {
			if inf.done && inf.err != nil {
				inf.attempts = 0
			}
		}
		s.resubmitFailedLocked()
		if err := s.waitInflightLocked(); err != nil {
			return err
		}
	}
	s.snapshots = append(s.snapshots[:idx], s.snapshots[idx+1:]...)
	deferred := s.deferred
	s.deferred = nil
	for _, d := range deferred {
		if err := s.completeDelete(d); err != nil {
			return err
		}
	}
	if err := s.writeSuper(); err != nil {
		return err
	}
	// The super no longer lists the snapshot: publish a super event so
	// the replica's copy follows (the shipper re-reads the live super).
	s.shipPublishLocked(0, journal.TypeSuper, 0)
	return nil
}

// Snapshots lists the volume's snapshots.
func (s *Store) Snapshots() []SnapshotInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SnapshotInfo, len(s.snapshots))
	for i, sn := range s.snapshots {
		out[i] = SnapshotInfo{Name: sn.Name, Seq: sn.Seq}
	}
	return out
}

// Clone creates a new volume whose object stream shares, as an
// immutable prefix, the base volume's objects up to the named snapshot
// (§3.6, Fig 5). The base image is never modified, so no reference
// counting is needed; the clone's own objects are numbered after the
// snapshot point and only they are garbage collected.
func Clone(ctx context.Context, base Config, snapName, newVolume string) error {
	base.setDefaults()
	src, err := OpenSnapshot(ctx, base, snapName)
	if err != nil {
		return err
	}
	if src.baseVol != "" {
		return fmt.Errorf("blockstore: cloning a clone (%q) is not supported", base.Volume)
	}
	if _, err := base.Store.Get(ctx, superName(newVolume)); err == nil {
		return fmt.Errorf("blockstore: volume %q already exists", newVolume)
	}
	var snapSeq uint32
	for _, sn := range src.snapshots {
		if sn.Name == snapName {
			snapSeq = sn.Seq
		}
	}

	clone := newStore(ctx, base)
	clone.cfg.Volume = newVolume
	clone.volSectors = src.volSectors
	clone.baseVol = base.Volume
	clone.baseSeq = snapSeq
	clone.m = src.m.Clone()
	clone.objects = make(map[uint32]*objInfo, len(src.objects))
	for seq, o := range src.objects {
		if seq > snapSeq {
			continue
		}
		cp := *o
		clone.objects[seq] = &cp
	}
	clone.durableWriteSeq = src.durableWriteSeq
	clone.nextSeq = snapSeq + 1
	clone.mu.Lock()
	defer clone.mu.Unlock()
	return clone.checkpointLocked()
}

// BaseImage returns the clone base (volume, snapshot seq) or "" for a
// standalone volume.
func (s *Store) BaseImage() (string, uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseVol, s.baseSeq
}

// ObjectNames returns the names of all sequence objects currently in
// the volume (own objects only, not the clone base), ascending; used by
// the asynchronous replicator (§4.8).
func (s *Store) ObjectNames() ([]string, error) {
	names, err := s.cfg.Store.List(s.ctx, s.cfg.Volume+".")
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range names {
		if _, ok := parseSeq(s.cfg.Volume, n); ok {
			out = append(out, n)
		}
	}
	return out, nil
}

// Types of a given object seq, for tooling.
func (s *Store) ObjectType(seq uint32) (journal.Type, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[seq]
	if !ok {
		return 0, false
	}
	return o.typ, true
}
