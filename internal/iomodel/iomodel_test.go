package iomodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMeterSequentialMerging(t *testing.T) {
	m := NewMeter(NVMeP3700)
	// A perfectly sequential stream merges up to MergeLimit.
	off := int64(0)
	for i := 0; i < 256; i++ { // 256 x 4K = 1 MiB = two 512K runs
		m.Record(OpWrite, off, 4096)
		off += 4096
	}
	c := m.Snapshot()
	if c.WriteOps != 256 {
		t.Fatalf("ops %d", c.WriteOps)
	}
	if c.WriteEffOps != 2 {
		t.Fatalf("effective ops %d, want 2 (512K merge limit)", c.WriteEffOps)
	}
}

func TestMeterRandomNoMerge(t *testing.T) {
	m := NewMeter(NVMeP3700)
	for i := 0; i < 100; i++ {
		m.Record(OpWrite, int64(i)*10<<20, 4096)
	}
	if c := m.Snapshot(); c.WriteEffOps != 100 {
		t.Fatalf("random writes merged: %d", c.WriteEffOps)
	}
}

func TestFlushClosesRuns(t *testing.T) {
	m := NewMeter(NVMeP3700)
	m.Record(OpWrite, 0, 4096)
	m.RecordFlush()
	m.Record(OpWrite, 4096, 4096) // would have merged without the flush
	c := m.Snapshot()
	if c.WriteEffOps != 2 || c.Flushes != 1 {
		t.Fatalf("%+v", c)
	}
}

func TestElapsedMonotonicInWork(t *testing.T) {
	f := func(ops uint16, kb uint8) bool {
		c1 := Counters{WriteEffOps: uint64(ops), WriteBytes: uint64(ops) * uint64(kb+1) * 1024}
		c2 := Counters{WriteEffOps: uint64(ops) * 2, WriteBytes: uint64(ops) * 2 * uint64(kb+1) * 1024}
		return Elapsed(NVMeP3700, c2, 8) >= Elapsed(NVMeP3700, c1, 8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElapsedQDHelpsOnlyLatencyBound(t *testing.T) {
	// Few large ops: bandwidth bound, QD irrelevant.
	c := Counters{WriteEffOps: 10, WriteBytes: 1 << 30}
	if Elapsed(NVMeP3700, c, 1) != Elapsed(NVMeP3700, c, 32) {
		t.Fatal("bandwidth-bound time changed with QD")
	}
	// Many small ops at QD1 vs QD32: latency bound shrinks.
	c = Counters{WriteEffOps: 10000, WriteBytes: 10000 * 512}
	if Elapsed(NVMeP3700, c, 32) >= Elapsed(NVMeP3700, c, 1) {
		t.Fatal("QD did not reduce latency-bound time")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewSizeHistogram()
	for _, s := range []int64{1, 2, 3, 4, 1023, 1024, 1025} {
		h.Record(s)
	}
	rows := h.Buckets()
	var total uint64
	for _, r := range rows {
		total += r.Count
	}
	if total != 7 {
		t.Fatalf("histogram lost entries: %d", total)
	}
	if rows[0].String() == "" {
		t.Fatal("no row rendering")
	}
}

func TestWriteSizesFlushesOpenRun(t *testing.T) {
	m := NewMeter(NVMeP3700)
	m.Record(OpWrite, 0, 16384)
	h := m.WriteSizes()
	var n uint64
	for _, r := range h.Buckets() {
		n += r.Count
	}
	if n != 1 {
		t.Fatalf("open run not flushed into histogram: %d", n)
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(HDD10K)
	m.Record(OpRead, 0, 4096)
	m.Record(OpWrite, 0, 4096)
	m.RecordFlush()
	m.Reset()
	if m.Snapshot() != (Counters{}) {
		t.Fatal("reset incomplete")
	}
	if m.Params().Name != "hdd-10k" {
		t.Fatal("params lost")
	}
}

func TestDefaultMergeLimit(t *testing.T) {
	m := NewMeter(Params{Name: "x", WriteIOPS: 100})
	if m.Params().MergeLimit <= 0 {
		t.Fatal("merge limit default missing")
	}
}

func TestCalibrationSanity(t *testing.T) {
	// The P3700 ratings from §4.1: 90K write IOPS means 90K random 4K
	// writes take ~1s; 1.9 GB/s means 1.9 GB sequential takes ~1s.
	c := Counters{WriteEffOps: 90000, WriteBytes: 90000 * 4096}
	if d := Elapsed(NVMeP3700, c, 64); d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Fatalf("IOPS calibration off: %v", d)
	}
	// HDD: 370 random writes/s.
	c = Counters{WriteEffOps: 370, WriteBytes: 370 * 16384}
	if d := Elapsed(HDD10K, c, 64); d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Fatalf("HDD calibration off: %v", d)
	}
}
