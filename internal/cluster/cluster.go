// Package cluster simulates the scale-out storage pool behind both
// backends the paper compares (Table 1): a set of servers each holding
// IOPS-limited devices (HDDs or capacity SSDs). It translates logical
// operations — erasure-coded object PUTs for the LSVD/S3 path, triple
// replicated block writes with write-ahead-log entries for the RBD
// path — into per-device I/O, metered through the iomodel so that
// experiments can report backend operation counts, byte amplification,
// per-device write-size histograms, and device utilization (§4.5,
// Figs 12–14).
//
// The pool carries no data: durability is the object layer's concern.
// What matters for the paper's backend-load results is the *stream* of
// device I/Os each frontend design generates, and that is what the pool
// records, using the same calibration for both systems.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/invariant"
	"lsvd/internal/iomodel"
)

// Config describes a storage pool.
type Config struct {
	Servers        int
	DisksPerServer int
	Disk           iomodel.Params

	// ECData / ECParity configure the erasure code used for object
	// PUTs (the paper's RGW pool uses a 4,2 code).
	ECData, ECParity int

	// Replicas is the replication factor for replicated block writes
	// (Ceph RBD default: 3).
	Replicas int

	// MetaWritesPer4MB is the number of small metadata/journal device
	// writes issued per 4 MiB of object data created. The paper
	// measures Ceph issuing 64 writes across the pool to create one
	// 4 MiB object: 6 are the EC chunks, the rest metadata.
	MetaWritesPer4MB int

	// MetaWriteBytes is the size of each metadata write.
	MetaWriteBytes int

	// WALOverheadBytes is the extra bytes a replicated small write's
	// write-ahead-log entry carries beyond the data (§4.5 observes
	// 16 KiB client writes producing 20–24 KiB WAL writes).
	WALOverheadBytes int
}

// HDDConfig2 is the paper's configuration #2: 9 servers, 62 10K RPM
// SAS HDDs total (7 per server, one short), 4+2 EC, 3x replication.
func HDDConfig2() Config {
	return Config{
		Servers: 9, DisksPerServer: 7, Disk: iomodel.HDD10K,
		ECData: 4, ECParity: 2, Replicas: 3,
		MetaWritesPer4MB: 58, MetaWriteBytes: 4096, WALOverheadBytes: 6144,
	}
}

// SSDConfig1 is the paper's configuration #1: 4 nodes, 32 consumer
// SATA SSDs.
func SSDConfig1() Config {
	return Config{
		Servers: 4, DisksPerServer: 8, Disk: iomodel.SATASSDConsumer,
		ECData: 4, ECParity: 2, Replicas: 3,
		MetaWritesPer4MB: 58, MetaWriteBytes: 4096, WALOverheadBytes: 6144,
	}
}

// Pool is a simulated storage pool. Its methods are safe for
// concurrent use: the asynchronous destage pipeline issues object PUTs
// from multiple goroutines, all of which meter through here.
type Pool struct {
	mu    sync.Mutex //lsvd:lock cluster.mu
	cfg   Config
	disks []*iomodel.Meter
	// heads tracks a crude per-disk log head so that object-chunk
	// writes land sequentially per device, as they do in a
	// well-behaved OSD, letting the meter's merge logic see them as
	// large writes.
	heads []int64
}

// New builds a pool from cfg.
func New(cfg Config) (*Pool, error) {
	n := cfg.Servers * cfg.DisksPerServer
	if n <= 0 {
		return nil, fmt.Errorf("cluster: no disks (servers=%d disks=%d)", cfg.Servers, cfg.DisksPerServer)
	}
	if cfg.ECData <= 0 {
		cfg.ECData, cfg.ECParity = 4, 2
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.ECData+cfg.ECParity > n {
		return nil, fmt.Errorf("cluster: EC width %d exceeds %d disks", cfg.ECData+cfg.ECParity, n)
	}
	if cfg.Replicas > n {
		return nil, fmt.Errorf("cluster: %d replicas exceed %d disks", cfg.Replicas, n)
	}
	p := &Pool{cfg: cfg, heads: make([]int64, n)}
	for i := 0; i < n; i++ {
		p.disks = append(p.disks, iomodel.NewMeter(cfg.Disk))
	}
	return p, nil
}

// Disks returns the number of devices in the pool.
func (p *Pool) Disks() int { return len(p.disks) }

// Config returns the pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// pick returns n distinct disk indices for a placement key, spreading
// across servers first (a chunk never shares a server with another
// chunk of the same stripe while servers remain).
func (p *Pool) pick(key string, n int) []int {
	h := fnv.New64a()
	h.Write([]byte(key))
	start := int(h.Sum64() % uint64(len(p.disks)))
	out := make([]int, 0, n)
	// Step by DisksPerServer+1 to rotate server and slot together.
	step := p.cfg.DisksPerServer + 1
	if step >= len(p.disks) {
		step = 1
	}
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n; i++ {
		d := (start + i*step) % len(p.disks)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

func (p *Pool) diskWrite(d int, size int64, sequential bool) {
	var off int64
	if sequential {
		off = p.heads[d]
	} else {
		// Force a new run: jump the head.
		off = p.heads[d] + 128*block.MiB
	}
	p.disks[d].Record(iomodel.OpWrite, off, size)
	p.heads[d] = off + size
}

func (p *Pool) diskRead(d int, size int64) {
	p.disks[d].Record(iomodel.OpRead, -1, size) // reads modeled as random
}

// PutObject records the device I/O for storing one erasure-coded
// object of the given size under the placement key: k+m chunk writes
// of size/k (parity included) plus the configured metadata writes.
func (p *Pool) PutObject(key string, size int64) {
	p.mu.Lock()
	invariant.LockOrder("cluster.mu")
	defer p.mu.Unlock()
	defer invariant.LockRelease("cluster.mu")
	k, m := p.cfg.ECData, p.cfg.ECParity
	chunk := (size + int64(k) - 1) / int64(k)
	targets := p.pick(key, k+m)
	for _, d := range targets {
		p.diskWrite(d, chunk, true)
	}
	meta := int(float64(p.cfg.MetaWritesPer4MB) * float64(size) / float64(4*block.MiB))
	if p.cfg.MetaWritesPer4MB > 0 && meta < 3 {
		meta = 3
	}
	// Metadata/journal writes are WAL appends (RocksDB in a Ceph OSD):
	// sequential at each device, so they merge rather than seek.
	for i := 0; i < meta; i++ {
		p.diskWrite(targets[i%len(targets)], int64(p.cfg.MetaWriteBytes), true)
	}
}

// DeleteObject records the (cheap) metadata I/O of removing an object.
func (p *Pool) DeleteObject(key string) {
	p.mu.Lock()
	invariant.LockOrder("cluster.mu")
	defer p.mu.Unlock()
	defer invariant.LockRelease("cluster.mu")
	for _, d := range p.pick(key, 1) {
		p.diskWrite(d, int64(p.cfg.MetaWriteBytes), false)
	}
}

// ReadObjectRange records device reads for a range GET against an
// erasure-coded object: one read per data chunk the range touches.
func (p *Pool) ReadObjectRange(key string, objSize, off, length int64) {
	p.mu.Lock()
	invariant.LockOrder("cluster.mu")
	defer p.mu.Unlock()
	defer invariant.LockRelease("cluster.mu")
	k := p.cfg.ECData
	chunk := (objSize + int64(k) - 1) / int64(k)
	if chunk <= 0 {
		chunk = 1
	}
	first := off / chunk
	last := (off + length - 1) / chunk
	targets := p.pick(key, k+p.cfg.ECParity)
	for c := first; c <= last && c < int64(k); c++ {
		lo := max64(off, c*chunk)
		hi := min64(off+length, (c+1)*chunk)
		p.diskRead(targets[c%int64(len(targets))], hi-lo)
	}
}

// WriteReplicated records the device I/O of one replicated block-store
// write (the RBD path): at each of Replicas devices, a random data
// write plus a write-ahead-log entry. The WAL is a journal — appends
// are sequential at the device — while the data write seeks.
func (p *Pool) WriteReplicated(key string, size int64) {
	p.mu.Lock()
	invariant.LockOrder("cluster.mu")
	defer p.mu.Unlock()
	defer invariant.LockRelease("cluster.mu")
	targets := p.pick(key, p.cfg.Replicas)
	for _, d := range targets {
		p.diskWrite(d, size, false)
		p.diskWrite(d, size+int64(p.cfg.WALOverheadBytes), true)
	}
}

// ReadReplicated records the device I/O of a replicated read: one read
// at the primary.
func (p *Pool) ReadReplicated(key string, size int64) {
	p.mu.Lock()
	invariant.LockOrder("cluster.mu")
	defer p.mu.Unlock()
	defer invariant.LockRelease("cluster.mu")
	p.diskRead(p.pick(key, 1)[0], size)
}

// Totals sums the counters over all devices.
func (p *Pool) Totals() iomodel.Counters {
	p.mu.Lock()
	invariant.LockOrder("cluster.mu")
	defer p.mu.Unlock()
	defer invariant.LockRelease("cluster.mu")
	var c iomodel.Counters
	for _, d := range p.disks {
		c = c.Add(d.Snapshot())
	}
	return c
}

// Utilization returns the mean busy fraction across devices for a run
// that took elapsed: per-device busy time is the IOPS/bandwidth-bound
// model time (latency hidden by queueing).
func (p *Pool) Utilization(elapsed time.Duration) float64 {
	p.mu.Lock()
	invariant.LockOrder("cluster.mu")
	defer p.mu.Unlock()
	defer invariant.LockRelease("cluster.mu")
	if elapsed <= 0 || len(p.disks) == 0 {
		return 0
	}
	var sum float64
	for _, d := range p.disks {
		busy := iomodel.Elapsed(d.Params(), d.Snapshot(), 1<<20)
		f := float64(busy) / float64(elapsed)
		if f > 1 {
			f = 1
		}
		sum += f
	}
	return sum / float64(len(p.disks))
}

// MaxBusy returns the largest modeled busy time over all devices — the
// pool-side bound on a run's elapsed time.
func (p *Pool) MaxBusy() time.Duration {
	p.mu.Lock()
	invariant.LockOrder("cluster.mu")
	defer p.mu.Unlock()
	defer invariant.LockRelease("cluster.mu")
	var m time.Duration
	for _, d := range p.disks {
		if b := iomodel.Elapsed(d.Params(), d.Snapshot(), 1<<20); b > m {
			m = b
		}
	}
	return m
}

// WriteSizes merges the per-device write-size histograms (Fig 14).
func (p *Pool) WriteSizes() *iomodel.SizeHistogram {
	p.mu.Lock()
	invariant.LockOrder("cluster.mu")
	defer p.mu.Unlock()
	defer invariant.LockRelease("cluster.mu")
	h := iomodel.NewSizeHistogram()
	for _, d := range p.disks {
		h.Merge(d.WriteSizes())
	}
	return h
}

// Reset zeroes all device meters.
func (p *Pool) Reset() {
	p.mu.Lock()
	invariant.LockOrder("cluster.mu")
	defer p.mu.Unlock()
	defer invariant.LockRelease("cluster.mu")
	for i, d := range p.disks {
		d.Reset()
		p.heads[i] = 0
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
