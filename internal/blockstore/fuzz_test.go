package blockstore

import (
	"encoding/binary"
	"testing"

	"lsvd/internal/extmap"
	"lsvd/internal/journal"
)

// encodeCheckpointForFuzz builds a well-formed checkpoint payload the
// same way fillCkptShotLocked does, for seeding the corpus.
func encodeCheckpointForFuzz(p *checkpointPayload) []byte {
	var w binWriter
	w.u32(p.prevCkpt)
	w.u64(p.durableWriteSeq)
	w.u32(p.nextSeq)
	w.u32(uint32(len(p.objects)))
	for _, o := range p.objects {
		w.u32(o.seq)
		w.u32(uint32(o.typ))
		w.u64(uint64(o.totalBytes))
		w.u32(o.hdrSectors)
		w.u32(o.dataSectors)
		w.u32(o.liveSectors)
		w.u64(o.writeSeq)
	}
	w.u32(uint32(len(p.deferred)))
	for _, d := range p.deferred {
		w.u32(d.Obj)
		w.u32(d.GCSeq)
	}
	w.u32(uint32(len(p.mapBytes)))
	w.bytes(p.mapBytes)
	return w.buf
}

// FuzzDecodeCheckpoint throws hostile bytes at the checkpoint decoder —
// the parser recovery trusts after a crash (the object named by the
// superblock could be torn or corrupted). It must never panic, must
// bound allocation by the input length (a claimed count can't force a
// huge slice), and the embedded map bytes it hands on must be safe to
// feed to the extmap loader.
func FuzzDecodeCheckpoint(f *testing.F) {
	m := extmap.New()
	mapBytes, _ := m.MarshalBinary()
	good := encodeCheckpointForFuzz(&checkpointPayload{
		prevCkpt: 3, durableWriteSeq: 99, nextSeq: 7,
		objects: []objInfo{
			{seq: 4, typ: journal.TypeData, totalBytes: 4096, hdrSectors: 1, dataSectors: 7, liveSectors: 5, writeSeq: 80},
			{seq: 5, typ: journal.TypeCheckpoint, totalBytes: 512},
			{seq: 6, typ: journal.TypeGC, totalBytes: 8192, hdrSectors: 1, dataSectors: 15, liveSectors: 15, writeSeq: 99},
		},
		deferred: []deferredDelete{{Obj: 2, GCSeq: 6}},
		mapBytes: mapBytes,
	})
	f.Add(good)
	f.Add(good[:len(good)-3]) // truncated map bytes
	// Object count inflated far past the payload.
	bad := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(bad[16:], 1<<30)
	f.Add(bad)
	// Deferred count inflated.
	bad2 := encodeCheckpointForFuzz(&checkpointPayload{nextSeq: 1})
	binary.LittleEndian.PutUint32(bad2[20:], 1<<31)
	f.Add(bad2)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5})

	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := decodeCheckpoint(raw)
		if err != nil {
			return
		}
		// A successful decode consumed real input for every element it
		// returned: per-element sizes bound the slices by len(raw).
		if len(p.objects)*36 > len(raw) {
			t.Fatalf("decoded %d objects from %d bytes", len(p.objects), len(raw))
		}
		if len(p.deferred)*8 > len(raw) {
			t.Fatalf("decoded %d deferred deletes from %d bytes", len(p.deferred), len(raw))
		}
		if len(p.mapBytes) > len(raw) {
			t.Fatalf("map bytes %d exceed input %d", len(p.mapBytes), len(raw))
		}
		// Recovery hands mapBytes straight to the extmap loader; it must
		// tolerate whatever the checkpoint decoder let through.
		_ = extmap.New().UnmarshalBinary(p.mapBytes)
		// Accepted input must round-trip: re-encoding the decoded
		// payload and decoding again is a fixed point.
		again := encodeCheckpointForFuzz(p)
		p2, err := decodeCheckpoint(again)
		if err != nil {
			t.Fatalf("re-encoded checkpoint rejected: %v", err)
		}
		if len(p2.objects) != len(p.objects) || len(p2.deferred) != len(p.deferred) ||
			p2.prevCkpt != p.prevCkpt || p2.nextSeq != p.nextSeq || p2.durableWriteSeq != p.durableWriteSeq {
			t.Fatal("decode/encode/decode is not a fixed point")
		}
	})
}
