package host

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"lsvd/internal/core"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

func TestStatsSnapshotSmoke(t *testing.T) {
	dir := t.TempDir()
	store, err := objstore.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	dev := simdev.NewMem(64 << 20)
	ctx := context.Background()
	h, err := New(ctx, Options{Store: store, CacheDev: dev, MaxVolumes: 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.Create(ctx, "v1", core.VolumeOptions{VolBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	for i := range buf {
		buf[i] = byte(i)
	}
	for i := 0; i < 16; i++ {
		if err := d.WriteAt(buf, int64(i)*int64(len(buf))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "host", "stats")); err != nil {
		t.Fatalf("snapshot object: %v", err)
	}
	wps, err := LoadWritePathStats(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(wps) != 1 || wps[0].Volume != "v1" {
		t.Fatalf("snapshot rows: %+v", wps)
	}
	if wps[0].Writes != 16 || wps[0].GroupBatches == 0 {
		t.Fatalf("counters: %+v", wps[0])
	}
	// The close-time drain seals and uploads at least one object, and
	// its gate acquisition must survive the volume's Unregister.
	if wps[0].UploadGrants+wps[0].UploadBorrows == 0 {
		t.Fatalf("upload gate counters lost: %+v", wps[0])
	}
}
