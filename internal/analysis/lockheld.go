package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockheld flags operations that can block indefinitely — backend
// store calls, channel sends/receives, selects without default,
// sync.WaitGroup.Wait, time.Sleep — reachable while a //lsvd:lock
// mutex is held. Blocking under such a lock turns one slow backend
// round-trip into a stall of every reader and writer behind the lock,
// which is exactly the serialization the PR-3/PR-4 work removed.
//
// Detection is per package with transitive same-package call-graph
// summaries: for each function F and annotated lock L, the flow walker
// computes the blocking operations reachable in F assuming the caller
// holds L (modeling F releasing and re-acquiring the caller's lock,
// the blockstore's lock-drop protocol); a fixpoint propagates
// summaries through same-package calls, and call sites made while a
// lock is held report their callee's summary. Cross-package blocking
// is governed by design rules and lockorder instead: the sanctioned
// exceptions (sync-mode seals, GC PUTs under the seq-reservation
// critical section) carry //lsvd:ignore annotations with reasons.
func newLockheld() *Analyzer {
	a := &Analyzer{
		Name: "lockheld",
		Doc:  "no potentially-blocking operation while holding an //lsvd:lock mutex",
	}
	a.Run = func(pass *Pass) {
		lockSet := make(map[string]bool)
		for _, n := range pass.Ann.Locks {
			lockSet[n] = true
		}
		var locks []string
		for n := range lockSet {
			locks = append(locks, n)
		}
		sort.Strings(locks)

		decls := declaredFuncs(pass)
		if len(decls) == 0 {
			return
		}

		type entry struct {
			desc string
			pos  token.Pos
		}
		// summary[fn][L]: blocking ops reachable in fn while the
		// caller's L is (still) held.
		summary := make(map[*types.Func]map[string]map[entry]bool)
		callsHeld := make(map[*types.Func]map[string]map[*types.Func]bool)
		add2 := func(fn *types.Func, l string) (map[entry]bool, map[*types.Func]bool) {
			if summary[fn] == nil {
				summary[fn] = make(map[string]map[entry]bool)
				callsHeld[fn] = make(map[string]map[*types.Func]bool)
			}
			if summary[fn][l] == nil {
				summary[fn][l] = make(map[entry]bool)
				callsHeld[fn][l] = make(map[*types.Func]bool)
			}
			return summary[fn][l], callsHeld[fn][l]
		}

		contains := func(held []string, l string) bool {
			for _, h := range held {
				if h == l {
					return true
				}
			}
			return false
		}

		for fn, fd := range decls {
			for _, l := range locks {
				lock := l
				ents, calls := add2(fn, lock)
				walkFunc(pass, fd.Body, []string{lock}, flowEvents{
					onBlocking: func(pos token.Pos, desc string, held []string) {
						if contains(held, lock) {
							ents[entry{desc, pos}] = true
						}
					},
					onCall: func(pos token.Pos, callee *types.Func, held []string) {
						if contains(held, lock) && decls[callee] != nil {
							calls[callee] = true
						}
					},
				})
			}
		}

		// Fixpoint: a call made while L is held imports the callee's
		// L-summary.
		for changed := true; changed; {
			changed = false
			for fn := range decls {
				for _, l := range locks {
					ents, calls := add2(fn, l)
					for callee := range calls {
						for e := range summary[callee][l] {
							if !ents[e] {
								ents[e] = true
								changed = true
							}
						}
					}
				}
			}
		}

		minEntry := func(ents map[entry]bool) (entry, bool) {
			var best entry
			found := false
			for e := range ents {
				if !found || e.pos < best.pos {
					best, found = e, true
				}
			}
			return best, found
		}

		// Reporting pass: normal entry (no caller locks). Direct
		// violations fire on the blocking op; transitive ones on the
		// call site whose callee's summary is non-empty.
		for _, fd := range decls {
			walkFunc(pass, fd.Body, nil, flowEvents{
				onBlocking: func(pos token.Pos, desc string, held []string) {
					pass.Reportf(pos, "%s while holding %s", desc, strings.Join(uniqStrings(held), ", "))
				},
				onCall: func(pos token.Pos, callee *types.Func, held []string) {
					for _, l := range uniqStrings(held) {
						if e, ok := minEntry(summary[callee][l]); ok {
							pass.Reportf(pos, "call to %s may block while holding %s: reaches %s at %s",
								callee.Name(), l, e.desc, pass.Fset.Position(e.pos))
						}
					}
				},
			})
		}
	}
	return a
}

// declaredFuncs maps the package's function objects to their
// declarations (bodies only).
func declaredFuncs(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

func uniqStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
