package blockstore

import (
	"context"
	"errors"
	"fmt"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/journal"
)

// Open recovers a volume: superblock → latest checkpoint → replay of
// the consecutive object suffix, deleting stranded objects beyond the
// first gap (§3.3).
func Open(ctx context.Context, cfg Config) (*Store, error) {
	return open(ctx, cfg, 0, false)
}

// OpenAt mounts the volume read-only as of object sequence snapSeq
// (a snapshot mount, §3.6): recovery replays up to snapSeq and no
// farther, and stranded objects are left untouched.
func OpenAt(ctx context.Context, cfg Config, snapSeq uint32) (*Store, error) {
	return open(ctx, cfg, snapSeq, true)
}

// OpenSnapshot mounts the named snapshot read-only.
func OpenSnapshot(ctx context.Context, cfg Config, name string) (*Store, error) {
	cfg.setDefaults()
	raw, err := cfg.Store.Get(ctx, superName(cfg.Volume))
	if err != nil {
		return nil, fmt.Errorf("blockstore: volume %q: %w", cfg.Volume, err)
	}
	sb, err := decodeSuper(raw)
	if err != nil {
		return nil, err
	}
	for _, sn := range sb.snapshots {
		if sn.Name == name {
			return open(ctx, cfg, sn.Seq, true)
		}
	}
	return nil, fmt.Errorf("blockstore: snapshot %q not found", name)
}

func open(ctx context.Context, cfg Config, limit uint32, readOnly bool) (*Store, error) {
	cfg.setDefaults()
	s := newStore(ctx, cfg)
	s.readOnly = readOnly

	raw, err := cfg.Store.Get(ctx, superName(cfg.Volume))
	if err != nil {
		return nil, fmt.Errorf("blockstore: volume %q: %w", cfg.Volume, err)
	}
	sb, err := decodeSuper(raw)
	if err != nil {
		return nil, err
	}
	s.volSectors = sb.volSectors
	s.baseVol = sb.baseVol
	s.baseSeq = sb.baseSeq
	s.snapshots = sb.snapshots

	// Find the newest checkpoint at or before the limit, walking the
	// prev-pointer chain for snapshot mounts.
	ckptSeq := sb.lastCkpt
	var ckpt *checkpointPayload
	for {
		payload, err := s.readCheckpointObject(ckptSeq)
		if err != nil {
			return nil, err
		}
		if limit == 0 || ckptSeq <= limit {
			ckpt = payload
			break
		}
		if payload.prevCkpt == 0 || payload.prevCkpt == ckptSeq {
			return nil, fmt.Errorf("blockstore: no checkpoint at or before seq %d", limit)
		}
		ckptSeq = payload.prevCkpt
	}
	s.lastCkpt = ckptSeq
	s.durableWriteSeq = ckpt.durableWriteSeq
	for i := range ckpt.objects {
		o := ckpt.objects[i]
		s.objects[o.seq] = &o
	}
	s.deferred = ckpt.deferred
	for _, d := range s.deferred {
		s.cleaned[d.Obj] = true
	}
	s.recomputeUtilLocked()
	if err := s.m.UnmarshalBinary(ckpt.mapBytes); err != nil {
		return nil, fmt.Errorf("blockstore: checkpoint map: %w", err)
	}
	// The checkpointed map may reference objects deleted... it cannot:
	// GC defers deletion past the checkpoint that stops referencing
	// the victim, so every referenced object exists.

	// Replay the consecutive suffix after the checkpoint.
	names, err := cfg.Store.List(ctx, cfg.Volume+".")
	if err != nil {
		return nil, err
	}
	present := make(map[uint32]bool)
	for _, seq := range sortedSeqs(cfg.Volume, names) {
		present[seq] = true
	}
	next := ckptSeq + 1
	for present[next] && (limit == 0 || next <= limit) {
		if err := s.replayObject(next); err != nil {
			if limit == 0 && errors.Is(err, journal.ErrCorrupt) {
				// A truncated or torn object is the crash gap (§3.3):
				// its PUT died mid-transfer. The consistent prefix ends
				// just before it; it is deleted with the stranded set
				// below. Snapshot mounts (limit > 0) replay history
				// that was once committed, so corruption there stays
				// fatal.
				break
			}
			return nil, err
		}
		next++
	}
	s.nextSeq = next

	// Delete stranded objects beyond the prefix (§3.3) — writes that
	// were in flight when the client died. A failed delete must not
	// fail recovery: the object is recorded as an orphan and swept
	// before any subsequent object PUT, so it can never fill back into
	// the replayable prefix (see sweepOrphansLocked).
	if !readOnly {
		for seq := range present {
			if seq >= next {
				if err := s.deleteObject(seq); err != nil {
					s.orphans[seq] = true
				}
			}
		}
		// Re-sweep deferred deletes: a checkpointed deferredDelete whose
		// GC object committed but whose victim delete never ran (the
		// crash landed between the checkpoint and the delete, or the
		// delete itself kept failing) would otherwise leak the victim
		// object forever — nothing references it, so no later pass can
		// rediscover it. Snapshot-pinned victims go back on the deferred
		// list; delete failures queue on pending for the next checkpoint
		// to retry, exactly as live-path deletions do.
		deferred := s.deferred
		s.deferred = nil
		for _, d := range deferred {
			if err := s.completeDelete(d); err != nil {
				s.pending = append(s.pending, d)
			}
		}
	}
	s.startGCService()
	return s, nil
}

// sweepOrphansLocked retries deletion of stranded objects whose
// recovery-time delete failed. It must run before every object PUT
// (seal, GC, checkpoint): once new objects fill the sequence gap below
// an orphan, a crash would put the orphan back inside the consecutive
// prefix and recovery would resurrect its stale data. No new object
// may be written while an orphan remains, so a persistently failing
// sweep surfaces as a write-path error — never an Open failure.
func (s *Store) sweepOrphansLocked() error {
	for seq := range s.orphans {
		if err := s.deleteObject(seq); err != nil {
			return fmt.Errorf("blockstore: sweeping orphan object %d: %w", seq, err)
		}
		delete(s.orphans, seq)
	}
	return nil
}

func (s *Store) readCheckpointObject(seq uint32) (*checkpointPayload, error) {
	raw, err := s.cfg.Store.Get(s.ctx, s.name(seq))
	if err != nil {
		return nil, fmt.Errorf("blockstore: checkpoint %d: %w", seq, err)
	}
	h, payload, _, err := journal.Decode(raw, false)
	if err != nil {
		return nil, fmt.Errorf("blockstore: checkpoint %d corrupt: %w", seq, err)
	}
	if h.Type != journal.TypeCheckpoint {
		return nil, fmt.Errorf("blockstore: object %d is %v, not a checkpoint", seq, h.Type)
	}
	return decodeCheckpoint(payload)
}

// replayObject applies one object's header to the recovering state:
// map updates for data and GC objects (GC extents conditionally, so
// stale copies never shadow newer writes), checkpoint objects reload
// wholesale state.
func (s *Store) replayObject(seq uint32) error {
	hdr, err := s.header(seq)
	if err != nil {
		return err
	}
	// Reconstruct the record type and sizes from the raw header.
	raw, err := s.cfg.Store.GetRange(s.ctx, s.name(seq), 0, int64(hdr.hdrSectors)*block.SectorSize)
	if err != nil {
		return err
	}
	h, _, err := journal.DecodeHeader(raw)
	if err != nil {
		return err
	}
	size, err := s.cfg.Store.Size(s.ctx, s.name(seq))
	if err != nil {
		return err
	}
	// A header that decoded but promises more data than the object
	// holds is a torn PUT — classify it as corruption so open() treats
	// it as the crash gap. Bound the 64-bit length field before
	// converting so a corrupt value cannot wrap the sum negative and
	// slip past the check.
	if h.DataLen > uint64(size) {
		return fmt.Errorf("%w: object %d claims %d data bytes but holds %d", journal.ErrCorrupt, seq, h.DataLen, size)
	}
	dataLen := int64(h.DataLen)
	if want := int64(hdr.hdrSectors)*block.SectorSize + dataLen; size < want {
		return fmt.Errorf("%w: object %d truncated to %d of %d bytes", journal.ErrCorrupt, seq, size, want)
	}

	switch h.Type {
	case journal.TypeCheckpoint:
		// A checkpoint newer than the superblock pointer (its PUT
		// completed but the super update didn't): reload state from it.
		payload, err := s.readCheckpointObject(seq)
		if err != nil {
			return err
		}
		s.durableWriteSeq = payload.durableWriteSeq
		s.objects = make(map[uint32]*objInfo, len(payload.objects))
		for i := range payload.objects {
			o := payload.objects[i]
			s.objects[o.seq] = &o
		}
		s.deferred = payload.deferred
		s.cleaned = make(map[uint32]bool)
		for _, d := range s.deferred {
			s.cleaned[d.Obj] = true
		}
		s.recomputeUtilLocked()
		if err := s.m.UnmarshalBinary(payload.mapBytes); err != nil {
			return err
		}
		s.lastCkpt = seq
		return nil

	case journal.TypeData, journal.TypeGC:
		info := &objInfo{
			seq: seq, typ: h.Type, totalBytes: size,
			hdrSectors: hdr.hdrSectors, writeSeq: h.WriteSeq,
		}
		var mapped []mappedExtent
		var trims []block.Extent
		cursor := block.LBA(hdr.hdrSectors)
		for _, e := range h.Extents {
			if e.SrcSeq == trimMarker {
				trims = append(trims, block.Extent{LBA: e.LBA, Sectors: e.Sectors})
				continue
			}
			mapped = append(mapped, mappedExtent{
				ext:    block.Extent{LBA: e.LBA, Sectors: e.Sectors},
				srcSeq: e.SrcSeq,
				target: extmap.Target{Obj: seq, Off: cursor},
			})
			cursor += block.LBA(e.Sectors)
			info.dataSectors += e.Sectors
		}
		info.liveSectors = info.dataSectors
		s.installObject(info, mapped, trims)
		if h.WriteSeq > s.durableWriteSeq {
			s.durableWriteSeq = h.WriteSeq
		}
		return nil

	default:
		return fmt.Errorf("blockstore: object %d has unexpected type %v", seq, h.Type)
	}
}
