package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/iomodel"
	"lsvd/internal/objstore"
	"lsvd/internal/readcache"
	"lsvd/internal/simdev"
)

var ctx = context.Background()

type harness struct {
	disk  *Disk
	cache *simdev.MemDevice
	store *objstore.Mem
	opts  Options
}

func newHarness(t *testing.T, mutate func(*Options)) *harness {
	t.Helper()
	h := &harness{
		cache: simdev.NewMem(256 * block.MiB),
		store: objstore.NewMem(),
	}
	h.opts = Options{
		Volume:   "vol",
		Store:    h.store,
		CacheDev: h.cache,
		VolBytes: 512 * block.MiB,
	}
	if mutate != nil {
		mutate(&h.opts)
	}
	d, err := Create(ctx, h.opts)
	if err != nil {
		t.Fatal(err)
	}
	h.disk = d
	return h
}

func (h *harness) reopen(t *testing.T) {
	t.Helper()
	// Stop the old disk's destage pipeline as a crash would (no-op
	// after a clean Close) so it cannot race the reopened volume.
	h.disk.Kill()
	d, err := Open(ctx, h.opts)
	if err != nil {
		t.Fatal(err)
	}
	h.disk = d
}

func payload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	h := newHarness(t, nil)
	data := payload(1, 64*1024)
	if err := h.disk.WriteAt(data, 1<<20); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := h.disk.ReadAt(got, 1<<20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	st := h.disk.Stats()
	if st.WriteCacheHitSectors == 0 {
		t.Fatalf("read not served from write cache: %+v", st)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	h := newHarness(t, nil)
	got := make([]byte, 8192)
	got[0] = 0xFF
	if err := h.disk.ReadAt(got, 64<<20); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("uninitialized data non-zero")
		}
	}
	if h.disk.Stats().ZeroFillSectors == 0 {
		t.Fatal("zero fill not counted")
	}
}

func TestAlignmentAndBoundsChecked(t *testing.T) {
	h := newHarness(t, nil)
	if err := h.disk.WriteAt(make([]byte, 512), 100); err == nil {
		t.Fatal("unaligned offset accepted")
	}
	if err := h.disk.WriteAt(make([]byte, 100), 0); err == nil {
		t.Fatal("unaligned length accepted")
	}
	if err := h.disk.WriteAt(make([]byte, 512), h.disk.Size()); err == nil {
		t.Fatal("write past end accepted")
	}
	if err := h.disk.Trim(1, 512); err == nil {
		t.Fatal("unaligned trim accepted")
	}
	if err := h.disk.Trim(0, h.disk.Size()+512); err == nil {
		t.Fatal("trim past end accepted")
	}
}

func TestReadFallsThroughToBackend(t *testing.T) {
	// Tiny write cache so records are destaged and evicted quickly.
	h := newHarness(t, func(o *Options) {
		o.CacheDev = simdev.NewMem(256 * block.MiB)
		o.BatchBytes = 256 * 1024
	})
	// Write enough distinct data to blow through the write cache.
	const n = 64
	for i := 0; i < n; i++ {
		if err := h.disk.WriteAt(payload(int64(i), 64*1024), int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.disk.Drain(); err != nil {
		t.Fatal(err)
	}
	// Reopen with a FRESH cache: all reads must come from the backend.
	h.opts.CacheDev = simdev.NewMem(256 * block.MiB)
	h.reopen(t)
	for i := 0; i < n; i++ {
		got := make([]byte, 64*1024)
		if err := h.disk.ReadAt(got, int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(int64(i), 64*1024)) {
			t.Fatalf("block %d wrong from backend", i)
		}
	}
	st := h.disk.Stats()
	if st.BackendReadSectors == 0 {
		t.Fatal("no backend reads recorded")
	}
	// Re-read: now served by the read cache.
	before := st.BackendReadSectors
	got := make([]byte, 64*1024)
	if err := h.disk.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	st = h.disk.Stats()
	if st.BackendReadSectors != before {
		t.Fatal("second read went to backend despite read cache")
	}
	if st.ReadCacheHitSectors == 0 {
		t.Fatal("read cache hit not counted")
	}
}

func TestWriteAfterReadHazard(t *testing.T) {
	h := newHarness(t, func(o *Options) { o.BatchBytes = 64 * 1024 })
	old := payload(1, 64*1024)
	if err := h.disk.WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}
	h.disk.Drain()
	// Pull the old data into the read cache via a fresh-cache reopen.
	h.opts.CacheDev = simdev.NewMem(256 * block.MiB)
	h.reopen(t)
	got := make([]byte, 64*1024)
	h.disk.ReadAt(got, 0)
	// Now write newer data, then read: must see the new data even
	// though the read cache still held the old copy.
	newer := payload(2, 64*1024)
	if err := h.disk.WriteAt(newer, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.disk.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newer) {
		t.Fatal("stale read-cache data exposed after write")
	}
}

func TestFlushIsSingleDeviceFlush(t *testing.T) {
	cache := simdev.NewMem(256 * block.MiB)
	metered := simdev.NewMetered(cache, iomodelNVMe())
	h := &harness{cache: cache, store: objstore.NewMem()}
	h.opts = Options{Volume: "vol", Store: h.store, CacheDev: metered, VolBytes: 512 * block.MiB}
	d, err := Create(ctx, h.opts)
	if err != nil {
		t.Fatal(err)
	}
	before := metered.Meter.Snapshot()
	if err := d.WriteAt(payload(1, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	delta := metered.Meter.Snapshot().Sub(before)
	// The commit barrier costs exactly one flush and zero extra
	// writes beyond the logged record itself (the 4x-varmail property,
	// §4.2.2).
	if delta.Flushes != 1 {
		t.Fatalf("flushes=%d", delta.Flushes)
	}
	if delta.WriteOps != 1 {
		t.Fatalf("write ops=%d; commit barrier added metadata writes", delta.WriteOps)
	}
}

func TestCrashRecoveryPreservesCommittedWrites(t *testing.T) {
	h := newHarness(t, func(o *Options) { o.BatchBytes = 1 * block.MiB })
	// Committed writes (flushed).
	for i := 0; i < 10; i++ {
		if err := h.disk.WriteAt(payload(int64(i), 16*1024), int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.disk.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash: lose unflushed device state (committed survives), no
	// clean close — backend never saw these writes (batch 1 MiB, 160 K
	// written... some may have sealed; recovery replays the rest).
	// Kill first so the destage pipeline stops at the crash point.
	h.disk.Kill()
	h.cache.Crash(1.0, rand.New(rand.NewSource(1)))
	h.reopen(t)
	if h.disk.Stats().RecoveredReplayed == 0 && h.disk.Backend().Stats().DurableWriteSeq < 10 {
		t.Fatal("no cache records replayed and backend incomplete")
	}
	for i := 0; i < 10; i++ {
		got := make([]byte, 16*1024)
		if err := h.disk.ReadAt(got, int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(int64(i), 16*1024)) {
			t.Fatalf("committed write %d lost after crash", i)
		}
	}
}

func TestCacheLossFallsBackToPrefix(t *testing.T) {
	h := newHarness(t, func(o *Options) { o.BatchBytes = 64 * 1024 })
	var lastDurable int
	for i := 0; i < 20; i++ {
		if err := h.disk.WriteAt(payload(int64(i), 64*1024), int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
		if i == 14 {
			h.disk.Drain()
			lastDurable = i
		}
	}
	h.disk.Flush()
	// Total cache loss: blank device (§3.4 worst case).
	h.opts.CacheDev = simdev.NewMem(256 * block.MiB)
	h.reopen(t)
	// All writes up to the drain point must be present (they are a
	// committed prefix durable in the backend).
	for i := 0; i <= lastDurable; i++ {
		got := make([]byte, 64*1024)
		if err := h.disk.ReadAt(got, int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(int64(i), 64*1024)) {
			t.Fatalf("durable write %d lost with cache", i)
		}
	}
	// Later writes may be lost, but any that survived must form a
	// prefix: if write k is present, all j<k are present.
	present := make([]bool, 20)
	for i := 0; i < 20; i++ {
		got := make([]byte, 64*1024)
		if err := h.disk.ReadAt(got, int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
		present[i] = bytes.Equal(got, payload(int64(i), 64*1024))
	}
	seenGap := false
	for i := 0; i < 20; i++ {
		if !present[i] {
			seenGap = true
		} else if seenGap {
			t.Fatalf("prefix consistency violated: write %d present after a gap", i)
		}
	}
}

func TestTrimEndToEnd(t *testing.T) {
	h := newHarness(t, nil)
	if err := h.disk.WriteAt(payload(1, 64*1024), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.disk.Trim(0, 32*1024); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64*1024)
	if err := h.disk.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	want := payload(1, 64*1024)
	clear(want[:32*1024])
	if !bytes.Equal(got, want) {
		t.Fatal("trim not visible")
	}
	// Trim survives drain + fresh-cache reopen.
	h.disk.Drain()
	h.opts.CacheDev = simdev.NewMem(256 * block.MiB)
	h.reopen(t)
	if err := h.disk.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("trim lost after recovery")
	}
}

func TestSnapshotThroughDisk(t *testing.T) {
	h := newHarness(t, nil)
	orig := payload(1, 64*1024)
	h.disk.WriteAt(orig, 0)
	info, err := h.disk.Snapshot("s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.disk.Snapshots()) != 1 {
		t.Fatal("snapshot not listed")
	}
	h.disk.WriteAt(payload(2, 64*1024), 0)
	_ = info
	if err := h.disk.DeleteSnapshot("s1"); err != nil {
		t.Fatal(err)
	}
}

func TestCleanCloseReopen(t *testing.T) {
	h := newHarness(t, nil)
	data := payload(7, 256*1024)
	h.disk.WriteAt(data, 12<<20)
	if err := h.disk.Close(); err != nil {
		t.Fatal(err)
	}
	h.reopen(t)
	got := make([]byte, len(data))
	if err := h.disk.ReadAt(got, 12<<20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("clean close lost data")
	}
}

func TestGCEndToEnd(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.BatchBytes = 256 * 1024
		o.CheckpointEvery = 8
	})
	latest := map[int]int64{}
	seed := int64(0)
	for round := 0; round < 20; round++ {
		for i := 0; i < 16; i++ {
			seed++
			latest[i] = seed
			if err := h.disk.WriteAt(payload(seed, 64*1024), int64(i)*(1<<20)); err != nil {
				t.Fatal(err)
			}
		}
	}
	h.disk.Drain()
	st := h.disk.Stats()
	if st.Backend.GCRuns == 0 {
		t.Fatalf("GC never triggered: %+v", st.Backend)
	}
	for i := 0; i < 16; i++ {
		got := make([]byte, 64*1024)
		if err := h.disk.ReadAt(got, int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(latest[i], 64*1024)) {
			t.Fatalf("extent %d corrupted by GC", i)
		}
	}
}

func TestBackpressureWhenCacheSmall(t *testing.T) {
	// 16 MiB cache (3.2 MiB write log) with an 8 MiB batch: appends
	// must trigger destage-based backpressure rather than failing.
	h := newHarness(t, func(o *Options) {
		o.CacheDev = simdev.NewMem(64 * block.MiB)
		o.WriteCacheFrac = 0.55 // log area ~35 MiB minus metadata
		o.BatchBytes = 4 * block.MiB
	})
	data := payload(1, 128*1024)
	for i := 0; i < 400; i++ { // 50 MiB through a ~16 MiB log
		if err := h.disk.WriteAt(data, int64(i%64)*(1<<20)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if h.disk.Stats().WriteCache.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
}

func TestRandomizedMirrorCheck(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.BatchBytes = 512 * 1024
		o.CheckpointEvery = 16
	})
	rng := rand.New(rand.NewSource(11))
	const space = 64 << 20
	mirror := make([]byte, space)
	for op := 0; op < 400; op++ {
		off := int64(rng.Intn(space/512-64)) * 512
		n := (rng.Intn(16) + 1) * 4096
		if off+int64(n) > space {
			n = int(space - off)
		}
		switch rng.Intn(10) {
		case 0: // trim
			if err := h.disk.Trim(off, int64(n)); err != nil {
				t.Fatal(err)
			}
			clear(mirror[off : off+int64(n)])
		case 1, 2: // read & verify
			got := make([]byte, n)
			if err := h.disk.ReadAt(got, off); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, mirror[off:off+int64(n)]) {
				t.Fatalf("op %d: read mismatch at %d+%d", op, off, n)
			}
		default: // write
			data := payload(int64(op), n)
			if err := h.disk.WriteAt(data, off); err != nil {
				t.Fatal(err)
			}
			copy(mirror[off:], data)
		}
	}
	// Final full verification, then again after drain+reopen.
	verify := func(tag string) {
		got := make([]byte, 1<<20)
		for off := int64(0); off < space; off += 1 << 20 {
			if err := h.disk.ReadAt(got, off); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, mirror[off:off+1<<20]) {
				t.Fatalf("%s: mismatch at %d", tag, off)
			}
		}
	}
	verify("live")
	h.disk.Close()
	h.reopen(t)
	verify("reopened")
	// And with a lost cache after a full drain.
	h.disk.Drain()
	h.opts.CacheDev = simdev.NewMem(256 * block.MiB)
	h.reopen(t)
	verify("cache-lost")
}

func iomodelNVMe() iomodel.Params { return iomodel.NVMeP3700 }

// TestReadbackThroughSSDCorrectness: destaging via the SSD (the
// kernel/user prototype path, §3.7) must produce identical backend
// contents.
func TestReadbackThroughSSDCorrectness(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.ReadbackThroughSSD = true
		o.BatchBytes = 256 * 1024
	})
	want := map[int][]byte{}
	for i := 0; i < 16; i++ {
		d := payload(int64(i), 64*1024)
		want[i] = d
		if err := h.disk.WriteAt(d, int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
	}
	h.disk.Drain()
	// Fresh cache: reads must come from the backend copy that went
	// through the SSD pass.
	h.opts.CacheDev = simdev.NewMem(256 * block.MiB)
	h.reopen(t)
	for i := 0; i < 16; i++ {
		got := make([]byte, 64*1024)
		if err := h.disk.ReadAt(got, int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("block %d corrupted by SSD pass-through destage", i)
		}
	}
}

// TestLRUReadCachePolicyThroughOptions exercises the LRU policy end
// to end.
func TestLRUReadCachePolicyThroughOptions(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.ReadCachePolicy = readcache.LRU
		o.BatchBytes = 128 * 1024
	})
	d := payload(9, 128*1024)
	if err := h.disk.WriteAt(d, 0); err != nil {
		t.Fatal(err)
	}
	h.disk.Drain()
	h.opts.CacheDev = simdev.NewMem(256 * block.MiB)
	h.opts.ReadCachePolicy = readcache.LRU
	h.reopen(t)
	got := make([]byte, len(d))
	for i := 0; i < 3; i++ {
		if err := h.disk.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, d) {
		t.Fatal("LRU-policy read wrong")
	}
	if h.disk.Stats().ReadCacheHitSectors == 0 {
		t.Fatal("no read-cache hits under LRU")
	}
}
