package workload

import (
	"math"
	"sync"
	"testing"

	"lsvd/internal/block"
)

// memDisk is a trivial in-memory vdisk.Disk for generator testing.
type memDisk struct {
	mu   sync.Mutex
	size int64
	data map[int64]byte // sparse, only for bounds realism
}

func newMemDisk(size int64) *memDisk { return &memDisk{size: size, data: map[int64]byte{}} }

func (d *memDisk) ReadAt(p []byte, off int64) error  { return d.check(p, off) }
func (d *memDisk) WriteAt(p []byte, off int64) error { return d.check(p, off) }
func (d *memDisk) Flush() error                      { return nil }
func (d *memDisk) Trim(off, n int64) error           { return nil }
func (d *memDisk) Size() int64                       { return d.size }
func (d *memDisk) check(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > d.size {
		panic("out of bounds I/O from generator")
	}
	if off%block.SectorSize != 0 || len(p)%block.SectorSize != 0 {
		panic("unaligned I/O from generator")
	}
	return nil
}

func TestFioRandWriteShape(t *testing.T) {
	g := &Fio{Pattern: RandWrite, BlockSize: 16384, VolBytes: 1 << 30, TotalBytes: 16 << 20, Seed: 1}
	c, err := Run(newMemDisk(1<<30), g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Writes != 1024 || c.BytesWritten != 16<<20 || c.Reads != 0 {
		t.Fatalf("counts %+v", c)
	}
}

func TestFioSeqReadWraps(t *testing.T) {
	g := &Fio{Pattern: SeqRead, BlockSize: 1 << 20, VolBytes: 4 << 20, TotalBytes: 16 << 20, Seed: 1}
	c, err := Run(newMemDisk(4<<20), g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Reads != 16 {
		t.Fatalf("counts %+v", c)
	}
}

func TestFioDeterministic(t *testing.T) {
	mk := func() []Op {
		g := &Fio{Pattern: RandWrite, BlockSize: 4096, VolBytes: 1 << 30, TotalBytes: 1 << 20, Seed: 42}
		var ops []Op
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			ops = append(ops, op)
		}
		return ops
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

// TestFilebenchSignatures checks the generated streams against the
// paper's Table 3 block-level statistics (within tolerance): mean
// write size and writes between commit barriers.
func TestFilebenchSignatures(t *testing.T) {
	cases := []struct {
		model         FilebenchModel
		wantWritesPS  float64 // writes per sync
		wantMeanWrite float64 // bytes
		tolWPS        float64
		tolMean       float64
	}{
		{Fileserver, 12865, 94 * 1024, 0.5, 0.4},
		{OLTP, 42.7, 4.7 * 1024, 0.5, 1.2}, // 4 KiB floor inflates the small-write mean
		{Varmail, 7.6, 27 * 1024, 0.5, 0.4},
	}
	for _, tc := range cases {
		g := &Filebench{Model: tc.model, VolBytes: 8 << 30, TotalBytes: 512 << 20, Seed: 3}
		c, err := Run(newMemDisk(8<<30), g, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if c.Writes == 0 {
			t.Fatalf("%v: no writes", tc.model)
		}
		if tc.model != Fileserver { // fileserver syncs are too rare for 512 MiB streams
			if c.Flushes == 0 {
				t.Fatalf("%v: no commit barriers", tc.model)
			}
			if r := math.Abs(c.WritesBetweenSyncs-tc.wantWritesPS) / tc.wantWritesPS; r > tc.tolWPS {
				t.Errorf("%v: writes/sync %.1f want ~%.1f", tc.model, c.WritesBetweenSyncs, tc.wantWritesPS)
			}
		}
		if r := math.Abs(c.MeanWriteBytes-tc.wantMeanWrite) / tc.wantMeanWrite; r > tc.tolMean {
			t.Errorf("%v: mean write %.0f want ~%.0f", tc.model, c.MeanWriteBytes, tc.wantMeanWrite)
		}
		if tc.model == OLTP && c.Reads == 0 {
			t.Error("oltp generated no reads")
		}
	}
}

// TestVarmailOverwrites: varmail must rewrite a small hot set — the
// property that drives the paper's GC experiments (Fig 15).
func TestVarmailOverwrites(t *testing.T) {
	g := &Filebench{Model: Varmail, VolBytes: 8 << 30, TotalBytes: 256 << 20, Seed: 5}
	touched := map[int64]bool{}
	var writes int
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Kind != OpWrite {
			continue
		}
		writes++
		for b := op.Off / block.BlockSize; b <= (op.Off+int64(op.Len)-1)/block.BlockSize; b++ {
			touched[b] = true
		}
	}
	footprint := int64(len(touched)) * block.BlockSize
	if footprint >= 256<<20 {
		t.Fatalf("varmail did not overwrite: footprint %d >= written 256MiB", footprint)
	}
}

func TestTraceGeneratorVolumeAndFootprint(t *testing.T) {
	for _, spec := range PaperTraces {
		tr := &Trace{Spec: spec, ScaleDown: 512}
		var total int64
		seen := map[int64]bool{}
		for {
			op, ok := tr.Next()
			if !ok {
				break
			}
			if op.Kind != OpWrite {
				t.Fatalf("%s: unexpected op kind", spec.ID)
			}
			if op.Off < 0 || op.Off+int64(op.Len) > tr.VolBytes() {
				t.Fatalf("%s: out of footprint", spec.ID)
			}
			total += int64(op.Len)
			seen[op.Off/block.BlockSize] = true
		}
		want := int64(spec.TotalWriteGB / 512 * float64(block.GiB))
		if total < want || total > want+4<<20 {
			t.Fatalf("%s: wrote %d want ~%d", spec.ID, total, want)
		}
	}
}

func TestRunMaxOps(t *testing.T) {
	g := &Fio{Pattern: RandWrite, BlockSize: 4096, VolBytes: 1 << 30, TotalBytes: 1 << 30, Seed: 1}
	c, err := Run(newMemDisk(1<<30), g, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Writes != 100 {
		t.Fatalf("maxOps ignored: %d", c.Writes)
	}
}

func TestRunStampsPayload(t *testing.T) {
	g := &Fio{Pattern: SeqWrite, BlockSize: 4096, VolBytes: 1 << 20, TotalBytes: 8192, Seed: 1}
	var stamped []int64
	_, err := Run(newMemDisk(1<<20), g, func(p []byte, off int64) {
		stamped = append(stamped, off)
		p[0] = 0xAB
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stamped) != 2 || stamped[0] != 0 || stamped[1] != 4096 {
		t.Fatalf("stamps %v", stamped)
	}
}
