// Package consistency provides the machinery behind the paper's crash
// tests (§4.4, Table 4). Instead of an ext4 file system and fsck, it
// writes self-describing stamped blocks — each 4 KiB block records
// which write produced it — and after a crash checks the recovered
// image against the recorded history:
//
//   - "Mounted without errors" ⇔ the image is a consistent prefix of
//     the write history: there is a time t' such that every block holds
//     exactly the newest value written to it at or before t', and no
//     trace of any write after t' exists.
//   - "All committed writes recovered" ⇔ t' covers the last completed
//     commit barrier.
//
// A journaling file system is consistent exactly when its block device
// provides these properties, so the checker decides Table 4's
// mountable/fsck columns without reimplementing ext4.
package consistency

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"lsvd/internal/block"
	"lsvd/internal/vdisk"
)

const stampMagic = 0x5354414D // "STAM"

// stamp layout within each 4 KiB block:
// magic(4) version(8) blockIdx(8) crc(4)
const stampLen = 24

// Writer issues stamped writes against a disk and records the history
// needed to audit a recovered image.
type Writer struct {
	disk   vdisk.Disk
	blocks int64

	version   uint64
	committed uint64
	// lastWrite[b] = list of (version) writes touching block b, in
	// order; we keep only what the checker needs: for each block, the
	// full version history (versions are globally ordered).
	history map[int64][]uint64
}

// NewWriter wraps a disk whose size must be a 4 KiB multiple.
func NewWriter(d vdisk.Disk) (*Writer, error) {
	if d.Size()%block.BlockSize != 0 {
		return nil, fmt.Errorf("consistency: disk size %d not 4K aligned", d.Size())
	}
	return &Writer{disk: d, blocks: d.Size() / block.BlockSize, history: make(map[int64][]uint64)}, nil
}

func stampBlock(p []byte, version uint64, blockIdx int64) {
	binary.LittleEndian.PutUint32(p, stampMagic)
	binary.LittleEndian.PutUint64(p[4:], version)
	binary.LittleEndian.PutUint64(p[12:], uint64(blockIdx))
	crc := crc32.ChecksumIEEE(p[:20])
	binary.LittleEndian.PutUint32(p[20:], crc)
}

func readStamp(p []byte) (version uint64, blockIdx int64, ok bool) {
	if len(p) < stampLen || binary.LittleEndian.Uint32(p) != stampMagic {
		return 0, 0, false
	}
	if crc32.ChecksumIEEE(p[:20]) != binary.LittleEndian.Uint32(p[20:]) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(p[4:]), int64(binary.LittleEndian.Uint64(p[12:])), true
}

// Write performs one stamped write of n 4 KiB blocks at blockIdx.
func (w *Writer) Write(blockIdx int64, n int) error {
	if blockIdx < 0 || blockIdx+int64(n) > w.blocks {
		return fmt.Errorf("consistency: write outside disk")
	}
	w.version++
	v := w.version
	buf := make([]byte, int64(n)*block.BlockSize)
	for i := 0; i < n; i++ {
		b := blockIdx + int64(i)
		stampBlock(buf[int64(i)*block.BlockSize:], v, b)
		w.history[b] = append(w.history[b], v)
	}
	return w.disk.WriteAt(buf, blockIdx*block.BlockSize)
}

// Barrier issues a commit barrier; on return all prior writes are
// committed.
func (w *Writer) Barrier() error {
	if err := w.disk.Flush(); err != nil {
		return err
	}
	w.committed = w.version
	return nil
}

// Rebind points the writer at a new disk (e.g. the volume reopened
// after a crash) so the recorded history can keep growing across
// crash/recover cycles.
func (w *Writer) Rebind(d vdisk.Disk) error {
	if d.Size()/block.BlockSize != w.blocks {
		return fmt.Errorf("consistency: rebind to disk of %d blocks, history has %d",
			d.Size()/block.BlockSize, w.blocks)
	}
	w.disk = d
	return nil
}

// Prune discards the history of writes newer than v. After a crash
// recovered to prefix v, those writes are gone for good — auditing
// future states against them would demand data the disk never promised
// to keep. The committed watermark is clamped to v; the version
// counter is not, so post-recovery writes never reuse a lost version.
func (w *Writer) Prune(v uint64) {
	for b, versions := range w.history {
		kept := versions[:0]
		for _, ver := range versions {
			if ver <= v {
				kept = append(kept, ver)
			}
		}
		if len(kept) == 0 {
			delete(w.history, b)
		} else {
			w.history[b] = kept
		}
	}
	if w.committed > v {
		w.committed = v
	}
}

// Committed returns the newest committed version.
func (w *Writer) Committed() uint64 { return w.committed }

// Version returns the newest issued version.
func (w *Writer) Version() uint64 { return w.version }

// Report is the outcome of auditing a recovered image.
type Report struct {
	// Mountable: the image is some consistent prefix of the history.
	Mountable bool
	// CommittedPreserved: the prefix covers the last commit barrier.
	CommittedPreserved bool
	// RecoveredVersion is the t' the image corresponds to (when
	// Mountable).
	RecoveredVersion uint64
	// Violations lists the first few inconsistencies found.
	Violations []string
}

// Check audits a recovered disk against the recorded history.
func (w *Writer) Check(d vdisk.Disk) (Report, error) {
	var r Report
	// Pass 1: find the newest version present anywhere — the only t'
	// that could make the image a prefix (any smaller t' would leave
	// evidence of a later write; any larger needs no block changed).
	stamps := make(map[int64]uint64, len(w.history))
	buf := make([]byte, block.BlockSize)
	var tPrime uint64
	for b := range w.history {
		if err := d.ReadAt(buf, b*block.BlockSize); err != nil {
			return r, err
		}
		v, idx, ok := readStamp(buf)
		if !ok {
			stamps[b] = 0 // never-written or zeroed
			continue
		}
		if idx != b {
			r.Violations = append(r.Violations, fmt.Sprintf("block %d holds stamp for block %d", b, idx))
			continue
		}
		if v > w.version {
			r.Violations = append(r.Violations, fmt.Sprintf("block %d holds version %d beyond history %d", b, v, w.version))
			continue
		}
		stamps[b] = v
		if v > tPrime {
			tPrime = v
		}
	}
	// Pass 2: at t', every block must hold its newest version <= t'.
	for b, versions := range w.history {
		var want uint64
		for _, v := range versions {
			if v <= tPrime && v > want {
				want = v
			}
		}
		if got := stamps[b]; got != want {
			if len(r.Violations) < 10 {
				r.Violations = append(r.Violations,
					fmt.Sprintf("block %d: holds v%d, but prefix t'=%d requires v%d", b, got, tPrime, want))
			}
		}
	}
	r.RecoveredVersion = tPrime
	r.Mountable = len(r.Violations) == 0
	r.CommittedPreserved = r.Mountable && tPrime >= w.committed
	return r, nil
}
