package workload

import (
	"math/rand"

	"lsvd/internal/block"
)

// TraceSpec parameterizes a synthetic CloudPhysics-like block trace
// (§4.6, Table 5). The corpus traces are week-long virtual-machine
// block traces with very different footprints, write sizes and
// overwrite locality; these parameters reproduce those axes. Trace IDs
// follow the paper so rows can be cross-referenced.
type TraceSpec struct {
	ID string
	// TotalWriteGB matches the paper's "writes GB" column.
	TotalWriteGB float64
	// FootprintGB is the distinct address space touched.
	FootprintGB float64
	// MeanWriteKiB is the mean write size.
	MeanWriteKiB float64
	// HotFrac / HotSkew: HotSkew of the writes land in HotFrac of the
	// footprint (overwrite locality — drives both coalescing and GC).
	HotFrac, HotSkew float64
	// SeqFrac is the fraction of writes that continue the previous
	// write sequentially (large sequential streams defragment the
	// map and coalesce well).
	SeqFrac float64
	// VHotFrac of writes land in a tiny fixed region (VHotBytes),
	// modeling journal-like blocks rewritten many times per second —
	// the component that intra-batch coalescing eliminates (the
	// paper's "merge ratio", Table 5).
	VHotFrac  float64
	VHotBytes int64
	Seed      int64
}

// PaperTraces are synthetic stand-ins for the Table 5 trace selection,
// with per-trace write volumes matching the paper's column and
// locality parameters chosen to reproduce each row's qualitative
// behaviour (e.g. w66/w41 coalesce heavily, w01 fragments the map).
// Volumes are divided by ScaleDown at generation time.
var PaperTraces = []TraceSpec{
	{ID: "w10", TotalWriteGB: 484, FootprintGB: 60, MeanWriteKiB: 32, HotFrac: 0.3, HotSkew: 0.7, SeqFrac: 0.55, VHotFrac: 0.01, VHotBytes: 16 << 10, Seed: 10},
	{ID: "w04", TotalWriteGB: 1786, FootprintGB: 40, MeanWriteKiB: 16, HotFrac: 0.2, HotSkew: 0.75, SeqFrac: 0.25, VHotFrac: 0.22, VHotBytes: 16 << 10, Seed: 4},
	{ID: "w66", TotalWriteGB: 49, FootprintGB: 2, MeanWriteKiB: 8, HotFrac: 0.05, HotSkew: 0.95, SeqFrac: 0.1, VHotFrac: 0.55, VHotBytes: 16 << 10, Seed: 66},
	{ID: "w01", TotalWriteGB: 272, FootprintGB: 90, MeanWriteKiB: 8, HotFrac: 0.6, HotSkew: 0.5, SeqFrac: 0.05, VHotFrac: 0.12, VHotBytes: 16 << 10, Seed: 1},
	{ID: "w07", TotalWriteGB: 85, FootprintGB: 12, MeanWriteKiB: 12, HotFrac: 0.3, HotSkew: 0.6, SeqFrac: 0.15, VHotFrac: 0.06, VHotBytes: 16 << 10, Seed: 7},
	{ID: "w31", TotalWriteGB: 321, FootprintGB: 25, MeanWriteKiB: 48, HotFrac: 0.25, HotSkew: 0.8, SeqFrac: 0.7, VHotFrac: 0.02, VHotBytes: 16 << 10, Seed: 31},
	{ID: "w59", TotalWriteGB: 60, FootprintGB: 10, MeanWriteKiB: 16, HotFrac: 0.35, HotSkew: 0.65, SeqFrac: 0.2, VHotFrac: 0.15, VHotBytes: 16 << 10, Seed: 59},
	{ID: "w41", TotalWriteGB: 127, FootprintGB: 4, MeanWriteKiB: 24, HotFrac: 0.04, HotSkew: 0.97, SeqFrac: 0.3, VHotFrac: 0.72, VHotBytes: 16 << 10, Seed: 41},
	{ID: "w05", TotalWriteGB: 389, FootprintGB: 30, MeanWriteKiB: 64, HotFrac: 0.3, HotSkew: 0.75, SeqFrac: 0.75, VHotFrac: 0.0, VHotBytes: 16 << 10, Seed: 5},
}

// Trace generates writes according to a TraceSpec, scaled down by
// ScaleDown (so simulations finish quickly while preserving the
// footprint:volume ratio).
type Trace struct {
	Spec      TraceSpec
	ScaleDown float64 // e.g. 64: 1/64 of the paper's volume

	rng     *rand.Rand
	written int64
	total   int64
	fpBytes int64
	lastEnd int64
}

func (t *Trace) init() {
	if t.rng != nil {
		return
	}
	t.rng = rand.New(rand.NewSource(t.Spec.Seed))
	if t.ScaleDown <= 0 {
		t.ScaleDown = 1
	}
	t.total = int64(t.Spec.TotalWriteGB / t.ScaleDown * float64(block.GiB))
	t.fpBytes = int64(t.Spec.FootprintGB / t.ScaleDown * float64(block.GiB))
	if t.fpBytes < 4*block.MiB {
		t.fpBytes = 4 * block.MiB
	}
}

// Next implements Generator.
func (t *Trace) Next() (Op, bool) {
	t.init()
	if t.written >= t.total {
		return Op{}, false
	}
	// Size: exponential around the mean, 4 KiB aligned.
	size := int(t.rng.ExpFloat64() * t.Spec.MeanWriteKiB * 1024)
	size = (size + block.BlockSize - 1) &^ (block.BlockSize - 1)
	if size < block.BlockSize {
		size = block.BlockSize
	}
	if size > 2<<20 {
		size = 2 << 20
	}

	var off int64
	switch {
	case t.Spec.VHotFrac > 0 && t.rng.Float64() < t.Spec.VHotFrac:
		// Journal-like rewrite of a tiny fixed region.
		vhot := t.Spec.VHotBytes
		if vhot <= int64(size)+block.BlockSize {
			vhot = int64(size) + 2*block.BlockSize
		}
		if vhot > t.fpBytes {
			vhot = t.fpBytes
		}
		if size > int(vhot)-block.BlockSize {
			size = int(vhot-block.BlockSize) &^ (block.BlockSize - 1)
			if size < block.BlockSize {
				size = block.BlockSize
			}
		}
		off = t.rng.Int63n(vhot-int64(size)+1) &^ (block.BlockSize - 1)
		t.lastEnd = off + int64(size)
		t.written += int64(size)
		return Op{Kind: OpWrite, Off: off, Len: size}, true
	case t.rng.Float64() < t.Spec.SeqFrac && t.lastEnd+int64(size) < t.fpBytes:
		off = t.lastEnd
	case t.rng.Float64() < t.Spec.HotSkew:
		hot := int64(float64(t.fpBytes) * t.Spec.HotFrac)
		if hot < int64(size)+block.BlockSize {
			hot = int64(size) + block.BlockSize
		}
		off = t.rng.Int63n(hot-int64(size)) &^ (block.BlockSize - 1)
	default:
		off = t.rng.Int63n(t.fpBytes-int64(size)) &^ (block.BlockSize - 1)
	}
	t.lastEnd = off + int64(size)
	t.written += int64(size)
	return Op{Kind: OpWrite, Off: off, Len: size}, true
}

// VolBytes returns the trace's (scaled) footprint, i.e. the virtual
// disk size a simulation needs.
func (t *Trace) VolBytes() int64 {
	t.init()
	return t.fpBytes
}
