// Package iomodel converts metered I/O streams into elapsed time using
// a calibrated analytic device model.
//
// LSVD's data paths run at memory speed in this repository; every
// simulated device meters the stream of operations it receives (kind,
// offset, size, flush), merging sequential runs the way a block
// scheduler and the device's own write coalescing would. The model then
// bounds the time a real device would need by the three classic
// limits — per-op latency under a given queue depth, the device's
// random-IOPS capability, and its sequential bandwidth — and takes the
// binding one:
//
//	elapsed = max(ops·latency/QD, reads/rIOPS + writes/wIOPS,
//	              readBytes/rBW + writeBytes/wBW) + flushes·flushLatency
//
// Relative results between systems (who wins, by what factor) come from
// the real I/O streams the implementation produces, not from the model:
// the model is the same for both sides of every comparison. Device
// parameters are calibrated from the paper's Table 1 and §4.1.
package iomodel

import (
	"fmt"
	"sync"
	"time"
)

// Params describes a device's performance envelope.
type Params struct {
	Name         string
	ReadLatency  time.Duration // per-op service latency
	WriteLatency time.Duration
	ReadIOPS     float64 // random small-op capability, ops/sec
	WriteIOPS    float64
	ReadBW       float64 // sequential bandwidth, bytes/sec
	WriteBW      float64
	FlushLatency time.Duration // commit barrier cost
	MergeLimit   int64         // max bytes merged into one effective op
}

// Calibrated device profiles (paper Table 1, §4.1, §4.9).
var (
	// NVMeP3700 is the 800 GB Intel DC P3700 client cache device:
	// 2.8/1.9 GB/s sequential read/write, 460K/90K read/write IOPS.
	NVMeP3700 = Params{
		Name:        "nvme-p3700",
		ReadLatency: 90 * time.Microsecond, WriteLatency: 64 * time.Microsecond,
		ReadIOPS: 460_000, WriteIOPS: 90_000,
		ReadBW: 2.8e9, WriteBW: 1.9e9,
		FlushLatency: 50 * time.Microsecond,
		MergeLimit:   512 << 10,
	}

	// SATASSDConsumer is one 250 GB consumer SATA SSD of backend
	// config #1 (~10,000 sustained random write IOPS per device).
	SATASSDConsumer = Params{
		Name:        "sata-ssd",
		ReadLatency: 150 * time.Microsecond, WriteLatency: 400 * time.Microsecond,
		ReadIOPS: 70_000, WriteIOPS: 10_000,
		ReadBW: 500e6, WriteBW: 450e6,
		FlushLatency: 500 * time.Microsecond,
		MergeLimit:   512 << 10,
	}

	// HDD10K is one 10K RPM SAS drive of backend config #2 (~370
	// rated write IOPS, §4.5; ~200 MB/s sequential).
	HDD10K = Params{
		Name:        "hdd-10k",
		ReadLatency: 6 * time.Millisecond, WriteLatency: 2700 * time.Microsecond,
		ReadIOPS: 300, WriteIOPS: 370,
		ReadBW: 200e6, WriteBW: 200e6,
		FlushLatency: 8 * time.Millisecond,
		MergeLimit:   1 << 20,
	}

	// EC2NVMe is the m5d.xlarge instance NVMe (§4.9): measured
	// 230/128 MB/s read/write at large I/O.
	EC2NVMe = Params{
		Name:        "ec2-nvme",
		ReadLatency: 120 * time.Microsecond, WriteLatency: 90 * time.Microsecond,
		ReadIOPS: 65_000, WriteIOPS: 32_000,
		ReadBW: 230e6, WriteBW: 128e6,
		FlushLatency: 80 * time.Microsecond,
		MergeLimit:   512 << 10,
	}
)

// OpKind distinguishes metered operations.
type OpKind int

const (
	OpRead OpKind = iota
	OpWrite
)

// Counters is a snapshot of a meter. "Effective" ops count sequential
// runs merged up to MergeLimit as single operations, which is what an
// IOPS-limited device experiences after scheduler merging.
type Counters struct {
	ReadOps, WriteOps       uint64 // as issued
	ReadEffOps, WriteEffOps uint64 // after sequential merging
	ReadBytes, WriteBytes   uint64
	Flushes                 uint64
}

// Sub returns c - o, counter-wise.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		ReadOps: c.ReadOps - o.ReadOps, WriteOps: c.WriteOps - o.WriteOps,
		ReadEffOps: c.ReadEffOps - o.ReadEffOps, WriteEffOps: c.WriteEffOps - o.WriteEffOps,
		ReadBytes: c.ReadBytes - o.ReadBytes, WriteBytes: c.WriteBytes - o.WriteBytes,
		Flushes: c.Flushes - o.Flushes,
	}
}

// Add returns c + o, counter-wise.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		ReadOps: c.ReadOps + o.ReadOps, WriteOps: c.WriteOps + o.WriteOps,
		ReadEffOps: c.ReadEffOps + o.ReadEffOps, WriteEffOps: c.WriteEffOps + o.WriteEffOps,
		ReadBytes: c.ReadBytes + o.ReadBytes, WriteBytes: c.WriteBytes + o.WriteBytes,
		Flushes: c.Flushes + o.Flushes,
	}
}

// Meter accumulates the I/O stream seen by one device. It is safe for
// concurrent use.
type Meter struct {
	params Params

	mu      sync.Mutex
	c       Counters
	lastEnd [2]int64 // per kind: end offset of previous op, for run detection
	runLen  [2]int64 // bytes accumulated in the current sequential run
	sizes   *SizeHistogram
}

// NewMeter returns a meter for a device with the given parameters.
func NewMeter(p Params) *Meter {
	if p.MergeLimit <= 0 {
		p.MergeLimit = 512 << 10
	}
	return &Meter{params: p, lastEnd: [2]int64{-1, -1}, sizes: NewSizeHistogram()}
}

// Params returns the device parameters.
func (m *Meter) Params() Params { return m.params }

// Record meters one operation.
func (m *Meter) Record(kind OpKind, off, size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := int(kind)
	switch kind {
	case OpRead:
		m.c.ReadOps++
		m.c.ReadBytes += uint64(size)
	case OpWrite:
		m.c.WriteOps++
		m.c.WriteBytes += uint64(size)
	}
	// Sequential run merging: an op that starts where the previous op
	// of the same kind ended extends the run (until MergeLimit).
	if off == m.lastEnd[k] && m.runLen[k]+size <= m.params.MergeLimit {
		m.runLen[k] += size
	} else {
		if kind == OpWrite && m.runLen[k] > 0 {
			m.sizes.Record(m.runLen[k])
		}
		m.runLen[k] = size
		switch kind {
		case OpRead:
			m.c.ReadEffOps++
		case OpWrite:
			m.c.WriteEffOps++
		}
	}
	m.lastEnd[k] = off + size
}

// RecordFlush meters a commit barrier; it also closes open sequential
// runs (a barrier drains the queue).
func (m *Meter) RecordFlush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.Flushes++
	if m.runLen[int(OpWrite)] > 0 {
		m.sizes.Record(m.runLen[int(OpWrite)])
		m.runLen[int(OpWrite)] = 0
	}
	m.lastEnd = [2]int64{-1, -1}
}

// Snapshot returns the current counters.
func (m *Meter) Snapshot() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c
}

// WriteSizes returns the histogram of merged write sizes (Fig 14),
// flushing any open run first.
func (m *Meter) WriteSizes() *SizeHistogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.runLen[int(OpWrite)] > 0 {
		m.sizes.Record(m.runLen[int(OpWrite)])
		m.runLen[int(OpWrite)] = 0
		m.lastEnd[int(OpWrite)] = -1
	}
	return m.sizes.Clone()
}

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c = Counters{}
	m.lastEnd = [2]int64{-1, -1}
	m.runLen = [2]int64{}
	m.sizes = NewSizeHistogram()
}

// Elapsed returns the modeled time for the counter delta c on a device
// with parameters p, at client queue depth qd.
func Elapsed(p Params, c Counters, qd int) time.Duration {
	if qd < 1 {
		qd = 1
	}
	lat := time.Duration(float64(c.ReadEffOps)*float64(p.ReadLatency)+
		float64(c.WriteEffOps)*float64(p.WriteLatency)) / time.Duration(qd)
	var iops, bw float64
	if p.ReadIOPS > 0 {
		iops += float64(c.ReadEffOps) / p.ReadIOPS
	}
	if p.WriteIOPS > 0 {
		iops += float64(c.WriteEffOps) / p.WriteIOPS
	}
	if p.ReadBW > 0 {
		bw += float64(c.ReadBytes) / p.ReadBW
	}
	if p.WriteBW > 0 {
		bw += float64(c.WriteBytes) / p.WriteBW
	}
	e := lat
	if d := time.Duration(iops * float64(time.Second)); d > e {
		e = d
	}
	if d := time.Duration(bw * float64(time.Second)); d > e {
		e = d
	}
	return e + time.Duration(c.Flushes)*p.FlushLatency
}

// ElapsedMeter is Elapsed for a meter's full history.
func ElapsedMeter(m *Meter, qd int) time.Duration { return Elapsed(m.params, m.Snapshot(), qd) }

// SizeHistogram buckets operation sizes by power of two, with bucket i
// covering [2^i, 2^(i+1)) bytes; it records both counts and bytes,
// matching the paper's Fig 14 presentation (bytes written vs I/O size).
type SizeHistogram struct {
	Counts [40]uint64
	Bytes  [40]uint64
}

// NewSizeHistogram returns an empty histogram.
func NewSizeHistogram() *SizeHistogram { return &SizeHistogram{} }

// Record adds one operation of the given size.
func (h *SizeHistogram) Record(size int64) {
	b := 0
	for s := size; s > 1 && b < len(h.Counts)-1; s >>= 1 {
		b++
	}
	h.Counts[b]++
	h.Bytes[b] += uint64(size)
}

// Clone returns a copy.
func (h *SizeHistogram) Clone() *SizeHistogram {
	c := *h
	return &c
}

// Merge adds o into h.
func (h *SizeHistogram) Merge(o *SizeHistogram) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
		h.Bytes[i] += o.Bytes[i]
	}
}

// Buckets returns the non-empty buckets as (lower-bound, count, bytes)
// rows in ascending size order.
func (h *SizeHistogram) Buckets() []BucketRow {
	var out []BucketRow
	for i := range h.Counts {
		if h.Counts[i] == 0 {
			continue
		}
		out = append(out, BucketRow{Low: int64(1) << i, Count: h.Counts[i], Bytes: h.Bytes[i]})
	}
	return out
}

// BucketRow is one histogram row.
type BucketRow struct {
	Low   int64
	Count uint64
	Bytes uint64
}

func (b BucketRow) String() string {
	return fmt.Sprintf("%8d: %10d ops %14d bytes", b.Low, b.Count, b.Bytes)
}
