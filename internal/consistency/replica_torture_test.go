package consistency

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/core"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

// Replica torture: concurrent writers hammer a replicated volume while
// BOTH backends inject faults and torn writes, then the disk is killed
// mid-flight. The audit mounts the replica as the new primary (the
// §4.8 disaster path) and proves three things:
//
//  1. Committed-prefix restore: the promoted replica passes the same
//     per-writer prefix-consistency check as a crashed primary — the
//     replica is a crash-consistent prefix of the volume's history,
//     not a torn mixture.
//  2. Bounded RPO: the primary's recovered object stream ends at most
//     the configured lag bound (plus documented pipeline slack) beyond
//     the replica's — the data-loss window honored its configuration
//     even under faults and a kill.
//  3. Liveness after failover: the promoted replica accepts writes,
//     flushes and reads them back.
//
// The shipped-watermark pin (no primary object deleted before it
// ships) is exercised implicitly — the replica could not mount if its
// checkpoints referenced objects it never received — and directly by
// replica.TestDeleteSnapshotRespectsShipWatermark.

// replicaLagBound is the RPO knob for the torture run (objects).
const replicaLagBound = 4

// replicaRPOSlack is the committed-but-unbounded tail the pipeline can
// add after the lag bound trips: admission checks the bound before each
// write, so the destage queue (32 reqs ≈ 4 small objects), the sealing
// batch, UploadDepth in-flight uploads, plus interleaved checkpoint and
// GC objects (one checkpoint per 4 objects, GC paced off foreground)
// can still commit. The audit asserts lag ≤ bound + this slack.
const replicaRPOSlack = 20

func TestReplicaTorture(t *testing.T) {
	seed := envInt("LSVD_FAULT_SEED", 1)
	iters := envInt("LSVD_FAULT_ITERS", 12)
	if testing.Short() && iters > 4 {
		iters = 4
	}
	baseGoroutines := runtime.NumGoroutine()
	for it := int64(0); it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("seed=%d", seed+it), func(t *testing.T) {
			replicaIteration(t, seed+it)
		})
		if t.Failed() {
			break
		}
	}
	waitGoroutines(t, baseGoroutines)
}

func replicaIteration(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x7265706c))
	primary := objstore.NewFaulty(objstore.NewMem())
	replica := objstore.NewFaulty(objstore.NewMem())
	cache := simdev.NewMem(32 * block.MiB)
	opts := core.Options{
		Volume: "vol", Store: primary, CacheDev: cache,
		VolBytes: 16 * block.MiB, BatchBytes: 128 << 10,
		CheckpointEvery: 4, UploadDepth: 2, DestageQueueDepth: 32,
		ReplicaStore:         replica,
		ReplicaMaxLagObjects: replicaLagBound,
		Retry: objstore.RetryPolicy{
			MaxAttempts: 16,
			BaseDelay:   50 * time.Microsecond,
			MaxDelay:    time.Millisecond,
			Seed:        seed,
		},
	}
	disk, err := core.Create(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	primary.Arm(objstore.FaultConfig{
		Seed:       seed,
		Rates:      objstore.UniformRates(cwFaultRate),
		TornWrites: true,
	})
	// The replica backend faults harder than the primary: the shipper
	// must absorb the asymmetry via retries and, past the lag bound,
	// write backpressure — never by skipping an object.
	replica.Arm(objstore.FaultConfig{
		Seed:       seed + 1,
		Rates:      objstore.UniformRates(2 * cwFaultRate),
		TornWrites: true,
	})
	defer primary.Disarm()
	defer replica.Disarm()

	writers := make([]*cwWriter, cwWriters)
	var wg sync.WaitGroup
	for g := 0; g < cwWriters; g++ {
		w := &cwWriter{gid: g, base: int64(g) * cwSpan}
		writers[g] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(disk, seed*int64(cwWriters)+int64(w.gid))
		}()
	}
	time.Sleep(time.Duration(2+rng.Intn(7)) * time.Millisecond)
	disk.Kill()
	wg.Wait()
	primary.Disarm()
	replica.Disarm()
	for _, w := range writers {
		if w.err != nil {
			t.Fatalf("writer %d failed outside the fault model: %v", w.gid, w.err)
		}
	}

	// --- Restore from the replica (promote): same options, the replica
	// store as the primary, a FRESH cache (the dead primary's cache
	// must never replay over the replica's shorter history).
	ropts := opts
	ropts.Store = replica
	ropts.ReplicaStore = nil
	ropts.CacheDev = simdev.NewMem(32 * block.MiB)
	rdisk, rerr := core.Open(ctx, ropts)
	if rerr != nil {
		// The only legal failure is a replica that was never
		// bootstrapped: the kill landed before the first superblock
		// shipped, so no consistent replica state ever existed. That
		// requires the super to actually be absent — anything else is a
		// real bug.
		if _, serr := replica.Size(ctx, "vol.super"); !errors.Is(serr, objstore.ErrNotFound) {
			t.Fatalf("replica restore failed with super present: %v", rerr)
		}
		t.Logf("replica never bootstrapped (killed before first super shipped): %v", rerr)
	}

	var replicaNext uint32
	if rdisk != nil {
		replicaNext = rdisk.Backend().Stats().NextSeq
		// (1) Committed-prefix restore: the promoted replica must pass
		// the crashed-primary audit (fresh cache ⇒ cacheSurvives=false).
		for _, w := range writers {
			if err := w.check(rdisk, false); err != nil {
				t.Errorf("replica restore: %v", err)
				dumpObjects(t, replica, w.base, w.base+cwSpan)
			}
		}
		// (3) Liveness after failover: the promoted replica is a
		// writable volume.
		for _, w := range writers {
			seq := uint64(len(w.ops)) + 1
			buf := make([]byte, block.BlockSize)
			stampBlock(buf, cwStamp(w.gid, seq), w.base)
			if err := rdisk.WriteAt(buf, w.base*block.BlockSize); err != nil {
				t.Fatalf("post-promote write (writer %d): %v", w.gid, err)
			}
		}
		if err := rdisk.Flush(); err != nil {
			t.Fatalf("post-promote barrier: %v", err)
		}
		for _, w := range writers {
			buf := make([]byte, block.BlockSize)
			if err := rdisk.ReadAt(buf, w.base*block.BlockSize); err != nil {
				t.Fatalf("post-promote read (writer %d): %v", w.gid, err)
			}
			v, idx, ok := readStamp(buf)
			if gid, seq := cwDecode(v); !ok || gid != w.gid || idx != w.base || seq != uint64(len(w.ops))+1 {
				t.Fatalf("post-promote read-back (writer %d): ok=%v v=%d idx=%d", w.gid, ok, v, idx)
			}
		}
		if err := rdisk.Close(); err != nil {
			t.Logf("close promoted replica: %v", err)
		}
	}

	// --- Audit the primary with a fresh cache so its recovered stream
	// is exactly the kill-point committed prefix (no cache replay
	// appending new objects), then check the RPO.
	popts := opts
	popts.ReplicaStore = nil // audit mount: no shipper
	popts.CacheDev = simdev.NewMem(32 * block.MiB)
	pdisk, err := openWithRetry(t, popts)
	if err != nil {
		t.Fatalf("primary recovery failed: %v", err)
	}
	primaryNext := pdisk.Backend().Stats().NextSeq
	for _, w := range writers {
		if err := w.check(pdisk, false); err != nil {
			t.Error(err)
		}
	}
	if err := pdisk.Close(); err != nil {
		t.Logf("close primary: %v", err)
	}

	// (2) Bounded RPO: the primary's committed stream may run ahead of
	// the replica's by at most the lag bound plus pipeline slack.
	if rdisk != nil {
		if lag := int64(primaryNext) - int64(replicaNext); lag > replicaLagBound+replicaRPOSlack {
			t.Fatalf("RPO violated: primary at seq %d, replica at %d — lag %d > bound %d + slack %d",
				primaryNext, replicaNext, lag, replicaLagBound, replicaRPOSlack)
		}
	}
}
