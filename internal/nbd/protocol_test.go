package nbd

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/simdev"
)

// protoConn starts a server handling one raw net.Pipe connection and
// returns the client end (with a deadline so a protocol bug fails the
// test instead of hanging it) plus the channel carrying handle()'s
// return value.
func protoConn(t *testing.T) (net.Conn, chan error) {
	t.Helper()
	s := NewServer(Export{Name: "d", Disk: memVDisk{dev: simdev.NewMem(block.MiB)}})
	client, server := net.Pipe()
	errc := make(chan error, 1)
	go func() {
		defer server.Close()
		errc <- s.handle(server)
	}()
	client.SetDeadline(time.Now().Add(5 * time.Second))
	t.Cleanup(func() { client.Close() })

	// Fixed-newstyle greeting, then send our flags (NoZeroes trims the
	// 124-byte EXPORT_NAME padding out of the tests).
	var hs [18]byte
	if _, err := io.ReadFull(client, hs[:]); err != nil {
		t.Fatalf("reading greeting: %v", err)
	}
	if got := binary.BigEndian.Uint64(hs[0:]); got != nbdMagic {
		t.Fatalf("greeting magic %#x", got)
	}
	if err := binary.Write(client, binary.BigEndian, uint32(flagNoZeroes)); err != nil {
		t.Fatal(err)
	}
	return client, errc
}

func sendOption(t *testing.T, c net.Conn, option uint32, payload []byte) {
	t.Helper()
	hdr := make([]byte, 16)
	binary.BigEndian.PutUint64(hdr[0:], iHaveOpt)
	binary.BigEndian.PutUint32(hdr[8:], option)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(payload)))
	if _, err := c.Write(append(hdr, payload...)); err != nil {
		t.Fatal(err)
	}
}

// readOptReply returns (replyType, data) for one option reply.
func readOptReply(t *testing.T, c net.Conn) (uint32, []byte) {
	t.Helper()
	var hdr [20]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		t.Fatalf("reading option reply: %v", err)
	}
	if got := binary.BigEndian.Uint64(hdr[0:]); got != uint64(optReplyMagic) {
		t.Fatalf("option reply magic %#x", got)
	}
	n := binary.BigEndian.Uint32(hdr[16:])
	data := make([]byte, n)
	if _, err := io.ReadFull(c, data); err != nil {
		t.Fatal(err)
	}
	return binary.BigEndian.Uint32(hdr[12:]), data
}

func waitClosed(t *testing.T, errc chan error) {
	t.Helper()
	select {
	case <-errc:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not close the connection")
	}
}

func TestNegotiateOversizedOptionPayload(t *testing.T) {
	c, errc := protoConn(t)
	// Claim a 2 MiB payload (limit is 1 MiB) but send none: the server
	// must reject on the declared length alone, without trying to read
	// or allocate it.
	hdr := make([]byte, 16)
	binary.BigEndian.PutUint64(hdr[0:], iHaveOpt)
	binary.BigEndian.PutUint32(hdr[8:], optGo)
	binary.BigEndian.PutUint32(hdr[12:], 2<<20)
	if _, err := c.Write(hdr); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, errc)
}

func TestNegotiateBadOptionMagic(t *testing.T) {
	c, errc := protoConn(t)
	var junk [16]byte
	binary.BigEndian.PutUint64(junk[0:], 0xdeadbeefdeadbeef)
	if _, err := c.Write(junk[:]); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, errc)
}

func TestNegotiateShortOptionHeader(t *testing.T) {
	c, errc := protoConn(t)
	// Half an option header then EOF: the server must give up cleanly.
	var junk [8]byte
	binary.BigEndian.PutUint64(junk[0:], iHaveOpt)
	if _, err := c.Write(junk[:]); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitClosed(t, errc)
}

func TestNegotiateUnknownOptionThenAbort(t *testing.T) {
	c, errc := protoConn(t)
	sendOption(t, c, 999, []byte("payload"))
	if rep, _ := readOptReply(t, c); rep != repErrUnsup {
		t.Fatalf("unknown option reply %#x, want repErrUnsup", rep)
	}
	// The connection must survive the unsupported option.
	sendOption(t, c, optAbort, nil)
	if rep, _ := readOptReply(t, c); rep != repAck {
		t.Fatalf("abort reply %#x, want ack", rep)
	}
	waitClosed(t, errc)
}

func TestNegotiateGoMalformedPayloads(t *testing.T) {
	c, errc := protoConn(t)
	// Payload shorter than the 4-byte name length + 2-byte info count.
	sendOption(t, c, optGo, []byte{0, 0})
	if rep, _ := readOptReply(t, c); rep != repErrInvalid {
		t.Fatalf("short GO payload reply %#x, want repErrInvalid", rep)
	}
	// Name length pointing past the payload end.
	bad := make([]byte, 6)
	binary.BigEndian.PutUint32(bad, 500)
	sendOption(t, c, optGo, bad)
	if rep, _ := readOptReply(t, c); rep != repErrInvalid {
		t.Fatalf("overlong name reply %#x, want repErrInvalid", rep)
	}
	// Unknown export name.
	unknown := make([]byte, 6+7)
	binary.BigEndian.PutUint32(unknown, 7)
	copy(unknown[4:], "missing")
	sendOption(t, c, optGo, unknown)
	if rep, _ := readOptReply(t, c); rep != repErrUnknown {
		t.Fatalf("unknown export reply %#x, want repErrUnknown", rep)
	}
	// And after all that abuse, a well-formed GO still works.
	good := make([]byte, 6+1)
	binary.BigEndian.PutUint32(good, 1)
	good[4] = 'd'
	sendOption(t, c, optGo, good)
	if rep, data := readOptReply(t, c); rep != repInfo || len(data) != 12 {
		t.Fatalf("good GO reply %#x with %d bytes, want repInfo/12", rep, len(data))
	}
	if rep, _ := readOptReply(t, c); rep != repAck {
		t.Fatal("missing final ack for GO")
	}
	// Now in transmission: disconnect.
	sendRequest(t, c, cmdDisc, 1, 0, 0, nil)
	waitClosed(t, errc)
}

func sendRequest(t *testing.T, c net.Conn, typ uint16, handle, offset uint64, length uint32, data []byte) {
	t.Helper()
	hdr := make([]byte, 28)
	binary.BigEndian.PutUint32(hdr[0:], requestMagic)
	binary.BigEndian.PutUint16(hdr[6:], typ)
	binary.BigEndian.PutUint64(hdr[8:], handle)
	binary.BigEndian.PutUint64(hdr[16:], offset)
	binary.BigEndian.PutUint32(hdr[24:], length)
	if _, err := c.Write(append(hdr, data...)); err != nil {
		t.Fatal(err)
	}
}

// enterTransmission completes the handshake via EXPORT_NAME.
func enterTransmission(t *testing.T, c net.Conn) {
	t.Helper()
	sendOption(t, c, optExportName, []byte("d"))
	var resp [10]byte
	if _, err := io.ReadFull(c, resp[:]); err != nil {
		t.Fatalf("reading export response: %v", err)
	}
	if size := binary.BigEndian.Uint64(resp[0:]); size != uint64(block.MiB) {
		t.Fatalf("export size %d", size)
	}
}

func readSimpleReply(t *testing.T, c net.Conn, payload int) (uint64, uint32, []byte) {
	t.Helper()
	var hdr [16]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		t.Fatalf("reading reply: %v", err)
	}
	if got := binary.BigEndian.Uint32(hdr[0:]); got != simpleReplyMagic {
		t.Fatalf("reply magic %#x", got)
	}
	errno := binary.BigEndian.Uint32(hdr[4:])
	handle := binary.BigEndian.Uint64(hdr[8:])
	var data []byte
	if errno == 0 && payload > 0 {
		data = make([]byte, payload)
		if _, err := io.ReadFull(c, data); err != nil {
			t.Fatal(err)
		}
	}
	return handle, errno, data
}

func TestRequestUnknownCommand(t *testing.T) {
	c, errc := protoConn(t)
	enterTransmission(t, c)
	sendRequest(t, c, 77, 42, 0, 0, nil)
	handle, errno, _ := readSimpleReply(t, c, 0)
	if handle != 42 || errno != errNoSup {
		t.Fatalf("unknown command reply handle=%d errno=%d, want 42/ENOTSUP", handle, errno)
	}
	// The connection survives: a normal read still works.
	sendRequest(t, c, cmdRead, 43, 0, 512, nil)
	if handle, errno, data := readSimpleReply(t, c, 512); handle != 43 || errno != 0 || len(data) != 512 {
		t.Fatalf("read after unknown command: handle=%d errno=%d", handle, errno)
	}
	sendRequest(t, c, cmdDisc, 44, 0, 0, nil)
	waitClosed(t, errc)
}

func TestRequestOversizedLength(t *testing.T) {
	c, errc := protoConn(t)
	enterTransmission(t, c)
	// A 64 MiB read (limit 32 MiB) must drop the connection, not
	// allocate the buffer.
	sendRequest(t, c, cmdRead, 1, 0, 64<<20, nil)
	waitClosed(t, errc)
}

func TestRequestBadMagic(t *testing.T) {
	c, errc := protoConn(t)
	enterTransmission(t, c)
	var junk [28]byte
	binary.BigEndian.PutUint32(junk[0:], 0x12345678)
	if _, err := c.Write(junk[:]); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, errc)
}

func TestRequestShortHeaderMidRead(t *testing.T) {
	c, errc := protoConn(t)
	enterTransmission(t, c)
	// 10 of the 28 header bytes, then EOF: the server must exit its
	// read loop rather than wait forever or misparse.
	partial := make([]byte, 10)
	binary.BigEndian.PutUint32(partial[0:], requestMagic)
	if _, err := c.Write(partial); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitClosed(t, errc)
}

func TestRequestWritePayloadTruncated(t *testing.T) {
	c, errc := protoConn(t)
	enterTransmission(t, c)
	// A write claiming 4096 bytes but delivering 100 then EOF.
	sendRequest(t, c, cmdWrite, 7, 0, 4096, make([]byte, 100))
	c.Close()
	waitClosed(t, errc)
}
