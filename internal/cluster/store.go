package cluster

import (
	"context"

	"lsvd/internal/objstore"
)

// Store wraps an objstore.Store so that every object operation also
// records its device-level cost against a simulated Pool. This is the
// RGW-on-Ceph equivalent in the paper's setup: LSVD speaks S3 to the
// gateway, and the gateway erasure-codes objects across the pool.
type Store struct {
	Inner objstore.Store
	Pool  *Pool
}

// NewStore wraps inner over pool.
func NewStore(inner objstore.Store, pool *Pool) *Store {
	return &Store{Inner: inner, Pool: pool}
}

// Put implements objstore.Store.
func (s *Store) Put(ctx context.Context, name string, data []byte) error {
	if err := s.Inner.Put(ctx, name, data); err != nil {
		return err
	}
	s.Pool.PutObject(name, int64(len(data)))
	return nil
}

// Get implements objstore.Store.
func (s *Store) Get(ctx context.Context, name string) ([]byte, error) {
	data, err := s.Inner.Get(ctx, name)
	if err == nil {
		s.Pool.ReadObjectRange(name, int64(len(data)), 0, int64(len(data)))
	}
	return data, err
}

// GetRange implements objstore.Store.
func (s *Store) GetRange(ctx context.Context, name string, off, length int64) ([]byte, error) {
	data, err := s.Inner.GetRange(ctx, name, off, length)
	if err == nil {
		size, serr := s.Inner.Size(ctx, name)
		if serr != nil {
			size = off + int64(len(data))
		}
		s.Pool.ReadObjectRange(name, size, off, int64(len(data)))
	}
	return data, err
}

// Delete implements objstore.Store.
func (s *Store) Delete(ctx context.Context, name string) error {
	if err := s.Inner.Delete(ctx, name); err != nil {
		return err
	}
	s.Pool.DeleteObject(name)
	return nil
}

// List implements objstore.Store.
func (s *Store) List(ctx context.Context, prefix string) ([]string, error) {
	return s.Inner.List(ctx, prefix)
}

// Size implements objstore.Store.
func (s *Store) Size(ctx context.Context, name string) (int64, error) {
	return s.Inner.Size(ctx, name)
}
