package analysis

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder builds the module-wide acquired-before graph over the
// //lsvd:lock mutexes and fails on cycles: two code paths taking the
// same pair of locks in opposite orders is a deadlock waiting for the
// right interleaving, and no test reliably produces it. Direct edges
// come from acquisitions with another lock held (including the locks a
// function declares via //lsvd:requires — its callers hold them);
// indirect edges come from the shared interprocedural summaries
// (Acquired[fn][L]: locks acquired while the caller's L is still
// held, propagated bottom-up over the call-graph SCCs and across
// packages), materialized only at call sites actually reached with L
// held — so a helper that takes its own private lock does not
// manufacture edges for callers that never hold anything. The walker's
// lock-drop modeling keeps release-then-call-then-reacquire protocols
// (blockstore header fetch, GC writeback) out of the graph.
func newLockorder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "the acquired-before graph over //lsvd:lock mutexes must be acyclic",
	}

	type edge struct{ from, to string }
	type rootCall struct {
		lock   string
		callee string // fn.FullName()
		pos    token.Position
	}
	edges := make(map[edge]token.Position)
	addEdge := func(e edge, pos token.Position) {
		if _, ok := edges[e]; !ok {
			edges[e] = pos
		}
	}
	var rootCalls []rootCall
	var ip *Interproc

	a.Run = func(pass *Pass) {
		ip = pass.IP
		for fn, fd := range declaredFuncs(pass) {
			walkFunc(pass, fd.Body, ip.Requires[funcKey(fn)], flowEvents{
				onAcquire: func(pos token.Pos, lock string, held []string) {
					for _, h := range uniqStrings(held) {
						addEdge(edge{h, lock}, pass.Fset.Position(pos))
					}
				},
				onCall: func(pos token.Pos, callee *types.Func, held []string) {
					for _, h := range uniqStrings(held) {
						rootCalls = append(rootCalls, rootCall{h, funcKey(callee), pass.Fset.Position(pos)})
					}
				},
			})
		}
	}

	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		// Materialize indirect edges only at call sites actually made
		// with the lock held from a normal entry: the summaries carry
		// the transitive acquired-while-held closure.
		for _, rc := range rootCalls {
			if ip == nil {
				break
			}
			for acquired := range ip.Acquired[rc.callee][rc.lock] {
				addEdge(edge{rc.lock, acquired}, rc.pos)
			}
		}

		succ := make(map[string][]string)
		for e := range edges {
			succ[e.from] = append(succ[e.from], e.to)
		}
		reaches := func(from, to string) []string {
			if from == to {
				return []string{from}
			}
			seen := map[string]bool{from: true}
			var dfs func(n string, path []string) []string
			dfs = func(n string, path []string) []string {
				path = append(path, n)
				if n == to {
					return path
				}
				for _, m := range succ[n] {
					if !seen[m] {
						seen[m] = true
						if p := dfs(m, path); p != nil {
							return p
						}
					}
				}
				return nil
			}
			return dfs(from, nil)
		}

		var sorted []edge
		for e := range edges {
			sorted = append(sorted, e)
		}
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].from != sorted[j].from {
				return sorted[i].from < sorted[j].from
			}
			return sorted[i].to < sorted[j].to
		})
		for _, e := range sorted {
			if e.from == e.to {
				report(edges[e], "lock %s acquired while already held", e.from)
				continue
			}
			if path := reaches(e.to, e.from); path != nil {
				report(edges[e], "lock order cycle: %s acquired while holding %s, but the reverse order %s -> %s is also established",
					e.to, e.from, strings.Join(path, " -> "), e.to)
			}
		}
	}
	return a
}
