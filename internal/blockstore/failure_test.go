package blockstore

import (
	"bytes"
	"errors"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/objstore"
)

// TestSealRetriesAfterPutFailure: a failed object PUT must leave the
// batch intact so the caller can retry, and the retry must produce a
// correct object.
func TestSealRetriesAfterPutFailure(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{})
	ext := block.Extent{LBA: 0, Sectors: 64}
	data := payload(1, int(ext.Bytes()))
	if err := s.Append(1, ext, data); err != nil {
		t.Fatal(err)
	}
	faulty.FailPut(objName("vol", s.Stats().NextSeq))
	if err := s.Seal(); !errors.Is(err, objstore.ErrInjected) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	// State must be unchanged: nothing durable, batch pending.
	if s.Stats().DurableWriteSeq != 0 {
		t.Fatal("failed seal advanced the watermark")
	}
	if s.Stats().PendingBatch == 0 {
		t.Fatal("failed seal dropped the batch")
	}
	// Retry succeeds and data reads back.
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().DurableWriteSeq != 1 {
		t.Fatal("retry did not destage")
	}
	if got := readAll(t, s, ext); !bytes.Equal(got, data) {
		t.Fatal("data wrong after retried seal")
	}
}

// TestCheckpointFailureKeepsOldPointer: if the superblock update
// fails, the previous checkpoint must stay authoritative so recovery
// still works.
func TestCheckpointFailureKeepsOldPointer(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{CheckpointEvery: 1 << 30})
	ext := block.Extent{LBA: 0, Sectors: 64}
	data := payload(2, int(ext.Bytes()))
	_ = s.Append(1, ext, data)
	_ = s.Seal()
	faulty.FailPut(superName("vol"))
	if err := s.Checkpoint(); !errors.Is(err, objstore.ErrInjected) {
		t.Fatalf("super failure not surfaced: %v", err)
	}
	// Recovery from the old superblock still finds everything (the
	// data object replays from the old checkpoint).
	s2, err := Open(ctx, Config{Volume: "vol", Store: faulty})
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, s2, ext); !bytes.Equal(got, data) {
		t.Fatal("data lost after failed checkpoint")
	}
}

// TestRecoveryWithNewerCheckpointObject: a checkpoint whose PUT
// completed but whose superblock update did not must be picked up
// during replay (the replayObject TypeCheckpoint path).
func TestRecoveryWithNewerCheckpointObject(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{CheckpointEvery: 1 << 30})
	ext := block.Extent{LBA: 0, Sectors: 64}
	data := payload(3, int(ext.Bytes()))
	_ = s.Append(1, ext, data)
	_ = s.Seal()
	// Checkpoint object lands; superblock write fails.
	faulty.FailPut(superName("vol"))
	_ = s.Checkpoint()
	s2, err := Open(ctx, Config{Volume: "vol", Store: faulty})
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, s2, ext); !bytes.Equal(got, data) {
		t.Fatal("data lost when replaying a stranded checkpoint")
	}
	// The stranded checkpoint became the authoritative one.
	if s2.Stats().Checkpoints == 0 && s2.Stats().Objects == 0 {
		t.Fatal("no state recovered")
	}
}

// TestAppendAfterGCFailurePath: injected failures during GC PUTs must
// not corrupt the map — data remains readable from the old objects.
func TestGCPutFailureLeavesDataReadable(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{BatchBytes: 64 * 1024, GCLowWater: 0})
	ext := block.Extent{LBA: 0, Sectors: 128}
	orig := payload(4, int(ext.Bytes()))
	_ = s.Append(1, ext, orig)
	_ = s.Seal()
	half := block.Extent{LBA: 0, Sectors: 64}
	newer := payload(5, int(half.Bytes()))
	_ = s.Append(2, half, newer)
	_ = s.Seal()
	// Fail the next PUT (the GC object).
	faulty.FailEveryNth(1)
	if err := s.RunGC(); err == nil {
		t.Fatal("GC with failing store succeeded")
	}
	faulty.FailEveryNth(0)
	want := append([]byte{}, orig...)
	copy(want, newer)
	if got := readAll(t, s, ext); !bytes.Equal(got, want) {
		t.Fatal("data unreadable after failed GC")
	}
	// A later successful GC pass still works.
	if err := s.RunGC(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, s, ext); !bytes.Equal(got, want) {
		t.Fatal("data wrong after recovered GC")
	}
}
