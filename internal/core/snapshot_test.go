package core

import (
	"bytes"
	"errors"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/simdev"
)

// TestSnapshotMountReadOnly: a snapshot mount sees the point-in-time
// image, rejects mutations, and survives concurrent divergence of the
// live volume.
func TestSnapshotMountReadOnly(t *testing.T) {
	h := newHarness(t, nil)
	orig := payload(1, 64*1024)
	if err := h.disk.WriteAt(orig, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.disk.Snapshot("s1"); err != nil {
		t.Fatal(err)
	}
	// Diverge the live volume.
	newer := payload(2, 64*1024)
	if err := h.disk.WriteAt(newer, 0); err != nil {
		t.Fatal(err)
	}
	h.disk.Drain()

	snapOpts := h.opts
	snapOpts.CacheDev = simdev.NewMem(128 * block.MiB)
	snap, err := OpenSnapshot(ctx, snapOpts, "s1")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(orig))
	if err := snap.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("snapshot mount does not show point-in-time data")
	}
	// Second read comes from the read cache, still correct.
	if err := snap.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("cached snapshot read wrong")
	}
	if err := snap.WriteAt(orig, 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("snapshot mount accepted a write: %v", err)
	}
	if err := snap.Trim(0, 4096); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("snapshot mount accepted a trim: %v", err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	// The live volume still reads its newest data.
	if err := h.disk.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newer) {
		t.Fatal("live volume disturbed by snapshot mount")
	}
}

// TestSnapshotListSurvivesRecovery: snapshot metadata is durable in
// the superblock.
func TestSnapshotListSurvivesRecovery(t *testing.T) {
	h := newHarness(t, nil)
	_ = h.disk.WriteAt(payload(3, 8192), 0)
	if _, err := h.disk.Snapshot("keep-me"); err != nil {
		t.Fatal(err)
	}
	h.disk.Close()
	h.reopen(t)
	snaps := h.disk.Snapshots()
	if len(snaps) != 1 || snaps[0].Name != "keep-me" {
		t.Fatalf("snapshots after recovery: %+v", snaps)
	}
}
