package consistency

import (
	"context"
	"math/rand"
	"testing"

	"lsvd/internal/baseline/bcache"
	"lsvd/internal/baseline/rbd"
	"lsvd/internal/block"
	"lsvd/internal/cluster"
	"lsvd/internal/core"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

var ctx = context.Background()

func TestCleanDiskIsConsistent(t *testing.T) {
	d := simdev.NewMem(16 * block.MiB)
	w, err := NewWriter(devDisk{d})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Write(int64(i%50), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Barrier(); err != nil {
		t.Fatal(err)
	}
	r, err := w.Check(devDisk{d})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Mountable || !r.CommittedPreserved {
		t.Fatalf("clean disk flagged: %+v", r)
	}
	if r.RecoveredVersion != w.Version() {
		t.Fatalf("recovered v%d want v%d", r.RecoveredVersion, w.Version())
	}
}

// devDisk adapts a simdev.Device to vdisk.Disk for direct testing.
type devDisk struct{ dev simdev.Device }

func (d devDisk) ReadAt(p []byte, off int64) error  { return d.dev.ReadAt(p, off) }
func (d devDisk) WriteAt(p []byte, off int64) error { return d.dev.WriteAt(p, off) }
func (d devDisk) Flush() error                      { return d.dev.Flush() }
func (d devDisk) Trim(off, n int64) error           { return nil }
func (d devDisk) Size() int64                       { return d.dev.Size() }

func TestDetectsNonPrefixState(t *testing.T) {
	d := simdev.NewMem(16 * block.MiB)
	w, _ := NewWriter(devDisk{d})
	// v1 -> block 0, v2 -> block 1, v3 -> block 0.
	_ = w.Write(0, 1) // v1
	_ = w.Write(1, 1) // v2
	_ = w.Write(0, 1) // v3
	// Manually revert block 1 to unwritten: the state {b0: v3, b1: -}
	// is NOT a prefix (v3 present requires v2 present).
	zero := make([]byte, block.BlockSize)
	_ = d.WriteAt(zero, 1*block.BlockSize)
	r, err := w.Check(devDisk{d})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mountable {
		t.Fatalf("non-prefix state accepted: %+v", r)
	}
}

func TestAcceptsAnyTruePrefix(t *testing.T) {
	// Build states corresponding to every prefix and check each.
	for cut := 0; cut <= 6; cut++ {
		d := simdev.NewMem(16 * block.MiB)
		w, _ := NewWriter(devDisk{d})
		writes := []struct {
			blk int64
			n   int
		}{{0, 1}, {5, 2}, {0, 1}, {3, 1}, {5, 1}, {2, 2}}
		// Apply all writes to the history but only the first `cut` to
		// a shadow device representing the recovered state.
		shadow := simdev.NewMem(16 * block.MiB)
		for i, wr := range writes {
			if err := w.Write(wr.blk, wr.n); err != nil {
				t.Fatal(err)
			}
			if i < cut {
				// Copy the blocks just written to the shadow.
				buf := make([]byte, int64(wr.n)*block.BlockSize)
				_ = d.ReadAt(buf, wr.blk*block.BlockSize)
				_ = shadow.WriteAt(buf, wr.blk*block.BlockSize)
			}
		}
		r, err := w.Check(devDisk{shadow})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Mountable {
			t.Fatalf("true prefix cut=%d rejected: %+v", cut, r)
		}
	}
}

// TestLSVDCrashIsMountable is the unit-level version of Table 4 row
// LSVD: crash with total cache loss after a drain -> mountable,
// prefix-consistent image.
func TestLSVDCrashIsMountable(t *testing.T) {
	store := objstore.NewMem()
	opts := core.Options{
		Volume: "vol", Store: store,
		CacheDev: simdev.NewMem(128 * block.MiB),
		VolBytes: 128 * block.MiB, BatchBytes: 256 * 1024,
	}
	disk, err := core.Create(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWriter(disk)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		if err := w.Write(rng.Int63n(1000), rng.Intn(4)+1); err != nil {
			t.Fatal(err)
		}
		if i%40 == 0 {
			_ = w.Barrier()
		}
	}
	// Crash with TOTAL cache loss (worst case, §3.4). Kill the old
	// stack's destage pipeline as the crash would.
	disk.Kill()
	opts.CacheDev = simdev.NewMem(128 * block.MiB)
	disk2, err := core.Open(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Check(disk2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Mountable {
		t.Fatalf("LSVD image not prefix consistent: %+v", r)
	}
}

// TestLSVDCrashWithCacheKeepsCommitted: with the cache surviving, all
// committed writes must be recovered (§3.3).
func TestLSVDCrashWithCacheKeepsCommitted(t *testing.T) {
	store := objstore.NewMem()
	cache := simdev.NewMem(128 * block.MiB)
	opts := core.Options{
		Volume: "vol", Store: store, CacheDev: cache,
		VolBytes: 128 * block.MiB, BatchBytes: 1 * block.MiB,
	}
	disk, err := core.Create(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWriter(disk)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		_ = w.Write(rng.Int63n(1000), rng.Intn(4)+1)
	}
	_ = w.Barrier()
	for i := 0; i < 50; i++ { // uncommitted tail
		_ = w.Write(rng.Int63n(1000), 1)
	}
	disk.Kill()
	cache.Crash(1.0, rand.New(rand.NewSource(9)))
	disk2, err := core.Open(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Check(disk2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Mountable {
		t.Fatalf("not mountable: %+v", r)
	}
	if !r.CommittedPreserved {
		t.Fatalf("committed writes lost: recovered v%d, committed v%d", r.RecoveredVersion, w.Committed())
	}
}

// TestBcacheCrashMidWritebackIsInconsistent reproduces Table 4's
// bcache failure: crash during LBA-order write-back leaves a state
// that is not any prefix of the history.
func TestBcacheCrashMidWritebackIsInconsistent(t *testing.T) {
	pool, err := cluster.New(cluster.SSDConfig1())
	if err != nil {
		t.Fatal(err)
	}
	backing, err := rbd.New(rbd.Options{Volume: "img", Pool: pool, VolBytes: 64 * block.MiB})
	if err != nil {
		t.Fatal(err)
	}
	c, err := bcache.New(bcache.Options{Dev: simdev.NewMem(64 * block.MiB), Backing: backing})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWriter(c)
	// Write high blocks first, then low blocks, with barriers; then a
	// partial write-back (LBA order destages the NEWER low blocks
	// first) and a crash.
	for i := 40; i < 60; i++ {
		_ = w.Write(int64(i), 1)
	}
	_ = w.Barrier()
	for i := 0; i < 20; i++ {
		_ = w.Write(int64(i), 1)
	}
	_ = w.Barrier()
	if err := c.WriteBack(10 * block.BlockSize); err != nil {
		t.Fatal(err)
	}
	recovered := c.Crash()
	r, err := w.Check(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mountable {
		t.Fatalf("bcache mid-writeback crash produced a consistent image — model broken: %+v", r)
	}
}
