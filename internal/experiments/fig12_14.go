package experiments

import (
	"context"
	"fmt"
	"time"

	"lsvd/internal/baseline/rbd"
	"lsvd/internal/cluster"
	"lsvd/internal/core"
	"lsvd/internal/iomodel"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
	"lsvd/internal/workload"
)

// backendLoadResult carries everything Figs 12-14 report for one
// system at one virtual-disk count.
type backendLoadResult struct {
	vdisks      int
	clientIOPS  float64
	utilization float64
	clientOps   uint64
	backendOps  uint64
	clientBytes uint64
	backendByte uint64
	sizes       *iomodel.SizeHistogram
}

// Fig12 reproduces Figure 12: total client IOPS vs mean backend disk
// utilization for 1..32 parallel virtual disks doing 16 KiB random
// writes at QD 32 on the 62-HDD pool (§4.5).
func Fig12(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Fig 12: write efficiency, 16KiB randwrite QD32, HDD pool",
		Header: []string{"system", "vdisks", "kIOPS", "backend util %"},
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		r, err := backendLoadLSVD(ctx, e, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"LSVD", fmt.Sprint(n), f1(r.clientIOPS / 1000), f1(r.utilization * 100)})
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		r, err := backendLoadRBD(e, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"RBD", fmt.Sprint(n), f1(r.clientIOPS / 1000), f1(r.utilization * 100)})
	}
	return t, nil
}

// Fig13 reproduces Figure 13: client vs backend I/O and byte counts
// for the 16 KiB random-write load test. Paper: RBD amplifies 6x in
// ops and bytes; LSVD generates 0.25 backend ops per client write.
func Fig13(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Fig 13: I/O and byte amplification, 16KiB randwrite",
		Header: []string{"system", "client ops", "backend ops", "op ampl", "client GiB", "backend GiB", "byte ampl"},
	}
	l, err := backendLoadLSVD(ctx, e, 8)
	if err != nil {
		return nil, err
	}
	r, err := backendLoadRBD(e, 8)
	if err != nil {
		return nil, err
	}
	for _, x := range []struct {
		name string
		r    *backendLoadResult
	}{{"LSVD", l}, {"RBD", r}} {
		t.Rows = append(t.Rows, []string{
			x.name,
			fmt.Sprint(x.r.clientOps), fmt.Sprint(x.r.backendOps),
			f2(float64(x.r.backendOps) / float64(x.r.clientOps)),
			f2(float64(x.r.clientBytes) / float64(1<<30)),
			f2(float64(x.r.backendByte) / float64(1<<30)),
			f2(float64(x.r.backendByte) / float64(x.r.clientBytes)),
		})
	}
	return t, nil
}

// Fig14 reproduces Figure 14: histogram of backend write sizes (bytes
// written per I/O-size bucket). Paper: RBD writes cluster at 16-24 KiB,
// LSVD writes cluster around 1 MiB (EC chunks) plus small metadata.
func Fig14(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Fig 14: backend bytes written vs I/O size, 16KiB randwrite",
		Header: []string{"system", "bucket", "ops", "MiB"},
	}
	l, err := backendLoadLSVD(ctx, e, 8)
	if err != nil {
		return nil, err
	}
	r, err := backendLoadRBD(e, 8)
	if err != nil {
		return nil, err
	}
	for _, x := range []struct {
		name string
		r    *backendLoadResult
	}{{"RBD", r}, {"LSVD", l}} {
		for _, row := range x.r.sizes.Buckets() {
			t.Rows = append(t.Rows, []string{
				x.name, humanSize(row.Low), fmt.Sprint(row.Count), f1(float64(row.Bytes) / (1 << 20)),
			})
		}
	}
	return t, nil
}

func humanSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprint(n)
	}
}

func backendLoadBudget(e Env) int64 {
	b := 16 * int64(1<<30) / e.Scale
	if b < 256<<20 {
		b = 256 << 20
	}
	return b
}

func backendLoadLSVD(ctx context.Context, e Env, vdisks int) (*backendLoadResult, error) {
	pool, err := cluster.New(cluster.HDDConfig2())
	if err != nil {
		return nil, err
	}
	res := &backendLoadResult{vdisks: vdisks, sizes: iomodel.NewSizeHistogram()}
	perDisk := backendLoadBudget(e) / int64(vdisks)

	// All volumes share one client machine and one cache SSD (§4.5:
	// "throughput is limited by the single client machine and its
	// single SSD"): one metered device split into per-volume sections.
	perVolCache := e.smallCache()
	if perVolCache < 48<<20 {
		perVolCache = 48 << 20
	}
	shared := simdev.NewMetered(simdev.NewMem(perVolCache*int64(vdisks)), iomodel.NVMeP3700)
	store := objstore.NewMetered(cluster.NewStore(objstore.NewMemSlim(), pool))

	var disks []*core.Disk
	for i := 0; i < vdisks; i++ {
		section, err := simdev.NewSection(shared, int64(i)*perVolCache, perVolCache)
		if err != nil {
			return nil, err
		}
		d, err := core.Create(ctx, core.Options{
			Volume: fmt.Sprintf("vol%d", i), Store: store, CacheDev: section,
			VolBytes: e.volBytes(), WriteCacheFrac: 0.6, BatchBytes: 4 << 20,
		})
		if err != nil {
			return nil, err
		}
		disks = append(disks, d)
	}
	for i, d := range disks {
		gen := &workload.Fio{Pattern: workload.RandWrite, BlockSize: 16 << 10, VolBytes: e.volBytes(), TotalBytes: perDisk, Seed: e.Seed + int64(i)}
		c, err := workload.Run(d, gen, nil, 0)
		if err != nil {
			return nil, err
		}
		res.clientOps += c.Writes
		res.clientBytes += c.BytesWritten
		if err := d.Drain(); err != nil {
			return nil, err
		}
	}
	tot := pool.Totals()
	res.backendOps = tot.WriteOps
	res.backendByte = tot.WriteBytes
	res.sizes.Merge(pool.WriteSizes())
	// Client software serializes across all volumes on the one
	// machine; additionally each volume's kernel/user path pipelines
	// only ~2 requests deep over its ~340µs round trip (Table 6), so
	// few volumes cannot saturate the client (the paper's Fig 12 curve
	// grows from ~6K IOPS at 1 vdisk to ~50K at 16).
	perVolume := time.Duration(res.clientOps/uint64(vdisks)) * 337 * time.Microsecond / 2
	clientElapsed := maxDur(
		time.Duration(res.clientOps)*lsvdSoftSerial,
		iomodel.ElapsedMeter(shared.Meter, 32),
		perVolume,
	)
	elapsed := maxDur(clientElapsed, store.ModeledTime(8*min(vdisks, 4)), pool.MaxBusy())
	res.clientIOPS = float64(res.clientOps) / elapsed.Seconds()
	res.utilization = pool.Utilization(elapsed)
	return res, nil
}

func backendLoadRBD(e Env, vdisks int) (*backendLoadResult, error) {
	pool, err := cluster.New(cluster.HDDConfig2())
	if err != nil {
		return nil, err
	}
	res := &backendLoadResult{vdisks: vdisks, sizes: iomodel.NewSizeHistogram()}
	perDisk := backendLoadBudget(e) / int64(vdisks)
	var clientElapsed time.Duration
	var netOps uint64
	for i := 0; i < vdisks; i++ {
		d, err := rbd.New(rbd.Options{Volume: fmt.Sprintf("img%d", i), Pool: pool, VolBytes: e.volBytes()})
		if err != nil {
			return nil, err
		}
		gen := &workload.Fio{Pattern: workload.RandWrite, BlockSize: 16 << 10, VolBytes: e.volBytes(), TotalBytes: perDisk, Seed: e.Seed + int64(i)}
		c, err := workload.Run(d, gen, nil, 0)
		if err != nil {
			return nil, err
		}
		res.clientOps += c.Writes
		res.clientBytes += c.BytesWritten
		el := time.Duration(c.Writes) * rbdSoftSerial
		if el > clientElapsed {
			clientElapsed = el
		}
		w, r := d.Ops()
		netOps += w + r
	}
	tot := pool.Totals()
	res.backendOps = tot.WriteOps // RBD ops are random; no merging
	res.backendByte = tot.WriteBytes
	res.sizes.Merge(pool.WriteSizes())
	// RBD is pool-limited: each write waits on replicated HDD commits.
	elapsed := maxDur(clientElapsed, pool.MaxBusy(), time.Duration(netOps)*rbdNetRTT/32/time.Duration(vdisks))
	res.clientIOPS = float64(res.clientOps) / elapsed.Seconds()
	res.utilization = pool.Utilization(elapsed)
	return res, nil
}
