//go:build lsvdcheck

package invariant

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Enabled reports whether the lsvdcheck build tag is on. Callers can
// gate expensive invariant computations on it; the Assert calls
// themselves compile to no-ops without the tag.
const Enabled = true

// Assert panics when cond is false. It exists so stated invariants
// (DESIGN.md §5e) fail loudly under `-tags lsvdcheck` instead of
// corrupting state silently; without the tag it costs nothing.
func Assert(cond bool, msg string) {
	if !cond {
		panic("lsvd invariant violated: " + msg)
	}
}

// Assertf is Assert with formatting. The arguments are only evaluated
// on failure paths in tagged builds; callers on hot paths should still
// prefer Assert with a constant message.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("lsvd invariant violated: " + fmt.Sprintf(format, args...))
	}
}

// Runtime lock-order tracking (a miniature lockdep): LockOrder is
// called just after acquiring a named lock and LockRelease just before
// releasing it. The checker maintains a per-goroutine stack of held
// locks and a global acquired-before edge set; an acquisition that
// would close a cycle — evidence that two code paths take the same two
// locks in opposite orders — panics with both orders. Edges accumulate
// across the whole run, so a violation is caught even when the two
// conflicting paths never race in this execution.
var lockState struct {
	sync.Mutex
	held  map[uint64][]string        // goroutine id -> stack of held lock names
	after map[string]map[string]bool // A -> set of B with "B acquired while A held"
	site  map[[2]string]string       // edge -> first call site that created it
}

func init() {
	lockState.held = make(map[uint64][]string)
	lockState.after = make(map[string]map[string]bool)
	lockState.site = make(map[[2]string]string)
}

// LockOrder records that the calling goroutine acquired the named
// lock, and panics if the acquisition is inconsistent with the
// acquired-before order observed so far (or re-acquires a name the
// goroutine already holds).
func LockOrder(name string) {
	g := gid()
	lockState.Lock()
	defer lockState.Unlock()
	held := lockState.held[g]
	for _, a := range held {
		if a == name {
			panic("lsvd invariant violated: lock " + name + " re-acquired while already held")
		}
		if path := orderPath(name, a); path != nil {
			panic(fmt.Sprintf(
				"lsvd invariant violated: lock order cycle: acquiring %s while holding %s, but %s was established (first at %s)",
				name, a, strings.Join(path, " -> "), lockState.site[[2]string{path[0], path[1]}]))
		}
	}
	site := callSite()
	for _, a := range held {
		if lockState.after[a] == nil {
			lockState.after[a] = make(map[string]bool)
		}
		if !lockState.after[a][name] {
			lockState.after[a][name] = true
			lockState.site[[2]string{a, name}] = site
		}
	}
	lockState.held[g] = append(held, name)
}

// LockRelease records that the calling goroutine released the named
// lock. Releases need not be LIFO (lock-drop protocols release the
// outer lock mid-section); the name is removed wherever it sits.
func LockRelease(name string) {
	g := gid()
	lockState.Lock()
	defer lockState.Unlock()
	held := lockState.held[g]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == name {
			held = append(held[:i], held[i+1:]...)
			break
		}
	}
	if len(held) == 0 {
		delete(lockState.held, g)
	} else {
		lockState.held[g] = held
	}
}

// orderPath returns an acquired-before chain from -> ... -> to if one
// exists in the recorded edges (lockState must be held).
func orderPath(from, to string) []string {
	if from == to {
		return []string{from, to}
	}
	seen := map[string]bool{from: true}
	var dfs func(n string, path []string) []string
	dfs = func(n string, path []string) []string {
		for m := range lockState.after[n] {
			if m == to {
				return append(append(path, n), to)
			}
			if !seen[m] {
				seen[m] = true
				if p := dfs(m, path); p != nil {
					return p
				}
			}
		}
		return nil
	}
	return dfs(from, nil)
}

// gid extracts the current goroutine id from the runtime stack header
// ("goroutine N [running]:"). Slow, which is fine: this file only
// exists under the lsvdcheck tag.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := strings.TrimPrefix(string(buf[:n]), "goroutine ")
	if i := strings.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseUint(s[:i], 10, 64); err == nil {
			return id
		}
	}
	return 0
}

func callSite() string {
	if _, file, line, ok := runtime.Caller(2); ok {
		if i := strings.LastIndexByte(file, '/'); i >= 0 {
			file = file[i+1:]
		}
		return file + ":" + strconv.Itoa(line)
	}
	return "?"
}
