package journal

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lsvd/internal/block"
)

func sampleHeader(dataLen int) *Header {
	return &Header{
		Type:     TypeData,
		Seq:      42,
		WriteSeq: 1000,
		Extents: []ExtentEntry{
			{LBA: 8, Sectors: 8, SrcSeq: 42},
			{LBA: 4096, Sectors: uint32(dataLen/block.SectorSize - 8), SrcSeq: 42},
		},
		DataLen: uint64(dataLen),
	}
}

func TestRoundTripUnaligned(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 16*block.SectorSize)
	h := sampleHeader(len(data))
	rec, err := Encode(h, data, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != HeaderSize(2)+len(data) {
		t.Fatalf("record length %d", len(rec))
	}
	h2, d2, n, err := Decode(rec, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rec) || !bytes.Equal(d2, data) {
		t.Fatalf("decode: n=%d", n)
	}
	if h2.Seq != h.Seq || h2.WriteSeq != h.WriteSeq || h2.Type != h.Type || len(h2.Extents) != 2 {
		t.Fatalf("header mismatch: %+v", h2)
	}
	if h2.Extents[1] != h.Extents[1] {
		t.Fatalf("extent mismatch: %+v", h2.Extents[1])
	}
}

func TestRoundTripAligned(t *testing.T) {
	data := bytes.Repeat([]byte{0x5C}, 3*block.SectorSize) // deliberately not 4K multiple
	h := &Header{Type: TypeData, Seq: 7, Extents: []ExtentEntry{{LBA: 100, Sectors: 3}}, DataLen: uint64(len(data))}
	rec, err := Encode(h, data, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec)%block.BlockSize != 0 {
		t.Fatalf("aligned record not 4K multiple: %d", len(rec))
	}
	h2, d2, _, err := Decode(rec, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d2, data) || h2.Seq != 7 {
		t.Fatal("aligned round trip mismatch")
	}
}

func TestDataLenMismatchRejected(t *testing.T) {
	h := sampleHeader(4096)
	if _, err := Encode(h, make([]byte, 8192), false); err == nil {
		t.Fatal("mismatched data length accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 1024)
	h := sampleHeader(len(data))
	rec, _ := Encode(h, data, false)

	for _, pos := range []int{0, 5, 17, crcOffset, HeaderSize(2) + 10, len(rec) - 1} {
		mut := make([]byte, len(rec))
		copy(mut, rec)
		mut[pos] ^= 0xFF
		if _, _, _, err := Decode(mut, false); err == nil {
			t.Fatalf("corruption at byte %d not detected", pos)
		}
	}
}

func TestShortBuffer(t *testing.T) {
	data := make([]byte, 4096)
	rec, _ := Encode(sampleHeader(len(data)), data, false)
	for _, n := range []int{0, 10, headerFixed - 1, headerFixed + 3, len(rec) - 1} {
		if _, _, _, err := Decode(rec[:n], false); err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
}

func TestPadRecord(t *testing.T) {
	h := &Header{Type: TypePad, Seq: 9}
	rec, err := Encode(h, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != block.BlockSize {
		t.Fatalf("pad record is %d bytes", len(rec))
	}
	h2, _, _, err := Decode(rec, true)
	if err != nil || h2.Type != TypePad {
		t.Fatalf("pad decode: %v %+v", err, h2)
	}
}

func TestDataSectors(t *testing.T) {
	h := sampleHeader(16 * block.SectorSize)
	if h.DataSectors() != 16 {
		t.Fatalf("DataSectors=%d", h.DataSectors())
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{
		TypeData: "data", TypeCheckpoint: "checkpoint", TypeSuper: "super",
		TypeTrim: "trim", TypePad: "pad", TypeGC: "gc", Type(99): "type(99)",
	} {
		if got := ty.String(); got != want {
			t.Errorf("Type(%d).String()=%q want %q", uint32(ty), got, want)
		}
	}
}

// Property: any header with random extents and random data round-trips
// exactly in both aligned and unaligned modes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seq, writeSeq uint64, nExt uint8, dataBlocks uint8, align bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nExt%32) + 1
		exts := make([]ExtentEntry, n)
		for i := range exts {
			exts[i] = ExtentEntry{LBA: block.LBA(rng.Uint64() % (1 << 40)), Sectors: uint32(rng.Intn(1<<16) + 1), SrcSeq: rng.Uint64()}
		}
		data := make([]byte, (int(dataBlocks%16)+1)*block.SectorSize)
		rng.Read(data)
		h := &Header{Type: TypeData, Seq: seq, WriteSeq: writeSeq, Extents: exts, DataLen: uint64(len(data))}
		rec, err := Encode(h, data, align)
		if err != nil {
			return false
		}
		h2, d2, total, err := Decode(rec, align)
		if err != nil || total != len(rec) || !bytes.Equal(d2, data) {
			return false
		}
		if h2.Seq != seq || h2.WriteSeq != writeSeq || len(h2.Extents) != n {
			return false
		}
		for i := range exts {
			if h2.Extents[i] != exts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of an encoded record makes Decode
// fail (detected by magic, length sanity, or CRC).
func TestQuickCorruptionAlwaysDetected(t *testing.T) {
	data := bytes.Repeat([]byte{0xEE, 0x11}, 2048)
	rec, _ := Encode(sampleHeader(len(data)), data, false)
	f := func(pos uint16, mask uint8) bool {
		if mask == 0 {
			return true // no-op flip
		}
		p := int(pos) % len(rec)
		mut := make([]byte, len(rec))
		copy(mut, rec)
		mut[p] ^= mask
		_, _, _, err := Decode(mut, false)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode32MB(b *testing.B) {
	data := make([]byte, 32*block.MiB)
	exts := make([]ExtentEntry, 2048)
	for i := range exts {
		exts[i] = ExtentEntry{LBA: block.LBA(i * 64), Sectors: 32, SrcSeq: 1}
	}
	h := &Header{Type: TypeData, Seq: 1, Extents: exts, DataLen: uint64(len(data))}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(h, data, false); err != nil {
			b.Fatal(err)
		}
	}
}
