package lsvd

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (DESIGN.md §3 maps each to its driver), plus
// raw data-path micro-benchmarks of the library itself.
//
// The experiment benchmarks execute the full scaled experiment once
// per iteration and report the run time; the tables themselves are
// printed in verbose mode and saved by `go run ./cmd/lsvd-bench`.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lsvd/internal/experiments"
)

var benchEnv = experiments.Env{Scale: 64, Seed: 1}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(ctx, benchEnv, name)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tab.String())
		}
	}
}

// ---- one benchmark per paper table/figure ----

func BenchmarkFig06RandWrite(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig07RandRead(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkSec421SeqRead(b *testing.B)       { benchExperiment(b, "seqread") }
func BenchmarkFig08Filebench(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkTable03Signatures(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFig09SmallCacheRand(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkFig10SmallCacheSeq(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11Writeback(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkTable04Crash(b *testing.B)        { benchExperiment(b, "table4") }
func BenchmarkFig12BackendLoad(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13Amplification(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14WriteSizes(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15GC(b *testing.B)             { benchExperiment(b, "fig15") }
func BenchmarkSec46GCSlowdown(b *testing.B)     { benchExperiment(b, "gcslowdown") }
func BenchmarkTable06Breakdown(b *testing.B)    { benchExperiment(b, "table6") }
func BenchmarkFig16Replication(b *testing.B)    { benchExperiment(b, "fig16") }
func BenchmarkSec49Cost(b *testing.B)           { benchExperiment(b, "sec49") }

// Table 5 runs the 9-trace GC simulation matrix; it is the heaviest
// experiment, so it runs at a harder scale through the same driver.
func BenchmarkTable05GCSim(b *testing.B) { benchExperiment(b, "table5") }

// ---- library data-path micro-benchmarks ----

func newBenchDisk(b *testing.B, cacheBytes, volBytes int64) *Disk {
	b.Helper()
	d, err := Create(context.Background(), VolumeOptions{
		Name: fmt.Sprintf("bench-%d", rand.Int63()), Store: MemStore(),
		Cache: MemCacheDevice(cacheBytes), Size: volBytes,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkDiskWrite4K(b *testing.B) {
	d := newBenchDisk(b, 1*GiB, 1*GiB)
	buf := make([]byte, 4096)
	blocks := d.Size() / 4096
	rng := rand.New(rand.NewSource(1))
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.WriteAt(buf, rng.Int63n(blocks)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskWrite64K(b *testing.B) {
	d := newBenchDisk(b, 1*GiB, 1*GiB)
	buf := make([]byte, 64*1024)
	blocks := d.Size() / (64 * 1024)
	rng := rand.New(rand.NewSource(1))
	b.SetBytes(64 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.WriteAt(buf, rng.Int63n(blocks)*64*1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskReadHit4K(b *testing.B) {
	d := newBenchDisk(b, 1*GiB, 256*MiB)
	buf := make([]byte, 4096)
	// Populate so reads hit the write cache.
	for off := int64(0); off < d.Size(); off += 4096 {
		if err := d.WriteAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
	blocks := d.Size() / 4096
	rng := rand.New(rand.NewSource(1))
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ReadAt(buf, rng.Int63n(blocks)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskFlush(b *testing.B) {
	d := newBenchDisk(b, 256*MiB, 256*MiB)
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.WriteAt(buf, int64(i%1000)*4096); err != nil {
			b.Fatal(err)
		}
		if err := d.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out
// (prefetch, GC-from-cache, coalescing, eviction policy, SSD
// pass-through).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// slowPutStore adds a fixed latency to every backend PUT, modeling an
// S3 endpoint, so the ack-latency benchmarks show what the write path
// waits on.
type slowPutStore struct {
	ObjectStore
	delay time.Duration
}

func (s *slowPutStore) Put(ctx context.Context, name string, data []byte) error {
	time.Sleep(s.delay)
	return s.ObjectStore.Put(ctx, name, data)
}

func newDestageBenchDisk(b *testing.B, sync bool) *Disk {
	b.Helper()
	d, err := Create(context.Background(), VolumeOptions{
		Name:  fmt.Sprintf("bench-%d", rand.Int63()),
		Store: &slowPutStore{ObjectStore: MemStore(), delay: time.Millisecond},
		Cache: MemCacheDevice(1 * GiB), Size: 1 * GiB,
		BatchBytes:  256 * KiB, // seal often so destage latency matters
		SyncDestage: sync,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func benchWriteAck(b *testing.B, sync bool) {
	d := newDestageBenchDisk(b, sync)
	defer d.Close()
	buf := make([]byte, 4096)
	blocks := d.Size() / 4096
	b.SetBytes(4096)
	b.ResetTimer()
	// Sequential stream: extents coalesce so the maps stay small and
	// the measured cost is the destage path, not map maintenance.
	for i := 0; i < b.N; i++ {
		if err := d.WriteAt(buf, int64(i)%blocks*4096); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// Write-acknowledgement latency with the destage pipeline disabled:
// every 256 KiB batch seals inline, so the 1 ms backend PUT lands on
// the write path.
func BenchmarkDiskWriteAckSync4K(b *testing.B) { benchWriteAck(b, true) }

// The same workload with the async pipeline: PUTs overlap with new
// writes and the ack waits only for the local log append.
func BenchmarkDiskWriteAckAsync4K(b *testing.B) { benchWriteAck(b, false) }

// BenchmarkDiskConcurrentReads measures read throughput with many
// readers on one volume — the lock-free read path lets them proceed
// in parallel.
func BenchmarkDiskConcurrentReads(b *testing.B) {
	d := newBenchDisk(b, 1*GiB, 256*MiB)
	defer d.Close()
	buf := make([]byte, 4096)
	for off := int64(0); off < d.Size(); off += 4096 {
		if err := d.WriteAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
	blocks := d.Size() / 4096
	b.SetBytes(4096)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rd := make([]byte, 4096)
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			if err := d.ReadAt(rd, rng.Int63n(blocks)*4096); err != nil {
				b.Fatal(err)
			}
		}
	})
}
