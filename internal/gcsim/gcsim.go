// Package gcsim runs the trace-driven garbage-collection simulations
// of the paper's Table 5 (§4.6): LSVD's write batching and greedy GC
// driven by synthetic CloudPhysics-like traces, reporting write
// amplification, final extent-map size, and the intra-batch merge
// ratio, in the paper's three configurations — no merge, merge, and
// merge + defragmentation (hole plugging).
//
// The simulator is not a separate model: it drives the real
// blockstore implementation over a zero-elided in-memory object store,
// so the numbers measure the actual production code paths.
package gcsim

import (
	"context"
	"fmt"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/objstore"
	"lsvd/internal/workload"
)

// Mode selects the Table 5 column group.
type Mode int

const (
	// NoMerge disables intra-batch coalescing.
	NoMerge Mode = iota
	// Merge coalesces within batches (the default LSVD behaviour).
	Merge
	// Defrag additionally plugs <=8 KiB map holes during GC.
	Defrag
)

func (m Mode) String() string {
	switch m {
	case NoMerge:
		return "no merge"
	case Merge:
		return "merge"
	default:
		return "defrag"
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// BatchBytes is the write batch size (paper: 32 MiB for Table 5).
	BatchBytes int64
	// GCLowWater / GCHighWater are the collection thresholds
	// (paper: 0.70 start, 0.75 stop).
	GCLowWater, GCHighWater float64
	// ScaleDown divides the trace volume (and footprint) so runs
	// finish quickly; ratios are scale-free.
	ScaleDown float64
	// DefragHoleSectors for Defrag mode (paper: 8 KiB = 16 sectors).
	DefragHoleSectors uint32
}

// Defaults returns the paper's Table 5 configuration at the given
// scale-down factor. The batch size scales with the trace so that the
// dimensionless ratio that drives coalescing and GC behaviour — batch
// bytes per footprint byte — matches the paper's 32 MiB at full scale.
func Defaults(scaleDown float64) Config {
	batch := int64(float64(32*block.MiB) / scaleDown)
	if batch < 128<<10 {
		batch = 128 << 10
	}
	if batch > 32*block.MiB {
		batch = 32 * block.MiB
	}
	return Config{
		BatchBytes: batch, GCLowWater: 0.70, GCHighWater: 0.75,
		ScaleDown: scaleDown, DefragHoleSectors: 16,
	}
}

// Result is one (trace, mode) cell of Table 5.
type Result struct {
	Trace    string
	Mode     Mode
	WriteGB  float64 // client volume actually simulated (scaled)
	Extents  int     // final extent-map size
	WAF      float64 // backend bytes / client bytes
	MergeRat float64 // fraction of client bytes eliminated by batching
	Objects  int
	GCRuns   uint64
}

// Simulate runs one trace in one mode.
func Simulate(ctx context.Context, spec workload.TraceSpec, mode Mode, cfg Config) (Result, error) {
	tr := &workload.Trace{Spec: spec, ScaleDown: cfg.ScaleDown}
	volBytes := tr.VolBytes()

	bs, err := blockstore.Create(ctx, blockstore.Config{
		Volume:          "sim-" + spec.ID,
		Store:           objstore.NewMemSlim(),
		VolSectors:      block.LBAFromBytes(volBytes),
		BatchBytes:      cfg.BatchBytes,
		GCLowWater:      cfg.GCLowWater,
		GCHighWater:     cfg.GCHighWater,
		CheckpointEvery: 64, // releases deferred deletes; ckpt bytes don't count in WAF
		NoCoalesce:      mode == NoMerge,
		DefragHoleSectors: func() uint32 {
			if mode == Defrag {
				return cfg.DefragHoleSectors
			}
			return 0
		}(),
	})
	if err != nil {
		return Result{}, err
	}

	var ws uint64
	for {
		op, ok := tr.Next()
		if !ok {
			break
		}
		ws++
		ext := block.Extent{LBA: block.LBAFromBytes(op.Off), Sectors: uint32(op.Len / block.SectorSize)}
		if err := bs.Append(ws, ext, make([]byte, op.Len)); err != nil {
			return Result{}, fmt.Errorf("trace %s: %w", spec.ID, err)
		}
	}
	if err := bs.Seal(); err != nil {
		return Result{}, err
	}
	// A final checkpoint releases pending deletes so object counts are
	// honest.
	if err := bs.Checkpoint(); err != nil {
		return Result{}, err
	}

	st := bs.Stats()
	r := Result{
		Trace:   spec.ID,
		Mode:    mode,
		WriteGB: float64(st.BytesAppended) / float64(block.GiB),
		Extents: st.MapExtents,
		Objects: st.Objects,
		GCRuns:  st.GCRuns,
	}
	if st.BytesAppended > 0 {
		r.WAF = float64(st.BytesPut) / float64(st.BytesAppended)
		r.MergeRat = float64(st.BytesCoalesced) / float64(st.BytesAppended)
	}
	return r, nil
}

// Row aggregates the three modes for one trace — one row of Table 5.
type Row struct {
	Trace                           string
	WriteGB                         float64
	ExtNoMerge, ExtMerge, ExtDefrag int
	WAFNoMerge, WAFMerge, WAFDefrag float64
	MergeRatio                      float64
}

// Table5 simulates all paper traces in all three modes.
func Table5(ctx context.Context, cfg Config) ([]Row, error) {
	var rows []Row
	for _, spec := range workload.PaperTraces {
		row := Row{Trace: spec.ID}
		for _, mode := range []Mode{NoMerge, Merge, Defrag} {
			res, err := Simulate(ctx, spec, mode, cfg)
			if err != nil {
				return nil, err
			}
			row.WriteGB = res.WriteGB
			switch mode {
			case NoMerge:
				row.ExtNoMerge, row.WAFNoMerge = res.Extents, res.WAF
			case Merge:
				row.ExtMerge, row.WAFMerge = res.Extents, res.WAF
				row.MergeRatio = res.MergeRat
			case Defrag:
				row.ExtDefrag, row.WAFDefrag = res.Extents, res.WAF
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
