package analysis

import (
	"go/ast"
	"go/types"
)

// errclass enforces the failure-model contract from PR 2: inside the
// data-path packages, every objstore.Store operation must flow through
// a path that classifies transient-vs-terminal errors — the
// objstore.Retrier wrapper, a struct field annotated
// //lsvd:classifies-errors (the blockstore's Config.Store, wrapped by
// setDefaults), or an enclosing function so annotated because it does
// its own classification (ErrNotFound probes). A raw store call in
// these packages either retries nothing (one transient S3 hiccup fails
// a write) or retries forever (a terminal NoSuchKey loops), and both
// bugs ship silently because the happy path never exercises them.
func newErrclass() *Analyzer {
	scope := map[string]bool{
		"lsvd/internal/core":        true,
		"lsvd/internal/blockstore":  true,
		"lsvd/internal/host":        true,
		"lsvd/internal/consistency": true,
		"lsvd/vettest/errclass":     true, // the golden self-test package
	}
	a := &Analyzer{
		Name: "errclass",
		Doc:  "objstore calls in data-path packages must flow through error classification",
	}
	a.Run = func(pass *Pass) {
		if !scope[pass.Pkg.Path()] {
			return
		}
		for fn, fd := range declaredFuncs(pass) {
			classified := pass.Ann.Classifies[fn]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(pass.Info, call)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != objstorePath {
					return true
				}
				if _, isOp := blockingCallee(callee); !isOp {
					return true
				}
				if classified || receiverClassified(pass, call) {
					return true
				}
				pass.Reportf(call.Pos(),
					"raw objstore.%s call: route it through objstore.Retrier or an //lsvd:classifies-errors path",
					callee.Name())
				return true
			})
		}
	}
	return a
}

// receiverClassified reports whether the call's receiver is a
// classifying path: an objstore.Retrier value, or a selector resolving
// to an //lsvd:classifies-errors field.
func receiverClassified(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if tv, ok := pass.Info.Types[sel.X]; ok && isRetrier(tv.Type) {
		return true
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return pass.Ann.Classifies[pass.Info.Uses[x.Sel]]
	case *ast.Ident:
		return pass.Ann.Classifies[pass.Info.Uses[x]]
	}
	return false
}

func isRetrier(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Retrier" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == objstorePath
}
