package blockstore

import (
	"fmt"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/journal"
)

// Lookup returns the block store's coverage of ext: present runs carry
// (object, sector-offset) targets, absent runs are uninitialized disk
// ranges that read as zeros (§3.2).
func (s *Store) Lookup(ext block.Extent) []extmap.Run {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.Lookup(ext)
}

// LookupInto is Lookup appending into a caller-owned buffer, so hot
// read paths can look up many extents with one allocation.
func (s *Store) LookupInto(dst []extmap.Run, ext block.Extent) []extmap.Run {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.LookupAppend(dst, ext)
}

// ReadRun fetches the data for one present run returned by Lookup,
// using a single range GET.
func (s *Store) ReadRun(run extmap.Run) ([]byte, error) {
	if !run.Present {
		return nil, fmt.Errorf("blockstore: ReadRun on absent run %v", run.Extent)
	}
	s.mu.RLock()
	name := s.name(run.Target.Obj)
	s.mu.RUnlock()
	data, err := s.cfg.Store.GetRange(s.ctx, name, run.Target.Off.Bytes(), run.Bytes())
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != run.Bytes() {
		return nil, fmt.Errorf("blockstore: short object read: %d of %d bytes", len(data), run.Bytes())
	}
	return data, nil
}

// Prefetched is extra data retrieved alongside a read miss, destined
// for the read cache.
type Prefetched struct {
	Ext  block.Extent
	Data []byte
}

// FetchRun fetches the data for run plus up to windowSectors of
// adjacent object data. Because the object stream is temporal,
// adjacency in the object means "written at the same time", so this is
// the paper's temporal prefetch (§3.2): the extras are whatever
// virtual-disk ranges were logged next to the requested data, verified
// still live in the map before being returned.
//
// It is a convenience wrapper over FetchSpan/WindowExtras for callers
// fetching one run at a time; the core's read path drives those
// directly so it can scatter into the caller's buffer and keep the
// window alive across the asynchronous cache admission.
func (s *Store) FetchRun(run extmap.Run, windowSectors uint32) ([]byte, []Prefetched, error) {
	f, err := s.FetchSpan([]extmap.Run{run}, windowSectors)
	if err != nil {
		return nil, nil, err
	}
	defer f.Release()
	sl, err := f.Slice(run)
	if err != nil {
		return nil, nil, err
	}
	data := append(make([]byte, 0, len(sl)), sl...)
	var extras []Prefetched
	if windowSectors > 0 {
		extras = s.WindowExtras(f, []block.Extent{run.Extent})
	}
	return data, extras, nil
}

// hdrFlight is an in-progress header fetch shared by concurrent misses.
type hdrFlight struct {
	done chan struct{}
	h    *hdrEntry
	err  error
}

// header returns the cached or fetched extent header of an object. On a
// cache miss the backend fetch happens WITHOUT s.mu held, guarded by a
// per-seq in-flight entry so concurrent misses share one fetch and map
// lookups never stall behind a header GET (previously headerL fetched
// under the store lock, serializing every lookup behind the backend).
func (s *Store) header(seq uint32) (*hdrEntry, error) {
	s.mu.RLock()
	h, ok := s.hdrCache[seq]
	name := s.name(seq)
	s.mu.RUnlock()
	if ok {
		return h, nil
	}
	s.hdrMu.Lock()
	if f, ok := s.hdrFlights[seq]; ok {
		s.hdrMu.Unlock()
		<-f.done
		return f.h, f.err
	}
	f := &hdrFlight{done: make(chan struct{})}
	s.hdrFlights[seq] = f
	s.hdrMu.Unlock()

	s.fetchStats.headerFetches.Add(1)
	f.h, f.err = fetchHeader(s, name)
	if f.err == nil {
		s.mu.Lock()
		// The object may have been deleted while we fetched; caching
		// its header is harmless (pruned like any other entry).
		s.hdrCache[seq] = f.h
		s.pruneHdrCache()
		s.mu.Unlock()
	}
	s.hdrMu.Lock()
	delete(s.hdrFlights, seq)
	s.hdrMu.Unlock()
	close(f.done)
	return f.h, f.err
}

// headerGCLocked returns seq's header for a GC pass holding s.mu,
// dropping the lock for the backend fetch on a cache miss. Callers must
// revalidate any map/object state captured before the call (the gcBusy
// claim keeps passes single-flight, but seals and commits proceed while
// the lock is down).
//
//lsvd:requires bs.mu
func (s *Store) headerGCLocked(seq uint32) (*hdrEntry, error) {
	if h, ok := s.hdrCache[seq]; ok {
		return h, nil
	}
	s.mu.Unlock()
	h, err := s.header(seq)
	s.mu.Lock()
	return h, err
}

func fetchHeader(s *Store, name string) (*hdrEntry, error) {
	probe, err := s.cfg.Store.GetRange(s.ctx, name, 0, block.BlockSize)
	if err != nil {
		return nil, err
	}
	need := journal.HeaderSize(int(headerExtentCount(probe)))
	need = (need + block.SectorSize - 1) &^ (block.SectorSize - 1)
	buf := probe
	if need > len(probe) {
		if buf, err = s.cfg.Store.GetRange(s.ctx, name, 0, int64(need)); err != nil {
			return nil, err
		}
	}
	hdr, _, err := journal.DecodeHeader(buf)
	if err != nil {
		return nil, fmt.Errorf("blockstore: header of %s unreadable: %w", name, err)
	}
	hs := journal.HeaderSize(len(hdr.Extents))
	hs = (hs + block.SectorSize - 1) &^ (block.SectorSize - 1)
	return &hdrEntry{extents: hdr.Extents, hdrSectors: uint32(hs / block.SectorSize)}, nil
}

// headerExtentCount peeks the extent count field of an encoded header.
func headerExtentCount(buf []byte) uint32 {
	if len(buf) < 44 {
		return 0
	}
	return uint32(buf[40]) | uint32(buf[41])<<8 | uint32(buf[42])<<16 | uint32(buf[43])<<24
}
