// Package writecache implements LSVD's log-structured write-back cache
// (paper §3.1, Fig 2): incoming writes are persisted as sequential log
// records on the cache SSD — a 4 KiB-aligned header carrying the
// virtual LBA, sequence number and CRC, followed by the data — and
// indexed by an in-memory extent map from vLBA to physical SSD
// location.
//
// Because the cache is a log:
//
//   - write ordering is preserved, which lets the block store preserve
//     it too (prefix consistency);
//   - small random writes become sequential SSD writes;
//   - a commit barrier is a single device flush — no metadata pages
//     need be written (the map is recoverable from the record
//     headers), the property behind the paper's 4x varmail win over
//     bcache (§4.2.2).
//
// The log is a circular buffer. Records are reclaimed strictly FIFO
// and only after the core marks them destaged to the backend; the map
// is periodically checkpointed to a reserved SSD region to bound
// replay time (§3.3).
//
// Appends use a reserve/commit group-commit protocol (DESIGN.md §5f):
// Reserve claims ring space and a sequence number under a short
// metadata-only lock; Commit frames the record off-lock and hands it
// to a group-commit leader, which lands many queued records with one
// vectored device write per contiguous span. A write is acknowledged
// (Commit returns) only after its device write completed and its map
// update was applied in sequence order, so Flush stays a single device
// flush with no extra fencing.
package writecache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/invariant"
	"lsvd/internal/journal"
	"lsvd/internal/simdev"
)

// ErrFull is returned by Reserve/Append when the log cannot admit the
// record because the head of the ring has not yet been destaged to the
// backend; the caller must destage and mark progress, then retry.
var ErrFull = errors.New("writecache: log full of un-destaged records")

const (
	superSlot0 = 0
	superSlot1 = block.BlockSize
	ckptStart  = 2 * block.BlockSize
)

// Config configures a cache instance.
type Config struct {
	// CheckpointBytes reserves space for two rotating map checkpoint
	// slots. Default 16 MiB.
	CheckpointBytes int64
	// CheckpointEvery triggers an automatic checkpoint after this many
	// appended records. Default 8192. Zero disables automatic
	// checkpoints (explicit Checkpoint calls still work).
	CheckpointEvery int

	// GroupMaxRecords caps how many queued records one group-commit
	// device write absorbs. Default 128.
	GroupMaxRecords int
	// GroupMaxBytes caps the byte size of one group-commit batch.
	// Default 8 MiB.
	GroupMaxBytes int64
	// GroupStall is how long the group-commit leader lingers after
	// draining its queue, waiting for more writers to batch with,
	// before giving up leadership. Zero (the default) never stalls:
	// batching comes only from natural concurrency.
	GroupStall time.Duration
}

func (c *Config) setDefaults() {
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = 16 * block.MiB
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8192
	}
	if c.GroupMaxRecords == 0 {
		c.GroupMaxRecords = 128
	}
	if c.GroupMaxBytes == 0 {
		c.GroupMaxBytes = 8 * block.MiB
	}
}

type recState uint8

const (
	// recWritten: device write complete and map update applied.
	recWritten recState = iota
	// recReserved: ring space claimed, group device write pending.
	recReserved
)

// record is the in-memory ring index entry for one live log record.
type record struct {
	off      int64 // byte offset of the header on the device
	size     int64 // total record bytes (header + padded data)
	seq      uint64
	writeSeq uint64
	typ      journal.Type
	ext      block.Extent // data extent (zero for pads)
	state    recState
}

func (r *record) dataOff() int64 { return r.off + int64(journal.AlignedHeaderSize(1)) }

// BatchHistBuckets is the number of group-commit batch-size histogram
// buckets: batch sizes 1, 2, 3-4, 5-8, ... in powers of two, with the
// last bucket collecting everything larger.
const BatchHistBuckets = 9

// Stats reports cache occupancy and activity.
type Stats struct {
	LogBytes      int64  // capacity of the log area
	UsedBytes     int64  // bytes between head and tail
	DirtyBytes    int64  // bytes not yet destaged to the backend
	Records       int    // live records in the ring
	MapExtents    int    // extent map entries
	Appends       uint64 // records appended since open
	Evictions     uint64 // records reclaimed
	Checkpoints   uint64
	MaxWriteSeq   uint64 // newest client write in the log
	DestagedSeq   uint64 // newest client write known durable remotely
	RecoveredRecs int    // records rebuilt from the log scan at open
	ReplayedRecs  int    // records RecordsAfter handed back to the backend
	ReplayedBytes int64  // payload bytes of those records

	// Group-commit activity.
	GroupBatches  uint64                   // group device-write rounds
	GroupRecords  uint64                   // records landed by those rounds
	DevWrites     uint64                   // vectored span writes issued
	ReserveWaits  uint64                   // Reserve blocked on an in-flight group write
	BatchSizeHist [BatchHistBuckets]uint64 // batch-size distribution (1,2,≤4,≤8,…)
}

// batchHistBucket maps a batch size to its histogram bucket.
func batchHistBucket(n int) int {
	b := 0
	for n > 1 && b < BatchHistBuckets-1 {
		n = (n + 1) / 2
		b++
	}
	return b
}

// pendingRec is one committed-but-unwritten record queued for the
// group-commit leader: the framed header, the caller's payload, and
// the completion signal closed once the record is written and mapped.
type pendingRec struct {
	rec  *record
	hdr  []byte
	data []byte
	pad  int64
	done chan struct{}
	err  error
}

// Reservation is a claim on ring space returned by Reserve; exactly
// one Commit must follow every successful Reserve.
type Reservation struct {
	rec     *record
	dataLen int
}

// zeroPad backs the trailing-padding slices of vectored record writes;
// records are 4 KiB-padded, so a record's tail pad is < 4 KiB.
var zeroPad [block.BlockSize]byte

// Cache is a log-structured write-back cache on a block device.
// Metadata mutations take the write lock; lookups and data reads share
// the read lock, so concurrent readers never block each other and an
// eviction can never reuse log space out from under an in-progress
// read. Group-commit device writes run outside the lock entirely:
// they touch only reserved (unmapped, unevictable) ring space, which
// no reader can reach.
type Cache struct {
	mu  sync.RWMutex //lsvd:lock wcache.mu
	dev simdev.Device
	cfg Config

	logStart, logEnd int64
	head, tail       int64 // byte offsets into [logStart, logEnd)
	used             int64
	nextSeq          uint64
	maxWriteSeq      uint64
	destagedSeq      uint64
	superGen         uint64
	ckptSlot         int // which slot the next checkpoint uses (0/1)

	ring []*record // FIFO of live records, oldest first
	m    *extmap.Map

	// Group-commit state. gmu guards only the commit queue, leadership
	// flag and in-flight commit count, and is never held together with
	// mu.
	gmu        sync.Mutex //lsvd:lock wcache.gmu
	commitq    []*pendingRec
	leaderBusy bool
	committing int        // Commit calls between enqueue and ack
	qcond      *sync.Cond // broadcast when committing drops to zero

	// mapSeq is the next record sequence whose map update may be
	// applied; pendingMap holds device-written records (nil for pads,
	// which are written inline at reserve time) awaiting their turn so
	// that map updates — and therefore acks — happen in reserve order.
	mapSeq      uint64
	pendingMap  map[uint64]*pendingRec
	writtenCond *sync.Cond // broadcast when records transition to written
	ioErr       error      // sticky group device-write failure

	appends, evictions, checkpoints uint64
	groupBatches, groupRecords      uint64
	devWrites, reserveWaits         uint64
	batchHist                       [BatchHistBuckets]uint64
	sinceCkpt                       int
	recovered                       int
	replayedRecs                    int
	replayedBytes                   int64
}

// Format initializes a device as an empty cache and returns it opened.
func Format(dev simdev.Device, cfg Config) (*Cache, error) {
	cfg.setDefaults()
	c := &Cache{dev: dev, cfg: cfg, m: extmap.New(), nextSeq: 1}
	c.init()
	c.logStart = ckptStart + cfg.CheckpointBytes
	c.logEnd = dev.Size() &^ (block.BlockSize - 1)
	if c.logEnd-c.logStart < 4*block.MiB {
		return nil, fmt.Errorf("writecache: device of %d bytes too small (log area %d)", dev.Size(), c.logEnd-c.logStart)
	}
	c.head, c.tail = c.logStart, c.logStart
	c.mapSeq = c.nextSeq
	//lsvd:ignore construction runs single-goroutine before the cache is published; wcache.mu cannot be contended
	if err := c.checkpointLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Open recovers a cache from a formatted device: it loads the latest
// checkpoint and replays the log tail, stopping at the first record
// whose magic, CRC or sequence number does not line up (§3.3).
func Open(dev simdev.Device, cfg Config) (*Cache, error) {
	cfg.setDefaults()
	c := &Cache{dev: dev, cfg: cfg, m: extmap.New()}
	c.init()
	c.logStart = ckptStart + cfg.CheckpointBytes
	c.logEnd = dev.Size() &^ (block.BlockSize - 1)
	if err := c.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := c.replay(); err != nil {
		return nil, err
	}
	c.mapSeq = c.nextSeq
	return c, nil
}

func (c *Cache) init() {
	c.pendingMap = make(map[uint64]*pendingRec)
	c.writtenCond = sync.NewCond(&c.mu)
	c.qcond = sync.NewCond(&c.gmu)
}

// superblock payload: generation, checkpoint slot, checkpoint length.
// The record is encoded unaligned (it is a few dozen bytes) so that it
// fits entirely within its 4 KiB slot.
func encodeSuper(gen uint64, slot uint32, ckptLen int64) ([]byte, error) {
	data := make([]byte, 20)
	binary.LittleEndian.PutUint64(data, gen)
	binary.LittleEndian.PutUint32(data[8:], slot)
	binary.LittleEndian.PutUint64(data[12:], uint64(ckptLen))
	return journal.Encode(&journal.Header{Type: journal.TypeSuper, Seq: gen, DataLen: uint64(len(data))}, data, false)
}

func (c *Cache) writeSuper(ckptLen int64) error {
	c.superGen++
	rec, err := encodeSuper(c.superGen, uint32(c.ckptSlot), ckptLen)
	if err != nil {
		return err
	}
	slotOff := int64(superSlot0)
	if c.superGen%2 == 1 {
		slotOff = superSlot1
	}
	if err := c.dev.WriteAt(rec, slotOff); err != nil {
		return err
	}
	return c.dev.Flush()
}

func (c *Cache) readSuper() (gen uint64, slot uint32, ckptLen int64, err error) {
	best := uint64(0)
	found := false
	buf := make([]byte, block.BlockSize)
	for _, off := range []int64{superSlot0, superSlot1} {
		if rerr := c.dev.ReadAt(buf, off); rerr != nil {
			continue
		}
		h, data, _, derr := journal.Decode(buf, false)
		if derr != nil || h.Type != journal.TypeSuper || len(data) < 20 {
			continue
		}
		g := binary.LittleEndian.Uint64(data)
		if !found || g > best {
			best = g
			slot = binary.LittleEndian.Uint32(data[8:])
			ckptLen = int64(binary.LittleEndian.Uint64(data[12:]))
			found = true
		}
	}
	if !found {
		return 0, 0, 0, fmt.Errorf("writecache: no valid superblock (device not formatted?)")
	}
	return best, slot, ckptLen, nil
}

// checkpoint payload layout. The checkpoint covers only the written
// prefix of the ring — records whose group device write has completed
// and whose map update has been applied. Reserved-but-unwritten
// records are cut off at a truncated tail/nextSeq; if their device
// writes land before a crash, the replay scan recovers them.
func (c *Cache) encodeCheckpoint(ring []*record, tail int64, nextSeq uint64) ([]byte, error) {
	mapBytes, err := c.m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	// head, tail, nextSeq, maxWriteSeq, destagedSeq, nRing, mapLen
	buf := make([]byte, 0, 7*8+len(ring)*44+len(mapBytes))
	var scratch [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	put64(uint64(c.head))
	put64(uint64(tail))
	put64(nextSeq)
	put64(c.maxWriteSeq)
	put64(c.destagedSeq)
	put64(uint64(len(ring)))
	put64(uint64(len(mapBytes)))
	for _, r := range ring {
		put64(uint64(r.off))
		put64(uint64(r.size))
		put64(r.seq)
		put64(r.writeSeq)
		put64(uint64(r.ext.LBA))
		binary.LittleEndian.PutUint32(scratch[:4], r.ext.Sectors)
		buf = append(buf, scratch[:4]...)
		buf = append(buf, byte(r.typ))
	}
	buf = append(buf, mapBytes...)
	return buf, nil
}

func (c *Cache) decodeCheckpoint(data []byte) error {
	if len(data) < 56 {
		return fmt.Errorf("writecache: checkpoint too short (%d bytes)", len(data))
	}
	g := func(i int) uint64 { return binary.LittleEndian.Uint64(data[i*8:]) }
	c.head = int64(g(0))
	c.tail = int64(g(1))
	c.nextSeq = g(2)
	c.maxWriteSeq = g(3)
	c.destagedSeq = g(4)
	off := 56
	const ringEntry = 45
	// Bound both counts against the data actually present BEFORE
	// converting: hostile 64-bit counts would wrap negative, pass the
	// truncation check, and panic in make below. This also bounds the
	// ring allocation by the checkpoint size.
	if g(5) > uint64(len(data)-off)/ringEntry || g(6) > uint64(len(data)) {
		return fmt.Errorf("writecache: checkpoint truncated")
	}
	nRing := int(g(5))
	mapLen := int(g(6))
	if len(data) < off+nRing*ringEntry+mapLen {
		return fmt.Errorf("writecache: checkpoint truncated")
	}
	c.ring = make([]*record, 0, nRing)
	c.used = 0
	for i := 0; i < nRing; i++ {
		p := data[off:]
		r := &record{
			off:      int64(binary.LittleEndian.Uint64(p)),
			size:     int64(binary.LittleEndian.Uint64(p[8:])),
			seq:      binary.LittleEndian.Uint64(p[16:]),
			writeSeq: binary.LittleEndian.Uint64(p[24:]),
			ext: block.Extent{
				LBA:     block.LBA(binary.LittleEndian.Uint64(p[32:])),
				Sectors: binary.LittleEndian.Uint32(p[40:]),
			},
			typ: journal.Type(p[44]),
		}
		c.ring = append(c.ring, r)
		c.used += r.size
		off += ringEntry
	}
	return c.m.UnmarshalBinary(data[off : off+mapLen])
}

func (c *Cache) ckptSlotOff(slot int) int64 {
	half := c.cfg.CheckpointBytes / 2
	return ckptStart + int64(slot)*half
}

// Checkpoint persists the map and ring index to the reserved SSD
// region and commits it via the superblock, bounding recovery replay.
func (c *Cache) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkpointLocked()
}

//lsvd:requires wcache.mu
func (c *Cache) checkpointLocked() error {
	// Snapshot the written prefix: the map holds exactly the updates of
	// records with seq < mapSeq, and the ring is in seq order, so the
	// prefix boundary is the first non-written entry.
	ring, tail, nextSeq := c.ring, c.tail, c.nextSeq
	for i, r := range c.ring {
		if r.state != recWritten {
			ring, tail, nextSeq = c.ring[:i], r.off, r.seq
			break
		}
	}
	payload, err := c.encodeCheckpoint(ring, tail, nextSeq)
	if err != nil {
		return err
	}
	rec, err := journal.Encode(&journal.Header{Type: journal.TypeCheckpoint, Seq: c.superGen + 1, DataLen: uint64(len(payload))}, payload, true)
	if err != nil {
		return err
	}
	if int64(len(rec)) > c.cfg.CheckpointBytes/2 {
		return fmt.Errorf("writecache: checkpoint of %d bytes exceeds slot of %d", len(rec), c.cfg.CheckpointBytes/2)
	}
	slot := (c.ckptSlot + 1) % 2
	if err := c.dev.WriteAt(rec, c.ckptSlotOff(slot)); err != nil {
		return err
	}
	if err := c.dev.Flush(); err != nil {
		return err
	}
	c.ckptSlot = slot
	if err := c.writeSuper(int64(len(rec))); err != nil {
		return err
	}
	c.checkpoints++
	c.sinceCkpt = 0
	return nil
}

func (c *Cache) loadCheckpoint() error {
	gen, slot, ckptLen, err := c.readSuper()
	if err != nil {
		return err
	}
	c.superGen = gen
	c.ckptSlot = int(slot)
	buf := make([]byte, ckptLen)
	if err := c.dev.ReadAt(buf, c.ckptSlotOff(int(slot))); err != nil {
		return err
	}
	h, payload, _, err := journal.Decode(buf, true)
	if err != nil {
		return fmt.Errorf("writecache: checkpoint unreadable: %w", err)
	}
	if h.Type != journal.TypeCheckpoint {
		return fmt.Errorf("writecache: checkpoint slot holds %v record", h.Type)
	}
	return c.decodeCheckpoint(payload)
}

// replay scans the log from the checkpointed tail, applying every
// complete record in sequence until the chain breaks.
func (c *Cache) replay() error {
	hdr := make([]byte, journal.AlignedHeaderSize(1))
	for {
		if c.tail == c.logEnd {
			c.tail = c.logStart
		}
		if err := c.dev.ReadAt(hdr, c.tail); err != nil {
			return err
		}
		h, _, err := journal.DecodeHeader(hdr)
		if err != nil || h.Seq != c.nextSeq {
			break // end of log
		}
		var total int64
		if h.Type == journal.TypePad {
			// A pad claims the rest of the ring; only its header is
			// on disk.
			if len(h.Extents) != 1 {
				break
			}
			total = int64(h.Extents[0].Sectors) << block.SectorShift
			if c.tail+total != c.logEnd {
				break // pad must end exactly at the ring boundary
			}
			if _, _, _, err := journal.Decode(hdr, true); err != nil {
				break
			}
		} else {
			if h.DataLen > uint64(c.logEnd) {
				break // corrupt length field: would wrap the conversion
			}
			dataLen := int64(h.DataLen)
			total = int64(journal.AlignedHeaderSize(len(h.Extents))) + dataLen
			total = (total + block.BlockSize - 1) &^ (block.BlockSize - 1)
			if c.tail+total > c.logEnd {
				break // would run off the ring: corrupt length
			}
			full := make([]byte, total)
			if err := c.dev.ReadAt(full, c.tail); err != nil {
				return err
			}
			if _, _, _, err := journal.Decode(full, true); err != nil {
				break // incomplete record (torn write): stop here
			}
		}
		c.applyRecord(h, c.tail, total)
		c.tail += total
		c.recovered++
	}
	return nil
}

func (c *Cache) applyRecord(h *journal.Header, off, size int64) {
	r := &record{off: off, size: size, seq: h.Seq, writeSeq: h.WriteSeq, typ: h.Type}
	if len(h.Extents) > 0 {
		r.ext = block.Extent{LBA: h.Extents[0].LBA, Sectors: h.Extents[0].Sectors}
	}
	switch h.Type {
	case journal.TypeData:
		dataOff := off + int64(journal.AlignedHeaderSize(len(h.Extents)))
		c.m.Update(r.ext, extmap.Target{Off: block.LBAFromBytes(dataOff)})
	case journal.TypeTrim:
		c.m.Update(r.ext, extmap.Target{Off: trimTombstoneOff})
	}
	c.ring = append(c.ring, r)
	c.used += size
	c.nextSeq = h.Seq + 1
	if h.WriteSeq > c.maxWriteSeq {
		c.maxWriteSeq = h.WriteSeq
	}
}

// contiguousFree returns how many bytes can be written at the tail
// without crossing the head, and whether the tail would first need to
// wrap (pad) to the start of the log.
func (c *Cache) freeAt(tail int64) int64 {
	if c.used == 0 {
		return c.logEnd - tail
	}
	if tail >= c.head {
		return c.logEnd - tail
	}
	return c.head - tail
}

// Append persists one client write to the log, blocking until it is
// written and indexed: a Reserve/Commit pair for callers without
// concurrency of their own.
func (c *Cache) Append(writeSeq uint64, ext block.Extent, data []byte) error {
	res, err := c.Reserve(writeSeq, journal.TypeData, ext, len(data))
	if err != nil {
		return err
	}
	return c.Commit(res, data)
}

// AppendTrim logs a discard of ext.
func (c *Cache) AppendTrim(writeSeq uint64, ext block.Extent) error {
	res, err := c.Reserve(writeSeq, journal.TypeTrim, ext, 0)
	if err != nil {
		return err
	}
	return c.Commit(res, nil)
}

// Reserve claims log space and a sequence number for one client write
// under a short metadata-only critical section; the payload I/O
// happens in Commit, off this lock. Reservation order defines the
// record sequence order, and acknowledgment (Commit return) follows
// that order, so callers that reserve under their own pipeline lock
// get ring order == their pipeline order. Every successful Reserve
// must be followed by exactly one Commit. ErrFull means the ring has
// no reclaimable space and the caller must destage first, then retry.
func (c *Cache) Reserve(writeSeq uint64, typ journal.Type, ext block.Extent, dataLen int) (*Reservation, error) {
	if typ == journal.TypeData && int64(dataLen) != ext.Bytes() {
		return nil, fmt.Errorf("writecache: extent %v does not match %d data bytes", ext, dataLen)
	}
	c.mu.Lock()
	invariant.LockOrder("wcache.mu")
	defer c.mu.Unlock()
	defer invariant.LockRelease("wcache.mu")

	if c.ioErr != nil {
		return nil, c.ioErr
	}

	hdrLen := int64(journal.AlignedHeaderSize(1))
	need := hdrLen + int64(dataLen)
	need = (need + block.BlockSize - 1) &^ (block.BlockSize - 1)
	if need > c.logEnd-c.logStart-int64(block.BlockSize) {
		return nil, fmt.Errorf("writecache: record of %d bytes exceeds log of %d", need, c.logEnd-c.logStart)
	}

	// Make room: wrap with a pad record when the front of the ring has
	// space, otherwise evict destaged records from the head. A one
	// block guard gap keeps tail from ever catching head, which would
	// make a full ring indistinguishable from an empty one.
	guard := int64(block.BlockSize)
	for {
		free := c.freeAt(c.tail)
		if free >= need+guard {
			break
		}
		if c.tail >= c.head {
			frontRoom := c.head - c.logStart
			if c.used == 0 {
				frontRoom = c.tail - c.logStart
			}
			if frontRoom >= need+2*guard {
				if err := c.writePad(); err != nil {
					return nil, err
				}
				continue
			}
		}
		if c.evictOne() {
			continue
		}
		// The head is not reclaimable. If it is destaged but its group
		// device write is still in flight, wait for the leader to land
		// it; otherwise the caller must destage first.
		if len(c.ring) > 0 && c.ring[0].state == recReserved &&
			(c.ring[0].typ == journal.TypePad || c.ring[0].writeSeq <= c.destagedSeq) {
			c.reserveWaits++
			c.writtenCond.Wait()
			if c.ioErr != nil {
				return nil, c.ioErr
			}
			continue
		}
		return nil, ErrFull
	}

	r := &record{off: c.tail, size: need, seq: c.nextSeq, writeSeq: writeSeq, typ: typ, ext: ext, state: recReserved}
	c.ring = append(c.ring, r)
	c.used += r.size
	c.tail += r.size
	if c.tail == c.logEnd {
		c.tail = c.logStart
	}
	invariant.Assert(c.used <= c.logEnd-c.logStart && c.tail >= c.logStart && c.tail < c.logEnd,
		"writecache: ring accounting out of bounds after reserve")
	c.nextSeq++
	c.appends++
	c.sinceCkpt++
	if c.cfg.CheckpointEvery > 0 && c.sinceCkpt >= c.cfg.CheckpointEvery {
		if err := c.checkpointLocked(); err != nil {
			return nil, err
		}
	}
	return &Reservation{rec: r, dataLen: dataLen}, nil
}

// Commit frames the reserved record and queues it for the group-commit
// leader; it returns once the record's device write has completed and
// its map update has been applied (in reservation order), i.e. once
// the write may be acknowledged. The caller's data buffer is written
// directly to the device — it must stay untouched until Commit
// returns, and the cache does not retain it afterwards.
func (c *Cache) Commit(res *Reservation, data []byte) error {
	if len(data) != res.dataLen {
		return fmt.Errorf("writecache: commit of %d bytes does not match reservation of %d", len(data), res.dataLen)
	}
	r := res.rec
	hdr, err := journal.EncodeHeader(&journal.Header{
		Type:     r.typ,
		Seq:      r.seq,
		WriteSeq: r.writeSeq,
		Extents:  []journal.ExtentEntry{{LBA: r.ext.LBA, Sectors: r.ext.Sectors}},
		DataLen:  uint64(len(data)),
	}, block.BlockSize, data)
	if err != nil {
		return err
	}
	pr := &pendingRec{
		rec:  r,
		hdr:  hdr,
		data: data,
		pad:  r.size - int64(len(hdr)) - int64(len(data)),
		done: make(chan struct{}),
	}

	c.gmu.Lock()
	invariant.LockOrder("wcache.gmu")
	c.commitq = append(c.commitq, pr)
	c.committing++
	lead := !c.leaderBusy
	if lead {
		c.leaderBusy = true
	}
	invariant.LockRelease("wcache.gmu")
	c.gmu.Unlock()

	if lead {
		c.runLeader()
	}
	<-pr.done

	c.gmu.Lock()
	c.committing--
	if c.committing == 0 {
		c.qcond.Broadcast()
	}
	c.gmu.Unlock()
	return pr.err
}

// Quiesce blocks until no Commit is in flight — no group device write
// can be running or about to run. Shutdown paths (Close, Kill) use it
// so that once they return, nothing is still writing to the device:
// a host may hand the volume's SSD section to a new tenant.
func (c *Cache) Quiesce() {
	c.gmu.Lock()
	for c.committing > 0 {
		c.qcond.Wait()
	}
	c.gmu.Unlock()
}

// runLeader drains the commit queue in batches, issuing one vectored
// device write per contiguous ring span, then applying map updates and
// acknowledgments in sequence order. Exactly one leader runs at a
// time; followers just queue and wait, which is what turns N
// concurrent appends into one device barrier (group commit).
func (c *Cache) runLeader() {
	stalled := false
	c.gmu.Lock()
	invariant.LockOrder("wcache.gmu")
	for {
		if len(c.commitq) == 0 {
			if c.cfg.GroupStall > 0 && !stalled {
				invariant.LockRelease("wcache.gmu")
				c.gmu.Unlock()
				time.Sleep(c.cfg.GroupStall)
				stalled = true
				c.gmu.Lock()
				invariant.LockOrder("wcache.gmu")
				continue
			}
			break
		}
		stalled = false
		take, bytes := 0, int64(0)
		for take < len(c.commitq) && take < c.cfg.GroupMaxRecords {
			sz := c.commitq[take].rec.size
			if take > 0 && bytes+sz > c.cfg.GroupMaxBytes {
				break
			}
			bytes += sz
			take++
		}
		batch := make([]*pendingRec, take)
		copy(batch, c.commitq)
		c.commitq = c.commitq[take:]
		invariant.LockRelease("wcache.gmu")
		c.gmu.Unlock()

		c.writeGroup(batch)

		c.gmu.Lock()
		invariant.LockOrder("wcache.gmu")
	}
	c.leaderBusy = false
	invariant.LockRelease("wcache.gmu")
	c.gmu.Unlock()
}

// writeGroup lands one batch: records are sorted by ring offset and
// merged into contiguous spans, each written with a single vectored
// device write straight from the callers' buffers (header, payload,
// zero pad — no staging copy). Then, under the metadata lock, map
// updates are applied in sequence order and the records acknowledged.
func (c *Cache) writeGroup(batch []*pendingRec) {
	sort.Slice(batch, func(i, j int) bool { return batch[i].rec.off < batch[j].rec.off })
	var werr error
	spans := uint64(0)
	for i := 0; i < len(batch) && werr == nil; {
		spanOff := batch[i].rec.off
		next := spanOff
		var bufs [][]byte
		for ; i < len(batch) && batch[i].rec.off == next; i++ {
			pr := batch[i]
			bufs = append(bufs, pr.hdr)
			if len(pr.data) > 0 {
				bufs = append(bufs, pr.data)
			}
			if pr.pad > 0 {
				bufs = append(bufs, zeroPad[:pr.pad])
			}
			next += pr.rec.size
		}
		spans++
		werr = simdev.WriteVec(c.dev, spanOff, bufs...)
	}

	c.mu.Lock()
	invariant.LockOrder("wcache.mu")
	if c.ioErr != nil {
		werr = c.ioErr
	}
	if werr != nil {
		// A hole in the log chain is unrecoverable for everything
		// behind it: poison the cache and fail every waiter.
		c.ioErr = werr
		for _, pr := range batch {
			pr.err = werr
			close(pr.done)
		}
		for seq, pr := range c.pendingMap {
			delete(c.pendingMap, seq)
			if pr != nil {
				pr.err = werr
				close(pr.done)
			}
		}
	} else {
		for _, pr := range batch {
			c.pendingMap[pr.rec.seq] = pr
		}
		c.drainMapChainLocked()
		c.groupBatches++
		c.groupRecords += uint64(len(batch))
		c.devWrites += spans
		c.batchHist[batchHistBucket(len(batch))]++
	}
	c.writtenCond.Broadcast()
	invariant.LockRelease("wcache.mu")
	c.mu.Unlock()
}

// drainMapChainLocked applies map updates for device-written records
// in strict sequence order, acknowledging each as it lands. In-order
// application keeps the cache map and the (FIFO-destaged) backend
// agreeing on the winner of overlapping writes, and defers every ack
// behind its predecessors so an acknowledged write is always readable.
//
//lsvd:requires wcache.mu
func (c *Cache) drainMapChainLocked() {
	for {
		pr, ok := c.pendingMap[c.mapSeq]
		if !ok {
			return
		}
		delete(c.pendingMap, c.mapSeq)
		c.mapSeq++
		if pr == nil {
			continue // pad: no map entry, no waiter
		}
		r := pr.rec
		switch r.typ {
		case journal.TypeData:
			c.m.Update(r.ext, extmap.Target{Off: block.LBAFromBytes(r.dataOff())})
		case journal.TypeTrim:
			c.m.Update(r.ext, extmap.Target{Off: trimTombstoneOff})
		}
		r.state = recWritten
		if r.writeSeq > c.maxWriteSeq {
			c.maxWriteSeq = r.writeSeq
		}
		close(pr.done)
	}
}

// writePad claims the space from tail to the end of the log with a pad
// record so the next record starts at logStart. Only the 4 KiB header
// is written; the skipped length rides in the header's extent entry, so
// no zero payload is materialized. Pads are written inline under the
// metadata lock — they are rare and keep the ring geometry simple.
//
//lsvd:requires wcache.mu
func (c *Cache) writePad() error {
	padLen := c.logEnd - c.tail
	h := &journal.Header{
		Type:    journal.TypePad,
		Seq:     c.nextSeq,
		Extents: []journal.ExtentEntry{{Sectors: uint32(padLen >> block.SectorShift)}},
	}
	rec, err := journal.Encode(h, nil, true)
	if err != nil {
		return err
	}
	if err := c.dev.WriteAt(rec, c.tail); err != nil {
		return err
	}
	c.ring = append(c.ring, &record{off: c.tail, size: padLen, seq: c.nextSeq, typ: journal.TypePad})
	c.used += padLen
	// Keep the in-order map chain moving past the pad's sequence slot.
	if c.mapSeq == c.nextSeq {
		c.mapSeq++
		c.drainMapChainLocked()
	} else {
		c.pendingMap[c.nextSeq] = nil
	}
	c.nextSeq++
	c.tail = c.logStart
	return nil
}

// evictOne reclaims the oldest record if the backend has it; the map
// entries still pointing at its data are dropped. Records whose group
// device write is still in flight are never reclaimed — the leader
// would otherwise overwrite freshly reserved space.
func (c *Cache) evictOne() bool {
	if len(c.ring) == 0 {
		return false
	}
	r := c.ring[0]
	if r.state != recWritten {
		return false
	}
	if (r.typ == journal.TypeData || r.typ == journal.TypeTrim) && r.writeSeq > c.destagedSeq {
		return false
	}
	switch r.typ {
	case journal.TypeData:
		dataLo := block.LBAFromBytes(r.dataOff())
		dataHi := dataLo + block.LBA(r.ext.Sectors)
		c.m.DeleteIf(r.ext, func(run extmap.Run) bool {
			return run.Target.Off >= dataLo && run.Target.Off < dataHi
		})
	case journal.TypeTrim:
		// Dropping a tombstone owned by a newer overlapping trim is
		// harmless: this trim is destaged, so the backend already
		// reads as zeros for the shared range.
		c.m.DeleteIf(r.ext, IsTombstone)
	}
	c.ring = c.ring[1:]
	c.used -= r.size
	invariant.Assert(c.used >= 0, "writecache: used bytes negative after evicting a record")
	if len(c.ring) > 0 {
		c.head = c.ring[0].off
	} else {
		c.head = c.tail
	}
	c.evictions++
	return true
}

// SetDestaged tells the cache that all client writes up to and
// including writeSeq are durable in the backend, unlocking FIFO
// reclamation of the corresponding records.
func (c *Cache) SetDestaged(writeSeq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if writeSeq > c.destagedSeq {
		c.destagedSeq = writeSeq
	}
}

// Flush is the commit barrier: one device flush makes every prior log
// record durable (§3.2). No metadata writes are needed. The read lock
// suffices: an append is only acknowledged (Commit returns) after its
// group device write completed, so the flush covers every
// acknowledged append.
func (c *Cache) Flush() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dev.Flush()
}

// Trims are held in the map as tombstone runs — Present, but with this
// sentinel target — so a read of a discarded range is answered (with
// zeros) by the cache instead of falling through to a backend that may
// not have applied the trim yet. The tombstone lives exactly as long
// as the trim's log record: eviction removes both together.
const trimTombstoneOff = block.LBA(1) << 60

// IsTombstone reports whether a run returned by Lookup/ReadExtent is a
// trim tombstone (reads as zeros, no backing log data). Partial lookups
// and splits shift a run's target by its offset into the entry, so the
// test is on the sentinel bit, not equality.
func IsTombstone(run extmap.Run) bool {
	return run.Present && run.Target.Off >= trimTombstoneOff
}

// Lookup returns the cache's coverage of ext.
func (c *Cache) Lookup(ext block.Extent) []extmap.Run {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.Lookup(ext)
}

// ReadAt reads cached data previously located via Lookup. Under
// concurrency a Lookup target can be evicted before the read; callers
// on the data path should use ReadExtent or ReadFull, which hold the
// lock across lookup and read.
func (c *Cache) ReadAt(t extmap.Target, buf []byte) error {
	return c.dev.ReadAt(buf, t.Off.Bytes())
}

// ReadExtent looks up ext and reads every present run into the
// matching positions of buf (len(buf) == ext.Bytes()), all under one
// lock acquisition so a concurrent eviction cannot reuse the log space
// mid-read. Absent runs are returned untouched for the caller's next
// cache level. The map only ever points at device-written records, so
// a concurrent group-commit device write (which runs off-lock) can
// never be observed here.
func (c *Cache) ReadExtent(ext block.Extent, buf []byte) ([]extmap.Run, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	runs := c.m.Lookup(ext)
	for _, run := range runs {
		if !run.Present {
			continue
		}
		off := (run.LBA - ext.LBA).Bytes()
		if IsTombstone(run) {
			clear(buf[off : off+run.Bytes()])
			continue
		}
		if err := c.dev.ReadAt(buf[off:off+run.Bytes()], run.Target.Off.Bytes()); err != nil {
			return nil, err
		}
	}
	return runs, nil
}

// ReadFull fills buf with the cache's data for ext if the extent is
// fully resident, holding the lock across the device reads. Used by
// the SSD readback mode (§3.7), where the newest logged bytes are
// exactly what the caller wants.
func (c *Cache) ReadFull(ext block.Extent, buf []byte) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.readFullLocked(ext, buf)
}

// ReadFullDestaged is ReadFull restricted to destaged data: it fails
// when any un-destaged record overlaps ext, so the bytes it returns
// are exactly the extent's backend-committed version. The GC fetch
// path (§3.5) needs that distinction — the newest cached bytes may
// belong to an acknowledged write whose object has not committed yet,
// and copying those into a GC object would publish data from the
// future: after a crash, recovery installs the GC object and the
// image is no longer a prefix of the acknowledged writes (§3.4).
func (c *Cache) ReadFullDestaged(ext block.Extent, buf []byte) bool {
	// GC's FetchFromCache path: called while blockstore holds bs.mu, so
	// this records the same bs.mu → wcache.mu edge as DestagePressure.
	c.mu.RLock()
	invariant.LockOrder("wcache.mu")
	defer invariant.LockRelease("wcache.mu")
	defer c.mu.RUnlock()
	// The ring is writeSeq-ordered (records are reserved under the
	// caller's write mutex), so the un-destaged records form a suffix.
	for i := len(c.ring) - 1; i >= 0; i-- {
		r := c.ring[i]
		if r.typ != journal.TypeData && r.typ != journal.TypeTrim {
			continue
		}
		if r.writeSeq <= c.destagedSeq {
			break
		}
		if r.ext.Overlaps(ext) {
			return false
		}
	}
	return c.readFullLocked(ext, buf)
}

//lsvd:requires wcache.mu
func (c *Cache) readFullLocked(ext block.Extent, buf []byte) bool {
	runs := c.m.Lookup(ext)
	for _, run := range runs {
		// Tombstones count as not-resident: the destage/GC callers want
		// the extent's logged data, not the zeros of a newer discard.
		if !run.Present || IsTombstone(run) {
			return false
		}
	}
	for _, run := range runs {
		off := (run.LBA - ext.LBA).Bytes()
		if err := c.dev.ReadAt(buf[off:off+run.Bytes()], run.Target.Off.Bytes()); err != nil {
			return false
		}
	}
	return true
}

// RecordsAfter replays, in order, every data/trim record with writeSeq
// greater than the given sequence, passing the write's extent and data
// (nil for trims). Used for crash recovery: the core re-sends these to
// the backend (§3.3 "rewind and replay").
func (c *Cache) RecordsAfter(writeSeq uint64, fn func(writeSeq uint64, typ journal.Type, ext block.Extent, data []byte) error) error {
	c.mu.RLock()
	ring := make([]*record, len(c.ring))
	copy(ring, c.ring)
	c.mu.RUnlock()
	recs, bytes := 0, int64(0)
	for _, r := range ring {
		if r.writeSeq <= writeSeq || r.typ == journal.TypePad {
			continue
		}
		var data []byte
		if r.typ == journal.TypeData {
			data = make([]byte, r.ext.Bytes())
			if err := c.dev.ReadAt(data, r.dataOff()); err != nil {
				return err
			}
		}
		if err := fn(r.writeSeq, r.typ, r.ext, data); err != nil {
			return err
		}
		recs++
		bytes += int64(len(data))
	}
	c.mu.Lock()
	c.replayedRecs += recs
	c.replayedBytes += bytes
	c.mu.Unlock()
	return nil
}

// MaxWriteSeq returns the newest client write sequence in the log.
func (c *Cache) MaxWriteSeq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.maxWriteSeq
}

// Stats returns a snapshot of cache statistics.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	dirty := int64(0)
	for _, r := range c.ring {
		if r.typ == journal.TypeData && r.writeSeq > c.destagedSeq {
			dirty += r.size
		}
	}
	return Stats{
		LogBytes: c.logEnd - c.logStart, UsedBytes: c.used, DirtyBytes: dirty,
		Records: len(c.ring), MapExtents: c.m.Len(),
		Appends: c.appends, Evictions: c.evictions, Checkpoints: c.checkpoints,
		MaxWriteSeq: c.maxWriteSeq, DestagedSeq: c.destagedSeq, RecoveredRecs: c.recovered,
		ReplayedRecs: c.replayedRecs, ReplayedBytes: c.replayedBytes,
		GroupBatches: c.groupBatches, GroupRecords: c.groupRecords,
		DevWrites: c.devWrites, ReserveWaits: c.reserveWaits,
		BatchSizeHist: c.batchHist,
	}
}

// DestagePressure reports whether the cache log is close enough to
// full that destage throughput is what stands between writers and a
// ring-full stall: more than half the log is dirty (written but not
// yet destaged) or over 90% of it is in use. The GC service polls it
// as a backpressure signal — relocation I/O competes with destage for
// the same backend budget, so GC defers while the log is drowning.
func (c *Cache) DestagePressure() bool {
	// The GC service polls this while holding bs.mu: the bs.mu →
	// wcache.mu edge must stay consistent with every other cross-layer
	// path (FetchFromCache takes the same order).
	c.mu.RLock()
	invariant.LockOrder("wcache.mu")
	defer invariant.LockRelease("wcache.mu")
	defer c.mu.RUnlock()
	logBytes := c.logEnd - c.logStart
	if logBytes <= 0 {
		return false
	}
	dirty := int64(0)
	for _, r := range c.ring {
		if r.typ == journal.TypeData && r.writeSeq > c.destagedSeq {
			dirty += r.size
		}
	}
	// Only the destage BACKLOG is pressure. Raw ring occupancy is not:
	// already-destaged records sit in the ring until reserve lazily
	// evicts them, so a quiet volume after a heavy run keeps a ~full log
	// of clean records indefinitely — writers reclaim that space
	// instantly, while an occupancy clause here would latch the backoff
	// signal on and starve the GC forever.
	return dirty*2 > logBytes
}

// Close checkpoints and flushes the cache, after waiting out any
// in-flight group commits.
func (c *Cache) Close() error {
	c.Quiesce()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkpointLocked(); err != nil {
		return err
	}
	return c.dev.Flush()
}
