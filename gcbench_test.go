package lsvd

// Paced-GC bench (DESIGN.md §5g): a sustained overwrite workload on a
// small working set generates garbage continuously, once with GC
// disabled (the baseline) and once with the paced background service
// on. The gates are the service's contract: foreground ack p99 stays
// within 1.5x of the GC-off baseline, the measured write amplification
// under load stays at the configured target, and once the writers
// stop, the idle trickle converges utilization back to the low-water
// mark. Runs as a quick smoke test under `make check`; `make bench-gc`
// sets LSVD_GCBENCH_OUT to record BENCH_gc.json for the trajectory.

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"sort"
	"testing"
	"time"
)

const (
	gcBenchWAFTarget = 2.0
	gcBenchLowWater  = 0.70
	gcBenchHighWater = 0.75
)

type gcBenchRun struct {
	GCOn          bool    `json:"gc_on"`
	TotalMiB      int64   `json:"total_mib"`
	MBPerSec      float64 `json:"mb_per_s"`
	P50WriteUS    float64 `json:"p50_write_us"`
	P99WriteUS    float64 `json:"p99_write_us"`
	MeasuredWAF   float64 `json:"measured_waf"` // (appended+gc copies)/appended at drain
	CopiedKiB     int64   `json:"gc_copied_kib"`
	WAFTarget     float64 `json:"waf_target,omitempty"`
	GCRuns        uint64  `json:"gc_runs,omitempty"`
	GCVictims     uint64  `json:"gc_victims,omitempty"`
	GCPaceWaits   uint64  `json:"gc_pace_waits,omitempty"`
	GCYields      uint64  `json:"gc_yields,omitempty"`
	UtilAtDrain   float64 `json:"util_at_drain"`
	UtilConverged float64 `json:"util_converged,omitempty"`
	ConvergeMS    float64 `json:"converge_ms,omitempty"`
}

type gcBenchReport struct {
	Off      gcBenchRun `json:"off"`
	On       gcBenchRun `json:"on"`
	P99Ratio float64    `json:"p99_ratio"`
}

// runGCBench overwrites a randomly chosen 3/4 of a 4 MiB working set
// each round (20 rounds, ~60 MiB total) against a 64 MiB volume. The
// skew is the point: every sealed object keeps a decaying fraction of
// live chunks, so collection must genuinely COPY survivors (a full
// overwrite would leave victims fully dead and the pacing idle), while
// utilization without GC still sinks far below the low-water mark.
// Reports ack latency, throughput and the GC counters sampled right at
// drain — before the idle trickle starts copying on its own clock.
func runGCBench(t *testing.T, gcOn bool) gcBenchRun {
	t.Helper()
	const (
		workingSet = 4 * MiB
		chunk      = 64 * KiB
		rounds     = 20
	)
	ctx := context.Background()
	opts := VolumeOptions{
		Name:  "gcbench",
		Store: MemStore(), Cache: MemCacheDevice(64 * MiB),
		Size:       64 * MiB,
		BatchBytes: 256 * KiB,
		GCLowWater: -1, // baseline: GC off
	}
	if gcOn {
		opts.GCLowWater = gcBenchLowWater
		opts.GCHighWater = gcBenchHighWater
		opts.GCWAFTarget = gcBenchWAFTarget
	}
	d, err := Create(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, chunk)
	var written int64
	var lats []time.Duration
	start := time.Now()
	for round := 0; round < rounds; round++ {
		for off := int64(0); off < workingSet; off += chunk {
			if round > 0 && rng.Intn(4) == 0 {
				continue // the surviving quarter the GC will have to copy
			}
			buf[0], buf[1] = byte(round), byte(off>>16)
			t0 := time.Now()
			if err := d.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
			written += chunk
			lats = append(lats, time.Since(t0))
		}
	}
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	bst := d.Backend().Stats()
	run := gcBenchRun{
		GCOn:        gcOn,
		TotalMiB:    written / MiB,
		MBPerSec:    float64(written) / elapsed.Seconds() / 1e6,
		MeasuredWAF: 1,
		CopiedKiB:   int64(bst.GCBytesCopied) / KiB,
		UtilAtDrain: d.Backend().Utilization(),
	}
	if bst.BytesAppended > 0 {
		run.MeasuredWAF = float64(bst.BytesAppended+bst.GCBytesCopied) / float64(bst.BytesAppended)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		return float64(lats[int(p*float64(len(lats)-1))]) / float64(time.Microsecond)
	}
	run.P50WriteUS, run.P99WriteUS = pct(0.50), pct(0.99)

	if gcOn {
		run.WAFTarget = gcBenchWAFTarget
		run.GCRuns, run.GCVictims = bst.GCRuns, bst.GCVictims
		run.GCPaceWaits, run.GCYields = bst.GCPaceWaits, bst.GCYields

		// With the writers gone, the idle trickle must finish the job:
		// utilization converges up to the low-water mark on its own.
		conv := time.Now()
		deadline := conv.Add(30 * time.Second)
		for d.Backend().Utilization() < gcBenchLowWater {
			if time.Now().After(deadline) {
				t.Fatalf("GC never converged: util %.3f, stats %+v",
					d.Backend().Utilization(), d.Backend().Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
		run.ConvergeMS = float64(time.Since(conv)) / float64(time.Millisecond)
		run.UtilConverged = d.Backend().Utilization()
		if err := d.Backend().AuditUtilization(); err != nil {
			t.Fatalf("utilization drift after convergence: %v", err)
		}
	}
	return run
}

// TestGCSustained is the acceptance gate for the paced GC service plus
// the recorder behind `make bench-gc`.
func TestGCSustained(t *testing.T) {
	report := gcBenchReport{
		Off: runGCBench(t, false),
		On:  runGCBench(t, true),
	}
	logRun := func(r gcBenchRun) {
		t.Logf("gc=%v: %d MiB at %.1f MB/s, p50 %.0fµs p99 %.0fµs, waf %.2f (%d KiB copied), util@drain %.3f runs=%d victims=%d paceWaits=%d yields=%d converge=%.0fms util=%.3f",
			r.GCOn, r.TotalMiB, r.MBPerSec, r.P50WriteUS, r.P99WriteUS, r.MeasuredWAF,
			r.CopiedKiB, r.UtilAtDrain, r.GCRuns, r.GCVictims, r.GCPaceWaits, r.GCYields,
			r.ConvergeMS, r.UtilConverged)
	}
	logRun(report.Off)
	logRun(report.On)

	if report.On.GCRuns == 0 || report.On.GCVictims == 0 {
		t.Fatalf("the service never collected under load: %+v", report.On)
	}
	if report.On.CopiedKiB == 0 && report.On.UtilConverged > 0 {
		t.Errorf("the workload exercised no GC copying — victims were all fully dead: %+v", report.On)
	}
	// The WAF gate has headroom for the idle trickle's self-grants: a
	// writer stall longer than the trickle interval banks one batch of
	// copy budget beyond the foreground-driven refill.
	if max := gcBenchWAFTarget * 1.25; report.On.MeasuredWAF > max {
		t.Errorf("measured WAF %.2f exceeds target %.1f (gate %.2f)",
			report.On.MeasuredWAF, float64(gcBenchWAFTarget), max)
	}

	// Latency gate, remeasured on flaky CI hosts like the multi-volume
	// scaling gate: a paced, gate-yielding collector must not cost the
	// foreground more than 50% of its ack p99.
	off, on := report.Off, report.On
	for retry := 0; on.P99WriteUS > 1.5*off.P99WriteUS && retry < 2; retry++ {
		off = runGCBench(t, false)
		on = runGCBench(t, true)
		t.Logf("gate retry %d: p99 off %.0fµs on %.0fµs", retry+1, off.P99WriteUS, on.P99WriteUS)
	}
	if on.P99WriteUS > 1.5*off.P99WriteUS {
		t.Errorf("GC-on ack p99 %.0fµs > 1.5x GC-off %.0fµs",
			on.P99WriteUS, off.P99WriteUS)
	}

	report.P99Ratio = report.On.P99WriteUS / report.Off.P99WriteUS
	if out := os.Getenv("LSVD_GCBENCH_OUT"); out != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
