# Stdlib-only Go module; these targets are the whole workflow.

GO ?= go

# Packages whose concurrency is load-bearing (the async destage
# pipeline and the NBD worker pool); `make race` runs them under the
# race detector, including the destage stress tests.
RACE_PKGS := ./internal/core ./internal/blockstore ./internal/writecache ./internal/nbd

.PHONY: all build vet test race bench check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Destage-pipeline micro-benchmarks: sync vs async write-ack latency
# and concurrent-reader throughput.
bench:
	$(GO) test -run xxx -bench 'DiskWriteAck|DiskConcurrentReads' -benchtime 2s .

check: build vet test race

clean:
	$(GO) clean -testcache
