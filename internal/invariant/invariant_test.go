package invariant

import (
	"sync"
	"testing"
)

func TestGoRunsFunction(t *testing.T) {
	done := make(chan int, 1)
	Go("test-worker", func() { done <- 42 })
	if got := <-done; got != 42 {
		t.Fatalf("guarded goroutine returned %d, want 42", got)
	}
}

func TestAssertPassesWhenTrue(t *testing.T) {
	Assert(true, "never fires")
	Assertf(true, "never fires %d", 1)
}

func TestAssertPanicsWhenTagged(t *testing.T) {
	if !Enabled {
		t.Skip("assertions compiled out without -tags lsvdcheck")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Assert(false) did not panic under lsvdcheck")
		}
	}()
	Assert(false, "must fire")
}

func TestLockOrderDetectsInversion(t *testing.T) {
	if !Enabled {
		LockOrder("x") // no-ops; just prove they are callable
		LockRelease("x")
		t.Skip("lock-order tracking compiled out without -tags lsvdcheck")
	}
	// Establish a -> b on one goroutine, then attempt b -> a on
	// another and require the checker to catch the inversion.
	LockOrder("test.a")
	LockOrder("test.b")
	LockRelease("test.b")
	LockRelease("test.a")

	var wg sync.WaitGroup
	wg.Add(1)
	caught := false
	go func() {
		defer wg.Done()
		defer func() {
			if recover() != nil {
				caught = true
				LockRelease("test.b")
			}
		}()
		LockOrder("test.b")
		LockOrder("test.a") // must panic: closes the a->b cycle
		LockRelease("test.a")
		LockRelease("test.b")
	}()
	wg.Wait()
	if !caught {
		t.Fatal("lock-order inversion b->a after a->b was not detected")
	}
}
