package cluster

import (
	"context"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/iomodel"
	"lsvd/internal/objstore"
)

func TestPoolGeometry(t *testing.T) {
	p, err := New(HDDConfig2())
	if err != nil {
		t.Fatal(err)
	}
	if p.Disks() != 63 {
		t.Fatalf("disks=%d", p.Disks())
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Servers: 1, DisksPerServer: 2, ECData: 4, ECParity: 2}); err == nil {
		t.Fatal("EC wider than pool accepted")
	}
	if _, err := New(Config{Servers: 1, DisksPerServer: 1, ECData: 1, ECParity: 0, Replicas: 3}); err == nil {
		t.Fatal("replicas wider than pool accepted")
	}
}

func TestPickDistinct(t *testing.T) {
	p, _ := New(HDDConfig2())
	for _, key := range []string{"a", "b", "vol.00000042"} {
		ds := p.pick(key, 6)
		seen := map[int]bool{}
		for _, d := range ds {
			if seen[d] {
				t.Fatalf("key %q placed twice on disk %d", key, d)
			}
			seen[d] = true
		}
	}
}

// TestRBDWriteAmplification: one replicated 16 KiB write must produce
// 6 device writes (data + WAL at each of 3 replicas) and ~6x the bytes,
// matching §4.5 / Fig 13.
func TestRBDWriteAmplification(t *testing.T) {
	p, _ := New(HDDConfig2())
	const clientWrites = 1000
	const bs = 16 * 1024
	for i := 0; i < clientWrites; i++ {
		p.WriteReplicated(string(rune(i)), bs)
	}
	c := p.Totals()
	if c.WriteOps != 6*clientWrites {
		t.Fatalf("backend ops=%d want %d", c.WriteOps, 6*clientWrites)
	}
	ampl := float64(c.WriteBytes) / float64(clientWrites*bs)
	if ampl < 6.0 || ampl > 8.0 {
		t.Fatalf("byte amplification %.2f, want ~6-7x", ampl)
	}
}

// TestLSVDObjectEfficiency: batching 256 16 KiB writes into one 4 MiB
// EC object costs ~64 device writes — i.e. 0.25 backend I/Os per client
// write (§4.5), with chunk writes around 1 MiB (Fig 14).
func TestLSVDObjectEfficiency(t *testing.T) {
	p, _ := New(HDDConfig2())
	p.PutObject("vol.00000001", 4*block.MiB)
	c := p.Totals()
	if c.WriteOps < 60 || c.WriteOps > 68 {
		t.Fatalf("writes per 4MiB object = %d, want ~64", c.WriteOps)
	}
	// 6 chunks of 1 MiB + metadata: byte amplification ~1.55x
	// (1.5x EC expansion plus metadata).
	ampl := float64(c.WriteBytes) / float64(4*block.MiB)
	if ampl < 1.45 || ampl > 1.75 {
		t.Fatalf("EC byte amplification %.2f", ampl)
	}
	// Histogram: chunk writes land in the 1 MiB bucket.
	var mib uint64
	for _, row := range p.WriteSizes().Buckets() {
		if row.Low == 1<<20 {
			mib = row.Count
		}
	}
	if mib != 6 {
		t.Fatalf("1MiB-bucket writes = %d, want 6", mib)
	}
}

func TestReadPaths(t *testing.T) {
	p, _ := New(HDDConfig2())
	// Range read within one EC chunk: a single device read.
	p.ReadObjectRange("o", 4*block.MiB, 0, 64*1024)
	if c := p.Totals(); c.ReadOps != 1 {
		t.Fatalf("single-chunk range read cost %d ops", c.ReadOps)
	}
	p.Reset()
	// Full-object read touches all 4 data chunks.
	p.ReadObjectRange("o", 4*block.MiB, 0, 4*block.MiB)
	if c := p.Totals(); c.ReadOps != 4 {
		t.Fatalf("full read cost %d ops", c.ReadOps)
	}
	p.Reset()
	p.ReadReplicated("o", 16*1024)
	if c := p.Totals(); c.ReadOps != 1 {
		t.Fatalf("replicated read cost %d ops", c.ReadOps)
	}
}

func TestUtilization(t *testing.T) {
	p, _ := New(HDDConfig2())
	// Saturate: 370 random writes/disk/sec for 10s worth of work.
	for i := 0; i < 63*3700; i++ {
		p.WriteReplicated(string(rune(i)), 16*1024)
	}
	elapsed := p.MaxBusy()
	if elapsed <= 0 {
		t.Fatal("no busy time")
	}
	u := p.Utilization(elapsed)
	if u < 0.5 || u > 1.0 {
		t.Fatalf("utilization %.2f at saturation", u)
	}
	// Ten times the wall-clock: utilization should drop ~10x.
	u2 := p.Utilization(elapsed * 10)
	if u2 > u/5 {
		t.Fatalf("utilization did not scale with elapsed: %.3f vs %.3f", u2, u)
	}
	p.Reset()
	if p.Totals() != (iomodel.Counters{}) {
		t.Fatal("reset failed")
	}
	if p.Utilization(time.Second) != 0 {
		t.Fatal("idle pool not idle")
	}
}

func TestClusterStore(t *testing.T) {
	ctx := context.Background()
	p, _ := New(SSDConfig1())
	s := NewStore(objstore.NewMem(), p)
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i)
	}
	if err := s.Put(ctx, "vol.00000001", data); err != nil {
		t.Fatal(err)
	}
	if c := p.Totals(); c.WriteOps == 0 {
		t.Fatal("put not accounted")
	}
	got, err := s.GetRange(ctx, "vol.00000001", 100, 50)
	if err != nil || len(got) != 50 || got[0] != byte(100) {
		t.Fatalf("range: %v", err)
	}
	if c := p.Totals(); c.ReadOps == 0 {
		t.Fatal("read not accounted")
	}
	if err := s.Delete(ctx, "vol.00000001"); err != nil {
		t.Fatal(err)
	}
	names, err := s.List(ctx, "vol.")
	if err != nil || len(names) != 0 {
		t.Fatalf("list after delete: %v %v", names, err)
	}
}
