package blockstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/invariant"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
)

// Open recovers a volume: superblock → latest checkpoint → replay of
// the consecutive object suffix, deleting stranded objects beyond the
// first gap (§3.3). Metadata for the whole suffix is prefetched by a
// bounded pool (Config.OpenFanout), so open time is
// O(suffix / fanout) backend round-trips; the APPLY of the decoded
// headers stays strictly sequential, so the crash-gap semantics are
// byte-for-byte those of the serial replay.
func Open(ctx context.Context, cfg Config) (*Store, error) {
	return open(ctx, cfg, 0, false)
}

// OpenAt mounts the volume read-only as of object sequence snapSeq
// (a snapshot mount, §3.6): recovery replays up to snapSeq and no
// farther, and stranded objects are left untouched.
func OpenAt(ctx context.Context, cfg Config, snapSeq uint32) (*Store, error) {
	return open(ctx, cfg, snapSeq, true)
}

// OpenHeadReadOnly mounts the volume read-only at its newest
// consistent prefix without taking write ownership. This is the
// restore-from-replica inspection mount (§4.8): a replica is a
// crash-consistent prefix of the primary, and a torn tail object (a
// shipper killed mid-copy) truncates recovery exactly like a crashed
// primary's own torn tail.
func OpenHeadReadOnly(ctx context.Context, cfg Config) (*Store, error) {
	return open(ctx, cfg, 0, true)
}

// OpenSnapshot mounts the named snapshot read-only.
func OpenSnapshot(ctx context.Context, cfg Config, name string) (*Store, error) {
	cfg.setDefaults()
	raw, err := cfg.Store.Get(ctx, superName(cfg.Volume))
	if err != nil {
		return nil, fmt.Errorf("blockstore: volume %q: %w", cfg.Volume, err)
	}
	sb, err := decodeSuper(raw)
	if err != nil {
		return nil, err
	}
	for _, sn := range sb.snapshots {
		if sn.Name == name {
			return open(ctx, cfg, sn.Seq, true)
		}
	}
	return nil, fmt.Errorf("blockstore: snapshot %q not found", name)
}

func open(ctx context.Context, cfg Config, limit uint32, readOnly bool) (*Store, error) {
	start := time.Now()
	cfg.setDefaults()
	s := newStore(ctx, cfg)
	s.readOnly = readOnly
	var gets atomic.Uint64 // backend read ops (Get/GetRange/Size/List)

	gets.Add(1)
	raw, err := cfg.Store.Get(ctx, superName(cfg.Volume))
	if err != nil {
		return nil, fmt.Errorf("blockstore: volume %q: %w", cfg.Volume, err)
	}
	sb, err := decodeSuper(raw)
	if err != nil {
		return nil, err
	}
	s.volSectors = sb.volSectors
	s.baseVol = sb.baseVol
	s.baseSeq = sb.baseSeq
	s.snapshots = sb.snapshots

	// Find the newest checkpoint at or before the limit, walking the
	// prev-pointer chain for snapshot mounts. Each hop must strictly
	// decrease the sequence number: a self-referencing or cyclic chain
	// in a corrupt checkpoint must surface as an error, not a loop.
	ckptSeq := sb.lastCkpt
	var ckpt *checkpointPayload
	for {
		gets.Add(1)
		payload, err := s.readCheckpointObject(ckptSeq)
		if err != nil {
			return nil, err
		}
		if limit == 0 || ckptSeq <= limit {
			ckpt = payload
			break
		}
		if payload.prevCkpt == 0 || payload.prevCkpt >= ckptSeq {
			return nil, fmt.Errorf("blockstore: no checkpoint at or before seq %d", limit)
		}
		ckptSeq = payload.prevCkpt
	}
	s.lastCkpt = ckptSeq
	s.durableWriteSeq = ckpt.durableWriteSeq
	for i := range ckpt.objects {
		o := ckpt.objects[i]
		s.objects[o.seq] = &o
	}
	s.deferred = ckpt.deferred
	for _, d := range s.deferred {
		s.cleaned[d.Obj] = true
	}
	//lsvd:ignore recovery runs single-goroutine before the store is published; bs.mu cannot be contended
	s.recomputeUtilLocked()
	if err := s.m.UnmarshalBinary(ckpt.mapBytes); err != nil {
		return nil, fmt.Errorf("blockstore: checkpoint map: %w", err)
	}
	// The checkpointed map may reference objects deleted... it cannot:
	// GC defers deletion past the checkpoint that stops referencing
	// the victim, so every referenced object exists.

	// Replay the consecutive suffix after the checkpoint: one List,
	// then the headers and sizes of every suffix object prefetched
	// concurrently.
	gets.Add(1)
	names, err := cfg.Store.List(ctx, cfg.Volume+".")
	if err != nil {
		return nil, err
	}
	present := make(map[uint32]bool)
	for _, seq := range sortedSeqs(cfg.Volume, names) {
		present[seq] = true
	}
	var suffix []uint32
	for seq := ckptSeq + 1; present[seq] && (limit == 0 || seq <= limit); seq++ {
		suffix = append(suffix, seq)
	}
	metas := make([]*objMeta, len(suffix))
	runBounded(cfg.OpenFanout, len(suffix), func(i int) {
		metas[i] = s.fetchObjectMeta(suffix[i], &gets)
	})

	// Apply strictly in sequence order, so a torn object (the crash
	// gap) bounds the consistent prefix exactly as a serial replay
	// would have.
	next := ckptSeq + 1
	replayed := 0
	for i, seq := range suffix {
		if err := s.applyObjectMeta(seq, metas[i], &gets); err != nil {
			if limit == 0 && errors.Is(err, journal.ErrCorrupt) {
				// A truncated or torn object is the crash gap (§3.3):
				// its PUT died mid-transfer. The consistent prefix ends
				// just before it; it is deleted with the stranded set
				// below. Snapshot mounts (limit > 0) replay history
				// that was once committed, so corruption there stays
				// fatal.
				break
			}
			return nil, err
		}
		replayed++
		next++
	}
	s.nextSeq = next

	// Delete stranded objects beyond the prefix (§3.3) — writes that
	// were in flight when the client died — fanned out like the
	// prefetch. A failed delete must not fail recovery: the object is
	// recorded as an orphan and swept before any subsequent object PUT,
	// so it can never fill back into the replayable prefix (see
	// sweepOrphansLocked). Stranded objects were never installed (the
	// checkpoint only covers seqs at or below its own), so the raw
	// backend delete is the whole job.
	if !readOnly {
		var stranded []uint32
		for seq := range present {
			if seq >= next {
				stranded = append(stranded, seq)
			}
		}
		var smu sync.Mutex
		runBounded(cfg.OpenFanout, len(stranded), func(i int) {
			seq := stranded[i]
			err := s.cfg.Store.Delete(s.ctx, s.name(seq))
			smu.Lock()
			defer smu.Unlock()
			if err != nil && !errors.Is(err, objstore.ErrNotFound) {
				s.orphans[seq] = true
				return
			}
			s.stats.objectsDeleted++
		})
		// Re-sweep deferred deletes: a checkpointed deferredDelete whose
		// GC object committed but whose victim delete never ran (the
		// crash landed between the checkpoint and the delete, or the
		// delete itself kept failing) would otherwise leak the victim
		// object forever — nothing references it, so no later pass can
		// rediscover it. Snapshot-pinned victims go back on the deferred
		// list; delete failures queue on pending for the next checkpoint
		// to retry, exactly as live-path deletions do.
		deferred := s.deferred
		s.deferred = nil
		for _, d := range deferred {
			//lsvd:ignore recovery runs single-goroutine before the store is published; bs.mu cannot be contended
			if err := s.completeDelete(d); err != nil {
				s.pending = append(s.pending, d)
			}
		}
	}
	s.stats.recoveredObjects = replayed
	s.stats.recoveryGETs = gets.Load()
	s.stats.openNanos = time.Since(start).Nanoseconds()
	s.startGCService()
	return s, nil
}

// runBounded runs fn(0) … fn(n-1) on up to fanout goroutines, in
// arbitrary order, and waits for all of them. fanout <= 1 runs inline.
func runBounded(fanout, n int, fn func(i int)) {
	if fanout > n {
		fanout = n
	}
	if fanout <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < fanout; w++ {
		wg.Add(1)
		invariant.Go("blockstore-open", func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		})
	}
	wg.Wait()
}

// sweepOrphansLocked retries deletion of stranded objects whose
// recovery-time delete failed. It must run before every object PUT
// (seal, GC, checkpoint): once new objects fill the sequence gap below
// an orphan, a crash would put the orphan back inside the consecutive
// prefix and recovery would resurrect its stale data. No new object
// may be written while an orphan remains, so a persistently failing
// sweep surfaces as a write-path error — never an Open failure.
//
//lsvd:requires bs.mu
func (s *Store) sweepOrphansLocked() error {
	for seq := range s.orphans {
		if err := s.deleteObject(seq); err != nil {
			return fmt.Errorf("blockstore: sweeping orphan object %d: %w", seq, err)
		}
		delete(s.orphans, seq)
	}
	return nil
}

func (s *Store) readCheckpointObject(seq uint32) (*checkpointPayload, error) {
	raw, err := s.cfg.Store.Get(s.ctx, s.name(seq))
	if err != nil {
		return nil, fmt.Errorf("blockstore: checkpoint %d: %w", seq, err)
	}
	h, payload, _, err := journal.Decode(raw, false)
	if err != nil {
		return nil, fmt.Errorf("blockstore: checkpoint %d corrupt: %w", seq, err)
	}
	if h.Type != journal.TypeCheckpoint {
		return nil, fmt.Errorf("blockstore: object %d is %v, not a checkpoint", seq, h.Type)
	}
	return decodeCheckpoint(payload)
}

// objMeta is the prefetched metadata replay needs for one suffix
// object: its decoded header and backend size. err carries the fetch
// or decode failure for the apply loop to classify (corruption = the
// crash gap; anything else fails the open).
type objMeta struct {
	h          *journal.Header
	hdrSectors uint32
	size       int64
	err        error
}

// fetchObjectMeta fetches and decodes one object's header — a probe
// GetRange, plus a second ranged GET only when the extent list
// overflows the probe — and its size. This replaces the serial
// replay's three round-trips per object (a header fetch via s.header,
// a DUPLICATE raw GetRange of the same header bytes, then Size) with
// two, issued concurrently across the suffix by the prefetch pool.
func (s *Store) fetchObjectMeta(seq uint32, gets *atomic.Uint64) *objMeta {
	m := &objMeta{}
	name := s.name(seq)
	gets.Add(1)
	probe, err := s.cfg.Store.GetRange(s.ctx, name, 0, block.BlockSize)
	if err != nil {
		m.err = err
		return m
	}
	need := journal.HeaderSize(int(headerExtentCount(probe)))
	need = (need + block.SectorSize - 1) &^ (block.SectorSize - 1)
	buf := probe
	if need > len(probe) {
		gets.Add(1)
		if buf, err = s.cfg.Store.GetRange(s.ctx, name, 0, int64(need)); err != nil {
			m.err = err
			return m
		}
	}
	h, _, err := journal.DecodeHeader(buf)
	if err != nil {
		m.err = fmt.Errorf("blockstore: header of %s unreadable: %w", name, err)
		return m
	}
	hs := journal.HeaderSize(len(h.Extents))
	hs = (hs + block.SectorSize - 1) &^ (block.SectorSize - 1)
	m.h = h
	m.hdrSectors = uint32(hs / block.SectorSize)
	gets.Add(1)
	m.size, m.err = s.cfg.Store.Size(s.ctx, name)
	return m
}

// applyObjectMeta applies one prefetched object to the recovering
// state: map updates for data and GC objects (GC extents
// conditionally, so stale copies never shadow newer writes),
// checkpoint objects reload wholesale state.
func (s *Store) applyObjectMeta(seq uint32, m *objMeta, gets *atomic.Uint64) error {
	if m.err != nil {
		return m.err
	}
	h := m.h
	// A header that decoded but promises more data than the object
	// holds is a torn PUT — classify it as corruption so open() treats
	// it as the crash gap. Bound the 64-bit length field before
	// converting so a corrupt value cannot wrap the sum negative and
	// slip past the check.
	if h.DataLen > uint64(m.size) {
		return fmt.Errorf("%w: object %d claims %d data bytes but holds %d", journal.ErrCorrupt, seq, h.DataLen, m.size)
	}
	dataLen := int64(h.DataLen)
	if want := int64(m.hdrSectors)*block.SectorSize + dataLen; m.size < want {
		return fmt.Errorf("%w: object %d truncated to %d of %d bytes", journal.ErrCorrupt, seq, m.size, want)
	}

	switch h.Type {
	case journal.TypeCheckpoint:
		// A checkpoint newer than the superblock pointer (its PUT
		// completed but the super update didn't): reload state from it.
		gets.Add(1)
		payload, err := s.readCheckpointObject(seq)
		if err != nil {
			return err
		}
		s.durableWriteSeq = payload.durableWriteSeq
		s.objects = make(map[uint32]*objInfo, len(payload.objects))
		for i := range payload.objects {
			o := payload.objects[i]
			s.objects[o.seq] = &o
		}
		s.deferred = payload.deferred
		s.cleaned = make(map[uint32]bool)
		for _, d := range s.deferred {
			s.cleaned[d.Obj] = true
		}
		//lsvd:ignore recovery runs single-goroutine before the store is published; bs.mu cannot be contended
		s.recomputeUtilLocked()
		if err := s.m.UnmarshalBinary(payload.mapBytes); err != nil {
			return err
		}
		s.lastCkpt = seq
		return nil

	case journal.TypeData, journal.TypeGC:
		info := &objInfo{
			seq: seq, typ: h.Type, totalBytes: m.size,
			hdrSectors: m.hdrSectors, writeSeq: h.WriteSeq,
		}
		var mapped []mappedExtent
		var trims []block.Extent
		cursor := block.LBA(m.hdrSectors)
		for _, e := range h.Extents {
			if e.SrcSeq == trimMarker {
				trims = append(trims, block.Extent{LBA: e.LBA, Sectors: e.Sectors})
				continue
			}
			mapped = append(mapped, mappedExtent{
				ext:    block.Extent{LBA: e.LBA, Sectors: e.Sectors},
				srcSeq: e.SrcSeq,
				target: extmap.Target{Obj: seq, Off: cursor},
			})
			cursor += block.LBA(e.Sectors)
			info.dataSectors += e.Sectors
		}
		info.liveSectors = info.dataSectors
		//lsvd:ignore recovery runs single-goroutine before the store is published; bs.mu cannot be contended
		s.installObject(info, mapped, trims)
		if h.WriteSeq > s.durableWriteSeq {
			s.durableWriteSeq = h.WriteSeq
		}
		return nil

	default:
		return fmt.Errorf("blockstore: object %d has unexpected type %v", seq, h.Type)
	}
}
