package consistency

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/core"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

// Torture-harness knobs, overridable from the environment so `make
// fault` can sweep rates and CI can pin a seed:
//
//	LSVD_FAULT_SEED   base seed, iteration i uses seed+i (default 1)
//	LSVD_FAULT_RATE   per-op injected failure probability (default 0.10)
//	LSVD_FAULT_ITERS  crash/recover iterations (default 50, 10 in -short)
func envInt(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

func envFloat(name string, def float64) float64 {
	if v := os.Getenv(name); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

// openWithRetry tolerates injected faults during recovery itself: a
// real deployment would simply re-run Open until the backend heals, so
// the harness grants a few whole-Open retries on top of the per-op
// retry budget.
func openWithRetry(t *testing.T, opts core.Options) (*core.Disk, error) {
	t.Helper()
	var err error
	for i := 0; i < 5; i++ {
		var d *core.Disk
		if d, err = core.Open(ctx, opts); err == nil {
			return d, nil
		}
		if !errors.Is(err, objstore.ErrInjected) {
			return nil, err
		}
	}
	return nil, err
}

// waitGoroutines polls until the goroutine count returns to roughly
// the baseline, failing with a stack dump if pipeline goroutines leak.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), base, buf)
}

// TestFaultTorture is the recovery torture harness: a volume running
// over a seeded fault-injecting backend (probabilistic failures plus
// torn writes) takes randomized stamped writes, crashes at a random
// point, recovers — sometimes with the cache wiped — and must present
// a consistent durable prefix every single time (§3.4 under fire).
func TestFaultTorture(t *testing.T) {
	seed := envInt("LSVD_FAULT_SEED", 1)
	rate := envFloat("LSVD_FAULT_RATE", 0.10)
	iters := envInt("LSVD_FAULT_ITERS", 50)
	if testing.Short() && iters > 10 {
		iters = 10
	}
	baseGoroutines := runtime.NumGoroutine()

	for it := int64(0); it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("seed=%d", seed+it), func(t *testing.T) {
			tortureIteration(t, seed+it, rate)
		})
		if t.Failed() {
			break // one minimal repro beats fifty identical ones
		}
	}
	waitGoroutines(t, baseGoroutines)
}

func tortureIteration(t *testing.T, seed int64, rate float64) {
	rng := rand.New(rand.NewSource(seed))
	store := objstore.NewFaulty(objstore.NewMem())
	cache := simdev.NewMem(32 * block.MiB)
	opts := core.Options{
		Volume: "vol", Store: store, CacheDev: cache,
		VolBytes: 16 * block.MiB, BatchBytes: 128 << 10,
		CheckpointEvery: 4, UploadDepth: 2, DestageQueueDepth: 32,
		Retry: objstore.RetryPolicy{
			// 16 attempts: even a 0.35-rate sweep has a negligible
			// chance of exhausting the budget on any single op.
			MaxAttempts: 16,
			BaseDelay:   50 * time.Microsecond,
			MaxDelay:    time.Millisecond,
			Seed:        seed,
		},
	}
	// Create with a healthy store (a failed mkfs is not a crash test),
	// then arm the injector for the workload.
	disk, err := core.Create(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	store.Arm(objstore.FaultConfig{
		Seed:       seed,
		Rates:      objstore.UniformRates(rate),
		TornWrites: true,
	})
	defer store.Disarm()

	w, err := NewWriter(disk)
	if err != nil {
		t.Fatal(err)
	}
	nOps := 120 + rng.Intn(121)
	kill := rng.Intn(nOps)
	blocks := disk.Size() / block.BlockSize
	for i := 0; i < nOps; i++ {
		if i == kill {
			break // crash mid-workload
		}
		if rng.Intn(10) == 0 {
			err = w.Barrier()
		} else {
			n := 1 + rng.Intn(4)
			err = w.Write(rng.Int63n(blocks-4), n)
		}
		if err != nil {
			// The async pipeline may surface an exhausted retry budget;
			// that is a legal crash point, not a harness failure.
			if !errors.Is(err, objstore.ErrInjected) {
				t.Fatalf("op %d failed outside the fault model: %v", i, err)
			}
			break
		}
	}
	disk.Kill()

	// Coin flip: recover with the surviving cache (all committed writes
	// must be back) or with the cache lost entirely (any consistent
	// prefix is acceptable).
	cacheSurvives := rng.Intn(2) == 0
	if !cacheSurvives {
		opts.CacheDev = simdev.NewMem(32 * block.MiB)
	}
	disk2, err := openWithRetry(t, opts)
	if err != nil {
		t.Fatalf("recovery failed (cacheSurvives=%v): %v", cacheSurvives, err)
	}
	r, err := w.Check(disk2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Mountable {
		t.Fatalf("image not a consistent prefix (cacheSurvives=%v):\n  %s",
			cacheSurvives, strings.Join(r.Violations, "\n  "))
	}
	if cacheSurvives && !r.CommittedPreserved {
		t.Fatalf("committed writes lost despite surviving cache: recovered v%d < committed v%d",
			r.RecoveredVersion, w.Committed())
	}

	// The recovered volume must keep working under the same fault
	// regime: more writes, a barrier, and a second audit. Writes lost
	// past the recovered prefix are gone for good — prune them so the
	// audit doesn't demand them back once new versions appear.
	w.Prune(r.RecoveredVersion)
	if err := w.Rebind(disk2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := w.Write(rng.Int63n(blocks-4), 1+rng.Intn(2)); err != nil {
			if !errors.Is(err, objstore.ErrInjected) {
				t.Fatalf("post-recovery write failed outside the fault model: %v", err)
			}
			break
		}
	}
	if err := w.Barrier(); err != nil && !errors.Is(err, objstore.ErrInjected) {
		t.Fatalf("post-recovery barrier: %v", err)
	}
	if r, err = w.Check(disk2); err != nil {
		t.Fatal(err)
	} else if !r.Mountable {
		t.Fatalf("post-recovery image inconsistent:\n  %s", strings.Join(r.Violations, "\n  "))
	}

	store.Disarm() // let Close drain without injected failures
	if err := disk2.Close(); err != nil {
		t.Logf("close after torture: %v", err)
	}
}
