package consistency

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/core"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

// Concurrent-writer torture: several goroutines hammer one disk with
// WriteAt/Flush/Trim through the group-commit ring while the backend
// injects faults and the main goroutine kills the disk mid-flight.
// The single-writer Writer above cannot audit this (its versions are
// globally ordered), so each goroutine owns a disjoint block range and
// stamps blocks with (goroutine, op-seq). Prefix consistency (§3.4)
// projected onto one goroutine's program order means the recovered
// range must equal the state after some prefix of that goroutine's
// ops — writes within a goroutine are issued strictly in sequence, so
// a global log prefix induces a per-goroutine op prefix.

const (
	cwWriters   = 4
	cwSpan      = 256 // blocks per goroutine range
	cwMaxRun    = 4   // max blocks per write/trim
	cwFaultRate = 0.05
)

// cwOp is one recorded operation of a torture goroutine. Seq is the
// goroutine-local sequence number (1-based); trims reset their blocks
// to the zero state.
type cwOp struct {
	seq  uint64
	trim bool
	blk  int64
	n    int
}

// cwWriter is one torture goroutine's recorded history.
type cwWriter struct {
	gid       int
	base      int64 // first block of the owned range
	ops       []cwOp
	acked     int    // ops[0:acked] returned success
	committed uint64 // newest acked seq covered by a successful Flush
	err       error  // first error outside the crash/fault model
}

// cwStamp encodes (goroutine, seq) into the stamp version field; gid+1
// keeps version 0 meaning "zero state".
func cwStamp(gid int, seq uint64) uint64 { return uint64(gid+1)<<32 | seq }

func cwDecode(v uint64) (gid int, seq uint64) {
	return int(v>>32) - 1, v & (1<<32 - 1)
}

// run issues randomized ops until the disk dies under it (Kill, or an
// exhausted retry budget — both legal crash points). The op is
// recorded before it is issued, so an errored tail op stays in the
// history as the "maybe applied" candidate.
func (w *cwWriter) run(disk *core.Disk, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, cwMaxRun*block.BlockSize)
	var seq uint64
	for {
		var err error
		switch {
		case rng.Intn(12) == 0:
			if err = disk.Flush(); err == nil {
				if w.acked > 0 {
					w.committed = w.ops[w.acked-1].seq
				}
				continue
			}
		case rng.Intn(8) == 0:
			seq++
			n := 1 + rng.Intn(cwMaxRun)
			blk := w.base + rng.Int63n(cwSpan-int64(n))
			w.ops = append(w.ops, cwOp{seq: seq, trim: true, blk: blk, n: n})
			err = disk.Trim(blk*block.BlockSize, int64(n)*block.BlockSize)
		default:
			seq++
			n := 1 + rng.Intn(cwMaxRun)
			blk := w.base + rng.Int63n(cwSpan-int64(n))
			w.ops = append(w.ops, cwOp{seq: seq, blk: blk, n: n})
			p := buf[:int64(n)*block.BlockSize]
			for i := 0; i < n; i++ {
				stampBlock(p[int64(i)*block.BlockSize:], cwStamp(w.gid, seq), blk+int64(i))
			}
			err = disk.WriteAt(p, blk*block.BlockSize)
		}
		if err != nil {
			if !errors.Is(err, core.ErrClosed) && !errors.Is(err, objstore.ErrInjected) {
				w.err = err
			}
			return
		}
		w.acked = len(w.ops)
	}
}

// check audits the recovered image against this goroutine's history:
// there must be a cut c — at least the committed watermark when the
// cache survived, at least the newest visible op always — such that
// the owned range holds exactly the state after ops[0:c].
func (w *cwWriter) check(disk *core.Disk, cacheSurvives bool) error {
	rec := make([]uint64, cwSpan)
	buf := make([]byte, block.BlockSize)
	var maxSeen uint64
	for i := int64(0); i < cwSpan; i++ {
		b := w.base + i
		if err := disk.ReadAt(buf, b*block.BlockSize); err != nil {
			return fmt.Errorf("writer %d: read block %d: %w", w.gid, b, err)
		}
		v, idx, ok := readStamp(buf)
		if !ok {
			continue // zero / trimmed / never written
		}
		gid, seq := cwDecode(v)
		if gid != w.gid || idx != b {
			return fmt.Errorf("writer %d: block %d holds stamp (writer %d, block %d)", w.gid, b, gid, idx)
		}
		if seq == 0 || seq > uint64(len(w.ops)) {
			return fmt.Errorf("writer %d: block %d holds seq %d beyond history %d", w.gid, b, seq, len(w.ops))
		}
		rec[i] = seq
		if seq > maxSeen {
			maxSeen = seq
		}
	}
	low := maxSeen
	if cacheSurvives && w.committed > low {
		low = w.committed
	}
	want := make([]uint64, cwSpan)
	for c := 0; c <= len(w.ops); c++ {
		op := cwOp{}
		if c > 0 {
			op = w.ops[c-1]
			for i := 0; i < op.n; i++ {
				j := op.blk + int64(i) - w.base
				if op.trim {
					want[j] = 0
				} else {
					want[j] = op.seq
				}
			}
		}
		if uint64(c) < low {
			continue
		}
		match := true
		for i := range want {
			if want[i] != rec[i] {
				match = false
				break
			}
		}
		if match {
			return nil
		}
	}
	// No cut matched: report the mismatches at the tightest candidate
	// (cut = low) so the failure is actionable.
	for i := range want {
		want[i] = 0
	}
	for c := 0; c < int(low); c++ {
		op := w.ops[c]
		for i := 0; i < op.n; i++ {
			j := op.blk + int64(i) - w.base
			if op.trim {
				want[j] = 0
			} else {
				want[j] = op.seq
			}
		}
	}
	var detail []string
	for i := range want {
		if want[i] != rec[i] && len(detail) < 8 {
			detail = append(detail, fmt.Sprintf("block %d: holds seq %d, cut %d requires %d",
				w.base+int64(i), rec[i], low, want[i]))
		}
	}
	var all []string
	for i := range rec {
		if rec[i] != 0 {
			all = append(all, fmt.Sprintf("%d:%d", w.base+int64(i), rec[i]))
		}
	}
	detail = append(detail, "recovered nonzero stamps: "+strings.Join(all, " "))
	return fmt.Errorf("writer %d: no consistent cut in [%d,%d] (committed %d, acked %d, cacheSurvives=%v)\n  %s",
		w.gid, low, len(w.ops), w.committed, w.acked, cacheSurvives, strings.Join(detail, "\n  "))
}

// dumpObjects prints every backend object's header (debug aid for
// torture failures): type, write watermark, trim markers and data
// extents intersecting [lo,hi) blocks, with the op stamp each data
// extent carries.
func dumpObjects(t *testing.T, store objstore.Store, lo, hi int64) {
	t.Helper()
	loS, hiS := block.LBA(lo*8), block.LBA(hi*8)
	for seq := uint32(1); ; seq++ {
		raw, err := store.Get(ctx, fmt.Sprintf("vol.%08d", seq))
		if err != nil {
			t.Logf("obj %d: %v (end)", seq, err)
			return
		}
		h, _, err := journal.DecodeHeader(raw)
		if err != nil {
			t.Logf("obj %d: header: %v", seq, err)
			continue
		}
		var parts []string
		hdrBytes := journal.HeaderSize(len(h.Extents))
		hdrBytes = (hdrBytes + 511) &^ 511
		cursor := int64(hdrBytes)
		for _, e := range h.Extents {
			isTrim := e.SrcSeq == ^uint64(0)
			end := e.LBA + block.LBA(e.Sectors)
			if end > loS && e.LBA < hiS {
				if isTrim {
					parts = append(parts, fmt.Sprintf("trim[%d+%d)", e.LBA/8, e.Sectors/8))
				} else {
					var seqs []string
					for b := int64(0); b < int64(e.Sectors)/8; b++ {
						off := cursor + b*block.BlockSize
						if off+stampLen <= int64(len(raw)) {
							v, _, ok := readStamp(raw[off:])
							if ok {
								_, s := cwDecode(v)
								seqs = append(seqs, fmt.Sprintf("%d", s))
							} else {
								seqs = append(seqs, "-")
							}
						}
					}
					parts = append(parts, fmt.Sprintf("data[%d+%d)=op{%s}", e.LBA/8, e.Sectors/8, strings.Join(seqs, ",")))
				}
			}
			if !isTrim {
				cursor += int64(e.Sectors) * 512
			}
		}
		t.Logf("obj %d: type=%v ws=%d exts=%d: %s", seq, h.Type, h.WriteSeq, len(h.Extents), strings.Join(parts, " "))
	}
}

// TestConcurrentTorture runs the concurrent crash/recover loop. Under
// -race it doubles as a data-race hunt over the group-commit reserve
// path, the off-lock seal/upload pipeline and Kill's quiesce; under
// -tags lsvdcheck every internal invariant fires too (both come via
// the standard make targets — the consistency package is in
// RACE_PKGS).
func TestConcurrentTorture(t *testing.T) {
	seed := envInt("LSVD_FAULT_SEED", 1)
	iters := envInt("LSVD_FAULT_ITERS", 12)
	if testing.Short() && iters > 4 {
		iters = 4
	}
	baseGoroutines := runtime.NumGoroutine()
	for it := int64(0); it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("seed=%d", seed+it), func(t *testing.T) {
			concurrentIteration(t, seed+it)
		})
		if t.Failed() {
			break
		}
	}
	waitGoroutines(t, baseGoroutines)
}

func concurrentIteration(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x636f6e63))
	store := objstore.NewFaulty(objstore.NewMem())
	cache := simdev.NewMem(32 * block.MiB)
	opts := core.Options{
		Volume: "vol", Store: store, CacheDev: cache,
		VolBytes: 16 * block.MiB, BatchBytes: 128 << 10,
		CheckpointEvery: 4, UploadDepth: 2, DestageQueueDepth: 32,
		Retry: objstore.RetryPolicy{
			MaxAttempts: 16,
			BaseDelay:   50 * time.Microsecond,
			MaxDelay:    time.Millisecond,
			Seed:        seed,
		},
	}
	disk, err := core.Create(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	store.Arm(objstore.FaultConfig{
		Seed:       seed,
		Rates:      objstore.UniformRates(cwFaultRate),
		TornWrites: true,
	})
	defer store.Disarm()

	writers := make([]*cwWriter, cwWriters)
	var wg sync.WaitGroup
	for g := 0; g < cwWriters; g++ {
		w := &cwWriter{gid: g, base: int64(g) * cwSpan}
		writers[g] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(disk, seed*int64(cwWriters)+int64(w.gid))
		}()
	}
	time.Sleep(time.Duration(2+rng.Intn(7)) * time.Millisecond)
	disk.Kill()
	wg.Wait()
	for _, w := range writers {
		if w.err != nil {
			t.Fatalf("writer %d failed outside the fault model: %v", w.gid, w.err)
		}
	}

	cacheSurvives := rng.Intn(2) == 0
	if !cacheSurvives {
		opts.CacheDev = simdev.NewMem(32 * block.MiB)
	}
	disk2, err := openWithRetry(t, opts)
	if err != nil {
		t.Fatalf("recovery failed (cacheSurvives=%v): %v", cacheSurvives, err)
	}
	for _, w := range writers {
		if err := w.check(disk2, cacheSurvives); err != nil {
			t.Error(err)
			dumpObjects(t, store, writers[3].base, writers[3].base+cwSpan)
		}
	}

	// The recovered disk must keep working: one fresh stamped write per
	// range, a barrier, and a read-back.
	for _, w := range writers {
		seq := uint64(len(w.ops)) + 1
		buf := make([]byte, block.BlockSize)
		stampBlock(buf, cwStamp(w.gid, seq), w.base)
		if err := disk2.WriteAt(buf, w.base*block.BlockSize); err != nil {
			if errors.Is(err, objstore.ErrInjected) {
				store.Disarm()
				_ = disk2.Close()
				return // legal crash point; this iteration ends here
			}
			t.Fatalf("post-recovery write (writer %d): %v", w.gid, err)
		}
	}
	if err := disk2.Flush(); err != nil && !errors.Is(err, objstore.ErrInjected) {
		t.Fatalf("post-recovery barrier: %v", err)
	}
	for _, w := range writers {
		buf := make([]byte, block.BlockSize)
		if err := disk2.ReadAt(buf, w.base*block.BlockSize); err != nil {
			t.Fatalf("post-recovery read (writer %d): %v", w.gid, err)
		}
		v, idx, ok := readStamp(buf)
		if gid, seq := cwDecode(v); !ok || gid != w.gid || idx != w.base || seq != uint64(len(w.ops))+1 {
			t.Fatalf("post-recovery read-back (writer %d): got stamp ok=%v v=%d idx=%d", w.gid, ok, v, idx)
		}
	}

	store.Disarm() // let Close drain without injected failures
	if err := disk2.Close(); err != nil {
		t.Logf("close after torture: %v", err)
	}
}
