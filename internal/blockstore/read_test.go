package blockstore

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/objstore"
)

// slowRangeStore delays range GETs so concurrent cold readers overlap.
type slowRangeStore struct {
	objstore.Store
	delay time.Duration
}

func (s *slowRangeStore) GetRange(ctx context.Context, name string, off, length int64) ([]byte, error) {
	time.Sleep(s.delay)
	return s.Store.GetRange(ctx, name, off, length)
}

// TestHeaderSingleflight: concurrent cold header readers share one
// backend fetch (the old headerL issued it under s.mu, serializing
// every lookup behind the GET and re-fetching per caller).
func TestHeaderSingleflight(t *testing.T) {
	slow := &slowRangeStore{Store: objstore.NewMem(), delay: 5 * time.Millisecond}
	met := objstore.NewMetered(slow)
	s := newVolume(t, met, Config{})
	data := bytes.Repeat([]byte{7}, 64*1024)
	if err := s.Append(1, block.Extent{LBA: 0, Sectors: 128}, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	seq := uint32(s.Stats().NextSeq - 1)

	// Evict the header cached at install time so every caller is cold.
	s.mu.Lock()
	s.hdrCache = make(map[uint32]*hdrEntry)
	s.mu.Unlock()
	met.Reset()

	const callers = 8
	var (
		wg   sync.WaitGroup
		hdrs [callers]*hdrEntry
		errs [callers]error
	)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			hdrs[i], errs[i] = s.header(seq)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if hdrs[i] != hdrs[0] {
			t.Fatal("callers decoded separate header copies")
		}
	}
	if n := s.Stats().HeaderFetches; n != 1 {
		t.Fatalf("%d concurrent cold header reads did %d backend fetches, want 1", callers, n)
	}
	if got := met.Stats().GetRanges; got > 2 {
		t.Fatalf("header singleflight issued %d range GETs, want <=2 (probe + tail)", got)
	}
}

// TestFetchSpanWindowDedup: concurrent FetchSpan calls for runs inside
// the same aligned window share one range GET, and joiners see the
// Shared flag.
func TestFetchSpanWindowDedup(t *testing.T) {
	slow := &slowRangeStore{Store: objstore.NewMem(), delay: 5 * time.Millisecond}
	met := objstore.NewMetered(slow)
	s := newVolume(t, met, Config{FetchDepth: 8})
	data := bytes.Repeat([]byte{9}, 256*1024)
	if err := s.Append(1, block.Extent{LBA: 0, Sectors: 512}, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	met.Reset()

	// Two disjoint 4 KiB runs, same 128 KiB window.
	const window = 256 // sectors
	runsA := s.Lookup(block.Extent{LBA: 0, Sectors: 8})
	runsB := s.Lookup(block.Extent{LBA: 64, Sectors: 8})
	if len(runsA) != 1 || !runsA[0].Present || len(runsB) != 1 || !runsB[0].Present {
		t.Fatalf("unexpected lookup shape: %v %v", runsA, runsB)
	}

	const callers = 6
	var (
		wg     sync.WaitGroup
		shared [callers]bool
		errs   [callers]error
	)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			runs := runsA
			if i%2 == 1 {
				runs = runsB
			}
			f, err := s.FetchSpan(runs, window)
			if err != nil {
				errs[i] = err
				return
			}
			defer f.Release()
			shared[i] = f.Shared
			got, err := f.Slice(runs[0])
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, data[:4096]) { // uniform payload
				t.Error("window slice returned wrong bytes")
			}
		}(i)
	}
	close(start)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := met.Stats().GetRanges; n != 1 {
		t.Fatalf("same-window concurrent fetches issued %d GETs, want 1", n)
	}
	nShared := 0
	for _, sh := range shared {
		if sh {
			nShared++
		}
	}
	if nShared != callers-1 {
		t.Fatalf("%d of %d fetchers joined the flight, want %d", nShared, callers, callers-1)
	}
	st := s.Stats()
	if st.FetchGETs != 1 || st.FetchesDeduped != uint64(callers-1) {
		t.Fatalf("stats: GETs=%d deduped=%d, want 1/%d", st.FetchGETs, st.FetchesDeduped, callers-1)
	}
}
