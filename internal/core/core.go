// Package core assembles the LSVD virtual disk (paper Fig 1): a
// log-structured write-back cache and a read cache on a local SSD, and
// a log-structured block store on an S3-like backend. It implements the
// three block-device operations — write, read, commit barrier (§3.2) —
// plus discard, and the crash-recovery orchestration of §3.3:
//
//   - Writes are logged to the cache SSD (acknowledged on log write),
//     then forwarded to the block store, which batches them into
//     numbered immutable objects.
//   - Reads consult the write cache, then the read cache, then the
//     backend; backend misses prefetch temporally adjacent data into
//     the read cache.
//   - A commit barrier is one cache-device flush.
//   - On open after a crash, the cache log is rewound to the last
//     backend object and the tail replayed, bringing the backend up to
//     date with every write the cache preserved; if the cache is lost
//     entirely, the recovered volume is a consistent prefix of
//     committed writes (prefix consistency, §3.4).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
	"lsvd/internal/readcache"
	"lsvd/internal/simdev"
	"lsvd/internal/vdisk"
	"lsvd/internal/writecache"
)

// Options configures an LSVD disk.
type Options struct {
	// Volume names the object stream on the backend.
	Volume string
	// Store is the S3-like backend.
	Store objstore.Store
	// CacheDev is the local SSD. It is statically partitioned: the
	// first WriteCacheFrac of it logs writes, the rest is read cache.
	CacheDev simdev.Device
	// VolBytes is the virtual disk size (Create only).
	VolBytes int64

	// WriteCacheFrac is the fraction of the SSD used for the write
	// log. Default 0.2 (§3.1's sizing discussion).
	WriteCacheFrac float64
	// BatchBytes is the backend object batch size (8–32 MiB in the
	// paper). Default 8 MiB.
	BatchBytes int64
	// GCLowWater/GCHighWater are the §3.5 utilization thresholds.
	// Defaults 0.70/0.75; GCLowWater < 0 disables GC.
	GCLowWater, GCHighWater float64
	// PrefetchSectors is the temporal read-ahead window. Default 256
	// sectors (128 KiB); 0 disables prefetch.
	PrefetchSectors uint32
	// ReadCachePolicy selects FIFO (default, as in the prototype) or
	// LRU slab eviction.
	ReadCachePolicy readcache.Policy
	// CheckpointEvery objects between backend map checkpoints.
	CheckpointEvery int
	// WriteCacheCheckpointEvery records between cache map checkpoints.
	WriteCacheCheckpointEvery int
	// ReadbackThroughSSD mimics the kernel/user prototype (§3.7): the
	// destage path re-reads outgoing data from the cache SSD instead
	// of handing it over in memory, adding the SSD round trip the
	// paper measures in Table 6.
	ReadbackThroughSSD bool
	// DisableGCCacheFetch stops the GC from reading live data out of
	// the local write cache (ablation for §3.5's optimization).
	DisableGCCacheFetch bool
}

func (o *Options) setDefaults() {
	if o.WriteCacheFrac == 0 {
		o.WriteCacheFrac = 0.2
	}
	if o.BatchBytes == 0 {
		o.BatchBytes = 8 * block.MiB
	}
	if o.GCLowWater == 0 {
		o.GCLowWater = 0.70
	}
	if o.GCHighWater == 0 {
		o.GCHighWater = 0.75
	}
	if o.GCLowWater < 0 {
		o.GCLowWater = 0
	}
	if o.PrefetchSectors == 0 {
		o.PrefetchSectors = 256
	}
}

// Stats aggregates counters from all three layers.
type Stats struct {
	Writes, Reads, Flushes, Trims uint64
	BytesWritten, BytesRead       uint64
	WriteCacheHitSectors          uint64
	ReadCacheHitSectors           uint64
	BackendReadSectors            uint64
	ZeroFillSectors               uint64
	PrefetchedSectors             uint64
	WriteSeq                      uint64
	RecoveredReplayed             int // cache records replayed to backend at open

	WriteCache writecache.Stats
	ReadCache  readcache.Stats
	Backend    blockstore.Stats
}

// Disk is an LSVD virtual disk. Operations are serialized by a single
// mutex, which matches the prototype's per-volume ordering semantics
// and keeps the write log strictly ordered.
type Disk struct {
	mu   sync.Mutex
	opts Options

	wc *writecache.Cache
	rc *readcache.Cache
	bs *blockstore.Store

	volSectors block.LBA
	writeSeq   uint64
	readOnly   bool

	stats Stats
}

// ErrReadOnly is returned for mutations on snapshot mounts.
var ErrReadOnly = blockstore.ErrReadOnly

var _ vdisk.Disk = (*Disk)(nil)

// Create initializes a new LSVD volume on a fresh cache device and
// backend prefix.
func Create(ctx context.Context, opts Options) (*Disk, error) {
	opts.setDefaults()
	if opts.VolBytes <= 0 || opts.VolBytes%block.SectorSize != 0 {
		return nil, fmt.Errorf("core: invalid volume size %d", opts.VolBytes)
	}
	d := &Disk{opts: opts, volSectors: block.LBAFromBytes(opts.VolBytes)}
	wcDev, rcDev, err := splitCache(opts)
	if err != nil {
		return nil, err
	}
	if d.wc, err = writecache.Format(wcDev, wcConfig(opts, wcDev)); err != nil {
		return nil, err
	}
	if d.rc, err = readcache.New(rcDev, rcConfig(opts, rcDev)); err != nil {
		return nil, err
	}
	if d.bs, err = blockstore.Create(ctx, d.storeConfig()); err != nil {
		return nil, err
	}
	return d, nil
}

// wcConfig and rcConfig scale the metadata reservations to the cache
// partition so small experiment caches still leave room for data.
func wcConfig(opts Options, dev simdev.Device) writecache.Config {
	ckpt := dev.Size() / 8
	if ckpt > 16*block.MiB {
		ckpt = 16 * block.MiB
	}
	if ckpt < 2*block.BlockSize {
		ckpt = 2 * block.BlockSize
	}
	return writecache.Config{CheckpointBytes: ckpt &^ (block.BlockSize - 1), CheckpointEvery: opts.WriteCacheCheckpointEvery}
}

func rcConfig(opts Options, dev simdev.Device) readcache.Config {
	mapBytes := dev.Size() / 8
	if mapBytes > 16*block.MiB {
		mapBytes = 16 * block.MiB
	}
	if mapBytes < block.BlockSize {
		mapBytes = block.BlockSize
	}
	slab := int64(4 * block.MiB)
	for slab > 256<<10 && (dev.Size()-mapBytes)/slab < 8 {
		slab /= 2
	}
	return readcache.Config{Policy: opts.ReadCachePolicy, MapBytes: mapBytes, SlabBytes: slab}
}

// Open recovers an LSVD volume: the cache log is replayed, the backend
// recovered by the prefix rule, and any committed writes present in
// the cache but missing from the backend are re-sent (§3.3).
func Open(ctx context.Context, opts Options) (*Disk, error) {
	opts.setDefaults()
	d := &Disk{opts: opts}
	wcDev, rcDev, err := splitCache(opts)
	if err != nil {
		return nil, err
	}
	wc, wcErr := writecache.Open(wcDev, wcConfig(opts, wcDev))
	if wcErr != nil {
		// Cache lost or blank (§3.4 worst case): reformat it; the
		// volume falls back to the backend's consistent prefix.
		if wc, err = writecache.Format(wcDev, wcConfig(opts, wcDev)); err != nil {
			return nil, err
		}
	}
	d.wc = wc
	if d.rc, err = readcache.New(rcDev, rcConfig(opts, rcDev)); err != nil {
		return nil, err
	}
	if d.bs, err = blockstore.Open(ctx, d.storeConfig()); err != nil {
		return nil, err
	}
	d.volSectors = d.bs.VolSectors()

	// Rewind & replay: push cache records newer than the backend's
	// durable watermark back through the block store.
	durable := d.bs.DurableWriteSeq()
	replayed := 0
	err = d.wc.RecordsAfter(durable, func(ws uint64, typ journal.Type, ext block.Extent, data []byte) error {
		replayed++
		if typ == journal.TypeTrim {
			return d.bs.Trim(ws, ext)
		}
		return d.bs.Append(ws, ext, data)
	})
	if err != nil {
		return nil, fmt.Errorf("core: cache replay: %w", err)
	}
	if replayed > 0 {
		if err := d.bs.Seal(); err != nil {
			return nil, err
		}
	}
	d.stats.RecoveredReplayed = replayed
	d.wc.SetDestaged(d.bs.DurableWriteSeq())
	d.writeSeq = d.bs.DurableWriteSeq()
	if ws := d.wc.MaxWriteSeq(); ws > d.writeSeq {
		d.writeSeq = ws
	}
	return d, nil
}

// OpenSnapshot mounts a named snapshot of the volume as a read-only
// disk (§3.6: "can be mounted read-only by backtracking to the last
// map checkpoint before that point"). The cache device is used only
// for read caching; writes and trims are rejected.
func OpenSnapshot(ctx context.Context, opts Options, snapshot string) (*Disk, error) {
	opts.setDefaults()
	opts.GCLowWater = 0
	d := &Disk{opts: opts, readOnly: true}
	wcDev, rcDev, err := splitCache(opts)
	if err != nil {
		return nil, err
	}
	// The write cache stays empty; it exists only so the read path's
	// three-level lookup works unchanged.
	if d.wc, err = writecache.Format(wcDev, wcConfig(opts, wcDev)); err != nil {
		return nil, err
	}
	if d.rc, err = readcache.New(rcDev, rcConfig(opts, rcDev)); err != nil {
		return nil, err
	}
	if d.bs, err = blockstore.OpenSnapshot(ctx, d.storeConfig(), snapshot); err != nil {
		return nil, err
	}
	d.volSectors = d.bs.VolSectors()
	d.writeSeq = d.bs.DurableWriteSeq()
	return d, nil
}

func splitCache(opts Options) (simdev.Device, simdev.Device, error) {
	total := opts.CacheDev.Size()
	wcBytes := int64(float64(total)*opts.WriteCacheFrac) &^ (block.BlockSize - 1)
	wcDev, err := simdev.NewSection(opts.CacheDev, 0, wcBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("core: cache split: %w", err)
	}
	rcDev, err := simdev.NewSection(opts.CacheDev, wcBytes, total-wcBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("core: cache split: %w", err)
	}
	return wcDev, rcDev, nil
}

func (d *Disk) storeConfig() blockstore.Config {
	cfg := blockstore.Config{
		Volume:          d.opts.Volume,
		Store:           d.opts.Store,
		VolSectors:      d.volSectors,
		BatchBytes:      d.opts.BatchBytes,
		GCLowWater:      d.opts.GCLowWater,
		GCHighWater:     d.opts.GCHighWater,
		CheckpointEvery: d.opts.CheckpointEvery,
		OnDestage:       func(ws uint64) { d.wc.SetDestaged(ws) },
	}
	if !d.opts.DisableGCCacheFetch {
		cfg.FetchFromCache = d.gcFetch
	}
	return cfg
}

// gcFetch serves garbage-collection reads from the local write cache
// when the data is resident (§3.5). It is called with the block store
// lock held; it only touches the write cache, which has its own lock.
func (d *Disk) gcFetch(ext block.Extent, buf []byte) bool {
	runs := d.wc.Lookup(ext)
	for _, run := range runs {
		if !run.Present {
			return false
		}
	}
	for _, run := range runs {
		off := (run.LBA - ext.LBA).Bytes()
		if err := d.wc.ReadAt(run.Target, buf[off:off+run.Bytes()]); err != nil {
			return false
		}
	}
	return true
}

// Size returns the disk size in bytes.
func (d *Disk) Size() int64 { return d.volSectors.Bytes() }

func (d *Disk) checkIO(p []byte, off int64) (block.Extent, error) {
	if off%block.SectorSize != 0 {
		return block.Extent{}, fmt.Errorf("core: unaligned offset %d", off)
	}
	lba := block.LBAFromBytes(off)
	if err := block.CheckIO(d.volSectors, lba, p); err != nil {
		return block.Extent{}, err
	}
	return block.Extent{LBA: lba, Sectors: uint32(len(p) / block.SectorSize)}, nil
}

// WriteAt implements vdisk.Disk: the write is persisted to the cache
// log (acknowledged) and forwarded to the block store batch (§3.2).
func (d *Disk) WriteAt(p []byte, off int64) error {
	ext, err := d.checkIO(p, off)
	if err != nil {
		return err
	}
	if ext.Empty() {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.readOnly {
		return ErrReadOnly
	}
	d.writeSeq++
	ws := d.writeSeq

	if err := d.appendWithBackpressure(ws, ext, p); err != nil {
		return err
	}
	// Drop any stale read-cache copy (write-after-read hazard).
	d.rc.Invalidate(ext)

	// Forward to the block store. The prototype's destage path reads
	// the data back off the SSD (§3.7/Table 6); the in-memory handoff
	// models the userspace rewrite.
	src := p
	if d.opts.ReadbackThroughSSD {
		src = make([]byte, len(p))
		if !d.readFromWriteCache(ext, src) {
			src = p // should not happen; fall back to the caller's copy
		}
	}
	if err := d.bs.Append(ws, ext, src); err != nil {
		return err
	}
	d.stats.Writes++
	d.stats.BytesWritten += uint64(len(p))
	return nil
}

// appendWithBackpressure logs the write, sealing the backend batch to
// free reclaimable cache space when the ring is full of un-destaged
// records.
func (d *Disk) appendWithBackpressure(ws uint64, ext block.Extent, p []byte) error {
	for attempt := 0; ; attempt++ {
		err := d.wc.Append(ws, ext, p)
		if err == nil {
			return nil
		}
		if !errors.Is(err, writecache.ErrFull) || attempt >= 2 {
			return err
		}
		// Destage everything batched so far, then retry.
		if err := d.bs.Seal(); err != nil {
			return err
		}
	}
}

func (d *Disk) readFromWriteCache(ext block.Extent, buf []byte) bool {
	runs := d.wc.Lookup(ext)
	for _, run := range runs {
		if !run.Present {
			return false
		}
	}
	for _, run := range runs {
		off := (run.LBA - ext.LBA).Bytes()
		if err := d.wc.ReadAt(run.Target, buf[off:off+run.Bytes()]); err != nil {
			return false
		}
	}
	return true
}

// ReadAt implements vdisk.Disk: write cache, then read cache, then
// backend (Fig 1), zero-filling uninitialized ranges.
func (d *Disk) ReadAt(p []byte, off int64) error {
	ext, err := d.checkIO(p, off)
	if err != nil {
		return err
	}
	if ext.Empty() {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Reads++
	d.stats.BytesRead += uint64(len(p))

	// (1) Write cache.
	var missesWC []block.Extent
	for _, run := range d.wc.Lookup(ext) {
		sub := p[(run.LBA - ext.LBA).Bytes():][:run.Bytes()]
		if run.Present {
			if err := d.wc.ReadAt(run.Target, sub); err != nil {
				return err
			}
			d.stats.WriteCacheHitSectors += uint64(run.Sectors)
		} else {
			missesWC = append(missesWC, run.Extent)
		}
	}
	// (2) Read cache.
	var missesRC []block.Extent
	for _, miss := range missesWC {
		for _, run := range d.rc.Lookup(miss) {
			sub := p[(run.LBA - ext.LBA).Bytes():][:run.Bytes()]
			if run.Present {
				if err := d.rc.ReadAt(run.Target, sub); err != nil {
					return err
				}
				d.stats.ReadCacheHitSectors += uint64(run.Sectors)
			} else {
				missesRC = append(missesRC, run.Extent)
			}
		}
	}
	// (3) Block store, with temporal prefetch into the read cache.
	for _, miss := range missesRC {
		for _, run := range d.bs.Lookup(miss) {
			sub := p[(run.LBA - ext.LBA).Bytes():][:run.Bytes()]
			if !run.Present {
				clear(sub)
				d.stats.ZeroFillSectors += uint64(run.Sectors)
				continue
			}
			data, extras, err := d.bs.FetchRun(run, d.opts.PrefetchSectors)
			if err != nil {
				return err
			}
			copy(sub, data)
			d.stats.BackendReadSectors += uint64(run.Sectors)
			if err := d.rc.Insert(run.Extent, data); err != nil {
				return err
			}
			for _, ex := range extras {
				// Never let prefetched (older) data shadow the write
				// cache: it is inserted only into the read cache,
				// which the write cache precedes on lookup; but we
				// must not overwrite newer read-cache content either,
				// so only insert ranges the read cache doesn't have.
				if err := d.insertIfAbsent(ex.Ext, ex.Data); err != nil {
					return err
				}
				d.stats.PrefetchedSectors += uint64(ex.Ext.Sectors)
			}
		}
	}
	return nil
}

func (d *Disk) insertIfAbsent(ext block.Extent, data []byte) error {
	for _, run := range d.rc.Lookup(ext) {
		if run.Present {
			continue
		}
		sub := data[(run.LBA - ext.LBA).Bytes():][:run.Bytes()]
		if err := d.rc.Insert(run.Extent, sub); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements the commit barrier: one flush of the cache device
// (§3.2); no map metadata is written.
func (d *Disk) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Flushes++
	return d.wc.Flush()
}

// Trim implements discard.
func (d *Disk) Trim(off, length int64) error {
	if length == 0 {
		return nil
	}
	if off%block.SectorSize != 0 || length%block.SectorSize != 0 {
		return fmt.Errorf("core: unaligned trim [%d,%d)", off, off+length)
	}
	lba := block.LBAFromBytes(off)
	n := block.LBA(length / block.SectorSize)
	if lba+n > d.volSectors {
		return fmt.Errorf("core: trim beyond end of disk")
	}
	ext := block.Extent{LBA: lba, Sectors: uint32(n)}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.readOnly {
		return ErrReadOnly
	}
	d.writeSeq++
	ws := d.writeSeq
	if err := d.wc.AppendTrim(ws, ext); err != nil {
		if !errors.Is(err, writecache.ErrFull) {
			return err
		}
		if err := d.bs.Seal(); err != nil {
			return err
		}
		if err := d.wc.AppendTrim(ws, ext); err != nil {
			return err
		}
	}
	d.rc.Invalidate(ext)
	if err := d.bs.Trim(ws, ext); err != nil {
		return err
	}
	d.stats.Trims++
	return nil
}

// Drain seals the pending backend batch, making every acknowledged
// write durable remotely; cache and backend are synchronized when it
// returns (used before VM migration, §4.3/§4.4).
func (d *Disk) Drain() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bs.Seal()
}

// Checkpoint forces map checkpoints in both logs.
func (d *Disk) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.bs.Checkpoint(); err != nil {
		return err
	}
	return d.wc.Checkpoint()
}

// Close drains, checkpoints and persists all metadata.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.readOnly {
		return d.rc.Persist()
	}
	if err := d.bs.Seal(); err != nil {
		return err
	}
	if err := d.bs.Checkpoint(); err != nil {
		return err
	}
	if err := d.wc.Close(); err != nil {
		return err
	}
	return d.rc.Persist()
}

// Snapshot creates a named snapshot (§3.6).
func (d *Disk) Snapshot(name string) (blockstore.SnapshotInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bs.CreateSnapshot(name)
}

// DeleteSnapshot removes a snapshot.
func (d *Disk) DeleteSnapshot(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bs.DeleteSnapshot(name)
}

// Snapshots lists snapshots.
func (d *Disk) Snapshots() []blockstore.SnapshotInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bs.Snapshots()
}

// RunGC triggers a garbage-collection pass.
func (d *Disk) RunGC() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bs.RunGC()
}

// Stats returns a snapshot of all counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.stats
	st.WriteSeq = d.writeSeq
	st.WriteCache = d.wc.Stats()
	st.ReadCache = d.rc.Stats()
	st.Backend = d.bs.Stats()
	return st
}

// Backend exposes the block store (for replication tooling and the
// experiment harness).
func (d *Disk) Backend() *blockstore.Store { return d.bs }
