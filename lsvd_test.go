package lsvd

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"path/filepath"
	"testing"

	"lsvd/internal/nbd"
)

var ctx = context.Background()

func TestPublicAPIRoundTrip(t *testing.T) {
	disk, err := Create(ctx, VolumeOptions{
		Name: "v", Store: MemStore(), Cache: MemCacheDevice(256 * MiB), Size: 256 * MiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64*1024)
	rand.New(rand.NewSource(1)).Read(data)
	if err := disk.WriteAt(data, 1*MiB); err != nil {
		t.Fatal(err)
	}
	if err := disk.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := disk.ReadAt(got, 1*MiB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if disk.Size() != 256*MiB {
		t.Fatalf("size %d", disk.Size())
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDirStoreFileCache(t *testing.T) {
	dir := t.TempDir()
	store, err := DirStore(filepath.Join(dir, "objects"))
	if err != nil {
		t.Fatal(err)
	}
	cache, err := FileCacheDevice(filepath.Join(dir, "cache.img"), 64*MiB)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := Create(ctx, VolumeOptions{Name: "v", Store: store, Cache: cache, Size: 64 * MiB})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("durable across reopen............................................")
	data = data[:64]
	pad := make([]byte, 4096)
	copy(pad, data)
	if err := disk.WriteAt(pad, 0); err != nil {
		t.Fatal(err)
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen from the same directory and cache file.
	cache2, err := FileCacheDevice(filepath.Join(dir, "cache.img"), 64*MiB)
	if err != nil {
		t.Fatal(err)
	}
	disk2, err := Open(ctx, VolumeOptions{Name: "v", Store: store, Cache: cache2})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := disk2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pad) {
		t.Fatal("data lost across reopen")
	}
}

func TestPublicAPISnapshotClone(t *testing.T) {
	store := MemStore()
	disk, err := Create(ctx, VolumeOptions{Name: "base", Store: store, Cache: MemCacheDevice(128 * MiB), Size: 128 * MiB})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8192)
	rand.New(rand.NewSource(2)).Read(data)
	_ = disk.WriteAt(data, 0)
	if _, err := disk.Snapshot("golden"); err != nil {
		t.Fatal(err)
	}
	if err := Clone(ctx, store, "base", "golden", "vm1"); err != nil {
		t.Fatal(err)
	}
	vm1, err := Open(ctx, VolumeOptions{Name: "vm1", Store: store, Cache: MemCacheDevice(128 * MiB)})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	if err := vm1.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("clone cannot read base image")
	}
}

func TestPublicAPINBD(t *testing.T) {
	disk, err := Create(ctx, VolumeOptions{Name: "v", Store: MemStore(), Cache: MemCacheDevice(64 * MiB), Size: 64 * MiB})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ServeNBD(ln, "v", disk) }()
	defer ln.Close()
	c, err := nbd.Dial(ln.Addr().String(), "v")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(data)
	if err := c.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("NBD round trip mismatch")
	}
}

func TestPublicAPIReplication(t *testing.T) {
	primary := MemStore()
	secondary := MemStore()
	disk, err := Create(ctx, VolumeOptions{
		Name: "v", Store: primary, Cache: MemCacheDevice(64 * MiB),
		Size: 64 * MiB, BatchBytes: 256 * 1024,
		ReplicaStore: secondary, ReplicaMaxLagObjects: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512*1024)
	rand.New(rand.NewSource(4)).Read(data)
	_ = disk.WriteAt(data, 0)
	// Close drains the shipper: the replica ends at zero lag.
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
	if st := disk.Stats(); !st.ReplicaEnabled || st.Replica.LagObjects != 0 {
		t.Fatalf("replica not drained: %+v", st.Replica)
	}

	// Read-only inspection mount of the replica.
	ro, err := OpenFromReplica(ctx, VolumeOptions{
		Name: "v", ReplicaStore: secondary, Cache: MemCacheDevice(64 * MiB),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := ro.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-only replica content differs")
	}
	if err := ro.WriteAt(data, 0); err == nil {
		t.Fatal("read-only replica mount accepted a write")
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}

	// Promote: the replica becomes the new primary with a fresh cache.
	rdisk, err := OpenFromReplica(ctx, VolumeOptions{
		Name: "v", ReplicaStore: secondary, Cache: MemCacheDevice(64 * MiB),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	got = make([]byte, len(data))
	if err := rdisk.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("replica content differs")
	}
	// The promoted volume is writable (liveness after failover).
	if err := rdisk.WriteAt(data, MiB); err != nil {
		t.Fatal(err)
	}
	if err := rdisk.Close(); err != nil {
		t.Fatal(err)
	}
}
