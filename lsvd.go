// Package lsvd is a log-structured virtual disk: the public API of
// this repository's from-scratch reproduction of "Beating the I/O
// Bottleneck: A Case for Log-Structured Virtual Disks" (EuroSys '22).
//
// An LSVD volume is a virtual block device that couples a
// log-structured write-back cache on a local SSD with a log-structured
// stream of immutable objects on any S3-like store:
//
//	store, _ := lsvd.DirStore("/var/lib/lsvd/objects")
//	cache, _ := lsvd.FileCacheDevice("/var/lib/lsvd/cache.img", 10*lsvd.GiB)
//	disk, _ := lsvd.Create(ctx, lsvd.VolumeOptions{
//		Name: "vm1", Store: store, Cache: cache, Size: 100 * lsvd.GiB,
//	})
//	defer disk.Close()
//	_ = disk.WriteAt(buf, 0)       // acknowledged when logged locally
//	_ = disk.Flush()               // commit barrier: one SSD flush
//	_ = lsvd.ServeNBD(ln, "vm1", disk) // expose to the kernel
//
// Writes are acknowledged as soon as they are persisted in the local
// log, batched into large objects for the backend, and garbage
// collected as they are overwritten. Crash recovery replays the local
// log over the backend's consistent prefix; if the cache is lost
// entirely, the volume recovers to a consistent prefix of committed
// writes (prefix consistency). Snapshots, clones from golden images,
// and asynchronous replication ride on the immutable object stream.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-reproduction results.
package lsvd

import (
	"context"
	"errors"
	"net"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/core"
	"lsvd/internal/host"
	"lsvd/internal/nbd"
	"lsvd/internal/objstore"
	"lsvd/internal/readcache"
	"lsvd/internal/replica"
	"lsvd/internal/simdev"
	"lsvd/internal/vdisk"
)

// Size units.
const (
	KiB = block.KiB
	MiB = block.MiB
	GiB = block.GiB
	TiB = block.TiB
)

// Disk is the virtual block device: sector-aligned ReadAt/WriteAt,
// Flush (commit barrier), Trim (discard), Size.
type Disk = core.Disk

// BlockDevice is the minimal interface all disks in this module
// implement (LSVD volumes, baselines, NBD clients).
type BlockDevice = vdisk.Disk

// ObjectStore is the S3-like backend interface.
type ObjectStore = objstore.Store

// RetryPolicy configures backend retry/backoff (see VolumeOptions.Retry).
type RetryPolicy = objstore.RetryPolicy

// CacheDevice is the local SSD abstraction.
type CacheDevice = simdev.Device

// SnapshotInfo names a snapshot and its position in the object stream.
type SnapshotInfo = blockstore.SnapshotInfo

// Stats aggregates counters from all layers of a volume.
type Stats = core.Stats

// Eviction policies for the read cache.
const (
	ReadCacheFIFO = readcache.FIFO
	ReadCacheLRU  = readcache.LRU
)

// VolumeOptions configures Create and Open.
type VolumeOptions struct {
	// Name is the volume name; backend objects are "<name>.<seq>".
	Name string
	// Store is the object backend.
	Store ObjectStore
	// Cache is the local SSD (file- or memory-backed).
	Cache CacheDevice
	// Size is the virtual disk size in bytes (Create only).
	Size int64

	// Advanced tuning; zero values select the paper's configuration.
	WriteCacheFraction float64 // SSD share for the write log (0.2)
	BatchBytes         int64   // backend object size (8 MiB)
	GCLowWater         float64 // GC trigger utilization (0.70); <0 disables
	GCHighWater        float64 // GC stop utilization (0.75)
	GCWAFTarget        float64 // background GC write-amplification budget (2.0); <0 unpaces
	PrefetchBytes      int64   // temporal read-ahead (128 KiB)
	ReadCachePolicy    readcache.Policy

	// Destage pipeline tuning; zero values select the defaults.
	UploadDepth       int  // concurrent backend object PUTs (4)
	DestageQueueDepth int  // queued writes between ack and destage (256)
	SyncDestage       bool // disable the pipeline: destage inline (off)

	// FetchDepth bounds concurrent backend range GETs on the
	// read-miss path (8); 1 serializes misses as before the parallel
	// read pipeline.
	FetchDepth int

	// OpenFanout bounds concurrent backend reads during crash
	// recovery at Open (8); 1 serializes recovery I/O as before the
	// parallel replay pipeline. Replay application stays strictly
	// sequence-ordered either way.
	OpenFanout int

	// Retry is the backend retry policy: transient store failures are
	// retried with exponential backoff + jitter under one per-op
	// attempt budget across reads, uploads, GC and recovery. The zero
	// value selects the defaults (4 attempts, 2 ms base backoff);
	// MaxAttempts < 0 disables retries.
	Retry RetryPolicy

	// ReplicaStore enables asynchronous replication (§4.8): a
	// background shipper copies every committed object to this second
	// store in commit order, keeping it a crash-consistent prefix of
	// the primary. Recover from it with OpenFromReplica.
	ReplicaStore ObjectStore
	// ReplicaMaxLagObjects / ReplicaMaxLagBytes bound the replication
	// lag — the recovery-point objective. When the unshipped backlog
	// exceeds either bound, writes stall until the shipper catches up;
	// 0 leaves that dimension unbounded.
	ReplicaMaxLagObjects int
	ReplicaMaxLagBytes   int64
}

func (o VolumeOptions) coreOptions() core.Options {
	opts := core.Options{
		Volume:          o.Name,
		Store:           o.Store,
		CacheDev:        o.Cache,
		VolBytes:        o.Size,
		WriteCacheFrac:  o.WriteCacheFraction,
		BatchBytes:      o.BatchBytes,
		GCLowWater:      o.GCLowWater,
		GCHighWater:     o.GCHighWater,
		GCWAFTarget:     o.GCWAFTarget,
		ReadCachePolicy: o.ReadCachePolicy,

		UploadDepth:       o.UploadDepth,
		DestageQueueDepth: o.DestageQueueDepth,
		SyncDestage:       o.SyncDestage,
		FetchDepth:        o.FetchDepth,
		OpenFanout:        o.OpenFanout,
		Retry:             o.Retry,

		ReplicaStore:         o.ReplicaStore,
		ReplicaMaxLagObjects: o.ReplicaMaxLagObjects,
		ReplicaMaxLagBytes:   o.ReplicaMaxLagBytes,
	}
	if o.PrefetchBytes > 0 {
		opts.PrefetchSectors = uint32(o.PrefetchBytes / block.SectorSize)
	}
	return opts
}

// flatHost builds the single-volume host every Create/Open runs on:
// one slot covering the whole write-cache region, the historical flat
// key layout, and the volume's own depths as the (single-tenant)
// host-wide budgets. Multi-volume deployments use OpenHost instead.
func (o VolumeOptions) flatHost(ctx context.Context) (*Host, error) {
	return host.New(ctx, host.Options{
		Store:           o.Store,
		CacheDev:        o.Cache,
		FlatKeys:        true,
		WriteCacheFrac:  o.WriteCacheFraction,
		ReadCachePolicy: o.ReadCachePolicy,
		UploadDepth:     o.UploadDepth,
		FetchDepth:      o.FetchDepth,
		OpenFanout:      o.OpenFanout,
		Retry:           o.Retry,
	})
}

// Create initializes a new volume. It is a thin one-volume host: the
// same code path that packs eight volumes onto a shared SSD serves a
// single volume with the pre-host key layout and cache split.
func Create(ctx context.Context, o VolumeOptions) (*Disk, error) {
	h, err := o.flatHost(ctx)
	if err != nil {
		return nil, err
	}
	_, v := o.coreOptions().Split()
	return h.Create(ctx, o.Name, v)
}

// Open recovers an existing volume: local log replay, backend prefix
// recovery, and re-destage of any writes the backend is missing.
func Open(ctx context.Context, o VolumeOptions) (*Disk, error) {
	h, err := o.flatHost(ctx)
	if err != nil {
		return nil, err
	}
	_, v := o.coreOptions().Split()
	return h.Open(ctx, o.Name, v)
}

// Clone creates a new volume sharing the base volume's objects up to
// the named snapshot as an immutable prefix (copy-on-write clone).
func Clone(ctx context.Context, store ObjectStore, baseVolume, snapshot, newVolume string) error {
	return blockstore.Clone(ctx, blockstore.Config{Volume: baseVolume, Store: store}, snapshot, newVolume)
}

// OpenSnapshot mounts a named snapshot read-only; writes and trims
// return core.ErrReadOnly.
func OpenSnapshot(ctx context.Context, o VolumeOptions, snapshot string) (*Disk, error) {
	return core.OpenSnapshot(ctx, o.coreOptions(), snapshot)
}

// MemStore returns an in-memory object store (tests, experiments).
func MemStore() ObjectStore { return objstore.NewMem() }

// DirStore returns an object store backed by a directory tree. Puts
// are atomic and crash-durable (fsync before and after the rename).
func DirStore(dir string) (ObjectStore, error) { return objstore.NewDir(dir) }

// DirStoreNoSync returns a directory store with the durability fsyncs
// disabled — faster, but an acknowledged object can vanish if the
// host crashes before writeback. Benchmarks only.
func DirStoreNoSync(dir string) (ObjectStore, error) { return objstore.NewDirNoSync(dir) }

// MemCacheDevice returns an in-memory cache device of the given size.
func MemCacheDevice(size int64) CacheDevice { return simdev.NewMem(size) }

// FileCacheDevice opens (creating if needed) a file-backed cache
// device.
func FileCacheDevice(path string, size int64) (CacheDevice, error) {
	return simdev.OpenFile(path, size)
}

// ServeNBD exports disks over the NBD protocol on ln, blocking until
// the listener closes. Use an nbd-client or qemu against the address.
func ServeNBD(ln net.Listener, name string, disk BlockDevice, more ...struct {
	Name string
	Disk BlockDevice
}) error {
	srv := nbd.NewServer(nbd.Export{Name: name, Disk: disk})
	for _, m := range more {
		srv.AddExport(nbd.Export{Name: m.Name, Disk: m.Disk})
	}
	return srv.Serve(ln)
}

// ReplicaStats reports a replicated volume's shipping progress and
// live lag (Stats.Replica).
type ReplicaStats = replica.Stats

// OpenFromReplica recovers a volume from its replica store after the
// primary is lost (§4.8). The replica is a crash-consistent prefix of
// the primary, so this is exactly crash recovery against a surviving
// backend. With promote, the replica becomes the new primary: the
// volume opens writable against it, un-replicated (to re-replicate,
// use Open with Store set to the old replica and ReplicaStore to a
// fresh target). Without promote, the volume mounts read-only for
// inspection, leaving the replica untouched.
// o.Store is ignored; o.Cache is used for caching only — a stale
// primary cache must NOT be replayed over the replica's history, so
// pass a fresh cache device.
func OpenFromReplica(ctx context.Context, o VolumeOptions, promote bool) (*Disk, error) {
	if o.ReplicaStore == nil {
		return nil, errors.New("lsvd: OpenFromReplica requires ReplicaStore")
	}
	o.Store, o.ReplicaStore = o.ReplicaStore, nil
	if promote {
		return Open(ctx, o)
	}
	return core.OpenReadOnly(ctx, o.coreOptions())
}

// Host packs many volumes onto one cache SSD and one backend bucket:
// per-volume write-cache log slots, one shared read-cache arena with
// fair eviction, host-wide upload/fetch concurrency budgets, and
// per-volume key namespaces ("vol/<name>/…"). See internal/host.
type Host = host.Host

// HostStats is the host-aggregate picture: per-volume stats, arena
// occupancy, and backend op counts.
type HostStats = host.Stats

// VolumeSpec is the per-volume half of the configuration for volumes
// created/opened on a Host (size, batch size, GC water marks, destage
// tuning). Host-level knobs — cache split, budgets, retry — live in
// HostOptions.
type VolumeSpec = core.VolumeOptions

// HostOptions configures OpenHost.
type HostOptions struct {
	// Store is the backend bucket shared by all volumes.
	Store ObjectStore
	// Cache is the host's cache SSD shared by all volumes.
	Cache CacheDevice
	// MaxVolumes is the number of write-cache slots carved from the
	// SSD (default 8).
	MaxVolumes int
	// WriteCacheFraction is the SSD share carved into write-cache
	// slots (default 0.2); the rest is the shared read arena.
	WriteCacheFraction float64
	// ReadCachePolicy selects the arena eviction policy.
	ReadCachePolicy readcache.Policy
	// UploadDepth / FetchDepth are host-wide backend concurrency
	// budgets shared by every volume (defaults 4 and 8).
	UploadDepth int
	FetchDepth  int
	// OpenFanout bounds each volume's concurrent recovery reads at
	// open (default 8; 1 serializes). Pair with Host.OpenAll to
	// parallelize a multi-volume host restart across volumes too.
	OpenFanout int
	// Retry is the backend retry policy every volume inherits.
	Retry RetryPolicy
}

// OpenHost opens a multi-volume host on one SSD and one bucket:
//
//	h, _ := lsvd.OpenHost(ctx, lsvd.HostOptions{Store: store, Cache: cache})
//	vm1, _ := h.Create(ctx, "vm1", lsvd.VolumeSpec{VolBytes: 100 * lsvd.GiB})
//	vm2, _ := h.Create(ctx, "vm2", lsvd.VolumeSpec{VolBytes: 50 * lsvd.GiB})
//	go h.ServeNBD(ln) // one endpoint, one export per volume
//
// Volumes lease per-volume write-log slots and share the read arena
// and backend budgets; h.Close() closes every open volume.
func OpenHost(ctx context.Context, o HostOptions) (*Host, error) {
	return host.New(ctx, host.Options{
		Store:           o.Store,
		CacheDev:        o.Cache,
		MaxVolumes:      o.MaxVolumes,
		WriteCacheFrac:  o.WriteCacheFraction,
		ReadCachePolicy: o.ReadCachePolicy,
		UploadDepth:     o.UploadDepth,
		FetchDepth:      o.FetchDepth,
		OpenFanout:      o.OpenFanout,
		Retry:           o.Retry,
	})
}
