package experiments

import (
	"context"
	"fmt"

	"lsvd/internal/cluster"
	"lsvd/internal/iomodel"
	"lsvd/internal/workload"
)

// Setup prints the simulated experimental setup — the counterpart of
// the paper's Table 1 (hardware) and Table 2 (Filebench parameters) —
// as actually configured in this repository's calibration.
func Setup(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Tables 1-2: simulated setup and workload calibration",
		Header: []string{"item", "value"},
	}
	row := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }

	dev := func(p iomodel.Params) string {
		return fmt.Sprintf("%s: %.0f/%.0f MB/s seq R/W, %.0fK/%.0fK rand R/W IOPS, %v write lat",
			p.Name, p.ReadBW/1e6, p.WriteBW/1e6, p.ReadIOPS/1000, p.WriteIOPS/1000, p.WriteLatency)
	}
	row("client cache device", dev(iomodel.NVMeP3700))
	c1 := cluster.SSDConfig1()
	row("backend config 1", fmt.Sprintf("%d servers x %d SATA SSDs (%s), EC %d+%d, %dx replication",
		c1.Servers, c1.DisksPerServer, c1.Disk.Name, c1.ECData, c1.ECParity, c1.Replicas))
	c2 := cluster.HDDConfig2()
	row("backend config 2", fmt.Sprintf("%d servers x %d 10K HDDs (%s), EC %d+%d, %dx replication",
		c2.Servers, c2.DisksPerServer, c2.Disk.Name, c2.ECData, c2.ECParity, c2.Replicas))
	row("ceph object overhead", fmt.Sprintf("%d metadata writes per 4 MiB object; %d B WAL overhead per replicated write",
		c2.MetaWritesPer4MB, c2.WALOverheadBytes))
	row("scale", fmt.Sprintf("1/%d of paper sizes (80 GiB volume -> %d MiB)", e.Scale, e.volBytes()>>20))
	row("volume / big cache / small cache", fmt.Sprintf("%d / %d / %d MiB",
		e.volBytes()>>20, e.bigCache()>>20, e.smallCache()>>20))
	row("client software path", fmt.Sprintf("LSVD %v, bcache %v serialized per op; RBD RTT %v",
		lsvdSoftSerial, bcacheSoftSerial, rbdNetRTT))

	for _, m := range filebenchModels {
		gen := &workload.Filebench{Model: m, VolBytes: e.volBytes(), TotalBytes: 64 << 20, Seed: e.Seed}
		c, err := workload.Run(nullDisk{size: e.volBytes()}, gen, nil, 0)
		if err != nil {
			return nil, err
		}
		row("filebench "+m.String(), fmt.Sprintf("mean write %.1f KiB, %.1f writes/sync (Table 2/3 calibration)",
			c.MeanWriteBytes/1024, c.WritesBetweenSyncs))
	}
	return t, nil
}
