package lsvd

// Multi-volume host benchmark (paper §3.7: many virtual disks share
// one cache SSD and one backend): aggregate write throughput as 1→8
// volumes run concurrently on a single Host, plus a fairness sweep of
// the shared read arena. Runs as a quick smoke test under `make
// check`; `make bench-multivol` sets LSVD_MULTIVOL_OUT to record
// BENCH_multivol.json for the perf trajectory.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"
)

type multiVolScalingResult struct {
	Volumes    int     `json:"volumes"`
	TotalMiB   int64   `json:"total_mib"`
	MBPerSec   float64 `json:"mb_per_s"`
	PerVolMBs  float64 `json:"per_vol_mb_per_s"`
	P50WriteUS float64 `json:"p50_write_us"`
	P99WriteUS float64 `json:"p99_write_us"`
	// Efficiency is aggregate ÷ (N × single-volume aggregate): 1.0 is
	// perfect scaling, 1/N is a fully serialized host.
	Efficiency float64 `json:"scaling_efficiency"`
}

type multiVolOccupancy struct {
	Volume string `json:"volume"`
	Slabs  int    `json:"slabs"`
	KiB    int64  `json:"kib"`
}

type multiVolFairness struct {
	ArenaSlabs     int                 `json:"arena_slabs"`
	FairShareSlabs int                 `json:"fair_share_slabs"`
	Evictions      uint64              `json:"evictions"`
	Views          []multiVolOccupancy `json:"views"`
}

type multiVolReport struct {
	Scaling  []multiVolScalingResult `json:"scaling"`
	Fairness multiVolFairness        `json:"fairness"`
}

// TestMultiVolScaling packs N ∈ {1,2,4,8} volumes onto one host (one
// 256 MiB cache SSD, one backend, shared upload/fetch budgets), writes
// each volume's working set concurrently, and records the aggregate
// throughput; then, with all 8 volumes reading back through the shared
// arena, records per-volume occupancy as the fairness sweep. The loose
// acceptance bound is that the shared-host aggregate does not collapse
// as volumes are added.
func TestMultiVolScaling(t *testing.T) {
	const (
		perVolBytes = 8 * MiB
		chunkBytes  = 128 * KiB
	)
	ctx := context.Background()
	var report multiVolReport
	aggregate := map[int]float64{}

	writeAll := func(t *testing.T, h *Host, names []string) (time.Duration, []time.Duration) {
		t.Helper()
		var wg sync.WaitGroup
		lats := make([][]time.Duration, len(names))
		start := time.Now()
		for vi, name := range names {
			d, ok := h.Disk(name)
			if !ok {
				t.Fatalf("volume %s not open", name)
			}
			wg.Add(1)
			go func(vi int, d *Disk) {
				defer wg.Done()
				chunk := make([]byte, chunkBytes)
				for off := int64(0); off < perVolBytes; off += chunkBytes {
					chunk[0], chunk[1] = byte(vi), byte(off>>17)
					t0 := time.Now()
					if err := d.WriteAt(chunk, off); err != nil {
						t.Error(err)
						return
					}
					lats[vi] = append(lats[vi], time.Since(t0))
				}
				if err := d.Drain(); err != nil {
					t.Error(err)
				}
			}(vi, d)
		}
		wg.Wait()
		elapsed := time.Since(start)
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		return elapsed, all
	}

	percentile := func(sorted []time.Duration, p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Microsecond)
	}

	for _, n := range []int{1, 2, 4, 8} {
		h, err := OpenHost(ctx, HostOptions{
			Store: MemStore(), Cache: MemCacheDevice(256 * MiB),
		})
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("vm%d", i)
			if _, err := h.Create(ctx, names[i], VolumeSpec{
				VolBytes: 32 * MiB, BatchBytes: 1 * MiB,
			}); err != nil {
				t.Fatal(err)
			}
		}
		elapsed, lats := writeAll(t, h, names)
		total := int64(n) * perVolBytes
		res := multiVolScalingResult{
			Volumes:    n,
			TotalMiB:   total / MiB,
			MBPerSec:   float64(total) / elapsed.Seconds() / 1e6,
			P50WriteUS: percentile(lats, 0.50),
			P99WriteUS: percentile(lats, 0.99),
		}
		res.PerVolMBs = res.MBPerSec / float64(n)
		aggregate[n] = res.MBPerSec
		if single := aggregate[1]; single > 0 {
			res.Efficiency = res.MBPerSec / (float64(n) * single)
		}
		report.Scaling = append(report.Scaling, res)
		t.Logf("scaling n=%d: %d MiB in %v, aggregate %.1f MB/s (%.1f MB/s per volume), p50 %.0fµs p99 %.0fµs, efficiency %.2f",
			n, res.TotalMiB, elapsed.Round(time.Millisecond), res.MBPerSec, res.PerVolMBs,
			res.P50WriteUS, res.P99WriteUS, res.Efficiency)

		if n < 8 {
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
			continue
		}

		// Fairness sweep on the 8-volume host: each volume wrote more
		// than its write-log slot holds, so reading the working set back
		// pulls the early chunks through the shared arena. Every volume
		// reads concurrently; afterwards each must hold arena occupancy —
		// no volume is starved out of the shared pool.
		var rg sync.WaitGroup
		for _, name := range names {
			d, ok := h.Disk(name)
			if !ok {
				t.Fatalf("volume %s not open", name)
			}
			rg.Add(1)
			go func(d *Disk) {
				defer rg.Done()
				buf := make([]byte, chunkBytes)
				for pass := 0; pass < 2; pass++ {
					for off := int64(0); off < perVolBytes; off += chunkBytes {
						if err := d.ReadAt(buf, off); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}(d)
		}
		rg.Wait()

		hs := h.Stats()
		report.Fairness = multiVolFairness{
			ArenaSlabs:     hs.Arena.Slabs,
			FairShareSlabs: hs.Arena.FairShareSlabs,
			Evictions:      hs.Arena.Evictions,
		}
		for _, occ := range hs.Arena.Views {
			report.Fairness.Views = append(report.Fairness.Views, multiVolOccupancy{
				Volume: occ.Volume, Slabs: occ.Slabs, KiB: occ.Bytes / 1024,
			})
			t.Logf("fairness: %-4s %2d slabs %6d KiB", occ.Volume, occ.Slabs, occ.Bytes/1024)
			if occ.Slabs < 1 {
				t.Errorf("volume %s starved out of the shared arena", occ.Volume)
			}
		}
		if len(hs.Arena.Views) != 8 {
			t.Errorf("expected 8 arena views, got %d", len(hs.Arena.Views))
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Acceptance: sharing one host must not collapse aggregate write
	// throughput — 8 volumes on one SSD stay within 20% of one volume's
	// aggregate (they typically exceed it: destage overlaps). Each
	// measurement window is only a few milliseconds, so on a shared VM a
	// single scheduler stall can tank either side of the ratio; a failing
	// pair is re-measured on fresh hosts before it counts as a collapse.
	remeasure := func(n int) float64 {
		h, err := OpenHost(ctx, HostOptions{
			Store: MemStore(), Cache: MemCacheDevice(256 * MiB),
		})
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("vm%d", i)
			if _, err := h.Create(ctx, names[i], VolumeSpec{
				VolBytes: 32 * MiB, BatchBytes: 1 * MiB,
			}); err != nil {
				t.Fatal(err)
			}
		}
		elapsed, _ := writeAll(t, h, names)
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
		return float64(int64(n)*perVolBytes) / elapsed.Seconds() / 1e6
	}
	single, eight := aggregate[1], aggregate[8]
	for retry := 0; eight < 0.8*single && retry < 2; retry++ {
		single = remeasure(1)
		eight = remeasure(8)
		t.Logf("gate retry %d: single-volume %.1f MB/s, 8-volume %.1f MB/s",
			retry+1, single, eight)
	}
	if eight < 0.8*single {
		t.Errorf("8-volume aggregate %.1f MB/s < 0.8x single-volume %.1f MB/s",
			eight, single)
	}

	if out := os.Getenv("LSVD_MULTIVOL_OUT"); out != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
