package writecache

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/journal"
	"lsvd/internal/simdev"
)

func newCache(t *testing.T, devBytes int64, cfg Config) (*Cache, *simdev.MemDevice) {
	t.Helper()
	dev := simdev.NewMem(devBytes)
	c, err := Format(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, dev
}

func payload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// readBack looks up ext and reads all present runs into a buffer,
// returning the data and whether the whole extent was present.
func readBack(t *testing.T, c *Cache, ext block.Extent) ([]byte, bool) {
	t.Helper()
	buf := make([]byte, ext.Bytes())
	full := true
	for _, run := range c.Lookup(ext) {
		if !run.Present {
			full = false
			continue
		}
		off := (run.LBA - ext.LBA).Bytes()
		sub := buf[off : off+run.Bytes()]
		if err := c.ReadAt(run.Target, sub); err != nil {
			t.Fatal(err)
		}
	}
	return buf, full
}

func TestAppendLookupRead(t *testing.T) {
	c, _ := newCache(t, 64*block.MiB, Config{})
	data := payload(1, 16*1024)
	ext := block.Extent{LBA: 1000, Sectors: 32}
	if err := c.Append(1, ext, data); err != nil {
		t.Fatal(err)
	}
	got, full := readBack(t, c, ext)
	if !full || !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
	// Miss outside written range.
	if _, full := readBack(t, c, block.Extent{LBA: 5000, Sectors: 8}); full {
		t.Fatal("phantom hit")
	}
}

func TestOverwriteReturnsNewest(t *testing.T) {
	c, _ := newCache(t, 64*block.MiB, Config{})
	ext := block.Extent{LBA: 0, Sectors: 16}
	_ = c.Append(1, ext, payload(1, 8192))
	newer := payload(2, 8192)
	_ = c.Append(2, ext, newer)
	got, _ := readBack(t, c, ext)
	if !bytes.Equal(got, newer) {
		t.Fatal("overwrite not visible")
	}
	// Partial overwrite: middle 4 sectors.
	mid := block.Extent{LBA: 4, Sectors: 4}
	midData := payload(3, int(mid.Bytes()))
	_ = c.Append(3, mid, midData)
	got, _ = readBack(t, c, ext)
	want := append([]byte{}, newer...)
	copy(want[4*block.SectorSize:], midData)
	if !bytes.Equal(got, want) {
		t.Fatal("partial overwrite wrong")
	}
}

func TestTrim(t *testing.T) {
	c, _ := newCache(t, 64*block.MiB, Config{})
	ext := block.Extent{LBA: 0, Sectors: 64}
	_ = c.Append(1, ext, payload(1, int(ext.Bytes())))
	if err := c.AppendTrim(2, block.Extent{LBA: 16, Sectors: 16}); err != nil {
		t.Fatal(err)
	}
	runs := c.Lookup(ext)
	if len(runs) != 3 || !IsTombstone(runs[1]) {
		t.Fatalf("trim not applied as tombstone: %+v", runs)
	}
	// The tombstone must read back as zeros through ReadExtent.
	buf := make([]byte, ext.Bytes())
	if _, err := c.ReadExtent(ext, buf); err != nil {
		t.Fatal(err)
	}
	trimmed := buf[16*block.SectorSize : 32*block.SectorSize]
	for _, b := range trimmed {
		if b != 0 {
			t.Fatal("trimmed range did not read as zeros")
		}
	}
}

func TestBadAppendRejected(t *testing.T) {
	c, _ := newCache(t, 64*block.MiB, Config{})
	if err := c.Append(1, block.Extent{LBA: 0, Sectors: 8}, make([]byte, 1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestRecoveryFromCleanClose(t *testing.T) {
	dev := simdev.NewMem(64 * block.MiB)
	c, err := Format(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	exts := make([]block.Extent, 20)
	datas := make([][]byte, 20)
	for i := range exts {
		exts[i] = block.Extent{LBA: block.LBA(i * 100), Sectors: 24}
		datas[i] = payload(int64(i), int(exts[i].Bytes()))
		if err := c.Append(uint64(i+1), exts[i], datas[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exts {
		got, full := readBack(t, c2, exts[i])
		if !full || !bytes.Equal(got, datas[i]) {
			t.Fatalf("write %d lost after clean reopen", i)
		}
	}
	if c2.MaxWriteSeq() != 20 {
		t.Fatalf("MaxWriteSeq=%d", c2.MaxWriteSeq())
	}
}

func TestRecoveryReplaysTailAfterCheckpoint(t *testing.T) {
	dev := simdev.NewMem(64 * block.MiB)
	c, _ := Format(dev, Config{})
	ext1 := block.Extent{LBA: 0, Sectors: 16}
	d1 := payload(1, int(ext1.Bytes()))
	_ = c.Append(1, ext1, d1)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Writes after the checkpoint, then flush (commit) but no
	// checkpoint: must be recovered by log replay.
	ext2 := block.Extent{LBA: 500, Sectors: 16}
	d2 := payload(2, int(ext2.Bytes()))
	_ = c.Append(2, ext2, d2)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Stats().RecoveredRecs != 1 {
		t.Fatalf("RecoveredRecs=%d want 1", c2.Stats().RecoveredRecs)
	}
	got, full := readBack(t, c2, ext2)
	if !full || !bytes.Equal(got, d2) {
		t.Fatal("post-checkpoint write lost")
	}
	got, full = readBack(t, c2, ext1)
	if !full || !bytes.Equal(got, d1) {
		t.Fatal("checkpointed write lost")
	}
}

func TestRecoveryAfterCrashKeepsCommittedPrefix(t *testing.T) {
	dev := simdev.NewMem(64 * block.MiB)
	c, _ := Format(dev, Config{CheckpointEvery: 1 << 30})
	// Committed writes.
	for i := 0; i < 10; i++ {
		ext := block.Extent{LBA: block.LBA(i * 64), Sectors: 16}
		if err := c.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes()))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Uncommitted writes, then crash losing everything unflushed.
	for i := 10; i < 20; i++ {
		ext := block.Extent{LBA: block.LBA(i * 64), Sectors: 16}
		_ = c.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes())))
	}
	dev.Crash(1.0, rand.New(rand.NewSource(5)))
	c2, err := Open(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// All committed writes present.
	for i := 0; i < 10; i++ {
		ext := block.Extent{LBA: block.LBA(i * 64), Sectors: 16}
		got, full := readBack(t, c2, ext)
		if !full || !bytes.Equal(got, payload(int64(i), int(ext.Bytes()))) {
			t.Fatalf("committed write %d lost", i)
		}
	}
	if c2.MaxWriteSeq() != 10 {
		t.Fatalf("recovered MaxWriteSeq=%d want 10", c2.MaxWriteSeq())
	}
}

func TestRecoveryAfterPartialCrashIsPrefix(t *testing.T) {
	// With partial loss (some unflushed pages survive), recovery must
	// still produce a *prefix*: if write i survived, writes < i
	// survived too (sequence-gap rule).
	for seed := int64(0); seed < 10; seed++ {
		dev := simdev.NewMem(64 * block.MiB)
		c, _ := Format(dev, Config{CheckpointEvery: 1 << 30})
		const n = 30
		for i := 0; i < n; i++ {
			ext := block.Extent{LBA: block.LBA(i * 64), Sectors: 16}
			_ = c.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes())))
		}
		dev.Crash(0.5, rand.New(rand.NewSource(seed)))
		c2, err := Open(dev, Config{})
		if err != nil {
			t.Fatal(err)
		}
		k := c2.MaxWriteSeq()
		for i := uint64(1); i <= k; i++ {
			ext := block.Extent{LBA: block.LBA((i - 1) * 64), Sectors: 16}
			got, full := readBack(t, c2, ext)
			if !full || !bytes.Equal(got, payload(int64(i-1), int(ext.Bytes()))) {
				t.Fatalf("seed %d: prefix broken at write %d (recovered through %d)", seed, i, k)
			}
		}
	}
}

func TestRingWrapAndEviction(t *testing.T) {
	// Small log: 8 MiB. Write 64 KiB records until wrap several times.
	c, _ := newCache(t, 8*block.MiB+ckptStart+16*block.MiB, Config{CheckpointBytes: 16 * block.MiB, CheckpointEvery: 1 << 30})
	recBytes := 64 * 1024
	seq := uint64(0)
	write := func() error {
		seq++
		ext := block.Extent{LBA: block.LBA(seq%100) * 128, Sectors: uint32(recBytes / block.SectorSize)}
		return c.Append(seq, ext, payload(int64(seq), recBytes))
	}
	// Fill until ErrFull with nothing destaged.
	var full bool
	for i := 0; i < 1000; i++ {
		if err := write(); errors.Is(err, ErrFull) {
			full = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("undestaged ring never filled")
	}
	// Destage everything; writes proceed and evictions happen.
	c.SetDestaged(seq)
	for i := 0; i < 500; i++ {
		if err := write(); err != nil {
			c.SetDestaged(seq - 1)
			if err := write(); err != nil {
				t.Fatalf("write after destage failed: %v", err)
			}
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions after destage")
	}
	if st.UsedBytes > st.LogBytes {
		t.Fatalf("used %d exceeds log %d", st.UsedBytes, st.LogBytes)
	}
	// Newest copies must still be readable (their data not evicted,
	// since they're recent).
	ext := block.Extent{LBA: block.LBA(seq%100) * 128, Sectors: uint32(recBytes / block.SectorSize)}
	got, fullHit := readBack(t, c, ext)
	if !fullHit || !bytes.Equal(got, payload(int64(seq), recBytes)) {
		t.Fatal("newest record unreadable after wraps")
	}
}

func TestEvictionRemovesOnlyStaleMappings(t *testing.T) {
	c, _ := newCache(t, 8*block.MiB+ckptStart+16*block.MiB, Config{CheckpointBytes: 16 * block.MiB, CheckpointEvery: 1 << 30})
	// Write A at LBA 0, then overwrite it; evicting the first record
	// must not remove the mapping to the second copy.
	ext := block.Extent{LBA: 0, Sectors: 128}
	_ = c.Append(1, ext, payload(1, int(ext.Bytes())))
	newer := payload(2, int(ext.Bytes()))
	_ = c.Append(2, ext, newer)
	c.SetDestaged(2)
	// Force eviction by filling the ring.
	seq := uint64(2)
	for {
		seq++
		e := block.Extent{LBA: 100000 + block.LBA(seq)*256, Sectors: 128}
		if err := c.Append(seq, e, payload(int64(seq), int(e.Bytes()))); err != nil {
			break
		}
		c.SetDestaged(seq - 2)
		if c.Stats().Evictions > 2 {
			break
		}
	}
	if c.Stats().Evictions == 0 {
		t.Skip("ring too large to force eviction")
	}
	got, full := readBack(t, c, ext)
	if full && !bytes.Equal(got, newer) {
		t.Fatal("stale data returned after eviction")
	}
}

func TestRecordsAfter(t *testing.T) {
	c, _ := newCache(t, 64*block.MiB, Config{})
	want := map[uint64][]byte{}
	for i := 1; i <= 10; i++ {
		ext := block.Extent{LBA: block.LBA(i * 100), Sectors: 8}
		d := payload(int64(i), int(ext.Bytes()))
		want[uint64(i)] = d
		_ = c.Append(uint64(i), ext, d)
	}
	_ = c.AppendTrim(11, block.Extent{LBA: 100, Sectors: 8})
	var seen []uint64
	err := c.RecordsAfter(5, func(ws uint64, typ journal.Type, ext block.Extent, data []byte) error {
		seen = append(seen, ws)
		if typ == journal.TypeData && !bytes.Equal(data, want[ws]) {
			t.Fatalf("record %d data mismatch", ws)
		}
		if ws == 11 && typ != journal.TypeTrim {
			t.Fatal("trim record type lost")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("replayed %v", seen)
	}
	for i, ws := range seen {
		if ws != uint64(6+i) {
			t.Fatalf("replay out of order: %v", seen)
		}
	}
}

func TestUnformattedDeviceRejected(t *testing.T) {
	if _, err := Open(simdev.NewMem(64*block.MiB), Config{}); err == nil {
		t.Fatal("unformatted device opened")
	}
}

func TestTooSmallDeviceRejected(t *testing.T) {
	if _, err := Format(simdev.NewMem(1*block.MiB), Config{}); err == nil {
		t.Fatal("tiny device formatted")
	}
}

func TestAutoCheckpoint(t *testing.T) {
	c, _ := newCache(t, 64*block.MiB, Config{CheckpointEvery: 5})
	for i := 1; i <= 12; i++ {
		ext := block.Extent{LBA: block.LBA(i * 10), Sectors: 8}
		_ = c.Append(uint64(i), ext, payload(int64(i), int(ext.Bytes())))
	}
	if got := c.Stats().Checkpoints; got < 2 {
		t.Fatalf("auto checkpoints=%d", got)
	}
}

func TestDirtyAccounting(t *testing.T) {
	c, _ := newCache(t, 64*block.MiB, Config{})
	ext := block.Extent{LBA: 0, Sectors: 8}
	_ = c.Append(1, ext, payload(1, int(ext.Bytes())))
	if c.Stats().DirtyBytes == 0 {
		t.Fatal("fresh write not dirty")
	}
	c.SetDestaged(1)
	if c.Stats().DirtyBytes != 0 {
		t.Fatal("destaged write still dirty")
	}
}

// TestDestagePressureClearsWhenClean: the GC backoff signal must track
// the destage BACKLOG, not raw ring occupancy. Fill most of the log,
// destage everything, and the pressure must clear even though the
// (clean, lazily evicted) records still occupy the ring — the old
// occupancy clause latched the signal on here and starved the GC of
// copy budget forever on a quiet volume.
func TestDestagePressureClearsWhenClean(t *testing.T) {
	c, _ := newCache(t, 64*block.MiB, Config{})
	logBytes := c.Stats().LogBytes
	ext := block.Extent{LBA: 0, Sectors: 64}
	data := payload(1, int(ext.Bytes()))
	var ws uint64
	// Write until well past the half-dirty threshold (stop shy of a
	// ring wrap: the point is occupancy, not eviction).
	for written := int64(0); written*3 < logBytes*2; written += ext.Bytes() {
		ws++
		if err := c.Append(ws, ext, data); err != nil {
			t.Fatal(err)
		}
	}
	if !c.DestagePressure() {
		t.Fatal("no pressure with >half the log dirty")
	}
	c.SetDestaged(ws)
	if st := c.Stats(); st.DirtyBytes != 0 || st.UsedBytes*2 < logBytes {
		t.Fatalf("bad test setup: dirty=%d used=%d log=%d", st.DirtyBytes, st.UsedBytes, logBytes)
	}
	if c.DestagePressure() {
		t.Fatal("pressure latched on by clean ring occupancy")
	}
}

func BenchmarkAppend16K(b *testing.B) {
	dev := simdev.NewMem(2 * block.GiB)
	c, err := Format(dev, Config{CheckpointEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 16*1024)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext := block.Extent{LBA: block.LBA((i % 100000) * 32), Sectors: 32}
		if err := c.Append(uint64(i+1), ext, data); err != nil {
			c.SetDestaged(uint64(i))
			if err := c.Append(uint64(i+1), ext, data); err != nil {
				b.Fatal(err)
			}
		}
	}
}
