package objstore

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// fastPolicy keeps retry tests quick.
var fastPolicy = RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Microsecond, MaxDelay: 100 * time.Microsecond}

func TestRetrierAbsorbsTransientFailures(t *testing.T) {
	faulty := NewFaulty(NewMem())
	r := NewRetrier(faulty, fastPolicy)
	faulty.FailPuts("x", 2) // two failures, then heal
	if err := r.Put(ctx, "x", []byte("data")); err != nil {
		t.Fatalf("retrier did not absorb transient failures: %v", err)
	}
	if got := r.Retries(); got != 2 {
		t.Fatalf("retries=%d want 2", got)
	}
	if got, err := r.Get(ctx, "x"); err != nil || string(got) != "data" {
		t.Fatalf("get after retried put: %v %q", err, got)
	}
}

func TestRetrierExhaustsBudget(t *testing.T) {
	faulty := NewFaulty(NewMem())
	r := NewRetrier(faulty, fastPolicy)
	faulty.FailPuts("x", -1) // forever
	err := r.Put(ctx, "x", []byte("data"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("persistent failure not surfaced with its class: %v", err)
	}
	if got := faulty.InjectedFaults(); got != uint64(fastPolicy.Attempts()) {
		t.Fatalf("attempts=%d want %d", got, fastPolicy.Attempts())
	}
}

// Terminal errors must pass through unwrapped and unretried.
func TestRetrierPreservesTerminalErrors(t *testing.T) {
	mem := NewMem()
	r := NewRetrier(mem, fastPolicy)
	if _, err := r.Get(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ErrNotFound lost through Retrier: %v", err)
	}
	if err := r.Delete(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete ErrNotFound lost: %v", err)
	}
	_ = r.Put(ctx, "x", []byte("abc"))
	if _, err := r.GetRange(ctx, "x", 99, 1); !errors.Is(err, ErrBadRange) {
		t.Fatalf("ErrBadRange lost: %v", err)
	}
	if got := r.Retries(); got != 0 {
		t.Fatalf("terminal errors were retried %d times", got)
	}

	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rd := NewRetrier(dir, fastPolicy)
	if err := rd.Put(ctx, "../escape", []byte("x")); !errors.Is(err, ErrBadName) {
		t.Fatalf("ErrBadName lost: %v", err)
	}
	if got := rd.Retries(); got != 0 {
		t.Fatalf("bad name retried %d times", got)
	}
}

func TestRetrierContextCancellation(t *testing.T) {
	faulty := NewFaulty(NewMem())
	r := NewRetrier(faulty, RetryPolicy{MaxAttempts: 50, BaseDelay: 50 * time.Millisecond})
	faulty.FailPuts("x", -1)
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := r.Put(cctx, "x", []byte("data"))
	if err == nil {
		t.Fatal("cancelled retry loop succeeded")
	}
	// The last real failure is returned, not the cancellation, so the
	// caller can still classify what actually went wrong.
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cancelled retry returned %v, want the last injected error", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not cut the backoff short")
	}
}

func TestRetrierDisabled(t *testing.T) {
	faulty := NewFaulty(NewMem())
	r := NewRetrier(faulty, RetryPolicy{MaxAttempts: -1})
	faulty.FailPuts("x", 1)
	if err := r.Put(ctx, "x", []byte("d")); !errors.Is(err, ErrInjected) {
		t.Fatalf("disabled retrier retried anyway: %v", err)
	}
	if got := faulty.InjectedFaults(); got != 1 {
		t.Fatalf("attempts=%d want 1", got)
	}
}

// Torn-write injection: a failed Put of a NEW object may leave a
// truncated prefix; a failed overwrite must leave the old object
// untouched (atomic replace, protecting the superblock).
func TestFaultyTornWrites(t *testing.T) {
	mem := NewMem()
	faulty := NewFaulty(mem)
	faulty.Arm(FaultConfig{Seed: 7, TornWrites: true})

	data := []byte("0123456789abcdef")
	torn := 0
	for i := 0; i < 32; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		faulty.FailPuts(name, 1)
		if err := faulty.Put(ctx, name, data); !errors.Is(err, ErrInjected) {
			t.Fatalf("armed put did not fail: %v", err)
		}
		got, err := mem.Get(ctx, name)
		switch {
		case errors.Is(err, ErrNotFound):
			// tear at 0 or no tear this round
		case err != nil:
			t.Fatal(err)
		default:
			if !bytes.HasPrefix(data, got) && len(got) != 0 {
				t.Fatalf("torn object %q is not a prefix: %q", name, got)
			}
			torn++
		}
	}
	if faulty.TornPuts() == 0 || torn == 0 {
		t.Fatal("torn-write mode never tore an object")
	}

	// Overwrites never tear.
	if err := faulty.Put(ctx, "super", []byte("old-superblock")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		faulty.FailPuts("super", 1)
		if err := faulty.Put(ctx, "super", []byte("new")); !errors.Is(err, ErrInjected) {
			t.Fatalf("armed overwrite did not fail: %v", err)
		}
	}
	if got, err := mem.Get(ctx, "super"); err != nil || string(got) != "old-superblock" {
		t.Fatalf("failed overwrite damaged the object: %v %q", err, got)
	}
}

func TestFaultySeededDeterminism(t *testing.T) {
	run := func() []bool {
		f := NewFaulty(NewMem())
		f.Arm(FaultConfig{Seed: 99, Rates: UniformRates(0.5)})
		var outcomes []bool
		for i := 0; i < 64; i++ {
			outcomes = append(outcomes, f.Put(ctx, "x", []byte("d")) == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at op %d", i)
		}
	}
}
