// Command lsvd-nbd serves an LSVD volume as a Network Block Device
// export, the deployment path replacing the paper prototype's kernel
// module (§3.7 / DESIGN.md).
//
//	lsvd-nbd -store /var/lib/lsvd/objects -cache /var/lib/lsvd/cache.img \
//	         -cache-size 10G -volume vm1 -create -size 100G -listen :10809
//
// Then on a client: nbd-client <host> 10809 /dev/nbd0 -name vm1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"

	"lsvd"
)

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "T"):
		mult, s = lsvd.TiB, strings.TrimSuffix(s, "T")
	case strings.HasSuffix(s, "G"):
		mult, s = lsvd.GiB, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = lsvd.MiB, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = lsvd.KiB, strings.TrimSuffix(s, "K")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}

func main() {
	storeDir := flag.String("store", "", "object store directory (required)")
	cachePath := flag.String("cache", "", "cache device file (required)")
	cacheSize := flag.String("cache-size", "1G", "cache device size")
	volume := flag.String("volume", "vol", "volume name")
	create := flag.Bool("create", false, "create the volume instead of opening it")
	size := flag.String("size", "10G", "volume size (with -create)")
	listen := flag.String("listen", "127.0.0.1:10809", "NBD listen address")
	storeNoSync := flag.Bool("store-nosync", false, "skip object-store fsyncs (faster, loses crash durability)")
	retryAttempts := flag.Int("retry-attempts", 0, "backend retry attempt budget per op (0 = default, <0 disables retries)")
	fetchDepth := flag.Int("fetch-depth", 0, "concurrent backend range GETs on the read-miss path (0 = default, 1 = serial)")
	flag.Parse()

	if *storeDir == "" || *cachePath == "" {
		log.Fatal("-store and -cache are required")
	}
	newStore := lsvd.DirStore
	if *storeNoSync {
		newStore = lsvd.DirStoreNoSync
	}
	store, err := newStore(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	cb, err := parseSize(*cacheSize)
	if err != nil {
		log.Fatal(err)
	}
	cache, err := lsvd.FileCacheDevice(*cachePath, cb)
	if err != nil {
		log.Fatal(err)
	}
	opts := lsvd.VolumeOptions{
		Name: *volume, Store: store, Cache: cache,
		Retry:      lsvd.RetryPolicy{MaxAttempts: *retryAttempts},
		FetchDepth: *fetchDepth,
	}
	ctx := context.Background()

	var disk *lsvd.Disk
	if *create {
		if opts.Size, err = parseSize(*size); err != nil {
			log.Fatal(err)
		}
		disk, err = lsvd.Create(ctx, opts)
	} else {
		disk, err = lsvd.Open(ctx, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer disk.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving volume %q (%d bytes) on %s", *volume, disk.Size(), ln.Addr())
	if err := lsvd.ServeNBD(ln, *volume, disk); err != nil {
		log.Fatal(err)
	}
}
