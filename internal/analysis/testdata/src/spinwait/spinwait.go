// Package spinwait is the golden self-test for the spinwait analyzer:
// a loop whose only wait is time.Sleep between polls of shared state
// is a latency bug waiting for load — wake latency is the poll
// interval and shutdown cannot interrupt the sleeper.
package spinwait

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"lsvd/internal/objstore"
)

var errClosed = errors.New("closed")

type store struct {
	mu     sync.Mutex //lsvd:lock spin.mu
	closed bool
	flag   uint32
	lagErr error
	over   bool
	wake   chan struct{}
	stop   chan struct{}
	be     objstore.Store
	n      int
}

func (s *store) pipelineErr() error { return s.lagErr }
func (s *store) overBound() bool    { return s.over }
func (s *store) ready() bool        { return s.n > 0 }
func (s *store) doWork()            { s.n++ }

// blockingPoll's interprocedural summary says it can block (backend
// GetRange), so a loop polling it already waits on real events.
func (s *store) blockingPoll() bool {
	_, err := s.be.GetRange(context.Background(), "k", 0, 1)
	return err == nil
}

// awaitLag is the replication-lag bound exactly as it first shipped:
// poll the error, poll closed under the mutex, poll the bound, sleep a
// millisecond, repeat. Wake latency is the poll interval and Kill had
// to wait it out — the production fix blocks on a wake channel.
func (s *store) awaitLag() error {
	for {
		if err := s.pipelineErr(); err != nil {
			return err
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return errClosed
		}
		if !s.overBound() {
			return nil
		}
		time.Sleep(time.Millisecond) // want "sleep-poll loop"
	}
}

// waitReady polls a module getter in the loop condition.
func (s *store) waitReady() {
	for !s.ready() {
		time.Sleep(10 * time.Millisecond) // want "sleep-poll loop"
	}
}

// atomicSpin polls an atomic flag: still a spin, the atomic load is
// just the cheapest possible poll.
func (s *store) atomicSpin() {
	for atomic.LoadUint32(&s.flag) == 0 {
		time.Sleep(time.Millisecond) // want "sleep-poll loop"
	}
}

// drainPoll polls a stop channel with a non-blocking select, then
// sleeps: the select-with-default is a poll, not a wait.
func (s *store) drainPoll() {
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		time.Sleep(time.Millisecond) // want "sleep-poll loop"
	}
}

// leader is the group-commit leader's shape: a statement-position
// module call does real work each round, so the sleep is pacing, not
// the only wait. Clean.
func (s *store) leader() {
	for !s.ready() {
		s.doWork()
		time.Sleep(time.Millisecond)
	}
}

// eventWait blocks on a channel: the loop already waits on events.
// Clean.
func (s *store) eventWait() {
	for {
		select {
		case <-s.wake:
			if s.ready() {
				return
			}
		case <-s.stop:
			return
		}
	}
}

// retrier calls an opaque function value: assume real work. Clean.
func (s *store) retrier(op func() error) error {
	for i := 0; i < 3; i++ {
		if err := op(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return errClosed
}

// pacedForever has no exit at all: it is a pacing loop, not a wait for
// a state change. Clean.
func (s *store) pacedForever() {
	for {
		s.n++
		time.Sleep(time.Second)
	}
}

// blockingCond polls a helper whose summary can block: the loop
// already waits inside the poll. Clean.
func (s *store) blockingCond() {
	for !s.blockingPoll() {
		time.Sleep(time.Millisecond)
	}
}
