// lsvd-vet runs the lsvd analyzer suite (lockheld, lockorder,
// errclass, sectmath, goroguard, annform — see DESIGN.md §5e) over the
// module and exits non-zero if any diagnostic survives its
// //lsvd:ignore filter. Stdlib only: packages load through
// `go list -export` and go/importer, not golang.org/x/tools.
//
// Usage:
//
//	lsvd-vet [-dir root] [packages...]
//
// Packages default to ./... relative to -dir (default: the current
// directory).
package main

import (
	"flag"
	"fmt"
	"os"

	"lsvd/internal/analysis"
)

func main() {
	dir := flag.String("dir", ".", "module directory to analyze from")
	list := flag.Bool("analyzers", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, pkgs, err := analysis.NewLoader(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsvd-vet:", err)
		os.Exit(2)
	}
	diags := analysis.Run(loader, pkgs, analysis.Analyzers())
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lsvd-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
