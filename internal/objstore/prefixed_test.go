package objstore

import (
	"context"
	"errors"
	"testing"
)

func TestPrefixedScopesOperations(t *testing.T) {
	ctx := context.Background()
	inner := NewMem()
	a, err := NewPrefixed(inner, "vol/a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPrefixed(inner, "vol/b/")
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Put(ctx, "obj.1", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(ctx, "obj.1", []byte("beta")); err != nil {
		t.Fatal(err)
	}

	// Same name, different namespaces, different objects.
	got, err := a.Get(ctx, "obj.1")
	if err != nil || string(got) != "alpha" {
		t.Fatalf("a.Get = %q, %v", got, err)
	}
	got, err = b.Get(ctx, "obj.1")
	if err != nil || string(got) != "beta" {
		t.Fatalf("b.Get = %q, %v", got, err)
	}

	// The inner store sees prefixed keys.
	if _, err := inner.Get(ctx, "vol/a/obj.1"); err != nil {
		t.Fatalf("inner key missing: %v", err)
	}

	// Size and ranges are scoped too.
	if n, err := a.Size(ctx, "obj.1"); err != nil || n != 5 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if r, err := b.GetRange(ctx, "obj.1", 1, 2); err != nil || string(r) != "et" {
		t.Fatalf("GetRange = %q, %v", r, err)
	}

	// List strips the prefix and never leaks the sibling namespace.
	names, err := a.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "obj.1" {
		t.Fatalf("a.List = %v", names)
	}

	// Delete is scoped: a's object goes, b's stays.
	if err := a.Delete(ctx, "obj.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get(ctx, "obj.1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("a.Get after delete: %v", err)
	}
	if _, err := b.Get(ctx, "obj.1"); err != nil {
		t.Fatalf("b lost its object: %v", err)
	}
}

func TestPrefixedRejectsEscapes(t *testing.T) {
	ctx := context.Background()
	inner := NewMem()
	if err := inner.Put(ctx, "secret", []byte("s")); err != nil {
		t.Fatal(err)
	}
	p, err := NewPrefixed(inner, "vol/a")
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"", ".", "..", "../secret", "x/../../secret", "/secret",
		"a//b", "a/./b", "x/..",
	}
	for _, name := range bad {
		if _, err := p.Get(ctx, name); !errors.Is(err, ErrBadName) {
			t.Errorf("Get(%q) = %v, want ErrBadName", name, err)
		}
		if err := p.Put(ctx, name, []byte("x")); !errors.Is(err, ErrBadName) {
			t.Errorf("Put(%q) = %v, want ErrBadName", name, err)
		}
		if err := p.Delete(ctx, name); !errors.Is(err, ErrBadName) {
			t.Errorf("Delete(%q) = %v, want ErrBadName", name, err)
		}
		if _, err := p.Size(ctx, name); !errors.Is(err, ErrBadName) {
			t.Errorf("Size(%q) = %v, want ErrBadName", name, err)
		}
	}
	if _, err := p.List(ctx, "../"); !errors.Is(err, ErrBadName) {
		t.Errorf("List escape = %v, want ErrBadName", err)
	}
	// The secret object was never reachable.
	if got, err := inner.Get(ctx, "secret"); err != nil || string(got) != "s" {
		t.Fatalf("secret disturbed: %q, %v", got, err)
	}
}

func TestPrefixedBadPrefixRejected(t *testing.T) {
	for _, prefix := range []string{"/abs", "..", "a/../..", "a//b"} {
		if _, err := NewPrefixed(NewMem(), prefix); !errors.Is(err, ErrBadName) {
			t.Errorf("NewPrefixed(%q) = %v, want ErrBadName", prefix, err)
		}
	}
}

func TestPrefixedIdentity(t *testing.T) {
	ctx := context.Background()
	inner := NewMem()
	p, err := NewPrefixed(inner, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put(ctx, "vol.00000001", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := inner.Get(ctx, "vol.00000001"); err != nil {
		t.Fatalf("identity wrapper moved the key: %v", err)
	}
	names, err := p.List(ctx, "vol.")
	if err != nil || len(names) != 1 {
		t.Fatalf("List = %v, %v", names, err)
	}
}
