package analysis

import (
	"go/ast"
	"go/types"
)

// goroguard requires every spawned goroutine to have a panic story: a
// panic on a naked goroutine kills the whole host process with no
// chance to fail the one volume it belongs to. Goroutines must either
// be spawned through invariant.Go (which rewraps the panic with the
// goroutine's name and stack) or open with `defer func() { recover()
// ... }()`. The invariant package itself is exempt — it implements the
// guard.
func newGoroguard() *Analyzer {
	a := &Analyzer{
		Name: "goroguard",
		Doc:  "goroutines must recover or propagate panics (spawn via invariant.Go)",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Path() == "lsvd/internal/invariant" {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !guardedGo(pass, g) {
					pass.Reportf(g.Pos(), "goroutine without a panic guard; spawn it via invariant.Go or open with a deferred recover")
				}
				return true
			})
		}
	}
	return a
}

// guardedGo accepts `go func() { defer func() { ... recover() ... }();
// ... }()`. Anything else — naked method values, literals whose first
// statement is not the guard — is unguarded.
func guardedGo(pass *Pass, g *ast.GoStmt) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok || len(lit.Body.List) == 0 {
		return false
	}
	def, ok := lit.Body.List[0].(*ast.DeferStmt)
	if !ok {
		return false
	}
	deferred, ok := ast.Unparen(def.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(deferred.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "recover" {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				found = true
			}
		}
		return !found
	})
	return found
}
