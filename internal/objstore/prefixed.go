package objstore

import (
	"context"
	"fmt"
	"path"
	"strings"
)

// Prefixed scopes a Store to a key namespace: every object name is
// stored under prefix, and List results come back with the prefix
// stripped, so a client holding a Prefixed store sees a private flat
// namespace inside a shared bucket. A multi-volume host gives each
// volume a Prefixed view ("vol/<name>/") of one backend store, so
// volumes can be created, deleted and listed independently without
// their object streams ever colliding.
//
// Names that would escape the namespace — absolute paths, "..",
// empty or "."-only names — are rejected with ErrBadName before they
// reach the inner store.
type Prefixed struct {
	inner  Store
	prefix string
}

// NewPrefixed scopes inner to prefix. The prefix itself must be a
// clean, relative, non-escaping path; a trailing "/" is appended if
// missing. An empty prefix returns a transparent wrapper (the identity
// namespace), which single-volume hosts use so their key layout stays
// the historical flat one.
func NewPrefixed(inner Store, prefix string) (*Prefixed, error) {
	if prefix != "" {
		p := strings.TrimSuffix(prefix, "/")
		if err := checkScopedName(p); err != nil {
			return nil, fmt.Errorf("%w: prefix %q", ErrBadName, prefix)
		}
		prefix = p + "/"
	}
	return &Prefixed{inner: inner, prefix: prefix}, nil
}

// Inner returns the wrapped store (stats tooling unwraps to find the
// shared Retrier).
func (s *Prefixed) Inner() Store { return s.inner }

// Prefix returns the namespace prefix, "" for the identity wrapper.
func (s *Prefixed) Prefix() string { return s.prefix }

// checkScopedName rejects names that would address objects outside the
// namespace once joined with the prefix.
func checkScopedName(name string) error {
	if name == "" || strings.HasPrefix(name, "/") {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	clean := path.Clean(name)
	if clean != name || clean == "." || clean == ".." || strings.HasPrefix(clean, "../") {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

func (s *Prefixed) join(name string) (string, error) {
	if err := checkScopedName(name); err != nil {
		return "", err
	}
	return s.prefix + name, nil
}

// Put implements Store.
func (s *Prefixed) Put(ctx context.Context, name string, data []byte) error {
	full, err := s.join(name)
	if err != nil {
		return err
	}
	return s.inner.Put(ctx, full, data)
}

// PutV implements VectorPutter.
func (s *Prefixed) PutV(ctx context.Context, name string, bufs [][]byte) error {
	full, err := s.join(name)
	if err != nil {
		return err
	}
	return PutVec(ctx, s.inner, full, bufs)
}

// Get implements Store.
func (s *Prefixed) Get(ctx context.Context, name string) ([]byte, error) {
	full, err := s.join(name)
	if err != nil {
		return nil, err
	}
	return s.inner.Get(ctx, full)
}

// GetRange implements Store.
func (s *Prefixed) GetRange(ctx context.Context, name string, off, length int64) ([]byte, error) {
	full, err := s.join(name)
	if err != nil {
		return nil, err
	}
	return s.inner.GetRange(ctx, full, off, length)
}

// Delete implements Store.
func (s *Prefixed) Delete(ctx context.Context, name string) error {
	full, err := s.join(name)
	if err != nil {
		return err
	}
	return s.inner.Delete(ctx, full)
}

// List implements Store: only objects inside the namespace are
// returned, with the namespace prefix stripped. The listing prefix
// itself may be empty ("everything in the namespace") but must not
// escape.
func (s *Prefixed) List(ctx context.Context, prefix string) ([]string, error) {
	if strings.HasPrefix(prefix, "/") || strings.Contains(prefix, "..") {
		return nil, fmt.Errorf("%w: list prefix %q", ErrBadName, prefix)
	}
	names, err := s.inner.List(ctx, s.prefix+prefix)
	if err != nil {
		return nil, err
	}
	out := names[:0]
	for _, n := range names {
		if rest, ok := strings.CutPrefix(n, s.prefix); ok {
			out = append(out, rest)
		}
	}
	return out, nil
}

// Size implements Store.
func (s *Prefixed) Size(ctx context.Context, name string) (int64, error) {
	full, err := s.join(name)
	if err != nil {
		return 0, err
	}
	return s.inner.Size(ctx, full)
}
