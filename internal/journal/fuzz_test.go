package journal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"lsvd/internal/block"
)

// FuzzDecode throws arbitrary bytes at the full record parser. Decode
// must never panic, must tag every rejection with ErrCorrupt (recovery
// distinguishes torn records from I/O errors by that tag), and any
// record it accepts must survive an encode/decode round trip — the
// differential check that the parser and the encoder agree on the
// format.
func FuzzDecode(f *testing.F) {
	data := bytes.Repeat([]byte{0xa5}, 2*block.SectorSize)
	h := &Header{
		Type: TypeData, Seq: 7, WriteSeq: 9, DataLen: uint64(len(data)),
		Extents: []ExtentEntry{{LBA: 8, Sectors: 2, SrcSeq: 7}},
	}
	if rec, err := Encode(h, data, true); err == nil {
		f.Add(rec, true)
		f.Add(rec[:len(rec)-1], true)
		f.Add(rec, false)
	}
	if rec, err := EncodeSectorHeader(h, data); err == nil {
		f.Add(rec, false)
		f.Add(rec[:headerFixed-1], false)
	}
	if rec, err := Encode(&Header{Type: TypePad, Seq: 1}, nil, true); err == nil {
		f.Add(rec, true)
	}
	f.Add([]byte("not a journal record"), false)

	f.Fuzz(func(t *testing.T, buf []byte, align bool) {
		h, data, total, err := Decode(buf, align)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode error not tagged ErrCorrupt: %v", err)
			}
			return
		}
		if total > len(buf) {
			t.Fatalf("decoded total %d exceeds buffer %d", total, len(buf))
		}
		if uint64(len(data)) != h.DataLen {
			t.Fatalf("data %d bytes, header claims %d", len(data), h.DataLen)
		}
		// Round trip: re-encoding the decoded record must produce a
		// record that decodes to the same header and data. (The bytes
		// may differ — the original may use a different header
		// alignment — but the decoded form must not.)
		rec, err := Encode(h, data, align)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed: %v", err)
		}
		h2, data2, _, err := Decode(rec, align)
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v", err)
		}
		if !reflect.DeepEqual(h, h2) || !bytes.Equal(data, data2) {
			t.Fatalf("round trip changed the record: %+v -> %+v", h, h2)
		}
	})
}
