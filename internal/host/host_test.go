package host

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/core"
	"lsvd/internal/nbd"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

func testHost(t *testing.T, store objstore.Store, cache simdev.Device, maxVols int) *Host {
	t.Helper()
	h, err := New(context.Background(), Options{
		Store: store, CacheDev: cache, MaxVolumes: maxVols,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func pattern(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestHostEightVolumesShareOneSSD(t *testing.T) {
	ctx := context.Background()
	store := objstore.NewMem()
	// 8 slots need >= ~5 MiB each (4 MiB min log area + metadata):
	// 240 MiB * 0.2 / 8 = 6 MiB per slot.
	cache := simdev.NewMem(240 * block.MiB)
	h := testHost(t, store, cache, 8)

	const volBytes = 4 * block.MiB
	const ioBytes = 512 << 10
	disks := make([]*core.Disk, 8)
	for i := range disks {
		d, err := h.Create(ctx, fmt.Sprintf("vm%d", i), core.VolumeOptions{VolBytes: volBytes})
		if err != nil {
			t.Fatalf("create vm%d: %v", i, err)
		}
		disks[i] = d
	}

	// All eight write and read concurrently through the shared SSD,
	// shared semaphores, and shared backend.
	var wg sync.WaitGroup
	errs := make(chan error, len(disks))
	for i, d := range disks {
		wg.Add(1)
		go func(i int, d *core.Disk) {
			defer wg.Done()
			data := pattern(int64(i), ioBytes)
			if err := d.WriteAt(data, 0); err != nil {
				errs <- fmt.Errorf("vm%d write: %w", i, err)
				return
			}
			if err := d.Drain(); err != nil {
				errs <- fmt.Errorf("vm%d drain: %w", i, err)
				return
			}
			got := make([]byte, ioBytes)
			if err := d.ReadAt(got, 0); err != nil {
				errs <- fmt.Errorf("vm%d read: %w", i, err)
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("vm%d readback mismatch", i)
			}
		}(i, d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Each volume's objects live under its own prefix.
	for i := range disks {
		names, err := store.List(ctx, volPrefix(fmt.Sprintf("vm%d", i)))
		if err != nil || len(names) == 0 {
			t.Fatalf("vm%d has no namespaced objects: %v %v", i, names, err)
		}
	}
	// Host-wide metering saw the traffic.
	if st := h.Stats(); st.Backend.Puts == 0 {
		t.Fatal("host meter recorded no PUTs")
	}
	if got := h.Volumes(); len(got) != 8 || !sort.StringsAreSorted(got) {
		t.Fatalf("Volumes() = %v", got)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHostRestartReattachesSlots(t *testing.T) {
	ctx := context.Background()
	store := objstore.NewMem()
	cache := simdev.NewMem(128 * block.MiB)
	h := testHost(t, store, cache, 4)

	want := map[string][]byte{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("vm%d", i)
		d, err := h.Create(ctx, name, core.VolumeOptions{VolBytes: 4 * block.MiB})
		if err != nil {
			t.Fatal(err)
		}
		data := pattern(int64(100+i), 256<<10)
		if err := d.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// Same SSD, same bucket: the slot table brings each volume back on
	// the section holding its write log (Close destaged everything, but
	// recovery would also replay — either way the data must be there).
	h2 := testHost(t, store, cache, 4)
	if got := h2.Volumes(); len(got) != 3 {
		t.Fatalf("after restart Volumes() = %v", got)
	}
	for name, data := range want {
		d, err := h2.Open(ctx, name, core.VolumeOptions{})
		if err != nil {
			t.Fatalf("reopen %s: %v", name, err)
		}
		got := make([]byte, len(data))
		if err := d.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s lost data across restart", name)
		}
	}
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHostOpenAllConcurrentAttach(t *testing.T) {
	ctx := context.Background()
	store := objstore.NewMem()
	cache := simdev.NewMem(128 * block.MiB)
	h := testHost(t, store, cache, 4)

	want := map[string][]byte{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("vm%d", i)
		d, err := h.Create(ctx, name, core.VolumeOptions{VolBytes: 4 * block.MiB})
		if err != nil {
			t.Fatal(err)
		}
		data := pattern(int64(200+i), 256<<10)
		if err := d.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt vm3's superblock: its attach must fail without taking the
	// neighbors down with it.
	if err := store.Put(ctx, volPrefix("vm3")+"vm3.super", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	delete(want, "vm3")

	h2 := testHost(t, store, cache, 4)
	vols := map[string]core.VolumeOptions{
		"vm0": {}, "vm1": {}, "vm2": {}, "vm3": {},
	}
	disks, errs := h2.OpenAll(ctx, vols)
	if len(errs) != 1 || errs["vm3"] == nil {
		t.Fatalf("OpenAll errs = %v, want exactly vm3", errs)
	}
	if len(disks) != 3 {
		t.Fatalf("OpenAll opened %d volumes, want 3", len(disks))
	}
	for name, data := range want {
		d := disks[name]
		if d == nil {
			t.Fatalf("OpenAll did not return %s", name)
		}
		got := make([]byte, len(data))
		if err := d.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s lost data across OpenAll restart", name)
		}
	}
	// The failed volume did not leak its lease: a later retry can open
	// it again once repaired (here: still broken, so it still errors,
	// but with the same clean "not leased" path, not "already open").
	if _, err := h2.Open(ctx, "vm3", core.VolumeOptions{}); err == nil {
		t.Fatal("open of corrupted vm3 unexpectedly succeeded")
	}
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHostVolumeIsolation(t *testing.T) {
	ctx := context.Background()
	h := testHost(t, objstore.NewMem(), simdev.NewMem(48*block.MiB), 2)
	a, err := h.Create(ctx, "a", core.VolumeOptions{VolBytes: 4 * block.MiB})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Create(ctx, "b", core.VolumeOptions{VolBytes: 4 * block.MiB})
	if err != nil {
		t.Fatal(err)
	}
	da, db := pattern(1, 128<<10), pattern(2, 128<<10)
	if err := a.WriteAt(da, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteAt(db, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(da))
	if err := a.ReadAt(got, 0); err != nil || !bytes.Equal(got, da) {
		t.Fatal("volume a read wrong data")
	}
	if err := b.ReadAt(got, 0); err != nil || !bytes.Equal(got, db) {
		t.Fatal("volume b read wrong data")
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHostSlotLimitsAndDoubleOpen(t *testing.T) {
	ctx := context.Background()
	h := testHost(t, objstore.NewMem(), simdev.NewMem(48*block.MiB), 2)
	if _, err := h.Create(ctx, "a", core.VolumeOptions{VolBytes: block.MiB}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create(ctx, "b", core.VolumeOptions{VolBytes: block.MiB}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create(ctx, "c", core.VolumeOptions{VolBytes: block.MiB}); err == nil {
		t.Fatal("third volume on a 2-slot host accepted")
	}
	if _, err := h.Open(ctx, "a", core.VolumeOptions{}); err == nil {
		t.Fatal("double open accepted")
	}
	if _, err := h.Open(ctx, "nope", core.VolumeOptions{}); err == nil {
		t.Fatal("open of unknown volume accepted")
	}
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := h.Create(ctx, bad, core.VolumeOptions{VolBytes: block.MiB}); err == nil {
			t.Fatalf("bad name %q accepted", bad)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHostDeleteVolume(t *testing.T) {
	ctx := context.Background()
	store := objstore.NewMem()
	h := testHost(t, store, simdev.NewMem(48*block.MiB), 2)
	d, err := h.Create(ctx, "gone", core.VolumeOptions{VolBytes: 4 * block.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(pattern(1, 128<<10), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(ctx, "gone"); err == nil {
		t.Fatal("delete of open volume accepted")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	names, err := store.List(ctx, volPrefix("gone"))
	if err != nil || len(names) != 0 {
		t.Fatalf("objects survived delete: %v %v", names, err)
	}
	if _, err := h.Open(ctx, "gone", core.VolumeOptions{}); err == nil {
		t.Fatal("deleted volume still opens")
	}
	// The freed slot is reusable.
	if _, err := h.Create(ctx, "next", core.VolumeOptions{VolBytes: block.MiB}); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHostArenaFairness is the ISSUE's fairness criterion: a cold
// volume sharing the arena with a hot churner retains at least its
// proportional occupancy floor, its cached data stays served from the
// SSD (no new backend GETs), and its read p99 stays bounded.
func TestHostArenaFairness(t *testing.T) {
	ctx := context.Background()
	store := objstore.NewMem()
	// 32 MiB SSD at frac 0.4, 2 slots: 6.4 MiB of write-cache log per
	// volume (~5.6 MiB log area), arena ~19 MiB -> map ~2.4 MiB, 8
	// slabs of 2 MiB (16 MiB capacity), fair share 4. Hot's miss-able
	// working set (~18 MiB) exceeds the whole arena, so it must churn.
	h, err := New(ctx, Options{
		Store: store, CacheDev: simdev.NewMem(32 * block.MiB),
		MaxVolumes: 2, WriteCacheFrac: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	const volBytes = 24 * block.MiB

	cold, err := h.Create(ctx, "cold", core.VolumeOptions{VolBytes: volBytes})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := h.Create(ctx, "hot", core.VolumeOptions{VolBytes: volBytes})
	if err != nil {
		t.Fatal(err)
	}

	// Both volumes write a working set much larger than their ~5.6 MiB
	// write-cache log, so early extents get evicted from the write
	// log and reads of them must go through the shared arena. Hot's
	// set is sized so its arena-resident part (everything the write
	// log no longer holds, ~18 MiB) exceeds its fair share (5 slabs =
	// 20 MiB... with the map sized at 6.4 MiB the arena holds 11
	// slabs, so hot alone wants ~9 > share) and must churn.
	const coldWS = 12 * block.MiB
	const hotWS = 24 * block.MiB
	const chunk = 512 << 10
	writeWS := func(d *core.Disk, seed int64, ws int64) {
		t.Helper()
		for off := int64(0); off < ws; off += chunk {
			if err := d.WriteAt(pattern(seed+off, chunk), off); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	writeWS(cold, 1000, coldWS)
	writeWS(hot, 2000, hotWS)

	// Cold warms a small arena working set: the first 4 MiB (one slab
	// worth), read twice so the second pass is all SSD hits.
	coldRead := func() time.Duration {
		start := time.Now()
		buf := make([]byte, chunk)
		for off := int64(0); off < 4*block.MiB; off += chunk {
			if err := cold.ReadAt(buf, off); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	coldRead()
	coldRead()
	coldStats := cold.Stats()
	coldOwnedBefore := coldStats.ReadCache.OwnedSlabs
	share := coldStats.ReadCache.FairShareSlabs
	if coldOwnedBefore == 0 {
		t.Fatal("cold volume cached nothing in the arena; working set never left the write cache")
	}
	coldGETsBefore := cold.Stats().BackendGETs

	// Hot churns the arena far past its capacity while cold keeps
	// reading its warmed set; collect cold's pass latencies.
	var coldLat []time.Duration
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, chunk)
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 600; i++ {
			off := (r.Int63n(hotWS / chunk)) * chunk
			if err := hot.ReadAt(buf, off); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		coldLat = append(coldLat, coldRead())
	}
	<-done

	coldAfter := cold.Stats()
	floor := coldOwnedBefore
	if floor > share {
		floor = share
	}
	if coldAfter.ReadCache.OwnedSlabs < floor {
		t.Fatalf("cold evicted below its floor: owns %d slabs, floor %d (share %d, before %d)",
			coldAfter.ReadCache.OwnedSlabs, floor, share, coldOwnedBefore)
	}
	// Cold's warmed set was never evicted: its re-reads stayed on the
	// SSD (no new backend GETs for cold).
	if coldAfter.BackendGETs != coldGETsBefore {
		t.Fatalf("cold went back to the backend under hot churn: GETs %d -> %d",
			coldGETsBefore, coldAfter.BackendGETs)
	}
	// Hot actually churned (evictions happened, hot is at its share).
	ast := h.Stats().Arena
	if ast.Evictions == 0 {
		t.Fatal("hot never churned the arena; test is vacuous")
	}
	// p99 (here: max of 20 passes) stays bounded — generous bound, the
	// point is "not starved", not a precise latency SLO.
	sort.Slice(coldLat, func(i, j int) bool { return coldLat[i] < coldLat[j] })
	if p99 := coldLat[len(coldLat)-1]; p99 > 5*time.Second {
		t.Fatalf("cold read pass p99 %v exceeds bound", p99)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHostFlatKeysCompat(t *testing.T) {
	ctx := context.Background()
	store := objstore.NewMem()
	h, err := New(ctx, Options{
		Store: store, CacheDev: simdev.NewMem(32 * block.MiB), FlatKeys: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.Create(ctx, "vm", core.VolumeOptions{VolBytes: 4 * block.MiB})
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(1, 128<<10)
	if err := d.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	// Flat layout: objects at the bucket root, no host metadata.
	names, err := store.List(ctx, "vm.")
	if err != nil || len(names) == 0 {
		t.Fatalf("no flat objects: %v %v", names, err)
	}
	if _, err := store.Get(ctx, slotsKey); err == nil {
		t.Fatal("flat-key host wrote slot metadata")
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHostServesVolumesOverNBD(t *testing.T) {
	ctx := context.Background()
	h := testHost(t, objstore.NewMem(), simdev.NewMem(64*block.MiB), 2)
	for _, name := range []string{"vm0", "vm1"} {
		if _, err := h.Create(ctx, name, core.VolumeOptions{VolBytes: 4 * block.MiB}); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := h.NBDServer()
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	names, err := nbd.List(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "vm0" || names[1] != "vm1" {
		t.Fatalf("exports = %v", names)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			c, err := nbd.Dial(ln.Addr().String(), name)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			data := pattern(int64(i), 64<<10)
			if err := c.WriteAt(data, 0); err != nil {
				errs <- err
				return
			}
			got := make([]byte, len(data))
			if err := c.ReadAt(got, 0); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("%s: NBD round trip mismatch", name)
			}
		}(i, name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}
