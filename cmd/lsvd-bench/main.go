// Command lsvd-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md's per-experiment index). Results print as
// aligned text and are optionally written as CSV files.
//
// Usage:
//
//	lsvd-bench -list
//	lsvd-bench [-scale 32] [-csv results/] all
//	lsvd-bench fig6 fig12 table5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lsvd/internal/experiments"
)

func main() {
	scale := flag.Int64("scale", 32, "scale-down factor for volumes and write volumes (paper sizes / scale)")
	seed := flag.Int64("seed", 1, "workload seed")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	list := flag.Bool("list", false, "list experiments and exit")
	uploadDepth := flag.Int("upload-depth", 0, "concurrent backend object uploads per volume (0 = library default)")
	syncDestage := flag.Bool("sync-destage", false, "disable the async destage pipeline (destage inline, for before/after comparisons)")
	fetchDepth := flag.Int("fetch-depth", 0, "concurrent backend range GETs on the read-miss path (0 = library default, 1 = serial)")
	openFanout := flag.Int("open-fanout", 0, "concurrent backend reads during recovery at open (0 = library default, 1 = serial)")
	groupStall := flag.Duration("group-stall", 0, "group-commit leader linger time per cache-log batch (0 = flush immediately)")
	groupMaxRecords := flag.Int("group-max-records", 0, "record cap per group-commit device write (0 = library default)")
	gcWAFTarget := flag.Float64("gc-waf-target", 0, "background GC write-amplification budget (0 = library default 2.0, <0 = unpaced)")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = experiments.Names()
	}
	env := experiments.Env{
		Scale: *scale, Seed: *seed,
		UploadDepth: *uploadDepth, SyncDestage: *syncDestage, FetchDepth: *fetchDepth,
		OpenFanout: *openFanout,
		GroupStall: *groupStall, GroupMaxRecords: *groupMaxRecords,
		GCWAFTarget: *gcWAFTarget,
	}
	ctx := context.Background()

	exit := 0
	for _, name := range names {
		start := time.Now()
		tab, err := experiments.Run(ctx, env, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit = 1
			continue
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
