package consistency

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/core"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

// cutStore simulates a clean crash of the backend session: after the
// cut, every mutation fails permanently (as if the host died with the
// PUTs on the wire), while the objects that completed earlier stay
// exactly as written. Cutting between a checkpoint object's PUT and
// its superblock PUT is the interesting window for the off-lock
// checkpoint pipeline — the audit below proves the super can never
// name a checkpoint the crash swallowed.
type cutStore struct {
	objstore.Store
	puts     atomic.Int64
	cutAt    atomic.Int64 // fail mutations once puts reaches this (0 = never)
	cutSuper atomic.Bool  // instead: fail exactly the next super PUT and cut there
}

func (c *cutStore) cut() bool {
	at := c.cutAt.Load()
	return at > 0 && c.puts.Load() >= at
}

func (c *cutStore) Put(ctx context.Context, name string, data []byte) error {
	if c.cut() {
		return fmt.Errorf("%w: backend cut", objstore.ErrInjected)
	}
	if c.cutSuper.Load() && strings.HasSuffix(name, ".super") {
		c.cutAt.Store(1) // everything from here on is past the crash
		return fmt.Errorf("%w: backend cut at super PUT", objstore.ErrInjected)
	}
	c.puts.Add(1)
	return c.Store.Put(ctx, name, data)
}

func (c *cutStore) Delete(ctx context.Context, name string) error {
	if c.cut() {
		return fmt.Errorf("%w: backend cut", objstore.ErrInjected)
	}
	return c.Store.Delete(ctx, name)
}

// TestCheckpointCrashTorture kills the volume with the backend cut at
// an arbitrary PUT boundary — frequently mid-background-checkpoint,
// since every other batch queues a checkpoint marker — and checks the
// two halves of checkpoint crash consistency:
//
//  1. The surviving superblock names only a checkpoint whose object
//     PUT completed (ordering rule 1 of the checkpoint pipeline),
//     verified directly against the raw backend contents.
//  2. The volume recovers to a consistent prefix with all committed
//     writes intact (the cache survives the crash).
//
// Half the iterations instead cut exactly at a superblock PUT: the
// checkpoint object is durable but the pointer update is lost, which
// recovery must absorb by replaying the newer checkpoint wholesale.
func TestCheckpointCrashTorture(t *testing.T) {
	seed := envInt("LSVD_FAULT_SEED", 1)
	iters := envInt("LSVD_FAULT_ITERS", 16)
	if testing.Short() && iters > 8 {
		iters = 8
	}
	for it := int64(0); it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("seed=%d", seed+it), func(t *testing.T) {
			ckptCrashIteration(t, seed+it)
		})
		if t.Failed() {
			break
		}
	}
}

func ckptCrashIteration(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mem := objstore.NewMem()
	store := &cutStore{Store: mem}
	cache := simdev.NewMem(32 * block.MiB)
	opts := core.Options{
		Volume: "vol", Store: store, CacheDev: cache,
		VolBytes: 16 * block.MiB, BatchBytes: 128 << 10,
		CheckpointEvery: 2, UploadDepth: 2, DestageQueueDepth: 32,
		Retry: objstore.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   50 * time.Microsecond,
			MaxDelay:    time.Millisecond,
			Seed:        seed,
		},
	}
	disk, err := core.Create(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seed%2 == 0 {
		store.cutSuper.Store(true)
	} else {
		store.cutAt.Store(int64(3 + rng.Intn(40)))
	}

	w, err := NewWriter(disk)
	if err != nil {
		t.Fatal(err)
	}
	blocks := disk.Size() / block.BlockSize
	for i := 0; i < 200; i++ {
		if rng.Intn(8) == 0 {
			err = w.Barrier()
		} else {
			err = w.Write(rng.Int63n(blocks-4), 1+rng.Intn(4))
		}
		if err != nil {
			if !errors.Is(err, objstore.ErrInjected) {
				t.Fatalf("op %d failed outside the cut model: %v", i, err)
			}
			break
		}
	}
	disk.Kill()

	// Audit the raw backend as the crash left it: the superblock must
	// point at a checkpoint object that is present and whole.
	raw, err := mem.Get(ctx, "vol.super")
	if err != nil {
		t.Fatalf("superblock missing after crash: %v", err)
	}
	info, err := blockstore.DecodeSuperInfo(raw)
	if err != nil {
		t.Fatalf("superblock corrupt after crash: %v", err)
	}
	obj, err := mem.Get(ctx, fmt.Sprintf("vol.%08d", info.LastCheckpoint))
	if err != nil {
		t.Fatalf("super names checkpoint %d but its object is missing: %v",
			info.LastCheckpoint, err)
	}
	if h, _, _, err := journal.Decode(obj, false); err != nil {
		t.Fatalf("super-named checkpoint %d does not decode: %v", info.LastCheckpoint, err)
	} else if h.Type != journal.TypeCheckpoint {
		t.Fatalf("super-named object %d is %v, not a checkpoint", info.LastCheckpoint, h.Type)
	}

	// Heal the backend and recover: consistent prefix, committed writes
	// intact (the cache survived).
	store.cutAt.Store(0)
	store.cutSuper.Store(false)
	disk2, err := core.Open(ctx, opts)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	r, err := w.Check(disk2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Mountable {
		t.Fatalf("image not a consistent prefix:\n  %s", strings.Join(r.Violations, "\n  "))
	}
	if !r.CommittedPreserved {
		t.Fatalf("committed writes lost despite surviving cache: recovered v%d < committed v%d",
			r.RecoveredVersion, w.Committed())
	}
	if err := disk2.Close(); err != nil {
		t.Logf("close after checkpoint crash: %v", err)
	}
}
