// Package interproc is the golden self-test for the interprocedural
// side of lockheld: //lsvd:requires contracts checked at every call
// site across function boundaries, per-lock summaries that model
// lock-drop helpers, recursion handled by the SCC fixpoint, and the
// deferred-function-literal release idiom. Run under the lockheld
// analyzer by the self-test harness.
package interproc

import (
	"context"
	"sync"
	"time"

	"lsvd/internal/objstore"
)

type store struct {
	mu sync.Mutex //lsvd:lock test.mu
	be objstore.Store
	n  int
}

// leafLocked is the `fooLocked` helper contract: callers must hold
// test.mu.
//
//lsvd:requires test.mu
func (s *store) leafLocked() {
	s.n++
}

// midLocked passes the contract through: it declares the same
// requirement, so calling leafLocked is fine here.
//
//lsvd:requires test.mu
func (s *store) midLocked() {
	s.leafLocked()
}

// top calls the annotated helper with no lock anywhere in the chain.
func (s *store) top() {
	s.midLocked() // want "call to midLocked requires test.mu held"
}

// good satisfies the contract.
func (s *store) good() {
	s.mu.Lock()
	s.midLocked()
	s.mu.Unlock()
}

// midPlain is the frame between a lock-free entry point and the
// annotated helper: it carries no contract of its own, so the missing
// acquisition is reported here — the first frame where the contract
// visibly breaks — however deep the chain above it.
func (s *store) midPlain() {
	s.leafLocked() // want "call to leafLocked requires test.mu held"
}

func (s *store) topTwoFramesUp() {
	s.midPlain() // clean: midPlain carries no contract; its body is flagged
}

// goroutineCallsHelper: a spawned goroutine never inherits the
// spawner's locks, so the contract fails inside the body even though
// the spawner holds the mutex.
func (s *store) goroutineCallsHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.leafLocked() // want "call to leafLocked requires test.mu held"
	}()
}

// blockyLocked blocks under the caller's lock: with the contract in
// the initial held set, the direct report fires without any caller.
//
//lsvd:requires test.mu
func (s *store) blockyLocked(ctx context.Context) error {
	return s.be.Put(ctx, "k", nil) // want "objstore.Put while holding test.mu"
}

// blockyCaller holds the lock (contract satisfied), but the callee's
// summary says it blocks while test.mu is still held.
func (s *store) blockyCaller(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blockyLocked(ctx) // want "call to blockyLocked may block while holding test.mu"
}

// dropperLocked is the lock-drop protocol with a declared contract:
// the caller's mutex is released around the backend round-trip and
// re-acquired. The per-lock summary records no blocking under test.mu,
// so contract-satisfying callers stay clean.
//
//lsvd:requires test.mu
func (s *store) dropperLocked(ctx context.Context) {
	s.mu.Unlock()
	_, _ = s.be.Get(ctx, "k")
	s.mu.Lock()
}

func (s *store) dropCaller(ctx context.Context) {
	s.mu.Lock()
	s.dropperLocked(ctx)
	s.mu.Unlock()
}

// Mutual recursion: the summary fixpoint must converge and still see
// the sleep through the cycle.
func (s *store) pingPong(n int) {
	if n == 0 {
		return
	}
	s.pong(n - 1)
}

func (s *store) pong(n int) {
	time.Sleep(time.Millisecond)
	s.pingPong(n)
}

func (s *store) callsRecursive() {
	s.mu.Lock()
	s.pingPong(3) // want "call to pingPong may block while holding test.mu"
	s.mu.Unlock()
}

// deferredFuncLitUnlock releases through a deferred literal — the
// cleanup-bundle idiom. The release runs at function exit, so the lock
// is held across the body and the backend call must still be flagged.
func (s *store) deferredFuncLitUnlock(ctx context.Context) error {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.be.Put(ctx, "k", nil) // want "objstore.Put while holding test.mu"
}
