module lsvd

go 1.22
