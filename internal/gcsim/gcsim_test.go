package gcsim

import (
	"context"
	"testing"

	"lsvd/internal/workload"
)

var ctx = context.Background()

func spec(id string) workload.TraceSpec {
	for _, s := range workload.PaperTraces {
		if s.ID == id {
			return s
		}
	}
	panic("unknown trace " + id)
}

func TestSimulateBasics(t *testing.T) {
	cfg := Defaults(512)
	res, err := Simulate(ctx, spec("w66"), Merge, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// WAF can dip below 1 when intra-batch coalescing eliminates
	// client bytes, but it must stay in a sane band.
	if res.WriteGB <= 0 || res.Extents <= 0 || res.WAF <= 0.02 || res.WAF > 3.0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.MergeRat < 0 || res.MergeRat > 1 {
		t.Fatalf("merge ratio %.2f out of range", res.MergeRat)
	}
}

// TestHotTraceCoalesces: w66-style traces (tiny hot set) must show a
// large merge ratio and a merge-mode WAF clearly below no-merge, as in
// Table 5 (1.97 -> 1.35).
func TestHotTraceCoalesces(t *testing.T) {
	cfg := Defaults(1024)
	nm, err := Simulate(ctx, spec("w66"), NoMerge, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Simulate(ctx, spec("w66"), Merge, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.MergeRat < 0.25 {
		t.Fatalf("hot trace merge ratio %.2f, want substantial", m.MergeRat)
	}
	if m.WAF >= nm.WAF {
		t.Fatalf("merge did not reduce WAF: %.2f vs %.2f", m.WAF, nm.WAF)
	}
}

// TestColdSequentialTraceLowWAF: w31-style traces (sequential, low
// overwrite churn relative to volume) have WAF near 1.
func TestColdSequentialTraceLowWAF(t *testing.T) {
	cfg := Defaults(2048)
	m, err := Simulate(ctx, spec("w31"), Merge, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.WAF > 1.4 {
		t.Fatalf("sequential trace WAF %.2f, want near 1", m.WAF)
	}
}

// TestDefragShrinksFragmentedMap: w01-style traces (random small
// writes over a large footprint) fragment the map; defrag mode must
// shrink it meaningfully (paper: >2x for w01) at little WAF cost.
func TestDefragShrinksFragmentedMap(t *testing.T) {
	cfg := Defaults(512)
	m, err := Simulate(ctx, spec("w01"), Merge, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Simulate(ctx, spec("w01"), Defrag, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Extents >= m.Extents {
		t.Fatalf("defrag did not shrink map: %d vs %d", d.Extents, m.Extents)
	}
	if d.WAF > m.WAF*1.35 {
		t.Fatalf("defrag WAF cost too high: %.2f vs %.2f", d.WAF, m.WAF)
	}
}

func TestGCTriggersOnChurn(t *testing.T) {
	cfg := Defaults(1024)
	m, err := Simulate(ctx, spec("w41"), Merge, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.GCRuns == 0 {
		t.Fatal("churn trace never triggered GC")
	}
}
