package replica

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/objstore"
)

var ctx = context.Background()

func payload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func readAll(t *testing.T, s *blockstore.Store, ext block.Extent) []byte {
	t.Helper()
	buf := make([]byte, ext.Bytes())
	for _, run := range s.Lookup(ext) {
		if !run.Present {
			continue
		}
		data, err := s.ReadRun(run)
		if err != nil {
			t.Fatal(err)
		}
		copy(buf[(run.LBA-ext.LBA).Bytes():], data)
	}
	return buf
}

func TestReplicaMountsConsistently(t *testing.T) {
	primary := objstore.NewMem()
	secondary := objstore.NewMem()
	bs, err := blockstore.Create(ctx, blockstore.Config{
		Volume: "vol", Store: primary, VolSectors: 1 << 20,
		BatchBytes: 128 * 1024, CheckpointEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &Replicator{Primary: primary, Replica: secondary, Volume: "vol", LagObjects: 2}

	want := map[int][]byte{}
	ws := uint64(0)
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			ws++
			ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
			d := payload(int64(ws), int(ext.Bytes()))
			want[i] = d
			if err := bs.Append(ws, ext, d); err != nil {
				t.Fatal(err)
			}
		}
		_ = bs.Seal()
		if _, err := r.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Final catch-up with no lag.
	_ = bs.Seal()
	_ = bs.Checkpoint()
	r.LagObjects = 0
	if _, err := r.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if r.Stats().CopiedObjects == 0 {
		t.Fatal("nothing replicated")
	}

	// Mount the replica and verify every extent.
	rep, err := blockstore.Open(ctx, blockstore.Config{Volume: "vol", Store: secondary})
	if err != nil {
		t.Fatalf("replica mount: %v", err)
	}
	for i := 0; i < 8; i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
		if got := readAll(t, rep, ext); !bytes.Equal(got, want[i]) {
			t.Fatalf("replica extent %d differs from primary", i)
		}
	}
}

func TestLaggedReplicaIsPrefix(t *testing.T) {
	primary := objstore.NewMem()
	secondary := objstore.NewMem()
	bs, _ := blockstore.Create(ctx, blockstore.Config{
		Volume: "vol", Store: primary, VolSectors: 1 << 20,
		BatchBytes: 64 * 1024, CheckpointEvery: 4,
	})
	r := &Replicator{Primary: primary, Replica: secondary, Volume: "vol", LagObjects: 3}
	for i := 0; i < 30; i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
		_ = bs.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes())))
		_ = bs.Seal()
		_, _ = r.Sync(ctx)
	}
	// The lagged replica must still open (older consistent state).
	rep, err := blockstore.Open(ctx, blockstore.Config{Volume: "vol", Store: secondary})
	if err != nil {
		t.Fatalf("lagged replica mount: %v", err)
	}
	// Every extent it reports must match the primary's history: the
	// replica is behind, never wrong.
	durable := rep.DurableWriteSeq()
	if durable == 0 || durable >= 30 {
		t.Fatalf("replica watermark %d", durable)
	}
	for i := 0; i < int(durable); i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
		if got := readAll(t, rep, ext); !bytes.Equal(got, payload(int64(i), int(ext.Bytes()))) {
			t.Fatalf("replica extent %d wrong (watermark %d)", i, durable)
		}
	}
}

func TestGCDeletedObjectsSkipped(t *testing.T) {
	primary := objstore.NewMem()
	secondary := objstore.NewMem()
	bs, _ := blockstore.Create(ctx, blockstore.Config{
		Volume: "vol", Store: primary, VolSectors: 1 << 20,
		BatchBytes: 64 * 1024, GCLowWater: 0.7, GCHighWater: 0.75, CheckpointEvery: 4,
	})
	// Heavy overwrite so GC deletes objects before replication starts.
	ws := uint64(0)
	for round := 0; round < 20; round++ {
		for i := 0; i < 4; i++ {
			ws++
			ext := block.Extent{LBA: block.LBA(i * 256), Sectors: 128}
			_ = bs.Append(ws, ext, payload(int64(ws), int(ext.Bytes())))
		}
		_ = bs.Seal()
	}
	_ = bs.Checkpoint()
	r := &Replicator{Primary: primary, Replica: secondary, Volume: "vol"}
	if _, err := r.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := blockstore.Open(ctx, blockstore.Config{Volume: "vol", Store: secondary})
	if err != nil {
		t.Fatalf("replica mount after GC: %v", err)
	}
	// Newest data must be present despite the holes.
	for i := 0; i < 4; i++ {
		ext := block.Extent{LBA: block.LBA(i * 256), Sectors: 128}
		wantSeed := int64(ws) - int64(3-i)
		if got := readAll(t, rep, ext); !bytes.Equal(got, payload(wantSeed, int(ext.Bytes()))) {
			t.Fatalf("replica extent %d stale after GC-holed stream", i)
		}
	}
}

func TestSecondSyncIsIncremental(t *testing.T) {
	primary := objstore.NewMem()
	secondary := objstore.NewMem()
	bs, _ := blockstore.Create(ctx, blockstore.Config{
		Volume: "vol", Store: primary, VolSectors: 1 << 20, BatchBytes: 64 * 1024,
	})
	for i := 0; i < 5; i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
		_ = bs.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes())))
		_ = bs.Seal()
	}
	r := &Replicator{Primary: primary, Replica: secondary, Volume: "vol"}
	n1, err := r.Sync(ctx)
	if err != nil || n1 == 0 {
		t.Fatalf("first sync copied %d (%v)", n1, err)
	}
	n2, err := r.Sync(ctx)
	if err != nil || n2 != 0 {
		t.Fatalf("second sync copied %d (%v)", n2, err)
	}
}
