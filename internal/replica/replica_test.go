package replica

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/objstore"
)

var ctx = context.Background()

func payload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func readAll(t *testing.T, s *blockstore.Store, ext block.Extent) []byte {
	t.Helper()
	buf := make([]byte, ext.Bytes())
	for _, run := range s.Lookup(ext) {
		if !run.Present {
			continue
		}
		data, err := s.ReadRun(run)
		if err != nil {
			t.Fatal(err)
		}
		copy(buf[(run.LBA-ext.LBA).Bytes():], data)
	}
	return buf
}

// limitStore errors every Put after the first allowed ones — a replica
// backend that goes down mid-stream, leaving the shipper lagged.
type limitStore struct {
	objstore.Store
	allowed atomic.Int32
}

var errDown = errors.New("replica backend down")

func (s *limitStore) Put(ctx context.Context, name string, data []byte) error {
	if s.allowed.Add(-1) < 0 {
		return errDown
	}
	return s.Store.Put(ctx, name, data)
}

// waitCaughtUp blocks until the shipper's lag is zero and the replica
// holds a superblock.
func waitCaughtUp(t *testing.T, sh *Shipper, replica objstore.Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := sh.Stats()
		if st.LagObjects == 0 {
			if _, err := replica.Size(ctx, "vol.super"); err == nil {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("shipper never caught up")
}

func TestShipperMirrorsVolume(t *testing.T) {
	primary := objstore.NewMem()
	secondary := objstore.NewMem()
	bs, err := blockstore.Create(ctx, blockstore.Config{
		Volume: "vol", Store: primary, VolSectors: 1 << 20,
		BatchBytes: 128 * 1024, CheckpointEvery: 4, Replicated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := Start(ctx, Config{Backend: bs, Replica: secondary})

	want := map[int][]byte{}
	ws := uint64(0)
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			ws++
			ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
			d := payload(int64(ws), int(ext.Bytes()))
			want[i] = d
			if err := bs.Append(ws, ext, d); err != nil {
				t.Fatal(err)
			}
		}
		if err := bs.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sh.Close()

	st := sh.Stats()
	if st.CopiedObjects == 0 {
		t.Fatal("nothing replicated")
	}
	if st.LagObjects != 0 || st.LagBytes != 0 {
		t.Fatalf("lag after drain: %d objects / %d bytes", st.LagObjects, st.LagBytes)
	}
	if bsStats := bs.Stats(); bsStats.ShippedSeq != bsStats.NextSeq-1 {
		t.Fatalf("watermark %d, next seq %d", bsStats.ShippedSeq, bsStats.NextSeq)
	}

	// Every primary object (and the super) must be on the replica.
	names, err := primary.List(ctx, "vol")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, err := secondary.Size(ctx, n); err != nil {
			t.Fatalf("object %s missing on replica: %v", n, err)
		}
	}

	// Mount the replica and verify every extent.
	rep, err := blockstore.Open(ctx, blockstore.Config{Volume: "vol", Store: secondary})
	if err != nil {
		t.Fatalf("replica mount: %v", err)
	}
	for i := 0; i < 8; i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
		if got := readAll(t, rep, ext); !bytes.Equal(got, want[i]) {
			t.Fatalf("replica extent %d differs from primary", i)
		}
	}
}

func TestLaggedReplicaIsPrefix(t *testing.T) {
	primary := objstore.NewMem()
	inner := objstore.NewMem()
	secondary := &limitStore{Store: inner}
	secondary.allowed.Store(1 << 30)
	bs, err := blockstore.Create(ctx, blockstore.Config{
		Volume: "vol", Store: primary, VolSectors: 1 << 20,
		BatchBytes: 64 * 1024, CheckpointEvery: 4, Replicated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := Start(ctx, Config{Backend: bs, Replica: secondary})
	// Bootstrap: let the replica fully catch up (super included), then
	// the backend "goes down" and the primary keeps writing.
	for i := 0; i < 10; i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
		if err := bs.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes()))); err != nil {
			t.Fatal(err)
		}
		if err := bs.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, sh, inner)
	secondary.allowed.Store(3)
	for i := 10; i < 30; i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
		if err := bs.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes()))); err != nil {
			t.Fatal(err)
		}
		if err := bs.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	sh.Abort() // crash while lagged
	if lag := sh.Stats().LagObjects; lag == 0 {
		t.Fatal("expected a lagged shipper")
	}

	// The lagged replica must still open (older consistent state).
	rep, err := blockstore.Open(ctx, blockstore.Config{Volume: "vol", Store: inner})
	if err != nil {
		t.Fatalf("lagged replica mount: %v", err)
	}
	durable := rep.DurableWriteSeq()
	if durable == 0 || durable >= 30 {
		t.Fatalf("replica watermark %d", durable)
	}
	// Every extent it reports must match the primary's history: the
	// replica is behind, never wrong.
	for i := 0; i < int(durable); i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
		if got := readAll(t, rep, ext); !bytes.Equal(got, payload(int64(i), int(ext.Bytes()))) {
			t.Fatalf("replica extent %d wrong (watermark %d)", i, durable)
		}
	}
}

func TestReattachIsIncremental(t *testing.T) {
	primary := objstore.NewMem()
	secondary := objstore.NewMem()
	cfg := blockstore.Config{
		Volume: "vol", Store: primary, VolSectors: 1 << 20,
		BatchBytes: 64 * 1024, Replicated: true,
	}
	bs, err := blockstore.Create(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := Start(ctx, Config{Backend: bs, Replica: secondary})
	for i := 0; i < 5; i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
		if err := bs.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes()))); err != nil {
			t.Fatal(err)
		}
		if err := bs.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	sh.Close()
	first := sh.Stats()
	if first.CopiedObjects == 0 {
		t.Fatal("first session copied nothing")
	}

	// "Restart": reopen the volume and attach a fresh shipper. The
	// backlog probe must find everything already present and copy
	// nothing.
	bs2, err := blockstore.Open(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh2 := Start(ctx, Config{Backend: bs2, Replica: secondary})
	sh2.Close()
	second := sh2.Stats()
	if second.CopiedObjects != 0 {
		t.Fatalf("re-attach recopied %d objects", second.CopiedObjects)
	}
	if second.SkippedPresent == 0 {
		t.Fatal("re-attach probed nothing")
	}
	if second.LagObjects != 0 {
		t.Fatalf("re-attach left lag %d", second.LagObjects)
	}
}

// TestReattachRecopiesTornObject models a shipper killed between a
// torn PUT (the objstore fault model leaves prefix-torn objects) and
// its retry: the replica holds a partial object. The re-attach probe
// must not trust presence alone — the size mismatch has to force a
// re-copy, or the torn object would be acked into the replica's
// committed prefix and restore-from-replica would read garbage.
func TestReattachRecopiesTornObject(t *testing.T) {
	primary := objstore.NewMem()
	secondary := objstore.NewMem()
	cfg := blockstore.Config{
		Volume: "vol", Store: primary, VolSectors: 1 << 20,
		BatchBytes: 64 * 1024, Replicated: true,
	}
	bs, err := blockstore.Create(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := Start(ctx, Config{Backend: bs, Replica: secondary})
	for i := 0; i < 5; i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
		if err := bs.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes()))); err != nil {
			t.Fatal(err)
		}
		if err := bs.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	sh.Close()

	// Tear one shipped object: keep only a prefix, as a torn PUT would.
	torn := blockstore.ObjName("vol", 2)
	full, err := secondary.Get(ctx, torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := secondary.Put(ctx, torn, full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}

	bs2, err := blockstore.Open(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh2 := Start(ctx, Config{Backend: bs2, Replica: secondary})
	sh2.Close()
	st := sh2.Stats()
	if st.CopiedObjects != 1 {
		t.Fatalf("probe re-copied %d objects, want exactly the torn one", st.CopiedObjects)
	}
	if st.LagObjects != 0 {
		t.Fatalf("re-attach left lag %d", st.LagObjects)
	}
	if got, err := secondary.Get(ctx, torn); err != nil || !bytes.Equal(got, full) {
		t.Fatalf("torn object not restored to full content (err %v)", err)
	}
}

// TestBackoffClamped: attempt grows without bound during an outage;
// the shift must clamp rather than overflow into a negative or zero
// duration (which would turn the retry loop into a busy-spin).
func TestBackoffClamped(t *testing.T) {
	prev := time.Duration(0)
	for attempt := 1; attempt <= 200; attempt++ {
		d := backoff(attempt)
		if d <= 0 || d > 100*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, outside (0, 100ms]", attempt, d)
		}
		if d < prev {
			t.Fatalf("backoff(%d) = %v shrank below backoff(%d) = %v", attempt, d, attempt-1, prev)
		}
		prev = d
	}
}

// TestWatermarkOutOfOrderAcks drives the feed API directly: the
// watermark is the contiguously-shipped prefix, so acking a later
// object before an earlier one must not advance it past the gap.
func TestWatermarkOutOfOrderAcks(t *testing.T) {
	primary := objstore.NewMem()
	bs, err := blockstore.Create(ctx, blockstore.Config{
		Volume: "vol", Store: primary, VolSectors: 1 << 20,
		BatchBytes: 64 * 1024, Replicated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 8}
		if err := bs.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes()))); err != nil {
			t.Fatal(err)
		}
		if err := bs.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	backlog := bs.ShipAttach()
	var numbered []blockstore.ShipEvent
	for _, ev := range backlog {
		if !ev.IsSuper() {
			numbered = append(numbered, ev)
		}
	}
	if len(numbered) < 3 {
		t.Fatalf("backlog has %d numbered events", len(numbered))
	}
	// Ack everything EXCEPT the first: the gap pins the watermark at 0.
	for _, ev := range numbered[1:] {
		bs.ShipAck(ev)
		if got := bs.ShippedSeq(); got >= numbered[1].Seq {
			t.Fatalf("watermark %d advanced past unshipped seq %d", got, numbered[0].Seq)
		}
	}
	bs.ShipAck(numbered[0])
	if got, want := bs.ShippedSeq(), numbered[len(numbered)-1].Seq; got != want {
		t.Fatalf("watermark %d after all acks, want %d", got, want)
	}
	if lag, _ := bs.ShipLag(); lag != 0 {
		t.Fatalf("lag %d after all acks", lag)
	}
}

// TestDeleteSnapshotRespectsShipWatermark is the regression for the
// deferred-deletion path: deleting a snapshot while the shipper is
// lagged (here: not even attached — infinitely lagged) must NOT delete
// the GC victims it was pinning, or the replica's checkpoint would
// dangle. Once the shipper drains, the watermark advance releases
// them.
func TestDeleteSnapshotRespectsShipWatermark(t *testing.T) {
	primary := objstore.NewMem()
	secondary := objstore.NewMem()
	bs, err := blockstore.Create(ctx, blockstore.Config{
		Volume: "vol", Store: primary, VolSectors: 1 << 20,
		BatchBytes: 64 * 1024, CheckpointEvery: 1 << 30, Replicated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := uint64(0)
	write := func(i int, seed int64) {
		t.Helper()
		ws++
		ext := block.Extent{LBA: block.LBA(i * 256), Sectors: 128}
		if err := bs.Append(ws, ext, payload(seed, int(ext.Bytes()))); err != nil {
			t.Fatal(err)
		}
		if err := bs.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		write(i, int64(i))
	}
	if _, err := bs.CreateSnapshot("s"); err != nil {
		t.Fatal(err)
	}
	// Overwrite everything: the pre-snapshot objects become garbage
	// that GC cleans, with deletion deferred behind the snapshot.
	final := map[int]int64{}
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			seed := int64(100 + round*4 + i)
			final[i] = seed
			write(i, seed)
		}
	}
	if err := bs.RunGC(); err != nil {
		t.Fatal(err)
	}
	if err := bs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	deleted := bs.Stats().ObjectsDeleted
	if bs.Stats().DeferredDeletes == 0 {
		t.Fatal("expected snapshot-pinned deferred deletions")
	}

	// Snapshot goes away while the shipper is infinitely lagged: the
	// ship watermark must keep every victim on the primary.
	if err := bs.DeleteSnapshot("s"); err != nil {
		t.Fatal(err)
	}
	st := bs.Stats()
	if st.ObjectsDeleted != deleted {
		t.Fatalf("DeleteSnapshot deleted %d objects under a lagged shipper",
			st.ObjectsDeleted-deleted)
	}
	if st.DeferredDeletes == 0 {
		t.Fatal("victims not re-deferred behind the ship watermark")
	}

	// Drain a shipper: every object (victims included) reaches the
	// replica, the watermark advance releases the deferred deletes.
	sh := Start(ctx, Config{Backend: bs, Replica: secondary})
	sh.Close()
	if got := sh.Stats().SkippedGone; got != 0 {
		t.Fatalf("%d objects vanished before shipping (404 on replica restore)", got)
	}
	st = bs.Stats()
	if st.DeferredDeletes != 0 {
		t.Fatalf("%d deferred deletions survived the drained watermark", st.DeferredDeletes)
	}
	if st.ObjectsDeleted == deleted {
		t.Fatal("watermark advance released no deletions")
	}

	// The replica restores with no 404: every mapped extent readable.
	rep, err := blockstore.Open(ctx, blockstore.Config{Volume: "vol", Store: secondary})
	if err != nil {
		t.Fatalf("replica mount: %v", err)
	}
	for i := 0; i < 4; i++ {
		ext := block.Extent{LBA: block.LBA(i * 256), Sectors: 128}
		if got := readAll(t, rep, ext); !bytes.Equal(got, payload(final[i], int(ext.Bytes()))) {
			t.Fatalf("replica extent %d wrong after snapshot delete + GC", i)
		}
	}
}

func TestShipperRetriesFaults(t *testing.T) {
	primary := objstore.NewMem()
	inner := objstore.NewMem()
	faulty := objstore.NewFaulty(inner)
	faulty.Arm(objstore.FaultConfig{
		Seed: 7, Rates: objstore.UniformRates(0.3), TornWrites: true,
	})
	secondary := objstore.NewRetrier(faulty, objstore.RetryPolicy{})
	bs, err := blockstore.Create(ctx, blockstore.Config{
		Volume: "vol", Store: primary, VolSectors: 1 << 20,
		BatchBytes: 64 * 1024, CheckpointEvery: 4, Replicated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := Start(ctx, Config{Backend: bs, Replica: secondary})
	want := map[int][]byte{}
	ws := uint64(0)
	for round := 0; round < 6; round++ {
		for i := 0; i < 4; i++ {
			ws++
			ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
			d := payload(int64(ws), int(ext.Bytes()))
			want[i] = d
			if err := bs.Append(ws, ext, d); err != nil {
				t.Fatal(err)
			}
		}
		if err := bs.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	faulty.Disarm() // heal before the drain so Close converges
	sh.Close()
	if lag := sh.Stats().LagObjects; lag != 0 {
		t.Fatalf("lag %d after drain", lag)
	}
	rep, err := blockstore.Open(ctx, blockstore.Config{Volume: "vol", Store: inner})
	if err != nil {
		t.Fatalf("replica mount after faults: %v", err)
	}
	for i := 0; i < 4; i++ {
		ext := block.Extent{LBA: block.LBA(i * 512), Sectors: 64}
		if got := readAll(t, rep, ext); !bytes.Equal(got, want[i]) {
			t.Fatalf("replica extent %d differs after faulted shipping", i)
		}
	}
}
