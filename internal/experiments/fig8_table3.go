package experiments

import (
	"context"
	"fmt"
	"time"

	"lsvd/internal/cluster"
	"lsvd/internal/core"
	"lsvd/internal/iomodel"
	"lsvd/internal/workload"
)

var filebenchModels = []workload.FilebenchModel{workload.Fileserver, workload.OLTP, workload.Varmail}

// Fig8 reproduces Figure 8: Filebench throughput, LSVD normalized to
// bcache+RBD. Paper: fileserver 0.8x, oltp 1.25x, varmail 4x.
func Fig8(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Fig 8: Filebench throughput (MB/s, LSVD vs bcache+RBD)",
		Header: []string{"workload", "LSVD", "bcache+RBD", "normalized"},
	}
	for _, m := range filebenchModels {
		l, err := filebenchLSVD(ctx, e, m)
		if err != nil {
			return nil, err
		}
		b, err := filebenchBcache(e, m)
		if err != nil {
			return nil, err
		}
		norm := 0.0
		if b > 0 {
			norm = l / b
		}
		t.Rows = append(t.Rows, []string{m.String(), f1(l), f1(b), f2(norm)})
	}
	return t, nil
}

// Table3 reproduces Table 3: Filebench block-level behaviour on ext4
// (writes and bytes between commit barriers, mean write size).
func Table3(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Table 3: Filebench block-level behavior",
		Header: []string{"workload", "writes/sync", "KiB/sync", "mean write KiB"},
	}
	for _, m := range filebenchModels {
		gen := &workload.Filebench{Model: m, VolBytes: e.volBytes(), TotalBytes: filebenchBudget(e), Seed: e.Seed}
		c, err := workload.Run(nullDisk{size: e.volBytes()}, gen, nil, 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			m.String(), f1(c.WritesBetweenSyncs), f1(c.BytesBetweenSyncs / 1024), f1(c.MeanWriteBytes / 1024),
		})
	}
	return t, nil
}

func filebenchBudget(e Env) int64 {
	b := e.volBytes() / 8
	if b > 256<<20 {
		b = 256 << 20
	}
	return b
}

func filebenchLSVD(ctx context.Context, e Env, m workload.FilebenchModel) (float64, error) {
	st, err := newLSVD(ctx, e, e.bigCache(), cluster.SSDConfig1(), core.Options{})
	if err != nil {
		return 0, err
	}
	if err := precondition(st.disk, e); err != nil {
		return 0, err
	}
	st.cacheDev.Meter.Reset()
	st.store.Reset()
	st.pool.Reset()
	gen := &workload.Filebench{Model: m, VolBytes: e.volBytes(), TotalBytes: filebenchBudget(e), Seed: e.Seed}
	c, err := workload.Run(st.disk, gen, nil, 0)
	if err != nil {
		return 0, err
	}
	ops := c.Writes + c.Reads + c.Flushes
	// Commit barriers serialize: each costs a device flush plus the
	// pipeline drain. For LSVD that is all (§3.2 — the log needs no
	// metadata writes at a barrier).
	barrier := time.Duration(c.Flushes) * (iomodel.NVMeP3700.FlushLatency + iomodel.NVMeP3700.WriteLatency)
	// Filebench models run ~50 threads; use QD 16 for the device.
	el := maxDur(
		time.Duration(ops)*lsvdSoftSerial+barrier,
		iomodel.ElapsedMeter(st.cacheDev.Meter, 16),
		st.pool.MaxBusy(),
		st.store.ModeledTime(8),
	)
	return throughputMBs(c.BytesWritten+c.BytesRead, el), nil
}

func filebenchBcache(e Env, m workload.FilebenchModel) (float64, error) {
	st, err := newBcacheRBD(e, e.bigCache(), cluster.SSDConfig1())
	if err != nil {
		return 0, err
	}
	if err := precondition(st.cache, e); err != nil {
		return 0, err
	}
	st.cacheDev.Meter.Reset()
	st.pool.Reset()
	gen := &workload.Filebench{Model: m, VolBytes: e.volBytes(), TotalBytes: filebenchBudget(e), Seed: e.Seed}
	c, err := workload.Run(st.cache, gen, nil, 0)
	if err != nil {
		return 0, err
	}
	ops := c.Writes + c.Reads + c.Flushes
	// bcache must persist every dirtied B-tree node at each barrier,
	// serially, before acknowledging the flush (§4.2.2) — the extra
	// metadata I/O behind LSVD's 4x varmail win.
	stc := st.cache.Stats()
	steady := stc.Writes / 16 // steady-state journal writes (non-barrier)
	barrierMeta := stc.MetadataWrites - steady
	barrier := time.Duration(c.Flushes)*(iomodel.NVMeP3700.FlushLatency+iomodel.NVMeP3700.WriteLatency) +
		time.Duration(barrierMeta)*iomodel.NVMeP3700.WriteLatency
	w, r := st.backing.Ops()
	el := maxDur(
		time.Duration(ops)*bcacheSoftSerial+barrier,
		iomodel.ElapsedMeter(st.cacheDev.Meter, 16),
		st.pool.MaxBusy(),
		time.Duration(w+r)*rbdNetRTT/16,
	)
	return throughputMBs(c.BytesWritten+c.BytesRead, el), nil
}

// nullDisk absorbs a workload for pure stream-statistics measurements
// (Table 3 characterizes the generator, not a store).
type nullDisk struct{ size int64 }

func (d nullDisk) ReadAt(p []byte, off int64) error  { return check(d.size, p, off) }
func (d nullDisk) WriteAt(p []byte, off int64) error { return check(d.size, p, off) }
func (d nullDisk) Flush() error                      { return nil }
func (d nullDisk) Trim(off, n int64) error           { return nil }
func (d nullDisk) Size() int64                       { return d.size }

func check(size int64, p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > size {
		return fmt.Errorf("experiments: I/O outside null disk")
	}
	return nil
}
