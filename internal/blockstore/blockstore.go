// Package blockstore implements LSVD's log-structured block store
// (paper §3.1, Fig 3/4): client writes are batched, coalesced within
// the batch, and stored as an ordered stream of immutable numbered
// objects on an S3-like store. An in-memory extent map locates the
// current copy of every virtual-disk block; object headers carry the
// extent lists needed to rebuild the map; periodic checkpoint objects
// bound recovery replay (§3.3); greedy garbage collection reclaims
// overwritten space (§3.5); and the object stream naturally supports
// snapshots and clones (§3.6) and asynchronous replication (§4.8).
package blockstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/iosched"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
)

// trimMarker distinguishes trim extents in object headers.
const trimMarker = ^uint64(0)

// ErrReadOnly is returned for mutations on snapshot mounts.
var ErrReadOnly = errors.New("blockstore: volume is read-only")

// Config configures a block store volume.
type Config struct {
	// Volume is the object name prefix; objects are named
	// "<volume>.<8-digit-seq>" so lexical order is log order.
	Volume string
	// Store is the backend.
	Store objstore.Store //lsvd:classifies-errors
	// VolSectors is the virtual disk size in sectors (Create only).
	VolSectors block.LBA
	// BatchBytes is the write batch / object payload target (paper:
	// 8 or 32 MiB). Default 8 MiB.
	BatchBytes int64
	// GCLowWater triggers collection when live/total falls below it;
	// GCHighWater stops collection. Paper: 0.70 / 0.75. GCLowWater 0
	// disables automatic GC.
	GCLowWater, GCHighWater float64
	// CheckpointEvery writes a map checkpoint after this many sealed
	// objects. Default 32.
	CheckpointEvery int
	// DefragHoleSectors plugs vLBA holes up to this size during GC by
	// copying extra data, reducing map fragmentation (§4.6). 0 = off.
	DefragHoleSectors uint32
	// GCService runs garbage collection as a long-running paced
	// background goroutine instead of inline commit-triggered passes:
	// victims are picked by a garbage×age cost model, copy I/O is paced
	// against the GCWAFTarget token bucket, and backend reads/writes go
	// through UploadGate as a background borrower with no guaranteed
	// share. RunGC still forces an immediate unpaced pass. The service
	// starts only when GCLowWater > 0 and the store is writable.
	GCService bool
	// GCWAFTarget bounds the paced service's write amplification:
	// total backend payload volume (foreground + GC copies) is held at
	// or below GCWAFTarget × foreground volume, enforced by a token
	// bucket refilled as foreground commits land (an idle trickle keeps
	// quiet volumes converging to the watermark). Default 2.0; < 0
	// disables pacing (the service copies as fast as it can).
	GCWAFTarget float64
	// GCBackoff, when set, is polled by the paced service between copy
	// batches; while it returns true (foreground destage under
	// pressure) the service defers copying even with budget available.
	// It is invoked with the store lock held and must not call back
	// into the Store.
	GCBackoff func() bool
	// NoCoalesce disables intra-batch write coalescing (Table 5's
	// "no merge" mode).
	NoCoalesce bool
	// FetchFromCache, when set, lets the GC read live data from the
	// local cache instead of the backend (§3.5). It returns true if it
	// filled buf for ext. It is invoked with the store lock held and
	// must not call back into the Store.
	FetchFromCache func(ext block.Extent, buf []byte) bool
	// OnDestage is called when client writes up to writeSeq become
	// durable in the backend. It runs WITHOUT the store lock, possibly
	// concurrently and with non-monotonic watermarks when several
	// commits race; callees must treat writeSeq as a high-water mark
	// (keep the max), which writecache.SetDestaged does.
	OnDestage func(writeSeq uint64)
	// UploadDepth > 0 enables the asynchronous upload pipeline: sealed
	// objects are PUT by up to UploadDepth concurrent uploads while the
	// next batch fills; map/watermark commit stays strictly in sequence
	// order. 0 keeps the legacy synchronous seal (build + PUT inline).
	UploadDepth int
	// Retry is the backend retry policy. setDefaults wraps Store in an
	// objstore.Retrier with it, so every backend operation — reads, GC
	// fetches, recovery, uploads — retries transient failures under one
	// policy; the upload pipeline's per-fence resubmission budget is
	// Retry.Attempts() as well. MaxAttempts < 0 disables wrapping.
	Retry objstore.RetryPolicy
	// FetchDepth bounds the number of concurrent backend range GETs the
	// read-miss fetch path (FetchSpan) keeps in flight across all
	// readers. 0 leaves the pool unbounded; 1 serializes miss fetches.
	FetchDepth int
	// OpenFanout bounds the concurrent backend reads recovery issues
	// while prefetching the replay suffix's headers (and the concurrent
	// deletes for stranded objects). Replay APPLY order stays strictly
	// sequential regardless — only the metadata round-trips overlap.
	// Default 8; 1 recovers serially.
	OpenFanout int

	// UploadGate, when non-nil, replaces the store-private upload
	// concurrency bound with a shared iosched.Gate: a multi-volume host
	// imposes ONE global PUT budget while the gate guarantees each
	// registered volume a minimum share of it, so a hot neighbor cannot
	// starve this volume's destage. UploadID names this store to the
	// gate (the host registers/unregisters it around the volume's
	// lifetime). UploadDepth still gates whether the async pipeline
	// runs at all and sizes per-store derived limits (upload
	// maxInflight = 2*UploadDepth).
	UploadGate *iosched.Gate
	UploadID   string

	// FetchSem, when non-nil, replaces the store-private fetch
	// semaphore with a shared one: one global budget of concurrent
	// miss-path range GETs across every volume on the backend session.
	// Capacity is the channel's; FetchDepth still gates whether the
	// bound applies at all.
	FetchSem chan struct{}

	// Replicated marks the volume as having an asynchronous replica: a
	// shipper (internal/replica) attaches via ShipAttach and drains the
	// commit feed (ship.go). The flag also arms the shipped-watermark
	// pin in completeDelete, so deferred deletions wait for the replica
	// even across sessions where the shipper has not attached yet.
	Replicated bool
}

func (c *Config) setDefaults() {
	if c.BatchBytes == 0 {
		c.BatchBytes = 8 * block.MiB
	}
	if c.GCLowWater > 0 && c.GCHighWater < c.GCLowWater {
		c.GCHighWater = c.GCLowWater + 0.05
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 32
	}
	if c.GCWAFTarget == 0 {
		c.GCWAFTarget = 2.0
	}
	if c.OpenFanout == 0 {
		c.OpenFanout = 8
	}
	if c.Retry.MaxAttempts >= 0 && c.Store != nil {
		if _, ok := c.Store.(*objstore.Retrier); !ok {
			c.Store = objstore.NewRetrier(c.Store, c.Retry)
		}
	}
}

// objInfo tracks one backend object.
type objInfo struct {
	seq         uint32
	typ         journal.Type
	totalBytes  int64
	hdrSectors  uint32
	dataSectors uint32
	liveSectors uint32
	writeSeq    uint64
}

// snapshot is a named pointer into the object stream.
type snapshot struct {
	Name string
	Seq  uint32
}

// deferredDelete records a cleaned object whose deletion awaits
// snapshot removal: Obj may be deleted once no snapshot falls in
// (Obj, GCSeq).
type deferredDelete struct {
	Obj   uint32
	GCSeq uint32
}

// Stats reports block store activity.
type Stats struct {
	Objects         int
	NextSeq         uint32
	LiveSectors     uint64
	DataSectors     uint64
	MapExtents      int
	BytesAppended   uint64 // client bytes in
	BytesPut        uint64 // object payload bytes out (incl. GC)
	BytesCoalesced  uint64 // client bytes eliminated by batch merge
	GCBytesCopied   uint64
	GCRuns          uint64
	GCVictims       uint64  // objects whose live data the GC relocated
	GCPaceWaits     uint64  // paced copy batches that waited for WAF budget
	GCBackoffs      uint64  // paced copy batches deferred to destage pressure
	GCYields        uint64  // paced passes cut short by a waiting fence
	GCBudgetBytes   int64   // current WAF token-bucket level
	GCWAFTarget     float64 // configured write-amplification budget
	ObjectsDeleted  uint64
	Checkpoints     uint64
	DurableWriteSeq uint64
	PendingBatch    int64 // batched + in-flight client bytes not yet committed
	InflightObjects int   // sealed objects whose upload/commit is pending
	UploadRetries   uint64
	SealStalls      uint64 // seals that blocked on a full upload pipeline
	UploadGrants    uint64 // upload slots granted within this volume's gate share
	UploadBorrows   uint64 // upload slots borrowed beyond the share (idle capacity)
	UploadWaits     uint64 // upload slot acquisitions that blocked on the gate
	DeferredDeletes int
	OrphanObjects   int    // stranded objects whose deletion failed, awaiting sweep
	BackendRetries  uint64 // transient backend failures absorbed by the Retrier
	FetchGETs       uint64 // backend range GETs issued by the read-miss fetch path
	FetchesDeduped  uint64 // span fetches served by joining another reader's in-flight GET
	RunsCoalesced   uint64 // extra map runs folded into an existing span GET
	HeaderFetches   uint64 // object header fetches that went to the backend

	// Replication feed state (ship.go); all zero unless Replicated.
	ShippedSeq     uint32 // shipped watermark (contiguously replicated prefix)
	ShipLagObjects int    // committed objects not yet acked by the shipper
	ShipLagBytes   int64  // their payload bytes — the measured RPO in bytes

	// Recovery/open telemetry, fixed at Open time (zero for Create).
	RecoveredObjects int    // objects replayed after the checkpoint at open
	RecoveryGETs     uint64 // backend read ops (Get/GetRange/Size/List) open issued
	OpenNanos        int64  // wall time of the last open/recovery
	// LastCkptStallNanos is the s.mu hold time of the most recent
	// checkpoint snapshot — the only part of a checkpoint foreground
	// writes can ever stall behind.
	LastCkptStallNanos int64
}

// Store is a log-structured block store for one volume.
//
// mu is an RWMutex: mutators and multi-step invariants take the write
// lock exactly as before (commitCond sits on its write side), while
// pure readers — map lookups, name resolution, stats — share the read
// lock so concurrent readers never serialize behind each other or
// behind a backend fetch (no backend I/O happens under mu at all; see
// fetch.go and the GC lock-drop protocol in gc.go).
type Store struct {
	mu  sync.RWMutex //lsvd:lock bs.mu
	cfg Config
	ctx context.Context

	volSectors block.LBA
	m          *extmap.Map
	objects    map[uint32]*objInfo
	nextSeq    uint32
	lastCkpt   uint32

	baseVol string
	baseSeq uint32

	readOnly bool

	snapshots []snapshot
	deferred  []deferredDelete
	pending   []deferredDelete // cleaned, waiting for next checkpoint
	cleaned   map[uint32]bool  // cleaned objects awaiting deletion

	// Running utilization counters over own, non-cleaned data/GC
	// objects, so the per-seal GC trigger is O(1).
	utilLive, utilData uint64

	batch *batch

	// Asynchronous upload pipeline state (Config.UploadDepth > 0):
	// sealed objects awaiting build/upload/commit in sequence order,
	// with a gate bounding concurrent build+PUTs and a condition
	// variable (on mu) signalled at every upload completion.
	inflight      []*inflightObj
	inflightBytes int64
	gate          *iosched.Gate
	gateID        string
	commitCond    *sync.Cond
	aborting      bool
	gcBusy        bool  // a GC pass (service, commit-triggered, or RunGC) holds the single slot
	asyncErr      error // sticky commit-side (GC) failure, surfaced at the next fence

	// Background GC service state (Config.GCService): the service
	// goroutine sleeps on gcCond (same mutex as commitCond) and is
	// woken by foreground commits (budget refills / utilization drops),
	// idle-trickle timers, StopGC and Abort. fenceWaiters counts
	// waiters in waitInflightLocked/gcLocked/Abort so a paced pass
	// yields the gcBusy slot promptly instead of stalling a fence on a
	// budget wait.
	gcCond       *sync.Cond
	gcStop       bool
	gcDone       chan struct{} // non-nil while the service goroutine runs
	gcBudget     int64         // WAF token bucket, payload bytes the GC may copy
	gcRefills    uint64        // refill epoch, for idle-grant detection
	fenceWaiters int
	gcGateID     string // borrower-only gate identity for GC backend I/O

	// orphans are stranded objects recovery could not delete; they are
	// swept before every subsequent object PUT so a stale object can
	// never become replayable again (see sweepOrphansLocked).
	orphans map[uint32]bool

	durableWriteSeq uint64
	sinceCkpt       int

	// Checkpoint machinery (checkpoint.go). ckptQueued: a checkpoint
	// marker sits in the upload pipeline. ckptActive: a synchronous
	// checkpoint has dropped s.mu for its PUTs; sequence reservations
	// (seals, GC objects) wait on commitCond until it clears. ckptBuf
	// is the payload encode buffer reused across checkpoints.
	ckptQueued bool
	ckptActive bool
	ckptBuf    []byte

	hdrCache map[uint32]*hdrEntry

	// Header fetch singleflight (read.go): concurrent misses on the
	// same object's header share one backend fetch, issued without mu.
	hdrMu      sync.Mutex //lsvd:lock bs.hdrMu
	hdrFlights map[uint32]*hdrFlight

	// Read-miss fetch machinery (fetch.go): in-flight/retained window
	// table and the bounded fetcher pool.
	fetchMu  sync.Mutex //lsvd:lock bs.fetchMu
	flights  map[fetchKey]*flight
	fetchSem chan struct{} // nil when FetchDepth == 0 (unbounded)

	// Replication change feed (ship.go), guarded by mu. shipCond (write
	// side of mu, like commitCond) wakes the shipper when events arrive
	// or the feed closes. shipUnacked is the published-but-unacked seq
	// set; shipMark caches the derived watermark (min(unacked)-1, or
	// shipMaxPub when the set is empty).
	shipCond     *sync.Cond
	shipFeed     []ShipEvent
	shipAttached bool
	shipClosed   bool
	shipMaxPub   uint32
	shipUnacked  map[uint32]struct{}
	shipMark     uint32
	shipLagBytes int64

	stats struct {
		bytesAppended, bytesPut, bytesCoalesced uint64
		gcBytesCopied, gcRuns, objectsDeleted   uint64
		checkpoints, uploadRetries, sealStalls  uint64
		gcVictims, gcPaceWaits, gcBackoffs      uint64
		gcYields                                uint64
		recoveredObjects                        int
		recoveryGETs                            uint64
		openNanos                               int64
		lastCkptStallNanos                      int64
	}

	// Read-path counters are atomics: the fetch path never holds mu.
	fetchStats struct {
		gets, deduped, coalesced, headerFetches atomic.Uint64
	}
}

type hdrEntry struct {
	extents    []journal.ExtentEntry
	hdrSectors uint32
}

func objName(vol string, seq uint32) string { return fmt.Sprintf("%s.%08d", vol, seq) }

func superName(vol string) string { return vol + ".super" }

// name returns the object name for seq, resolving clone-base objects
// to the base volume's prefix (§3.6).
func (s *Store) name(seq uint32) string {
	if s.baseVol != "" && seq <= s.baseSeq {
		return objName(s.baseVol, seq)
	}
	return objName(s.cfg.Volume, seq)
}

// parseSeq extracts the sequence number from an object name with the
// given volume prefix; ok is false for non-sequence names (super etc).
func parseSeq(vol, name string) (uint32, bool) {
	suffix, found := strings.CutPrefix(name, vol+".")
	if !found || len(suffix) != 8 {
		return 0, false
	}
	n, err := strconv.ParseUint(suffix, 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(n), true
}

// Create initializes a new empty volume: a superblock and an initial
// checkpoint object.
func Create(ctx context.Context, cfg Config) (*Store, error) {
	cfg.setDefaults()
	if cfg.VolSectors == 0 {
		return nil, fmt.Errorf("blockstore: zero volume size")
	}
	if _, err := cfg.Store.Get(ctx, superName(cfg.Volume)); err == nil {
		return nil, fmt.Errorf("blockstore: volume %q already exists", cfg.Volume)
	}
	s := newStore(ctx, cfg)
	s.volSectors = cfg.VolSectors
	s.nextSeq = 1
	// checkpointLocked drops and retakes s.mu around its PUTs, so even
	// this single-threaded caller must hold it.
	s.mu.Lock()
	err := s.checkpointLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.startGCService()
	return s, nil
}

func newStore(ctx context.Context, cfg Config) *Store {
	s := &Store{
		cfg:        cfg,
		ctx:        ctx,
		m:          extmap.New(),
		objects:    make(map[uint32]*objInfo),
		hdrCache:   make(map[uint32]*hdrEntry),
		hdrFlights: make(map[uint32]*hdrFlight),
		flights:    make(map[fetchKey]*flight),
		cleaned:    make(map[uint32]bool),
		orphans:    make(map[uint32]bool),
	}
	s.batch = newBatch(cfg.BatchBytes, cfg.NoCoalesce)
	s.commitCond = sync.NewCond(&s.mu)
	s.gcCond = sync.NewCond(&s.mu)
	s.shipCond = sync.NewCond(&s.mu)
	s.shipUnacked = make(map[uint32]struct{})
	s.gcGateID = cfg.UploadID + "#gc"
	if cfg.UploadDepth > 0 {
		if cfg.UploadGate != nil {
			s.gate, s.gateID = cfg.UploadGate, cfg.UploadID
		} else {
			s.gate = iosched.NewGate(cfg.UploadDepth)
			s.gate.Register(s.gateID) // sole user: full capacity is its share
		}
	}
	if cfg.FetchSem != nil {
		s.fetchSem = cfg.FetchSem
	} else if cfg.FetchDepth > 0 {
		s.fetchSem = make(chan struct{}, cfg.FetchDepth)
	}
	return s
}

// VolSectors returns the virtual disk size in sectors.
func (s *Store) VolSectors() block.LBA { return s.volSectors }

// DurableWriteSeq returns the newest client write sequence durable in
// the backend (the destage watermark).
func (s *Store) DurableWriteSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.durableWriteSeq
}

// Utilization returns live/total over the volume's own data objects;
// 1.0 when empty.
func (s *Store) Utilization() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.utilizationLocked()
}

// utilizationLocked is live/total over the volume's own data objects,
// excluding objects the GC has already cleaned (their deletion is
// merely deferred; counting them would make collection look futile and
// trigger runaway over-collection). The running counters cover EVERY
// own data/GC object — cleaned ones included — and the exclusion is
// computed here by walking the (checkpoint-bounded) cleaned set. A
// cleaned object therefore leaves the pool exactly when its delete
// retires, never earlier: an aborted pass, a crash before the delete,
// or a snapshot pin cannot strand the counters out of sync with the
// object table (the drift class the old subtract-at-clean-time scheme
// allowed).
//
//lsvd:requires bs.mu
func (s *Store) utilizationLocked() float64 {
	live, data := s.utilLive, s.utilData
	for seq := range s.cleaned {
		o := s.objects[seq]
		if o == nil || o.seq <= s.baseSeq ||
			(o.typ != journal.TypeData && o.typ != journal.TypeGC) {
			continue
		}
		live -= uint64(o.liveSectors)
		data -= uint64(o.dataSectors)
	}
	if data == 0 {
		return 1.0
	}
	return float64(live) / float64(data)
}

// utilCounted reports whether o participates in the utilization
// counters (own data/GC object, cleaned or not — cleaned objects are
// excluded on the fly by utilizationLocked and leave the counters at
// delete retirement).
func (s *Store) utilCounted(o *objInfo) bool {
	return o != nil && o.seq > s.baseSeq &&
		(o.typ == journal.TypeData || o.typ == journal.TypeGC)
}

// AuditUtilization recomputes the utilization counters from the object
// table and fails if they disagree with the running values, or if a
// cleaned object is awaiting deletion without a pending/deferred entry
// to retire it. Tests call it after abort/crash/recovery interleavings
// to prove the accounting cannot drift.
func (s *Store) AuditUtilization() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var live, data uint64
	for _, o := range s.objects {
		if s.utilCounted(o) {
			live += uint64(o.liveSectors)
			data += uint64(o.dataSectors)
		}
	}
	if live != s.utilLive || data != s.utilData {
		return fmt.Errorf("blockstore: utilization counters drifted: have live/data %d/%d, objects sum to %d/%d",
			s.utilLive, s.utilData, live, data)
	}
	retiring := make(map[uint32]bool, len(s.deferred)+len(s.pending))
	for _, d := range s.deferred {
		retiring[d.Obj] = true
	}
	for _, d := range s.pending {
		retiring[d.Obj] = true
	}
	for seq := range s.cleaned {
		if s.objects[seq] != nil && !retiring[seq] {
			return fmt.Errorf("blockstore: cleaned object %d has no pending/deferred delete", seq)
		}
	}
	return nil
}

// recomputeUtilLocked rebuilds the running counters from the table.
//
//lsvd:requires bs.mu
func (s *Store) recomputeUtilLocked() {
	s.utilLive, s.utilData = 0, 0
	for _, o := range s.objects {
		if s.utilCounted(o) {
			s.utilLive += uint64(o.liveSectors)
			s.utilData += uint64(o.dataSectors)
		}
	}
}

// Stats returns a statistics snapshot.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Objects: len(s.objects), NextSeq: s.nextSeq, MapExtents: s.m.Len(),
		BytesAppended: s.stats.bytesAppended, BytesPut: s.stats.bytesPut,
		BytesCoalesced: s.stats.bytesCoalesced, GCBytesCopied: s.stats.gcBytesCopied,
		GCRuns: s.stats.gcRuns, GCVictims: s.stats.gcVictims,
		GCPaceWaits: s.stats.gcPaceWaits, GCBackoffs: s.stats.gcBackoffs,
		GCYields: s.stats.gcYields, GCBudgetBytes: s.gcBudget,
		GCWAFTarget: s.cfg.GCWAFTarget, ObjectsDeleted: s.stats.objectsDeleted,
		Checkpoints: s.stats.checkpoints, DurableWriteSeq: s.durableWriteSeq,
		PendingBatch:    s.batch.fill + s.inflightBytes,
		InflightObjects: len(s.inflight), UploadRetries: s.stats.uploadRetries,
		SealStalls:      s.stats.sealStalls,
		DeferredDeletes: len(s.deferred) + len(s.pending),
		OrphanObjects:   len(s.orphans),
		ShippedSeq:      s.shipMark,
		ShipLagObjects:  len(s.shipUnacked),
		ShipLagBytes:    s.shipLagBytes,
		FetchGETs:       s.fetchStats.gets.Load(),
		FetchesDeduped:  s.fetchStats.deduped.Load(),
		RunsCoalesced:   s.fetchStats.coalesced.Load(),
		HeaderFetches:   s.fetchStats.headerFetches.Load(),

		RecoveredObjects:   s.stats.recoveredObjects,
		RecoveryGETs:       s.stats.recoveryGETs,
		OpenNanos:          s.stats.openNanos,
		LastCkptStallNanos: s.stats.lastCkptStallNanos,
	}
	if s.gate != nil {
		gs := s.gate.Stats(s.gateID)
		st.UploadGrants, st.UploadBorrows, st.UploadWaits = gs.Grants, gs.Borrows, gs.Waits
	}
	// The store chain may nest a namespace wrapper (host volumes are
	// Retrier(Prefixed(raw)) or Prefixed(Retrier(raw))): walk it to
	// find the Retrier.
	for inner := s.cfg.Store; inner != nil; {
		switch v := inner.(type) {
		case *objstore.Retrier:
			st.BackendRetries = v.Retries()
			inner = nil
		case *objstore.Prefixed:
			inner = v.Inner()
		default:
			inner = nil
		}
	}
	for _, o := range s.objects {
		if o.typ == journal.TypeData || o.typ == journal.TypeGC {
			st.LiveSectors += uint64(o.liveSectors)
			st.DataSectors += uint64(o.dataSectors)
		}
	}
	return st
}

// applyDisplaced decrements live counters for displaced map runs.
func (s *Store) applyDisplaced(displaced []extmap.Run) {
	for _, r := range displaced {
		o := s.objects[r.Target.Obj]
		if o == nil {
			continue
		}
		dec := r.Sectors
		if o.liveSectors < dec {
			dec = o.liveSectors
		}
		o.liveSectors -= dec
		if s.utilCounted(o) {
			s.utilLive -= uint64(dec)
		}
	}
}

// --- superblock ---

type superblock struct {
	volSectors block.LBA
	lastCkpt   uint32
	baseVol    string
	baseSeq    uint32
	snapshots  []snapshot
}

func encodeSuper(sb *superblock) ([]byte, error) {
	var w binWriter
	w.u64(uint64(sb.volSectors))
	w.u32(sb.lastCkpt)
	w.str(sb.baseVol)
	w.u32(sb.baseSeq)
	w.u32(uint32(len(sb.snapshots)))
	for _, sn := range sb.snapshots {
		w.str(sn.Name)
		w.u32(sn.Seq)
	}
	h := &journal.Header{Type: journal.TypeSuper, DataLen: uint64(len(w.buf))}
	return journal.Encode(h, w.buf, false)
}

func decodeSuper(raw []byte) (*superblock, error) {
	h, data, _, err := journal.Decode(raw, false)
	if err != nil {
		return nil, err
	}
	if h.Type != journal.TypeSuper {
		return nil, fmt.Errorf("blockstore: superblock object holds %v record", h.Type)
	}
	r := binReader{buf: data}
	sb := &superblock{}
	sb.volSectors = block.LBA(r.u64())
	sb.lastCkpt = r.u32()
	sb.baseVol = r.str()
	sb.baseSeq = r.u32()
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		name := r.str()
		seq := r.u32()
		sb.snapshots = append(sb.snapshots, snapshot{Name: name, Seq: seq})
	}
	if r.err != nil {
		return nil, fmt.Errorf("blockstore: corrupt superblock: %w", r.err)
	}
	return sb, nil
}

// SuperInfo is the decoded, tool-facing view of a volume superblock.
type SuperInfo struct {
	VolSectors     block.LBA
	LastCheckpoint uint32
	BaseVolume     string
	BaseSeq        uint32
	Snapshots      []SnapshotInfo
}

// DecodeSuperInfo parses a raw superblock object (for replication and
// admin tooling).
func DecodeSuperInfo(raw []byte) (*SuperInfo, error) {
	sb, err := decodeSuper(raw)
	if err != nil {
		return nil, err
	}
	info := &SuperInfo{
		VolSectors: sb.volSectors, LastCheckpoint: sb.lastCkpt,
		BaseVolume: sb.baseVol, BaseSeq: sb.baseSeq,
	}
	for _, sn := range sb.snapshots {
		info.Snapshots = append(info.Snapshots, SnapshotInfo{Name: sn.Name, Seq: sn.Seq})
	}
	return info, nil
}

func (s *Store) writeSuper() error {
	raw, err := encodeSuper(&superblock{
		volSectors: s.volSectors, lastCkpt: s.lastCkpt,
		baseVol: s.baseVol, baseSeq: s.baseSeq, snapshots: s.snapshots,
	})
	if err != nil {
		return err
	}
	//lsvd:ignore super rewrite is rare control-plane I/O and must be atomic with the in-memory pointers under mu
	return s.cfg.Store.Put(s.ctx, superName(s.cfg.Volume), raw)
}

// --- small binary codec helpers ---

type binWriter struct{ buf []byte }

func (w *binWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *binWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *binWriter) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.buf = append(w.buf, p...)
}

func (w *binWriter) str(s string) { w.bytes([]byte(s)) }

type binReader struct {
	buf []byte
	err error
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("truncated at %d (need %d)", len(r.buf), n)
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *binReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *binReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *binReader) bytes() []byte { return r.take(int(r.u32())) }

func (r *binReader) str() string { return string(r.bytes()) }

// sortedSeqs returns the volume's own object sequence numbers present
// in names, ascending.
func sortedSeqs(vol string, names []string) []uint32 {
	var out []uint32
	for _, n := range names {
		if seq, ok := parseSeq(vol, n); ok {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
