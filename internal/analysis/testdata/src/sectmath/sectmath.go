// Package sectmath is the golden self-test for the sectmath analyzer:
// S1 flags narrow/platform-dependent conversions scaled by sector
// constants, S2 flags signed conversions of 64-bit unsigned values
// used in arithmetic, allocation sizes, and index/slice bounds. The
// clean functions pin the sanctioned bound-check-then-convert idiom.
package sectmath

const sectorSize = 512

func s1PlatformInt(sectors uint32) int {
	return int(sectors) * 512 // want "int(uint32) * 512 in sector scaling"
}

func s1NamedConst(sectors uint32) int {
	return int(sectors) * sectorSize // want "int(uint32) * 512 in sector scaling"
}

func s1Truncate(off uint64) uint32 {
	return uint32(off) * 512 // want "uint32(uint64) * 512 in sector scaling"
}

func s1ShiftTruncate(off uint64) int32 {
	return int32(off) << 9 // want "int32(uint64) << 9 in sector scaling"
}

func s2Arithmetic(hdrLen int, dataLen uint64) int {
	return hdrLen + int(dataLen) // want "int(uint64) in arithmetic can go negative"
}

func s2MakeSize(dataLen uint64) []byte {
	return make([]byte, int(dataLen)) // want "int(uint64) in a make() size"
}

func s2Index(buf []byte, at uint64) byte {
	return buf[int(at)] // want "int(uint64) in an index expression"
}

func s2SliceBound(buf []byte, end uint64) []byte {
	return buf[:int64(end)] // want "int64(uint64) in a slice bound"
}

// cleanWidening: widening a 32-bit count to int64 before scaling is
// the sanctioned direction.
func cleanWidening(sectors uint32) int64 {
	return int64(sectors) << 9
}

// cleanBoundCheckThenConvert is the sanctioned hostile-input idiom: a
// bare assignment after the unsigned bound check.
func cleanBoundCheckThenConvert(buf []byte, dataLen uint64) ([]byte, bool) {
	if dataLen > uint64(len(buf)) {
		return nil, false
	}
	n := int(dataLen)
	return buf[:n], true
}

func sanctionedConversion(lba uint64) int64 {
	//lsvd:ignore self-test: bounded by device size at the call site
	return int64(lba) << 9
}
