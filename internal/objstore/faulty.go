package objstore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by Faulty-injected failures. The
// Retrier classifies it as transient.
var ErrInjected = errors.New("objstore: injected fault")

// FaultRates holds an independent failure probability per operation
// type. Zero means that operation never fails probabilistically.
type FaultRates struct {
	Put, Get, GetRange, Delete, List, Size float64
}

// UniformRates returns FaultRates with the same probability p for
// every operation type.
func UniformRates(p float64) FaultRates {
	return FaultRates{Put: p, Get: p, GetRange: p, Delete: p, List: p, Size: p}
}

// FaultConfig describes a seeded probabilistic fault regime for Arm.
type FaultConfig struct {
	// Seed makes the fault sequence deterministic for a fixed sequence
	// of operations.
	Seed int64
	// Rates are per-op failure probabilities.
	Rates FaultRates
	// Latency, when non-zero, delays every operation by a uniformly
	// random duration in [Latency/2, 3*Latency/2).
	Latency time.Duration
	// TornWrites models a PUT whose connection died mid-transfer: an
	// injected Put failure of a NOT-yet-existing object may leave a
	// truncated prefix of the data behind. Overwrites never tear —
	// real object stores replace atomically, so a failed overwrite
	// leaves the previous object (e.g. the superblock) intact.
	TornWrites bool
}

type faultOp int

const (
	opPut faultOp = iota
	opGet
	opGetRange
	opDelete
	opList
	opSize
)

func (r FaultRates) rate(op faultOp) float64 {
	switch op {
	case opPut:
		return r.Put
	case opGet:
		return r.Get
	case opGetRange:
		return r.GetRange
	case opDelete:
		return r.Delete
	case opList:
		return r.List
	case opSize:
		return r.Size
	}
	return 0
}

// Faulty wraps a Store and fails operations on demand: explicitly
// armed per-object failures (FailPuts/FailDeletes), every-Nth-mutation
// failures, and a seeded probabilistic regime with injected latency
// and torn writes (Arm). Used to test retry and recovery paths.
type Faulty struct {
	Inner Store

	mu        sync.Mutex
	cfg       FaultConfig
	rng       *rand.Rand // non-nil while armed
	failEvery int        // fail every Nth mutation (0 = never)
	n         int
	failPuts  map[string]int // per-name put failures left; <0 = forever
	failDels  map[string]int // per-name delete failures left; <0 = forever

	injected atomic.Uint64
	torn     atomic.Uint64
}

// NewFaulty wraps inner with no faults armed.
func NewFaulty(inner Store) *Faulty {
	return &Faulty{
		Inner:    inner,
		failPuts: make(map[string]int),
		failDels: make(map[string]int),
	}
}

// Arm enables the seeded probabilistic fault regime. Explicitly armed
// per-name failures and FailEveryNth keep working alongside it.
func (s *Faulty) Arm(cfg FaultConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg = cfg
	s.rng = rand.New(rand.NewSource(cfg.Seed))
}

// Disarm clears every armed fault: the probabilistic regime, the
// every-Nth counter and all per-name failures.
func (s *Faulty) Disarm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg = FaultConfig{}
	s.rng = nil
	s.failEvery = 0
	s.n = 0
	s.failPuts = make(map[string]int)
	s.failDels = make(map[string]int)
}

// FailEveryNth arms a failure on every nth mutating call (Put/Delete);
// 0 disarms it.
func (s *Faulty) FailEveryNth(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failEvery = n
	s.n = 0
}

// FailPut arms a one-shot failure for a specific object name.
func (s *Faulty) FailPut(name string) { s.FailPuts(name, 1) }

// FailPuts arms the next n Puts of name to fail. n < 0 fails them
// forever; n == 0 heals the name.
func (s *Faulty) FailPuts(name string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n == 0 {
		delete(s.failPuts, name)
		return
	}
	s.failPuts[name] = n
}

// FailDeletes arms the next n Deletes of name to fail. n < 0 fails
// them forever; n == 0 heals the name.
func (s *Faulty) FailDeletes(name string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n == 0 {
		delete(s.failDels, name)
		return
	}
	s.failDels[name] = n
}

// InjectedFaults returns the number of failures injected so far.
func (s *Faulty) InjectedFaults() uint64 { return s.injected.Load() }

// TornPuts returns the number of failed Puts that left a truncated
// object behind.
func (s *Faulty) TornPuts() uint64 { return s.torn.Load() }

// takeArmed consumes one armed failure for name from m if any.
func takeArmed(m map[string]int, name string) bool {
	n, ok := m[name]
	if !ok {
		return false
	}
	if n > 0 {
		if n == 1 {
			delete(m, name)
		} else {
			m[name] = n - 1
		}
	}
	return true
}

// decide rolls the dice for one operation: the latency to inject,
// whether to fail, and — for torn Puts — how many payload bytes to
// leave behind (-1 = none; len(data) models a PUT that completed but
// whose acknowledgement was lost).
func (s *Faulty) decide(op faultOp, name string, putLen int) (delay time.Duration, fail bool, tear int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tear = -1
	if s.rng != nil && s.cfg.Latency > 0 {
		delay = s.cfg.Latency/2 + time.Duration(s.rng.Int63n(int64(s.cfg.Latency)))
	}
	switch op {
	case opPut:
		fail = takeArmed(s.failPuts, name)
	case opDelete:
		fail = takeArmed(s.failDels, name)
	}
	if !fail && s.failEvery > 0 && (op == opPut || op == opDelete) {
		s.n++
		if s.n%s.failEvery == 0 {
			fail = true
		}
	}
	if !fail && s.rng != nil {
		if r := s.cfg.Rates.rate(op); r > 0 && s.rng.Float64() < r {
			fail = true
		}
	}
	if fail {
		s.injected.Add(1)
		if op == opPut && s.cfg.TornWrites && s.rng != nil && putLen > 0 {
			tear = s.rng.Intn(putLen + 1)
		}
	}
	return delay, fail, tear
}

// ctxSleep blocks for d or until ctx is canceled, whichever comes
// first, returning ctx.Err() on cancellation. Injected latency must
// not outlive the caller: a canceled recovery or shutdown path would
// otherwise sleep out the full fault-injection delay.
func ctxSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Put implements Store.
func (s *Faulty) Put(ctx context.Context, name string, data []byte) error {
	delay, fail, tear := s.decide(opPut, name, len(data))
	if err := ctxSleep(ctx, delay); err != nil {
		return err
	}
	if fail {
		if tear >= 0 {
			// Torn PUT: leave a truncated object behind, but never
			// clobber an existing one (atomic-replace backends keep
			// the old object when an overwrite fails).
			if _, err := s.Inner.Size(ctx, name); errors.Is(err, ErrNotFound) {
				if s.Inner.Put(ctx, name, append([]byte(nil), data[:tear]...)) == nil {
					s.torn.Add(1)
				}
			}
		}
		return fmt.Errorf("%w: put %q", ErrInjected, name)
	}
	return s.Inner.Put(ctx, name, data)
}

// PutV implements VectorPutter. Fault decisions (including torn PUTs)
// see the concatenated image, exactly as Put would.
func (s *Faulty) PutV(ctx context.Context, name string, bufs [][]byte) error {
	total := VecLen(bufs)
	delay, fail, tear := s.decide(opPut, name, int(total))
	if err := ctxSleep(ctx, delay); err != nil {
		return err
	}
	if fail {
		if tear >= 0 {
			if _, err := s.Inner.Size(ctx, name); errors.Is(err, ErrNotFound) {
				if s.Inner.Put(ctx, name, VecJoin(bufs)[:tear]) == nil {
					s.torn.Add(1)
				}
			}
		}
		return fmt.Errorf("%w: put %q", ErrInjected, name)
	}
	return PutVec(ctx, s.Inner, name, bufs)
}

// Get implements Store.
func (s *Faulty) Get(ctx context.Context, name string) ([]byte, error) {
	delay, fail, _ := s.decide(opGet, name, 0)
	if err := ctxSleep(ctx, delay); err != nil {
		return nil, err
	}
	if fail {
		return nil, fmt.Errorf("%w: get %q", ErrInjected, name)
	}
	return s.Inner.Get(ctx, name)
}

// GetRange implements Store.
func (s *Faulty) GetRange(ctx context.Context, name string, off, length int64) ([]byte, error) {
	delay, fail, _ := s.decide(opGetRange, name, 0)
	if err := ctxSleep(ctx, delay); err != nil {
		return nil, err
	}
	if fail {
		return nil, fmt.Errorf("%w: getrange %q", ErrInjected, name)
	}
	return s.Inner.GetRange(ctx, name, off, length)
}

// Delete implements Store.
func (s *Faulty) Delete(ctx context.Context, name string) error {
	delay, fail, _ := s.decide(opDelete, name, 0)
	if err := ctxSleep(ctx, delay); err != nil {
		return err
	}
	if fail {
		return fmt.Errorf("%w: delete %q", ErrInjected, name)
	}
	return s.Inner.Delete(ctx, name)
}

// List implements Store.
func (s *Faulty) List(ctx context.Context, prefix string) ([]string, error) {
	delay, fail, _ := s.decide(opList, prefix, 0)
	if err := ctxSleep(ctx, delay); err != nil {
		return nil, err
	}
	if fail {
		return nil, fmt.Errorf("%w: list %q", ErrInjected, prefix)
	}
	return s.Inner.List(ctx, prefix)
}

// Size implements Store.
func (s *Faulty) Size(ctx context.Context, name string) (int64, error) {
	delay, fail, _ := s.decide(opSize, name, 0)
	if err := ctxSleep(ctx, delay); err != nil {
		return 0, err
	}
	if fail {
		return 0, fmt.Errorf("%w: size %q", ErrInjected, name)
	}
	return s.Inner.Size(ctx, name)
}
