// Package core assembles the LSVD virtual disk (paper Fig 1): a
// log-structured write-back cache and a read cache on a local SSD, and
// a log-structured block store on an S3-like backend. It implements the
// three block-device operations — write, read, commit barrier (§3.2) —
// plus discard, and the crash-recovery orchestration of §3.3:
//
//   - Writes are logged to the cache SSD (acknowledged on log write),
//     then handed to a background destage pipeline that batches them
//     into numbered immutable objects and uploads those concurrently.
//   - Reads consult the write cache, then the read cache, then the
//     backend; backend misses prefetch temporally adjacent data into
//     the read cache. Reads run concurrently with each other and with
//     destage.
//   - A commit barrier is one cache-device flush.
//   - On open after a crash, the cache log is rewound to the last
//     backend object and the tail replayed, bringing the backend up to
//     date with every write the cache preserved; if the cache is lost
//     entirely, the recovered volume is a consistent prefix of
//     committed writes (prefix consistency, §3.4).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/invariant"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
	"lsvd/internal/readcache"
	"lsvd/internal/simdev"
	"lsvd/internal/vdisk"
	"lsvd/internal/writecache"
)

// Options configures an LSVD disk.
type Options struct {
	// Volume names the object stream on the backend.
	Volume string
	// Store is the S3-like backend.
	Store objstore.Store
	// CacheDev is the local SSD. It is statically partitioned: the
	// first WriteCacheFrac of it logs writes, the rest is read cache.
	CacheDev simdev.Device
	// VolBytes is the virtual disk size (Create only).
	VolBytes int64

	// WriteCacheFrac is the fraction of the SSD used for the write
	// log. Default 0.2 (§3.1's sizing discussion).
	WriteCacheFrac float64
	// BatchBytes is the backend object batch size (8–32 MiB in the
	// paper). Default 8 MiB.
	BatchBytes int64
	// GCLowWater/GCHighWater are the §3.5 utilization thresholds.
	// Defaults 0.70/0.75; GCLowWater < 0 disables GC.
	GCLowWater, GCHighWater float64
	// PrefetchSectors is the temporal read-ahead window. Default 256
	// sectors (128 KiB); 0 disables prefetch.
	PrefetchSectors uint32
	// ReadCachePolicy selects FIFO (default, as in the prototype) or
	// LRU slab eviction.
	ReadCachePolicy readcache.Policy
	// CheckpointEvery objects between backend map checkpoints.
	CheckpointEvery int
	// WriteCacheCheckpointEvery records between cache map checkpoints.
	WriteCacheCheckpointEvery int
	// ReadbackThroughSSD mimics the kernel/user prototype (§3.7): the
	// destage path re-reads outgoing data from the cache SSD instead
	// of handing it over in memory, adding the SSD round trip the
	// paper measures in Table 6.
	ReadbackThroughSSD bool
	// DisableGCCacheFetch stops the GC from reading live data out of
	// the local write cache (ablation for §3.5's optimization).
	DisableGCCacheFetch bool

	// UploadDepth is the number of concurrent backend object PUTs the
	// destage pipeline keeps in flight. Default 4. Map commit stays
	// strictly in sequence order regardless.
	UploadDepth int
	// FetchDepth is the number of concurrent backend range GETs the
	// read-miss path keeps in flight (the fetcher pool). A single
	// read's misses fan out across it, adjacent misses in the same
	// object coalesce into one range GET, and concurrent readers
	// missing on the same window share a single GET. Default 8; 1
	// serializes all miss fetches (the pre-pipeline behavior, used as
	// the benchmark baseline).
	FetchDepth int
	// DestageQueueDepth is the capacity of the in-memory destage queue
	// between WriteAt and the destager goroutine; a full queue blocks
	// the writer (§3.2 backpressure). Default 256 requests.
	DestageQueueDepth int
	// SyncDestage disables the background pipeline: WriteAt forwards
	// to the block store inline and uploads happen synchronously, as
	// in the original prototype semantics. Used as the baseline in
	// benchmarks and ablations.
	SyncDestage bool
	// Retry is the backend retry policy (see objstore.RetryPolicy):
	// every backend operation retries transient failures with
	// exponential backoff under one per-op attempt budget. The zero
	// value selects the defaults; MaxAttempts < 0 disables retries.
	Retry objstore.RetryPolicy
}

// HostOptions is the host-owned half of Options: the shared hardware
// (cache SSD, backend session) and the global concurrency budgets a
// multi-volume host divides among its tenants. In a single-volume
// deployment these are just the matching Options fields.
type HostOptions struct {
	Store           objstore.Store
	CacheDev        simdev.Device
	WriteCacheFrac  float64
	ReadCachePolicy readcache.Policy
	UploadDepth     int
	FetchDepth      int
	Retry           objstore.RetryPolicy
}

// VolumeOptions is the per-volume half of Options: identity, geometry
// and data-path tuning that each volume chooses independently of its
// neighbors on the host.
type VolumeOptions struct {
	Volume                    string
	VolBytes                  int64
	BatchBytes                int64
	GCLowWater, GCHighWater   float64
	PrefetchSectors           uint32
	CheckpointEvery           int
	WriteCacheCheckpointEvery int
	ReadbackThroughSSD        bool
	DisableGCCacheFetch       bool
	DestageQueueDepth         int
	SyncDestage               bool
}

// Split separates Options into its host-level and volume-level halves.
func (o Options) Split() (HostOptions, VolumeOptions) {
	return HostOptions{
			Store: o.Store, CacheDev: o.CacheDev,
			WriteCacheFrac: o.WriteCacheFrac, ReadCachePolicy: o.ReadCachePolicy,
			UploadDepth: o.UploadDepth, FetchDepth: o.FetchDepth, Retry: o.Retry,
		}, VolumeOptions{
			Volume: o.Volume, VolBytes: o.VolBytes, BatchBytes: o.BatchBytes,
			GCLowWater: o.GCLowWater, GCHighWater: o.GCHighWater,
			PrefetchSectors: o.PrefetchSectors, CheckpointEvery: o.CheckpointEvery,
			WriteCacheCheckpointEvery: o.WriteCacheCheckpointEvery,
			ReadbackThroughSSD:        o.ReadbackThroughSSD,
			DisableGCCacheFetch:       o.DisableGCCacheFetch,
			DestageQueueDepth:         o.DestageQueueDepth, SyncDestage: o.SyncDestage,
		}
}

// Combine reassembles full Options from the two halves (inverse of
// Split).
func Combine(h HostOptions, v VolumeOptions) Options {
	return Options{
		Volume: v.Volume, Store: h.Store, CacheDev: h.CacheDev,
		VolBytes: v.VolBytes, WriteCacheFrac: h.WriteCacheFrac,
		BatchBytes: v.BatchBytes, GCLowWater: v.GCLowWater, GCHighWater: v.GCHighWater,
		PrefetchSectors: v.PrefetchSectors, ReadCachePolicy: h.ReadCachePolicy,
		CheckpointEvery:           v.CheckpointEvery,
		WriteCacheCheckpointEvery: v.WriteCacheCheckpointEvery,
		ReadbackThroughSSD:        v.ReadbackThroughSSD,
		DisableGCCacheFetch:       v.DisableGCCacheFetch,
		UploadDepth:               h.UploadDepth, FetchDepth: h.FetchDepth,
		DestageQueueDepth: v.DestageQueueDepth, SyncDestage: v.SyncDestage,
		Retry: h.Retry,
	}
}

// Resources injects host-owned shared resources into a Disk. When nil
// (the single-volume constructors), the disk owns its CacheDev
// exclusively and builds private pools; when set, Options.CacheDev is
// ignored and the disk runs on the host's carve-outs:
//
//   - WCDev: this volume's write-cache log section of the shared SSD.
//   - ReadCache: this volume's view of the host's shared read-cache
//     arena (fair eviction across volumes happens inside the arena).
//   - UploadSem/FetchSem: the host-wide backend concurrency budgets;
//     every volume's destage PUTs and miss-path GETs draw from these
//     same channels, so Options.UploadDepth/FetchDepth only size the
//     per-volume derived limits.
//   - OnClose: invoked exactly once when the disk shuts down (Close or
//     Kill), so the host can release the volume's slot.
type Resources struct {
	WCDev     simdev.Device
	ReadCache *readcache.Cache
	UploadSem chan struct{}
	FetchSem  chan struct{}
	OnClose   func()
}

func (o *Options) setDefaults() {
	if o.WriteCacheFrac == 0 {
		o.WriteCacheFrac = 0.2
	}
	if o.BatchBytes == 0 {
		o.BatchBytes = 8 * block.MiB
	}
	if o.GCLowWater == 0 {
		o.GCLowWater = 0.70
	}
	if o.GCHighWater == 0 {
		o.GCHighWater = 0.75
	}
	if o.GCLowWater < 0 {
		o.GCLowWater = 0
	}
	if o.PrefetchSectors == 0 {
		o.PrefetchSectors = 256
	}
	if o.UploadDepth <= 0 {
		o.UploadDepth = 4
	}
	if o.FetchDepth <= 0 {
		o.FetchDepth = 8
	}
	if o.DestageQueueDepth <= 0 {
		o.DestageQueueDepth = 256
	}
}

// Stats aggregates counters from all three layers.
type Stats struct {
	Writes, Reads, Flushes, Trims uint64
	BytesWritten, BytesRead       uint64
	WriteCacheHitSectors          uint64
	ReadCacheHitSectors           uint64
	BackendReadSectors            uint64
	ZeroFillSectors               uint64
	PrefetchedSectors             uint64
	WriteSeq                      uint64
	RecoveredReplayed             int // cache records replayed to backend at open
	DestageQueued                 int // requests waiting in the destage queue

	// Read-miss pipeline counters (GET amplification for bench runs):
	// the first three mirror the block store's fetch-path counters,
	// PrefetchHitSectors mirrors the read cache's, and
	// AdmissionsDropped counts cache admissions shed under pressure.
	BackendGETs        uint64
	FetchesDeduped     uint64
	RunsCoalesced      uint64
	PrefetchHitSectors uint64
	AdmissionsDropped  uint64

	WriteCache writecache.Stats
	ReadCache  readcache.Stats
	Backend    blockstore.Stats
}

// counters holds the core's own statistics; every field is updated
// atomically so the read path stays lock-free.
type counters struct {
	writes, reads, flushes, trims atomic.Uint64
	bytesWritten, bytesRead       atomic.Uint64
	wcHitSectors, rcHitSectors    atomic.Uint64
	backendReadSectors            atomic.Uint64
	zeroFillSectors               atomic.Uint64
	prefetchedSectors             atomic.Uint64
}

// destageReq is one unit of work for the destager goroutine: a logged
// write or trim to forward to the block store, or a flush marker
// (non-nil reply channel) that seals and fences the pipeline.
type destageReq struct {
	ws    uint64
	ext   block.Extent
	data  []byte // nil for trims
	trim  bool
	flush chan error
}

// Disk is an LSVD virtual disk. Mutations (write/trim) are ordered by
// a single write mutex — the write log must stay strictly ordered —
// but return as soon as the cache log append and queue handoff are
// done; destage to the backend happens on a background goroutine.
// Reads take no disk-level lock at all: each cache layer and the block
// store guard their own state, and the combined lookup+read methods
// make each level's snapshot internally consistent.
type Disk struct {
	opts Options

	// res is non-nil for host-managed disks (shared SSD + pools); the
	// release once-guard fires OnClose exactly once across Close/Kill.
	res     *Resources
	release sync.Once

	wc *writecache.Cache
	rc *readcache.Cache
	bs *blockstore.Store

	volSectors block.LBA
	readOnly   bool

	wmu      sync.Mutex //lsvd:lock core.wmu (orders mutations; guards closed and queue handoff)
	closed   bool
	writeSeq atomic.Uint64

	// Destage pipeline (nil channels when SyncDestage or read-only).
	ch   chan destageReq
	quit chan struct{} // closed by Kill: drop the queue, stop now
	done chan struct{} // closed when the destager exits
	perr atomic.Pointer[error]

	// rcGen is bumped by every write/trim before it invalidates the
	// read cache. A backend reader records the epoch before fetching
	// and self-invalidates its inserts if it changed, so a stale fetch
	// can never linger in the read cache past a concurrent overwrite.
	rcGen atomic.Uint64

	// adm applies read-cache admissions (demand fills + temporal
	// prefetch) on a background goroutine, off the read ack path.
	adm admitter

	c                 counters
	recoveredReplayed int
}

// ErrReadOnly is returned for mutations on snapshot mounts.
var ErrReadOnly = blockstore.ErrReadOnly

// ErrClosed is returned for operations on a closed (or killed) disk.
var ErrClosed = errors.New("core: disk is closed")

var _ vdisk.Disk = (*Disk)(nil)

// Create initializes a new LSVD volume on a fresh cache device and
// backend prefix.
func Create(ctx context.Context, opts Options) (*Disk, error) {
	return CreateShared(ctx, opts, nil)
}

// CreateShared is Create with host-injected shared resources (res may
// be nil, which is plain Create).
func CreateShared(ctx context.Context, opts Options, res *Resources) (*Disk, error) {
	opts.setDefaults()
	if opts.VolBytes <= 0 || opts.VolBytes%block.SectorSize != 0 {
		return nil, fmt.Errorf("core: invalid volume size %d", opts.VolBytes)
	}
	d := &Disk{opts: opts, volSectors: block.LBAFromBytes(opts.VolBytes)}
	wcDev, err := d.attachCaches(res)
	if err != nil {
		return nil, err
	}
	if d.wc, err = writecache.Format(wcDev, wcConfig(opts, wcDev)); err != nil {
		return nil, err
	}
	if d.bs, err = blockstore.Create(ctx, d.storeConfig()); err != nil {
		return nil, err
	}
	d.startPipeline()
	return d, nil
}

// attachCaches resolves the disk's write-cache device and read cache:
// host-injected carve-outs when res is non-nil, otherwise an exclusive
// static split of Options.CacheDev (the historical single-volume
// layout).
func (d *Disk) attachCaches(res *Resources) (simdev.Device, error) {
	if res != nil {
		d.res = res
		d.rc = res.ReadCache
		return res.WCDev, nil
	}
	wcDev, rcDev, err := splitCache(d.opts)
	if err != nil {
		return nil, err
	}
	if d.rc, err = readcache.New(rcDev, rcConfig(d.opts, rcDev)); err != nil {
		return nil, err
	}
	return wcDev, nil
}

// released fires the host's OnClose hook exactly once (Close or Kill).
func (d *Disk) released() {
	if d.res != nil && d.res.OnClose != nil {
		d.release.Do(d.res.OnClose)
	}
}

// wcConfig and rcConfig scale the metadata reservations to the cache
// partition so small experiment caches still leave room for data.
func wcConfig(opts Options, dev simdev.Device) writecache.Config {
	ckpt := dev.Size() / 8
	if ckpt > 16*block.MiB {
		ckpt = 16 * block.MiB
	}
	if ckpt < 2*block.BlockSize {
		ckpt = 2 * block.BlockSize
	}
	return writecache.Config{CheckpointBytes: ckpt &^ (block.BlockSize - 1), CheckpointEvery: opts.WriteCacheCheckpointEvery}
}

func rcConfig(opts Options, dev simdev.Device) readcache.Config {
	return readcache.SizedConfig(dev.Size(), opts.ReadCachePolicy)
}

// Open recovers an LSVD volume: the cache log is replayed, the backend
// recovered by the prefix rule, and any committed writes present in
// the cache but missing from the backend are re-sent (§3.3).
func Open(ctx context.Context, opts Options) (*Disk, error) {
	return OpenShared(ctx, opts, nil)
}

// OpenShared is Open with host-injected shared resources (res may be
// nil, which is plain Open).
func OpenShared(ctx context.Context, opts Options, res *Resources) (*Disk, error) {
	opts.setDefaults()
	d := &Disk{opts: opts}
	wcDev, err := d.attachCaches(res)
	if err != nil {
		return nil, err
	}
	wc, wcErr := writecache.Open(wcDev, wcConfig(opts, wcDev))
	if wcErr != nil {
		// Cache lost or blank (§3.4 worst case): reformat it; the
		// volume falls back to the backend's consistent prefix.
		if wc, err = writecache.Format(wcDev, wcConfig(opts, wcDev)); err != nil {
			return nil, err
		}
	}
	d.wc = wc
	if d.bs, err = blockstore.Open(ctx, d.storeConfig()); err != nil {
		return nil, err
	}
	d.volSectors = d.bs.VolSectors()

	// Rewind & replay: push cache records newer than the backend's
	// durable watermark back through the block store.
	durable := d.bs.DurableWriteSeq()
	replayed := 0
	err = d.wc.RecordsAfter(durable, func(ws uint64, typ journal.Type, ext block.Extent, data []byte) error {
		replayed++
		if typ == journal.TypeTrim {
			return d.bs.Trim(ws, ext)
		}
		return d.bs.Append(ws, ext, data)
	})
	if err != nil {
		return nil, fmt.Errorf("core: cache replay: %w", err)
	}
	if replayed > 0 {
		if err := d.bs.Seal(); err != nil {
			return nil, err
		}
	}
	d.recoveredReplayed = replayed
	d.wc.SetDestaged(d.bs.DurableWriteSeq())
	ws := d.bs.DurableWriteSeq()
	if m := d.wc.MaxWriteSeq(); m > ws {
		ws = m
	}
	d.writeSeq.Store(ws)
	d.startPipeline()
	return d, nil
}

// OpenSnapshot mounts a named snapshot of the volume as a read-only
// disk (§3.6: "can be mounted read-only by backtracking to the last
// map checkpoint before that point"). The cache device is used only
// for read caching; writes and trims are rejected.
func OpenSnapshot(ctx context.Context, opts Options, snapshot string) (*Disk, error) {
	opts.setDefaults()
	opts.GCLowWater = 0
	d := &Disk{opts: opts, readOnly: true}
	wcDev, rcDev, err := splitCache(opts)
	if err != nil {
		return nil, err
	}
	// The write cache stays empty; it exists only so the read path's
	// three-level lookup works unchanged.
	if d.wc, err = writecache.Format(wcDev, wcConfig(opts, wcDev)); err != nil {
		return nil, err
	}
	if d.rc, err = readcache.New(rcDev, rcConfig(opts, rcDev)); err != nil {
		return nil, err
	}
	if d.bs, err = blockstore.OpenSnapshot(ctx, d.storeConfig(), snapshot); err != nil {
		return nil, err
	}
	d.volSectors = d.bs.VolSectors()
	d.writeSeq.Store(d.bs.DurableWriteSeq())
	d.startPipeline()
	return d, nil
}

func splitCache(opts Options) (simdev.Device, simdev.Device, error) {
	total := opts.CacheDev.Size()
	wcBytes := int64(float64(total)*opts.WriteCacheFrac) &^ (block.BlockSize - 1)
	wcDev, err := simdev.NewSection(opts.CacheDev, 0, wcBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("core: cache split: %w", err)
	}
	rcDev, err := simdev.NewSection(opts.CacheDev, wcBytes, total-wcBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("core: cache split: %w", err)
	}
	return wcDev, rcDev, nil
}

func (d *Disk) storeConfig() blockstore.Config {
	cfg := blockstore.Config{
		Volume:          d.opts.Volume,
		Store:           d.opts.Store,
		VolSectors:      d.volSectors,
		BatchBytes:      d.opts.BatchBytes,
		GCLowWater:      d.opts.GCLowWater,
		GCHighWater:     d.opts.GCHighWater,
		CheckpointEvery: d.opts.CheckpointEvery,
		OnDestage:       func(ws uint64) { d.wc.SetDestaged(ws) },
		Retry:           d.opts.Retry,
		FetchDepth:      d.opts.FetchDepth,
	}
	if !d.opts.SyncDestage && !d.readOnly {
		cfg.UploadDepth = d.opts.UploadDepth
	}
	if !d.opts.DisableGCCacheFetch {
		cfg.FetchFromCache = d.fetchFromWriteCache
	}
	if d.res != nil {
		cfg.UploadSem = d.res.UploadSem
		cfg.FetchSem = d.res.FetchSem
	}
	return cfg
}

// startPipeline launches the read-path admitter (every disk reads) and
// the destager goroutine (skipped for synchronous or read-only disks).
func (d *Disk) startPipeline() {
	d.adm.start(d)
	if d.readOnly || d.opts.SyncDestage {
		return
	}
	d.ch = make(chan destageReq, d.opts.DestageQueueDepth)
	d.quit = make(chan struct{})
	d.done = make(chan struct{})
	invariant.Go("core-destage", d.destage)
}

// destage drains the queue into the block store. On Kill (quit closed)
// it returns immediately, dropping whatever is still queued — those
// writes live on in the cache log and are replayed at the next Open.
func (d *Disk) destage() {
	defer close(d.done)
	var lastWS uint64
	for {
		select {
		case <-d.quit:
			return
		case req, ok := <-d.ch:
			if !ok {
				return
			}
			if req.flush != nil {
				req.flush <- d.bs.Seal()
				continue
			}
			// The queue is FIFO and producers serialize under wmu, so
			// write sequence numbers reach the block store in order —
			// the property prefix consistency (§3.1) rests on.
			invariant.Assertf(req.ws >= lastWS,
				"core: destage writeSeq regressed: %d after %d", req.ws, lastWS)
			lastWS = req.ws
			var err error
			if req.trim {
				err = d.bs.Trim(req.ws, req.ext)
			} else {
				err = d.bs.Append(req.ws, req.ext, req.data)
			}
			if err != nil {
				d.failPipeline(err)
			}
		}
	}
}

// failPipeline records the first destage failure; it is surfaced to
// the client on the next mutation or fence.
func (d *Disk) failPipeline(err error) {
	d.perr.CompareAndSwap(nil, &err)
}

func (d *Disk) pipelineErr() error {
	if p := d.perr.Load(); p != nil {
		return *p
	}
	return nil
}

// enqueue hands a request to the destager, blocking while the queue is
// full (backpressure). Kill unblocks it.
//
//lsvd:ignore destage backpressure by design: the write path stalls under wmu when the queue is full; quit unblocks it
func (d *Disk) enqueue(req destageReq) error {
	select {
	case d.ch <- req:
		return nil
	case <-d.quit:
		return ErrClosed
	}
}

// fetchFromWriteCache serves destage (GC, §3.5) and SSD-readback
// (§3.7) reads from the write cache when the data is fully resident.
// It is called with the block store lock held; it only touches the
// write cache, which has its own lock.
func (d *Disk) fetchFromWriteCache(ext block.Extent, buf []byte) bool {
	return d.wc.ReadFull(ext, buf)
}

// Size returns the disk size in bytes.
func (d *Disk) Size() int64 { return d.volSectors.Bytes() }

func (d *Disk) checkIO(p []byte, off int64) (block.Extent, error) {
	if off%block.SectorSize != 0 {
		return block.Extent{}, fmt.Errorf("core: unaligned offset %d", off)
	}
	lba := block.LBAFromBytes(off)
	if err := block.CheckIO(d.volSectors, lba, p); err != nil {
		return block.Extent{}, err
	}
	return block.Extent{LBA: lba, Sectors: uint32(len(p) / block.SectorSize)}, nil
}

// WriteAt implements vdisk.Disk: the write is persisted to the cache
// log (acknowledged) and queued for background destage (§3.2). It does
// not wait for the backend.
func (d *Disk) WriteAt(p []byte, off int64) error {
	ext, err := d.checkIO(p, off)
	if err != nil {
		return err
	}
	if ext.Empty() {
		return nil
	}
	if err := d.pipelineErr(); err != nil {
		return err
	}
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.readOnly {
		return ErrReadOnly
	}
	if d.closed {
		return ErrClosed
	}
	ws := d.writeSeq.Add(1)

	if err := d.logWithBackpressure(ws, ext, p, false); err != nil {
		return err
	}
	// Drop any stale read-cache copy (write-after-read hazard), and
	// bump the epoch so an in-flight backend fetch self-invalidates.
	d.rcGen.Add(1)
	d.rc.Invalidate(ext)

	// Hand off to the destager. The prototype's destage path reads the
	// data back off the SSD (§3.7/Table 6); the in-memory handoff
	// models the userspace rewrite (and must copy, since the caller
	// owns p after we return).
	src := p
	if d.opts.ReadbackThroughSSD {
		src = make([]byte, len(p))
		if !d.wc.ReadFull(ext, src) {
			copy(src, p) // should not happen; fall back to the caller's copy
		}
	} else if !d.opts.SyncDestage {
		src = append(make([]byte, 0, len(p)), p...)
	}
	if d.opts.SyncDestage {
		if err := d.bs.Append(ws, ext, src); err != nil {
			return err
		}
	} else if err := d.enqueue(destageReq{ws: ws, ext: ext, data: src}); err != nil {
		return err
	}
	d.c.writes.Add(1)
	d.c.bytesWritten.Add(uint64(len(p)))
	return nil
}

// logWithBackpressure persists one mutation record to the cache log.
// When the ring is full of un-destaged records it fences the destage
// pipeline — making everything logged so far durable remotely, which
// unlocks FIFO eviction — and retries: §3.2's "no writes accepted
// until cache space is freed". Write and trim share this policy.
func (d *Disk) logWithBackpressure(ws uint64, ext block.Extent, p []byte, trim bool) error {
	for attempt := 0; ; attempt++ {
		var err error
		if trim {
			err = d.wc.AppendTrim(ws, ext)
		} else {
			err = d.wc.Append(ws, ext, p)
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, writecache.ErrFull) || attempt >= 2 {
			return err
		}
		if err := d.drainLocked(); err != nil {
			return err
		}
	}
}

// drainLocked (wmu held) makes every queued and batched write durable
// in the backend: it pushes a flush marker through the destage queue
// and waits for the destager's Seal — which itself fences the upload
// pool — to complete.
//
//lsvd:ignore flush fence: the caller requires queued destage work durable before returning; blocking under wmu is the contract and quit unblocks it
func (d *Disk) drainLocked() error {
	if d.ch == nil {
		return d.bs.Seal()
	}
	fl := make(chan error, 1)
	if err := d.enqueue(destageReq{flush: fl}); err != nil {
		return err
	}
	select {
	case err := <-fl:
		return err
	case <-d.quit:
		return ErrClosed
	}
}

// ReadAt implements vdisk.Disk: write cache, then read cache, then
// backend (Fig 1), zero-filling uninitialized ranges. Reads take no
// disk-level lock and proceed concurrently with writes, destage and
// each other; a read that races a write to the same blocks may return
// either version, as on a physical disk.
func (d *Disk) ReadAt(p []byte, off int64) error {
	ext, err := d.checkIO(p, off)
	if err != nil {
		return err
	}
	if ext.Empty() {
		return nil
	}
	d.c.reads.Add(1)
	d.c.bytesRead.Add(uint64(len(p)))

	// (1) Write cache.
	wcRuns, err := d.wc.ReadExtent(ext, p)
	if err != nil {
		return err
	}
	var missesWC []block.Extent
	for _, run := range wcRuns {
		if run.Present {
			d.c.wcHitSectors.Add(uint64(run.Sectors))
		} else {
			missesWC = append(missesWC, run.Extent)
		}
	}
	// (2) Read cache.
	var missesRC []block.Extent
	for _, miss := range missesWC {
		sub := p[(miss.LBA - ext.LBA).Bytes():][:miss.Bytes()]
		rcRuns, err := d.rc.ReadExtent(miss, sub)
		if err != nil {
			return err
		}
		for _, run := range rcRuns {
			if run.Present {
				d.c.rcHitSectors.Add(uint64(run.Sectors))
			} else {
				missesRC = append(missesRC, run.Extent)
			}
		}
	}
	// (3) Block store: all remaining misses fan out across the fetcher
	// pool, with temporal prefetch admitted to the read cache off the
	// ack path (readpath.go).
	if len(missesRC) > 0 {
		return d.readBackend(ext, missesRC, p)
	}
	return nil
}

// Flush implements the commit barrier: one flush of the cache device
// (§3.2); no map metadata is written and the destage pipeline is not
// drained — durability of acknowledged writes comes from the cache
// log plus replay-on-open.
func (d *Disk) Flush() error {
	if err := d.pipelineErr(); err != nil {
		return err
	}
	d.c.flushes.Add(1)
	return d.wc.Flush()
}

// Trim implements discard.
func (d *Disk) Trim(off, length int64) error {
	if length == 0 {
		return nil
	}
	if off%block.SectorSize != 0 || length%block.SectorSize != 0 {
		return fmt.Errorf("core: unaligned trim [%d,%d)", off, off+length)
	}
	lba := block.LBAFromBytes(off)
	n := block.LBA(length / block.SectorSize)
	if lba+n > d.volSectors {
		return fmt.Errorf("core: trim beyond end of disk")
	}
	ext := block.Extent{LBA: lba, Sectors: uint32(n)}
	if err := d.pipelineErr(); err != nil {
		return err
	}
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.readOnly {
		return ErrReadOnly
	}
	if d.closed {
		return ErrClosed
	}
	ws := d.writeSeq.Add(1)
	if err := d.logWithBackpressure(ws, ext, nil, true); err != nil {
		return err
	}
	d.rcGen.Add(1)
	d.rc.Invalidate(ext)
	if d.opts.SyncDestage {
		if err := d.bs.Trim(ws, ext); err != nil {
			return err
		}
	} else if err := d.enqueue(destageReq{ws: ws, ext: ext, trim: true}); err != nil {
		return err
	}
	d.c.trims.Add(1)
	return nil
}

// Drain fences the destage pipeline: queue drained, batch sealed,
// every upload committed. All acknowledged writes are durable remotely
// when it returns; cache and backend are synchronized (used before VM
// migration, §4.3/§4.4).
func (d *Disk) Drain() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.readOnly {
		return d.bs.Seal()
	}
	return d.drainLocked()
}

// Checkpoint forces map checkpoints in both logs.
func (d *Disk) Checkpoint() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if !d.readOnly {
		if err := d.drainLocked(); err != nil {
			return err
		}
	}
	if err := d.bs.Checkpoint(); err != nil {
		return err
	}
	return d.wc.Checkpoint()
}

// Close drains, checkpoints and persists all metadata.
func (d *Disk) Close() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	// Stop the admitter on every exit path (queued windows are
	// released); the happy paths drain it first so admissions land in
	// the read cache before it is persisted. The host's OnClose fires
	// once the disk is down, whatever path got it there.
	defer d.released()
	defer d.adm.stop()
	if d.readOnly {
		d.adm.drain()
		return d.rc.Persist()
	}
	var derr error
	if d.ch != nil {
		fl := make(chan error, 1)
		if err := d.enqueue(destageReq{flush: fl}); err != nil {
			derr = err
		} else {
			//lsvd:ignore Close drains the pipeline under wmu by design; quit unblocks
			select {
			case derr = <-fl:
			case <-d.quit:
				derr = ErrClosed
			}
		}
		// No writer can be mid-send: sends happen under wmu with the
		// closed flag checked, so closing the channel here is safe.
		close(d.ch)
		//lsvd:ignore Close waits for the destager goroutine to exit under wmu by design
		<-d.done
	}
	if derr != nil {
		return derr
	}
	if err := d.bs.Seal(); err != nil {
		return err
	}
	if err := d.bs.Checkpoint(); err != nil {
		return err
	}
	if err := d.wc.Close(); err != nil {
		return err
	}
	d.adm.drain()
	return d.rc.Persist()
}

// Kill models process death for crash testing: the destage pipeline
// stops without flushing — queued writes are dropped (they remain in
// the cache log and are replayed at the next Open) — and in-flight
// uploads are quiesced so the backend stops changing. The disk is
// unusable afterwards; recover with Open.
func (d *Disk) Kill() {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	if d.quit != nil {
		close(d.quit)
		//lsvd:ignore Kill waits for the destager to exit; quit is closed so the exit is prompt
		<-d.done
	}
	d.adm.stop()
	d.bs.Abort()
	d.released()
}

// Snapshot creates a named snapshot (§3.6) after fencing the pipeline
// so the snapshot covers every acknowledged write.
func (d *Disk) Snapshot(name string) (blockstore.SnapshotInfo, error) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return blockstore.SnapshotInfo{}, ErrClosed
	}
	if !d.readOnly {
		if err := d.drainLocked(); err != nil {
			return blockstore.SnapshotInfo{}, err
		}
	}
	return d.bs.CreateSnapshot(name)
}

// DeleteSnapshot removes a snapshot.
func (d *Disk) DeleteSnapshot(name string) error {
	return d.bs.DeleteSnapshot(name)
}

// Snapshots lists snapshots.
func (d *Disk) Snapshots() []blockstore.SnapshotInfo {
	return d.bs.Snapshots()
}

// RunGC triggers a garbage-collection pass. It runs under the block
// store's own lock and may proceed concurrently with reads and with
// the foreground write path.
func (d *Disk) RunGC() error {
	return d.bs.RunGC()
}

// Stats returns a snapshot of all counters.
func (d *Disk) Stats() Stats {
	st := Stats{
		Writes: d.c.writes.Load(), Reads: d.c.reads.Load(),
		Flushes: d.c.flushes.Load(), Trims: d.c.trims.Load(),
		BytesWritten: d.c.bytesWritten.Load(), BytesRead: d.c.bytesRead.Load(),
		WriteCacheHitSectors: d.c.wcHitSectors.Load(),
		ReadCacheHitSectors:  d.c.rcHitSectors.Load(),
		BackendReadSectors:   d.c.backendReadSectors.Load(),
		ZeroFillSectors:      d.c.zeroFillSectors.Load(),
		PrefetchedSectors:    d.c.prefetchedSectors.Load(),
		WriteSeq:             d.writeSeq.Load(),
		RecoveredReplayed:    d.recoveredReplayed,
		AdmissionsDropped:    d.adm.dropped.Load(),
	}
	if d.ch != nil {
		st.DestageQueued = len(d.ch)
	}
	st.WriteCache = d.wc.Stats()
	st.ReadCache = d.rc.Stats()
	st.Backend = d.bs.Stats()
	st.BackendGETs = st.Backend.FetchGETs
	st.FetchesDeduped = st.Backend.FetchesDeduped
	st.RunsCoalesced = st.Backend.RunsCoalesced
	st.PrefetchHitSectors = st.ReadCache.PrefetchHitSectors
	return st
}

// Backend exposes the block store (for replication tooling and the
// experiment harness).
func (d *Disk) Backend() *blockstore.Store { return d.bs }
