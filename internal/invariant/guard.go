// Package invariant provides build-tag-gated runtime assertions, a
// lock-order checker, and the goroutine panic guard (DESIGN.md §5e).
// Assert/LockOrder compile to empty, inlinable no-ops without the
// lsvdcheck tag, so production binaries pay nothing; `make
// check-invariant` runs the torture and stress suites with `-tags
// lsvdcheck -race` so violations crash the test instead of corrupting
// state silently. Go (the panic guard) is always active.
package invariant

import (
	"fmt"
	"runtime/debug"
)

// Go spawns fn on a new goroutine behind a panic guard: a panic in fn
// is recovered, annotated with the goroutine's name and stack, and
// re-raised, so a crash identifies which of the engine's background
// loops died instead of surfacing as an anonymous runtime trace. The
// goroguard analyzer requires every goroutine in non-test code to
// start through this (or an equivalent recover-first idiom).
func Go(name string, fn func()) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				panic(fmt.Sprintf("lsvd: goroutine %q panicked: %v\n%s", name, r, debug.Stack()))
			}
		}()
		fn()
	}()
}
