package blockstore

import (
	"bytes"
	"errors"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/objstore"
)

// TestSealRetriesAfterPutFailure: a failed object PUT must leave the
// batch intact so the caller can retry, and the retry must produce a
// correct object.
func TestSealRetriesAfterPutFailure(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{})
	ext := block.Extent{LBA: 0, Sectors: 64}
	data := payload(1, int(ext.Bytes()))
	if err := s.Append(1, ext, data); err != nil {
		t.Fatal(err)
	}
	// Forever, so the Retrier's attempts can't absorb the failure.
	faulty.FailPuts(objName("vol", s.Stats().NextSeq), -1)
	if err := s.Seal(); !errors.Is(err, objstore.ErrInjected) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	// State must be unchanged: nothing durable, batch pending.
	if s.Stats().DurableWriteSeq != 0 {
		t.Fatal("failed seal advanced the watermark")
	}
	if s.Stats().PendingBatch == 0 {
		t.Fatal("failed seal dropped the batch")
	}
	// Healing the store lets the retry succeed and data reads back.
	faulty.FailPuts(objName("vol", s.Stats().NextSeq), 0)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().DurableWriteSeq != 1 {
		t.Fatal("retry did not destage")
	}
	if got := readAll(t, s, ext); !bytes.Equal(got, data) {
		t.Fatal("data wrong after retried seal")
	}
}

// TestCheckpointFailureKeepsOldPointer: if the superblock update
// fails, the previous checkpoint must stay authoritative so recovery
// still works.
func TestCheckpointFailureKeepsOldPointer(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{CheckpointEvery: 1 << 30})
	ext := block.Extent{LBA: 0, Sectors: 64}
	data := payload(2, int(ext.Bytes()))
	_ = s.Append(1, ext, data)
	_ = s.Seal()
	faulty.FailPuts(superName("vol"), -1)
	if err := s.Checkpoint(); !errors.Is(err, objstore.ErrInjected) {
		t.Fatalf("super failure not surfaced: %v", err)
	}
	faulty.FailPuts(superName("vol"), 0)
	// Recovery from the old superblock still finds everything (the
	// data object replays from the old checkpoint).
	s2, err := Open(ctx, Config{Volume: "vol", Store: faulty})
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, s2, ext); !bytes.Equal(got, data) {
		t.Fatal("data lost after failed checkpoint")
	}
}

// TestRecoveryWithNewerCheckpointObject: a checkpoint whose PUT
// completed but whose superblock update did not must be picked up
// during replay (the replayObject TypeCheckpoint path).
func TestRecoveryWithNewerCheckpointObject(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{CheckpointEvery: 1 << 30})
	ext := block.Extent{LBA: 0, Sectors: 64}
	data := payload(3, int(ext.Bytes()))
	_ = s.Append(1, ext, data)
	_ = s.Seal()
	// Checkpoint object lands; superblock write fails.
	faulty.FailPuts(superName("vol"), -1)
	_ = s.Checkpoint()
	faulty.FailPuts(superName("vol"), 0)
	s2, err := Open(ctx, Config{Volume: "vol", Store: faulty})
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, s2, ext); !bytes.Equal(got, data) {
		t.Fatal("data lost when replaying a stranded checkpoint")
	}
	// The stranded checkpoint became the authoritative one.
	if s2.Stats().Checkpoints == 0 && s2.Stats().Objects == 0 {
		t.Fatal("no state recovered")
	}
}

// TestAppendAfterGCFailurePath: injected failures during GC PUTs must
// not corrupt the map — data remains readable from the old objects.
func TestGCPutFailureLeavesDataReadable(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{BatchBytes: 64 * 1024, GCLowWater: 0})
	ext := block.Extent{LBA: 0, Sectors: 128}
	orig := payload(4, int(ext.Bytes()))
	_ = s.Append(1, ext, orig)
	_ = s.Seal()
	half := block.Extent{LBA: 0, Sectors: 64}
	newer := payload(5, int(half.Bytes()))
	_ = s.Append(2, half, newer)
	_ = s.Seal()
	// Fail the next PUT (the GC object).
	faulty.FailEveryNth(1)
	if err := s.RunGC(); err == nil {
		t.Fatal("GC with failing store succeeded")
	}
	faulty.FailEveryNth(0)
	want := append([]byte{}, orig...)
	copy(want, newer)
	if got := readAll(t, s, ext); !bytes.Equal(got, want) {
		t.Fatal("data unreadable after failed GC")
	}
	// A later successful GC pass still works.
	if err := s.RunGC(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, s, ext); !bytes.Equal(got, want) {
		t.Fatal("data wrong after recovered GC")
	}
}

// TestStrandedDeleteFailureDoesNotFailOpen: recovery must tolerate a
// stranded object whose DELETE keeps failing — record it as an orphan,
// open successfully, refuse new object writes until the orphan is
// swept, then sweep it on the next seal.
func TestStrandedDeleteFailureDoesNotFailOpen(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{CheckpointEvery: 1 << 30})
	ext := block.Extent{LBA: 0, Sectors: 64}
	data := payload(11, int(ext.Bytes()))
	_ = s.Append(1, ext, data)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	// Plant a stranded object one past the gap (its predecessor's PUT
	// "never completed"), and make its deletion fail forever.
	stranded := objName("vol", s.Stats().NextSeq+1)
	if err := faulty.Put(ctx, stranded, []byte("stranded junk")); err != nil {
		t.Fatal(err)
	}
	faulty.FailDeletes(stranded, -1)

	s2, err := Open(ctx, Config{Volume: "vol", Store: faulty})
	if err != nil {
		t.Fatalf("failed stranded-delete aborted Open: %v", err)
	}
	if got := s2.Stats().OrphanObjects; got != 1 {
		t.Fatalf("orphans=%d want 1", got)
	}
	if got := readAll(t, s2, ext); !bytes.Equal(got, data) {
		t.Fatal("data lost across orphaned recovery")
	}

	// While the orphan is undeletable, no new object may be written:
	// new seqs would fill the gap below the orphan and a crash would
	// make its stale bytes replayable.
	_ = s2.Append(2, ext, payload(12, int(ext.Bytes())))
	if err := s2.Seal(); !errors.Is(err, objstore.ErrInjected) {
		t.Fatalf("seal ignored a sweep failure: %v", err)
	}

	// Heal: the next seal sweeps the orphan and proceeds.
	faulty.FailDeletes(stranded, 0)
	if err := s2.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().OrphanObjects; got != 0 {
		t.Fatalf("orphans=%d after sweep", got)
	}
	if _, err := faulty.Size(ctx, stranded); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("orphan still on the backend: %v", err)
	}
}

// TestTruncatedTailObjectIsCrashGap: a tail object cut short by a torn
// PUT must read as the crash gap — recovery keeps the prefix before
// it, deletes the remnant, and Open succeeds.
func TestTruncatedTailObjectIsCrashGap(t *testing.T) {
	for name, cut := range map[string]func(raw []byte) []byte{
		"data":   func(raw []byte) []byte { return raw[:len(raw)/3] }, // header intact, data short
		"header": func(raw []byte) []byte { return raw[:40] },         // header itself truncated
		"empty":  func(raw []byte) []byte { return nil },              // zero-byte object
	} {
		t.Run(name, func(t *testing.T) {
			mem := objstore.NewMem()
			s := newVolume(t, mem, Config{CheckpointEvery: 1 << 30})
			extA := block.Extent{LBA: 0, Sectors: 64}
			dataA := payload(21, int(extA.Bytes()))
			_ = s.Append(1, extA, dataA)
			_ = s.Seal()
			extB := block.Extent{LBA: 128, Sectors: 64}
			_ = s.Append(2, extB, payload(22, int(extB.Bytes())))
			_ = s.Seal()
			tail := objName("vol", s.Stats().NextSeq-1)
			raw, err := mem.Get(ctx, tail)
			if err != nil {
				t.Fatal(err)
			}
			if err := mem.Put(ctx, tail, cut(raw)); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(ctx, Config{Volume: "vol", Store: mem})
			if err != nil {
				t.Fatalf("truncated tail aborted Open: %v", err)
			}
			// Prefix before the torn object survives; the torn write
			// is gone, reading as a hole.
			if got := readAll(t, s2, extA); !bytes.Equal(got, dataA) {
				t.Fatal("prefix data lost")
			}
			if got := readAll(t, s2, extB); !bytes.Equal(got, make([]byte, extB.Bytes())) {
				t.Fatal("torn object's data visible after recovery")
			}
			if got := s2.Stats().DurableWriteSeq; got != 1 {
				t.Fatalf("durable=%d want 1", got)
			}
			// The remnant was deleted as stranded and its seq reused.
			if _, err := mem.Size(ctx, tail); !errors.Is(err, objstore.ErrNotFound) {
				t.Fatalf("torn remnant not deleted: %v", err)
			}
			_ = s2.Append(3, extB, payload(23, int(extB.Bytes())))
			if err := s2.Seal(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBackendRetriesSurfaceInStats: the default Config wraps the store
// in a Retrier, so a transient failure is absorbed invisibly but
// counted.
func TestBackendRetriesSurfaceInStats(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{})
	ext := block.Extent{LBA: 0, Sectors: 64}
	data := payload(31, int(ext.Bytes()))
	_ = s.Append(1, ext, data)
	faulty.FailPuts(objName("vol", s.Stats().NextSeq), 1) // one transient blip
	if err := s.Seal(); err != nil {
		t.Fatalf("retrier did not absorb the blip: %v", err)
	}
	if got := s.Stats().BackendRetries; got == 0 {
		t.Fatal("absorbed retry not counted")
	}
	if got := readAll(t, s, ext); !bytes.Equal(got, data) {
		t.Fatal("data wrong after absorbed retry")
	}
}
