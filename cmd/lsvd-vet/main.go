// lsvd-vet runs the lsvd analyzer suite (annform, chanleak, ctxflow,
// deferorder, errclass, goroguard, lockheld, lockorder, sectmath,
// spinwait — see DESIGN.md §5e) over the module. Stdlib only: packages
// load through `go list -export` and go/importer, not
// golang.org/x/tools.
//
// Usage:
//
//	lsvd-vet [-dir root] [-json] [-baseline file] [-write-baseline file] [packages...]
//
// Packages default to ./... relative to -dir (default: the current
// directory).
//
// Exit status and modes:
//
//   - Default: print human-readable diagnostics, exit 1 if any.
//   - -json: print the findings document (stable order, fingerprints)
//     to stdout; same exit rule.
//   - -baseline vet-baseline.json: exit 1 only on findings whose
//     fingerprint is NOT in the baseline. Baseline entries that no
//     longer fire are reported to stderr as stale (exit stays 0) —
//     regenerate the file so paid-off debt cannot mask a regression.
//   - -write-baseline vet-baseline.json: write the current findings as
//     the new baseline and exit 0. Review the diff like code: every
//     entry is a deliberately parked defect.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lsvd/internal/analysis"
)

func main() {
	dir := flag.String("dir", ".", "module directory to analyze from")
	list := flag.Bool("analyzers", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as stable JSON on stdout")
	baseline := flag.String("baseline", "", "fail only on findings not in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absRoot, err := filepath.Abs(*dir)
	if err != nil {
		fatal(err)
	}
	loader, pkgs, err := analysis.NewLoader(*dir, patterns...)
	if err != nil {
		fatal(err)
	}
	diags := analysis.Run(loader, pkgs, analysis.Analyzers())
	findings := analysis.MakeFindings(diags, absRoot)

	if *writeBaseline != "" {
		bl := &analysis.Baseline{
			Comment:  "Findings lsvd-vet tolerates. Regenerate with `make vet-lsvd-update-baseline`; every entry is parked debt and should be rare.",
			Findings: findings,
		}
		if err := os.WriteFile(*writeBaseline, analysis.EncodeBaseline(bl), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "lsvd-vet: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}

	if *asJSON {
		os.Stdout.Write(analysis.EncodeFindings(findings))
	}

	if *baseline != "" {
		bl, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		fresh, stale := analysis.DiffBaseline(findings, bl)
		for _, f := range stale {
			fmt.Fprintf(os.Stderr, "lsvd-vet: stale baseline entry %s (%s: %s) — no longer reported, regenerate %s\n",
				f.Fingerprint, f.Analyzer, f.File, *baseline)
		}
		if !*asJSON {
			for _, f := range fresh {
				fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
			}
		}
		if len(fresh) > 0 {
			fmt.Fprintf(os.Stderr, "lsvd-vet: %d new finding(s) not in %s\n", len(fresh), *baseline)
			os.Exit(1)
		}
		return
	}

	if !*asJSON {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lsvd-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsvd-vet:", err)
	os.Exit(2)
}
