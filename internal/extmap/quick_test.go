package extmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lsvd/internal/block"
)

// Property: after any sequence of updates, the map's coverage is
// exactly the union of the updates, with the newest write winning at
// every sector, and Marshal/Unmarshal preserves it.
func TestQuickLastWriterWins(t *testing.T) {
	type op struct {
		LBA  uint16
		N    uint8
		Obj  uint8
		Keep bool // delete when false
	}
	f := func(ops []op, seed int64) bool {
		m := New()
		md := model{}
		rng := rand.New(rand.NewSource(seed))
		for _, o := range ops {
			e := block.Extent{LBA: block.LBA(o.LBA), Sectors: uint32(o.N%64) + 1}
			if o.Keep {
				tgt := Target{Obj: uint32(o.Obj) + 1, Off: block.LBA(rng.Intn(1 << 20))}
				m.Update(e, tgt)
				md.update(e, tgt)
			} else {
				m.Delete(e)
				md.del(e)
			}
		}
		if err := m.checkInvariants(); err != nil {
			return false
		}
		// Serialization round trip preserves everything.
		raw, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		m2 := New()
		if err := m2.UnmarshalBinary(raw); err != nil {
			return false
		}
		// Compare both maps against the sector model.
		for _, mm := range []*Map{m, m2} {
			got := map[block.LBA]Target{}
			for _, r := range mm.Lookup(block.Extent{LBA: 0, Sectors: 1 << 17}) {
				if !r.Present {
					continue
				}
				for i := block.LBA(0); i < block.LBA(r.Sectors); i++ {
					got[r.LBA+i] = r.Target.Shift(i)
				}
			}
			if len(got) != len(md) {
				return false
			}
			for lba, want := range md {
				if got[lba] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: UpdateExisting never creates coverage where none existed
// and never touches rejected targets.
func TestQuickUpdateExisting(t *testing.T) {
	f := func(base, over uint16, n1, n2 uint8, accept uint8) bool {
		m := New()
		e1 := block.Extent{LBA: block.LBA(base), Sectors: uint32(n1%64) + 1}
		m.Update(e1, Target{Obj: 1, Off: 0})
		e2 := block.Extent{LBA: block.LBA(over), Sectors: uint32(n2%64) + 1}
		acceptObj := uint32(accept%2) + 1 // 1 accepts the existing obj, 2 rejects
		m.UpdateExisting(e2, Target{Obj: 9, Off: 0}, func(r Run) bool {
			return r.Target.Obj == acceptObj
		})
		if err := m.checkInvariants(); err != nil {
			return false
		}
		mapped := m.MappedSectors()
		// Coverage never grows beyond the original extent.
		if mapped != uint64(e1.Sectors) {
			return false
		}
		// If the predicate rejected, nothing moved to object 9.
		if acceptObj != 1 {
			moved := false
			m.Foreach(func(_ block.Extent, tg Target) bool {
				if tg.Obj == 9 {
					moved = true
				}
				return true
			})
			if moved {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
