package blockstore

import (
	"errors"
	"sort"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/invariant"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
)

// Garbage collection (§3.5) runs in two modes sharing one pass engine:
//
//   - RunGC (and, without Config.GCService, the commit-triggered
//     inline pass) collects unpaced until the high-water mark — the
//     discrete semantics tools, tests and the Table 5 simulations
//     depend on.
//   - The background service (Config.GCService) is a per-store
//     goroutine that wakes when utilization drops below the low-water
//     mark and collects PACED: each copy batch first draws its bytes
//     from a write-amplification token bucket refilled by foreground
//     commits (gcRefillLocked), so sustained GC can never push total
//     backend write volume past GCWAFTarget × foreground volume. An
//     idle trickle (gcIdleWait/one batch) keeps quiet volumes
//     converging. The service's backend I/O goes through the upload
//     gate as a background participant with no guaranteed share, and
//     a paced pass yields the gcBusy slot whenever a fence is waiting,
//     so foreground seals, checkpoints and Close never stall behind a
//     budget wait.
//
// Victims are picked by a cost model, score = garbage ratio × age:
// segment age is the classic LFS cost-benefit proxy for "this
// object's remaining live data is cold and worth moving once", which
// beats pure least-utilized ordering under sustained overwrite churn
// (hot objects keep losing data — collecting them early re-copies
// bytes that were about to die anyway).

// errGCAborted abandons a GC pass mid-collection when Abort lands
// during one of the lock drops below; the victim is left uncleaned (its
// live data was not fully relocated) and the error never escapes the
// pass drivers.
var errGCAborted = errors.New("blockstore: gc pass aborted")

// errGCYield cuts a paced pass short because a fence (seal, checkpoint,
// RunGC, Abort) is waiting on the gcBusy slot. Partially relocated
// victims stay uncleaned and are re-collected next wake-up.
var errGCYield = errors.New("blockstore: gc pass yielded to a fence")

// gcIdleWait is how long the paced service waits for a foreground
// refill before granting itself one batch of copy budget, so a volume
// with no write traffic still converges to the watermark.
const gcIdleWait = 5 * time.Millisecond

// RunGC forces an immediate, unpaced collection pass until overall
// utilization reaches the high-water mark or no further progress is
// possible (§3.5). With the background service enabled it preempts the
// paced pass (which yields its slot to fences) and runs inline.
func (s *Store) RunGC() error {
	s.mu.Lock()
	invariant.LockOrder("bs.mu")
	defer s.mu.Unlock()
	defer invariant.LockRelease("bs.mu")
	if s.readOnly {
		return ErrReadOnly
	}
	return s.gcLocked()
}

// gcLocked claims the single GC slot and runs one unpaced pass.
// Backend I/O inside a pass (header fetches, source-data reads) drops
// s.mu, so the gcBusy claim — shared with the commit-triggered trigger
// in upload.go and the background service — is what keeps passes
// single-flight; fences and Abort wait for it via commitCond.
//
//lsvd:requires bs.mu
func (s *Store) gcLocked() error {
	s.fenceEnterLocked()
	for s.gcBusy {
		s.commitCond.Wait()
	}
	s.fenceExitLocked()
	if s.aborting {
		return nil
	}
	s.gcBusy = true
	err := s.gcPassLocked(false)
	s.gcBusy = false
	s.commitCond.Broadcast()
	if errors.Is(err, errGCYield) || errors.Is(err, errGCAborted) {
		err = nil
	}
	return err
}

// --- background service ---

// startGCService launches the paced background collector when the
// configuration asks for one. Create/open call it last, once the store
// is fully recovered.
func (s *Store) startGCService() {
	if !s.cfg.GCService || s.readOnly || s.cfg.GCLowWater <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gcDone != nil {
		return
	}
	s.gcDone = make(chan struct{})
	invariant.Go("blockstore-gc", s.gcService)
}

// StopGC stops the background service and waits for it to exit. The
// store remains usable; RunGC and (re)Open-time collection still work.
// Stopping an already-stopped (or never-started) service is a no-op.
func (s *Store) StopGC() {
	s.mu.Lock()
	invariant.LockOrder("bs.mu")
	done := s.gcDone
	if done == nil {
		invariant.LockRelease("bs.mu")
		s.mu.Unlock()
		return
	}
	s.gcStop = true
	s.gcCond.Broadcast()
	invariant.LockRelease("bs.mu")
	s.mu.Unlock()
	<-done
	s.mu.Lock()
	s.gcDone = nil
	s.gcStop = false
	s.mu.Unlock()
}

// gcServiceRunning reports whether the background collector owns GC
// triggering (callers then nudge gcCond instead of running inline
// passes). Caller holds s.mu.
func (s *Store) gcServiceRunning() bool { return s.gcDone != nil }

// fenceEnterLocked/fenceExitLocked bracket a fence's wait for the
// gcBusy slot (seal, checkpoint, RunGC). Entry wakes a paced pass so
// it yields the slot instead of sitting in a budget wait; exit wakes
// the service back up once the last fence is through — without it, a
// yield with no follow-on traffic would strand the service asleep
// below the watermark. While any fence is pending the service loop
// stays parked, so a yielded pass cannot spin-reclaim the slot and
// starve the fence of s.mu.
//
//lsvd:requires bs.mu
func (s *Store) fenceEnterLocked() {
	s.fenceWaiters++
	s.gcCond.Broadcast()
}

//lsvd:requires bs.mu
func (s *Store) fenceExitLocked() {
	s.fenceWaiters--
	if s.fenceWaiters == 0 {
		s.gcCond.Broadcast()
	}
}

// gcWantedLocked is the service wake condition: utilization fell below
// the low-water mark.
//
//lsvd:requires bs.mu
func (s *Store) gcWantedLocked() bool {
	return s.cfg.GCLowWater > 0 && s.utilizationLocked() < s.cfg.GCLowWater
}

// gcService is the background collector goroutine. It sleeps on gcCond
// until woken by a commit (refill/utilization change), StopGC or
// Abort; claims the single GC slot; and runs one paced pass. Pass
// failures land in asyncErr and surface at the next fence, exactly
// like commit-triggered passes.
func (s *Store) gcService() {
	// The claim spans the whole loop: gcCond/commitCond waits and the
	// lock drops inside writeGCObjectLocked touch no other named lock,
	// while the paths that DO cross layers under mu — GCBackoff →
	// wcache.DestagePressure and FetchFromCache → wcache — record the
	// bs.mu → wcache.mu edge the lockdep checks against FetchSpan and
	// the destage side.
	s.mu.Lock()
	invariant.LockOrder("bs.mu")
	defer s.mu.Unlock()
	defer invariant.LockRelease("bs.mu")
	defer close(s.gcDone)
	for {
		for !s.gcStop && !s.aborting &&
			(s.fenceWaiters > 0 || !s.gcWantedLocked()) {
			s.gcCond.Wait()
		}
		if s.gcStop || s.aborting {
			return
		}
		for s.gcBusy {
			s.commitCond.Wait()
		}
		if s.gcStop || s.aborting {
			return
		}
		if s.fenceWaiters > 0 || !s.gcWantedLocked() {
			continue // yield to the fence / a fence-driven pass got there first
		}
		s.gcBusy = true
		err := s.gcPassLocked(true)
		s.gcBusy = false
		s.commitCond.Broadcast()
		switch {
		case err == nil, errors.Is(err, errGCAborted), errors.Is(err, errGCYield):
		default:
			if s.asyncErr == nil {
				s.asyncErr = err
			}
		}
		if err == nil && s.gcWantedLocked() {
			// The pass ran to completion yet utilization is still below
			// the low-water mark: nothing (more) is collectable right
			// now. Re-running immediately would spin under s.mu, so
			// park until the next commit changes the picture.
			epoch := s.gcRefills
			for !s.gcStop && !s.aborting && s.gcRefills == epoch {
				s.gcCond.Wait()
			}
		}
		// Deletion of cleaned victims waits for a checkpoint; with no
		// foreground traffic to drive one, the service checkpoints
		// itself so idle-time collection actually reclaims space. Never
		// while uploads are in flight (a checkpoint must not record a
		// nextSeq beyond an uncommitted object) — busy volumes
		// checkpoint on their seal cadence anyway.
		if err == nil && !s.gcStop && !s.aborting &&
			len(s.inflight) == 0 && s.sinceCkpt >= s.cfg.CheckpointEvery {
			if cerr := s.checkpointLocked(); cerr != nil && s.asyncErr == nil {
				s.asyncErr = cerr
			}
		}
	}
}

// gcRefillLocked credits the WAF token bucket for fg payload bytes
// committed by the foreground write path, and wakes the service (the
// commit may also have dropped utilization below the low-water mark).
// The bucket is capped at a few batches so a long quiet spell cannot
// bank an unbounded copy burst.
//
//lsvd:requires bs.mu
func (s *Store) gcRefillLocked(fg int64) {
	if !s.gcServiceRunning() {
		return
	}
	if waf := s.cfg.GCWAFTarget; waf > 1 {
		s.gcBudget += int64(float64(fg) * (waf - 1))
		if burst := 4 * s.cfg.BatchBytes; s.gcBudget > burst {
			s.gcBudget = burst
		}
	}
	s.gcRefills++
	s.gcCond.Broadcast()
}

// gcAwaitBudgetLocked blocks a paced pass until the token bucket holds
// need bytes and the destage path is not under pressure. It returns
// errGCYield when a fence is waiting (or the service is stopping) and
// errGCAborted on Abort. When no foreground refill lands for a full
// gcIdleWait, the wait grants itself one batch of budget — the idle
// trickle. The refill-epoch check keeps the trickle out of loaded
// periods, so the WAF bound stays foreground-driven under traffic.
//
//lsvd:requires bs.mu
func (s *Store) gcAwaitBudgetLocked(need int64) error {
	for {
		if s.aborting {
			return errGCAborted
		}
		if s.gcStop || s.fenceWaiters > 0 {
			s.stats.gcYields++
			return errGCYield
		}
		backoff := s.cfg.GCBackoff != nil && s.cfg.GCBackoff()
		if !backoff && (s.gcBudget >= need || s.cfg.GCWAFTarget < 0) {
			return nil
		}
		if backoff {
			s.stats.gcBackoffs++
		} else {
			s.stats.gcPaceWaits++
		}
		epoch := s.gcRefills
		grant := s.cfg.BatchBytes
		t := time.AfterFunc(gcIdleWait, func() {
			// Timer goroutine: its own lockdep stack, so the claim here
			// cannot collide with the parked pass that armed it.
			s.mu.Lock()
			invariant.LockOrder("bs.mu")
			if s.gcRefills == epoch {
				s.gcBudget += grant
				// Same burst cap as the foreground refill: a pass parked
				// here for a long stretch (e.g. in destage backoff) must
				// not bank an unbounded copy burst, one trickle at a time.
				if burst := 4 * s.cfg.BatchBytes; s.gcBudget > burst {
					s.gcBudget = burst
				}
				s.gcRefills++
			}
			s.gcCond.Broadcast()
			invariant.LockRelease("bs.mu")
			s.mu.Unlock()
		})
		s.gcCond.Wait()
		t.Stop()
	}
}

// --- pass engine (shared by RunGC, commit-triggered and paced) ---

// gcPassLocked repeatedly collects the best-scoring victim, copying
// its remaining live data into fresh GC objects, until utilization
// recovers to the high-water mark. Cleaned objects are deleted only
// after the next checkpoint (so recovery never sees holes, §3.3) and
// deletion is further deferred while a snapshot pins them (§3.6).
// Caller owns the gcBusy claim. Paced passes pace each copy batch
// against the WAF bucket and yield to fences.
//
//lsvd:requires bs.mu
func (s *Store) gcPassLocked(paced bool) error {
	if err := s.sweepOrphansLocked(); err != nil {
		return err
	}
	s.stats.gcRuns++
	high := s.cfg.GCHighWater
	if high <= 0 {
		high = 0.75
	}
	for s.utilizationLocked() < high {
		cands := s.victimCandidatesLocked()
		if len(cands) == 0 {
			return nil
		}
		progress := false
		for _, seq := range cands {
			if s.aborting {
				return errGCAborted
			}
			if paced && (s.gcStop || s.fenceWaiters > 0) {
				s.stats.gcYields++
				return errGCYield
			}
			if s.utilizationLocked() >= high {
				return nil
			}
			o := s.objects[seq]
			if o == nil || s.cleaned[seq] || o.dataSectors == 0 ||
				float64(o.liveSectors)/float64(o.dataSectors) >= 0.999 {
				continue
			}
			if err := s.collectLocked(seq, paced); err != nil {
				return err
			}
			progress = true
		}
		if !progress {
			return nil
		}
	}
	return nil
}

// victimCandidatesLocked returns collectable objects ordered by
// descending cleaning score (garbage ratio × age; age in sequence
// numbers — the log's own clock). The candidate list is consumed in
// bulk by gcPassLocked so the O(objects) scan amortizes over many
// collections.
//
//lsvd:requires bs.mu
func (s *Store) victimCandidatesLocked() []uint32 {
	type cand struct {
		seq   uint32
		score float64
	}
	var cands []cand
	for _, o := range s.objects {
		if o.seq <= s.baseSeq || s.cleaned[o.seq] {
			continue
		}
		if o.typ != journal.TypeData && o.typ != journal.TypeGC {
			continue
		}
		if o.dataSectors == 0 {
			continue
		}
		r := float64(o.liveSectors) / float64(o.dataSectors)
		if r >= 0.999 {
			continue // fully live: collecting it cannot help
		}
		age := float64(s.nextSeq - o.seq)
		cands = append(cands, cand{o.seq, (1 - r) * age})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].seq < cands[j].seq // deterministic tie-break
	})
	out := make([]uint32, len(cands))
	for i, c := range cands {
		out[i] = c.seq
	}
	return out
}

// gcPiece is one run of live data to relocate.
type gcPiece struct {
	ext    block.Extent
	srcObj uint32
	srcOff block.LBA // sector offset within source object
}

// collectLocked relocates the live data of the victim into new GC
// objects and schedules the victim for deletion. The victim's header
// may need a backend fetch, which drops s.mu; the victim and the pass
// are revalidated after reacquisition (the gcBusy claim keeps passes
// single-flight, but seals, commits and lookups proceed meanwhile).
// Paced collections draw each batch's bytes from the WAF bucket first;
// a yield mid-victim is safe — already-copied pieces are live in their
// GC objects, the rest stay live in the victim, and the victim is only
// marked cleaned (entering the deferred-delete path) after its last
// piece relocated.
//
//lsvd:requires bs.mu
func (s *Store) collectLocked(seq uint32, paced bool) error {
	hdr, err := s.headerGCLocked(seq)
	if err != nil {
		return err
	}
	if s.aborting {
		return errGCAborted
	}
	victim := s.objects[seq]
	if victim == nil || s.cleaned[seq] {
		return nil
	}
	pieces := s.livePiecesLocked(victim, hdr)
	if s.cfg.DefragHoleSectors > 0 {
		pieces = s.plugHolesLocked(pieces, paced)
	}

	// Relocate in batches of at most BatchBytes.
	for len(pieces) > 0 {
		var take []gcPiece
		var bytes int64
		for len(pieces) > 0 && bytes < s.cfg.BatchBytes {
			take = append(take, pieces[0])
			bytes += pieces[0].ext.Bytes()
			pieces = pieces[1:]
		}
		if paced {
			if err := s.gcAwaitBudgetLocked(bytes); err != nil {
				return err
			}
			s.gcBudget -= bytes
		}
		if err := s.writeGCObjectLocked(take); err != nil {
			return err
		}
	}

	s.pending = append(s.pending, deferredDelete{Obj: victim.seq, GCSeq: s.nextSeq - 1})
	// The victim's contribution stays in the running counters until its
	// delete retires (deleteObject); utilizationLocked excludes cleaned
	// objects on the fly, so an abort or crash between here and the
	// delete cannot strand the accounting.
	s.cleaned[victim.seq] = true
	s.stats.gcVictims++
	if invariant.Enabled {
		var live, data uint64
		for _, o := range s.objects {
			if s.utilCounted(o) {
				live += uint64(o.liveSectors)
				data += uint64(o.dataSectors)
			}
		}
		invariant.Assertf(live == s.utilLive && data == s.utilData,
			"blockstore: utilization drift after collecting %d: counters %d/%d, objects %d/%d",
			victim.seq, s.utilLive, s.utilData, live, data)
	}
	return nil
}

// livePiecesLocked identifies the victim's still-live extents by
// intersecting its stored header with the object map (§3.5: "we
// retrieve the object header, which lists the live extents held in
// that object at the time of its creation; only these ranges need be
// examined").
//
//lsvd:requires bs.mu
func (s *Store) livePiecesLocked(victim *objInfo, hdr *hdrEntry) []gcPiece {
	var pieces []gcPiece
	for _, e := range hdr.extents {
		if e.SrcSeq == trimMarker {
			continue
		}
		ext := block.Extent{LBA: e.LBA, Sectors: e.Sectors}
		for _, run := range s.m.Lookup(ext) {
			if run.Present && run.Target.Obj == victim.seq {
				pieces = append(pieces, gcPiece{ext: run.Extent, srcObj: victim.seq, srcOff: run.Target.Off})
			}
		}
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].ext.LBA < pieces[j].ext.LBA })
	// Objects written without coalescing carry overlapping header
	// extents, so the same live run can be found more than once; clip
	// overlaps so each live sector is copied exactly once (duplicates
	// in a GC object would make it partially dead at birth and the
	// collector would chase its own tail).
	out := pieces[:0]
	var prevEnd block.LBA
	for _, p := range pieces {
		if len(out) > 0 && p.ext.LBA < prevEnd {
			if p.ext.End() <= prevEnd {
				continue // fully duplicated
			}
			d := prevEnd - p.ext.LBA
			p.ext.LBA += d
			p.ext.Sectors -= uint32(d)
			p.srcOff += d
		}
		out = append(out, p)
		prevEnd = p.ext.End()
	}
	return out
}

// plugHolesLocked adds small inter-piece gaps so that the relocated
// extents merge in the map, trading a little extra copying for a
// smaller map (§4.6 defragmentation). Unmapped gap portions are
// plugged with explicit zeros (semantically identical reads); mapped
// portions are copied from wherever they live. Total plugging per
// collection is budgeted to a fraction of the genuinely live bytes so
// the write-amplification cost stays small, as the paper reports;
// paced collections additionally cap plugging at the spare WAF budget
// beyond what the live bytes themselves will consume, so defrag is the
// first thing sacrificed when the bucket runs dry.
//
//lsvd:requires bs.mu
func (s *Store) plugHolesLocked(pieces []gcPiece, paced bool) []gcPiece {
	if len(pieces) < 2 {
		return pieces
	}
	var liveSectors uint64
	for _, p := range pieces {
		liveSectors += uint64(p.ext.Sectors)
	}
	budget := liveSectors / 4 // <=25% extra copy volume
	if paced && s.cfg.GCWAFTarget >= 0 {
		// All-unsigned: the bucket can be negative or smaller than the
		// live bytes, either way there is no spare for plugging.
		var spare uint64
		if b := s.gcBudget; b > 0 && uint64(b) > liveSectors*block.SectorSize {
			spare = (uint64(b) - liveSectors*block.SectorSize) / block.SectorSize
		}
		if spare < budget {
			budget = spare
		}
	}
	var plugged uint64

	out := make([]gcPiece, 0, len(pieces))
	out = append(out, pieces[0])
	for _, p := range pieces[1:] {
		prevEnd := out[len(out)-1].ext.End()
		if p.ext.LBA > prevEnd && uint32(p.ext.LBA-prevEnd) <= s.cfg.DefragHoleSectors {
			gap := block.Extent{LBA: prevEnd, Sectors: uint32(p.ext.LBA - prevEnd)}
			if plugged+uint64(gap.Sectors) <= budget {
				for _, run := range s.m.Lookup(gap) {
					if run.Present {
						out = append(out, gcPiece{ext: run.Extent, srcObj: run.Target.Obj, srcOff: run.Target.Off})
					} else {
						// Zero-fill: a fresh write of zeros.
						out = append(out, gcPiece{ext: run.Extent})
					}
				}
				plugged += uint64(gap.Sectors)
			}
		}
		out = append(out, p)
	}
	return out
}

// gcGateAcquire takes an upload-gate slot for GC backend I/O as a
// background participant: no guaranteed share, always yielding to
// foreground acquirers. Must be called WITHOUT s.mu held (the gate can
// block while foreground uploads drain). No-op without a gate
// (synchronous mode).
func (s *Store) gcGateAcquire() {
	if s.gate != nil {
		s.gate.AcquireBackground(s.gcGateID)
	}
}

func (s *Store) gcGateRelease() {
	if s.gate != nil {
		s.gate.ReleaseBackground(s.gcGateID)
	}
}

// writeGCObjectLocked reads the pieces (preferring the local cache,
// §3.5) and seals them into one GC object. Backend source reads drop
// s.mu — the sources are immutable objects, and installation is
// conditional on the map still pointing at the copied data, so
// concurrent seals/trims during the drop at worst make parts of the GC
// object dead at birth (accounted below). Backend I/O (source GETs and
// the PUT) holds a background gate slot, acquired during a lock drop so
// foreground lookups never wait behind the gate. The sequence number is
// taken only after the read phase, under the same continuous critical
// section as the PUT and install, exactly as before.
//
//lsvd:requires bs.mu
func (s *Store) writeGCObjectLocked(pieces []gcPiece) error {
	bufs := make([][]byte, len(pieces))
	for i, p := range pieces {
		data := make([]byte, p.ext.Bytes())
		if p.srcObj != 0 && (s.cfg.FetchFromCache == nil || !s.cfg.FetchFromCache(p.ext, data)) {
			name := s.name(p.srcObj)
			s.mu.Unlock()
			s.gcGateAcquire()
			got, err := s.cfg.Store.GetRange(s.ctx, name, p.srcOff.Bytes(), p.ext.Bytes())
			s.gcGateRelease()
			s.mu.Lock()
			if err != nil {
				return err
			}
			if s.aborting {
				return errGCAborted
			}
			copy(data, got)
		}
		bufs[i] = data
	}

	// Two conditions gate the seq-reservation critical section below,
	// and they must be satisfied simultaneously while never holding one
	// across a wait for the other:
	//
	//   - No checkpoint underway. ckptActive: a synchronous checkpoint
	//     dropped s.mu and relies on no sequence reservation happening
	//     meanwhile. ckptQueued: a checkpoint marker is pending in the
	//     upload pipeline, and a GC object sequenced ABOVE the marker
	//     must not enter its state snapshot — recovery's gap rule could
	//     delete the GC object (an uncommitted data object below it
	//     leaves a gap) while the recovered map still references it,
	//     after the checkpoint already released its victims.
	//   - A gate slot for the PUT, taken before reserving the sequence
	//     number: the acquire can block on foreground traffic and must
	//     not happen inside the critical section (or under mu at all).
	//     It must also not be HELD while waiting out a checkpoint: the
	//     marker only completes once the uploads ahead of it drain
	//     through this same gate.
	for {
		for s.ckptActive || s.ckptQueued {
			if s.aborting {
				return errGCAborted
			}
			s.commitCond.Wait()
		}
		if s.aborting {
			return errGCAborted
		}
		if s.gate == nil {
			break
		}
		s.mu.Unlock()
		s.gcGateAcquire()
		s.mu.Lock()
		if s.aborting {
			s.gcGateRelease()
			return errGCAborted
		}
		if !s.ckptActive && !s.ckptQueued {
			defer s.gcGateRelease()
			break
		}
		// A checkpoint slipped in while the gate acquire blocked: give
		// the slot back so the pipeline can drain, and wait it out.
		s.gcGateRelease()
	}

	exts := make([]journal.ExtentEntry, 0, len(pieces))
	offs := make([]int64, 0, len(pieces))
	seq := s.nextSeq
	var copied int64
	for i, p := range pieces {
		// srcObj 0 (a zero-fill plug of an unmapped gap) stays 0 in the
		// header: installObject fills only still-unmapped holes for it.
		// Installing zeros unconditionally would be wrong in both
		// directions of time — a client write that lands during this
		// function's lock drops, or one sitting in a lower-seq in-flight
		// object that replays before this GC object after a crash, must
		// not be shadowed by plug zeros.
		exts = append(exts, journal.ExtentEntry{LBA: p.ext.LBA, Sectors: p.ext.Sectors, SrcSeq: uint64(p.srcObj)})
		offs = append(offs, copied)
		copied += int64(len(bufs[i]))
	}

	// The pieces concatenated form the virtual payload; the slicer
	// walks them like the batch path walks its segments, emitting
	// zero-copy views.
	slices := func(vec [][]byte, srcOff, n int64) [][]byte {
		i := sort.Search(len(offs), func(i int) bool { return offs[i] > srcOff }) - 1
		for n > 0 {
			piece := bufs[i][srcOff-offs[i]:]
			if int64(len(piece)) > n {
				piece = piece[:n]
			}
			vec = append(vec, piece)
			srcOff += int64(len(piece))
			n -= int64(len(piece))
			i++
		}
		return vec
	}
	obj, info, mapped, err := s.buildObject(seq, journal.TypeGC, s.durableWriteSeq, exts, offs, slices)
	if err != nil {
		return err
	}
	//lsvd:ignore the GC PUT must complete inside the seq-reservation critical section under mu (see writeGCObjectLocked doc)
	if err := objstore.PutVec(s.ctx, s.cfg.Store, objName(s.cfg.Volume, seq), obj); err != nil {
		return err
	}
	s.stats.bytesPut += uint64(objstore.VecLen(obj))
	s.stats.gcBytesCopied += uint64(copied)
	s.installObject(info, mapped, nil)
	s.nextSeq++
	s.sinceCkpt++
	return nil
}

// deleteObject removes a backend object and its bookkeeping. Deleting
// an already-missing object succeeds — the orphan sweep may retry a
// deletion that raced with an earlier success.
func (s *Store) deleteObject(seq uint32) error {
	//lsvd:ignore deletion must be atomic with the object-table update under mu; GC is off the data path
	if err := s.cfg.Store.Delete(s.ctx, s.name(seq)); err != nil && !errors.Is(err, objstore.ErrNotFound) {
		return err
	}
	if o := s.objects[seq]; s.utilCounted(o) {
		invariant.Assertf(s.utilLive >= uint64(o.liveSectors) && s.utilData >= uint64(o.dataSectors),
			"blockstore: utilization underflow deleting object %d", seq)
		// An object's utilization contribution is removed only here, at
		// delete retirement — never when the GC merely marks it cleaned
		// (utilizationLocked excludes cleaned objects on the fly), so an
		// aborted pass or a crash before the delete cannot strand the
		// counters.
		s.utilLive -= uint64(o.liveSectors)
		s.utilData -= uint64(o.dataSectors)
	}
	delete(s.objects, seq)
	delete(s.hdrCache, seq)
	delete(s.cleaned, seq)
	s.stats.objectsDeleted++
	return nil
}
