package lsvd

// Fast-open benchmark (DESIGN.md §5h): crash-recovery open over a long
// uncheckpointed object suffix with the recovery fan-out on vs the
// serial baseline, plus foreground write-ack tail latency while
// background checkpoints run off-lock. Runs as a quick smoke test
// under `make check`; `make bench-open` sets LSVD_OPENBENCH_OUT to
// record BENCH_open.json for the perf trajectory.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"
	"time"

	"lsvd/internal/core"
	"lsvd/internal/objstore"
)

// slowStore adds a fixed latency to every backend GET-side op AND
// every PUT, modeling the S3 round-trip recovery and checkpointing
// pay per request (only ratios matter, as in slowGetStore).
type slowStore struct {
	ObjectStore
	delay time.Duration
}

func (s *slowStore) GetRange(ctx context.Context, name string, off, length int64) ([]byte, error) {
	time.Sleep(s.delay)
	return s.ObjectStore.GetRange(ctx, name, off, length)
}

func (s *slowStore) Put(ctx context.Context, name string, data []byte) error {
	time.Sleep(s.delay)
	return s.ObjectStore.Put(ctx, name, data)
}

type openBenchResult struct {
	Name            string  `json:"name"`
	OpenFanout      int     `json:"open_fanout,omitempty"`
	CheckpointEvery int     `json:"checkpoint_every,omitempty"`
	OpenMs          float64 `json:"open_ms,omitempty"`
	ReplayedObjects int     `json:"replayed_objects,omitempty"`
	RecoveryGETs    uint64  `json:"recovery_gets,omitempty"`
	AckP50Us        float64 `json:"ack_p50_us,omitempty"`
	AckP999Us       float64 `json:"ack_p999_us,omitempty"`
	Checkpoints     uint64  `json:"checkpoints,omitempty"`
	CkptStallUs     float64 `json:"ckpt_stall_us,omitempty"`
}

// buildOpenSuffix creates a volume whose backend holds one checkpoint
// (Create's) followed by nObjects data objects and no later
// checkpoint, then kills it: the next Open must replay the whole
// suffix. Returns the reusable options.
func buildOpenSuffix(t *testing.T, store ObjectStore, cache CacheDevice, nObjects int) core.Options {
	t.Helper()
	opts := core.Options{
		Volume: "openbench", Store: store, CacheDev: cache,
		VolBytes: 64 * MiB, BatchBytes: 64 * KiB,
		CheckpointEvery: 1 << 30, // no checkpoint may shorten the suffix
		UploadDepth:     4, DestageQueueDepth: 64,
	}
	d, err := core.Create(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 64*KiB)
	for i := 0; i < nObjects; i++ {
		chunk[0] = byte(i)
		if err := d.WriteAt(chunk, int64(i)*64*KiB); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	// Kill, not Close: a clean Close writes a final checkpoint, which
	// would leave nothing to replay.
	d.Kill()
	return opts
}

func percentileUs(sorted []time.Duration, p float64) float64 {
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Nanoseconds()) / 1e3
}

// TestOpenRecoveryBench measures (a) crash-recovery open time over a
// 256-object suffix with the serial baseline (OpenFanout 1) vs the
// bounded fan-out pool, asserting >=3x, and (b) foreground write-ack
// p999 with frequent background checkpoints vs none, asserting the
// off-lock checkpoint keeps the tail within 1.5x.
func TestOpenRecoveryBench(t *testing.T) {
	var results []openBenchResult

	// --- Part A: parallel recovery replay ---
	const nObjects = 256
	met := objstore.NewMetered(&slowStore{ObjectStore: MemStore(), delay: benchGetLatency})
	cache := MemCacheDevice(256 * MiB)
	opts := buildOpenSuffix(t, met, cache, nObjects)

	openNs := map[int]int64{} // fanout -> backend open ns
	for _, fanout := range []int{1, 8} {
		opts.OpenFanout = fanout
		d, err := core.Open(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		if st.Backend.RecoveredObjects != nObjects {
			t.Fatalf("fanout %d replayed %d objects, want %d",
				fanout, st.Backend.RecoveredObjects, nObjects)
		}
		openNs[fanout] = st.Backend.OpenNanos
		results = append(results, openBenchResult{
			Name: "open-256suffix", OpenFanout: fanout,
			OpenMs:          float64(st.Backend.OpenNanos) / 1e6,
			ReplayedObjects: st.Backend.RecoveredObjects,
			RecoveryGETs:    st.Backend.RecoveryGETs,
		})
		t.Logf("open-256suffix fanout=%d: %.1f ms, %d GETs",
			fanout, float64(st.Backend.OpenNanos)/1e6, st.Backend.RecoveryGETs)
		// Kill so the next Open replays the identical suffix.
		d.Kill()
	}
	if openNs[1] < 3*openNs[8] {
		t.Errorf("parallel open %.1f ms is not 3x faster than serial %.1f ms",
			float64(openNs[8])/1e6, float64(openNs[1])/1e6)
	}

	// --- Part B: write-ack tail latency under background checkpoints ---
	p999 := map[int]float64{} // CheckpointEvery -> ack p999 us
	for _, every := range []int{1 << 30, 4} {
		bopts := core.Options{
			Volume:   fmt.Sprintf("ckptbench-%d", every),
			Store:    objstore.NewMetered(&slowStore{ObjectStore: MemStore(), delay: benchGetLatency}),
			CacheDev: MemCacheDevice(256 * MiB),
			VolBytes: 64 * MiB, BatchBytes: 64 * KiB,
			// The queue must be able to absorb the write burst that
			// arrives while a checkpoint marker holds the commit walk
			// for its (off-lock) PUTs; 64 would bound the tail by
			// queue-full backpressure instead of the ack path.
			CheckpointEvery: every, UploadDepth: 4, DestageQueueDepth: 256,
		}
		d, err := core.Create(context.Background(), bopts)
		if err != nil {
			t.Fatal(err)
		}
		// Fragment the map first so checkpoint snapshots have real work.
		frag := make([]byte, 4096)
		for b := 0; b < 512; b++ {
			if err := d.WriteAt(frag, int64(b)*64*KiB); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Drain(); err != nil {
			t.Fatal(err)
		}

		const nWrites = 10000
		rng := rand.New(rand.NewSource(1))
		lat := make([]time.Duration, 0, nWrites)
		buf := make([]byte, 4096)
		for i := 0; i < nWrites; i++ {
			off := rng.Int63n(int64(32*MiB)/4096) * 4096
			s := time.Now()
			if err := d.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(s))
			// Pace below the simulated backend's destage bandwidth:
			// an unthrottled writer saturates the upload pipeline and
			// the tail then measures queue-full backpressure (a
			// throughput property) instead of the ack path this gate
			// is about.
			time.Sleep(50 * time.Microsecond)
		}
		if err := d.Drain(); err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		if every == 4 && st.Backend.Checkpoints < 10 {
			t.Fatalf("checkpoint run only checkpointed %d times", st.Backend.Checkpoints)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p999[every] = percentileUs(lat, 0.999)
		name := "ack-under-ckpt"
		if every == 1<<30 {
			name = "ack-no-ckpt"
		}
		results = append(results, openBenchResult{
			Name: name, CheckpointEvery: every,
			AckP50Us: percentileUs(lat, 0.50), AckP999Us: p999[every],
			Checkpoints: st.Backend.Checkpoints,
			CkptStallUs: float64(st.Backend.LastCkptStallNanos) / 1e3,
		})
		t.Logf("%s: p50 %.1f us, p999 %.1f us, %d checkpoints, last stall %.1f us",
			name, percentileUs(lat, 0.50), p999[every],
			st.Backend.Checkpoints, float64(st.Backend.LastCkptStallNanos)/1e3)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Off-lock checkpoints must not show up in the foreground tail. A
	// small absolute floor keeps scheduler jitter on sub-50us acks from
	// failing a comparison the checkpoint path had no part in.
	limit := 1.5 * p999[1<<30]
	if floor := 50.0; limit < floor {
		limit = floor
	}
	if p999[4] > limit {
		t.Errorf("ack p999 %.1f us under checkpoints exceeds 1.5x the %.1f us baseline",
			p999[4], p999[1<<30])
	}

	if out := os.Getenv("LSVD_OPENBENCH_OUT"); out != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
