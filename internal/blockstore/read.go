package blockstore

import (
	"fmt"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/journal"
)

// Lookup returns the block store's coverage of ext: present runs carry
// (object, sector-offset) targets, absent runs are uninitialized disk
// ranges that read as zeros (§3.2).
func (s *Store) Lookup(ext block.Extent) []extmap.Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Lookup(ext)
}

// ReadRun fetches the data for one present run returned by Lookup,
// using a single range GET.
func (s *Store) ReadRun(run extmap.Run) ([]byte, error) {
	if !run.Present {
		return nil, fmt.Errorf("blockstore: ReadRun on absent run %v", run.Extent)
	}
	s.mu.Lock()
	name := s.name(run.Target.Obj)
	s.mu.Unlock()
	data, err := s.cfg.Store.GetRange(s.ctx, name, run.Target.Off.Bytes(), run.Bytes())
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != run.Bytes() {
		return nil, fmt.Errorf("blockstore: short object read: %d of %d bytes", len(data), run.Bytes())
	}
	return data, nil
}

// Prefetched is extra data retrieved alongside a read miss, destined
// for the read cache.
type Prefetched struct {
	Ext  block.Extent
	Data []byte
}

// FetchRun fetches the data for run plus up to windowSectors of
// adjacent object data. Because the object stream is temporal,
// adjacency in the object means "written at the same time", so this is
// the paper's temporal prefetch (§3.2): the extras are whatever
// virtual-disk ranges were logged next to the requested data, verified
// still live in the map before being returned.
func (s *Store) FetchRun(run extmap.Run, windowSectors uint32) ([]byte, []Prefetched, error) {
	if windowSectors == 0 {
		data, err := s.ReadRun(run)
		return data, nil, err
	}
	s.mu.Lock()
	obj := s.objects[run.Target.Obj]
	name := s.name(run.Target.Obj)
	s.mu.Unlock()
	if obj == nil {
		data, err := s.ReadRun(run)
		return data, nil, err
	}

	// Clamp the fetch window to the object's data region.
	dataStart := block.LBA(obj.hdrSectors)
	dataEnd := dataStart + block.LBA(obj.dataSectors)
	lo := run.Target.Off
	hi := lo + block.LBA(run.Sectors) + block.LBA(windowSectors)
	if hi > dataEnd {
		hi = dataEnd
	}
	if lo < dataStart {
		lo = dataStart
	}
	raw, err := s.cfg.Store.GetRange(s.ctx, name, lo.Bytes(), (hi - lo).Bytes())
	if err != nil {
		return nil, nil, err
	}
	hi = lo + block.LBA(len(raw)>>block.SectorShift)

	reqOff := (run.Target.Off - lo).Bytes()
	if reqOff < 0 || reqOff+run.Bytes() > int64(len(raw)) {
		return nil, nil, fmt.Errorf("blockstore: prefetch window lost requested range")
	}
	reqData := raw[reqOff : reqOff+run.Bytes()]

	// Map the rest of the window back to vLBAs via the object header,
	// keeping only portions the map still assigns to this object.
	hdr, err := s.header(run.Target.Obj)
	if err != nil {
		// Prefetch is best-effort; the primary read still succeeds.
		return reqData, nil, nil
	}
	var extras []Prefetched
	cursor := dataStart
	s.mu.Lock()
	for _, e := range hdr.extents {
		if e.SrcSeq == trimMarker {
			continue
		}
		extOff := cursor
		cursor += block.LBA(e.Sectors)
		// Portion of this extent inside the fetched window.
		wLo := max(extOff, lo)
		wHi := min(cursor, hi)
		if wLo >= wHi {
			continue
		}
		vext := block.Extent{LBA: e.LBA + (wLo - extOff), Sectors: uint32(wHi - wLo)}
		// Skip the requested run itself.
		if vext.LBA >= run.LBA && vext.End() <= run.End() {
			continue
		}
		for _, live := range s.m.Lookup(vext) {
			if !live.Present || live.Target.Obj != run.Target.Obj {
				continue
			}
			off := (live.Target.Off - lo).Bytes()
			if off < 0 || off+live.Bytes() > int64(len(raw)) {
				continue
			}
			d := make([]byte, live.Bytes())
			copy(d, raw[off:])
			extras = append(extras, Prefetched{Ext: live.Extent, Data: d})
		}
	}
	s.mu.Unlock()
	return reqData, extras, nil
}

// header returns the cached or fetched extent header of an object.
func (s *Store) header(seq uint32) (*hdrEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.headerL(seq)
}

// headerL is header with s.mu held; the backend fetch happens under
// the lock, which is acceptable for the paper's synchronous prototype
// semantics (the GC and recovery paths that use it are stop-the-world
// anyway).
func (s *Store) headerL(seq uint32) (*hdrEntry, error) {
	if h, ok := s.hdrCache[seq]; ok {
		return h, nil
	}
	h, err := fetchHeader(s, s.name(seq))
	if err != nil {
		return nil, err
	}
	s.hdrCache[seq] = h
	s.pruneHdrCache()
	return h, nil
}

func fetchHeader(s *Store, name string) (*hdrEntry, error) {
	probe, err := s.cfg.Store.GetRange(s.ctx, name, 0, block.BlockSize)
	if err != nil {
		return nil, err
	}
	need := journal.HeaderSize(int(headerExtentCount(probe)))
	need = (need + block.SectorSize - 1) &^ (block.SectorSize - 1)
	buf := probe
	if need > len(probe) {
		if buf, err = s.cfg.Store.GetRange(s.ctx, name, 0, int64(need)); err != nil {
			return nil, err
		}
	}
	hdr, _, err := journal.DecodeHeader(buf)
	if err != nil {
		return nil, fmt.Errorf("blockstore: header of %s unreadable: %w", name, err)
	}
	hs := journal.HeaderSize(len(hdr.Extents))
	hs = (hs + block.SectorSize - 1) &^ (block.SectorSize - 1)
	return &hdrEntry{extents: hdr.Extents, hdrSectors: uint32(hs / block.SectorSize)}, nil
}

// headerExtentCount peeks the extent count field of an encoded header.
func headerExtentCount(buf []byte) uint32 {
	if len(buf) < 44 {
		return 0
	}
	return uint32(buf[40]) | uint32(buf[41])<<8 | uint32(buf[42])<<16 | uint32(buf[43])<<24
}
