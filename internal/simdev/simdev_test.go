package simdev

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"lsvd/internal/iomodel"
)

func TestMemReadWriteRoundTrip(t *testing.T) {
	d := NewMem(1 << 20)
	data := make([]byte, 12345)
	rand.New(rand.NewSource(1)).Read(data)
	if err := d.WriteAt(data, 777); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 777); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestMemUnwrittenReadsZero(t *testing.T) {
	d := NewMem(1 << 20)
	got := make([]byte, 4096)
	got[0] = 0xFF
	if err := d.ReadAt(got, 65536); err != nil {
		t.Fatal(err)
	}
	if !allZero(got) {
		t.Fatal("unwritten area not zero")
	}
}

func TestMemBoundsChecked(t *testing.T) {
	d := NewMem(4096)
	if err := d.WriteAt(make([]byte, 8192), 0); err == nil {
		t.Fatal("oversized write accepted")
	}
	if err := d.ReadAt(make([]byte, 10), 4090); err == nil {
		t.Fatal("over-the-end read accepted")
	}
	if err := d.ReadAt(make([]byte, 10), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestMemZeroPageElision(t *testing.T) {
	d := NewMem(1 << 30)
	zeros := make([]byte, 1<<20)
	for off := int64(0); off < 1<<26; off += int64(len(zeros)) {
		if err := d.WriteAt(zeros, off); err != nil {
			t.Fatal(err)
		}
	}
	if n := d.PagesInUse(); n != 0 {
		t.Fatalf("zero writes materialized %d pages", n)
	}
	// Non-zero then overwrite with zeros frees the page.
	if err := d.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if d.PagesInUse() != 1 {
		t.Fatal("non-zero write did not materialize a page")
	}
	if err := d.WriteAt(zeros[:pageSize], 0); err != nil {
		t.Fatal(err)
	}
	if d.PagesInUse() != 0 {
		t.Fatal("zeroed page not released")
	}
}

func TestMemCrashLosesUnflushedWrites(t *testing.T) {
	d := NewMem(1 << 20)
	one := bytes.Repeat([]byte{1}, pageSize)
	two := bytes.Repeat([]byte{2}, pageSize)
	if err := d.WriteAt(one, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(two, 0); err != nil {
		t.Fatal(err)
	}
	if d.DirtyPages() != 1 {
		t.Fatalf("DirtyPages=%d", d.DirtyPages())
	}
	d.Crash(1.0, rand.New(rand.NewSource(1)))
	got := make([]byte, pageSize)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, one) {
		t.Fatal("crash did not roll back to flushed content")
	}
	if d.DirtyPages() != 0 {
		t.Fatal("dirty state survives crash")
	}
}

func TestMemCrashKeepsFlushedWrites(t *testing.T) {
	d := NewMem(1 << 20)
	one := bytes.Repeat([]byte{7}, pageSize)
	if err := d.WriteAt(one, pageSize); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	d.Crash(1.0, rand.New(rand.NewSource(1)))
	got := make([]byte, pageSize)
	if err := d.ReadAt(got, pageSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, one) {
		t.Fatal("flushed write lost in crash")
	}
}

func TestMemCrashPartialLoss(t *testing.T) {
	d := NewMem(16 << 20)
	for i := int64(0); i < 100; i++ {
		if err := d.WriteAt(bytes.Repeat([]byte{byte(i + 1)}, pageSize), i*pageSize); err != nil {
			t.Fatal(err)
		}
	}
	d.Crash(0.5, rand.New(rand.NewSource(42)))
	kept, lost := 0, 0
	buf := make([]byte, pageSize)
	for i := int64(0); i < 100; i++ {
		if err := d.ReadAt(buf, i*pageSize); err != nil {
			t.Fatal(err)
		}
		if buf[0] == byte(i+1) {
			kept++
		} else if buf[0] == 0 {
			lost++
		} else {
			t.Fatalf("page %d has foreign content %d", i, buf[0])
		}
	}
	if kept+lost != 100 || kept == 0 || lost == 0 {
		t.Fatalf("kept=%d lost=%d; expected a mix", kept, lost)
	}
}

func TestMemDiscard(t *testing.T) {
	d := NewMem(1 << 20)
	if err := d.WriteAt([]byte{9}, 5); err != nil {
		t.Fatal(err)
	}
	d.Discard()
	got := make([]byte, 1)
	if err := d.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("discard left data behind")
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	d, err := OpenFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Size() != 1<<20 {
		t.Fatalf("size %d", d.Size())
	}
	data := []byte("hello block device")
	if err := d.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file round trip mismatch")
	}
	st, _ := os.Stat(path)
	if st.Size() != 1<<20 {
		t.Fatalf("file size %d", st.Size())
	}
}

func TestMeteredCountsOps(t *testing.T) {
	d := NewMetered(NewMem(1<<24), iomodel.NVMeP3700)
	buf := make([]byte, 4096)
	// Three sequential writes merge into one effective op.
	for i := int64(0); i < 3; i++ {
		if err := d.WriteAt(buf, i*4096); err != nil {
			t.Fatal(err)
		}
	}
	// A distant write starts a new run.
	if err := d.WriteAt(buf, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	c := d.Meter.Snapshot()
	if c.WriteOps != 4 || c.WriteEffOps != 2 || c.WriteBytes != 4*4096 || c.Flushes != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestMeteredElapsedBounds(t *testing.T) {
	p := iomodel.NVMeP3700
	// 90K random 4K writes at the device's rated IOPS is ~1 s.
	c := iomodel.Counters{WriteEffOps: 90_000, WriteBytes: 90_000 * 4096}
	e := iomodel.Elapsed(p, c, 32)
	if e.Seconds() < 0.9 || e.Seconds() > 1.1 {
		t.Fatalf("90K 4K writes modeled at %v, want ~1s", e)
	}
	// 1.9 GB sequential (one effective op per 512K) is ~1 s bandwidth-bound.
	c = iomodel.Counters{WriteEffOps: 3800, WriteBytes: 1_900_000_000}
	e = iomodel.Elapsed(p, c, 32)
	if e.Seconds() < 0.9 || e.Seconds() > 1.1 {
		t.Fatalf("1.9GB sequential modeled at %v, want ~1s", e)
	}
	// Low queue depth is latency-bound: 1000 ops at QD1 ~ 64ms.
	c = iomodel.Counters{WriteEffOps: 1000, WriteBytes: 1000 * 4096}
	e = iomodel.Elapsed(p, c, 1)
	if e < 50*1e6 || e > 80*1e6 {
		t.Fatalf("QD1 writes modeled at %v", e)
	}
}

func TestSizeHistogram(t *testing.T) {
	h := iomodel.NewSizeHistogram()
	h.Record(4096)
	h.Record(4096)
	h.Record(1 << 20)
	rows := h.Buckets()
	if len(rows) != 2 || rows[0].Low != 4096 || rows[0].Count != 2 || rows[1].Low != 1<<20 {
		t.Fatalf("rows %+v", rows)
	}
	h2 := iomodel.NewSizeHistogram()
	h2.Record(4096)
	h.Merge(h2)
	if h.Buckets()[0].Count != 3 {
		t.Fatal("merge failed")
	}
}

func TestCountersArithmetic(t *testing.T) {
	a := iomodel.Counters{ReadOps: 10, WriteOps: 20, ReadBytes: 100, WriteBytes: 200, Flushes: 1}
	b := iomodel.Counters{ReadOps: 4, WriteOps: 5, ReadBytes: 40, WriteBytes: 50}
	d := a.Sub(b)
	if d.ReadOps != 6 || d.WriteOps != 15 || d.ReadBytes != 60 || d.WriteBytes != 150 || d.Flushes != 1 {
		t.Fatalf("sub %+v", d)
	}
	s := b.Add(d)
	if s != a {
		t.Fatalf("add %+v != %+v", s, a)
	}
}

func TestConcurrentMemAccess(t *testing.T) {
	d := NewMem(32 << 20)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			buf := bytes.Repeat([]byte{byte(g + 1)}, 4096)
			rd := make([]byte, 4096)
			for i := 0; i < 200; i++ {
				off := int64(g)*(4<<20) + int64(i%64)*4096
				if err := d.WriteAt(buf, off); err != nil {
					done <- err
					return
				}
				if err := d.ReadAt(rd, off); err != nil {
					done <- err
					return
				}
				if rd[0] != byte(g+1) {
					done <- os.ErrInvalid
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkMemWrite4K(b *testing.B) {
	d := NewMem(1 << 30)
	buf := bytes.Repeat([]byte{0xA5}, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if err := d.WriteAt(buf, int64(i%(1<<18))*4096); err != nil {
			b.Fatal(err)
		}
	}
}
