package blockstore

import (
	"errors"

	"lsvd/internal/invariant"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
)

// checkpoint payload: the serialized object map, the object table,
// deferred deletes, the durable write watermark and a pointer to the
// previous checkpoint (for snapshot mounts that need an older one).
type checkpointPayload struct {
	prevCkpt        uint32
	durableWriteSeq uint64
	nextSeq         uint32
	objects         []objInfo
	deferred        []deferredDelete
	mapBytes        []byte
}

func (s *Store) encodeCheckpoint() ([]byte, error) {
	mapBytes, err := s.m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var w binWriter
	w.u32(s.lastCkpt)
	w.u64(s.durableWriteSeq)
	w.u32(s.nextSeq)
	w.u32(uint32(len(s.objects)))
	for _, o := range s.objects {
		w.u32(o.seq)
		w.u32(uint32(o.typ))
		w.u64(uint64(o.totalBytes))
		w.u32(o.hdrSectors)
		w.u32(o.dataSectors)
		w.u32(o.liveSectors)
		w.u64(o.writeSeq)
	}
	deferred := append(append([]deferredDelete{}, s.deferred...), s.pending...)
	w.u32(uint32(len(deferred)))
	for _, d := range deferred {
		w.u32(d.Obj)
		w.u32(d.GCSeq)
	}
	w.bytes(mapBytes)
	return w.buf, nil
}

func decodeCheckpoint(data []byte) (*checkpointPayload, error) {
	r := binReader{buf: data}
	p := &checkpointPayload{}
	p.prevCkpt = r.u32()
	p.durableWriteSeq = r.u64()
	p.nextSeq = r.u32()
	nObj := int(r.u32())
	for i := 0; i < nObj && r.err == nil; i++ {
		o := objInfo{}
		o.seq = r.u32()
		o.typ = journal.Type(r.u32())
		o.totalBytes = int64(r.u64())
		o.hdrSectors = r.u32()
		o.dataSectors = r.u32()
		o.liveSectors = r.u32()
		o.writeSeq = r.u64()
		p.objects = append(p.objects, o)
	}
	nDef := int(r.u32())
	for i := 0; i < nDef && r.err == nil; i++ {
		d := deferredDelete{Obj: r.u32(), GCSeq: r.u32()}
		p.deferred = append(p.deferred, d)
	}
	p.mapBytes = r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}

// Checkpoint writes the volume's map and metadata as a numbered object
// in the stream (§3.3), updates the superblock pointer, and releases
// object deletions that were waiting for a checkpoint.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	// A checkpoint must never record a nextSeq beyond an uncommitted
	// object (recovery replay only covers seqs after the checkpoint),
	// so drain the upload pipeline first.
	if s.cfg.UploadDepth > 0 {
		for _, inf := range s.inflight {
			if inf.done && inf.err != nil {
				inf.attempts = 0
			}
		}
		s.resubmitFailedLocked()
		if err := s.waitInflightLocked(); err != nil {
			return err
		}
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if err := s.sweepOrphansLocked(); err != nil {
		return err
	}
	payload, err := s.encodeCheckpoint()
	if err != nil {
		return err
	}
	seq := s.nextSeq
	h := &journal.Header{Type: journal.TypeCheckpoint, Seq: uint64(seq), WriteSeq: s.durableWriteSeq, DataLen: uint64(len(payload))}
	rec, err := journal.EncodeSectorHeader(h, payload)
	if err != nil {
		return err
	}
	//lsvd:ignore the checkpoint PUT must be atomic with the seq reservation and map snapshot under mu; checkpoints are rare control-plane I/O
	if err := s.cfg.Store.Put(s.ctx, objName(s.cfg.Volume, seq), rec); err != nil {
		return err
	}
	s.objects[seq] = &objInfo{seq: seq, typ: journal.TypeCheckpoint, totalBytes: int64(len(rec))}
	prevCkpt := s.lastCkpt
	s.lastCkpt = seq
	s.nextSeq++
	s.sinceCkpt = 0
	s.stats.checkpoints++
	if err := s.writeSuper(); err != nil {
		// Roll back the pointer: the super still names the old
		// checkpoint, which remains valid.
		s.lastCkpt = prevCkpt
		return err
	}
	// GC deletions deferred to "after the next checkpoint" (§3.3) can
	// now proceed, subject to snapshot deferral (§3.6).
	pending := s.pending
	s.pending = nil
	for _, d := range pending {
		if err := s.completeDelete(d); err != nil {
			// Deletion is space reclaim, not correctness: a transient
			// Delete failure re-defers the object to the next
			// checkpoint instead of failing this one.
			s.pending = append(s.pending, d)
		}
	}
	return nil
}

// completeDelete deletes a cleaned object unless a snapshot pins it,
// in which case it joins the persistent deferred list.
func (s *Store) completeDelete(d deferredDelete) error {
	for _, sn := range s.snapshots {
		if sn.Seq >= d.Obj && sn.Seq < d.GCSeq {
			s.deferred = append(s.deferred, d)
			return nil
		}
	}
	return s.deleteObject(d.Obj)
}

// deleteObject removes a backend object and its bookkeeping. Deleting
// an already-missing object succeeds — the orphan sweep may retry a
// deletion that raced with an earlier success.
func (s *Store) deleteObject(seq uint32) error {
	//lsvd:ignore deletion must be atomic with the object-table update under mu; GC is off the data path
	if err := s.cfg.Store.Delete(s.ctx, s.name(seq)); err != nil && !errors.Is(err, objstore.ErrNotFound) {
		return err
	}
	if o := s.objects[seq]; s.utilCounted(o) {
		invariant.Assertf(s.utilLive >= uint64(o.liveSectors) && s.utilData >= uint64(o.dataSectors),
			"blockstore: utilization underflow deleting object %d", seq)
		// An object's utilization contribution is removed only here, at
		// delete retirement — never when the GC merely marks it cleaned
		// (utilizationLocked excludes cleaned objects on the fly), so an
		// aborted pass or a crash before the delete cannot strand the
		// counters.
		s.utilLive -= uint64(o.liveSectors)
		s.utilData -= uint64(o.dataSectors)
	}
	delete(s.objects, seq)
	delete(s.hdrCache, seq)
	delete(s.cleaned, seq)
	s.stats.objectsDeleted++
	return nil
}
