package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"lsvd/internal/block"
)

// reseal recomputes the record CRC after a test mutated header fields,
// so the corruption under test is the mutated field itself rather than
// a CRC mismatch.
func reseal(rec []byte, hdrLen int, data []byte) {
	le := binary.LittleEndian
	le.PutUint32(rec[crcOffset:], 0)
	crc := crc32.Update(0, castagnoli, rec[:hdrLen])
	crc = crc32.Update(crc, castagnoli, data)
	le.PutUint32(rec[crcOffset:], crc)
}

// A DataLen larger than the buffer must be rejected before any
// conversion or slicing: a value above MaxInt64 wraps int(DataLen)
// negative, which would slip past a post-conversion total check and
// panic (or alias the header as data). The CRC is resealed so only the
// length bound can reject the record.
func TestDecodeHostileDataLen(t *testing.T) {
	data := bytes.Repeat([]byte{0xd7}, 2*block.SectorSize)
	h := &Header{
		Type: TypeData, Seq: 3, WriteSeq: 11, DataLen: uint64(len(data)),
		Extents: []ExtentEntry{{LBA: 40, Sectors: 2, SrcSeq: 3}},
	}
	for _, hostile := range []uint64{
		uint64(len(data)) + 1, // just past the buffer
		1 << 40,               // far past the buffer
		1 << 63,               // wraps int() negative
		^uint64(0),            // -1 as int()
	} {
		rec, err := EncodeSectorHeader(h, data)
		if err != nil {
			t.Fatal(err)
		}
		_, hdrLen, err := DecodeHeader(rec)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(rec[32:], hostile)
		reseal(rec, hdrLen, data)
		if _, _, _, err := Decode(rec, false); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DataLen=%d: Decode returned %v, want ErrCorrupt", hostile, err)
		}
	}
}

// Truncating a two-record object at every byte offset must never
// panic, never yield bytes past the buffer, and must flip from error
// to success exactly at each record boundary — the property backend
// recovery's torn-PUT handling (§3.3) rests on.
func TestDecodeTruncationEveryOffset(t *testing.T) {
	d1 := bytes.Repeat([]byte{0x11}, 3*block.SectorSize)
	h1 := &Header{
		Type: TypeData, Seq: 1, WriteSeq: 5, DataLen: uint64(len(d1)),
		Extents: []ExtentEntry{{LBA: 0, Sectors: 3, SrcSeq: 1}},
	}
	rec1, err := EncodeSectorHeader(h1, d1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := bytes.Repeat([]byte{0x22}, block.SectorSize)
	h2 := &Header{
		Type: TypeData, Seq: 2, WriteSeq: 6, DataLen: uint64(len(d2)),
		Extents: []ExtentEntry{{LBA: 9, Sectors: 1, SrcSeq: 2}},
	}
	rec2, err := EncodeSectorHeader(h2, d2)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([]byte{}, rec1...), rec2...)

	for n := 0; n <= len(full); n++ {
		buf := full[:n]
		h, data, total, err := Decode(buf, false)
		if n < len(rec1) {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated to %d: Decode returned %v, want ErrCorrupt", n, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("truncated to %d: first record failed: %v", n, err)
		}
		if total != len(rec1) || h.Seq != h1.Seq || !bytes.Equal(data, d1) {
			t.Fatalf("truncated to %d: first record decoded wrong (total %d, seq %d)", n, total, h.Seq)
		}
		h, data, _, err = Decode(buf[total:], false)
		if n < len(full) {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated to %d: second record returned %v, want ErrCorrupt", n, err)
			}
			continue
		}
		if err != nil || h.Seq != h2.Seq || !bytes.Equal(data, d2) {
			t.Fatalf("full object: second record decoded wrong: %v", err)
		}
	}
}
