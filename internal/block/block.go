// Package block defines the fundamental units shared by every LSVD
// layer: sectors, extents of the virtual disk address space, and the
// helpers for validating and manipulating them.
//
// All addresses in LSVD are expressed in 512-byte sectors, matching the
// convention of the block layer the paper's prototype plugs into. Data
// buffers are always whole sectors.
package block

import (
	"fmt"
)

const (
	// SectorSize is the unit of addressing: 512 bytes, the traditional
	// logical block size presented by SCSI/NVMe devices.
	SectorSize = 512

	// SectorShift converts between bytes and sectors.
	SectorShift = 9

	// BlockSize is the 4 KiB alignment unit used by the cache log
	// (paper §3.1: "using 4 KB alignment").
	BlockSize = 4096

	// SectorsPerBlock is the number of sectors in one 4 KiB block.
	SectorsPerBlock = BlockSize / SectorSize
)

// Byte-size constants, handy throughout the tree.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
	TiB = int64(1) << 40
)

// LBA is a logical block address in 512-byte sectors. Depending on
// context it addresses the virtual disk (vLBA) or a physical device
// (pLBA); the type is shared because extents on both sides are
// manipulated with the same machinery.
type LBA uint64

// Bytes returns the byte offset of the LBA.
//
//lsvd:ignore sanctioned conversion point: LBAs are bounded by the device size at admission
func (l LBA) Bytes() int64 { return int64(l) << SectorShift }

// LBAFromBytes converts a byte offset to sectors; off must be
// sector-aligned.
func LBAFromBytes(off int64) LBA {
	if off%SectorSize != 0 {
		panic(fmt.Sprintf("block: unaligned byte offset %d", off))
	}
	return LBA(off >> SectorShift)
}

// Extent is a contiguous run of sectors in some address space.
type Extent struct {
	LBA     LBA    // first sector
	Sectors uint32 // length in sectors; never zero for a valid extent
}

// End returns the first LBA past the extent.
func (e Extent) End() LBA { return e.LBA + LBA(e.Sectors) }

// Bytes returns the extent length in bytes.
func (e Extent) Bytes() int64 { return int64(e.Sectors) << SectorShift }

// Empty reports whether the extent covers no sectors.
func (e Extent) Empty() bool { return e.Sectors == 0 }

// Contains reports whether lba falls inside the extent.
func (e Extent) Contains(lba LBA) bool { return lba >= e.LBA && lba < e.End() }

// Overlaps reports whether the two extents share any sector.
func (e Extent) Overlaps(o Extent) bool {
	return e.LBA < o.End() && o.LBA < e.End()
}

// Intersect returns the overlapping portion of two extents; the second
// result is false when they are disjoint.
func (e Extent) Intersect(o Extent) (Extent, bool) {
	lo := max(e.LBA, o.LBA)
	hi := min(e.End(), o.End())
	if lo >= hi {
		return Extent{}, false
	}
	return Extent{LBA: lo, Sectors: uint32(hi - lo)}, true
}

// Adjacent reports whether o begins exactly where e ends.
func (e Extent) Adjacent(o Extent) bool { return e.End() == o.LBA }

func (e Extent) String() string {
	return fmt.Sprintf("[%d+%d)", e.LBA, e.Sectors)
}

// CheckIO validates an I/O against a disk of size sectors: the buffer
// must be whole sectors and the extent in range.
func CheckIO(diskSectors LBA, lba LBA, buf []byte) error {
	if len(buf)%SectorSize != 0 {
		return fmt.Errorf("block: buffer length %d not sector aligned", len(buf))
	}
	n := LBA(len(buf) / SectorSize)
	if lba+n < lba || lba+n > diskSectors {
		return fmt.Errorf("block: I/O [%d+%d) outside device of %d sectors", lba, n, diskSectors)
	}
	return nil
}
