package objstore

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var ctx = context.Background()

// storeContract exercises the Store interface contract on any
// implementation.
func storeContract(t *testing.T, s Store) {
	t.Helper()
	data := []byte("the quick brown fox jumps over the lazy dog")
	if err := s.Put(ctx, "vol.00000001", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "vol.00000001")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get: %v %q", err, got)
	}
	// Range within the object.
	got, err = s.GetRange(ctx, "vol.00000001", 4, 5)
	if err != nil || string(got) != "quick" {
		t.Fatalf("range: %v %q", err, got)
	}
	// Range running past the end returns the available suffix.
	got, err = s.GetRange(ctx, "vol.00000001", int64(len(data)-3), 100)
	if err != nil || string(got) != "dog" {
		t.Fatalf("tail range: %v %q", err, got)
	}
	// length -1 reads to the end.
	got, err = s.GetRange(ctx, "vol.00000001", 10, -1)
	if err != nil || !bytes.Equal(got, data[10:]) {
		t.Fatalf("open range: %v %q", err, got)
	}
	// Range starting exactly at the object boundary is empty, not an
	// error (recovery probes object tails this way).
	got, err = s.GetRange(ctx, "vol.00000001", int64(len(data)), 8)
	if err != nil || len(got) != 0 {
		t.Fatalf("boundary range: %v %q", err, got)
	}
	// Range ending exactly at the boundary returns the full run.
	got, err = s.GetRange(ctx, "vol.00000001", int64(len(data)-3), 3)
	if err != nil || string(got) != "dog" {
		t.Fatalf("exact tail range: %v %q", err, got)
	}
	// Offset past end is an error, and a classified one.
	if _, err := s.GetRange(ctx, "vol.00000001", int64(len(data)+1), 1); !errors.Is(err, ErrBadRange) {
		t.Fatalf("offset past end: %v", err)
	}
	// Size.
	if n, err := s.Size(ctx, "vol.00000001"); err != nil || n != int64(len(data)) {
		t.Fatalf("size: %v %d", err, n)
	}
	// Missing objects.
	if _, err := s.Get(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing get: %v", err)
	}
	if err := s.Delete(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing delete: %v", err)
	}
	// Overwrite (superblock case).
	if err := s.Put(ctx, "vol.00000001", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(ctx, "vol.00000001"); string(got) != "v2" {
		t.Fatalf("overwrite: %q", got)
	}
	// List with prefix, sorted.
	for _, name := range []string{"vol.00000003", "vol.00000002", "other.1"} {
		if err := s.Put(ctx, name, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List(ctx, "vol.")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"vol.00000001", "vol.00000002", "vol.00000003"}
	if len(names) != 3 {
		t.Fatalf("list: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("list[%d]=%q want %q", i, names[i], want[i])
		}
	}
	// Delete then gone.
	if err := s.Delete(ctx, "vol.00000002"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "vol.00000002"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted object still present")
	}
}

func TestMemContract(t *testing.T)  { storeContract(t, NewMem()) }
func TestSlimContract(t *testing.T) { storeContract(t, NewMemSlim()) }
func TestDirContract(t *testing.T) {
	s, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)
}
func TestMeteredContract(t *testing.T) { storeContract(t, NewMetered(NewMem())) }
func TestFaultyContract(t *testing.T)  { storeContract(t, NewFaulty(NewMem())) }
func TestRetrierContract(t *testing.T) { storeContract(t, NewRetrier(NewMem(), RetryPolicy{})) }

// The composed stack the torture harness uses: a Retrier over a Faulty
// store injecting failures on a third of all operations. With a
// 16-attempt budget the contract must pass as if the store were
// healthy.
func TestRetrierOverFaultyContract(t *testing.T) {
	faulty := NewFaulty(NewMem())
	faulty.Arm(FaultConfig{Seed: 42, Rates: UniformRates(0.33)})
	r := NewRetrier(faulty, RetryPolicy{
		MaxAttempts: 16, BaseDelay: 10 * time.Microsecond, MaxDelay: 100 * time.Microsecond,
	})
	storeContract(t, r)
	if faulty.InjectedFaults() == 0 {
		t.Fatal("fault regime never fired; the test proves nothing")
	}
	if r.Retries() == 0 {
		t.Fatal("retrier absorbed no failures")
	}
}

func TestSlimZeroTail(t *testing.T) {
	s := NewMemSlim()
	// 8 MiB object: small header of non-zero bytes then zeros.
	obj := make([]byte, 8<<20)
	copy(obj, []byte("HEADERDATA"))
	if err := s.Put(ctx, "big", obj); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "big")
	if err != nil || len(got) != len(obj) {
		t.Fatalf("get: %v len=%d", err, len(got))
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("slim store corrupted object")
	}
	// Range in the zero tail.
	tail, err := s.GetRange(ctx, "big", 4<<20, 4096)
	if err != nil || len(tail) != 4096 {
		t.Fatal(err)
	}
	for _, b := range tail {
		if b != 0 {
			t.Fatal("zero tail not zero")
		}
	}
	if n, _ := s.Size(ctx, "big"); n != 8<<20 {
		t.Fatalf("size %d", n)
	}
}

func TestSlimNonZeroTailPreserved(t *testing.T) {
	s := NewMemSlim()
	obj := make([]byte, 4<<20)
	obj[len(obj)-1] = 0x42 // non-zero at the very end
	rand.New(rand.NewSource(3)).Read(obj[:1024])
	if err := s.Put(ctx, "x", obj); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(ctx, "x")
	if !bytes.Equal(got, obj) {
		t.Fatal("non-zero tail lost")
	}
}

func TestDirNameValidation(t *testing.T) {
	s, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"../escape", "/abs", "a/../../b", "."} {
		if err := s.Put(ctx, bad, []byte("x")); err == nil {
			t.Fatalf("name %q accepted", bad)
		}
	}
	// Subdirectories are fine.
	if err := s.Put(ctx, "vol/sub/obj.1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	names, err := s.List(ctx, "vol/")
	if err != nil || len(names) != 1 || names[0] != "vol/sub/obj.1" {
		t.Fatalf("list: %v %v", names, err)
	}
}

// TestDirTmpNaming covers the temp-file bugs: an object legitimately
// named "*.tmp" must be storable and listable (the old List filter hid
// it), abandoned staging files must stay invisible, and the reserved
// "#tmp#" prefix is rejected as an object name so staging files can
// never collide with a real object.
func TestDirTmpNaming(t *testing.T) {
	root := t.TempDir()
	s, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "vol.00000001.tmp", []byte("legit")); err != nil {
		t.Fatal(err)
	}
	names, err := s.List(ctx, "vol.")
	if err != nil || len(names) != 1 || names[0] != "vol.00000001.tmp" {
		t.Fatalf(".tmp object hidden: %v %v", names, err)
	}
	// An abandoned staging file (crash between create and rename) must
	// not surface as an object.
	if err := os.WriteFile(filepath.Join(root, "#tmp#999.1"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err = s.List(ctx, "")
	if err != nil || len(names) != 1 {
		t.Fatalf("staging file listed: %v %v", names, err)
	}
	// The staging prefix is not a valid object name anywhere in a path.
	for _, bad := range []string{"#tmp#1", "vol/#tmp#x", "#tmp#"} {
		if err := s.Put(ctx, bad, []byte("x")); !errors.Is(err, ErrBadName) {
			t.Fatalf("reserved name %q: %v", bad, err)
		}
	}
}

func TestDirNoSync(t *testing.T) {
	s, err := NewDirNoSync(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)
}

func TestMeteredCounts(t *testing.T) {
	s := NewMetered(NewMem())
	_ = s.Put(ctx, "a", make([]byte, 100))
	_, _ = s.Get(ctx, "a")
	_, _ = s.GetRange(ctx, "a", 0, 10)
	_ = s.Delete(ctx, "a")
	_, _ = s.List(ctx, "")
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.GetRanges != 1 || st.Deletes != 1 || st.Lists != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesPut != 100 || st.BytesGot != 110 {
		t.Fatalf("bytes %+v", st)
	}
	if s.ModeledTime(1) <= 0 {
		t.Fatal("modeled time zero")
	}
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Fatal("reset failed")
	}
}

func TestFaultyInjection(t *testing.T) {
	s := NewFaulty(NewMem())
	s.FailPut("victim")
	if err := s.Put(ctx, "ok", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "victim", []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	// One-shot: retry succeeds.
	if err := s.Put(ctx, "victim", []byte("x")); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	s.FailEveryNth(2)
	var fails int
	for i := 0; i < 10; i++ {
		if err := s.Put(ctx, "n", []byte("x")); err != nil {
			fails++
		}
	}
	if fails != 5 {
		t.Fatalf("fails=%d want 5", fails)
	}
}

// TestFaultyLatencyCanceled pins the ctxSleep behavior: a canceled
// context cuts injected latency short instead of sleeping it out, so
// shutdown paths are not held hostage by the fault injector.
func TestFaultyLatencyCanceled(t *testing.T) {
	s := NewFaulty(NewMem())
	s.Arm(FaultConfig{Seed: 1, Latency: 30 * time.Second})
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := s.Put(cctx, "k", []byte("x"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("canceled Put slept %v through injected latency", d)
	}
	if _, err := s.Get(cctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from Get, got %v", err)
	}
}

func TestConcurrentMem(t *testing.T) {
	s := NewMem()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			name := string(rune('a' + g))
			for i := 0; i < 100; i++ {
				if err := s.Put(ctx, name, []byte{byte(i)}); err != nil {
					done <- err
					return
				}
				if _, err := s.Get(ctx, name); err != nil {
					done <- err
					return
				}
				if _, err := s.List(ctx, ""); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
