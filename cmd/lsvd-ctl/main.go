// Command lsvd-ctl administers LSVD volumes on an object store
// directory: create, info, snapshot, clone, gc, checkpoint, fsck.
//
//	lsvd-ctl -store DIR create VOLUME SIZE
//	lsvd-ctl -store DIR info VOLUME
//	lsvd-ctl -store DIR snapshot VOLUME NAME
//	lsvd-ctl -store DIR delete-snapshot VOLUME NAME
//	lsvd-ctl -store DIR clone BASE SNAPSHOT NEWVOLUME
//	lsvd-ctl -store DIR gc VOLUME
//	lsvd-ctl -store DIR checkpoint VOLUME
//	lsvd-ctl -store DIR fsck VOLUME
//	lsvd-ctl -store DIR [-cache FILE] volumes
//
// `volumes` lists every volume of a multi-volume host bucket
// (key layout "vol/<name>/…", slot table at "host/slots") with
// per-volume stats, a host-aggregate line, and — when the host's
// cache SSD image is given via -cache — the shared read arena's
// per-volume occupancy, so cross-tenant fairness is observable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/host"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lsvd-ctl -store DIR [-cache FILE] {create|info|snapshot|delete-snapshot|clone|gc|checkpoint|fsck|volumes} ARGS...")
	os.Exit(2)
}

func main() {
	storeDir := flag.String("store", "", "object store directory (required)")
	cachePath := flag.String("cache", "", "host cache SSD image (volumes: arena occupancy)")
	maxVolumes := flag.Int("max-volumes", 0, "host slot count the cache was carved with (default 8)")
	wcFrac := flag.Float64("wc-frac", 0, "host write-cache fraction the cache was carved with (default 0.2)")
	flag.Parse()
	args := flag.Args()
	if *storeDir == "" || len(args) < 1 {
		usage()
	}
	dirStore, err := objstore.NewDir(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	// Meter every backend op this invocation performs, so the
	// host-aggregate line reports real GET/PUT counts.
	meter := &objstore.Metered{Inner: dirStore}
	var store objstore.Store = meter
	ctx := context.Background()

	openVol := func(name string) *blockstore.Store {
		s, err := blockstore.Open(ctx, blockstore.Config{Volume: name, Store: store})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	switch cmd, rest := args[0], args[1:]; cmd {
	case "create":
		if len(rest) != 2 {
			usage()
		}
		size, err := parseSize(rest[1])
		if err != nil {
			log.Fatal(err)
		}
		s, err := blockstore.Create(ctx, blockstore.Config{
			Volume: rest[0], Store: store, VolSectors: block.LBAFromBytes(size),
		})
		if err != nil {
			log.Fatal(err)
		}
		_ = s.Checkpoint()
		fmt.Printf("created volume %q (%d bytes)\n", rest[0], size)

	case "info":
		if len(rest) != 1 {
			usage()
		}
		s := openVol(rest[0])
		st := s.Stats()
		base, baseSeq := s.BaseImage()
		fmt.Printf("volume:       %s\n", rest[0])
		fmt.Printf("size:         %d bytes\n", s.VolSectors().Bytes())
		fmt.Printf("objects:      %d (next seq %d)\n", st.Objects, st.NextSeq)
		fmt.Printf("live data:    %d MiB of %d MiB (util %.2f)\n",
			st.LiveSectors*block.SectorSize/(1<<20), st.DataSectors*block.SectorSize/(1<<20), s.Utilization())
		fmt.Printf("map extents:  %d\n", st.MapExtents)
		fmt.Printf("read path:    %d GETs, %d deduped, %d runs coalesced, %d header fetches\n",
			st.FetchGETs, st.FetchesDeduped, st.RunsCoalesced, st.HeaderFetches)
		if base != "" {
			fmt.Printf("clone of:     %s@%d\n", base, baseSeq)
		}
		for _, sn := range s.Snapshots() {
			fmt.Printf("snapshot:     %s (seq %d)\n", sn.Name, sn.Seq)
		}

	case "snapshot":
		if len(rest) != 2 {
			usage()
		}
		s := openVol(rest[0])
		info, err := s.CreateSnapshot(rest[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot %q at seq %d\n", info.Name, info.Seq)

	case "delete-snapshot":
		if len(rest) != 2 {
			usage()
		}
		if err := openVol(rest[0]).DeleteSnapshot(rest[1]); err != nil {
			log.Fatal(err)
		}
		fmt.Println("deleted")

	case "clone":
		if len(rest) != 3 {
			usage()
		}
		if err := blockstore.Clone(ctx, blockstore.Config{Volume: rest[0], Store: store}, rest[1], rest[2]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cloned %s@%s -> %s\n", rest[0], rest[1], rest[2])

	case "gc":
		if len(rest) != 1 {
			usage()
		}
		s := openVol(rest[0])
		before := s.Stats()
		if err := s.RunGC(); err != nil {
			log.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		after := s.Stats()
		fmt.Printf("gc: %d objects deleted, utilization %.2f\n",
			after.ObjectsDeleted-before.ObjectsDeleted, s.Utilization())

	case "checkpoint":
		if len(rest) != 1 {
			usage()
		}
		if err := openVol(rest[0]).Checkpoint(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("checkpointed")

	case "volumes":
		if len(rest) != 0 {
			usage()
		}
		names := hostVolumes(ctx, store)
		if len(names) == 0 {
			fmt.Println("no host volumes (bucket has no host/slots table)")
			return
		}
		var totalObjects int
		var totalLive, totalData uint64
		for _, name := range names {
			vs, err := objstore.NewPrefixed(store, "vol/"+name+"/")
			if err != nil {
				log.Fatal(err)
			}
			s, err := blockstore.Open(ctx, blockstore.Config{Volume: name, Store: vs})
			if err != nil {
				fmt.Printf("volume %-12s ERROR: %v\n", name, err)
				continue
			}
			st := s.Stats()
			totalObjects += st.Objects
			totalLive += st.LiveSectors
			totalData += st.DataSectors
			fmt.Printf("volume %-12s %8d MiB  %4d objects  util %.2f  map %d extents\n",
				name, s.VolSectors().Bytes()/(1<<20), st.Objects, s.Utilization(), st.MapExtents)
			// Open/recovery telemetry for the open this command just
			// performed: how much uncheckpointed suffix was replayed,
			// the backend reads it cost, and the map-snapshot stall the
			// last checkpoint would impose on foreground writes.
			fmt.Printf("  %-12s open %.1f ms  %d objects replayed  %d recovery GETs  last ckpt stall %.1f us\n",
				"", float64(st.OpenNanos)/1e6, st.RecoveredObjects, st.RecoveryGETs,
				float64(st.LastCkptStallNanos)/1e3)
		}
		ops := meter.Stats()
		fmt.Printf("host: %d volumes, %d objects, %d MiB live of %d MiB, BackendGETs %d PUTs %d\n",
			len(names), totalObjects,
			totalLive*block.SectorSize/(1<<20), totalData*block.SectorSize/(1<<20),
			ops.Gets+ops.GetRanges, ops.Puts)
		// The stats snapshot is advisory observability: a bucket no host
		// ever closed cleanly (or a snapshot from a different layout) is
		// normal, so degrade to "n/a" — never to a fatal error.
		snap, err := host.LoadStatsSnapshot(ctx, store)
		switch {
		case err != nil:
			fmt.Printf("write path (last session): n/a (%v)\n", err)
		case snap == nil || len(snap.Volumes) == 0:
			fmt.Println("write path (last session): n/a (no host/stats snapshot)")
		default:
			fmt.Println("write path (last session):")
			for _, v := range snap.Volumes {
				var avg float64
				if v.GroupBatches > 0 {
					avg = float64(v.GroupRecords) / float64(v.GroupBatches)
				}
				fmt.Printf("  %-12s %8d writes  %6d group batches (avg %.1f recs, hist %s)\n",
					v.Volume, v.Writes, v.GroupBatches, avg, histString(v.BatchSizeHist))
				fmt.Printf("  %-12s reserve waits %d  ring kick/fence %d/%d  seal stalls %d  upload grant/borrow/wait %d/%d/%d\n",
					"", v.ReserveWaits, v.RingKicks, v.RingFences, v.SealStalls,
					v.UploadGrants, v.UploadBorrows, v.UploadWaits)
				fmt.Printf("  %-12s runs coalesced %d\n", "", v.RunsCoalesced)
			}
			if snap.Version >= 2 {
				fmt.Println("gc (last session):")
				for _, v := range snap.Volumes {
					fmt.Printf("  %-12s %4d runs  %4d victims  %6d MiB copied  waf %.2f measured / %.2f target  pace/backoff/yield %d/%d/%d\n",
						v.Volume, v.GCRuns, v.GCVictims, v.GCCopiedBytes/(1<<20),
						v.GCMeasuredWAF, v.GCWAFTarget,
						v.GCPaceWaits, v.GCBackoffs, v.GCYields)
				}
			} else {
				fmt.Println("gc (last session): n/a (snapshot from an older layout)")
			}
			switch {
			case snap.Version < 3:
				fmt.Println("replication (last session): n/a (snapshot from an older layout)")
			case !anyReplicated(snap.Volumes):
				fmt.Println("replication (last session): off")
			default:
				fmt.Println("replication (last session):")
				for _, v := range snap.Volumes {
					if !v.ReplicaEnabled {
						continue
					}
					fmt.Printf("  %-12s shipped seq %d  lag %d objs / %d KiB  copied %d objs / %d MiB\n",
						v.Volume, v.ReplicaShippedSeq,
						v.ReplicaLagObjects, v.ReplicaLagBytes/1024,
						v.ReplicaCopied, v.ReplicaCopiedBytes/(1<<20))
					fmt.Printf("  %-12s retries %d  errors %d  stalls on lag bound %d  last ship %.1f us\n",
						"", v.ReplicaRetries, v.ReplicaErrors, v.ReplicaStalls,
						float64(v.ReplicaLastShipNanos)/1e3)
				}
			}
		}
		if *cachePath != "" {
			fi, err := os.Stat(*cachePath)
			if err != nil {
				log.Fatal(err)
			}
			dev, err := simdev.OpenFile(*cachePath, fi.Size())
			if err != nil {
				log.Fatal(err)
			}
			ast, err := host.InspectArena(dev, *maxVolumes, *wcFrac, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("arena: %d/%d slabs live (%d MiB each), fair share %d slabs/volume\n",
				ast.LiveSlabs, ast.Slabs, ast.SlabBytes/(1<<20), ast.FairShareSlabs)
			for _, occ := range ast.Views {
				name := occ.Volume
				if name == "" {
					name = "(default)"
				}
				fmt.Printf("arena: %-12s %3d slabs  %6d KiB cached\n", name, occ.Slabs, occ.Bytes/1024)
			}
		}

	case "fsck":
		if len(rest) != 1 {
			usage()
		}
		// Opening performs full recovery: prefix validation, stranded
		// object deletion, and map reconstruction. Reaching here means
		// the volume is consistent.
		s := openVol(rest[0])
		st := s.Stats()
		fmt.Printf("ok: %d objects, %d map extents, durable write seq %d\n",
			st.Objects, st.MapExtents, st.DurableWriteSeq)

	default:
		usage()
	}
}

// hostVolumes reads the host's volume list from its slot table,
// falling back to listing the "vol/" namespace.
func hostVolumes(ctx context.Context, store objstore.Store) []string {
	set := map[string]bool{}
	if raw, err := store.Get(ctx, "host/slots"); err == nil {
		var f struct {
			Slots map[string]int `json:"slots"`
		}
		if json.Unmarshal(raw, &f) == nil {
			for name := range f.Slots {
				set[name] = true
			}
		}
	} else if !errors.Is(err, objstore.ErrNotFound) {
		log.Fatal(err)
	}
	if keys, err := store.List(ctx, "vol/"); err == nil {
		for _, k := range keys {
			if rest, ok := strings.CutPrefix(k, "vol/"); ok {
				if name, _, ok := strings.Cut(rest, "/"); ok && name != "" {
					set[name] = true
				}
			}
		}
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// histString renders a group-commit batch-size histogram compactly,
// skipping empty buckets: "1:120 2:34 ≤8:7". Bucket b covers batch
// sizes up to 2^b records.
func histString(hist []uint64) string {
	var b strings.Builder
	for i, n := range hist {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if i < 2 {
			fmt.Fprintf(&b, "%d:%d", i+1, n)
		} else {
			fmt.Fprintf(&b, "≤%d:%d", 1<<i, n)
		}
	}
	if b.Len() == 0 {
		return "empty"
	}
	return b.String()
}

// anyReplicated reports whether at least one volume row in the stats
// snapshot had replication enabled.
func anyReplicated(rows []host.WritePathCounters) bool {
	for _, v := range rows {
		if v.ReplicaEnabled {
			return true
		}
	}
	return false
}

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "T"):
		mult, s = block.TiB, strings.TrimSuffix(s, "T")
	case strings.HasSuffix(s, "G"):
		mult, s = block.GiB, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = block.MiB, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = block.KiB, strings.TrimSuffix(s, "K")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}
