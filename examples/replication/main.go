// Replication: asynchronously replicate a live LSVD volume to a second
// object store (paper §4.8). A background shipper drains the volume's
// commit feed into the replica under a bounded lag (the RPO), and
// OpenFromReplica recovers the volume from the replica afterwards.
//
//	go run ./examples/replication
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"lsvd"
)

func main() {
	ctx := context.Background()
	primary := lsvd.MemStore()
	secondary := lsvd.MemStore() // "the other datacenter"

	disk, err := lsvd.Create(ctx, lsvd.VolumeOptions{
		Name: "vol", Store: primary, Cache: lsvd.MemCacheDevice(128 * lsvd.MiB),
		Size: 512 * lsvd.MiB, BatchBytes: 1 * lsvd.MiB,
		// Replication rides along: every committed object ships to the
		// secondary, and writes stall if the backlog exceeds 4 objects.
		ReplicaStore: secondary, ReplicaMaxLagObjects: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Write in rounds, like the paper's Fig 16 run; the shipper copies
	// concurrently in the background.
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 64*1024)
	var wrote int64
	for round := 0; round < 10; round++ {
		for i := 0; i < 32; i++ {
			rng.Read(buf)
			off := int64(rng.Intn(512-1)) * lsvd.MiB / 1
			off = off % (512*lsvd.MiB - int64(len(buf)))
			off &^= 511
			if err := disk.WriteAt(buf, off); err != nil {
				log.Fatal(err)
			}
			wrote += int64(len(buf))
		}
		st := disk.Stats().Replica
		fmt.Printf("round %2d: wrote %3d MiB total, lag %d objects (%d KiB)\n",
			round+1, wrote/(1<<20), st.LagObjects, st.LagBytes/1024)
	}

	// A clean close drains the shipper: the replica ends at zero lag,
	// holding the closing checkpoint and superblock.
	if err := disk.Close(); err != nil {
		log.Fatal(err)
	}
	st := disk.Stats().Replica
	fmt.Printf("replicated %d objects, %d MiB (final lag %d)\n",
		st.CopiedObjects, st.CopiedBytes/(1<<20), st.LagObjects)

	// Recover from the replica (fresh cache, different "site") and
	// compare against the primary.
	rdisk, err := lsvd.OpenFromReplica(ctx, lsvd.VolumeOptions{
		Name: "vol", ReplicaStore: secondary, Cache: lsvd.MemCacheDevice(128 * lsvd.MiB),
	}, true)
	if err != nil {
		log.Fatal(err)
	}
	pdisk, err := lsvd.Open(ctx, lsvd.VolumeOptions{
		Name: "vol", Store: primary, Cache: lsvd.MemCacheDevice(128 * lsvd.MiB),
	})
	if err != nil {
		log.Fatal(err)
	}
	a, b := make([]byte, 1<<20), make([]byte, 1<<20)
	for off := int64(0); off < 512*lsvd.MiB; off += 1 << 20 {
		if err := pdisk.ReadAt(a, off); err != nil {
			log.Fatal(err)
		}
		if err := rdisk.ReadAt(b, off); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			log.Fatalf("replica diverges at offset %d", off)
		}
	}
	fmt.Println("replica verified: byte-identical to the primary")
}
