// Package core assembles the LSVD virtual disk (paper Fig 1): a
// log-structured write-back cache and a read cache on a local SSD, and
// a log-structured block store on an S3-like backend. It implements the
// three block-device operations — write, read, commit barrier (§3.2) —
// plus discard, and the crash-recovery orchestration of §3.3:
//
//   - Writes are logged to the cache SSD (acknowledged on log write),
//     then handed to a background destage pipeline that batches them
//     into numbered immutable objects and uploads those concurrently.
//   - Reads consult the write cache, then the read cache, then the
//     backend; backend misses prefetch temporally adjacent data into
//     the read cache. Reads run concurrently with each other and with
//     destage.
//   - A commit barrier is one cache-device flush.
//   - On open after a crash, the cache log is rewound to the last
//     backend object and the tail replayed, bringing the backend up to
//     date with every write the cache preserved; if the cache is lost
//     entirely, the recovered volume is a consistent prefix of
//     committed writes (prefix consistency, §3.4).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/invariant"
	"lsvd/internal/iosched"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
	"lsvd/internal/readcache"
	"lsvd/internal/replica"
	"lsvd/internal/simdev"
	"lsvd/internal/vdisk"
	"lsvd/internal/writecache"
)

// Options configures an LSVD disk.
type Options struct {
	// Volume names the object stream on the backend.
	Volume string
	// Store is the S3-like backend.
	Store objstore.Store
	// CacheDev is the local SSD. It is statically partitioned: the
	// first WriteCacheFrac of it logs writes, the rest is read cache.
	CacheDev simdev.Device
	// VolBytes is the virtual disk size (Create only).
	VolBytes int64

	// WriteCacheFrac is the fraction of the SSD used for the write
	// log. Default 0.2 (§3.1's sizing discussion).
	WriteCacheFrac float64
	// BatchBytes is the backend object batch size (8–32 MiB in the
	// paper). Default 8 MiB.
	BatchBytes int64
	// GCLowWater/GCHighWater are the §3.5 utilization thresholds.
	// Defaults 0.70/0.75; GCLowWater < 0 disables GC.
	GCLowWater, GCHighWater float64
	// GCWAFTarget bounds the background GC service's write
	// amplification: total backend write volume (foreground + GC
	// copies) stays at or below this multiple of the foreground
	// volume. Default 2.0; < 0 disables pacing (the service copies as
	// fast as the upload gate lets it). Only meaningful with the
	// asynchronous pipeline, where the service runs.
	GCWAFTarget float64
	// PrefetchSectors is the temporal read-ahead window. Default 256
	// sectors (128 KiB); 0 disables prefetch.
	PrefetchSectors uint32
	// ReadCachePolicy selects FIFO (default, as in the prototype) or
	// LRU slab eviction.
	ReadCachePolicy readcache.Policy
	// CheckpointEvery objects between backend map checkpoints.
	CheckpointEvery int
	// WriteCacheCheckpointEvery records between cache map checkpoints.
	WriteCacheCheckpointEvery int
	// ReadbackThroughSSD mimics the kernel/user prototype (§3.7): the
	// destage path re-reads outgoing data from the cache SSD instead
	// of handing it over in memory, adding the SSD round trip the
	// paper measures in Table 6.
	ReadbackThroughSSD bool
	// DisableGCCacheFetch stops the GC from reading live data out of
	// the local write cache (ablation for §3.5's optimization).
	DisableGCCacheFetch bool

	// UploadDepth is the number of concurrent backend object PUTs the
	// destage pipeline keeps in flight. Default 4. Map commit stays
	// strictly in sequence order regardless.
	UploadDepth int
	// FetchDepth is the number of concurrent backend range GETs the
	// read-miss path keeps in flight (the fetcher pool). A single
	// read's misses fan out across it, adjacent misses in the same
	// object coalesce into one range GET, and concurrent readers
	// missing on the same window share a single GET. Default 8; 1
	// serializes all miss fetches (the pre-pipeline behavior, used as
	// the benchmark baseline).
	FetchDepth int
	// OpenFanout bounds the concurrent backend reads recovery issues
	// while replaying the log suffix at open (header probes, sizes,
	// stranded-object deletes). Replay application stays strictly
	// sequence-ordered regardless. 0 selects the block-store default
	// (8); 1 serializes recovery I/O (the benchmark baseline).
	OpenFanout int
	// DestageQueueDepth is the capacity of the in-memory destage queue
	// between WriteAt and the destager goroutine; a full queue blocks
	// the writer (§3.2 backpressure). Default 256 requests.
	DestageQueueDepth int
	// GroupCommitStall is how long the write-cache group-commit
	// leader lingers for followers before flushing a batch, trading
	// single-writer ack latency for bigger batches under concurrency.
	// Default 0: flush whatever has queued, immediately.
	GroupCommitStall time.Duration
	// GroupCommitMaxRecords caps how many queued log records one
	// group-commit device write may absorb. Default 128.
	GroupCommitMaxRecords int
	// SyncDestage disables the background pipeline: WriteAt forwards
	// to the block store inline and uploads happen synchronously, as
	// in the original prototype semantics. Used as the baseline in
	// benchmarks and ablations.
	SyncDestage bool
	// Retry is the backend retry policy (see objstore.RetryPolicy):
	// every backend operation retries transient failures with
	// exponential backoff under one per-op attempt budget. The zero
	// value selects the defaults; MaxAttempts < 0 disables retries.
	Retry objstore.RetryPolicy

	// ReplicaStore, when non-nil, enables asynchronous replication
	// (paper §4.8, DESIGN.md §5i): a per-volume shipper drains the
	// block store's commit feed into this second backend, keeping the
	// replica a crash-consistent prefix of the primary. The store is
	// wrapped in a Retrier under the same Retry policy as the primary
	// unless it already is one.
	ReplicaStore objstore.Store
	// ReplicaMaxLagObjects / ReplicaMaxLagBytes bound the replication
	// lag — the RPO knob. When the committed-but-unshipped backlog
	// exceeds either bound, new writes and trims stall until the
	// shipper catches up ("bounded or blocked", never silent
	// exposure). 0 leaves that dimension unbounded.
	ReplicaMaxLagObjects int
	ReplicaMaxLagBytes   int64
}

// HostOptions is the host-owned half of Options: the shared hardware
// (cache SSD, backend session) and the global concurrency budgets a
// multi-volume host divides among its tenants. In a single-volume
// deployment these are just the matching Options fields.
type HostOptions struct {
	Store           objstore.Store
	CacheDev        simdev.Device
	WriteCacheFrac  float64
	ReadCachePolicy readcache.Policy
	UploadDepth     int
	FetchDepth      int
	OpenFanout      int
	Retry           objstore.RetryPolicy
}

// VolumeOptions is the per-volume half of Options: identity, geometry
// and data-path tuning that each volume chooses independently of its
// neighbors on the host.
type VolumeOptions struct {
	Volume                    string
	VolBytes                  int64
	BatchBytes                int64
	GCLowWater, GCHighWater   float64
	GCWAFTarget               float64
	PrefetchSectors           uint32
	CheckpointEvery           int
	WriteCacheCheckpointEvery int
	ReadbackThroughSSD        bool
	DisableGCCacheFetch       bool
	DestageQueueDepth         int
	SyncDestage               bool
	ReplicaStore              objstore.Store
	ReplicaMaxLagObjects      int
	ReplicaMaxLagBytes        int64
}

// Split separates Options into its host-level and volume-level halves.
func (o Options) Split() (HostOptions, VolumeOptions) {
	return HostOptions{
			Store: o.Store, CacheDev: o.CacheDev,
			WriteCacheFrac: o.WriteCacheFrac, ReadCachePolicy: o.ReadCachePolicy,
			UploadDepth: o.UploadDepth, FetchDepth: o.FetchDepth,
			OpenFanout: o.OpenFanout, Retry: o.Retry,
		}, VolumeOptions{
			Volume: o.Volume, VolBytes: o.VolBytes, BatchBytes: o.BatchBytes,
			GCLowWater: o.GCLowWater, GCHighWater: o.GCHighWater,
			GCWAFTarget:     o.GCWAFTarget,
			PrefetchSectors: o.PrefetchSectors, CheckpointEvery: o.CheckpointEvery,
			WriteCacheCheckpointEvery: o.WriteCacheCheckpointEvery,
			ReadbackThroughSSD:        o.ReadbackThroughSSD,
			DisableGCCacheFetch:       o.DisableGCCacheFetch,
			DestageQueueDepth:         o.DestageQueueDepth, SyncDestage: o.SyncDestage,
			ReplicaStore:         o.ReplicaStore,
			ReplicaMaxLagObjects: o.ReplicaMaxLagObjects,
			ReplicaMaxLagBytes:   o.ReplicaMaxLagBytes,
		}
}

// Combine reassembles full Options from the two halves (inverse of
// Split).
func Combine(h HostOptions, v VolumeOptions) Options {
	return Options{
		Volume: v.Volume, Store: h.Store, CacheDev: h.CacheDev,
		VolBytes: v.VolBytes, WriteCacheFrac: h.WriteCacheFrac,
		BatchBytes: v.BatchBytes, GCLowWater: v.GCLowWater, GCHighWater: v.GCHighWater,
		GCWAFTarget:     v.GCWAFTarget,
		PrefetchSectors: v.PrefetchSectors, ReadCachePolicy: h.ReadCachePolicy,
		CheckpointEvery:           v.CheckpointEvery,
		WriteCacheCheckpointEvery: v.WriteCacheCheckpointEvery,
		ReadbackThroughSSD:        v.ReadbackThroughSSD,
		DisableGCCacheFetch:       v.DisableGCCacheFetch,
		UploadDepth:               h.UploadDepth, FetchDepth: h.FetchDepth,
		OpenFanout:        h.OpenFanout,
		DestageQueueDepth: v.DestageQueueDepth, SyncDestage: v.SyncDestage,
		Retry:                h.Retry,
		ReplicaStore:         v.ReplicaStore,
		ReplicaMaxLagObjects: v.ReplicaMaxLagObjects,
		ReplicaMaxLagBytes:   v.ReplicaMaxLagBytes,
	}
}

// Resources injects host-owned shared resources into a Disk. When nil
// (the single-volume constructors), the disk owns its CacheDev
// exclusively and builds private pools; when set, Options.CacheDev is
// ignored and the disk runs on the host's carve-outs:
//
//   - WCDev: this volume's write-cache log section of the shared SSD.
//   - ReadCache: this volume's view of the host's shared read-cache
//     arena (fair eviction across volumes happens inside the arena).
//   - UploadGate/FetchSem: the host-wide backend concurrency budgets;
//     every volume's destage PUTs and miss-path GETs draw from these
//     shared pools, so Options.UploadDepth/FetchDepth only size the
//     per-volume derived limits. The gate guarantees each registered
//     volume a minimum share of the PUT budget (UploadID names this
//     volume to it); the host owns registration.
//   - OnClose: invoked exactly once when the disk shuts down (Close or
//     Kill), so the host can release the volume's slot.
type Resources struct {
	WCDev      simdev.Device
	ReadCache  *readcache.Cache
	UploadGate *iosched.Gate
	UploadID   string
	FetchSem   chan struct{}
	OnClose    func()
}

func (o *Options) setDefaults() {
	if o.WriteCacheFrac == 0 {
		o.WriteCacheFrac = 0.2
	}
	if o.BatchBytes == 0 {
		o.BatchBytes = 8 * block.MiB
	}
	if o.GCLowWater == 0 {
		o.GCLowWater = 0.70
	}
	if o.GCHighWater == 0 {
		o.GCHighWater = 0.75
	}
	if o.GCLowWater < 0 {
		o.GCLowWater = 0
	}
	if o.GCWAFTarget == 0 {
		o.GCWAFTarget = 2.0
	}
	if o.PrefetchSectors == 0 {
		o.PrefetchSectors = 256
	}
	if o.UploadDepth <= 0 {
		o.UploadDepth = 4
	}
	if o.FetchDepth <= 0 {
		o.FetchDepth = 8
	}
	if o.DestageQueueDepth <= 0 {
		o.DestageQueueDepth = 256
	}
}

// Stats aggregates counters from all three layers.
type Stats struct {
	Writes, Reads, Flushes, Trims uint64
	BytesWritten, BytesRead       uint64
	WriteCacheHitSectors          uint64
	ReadCacheHitSectors           uint64
	BackendReadSectors            uint64
	ZeroFillSectors               uint64
	PrefetchedSectors             uint64
	WriteSeq                      uint64
	RecoveredReplayed             int    // cache records replayed to backend at open
	OpenNanos                     int64  // wall time of the open/recovery sequence
	DestageQueued                 int    // requests waiting in the destage queue
	RingKicks                     uint64 // ring-full: non-fencing seals kicked
	RingFences                    uint64 // ring-full: watermark stalled, full fence

	// Read-miss pipeline counters (GET amplification for bench runs):
	// the first three mirror the block store's fetch-path counters,
	// PrefetchHitSectors mirrors the read cache's, and
	// AdmissionsDropped counts cache admissions shed under pressure.
	BackendGETs        uint64
	FetchesDeduped     uint64
	RunsCoalesced      uint64
	PrefetchHitSectors uint64
	AdmissionsDropped  uint64

	// Replication telemetry (DESIGN.md §5i). ReplicaEnabled marks the
	// volume as replicated; Replica carries the shipper's cumulative
	// counters and live lag; ReplicaStalls counts foreground operations
	// that blocked on the RPO bound.
	ReplicaEnabled bool
	Replica        replica.Stats
	ReplicaStalls  uint64

	WriteCache writecache.Stats
	ReadCache  readcache.Stats
	Backend    blockstore.Stats
}

// counters holds the core's own statistics; every field is updated
// atomically so the read path stays lock-free.
type counters struct {
	writes, reads, flushes, trims atomic.Uint64
	bytesWritten, bytesRead       atomic.Uint64
	wcHitSectors, rcHitSectors    atomic.Uint64
	backendReadSectors            atomic.Uint64
	zeroFillSectors               atomic.Uint64
	prefetchedSectors             atomic.Uint64
}

// stagePoolCap bounds the staging-buffer freelist; beyond it, dead
// buffers fall to the garbage collector.
const stagePoolCap = 64

// stagedBuf tracks one write's staging buffer until the destage
// watermark passes its sequence number.
type stagedBuf struct {
	ws  uint64
	buf []byte
}

// stagePool recycles write-path staging buffers. WriteAt copies the
// caller's payload into a staging buffer whose ownership then flows
// through the destage queue, the block-store batch and the object
// vector; the buffer dies when its object commits. Recycling at the
// destage watermark (the commit is what advances it) keeps the hot
// write path from allocating — and the garbage collector from
// scanning — a fresh buffer per write.
type stagePool struct {
	mu      sync.Mutex
	free    [][]byte    // LIFO of dead buffers
	pending []stagedBuf // in-flight, appended in ws order under wmu
}

func (p *stagePool) get(n int) []byte {
	p.mu.Lock()
	for len(p.free) > 0 {
		b := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		if cap(b) >= n {
			p.mu.Unlock()
			return b[:n]
		}
		// Wrong size class (workload changed write size): drop it and
		// keep looking; the freelist re-fills at the new size.
	}
	p.mu.Unlock()
	return make([]byte, n)
}

// track records a buffer now owned by the destage pipeline. Callers
// serialize under wmu, so pending stays ws-ordered.
func (p *stagePool) track(ws uint64, buf []byte) {
	p.mu.Lock()
	p.pending = append(p.pending, stagedBuf{ws: ws, buf: buf})
	p.mu.Unlock()
}

// destaged releases every buffer at or below the watermark: its object
// has committed (commits are strictly in write order), so nothing
// references the bytes anymore.
func (p *stagePool) destaged(ws uint64) {
	p.mu.Lock()
	i := 0
	for ; i < len(p.pending) && p.pending[i].ws <= ws; i++ {
		if len(p.free) < stagePoolCap {
			p.free = append(p.free, p.pending[i].buf)
		}
	}
	if i > 0 {
		p.pending = p.pending[:copy(p.pending, p.pending[i:])]
	}
	p.mu.Unlock()
}

// destageReq is one unit of work for the destager goroutine: a logged
// write or trim to forward to the block store, a flush marker (non-nil
// reply channel) that seals and fences the pipeline, or a kick — a
// non-fencing seal issued by ring-full backpressure, which needs the
// records ahead of it uploaded but not the whole pipeline drained.
type destageReq struct {
	ws    uint64
	ext   block.Extent
	data  []byte // nil for trims
	trim  bool
	flush chan error
	kick  bool
}

// Disk is an LSVD virtual disk. Mutations (write/trim) are ordered by
// a single write mutex — the write log must stay strictly ordered —
// but return as soon as the cache log append and queue handoff are
// done; destage to the backend happens on a background goroutine.
// Reads take no disk-level lock at all: each cache layer and the block
// store guard their own state, and the combined lookup+read methods
// make each level's snapshot internally consistent.
type Disk struct {
	opts Options

	// res is non-nil for host-managed disks (shared SSD + pools); the
	// release once-guard fires OnClose exactly once across Close/Kill.
	res     *Resources
	release sync.Once

	wc *writecache.Cache
	rc *readcache.Cache
	bs *blockstore.Store

	// shipper is the volume's replication goroutine (nil unless
	// Options.ReplicaStore is set on a writable disk). replicaStalls
	// counts foreground mutations that blocked on the RPO lag bound.
	// replicaWake is the broadcast channel those stalled writers sleep
	// on (awaitReplicaLag): notifyReplicaWake closes and replaces it
	// whenever the shipper acks an object, the pipeline fails, or the
	// disk closes. Nil unless the disk has a shipper.
	shipper       *replica.Shipper
	replicaStalls atomic.Uint64
	replicaMu     sync.Mutex //lsvd:lock core.replicaWake
	replicaWake   chan struct{}

	volSectors block.LBA
	readOnly   bool

	wmu      sync.Mutex //lsvd:lock core.wmu (orders mutations; guards closed and queue handoff)
	closed   bool
	writeSeq atomic.Uint64

	// Destage pipeline (nil channels when SyncDestage or read-only).
	ch   chan destageReq
	quit chan struct{} // closed by Kill: drop the queue, stop now
	done chan struct{} // closed when the destager exits
	perr atomic.Pointer[error]

	// destageTick is pulsed (non-blocking, capacity 1) whenever the
	// destage watermark advances or the pipeline fails; a writer stalled
	// on a full ring sleeps on it instead of fencing the pipeline.
	destageTick chan struct{}
	ringKicks   atomic.Uint64 // non-fencing seals issued by ring-full backpressure
	ringFences  atomic.Uint64 // full fences after the watermark stalled
	stage       stagePool     // staging buffers recycled at the destage watermark

	// rcGen is bumped by every write/trim before it invalidates the
	// read cache. A backend reader records the epoch before fetching
	// and self-invalidates its inserts if it changed, so a stale fetch
	// can never linger in the read cache past a concurrent overwrite.
	rcGen atomic.Uint64

	// adm applies read-cache admissions (demand fills + temporal
	// prefetch) on a background goroutine, off the read ack path.
	adm admitter

	c                 counters
	recoveredReplayed int
	openNanos         int64
}

// ErrReadOnly is returned for mutations on snapshot mounts.
var ErrReadOnly = blockstore.ErrReadOnly

// ErrClosed is returned for operations on a closed (or killed) disk.
var ErrClosed = errors.New("core: disk is closed")

var _ vdisk.Disk = (*Disk)(nil)

// Create initializes a new LSVD volume on a fresh cache device and
// backend prefix.
func Create(ctx context.Context, opts Options) (*Disk, error) {
	return CreateShared(ctx, opts, nil)
}

// CreateShared is Create with host-injected shared resources (res may
// be nil, which is plain Create).
func CreateShared(ctx context.Context, opts Options, res *Resources) (*Disk, error) {
	opts.setDefaults()
	if opts.VolBytes <= 0 || opts.VolBytes%block.SectorSize != 0 {
		return nil, fmt.Errorf("core: invalid volume size %d", opts.VolBytes)
	}
	d := &Disk{opts: opts, volSectors: block.LBAFromBytes(opts.VolBytes), destageTick: make(chan struct{}, 1)}
	wcDev, err := d.attachCaches(res)
	if err != nil {
		return nil, err
	}
	if d.wc, err = writecache.Format(wcDev, wcConfig(opts, wcDev)); err != nil {
		return nil, err
	}
	if d.bs, err = blockstore.Create(ctx, d.storeConfig()); err != nil {
		return nil, err
	}
	d.startPipeline(ctx)
	return d, nil
}

// attachCaches resolves the disk's write-cache device and read cache:
// host-injected carve-outs when res is non-nil, otherwise an exclusive
// static split of Options.CacheDev (the historical single-volume
// layout).
func (d *Disk) attachCaches(res *Resources) (simdev.Device, error) {
	if res != nil {
		d.res = res
		d.rc = res.ReadCache
		return res.WCDev, nil
	}
	wcDev, rcDev, err := splitCache(d.opts)
	if err != nil {
		return nil, err
	}
	if d.rc, err = readcache.New(rcDev, rcConfig(d.opts, rcDev)); err != nil {
		return nil, err
	}
	return wcDev, nil
}

// released fires the host's OnClose hook exactly once (Close or Kill).
func (d *Disk) released() {
	if d.res != nil && d.res.OnClose != nil {
		d.release.Do(d.res.OnClose)
	}
}

// wcConfig and rcConfig scale the metadata reservations to the cache
// partition so small experiment caches still leave room for data.
func wcConfig(opts Options, dev simdev.Device) writecache.Config {
	ckpt := dev.Size() / 8
	if ckpt > 16*block.MiB {
		ckpt = 16 * block.MiB
	}
	if ckpt < 2*block.BlockSize {
		ckpt = 2 * block.BlockSize
	}
	return writecache.Config{
		CheckpointBytes: ckpt &^ (block.BlockSize - 1),
		CheckpointEvery: opts.WriteCacheCheckpointEvery,
		GroupStall:      opts.GroupCommitStall,
		GroupMaxRecords: opts.GroupCommitMaxRecords,
	}
}

func rcConfig(opts Options, dev simdev.Device) readcache.Config {
	return readcache.SizedConfig(dev.Size(), opts.ReadCachePolicy)
}

// Open recovers an LSVD volume: the cache log is replayed, the backend
// recovered by the prefix rule, and any committed writes present in
// the cache but missing from the backend are re-sent (§3.3).
func Open(ctx context.Context, opts Options) (*Disk, error) {
	return OpenShared(ctx, opts, nil)
}

// OpenShared is Open with host-injected shared resources (res may be
// nil, which is plain Open).
func OpenShared(ctx context.Context, opts Options, res *Resources) (*Disk, error) {
	opts.setDefaults()
	start := time.Now()
	d := &Disk{opts: opts, destageTick: make(chan struct{}, 1)}
	wcDev, err := d.attachCaches(res)
	if err != nil {
		return nil, err
	}
	wc, wcErr := writecache.Open(wcDev, wcConfig(opts, wcDev))
	if wcErr != nil {
		// Cache lost or blank (§3.4 worst case): reformat it; the
		// volume falls back to the backend's consistent prefix.
		if wc, err = writecache.Format(wcDev, wcConfig(opts, wcDev)); err != nil {
			return nil, err
		}
	}
	d.wc = wc
	if d.bs, err = blockstore.Open(ctx, d.storeConfig()); err != nil {
		return nil, err
	}
	d.volSectors = d.bs.VolSectors()

	// Rewind & replay: push cache records newer than the backend's
	// durable watermark back through the block store.
	durable := d.bs.DurableWriteSeq()
	replayed := 0
	err = d.wc.RecordsAfter(durable, func(ws uint64, typ journal.Type, ext block.Extent, data []byte) error {
		replayed++
		if typ == journal.TypeTrim {
			return d.bs.Trim(ws, ext)
		}
		return d.bs.Append(ws, ext, data)
	})
	if err != nil {
		return nil, fmt.Errorf("core: cache replay: %w", err)
	}
	if replayed > 0 {
		if err := d.bs.Seal(); err != nil {
			return nil, err
		}
	}
	d.recoveredReplayed = replayed
	d.wc.SetDestaged(d.bs.DurableWriteSeq())
	ws := d.bs.DurableWriteSeq()
	if m := d.wc.MaxWriteSeq(); m > ws {
		ws = m
	}
	d.writeSeq.Store(ws)
	d.openNanos = int64(time.Since(start))
	d.startPipeline(ctx)
	return d, nil
}

// OpenSnapshot mounts a named snapshot of the volume as a read-only
// disk (§3.6: "can be mounted read-only by backtracking to the last
// map checkpoint before that point"). The cache device is used only
// for read caching; writes and trims are rejected.
func OpenSnapshot(ctx context.Context, opts Options, snapshot string) (*Disk, error) {
	return openReadOnly(ctx, opts, func(cfg blockstore.Config) (*blockstore.Store, error) {
		return blockstore.OpenSnapshot(ctx, cfg, snapshot)
	})
}

// OpenReadOnly mounts the volume's newest consistent prefix read-only
// without taking write ownership — the restore-from-replica inspection
// mount (§4.8, DESIGN.md §5i). Point Options.Store at the replica; a
// torn tail object left by a shipper killed mid-copy truncates
// recovery exactly like a crashed primary's own tail.
func OpenReadOnly(ctx context.Context, opts Options) (*Disk, error) {
	return openReadOnly(ctx, opts, func(cfg blockstore.Config) (*blockstore.Store, error) {
		return blockstore.OpenHeadReadOnly(ctx, cfg)
	})
}

func openReadOnly(ctx context.Context, opts Options, mount func(blockstore.Config) (*blockstore.Store, error)) (*Disk, error) {
	opts.setDefaults()
	opts.GCLowWater = 0
	d := &Disk{opts: opts, readOnly: true, destageTick: make(chan struct{}, 1)}
	wcDev, rcDev, err := splitCache(opts)
	if err != nil {
		return nil, err
	}
	// The write cache stays empty; it exists only so the read path's
	// three-level lookup works unchanged.
	if d.wc, err = writecache.Format(wcDev, wcConfig(opts, wcDev)); err != nil {
		return nil, err
	}
	if d.rc, err = readcache.New(rcDev, rcConfig(opts, rcDev)); err != nil {
		return nil, err
	}
	if d.bs, err = mount(d.storeConfig()); err != nil {
		return nil, err
	}
	d.volSectors = d.bs.VolSectors()
	d.writeSeq.Store(d.bs.DurableWriteSeq())
	d.startPipeline(ctx)
	return d, nil
}

func splitCache(opts Options) (simdev.Device, simdev.Device, error) {
	total := opts.CacheDev.Size()
	wcBytes := int64(float64(total)*opts.WriteCacheFrac) &^ (block.BlockSize - 1)
	wcDev, err := simdev.NewSection(opts.CacheDev, 0, wcBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("core: cache split: %w", err)
	}
	rcDev, err := simdev.NewSection(opts.CacheDev, wcBytes, total-wcBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("core: cache split: %w", err)
	}
	return wcDev, rcDev, nil
}

func (d *Disk) storeConfig() blockstore.Config {
	cfg := blockstore.Config{
		Volume:          d.opts.Volume,
		Store:           d.opts.Store,
		VolSectors:      d.volSectors,
		BatchBytes:      d.opts.BatchBytes,
		GCLowWater:      d.opts.GCLowWater,
		GCHighWater:     d.opts.GCHighWater,
		CheckpointEvery: d.opts.CheckpointEvery,
		OnDestage: func(ws uint64) {
			d.wc.SetDestaged(ws)
			d.stage.destaged(ws)
			d.notifyDestage()
		},
		Retry:      d.opts.Retry,
		FetchDepth: d.opts.FetchDepth,
		OpenFanout: d.opts.OpenFanout,
		// Replicated arms the shipped-watermark pin even before (and
		// between) shipper attaches, so a crash-restart cycle cannot
		// delete objects the replica still lacks.
		Replicated: d.opts.ReplicaStore != nil && !d.readOnly,
	}
	if !d.opts.SyncDestage && !d.readOnly {
		cfg.UploadDepth = d.opts.UploadDepth
		// The paced background GC service replaces commit-triggered
		// inline passes wherever the asynchronous pipeline runs.
		// Synchronous mode keeps the discrete inline semantics the
		// simulations and baselines depend on. DestagePressure takes
		// only the cache's own lock; the bs.mu → wc.mu order matches
		// FetchFromCache below.
		cfg.GCService = true
		cfg.GCWAFTarget = d.opts.GCWAFTarget
		cfg.GCBackoff = func() bool { return d.wc.DestagePressure() }
	}
	if !d.opts.DisableGCCacheFetch {
		cfg.FetchFromCache = d.fetchFromWriteCache
	}
	if d.res != nil {
		cfg.UploadGate = d.res.UploadGate
		cfg.UploadID = d.res.UploadID
		cfg.FetchSem = d.res.FetchSem
	}
	return cfg
}

// startPipeline launches the read-path admitter (every disk reads), the
// replication shipper (when a replica store is configured), and the
// destager goroutine (skipped for synchronous or read-only disks).
func (d *Disk) startPipeline(ctx context.Context) {
	d.adm.start(d)
	if !d.readOnly && d.opts.ReplicaStore != nil {
		rs := d.opts.ReplicaStore
		if _, ok := rs.(*objstore.Retrier); !ok && d.opts.Retry.MaxAttempts >= 0 {
			rs = objstore.NewRetrier(rs, d.opts.Retry)
		}
		d.replicaWake = make(chan struct{})
		rcfg := replica.Config{
			Backend:       d.bs,
			Replica:       rs,
			MaxLagObjects: d.opts.ReplicaMaxLagObjects,
			MaxLagBytes:   d.opts.ReplicaMaxLagBytes,
			OnAck:         d.notifyReplicaWake,
		}
		if d.res != nil {
			rcfg.Gate = d.res.UploadGate
			rcfg.GateID = d.res.UploadID + "#ship"
		}
		d.shipper = replica.Start(ctx, rcfg)
	}
	if d.readOnly || d.opts.SyncDestage {
		return
	}
	d.ch = make(chan destageReq, d.opts.DestageQueueDepth)
	d.quit = make(chan struct{})
	d.done = make(chan struct{})
	invariant.Go("core-destage", d.destage)
}

// destage drains the queue into the block store. On Kill (quit closed)
// it returns immediately, dropping whatever is still queued — those
// writes live on in the cache log and are replayed at the next Open.
func (d *Disk) destage() {
	defer close(d.done)
	var lastWS uint64
	for {
		select {
		case <-d.quit:
			return
		case req, ok := <-d.ch:
			if !ok {
				return
			}
			if req.flush != nil {
				req.flush <- d.bs.Seal()
				continue
			}
			if req.kick {
				// Every record queued before the kick is now in the
				// batch; seal it without waiting so the commit (and the
				// OnDestage watermark pulse the kicker sleeps on) can
				// land while writes continue.
				if err := d.bs.SealAsync(); err != nil {
					d.failPipeline(err)
				}
				continue
			}
			// The queue is FIFO and producers serialize under wmu, so
			// write sequence numbers reach the block store in order —
			// the property prefix consistency (§3.1) rests on.
			invariant.Assertf(req.ws >= lastWS,
				"core: destage writeSeq regressed: %d after %d", req.ws, lastWS)
			lastWS = req.ws
			var err error
			if req.trim {
				err = d.bs.Trim(req.ws, req.ext)
			} else {
				err = d.bs.Append(req.ws, req.ext, req.data)
			}
			if err != nil {
				d.failPipeline(err)
			}
		}
	}
}

// failPipeline records the first destage failure; it is surfaced to
// the client on the next mutation or fence. The tick wakes any writer
// sleeping on destage progress so it sees the error promptly.
func (d *Disk) failPipeline(err error) {
	d.perr.CompareAndSwap(nil, &err)
	d.notifyDestage()
	d.notifyReplicaWake()
}

// notifyDestage pulses the destage-progress channel. Non-blocking: a
// pending tick already carries the same information.
func (d *Disk) notifyDestage() {
	select {
	case d.destageTick <- struct{}{}:
	default:
	}
}

func (d *Disk) pipelineErr() error {
	if p := d.perr.Load(); p != nil {
		return *p
	}
	return nil
}

// awaitReplicaLag is the RPO bound's escalation: while the replication
// lag exceeds ReplicaMaxLagObjects/ReplicaMaxLagBytes, foreground
// mutations stall here — OUTSIDE wmu, so the destage pipeline keeps
// committing and the shipper keeps acking — until the replica catches
// up. "Bounded or blocked": the volume never silently accumulates more
// unreplicated data than the configured exposure. Stalled writers
// sleep on the wake channel rather than polling; every shipper ack,
// pipeline failure, and close broadcasts it.
func (d *Disk) awaitReplicaLag() error {
	if d.shipper == nil || !d.shipper.OverBound() {
		return nil
	}
	d.replicaStalls.Add(1)
	for {
		// Capture the wake channel before checking the exit conditions:
		// an ack (or failure/close) landing between a check and the wait
		// has already closed this channel, so the wait cannot miss it.
		wake := d.replicaWakeCh()
		if err := d.pipelineErr(); err != nil {
			return err
		}
		d.wmu.Lock()
		closed := d.closed
		d.wmu.Unlock()
		if closed {
			return ErrClosed
		}
		if !d.shipper.OverBound() {
			return nil
		}
		<-wake
	}
}

// notifyReplicaWake broadcasts to every writer stalled in
// awaitReplicaLag by closing the current wake channel and installing a
// fresh one. No-op on disks without a shipper.
func (d *Disk) notifyReplicaWake() {
	d.replicaMu.Lock()
	if d.replicaWake != nil {
		close(d.replicaWake)
		d.replicaWake = make(chan struct{})
	}
	d.replicaMu.Unlock()
}

func (d *Disk) replicaWakeCh() <-chan struct{} {
	d.replicaMu.Lock()
	ch := d.replicaWake
	d.replicaMu.Unlock()
	return ch
}

// enqueue hands a request to the destager, blocking while the queue is
// full (backpressure). Kill unblocks it.
//
//lsvd:ignore destage backpressure by design: the write path stalls under wmu when the queue is full; quit unblocks it
func (d *Disk) enqueue(req destageReq) error {
	select {
	case d.ch <- req:
		return nil
	case <-d.quit:
		return ErrClosed
	}
}

// fetchFromWriteCache serves GC source reads (§3.5) from the write
// cache when the data is fully resident AND fully destaged. The
// destaged restriction is load-bearing for crash consistency: the GC
// copies what the backend map says the victim holds, and the cache's
// newest bytes for an LBA may belong to a younger acknowledged write
// that has not committed to an object yet — publishing those in a GC
// object would let recovery see data from beyond the durable prefix
// (§3.4). It is called with the block store lock held; it only
// touches the write cache, which has its own lock.
func (d *Disk) fetchFromWriteCache(ext block.Extent, buf []byte) bool {
	return d.wc.ReadFullDestaged(ext, buf)
}

// Size returns the disk size in bytes.
func (d *Disk) Size() int64 { return d.volSectors.Bytes() }

func (d *Disk) checkIO(p []byte, off int64) (block.Extent, error) {
	if off%block.SectorSize != 0 {
		return block.Extent{}, fmt.Errorf("core: unaligned offset %d", off)
	}
	lba := block.LBAFromBytes(off)
	if err := block.CheckIO(d.volSectors, lba, p); err != nil {
		return block.Extent{}, err
	}
	return block.Extent{LBA: lba, Sectors: uint32(len(p) / block.SectorSize)}, nil
}

// WriteAt implements vdisk.Disk: the write is persisted to the cache
// log (acknowledged) and queued for background destage (§3.2). It does
// not wait for the backend.
//
// The hot path holds wmu only for metadata — sequence assignment, ring
// reservation, destage-queue handoff — so concurrent writers pipeline:
// the payload copy happens before the lock and the cache-SSD append
// (group commit) after it. FIFO writeSeq order into the destage queue
// is preserved because both the sequence and the queue slot are taken
// under the same wmu hold.
func (d *Disk) WriteAt(p []byte, off int64) error {
	ext, err := d.checkIO(p, off)
	if err != nil {
		return err
	}
	if ext.Empty() {
		return nil
	}
	if err := d.pipelineErr(); err != nil {
		return err
	}
	if err := d.awaitReplicaLag(); err != nil {
		return err
	}
	if d.opts.SyncDestage || d.opts.ReadbackThroughSSD {
		return d.writeInline(p, ext)
	}

	// Stage before the lock: the destage pipeline (and the block-store
	// batch, which holds references) outlives the caller's ownership
	// of p. The buffer comes from the recycle pool and returns to it
	// when its object commits.
	clone := d.stage.get(len(p))
	copy(clone, p)

	d.wmu.Lock()
	if d.readOnly {
		d.wmu.Unlock()
		return ErrReadOnly
	}
	if d.closed {
		d.wmu.Unlock()
		return ErrClosed
	}
	ws := d.writeSeq.Add(1)
	res, err := d.reserveWithBackpressure(ws, journal.TypeData, ext, len(p))
	if err != nil {
		d.wmu.Unlock()
		return err
	}
	d.stage.track(ws, clone)
	qerr := d.enqueue(destageReq{ws: ws, ext: ext, data: clone})
	d.wmu.Unlock()

	// Off the lock: the payload lands on the cache SSD via the group
	// commit leader; Commit returns when this write is readable. The
	// reservation contract requires the Commit even if the enqueue
	// failed (a killed disk's record is simply never destaged — crash
	// semantics).
	if err := d.wc.Commit(res, p); err != nil {
		return err
	}
	if qerr != nil {
		return qerr
	}
	// Drop any stale read-cache copy (write-after-read hazard), and
	// bump the epoch so an in-flight backend fetch self-invalidates.
	d.rcGen.Add(1)
	d.rc.Invalidate(ext)
	d.c.writes.Add(1)
	d.c.bytesWritten.Add(uint64(len(p)))
	return nil
}

// writeInline is the fully serialized write path for the SyncDestage
// and ReadbackThroughSSD modes (prototype baselines): everything —
// log append, read-cache invalidation, destage — happens under wmu,
// as before the group-commit pipeline.
func (d *Disk) writeInline(p []byte, ext block.Extent) error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.readOnly {
		return ErrReadOnly
	}
	if d.closed {
		return ErrClosed
	}
	ws := d.writeSeq.Add(1)

	//lsvd:ignore serialized baseline mode: writeInline holds wmu across the whole write by design (§3.7 prototype)
	if err := d.logWithBackpressure(ws, ext, p, false); err != nil {
		return err
	}
	d.rcGen.Add(1)
	d.rc.Invalidate(ext)

	// Hand off to the destager. The prototype's destage path reads the
	// data back off the SSD (§3.7/Table 6); the in-memory handoff
	// models the userspace rewrite (and must copy, since the caller
	// owns p after we return and the block-store batch keeps a
	// reference to what it is given).
	src := make([]byte, len(p))
	if d.opts.ReadbackThroughSSD {
		if !d.wc.ReadFull(ext, src) {
			copy(src, p) // should not happen; fall back to the caller's copy
		}
	} else {
		copy(src, p)
	}
	if d.opts.SyncDestage {
		//lsvd:ignore serialized baseline mode: synchronous destage under wmu is the measured configuration
		if err := d.bs.Append(ws, ext, src); err != nil {
			return err
		}
	} else if err := d.enqueue(destageReq{ws: ws, ext: ext, data: src}); err != nil {
		return err
	}
	d.c.writes.Add(1)
	d.c.bytesWritten.Add(uint64(len(p)))
	return nil
}

// logWithBackpressure persists one mutation record to the cache log.
// When the ring is full of un-destaged records it fences the destage
// pipeline — making everything logged so far durable remotely, which
// unlocks FIFO eviction — and retries: §3.2's "no writes accepted
// until cache space is freed". Write and trim share this policy.
//
//lsvd:requires core.wmu
func (d *Disk) logWithBackpressure(ws uint64, ext block.Extent, p []byte, trim bool) error {
	for attempt := 0; ; attempt++ {
		var err error
		if trim {
			//lsvd:ignore serialized baseline mode: the cache-log append (group-commit wait included) runs under wmu by design
			err = d.wc.AppendTrim(ws, ext)
		} else {
			//lsvd:ignore serialized baseline mode: the cache-log append (group-commit wait included) runs under wmu by design
			err = d.wc.Append(ws, ext, p)
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, writecache.ErrFull) || attempt >= 2 {
			return err
		}
		if err := d.drainLocked(); err != nil {
			return err
		}
	}
}

// destageGrace bounds how long a ring-full writer sleeps waiting for
// the destage watermark before concluding it has stalled and falling
// back to the full fence (which resubmits failed uploads and surfaces
// their errors). Healthy pipelines tick far faster than this.
const destageGrace = 20 * time.Millisecond

// graceRounds is how many consecutive destageGrace expiries a
// ring-full writer tolerates before escalating to the fence. One
// silent grace usually means scheduler starvation, not a wedged
// pipeline (a loaded host can leave a healthy destager unscheduled
// for tens of milliseconds); the fence adds a full pipeline flush on
// top of that load, so escalating on the first silence makes the
// stall strictly worse.
const graceRounds = 3

// reserveWithBackpressure claims cache-log space for one mutation
// under wmu; the payload commit happens off wmu. A full ring means the
// records pinning the head have not destaged yet, so the writer kicks
// a non-fencing seal — the partial backend batch holding them goes out
// as an object — and dozes until the destage watermark advances,
// retrying as commits land and the head evicts. This is §3.2's "no
// writes accepted until cache space is freed" as flow control rather
// than stop-and-go: the volume's upload pipeline keeps running (and
// other volumes keep the shared backend busy) while this writer waits.
// Only a stalled watermark escalates to the full destage fence.
//
//lsvd:requires core.wmu
func (d *Disk) reserveWithBackpressure(ws uint64, typ journal.Type, ext block.Extent, dataLen int) (*writecache.Reservation, error) {
	kicked := false
	fences := 0
	for {
		res, err := d.wc.Reserve(ws, typ, ext, dataLen)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, writecache.ErrFull) {
			return nil, err
		}
		if perr := d.pipelineErr(); perr != nil {
			return nil, perr
		}
		if d.ch != nil {
			if !kicked {
				kicked = true
				d.ringKicks.Add(1)
				if qerr := d.enqueue(destageReq{kick: true}); qerr != nil {
					return nil, qerr
				}
			}
			progressed := false
			for round := 0; round < graceRounds; round++ {
				if d.awaitDestage() {
					progressed = true
					break
				}
			}
			if progressed {
				continue
			}
		}
		// Watermark stalled (or there is no pipeline to wait on):
		// escalate to the fence, then retry.
		if fences >= 2 {
			return nil, err
		}
		fences++
		d.ringFences.Add(1)
		if err := d.drainLocked(); err != nil {
			return nil, err
		}
	}
}

// awaitDestage sleeps until destage progress is signalled or the grace
// period expires; true means progress. It deliberately holds wmu — a
// volume with a full ring admits no writes — while the destager and
// the upload pipeline, which never take wmu, drain the backlog.
//
//lsvd:ignore ring-full backpressure: blocking under wmu is the contract (no writes admitted until the ring drains); the drain side never takes wmu, the grace timer bounds the wait, and quit unblocks on Kill
func (d *Disk) awaitDestage() bool {
	t := time.NewTimer(destageGrace)
	defer t.Stop()
	select {
	case <-d.destageTick:
		return true
	case <-t.C:
		return false
	case <-d.quit:
		return false // killed: the fence path surfaces ErrClosed
	}
}

// drainLocked (wmu held) makes every queued and batched write durable
// in the backend: it pushes a flush marker through the destage queue
// and waits for the destager's Seal — which itself fences the upload
// pool — to complete.
//
//lsvd:ignore flush fence: the caller requires queued destage work durable before returning; blocking under wmu is the contract and quit unblocks it
//lsvd:requires core.wmu
func (d *Disk) drainLocked() error {
	if d.ch == nil {
		return d.bs.Seal()
	}
	fl := make(chan error, 1)
	if err := d.enqueue(destageReq{flush: fl}); err != nil {
		return err
	}
	select {
	case err := <-fl:
		return err
	case <-d.quit:
		return ErrClosed
	}
}

// ReadAt implements vdisk.Disk: write cache, then read cache, then
// backend (Fig 1), zero-filling uninitialized ranges. Reads take no
// disk-level lock and proceed concurrently with writes, destage and
// each other; a read that races a write to the same blocks may return
// either version, as on a physical disk.
func (d *Disk) ReadAt(p []byte, off int64) error {
	ext, err := d.checkIO(p, off)
	if err != nil {
		return err
	}
	if ext.Empty() {
		return nil
	}
	d.c.reads.Add(1)
	d.c.bytesRead.Add(uint64(len(p)))

	// (1) Write cache.
	wcRuns, err := d.wc.ReadExtent(ext, p)
	if err != nil {
		return err
	}
	var missesWC []block.Extent
	for _, run := range wcRuns {
		if run.Present {
			d.c.wcHitSectors.Add(uint64(run.Sectors))
		} else {
			missesWC = append(missesWC, run.Extent)
		}
	}
	// (2) Read cache.
	var missesRC []block.Extent
	for _, miss := range missesWC {
		sub := p[(miss.LBA - ext.LBA).Bytes():][:miss.Bytes()]
		rcRuns, err := d.rc.ReadExtent(miss, sub)
		if err != nil {
			return err
		}
		for _, run := range rcRuns {
			if run.Present {
				d.c.rcHitSectors.Add(uint64(run.Sectors))
			} else {
				missesRC = append(missesRC, run.Extent)
			}
		}
	}
	// (3) Block store: all remaining misses fan out across the fetcher
	// pool, with temporal prefetch admitted to the read cache off the
	// ack path (readpath.go).
	if len(missesRC) > 0 {
		return d.readBackend(ext, missesRC, p)
	}
	return nil
}

// Flush implements the commit barrier: one flush of the cache device
// (§3.2); no map metadata is written and the destage pipeline is not
// drained — durability of acknowledged writes comes from the cache
// log plus replay-on-open.
func (d *Disk) Flush() error {
	if err := d.pipelineErr(); err != nil {
		return err
	}
	d.c.flushes.Add(1)
	return d.wc.Flush()
}

// Trim implements discard.
func (d *Disk) Trim(off, length int64) error {
	if length == 0 {
		return nil
	}
	if off%block.SectorSize != 0 || length%block.SectorSize != 0 {
		return fmt.Errorf("core: unaligned trim [%d,%d)", off, off+length)
	}
	lba := block.LBAFromBytes(off)
	n := block.LBA(length / block.SectorSize)
	if lba+n > d.volSectors {
		return fmt.Errorf("core: trim beyond end of disk")
	}
	ext := block.Extent{LBA: lba, Sectors: uint32(n)}
	if err := d.pipelineErr(); err != nil {
		return err
	}
	if err := d.awaitReplicaLag(); err != nil {
		return err
	}
	if d.opts.SyncDestage || d.opts.ReadbackThroughSSD {
		return d.trimInline(ext)
	}

	d.wmu.Lock()
	if d.readOnly {
		d.wmu.Unlock()
		return ErrReadOnly
	}
	if d.closed {
		d.wmu.Unlock()
		return ErrClosed
	}
	ws := d.writeSeq.Add(1)
	res, err := d.reserveWithBackpressure(ws, journal.TypeTrim, ext, 0)
	if err != nil {
		d.wmu.Unlock()
		return err
	}
	qerr := d.enqueue(destageReq{ws: ws, ext: ext, trim: true})
	d.wmu.Unlock()

	if err := d.wc.Commit(res, nil); err != nil {
		return err
	}
	if qerr != nil {
		return qerr
	}
	d.rcGen.Add(1)
	d.rc.Invalidate(ext)
	d.c.trims.Add(1)
	return nil
}

// trimInline mirrors writeInline for discards in the serialized
// baseline modes.
func (d *Disk) trimInline(ext block.Extent) error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.readOnly {
		return ErrReadOnly
	}
	if d.closed {
		return ErrClosed
	}
	ws := d.writeSeq.Add(1)
	//lsvd:ignore serialized baseline mode: trimInline holds wmu across the whole trim by design
	if err := d.logWithBackpressure(ws, ext, nil, true); err != nil {
		return err
	}
	d.rcGen.Add(1)
	d.rc.Invalidate(ext)
	if d.opts.SyncDestage {
		if err := d.bs.Trim(ws, ext); err != nil {
			return err
		}
	} else if err := d.enqueue(destageReq{ws: ws, ext: ext, trim: true}); err != nil {
		return err
	}
	d.c.trims.Add(1)
	return nil
}

// Drain fences the destage pipeline: queue drained, batch sealed,
// every upload committed. All acknowledged writes are durable remotely
// when it returns; cache and backend are synchronized (used before VM
// migration, §4.3/§4.4).
func (d *Disk) Drain() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.readOnly {
		//lsvd:ignore drain fence: wmu held across the seal by design — no writes admitted until the pipeline is synchronized
		return d.bs.Seal()
	}
	return d.drainLocked()
}

// Checkpoint forces map checkpoints in both logs.
func (d *Disk) Checkpoint() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if !d.readOnly {
		if err := d.drainLocked(); err != nil {
			return err
		}
	}
	//lsvd:ignore checkpoint fence: wmu held across both checkpoints by design — admitting writes mid-checkpoint would split the consistency point
	if err := d.bs.Checkpoint(); err != nil {
		return err
	}
	return d.wc.Checkpoint()
}

// Close drains, checkpoints and persists all metadata.
func (d *Disk) Close() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	// Writers stalled on the RPO bound must observe closed — Close
	// holds wmu, so they would otherwise sleep through the shutdown.
	d.notifyReplicaWake()
	// Stop the admitter on every exit path (queued windows are
	// released); the happy paths drain it first so admissions land in
	// the read cache before it is persisted. The host's OnClose fires
	// once the disk is down, whatever path got it there.
	defer d.released()
	defer d.adm.stop()
	if d.readOnly {
		d.adm.drain()
		return d.rc.Persist()
	}
	var derr error
	if d.ch != nil {
		fl := make(chan error, 1)
		if err := d.enqueue(destageReq{flush: fl}); err != nil {
			derr = err
		} else {
			//lsvd:ignore Close drains the pipeline under wmu by design; quit unblocks
			select {
			case derr = <-fl:
			case <-d.quit:
				derr = ErrClosed
			}
		}
		// No writer can be mid-send: sends happen under wmu with the
		// closed flag checked, so closing the channel here is safe.
		close(d.ch)
		//lsvd:ignore Close waits for the destager goroutine to exit under wmu by design
		<-d.done
	}
	// Stop the background GC service before the final seal/checkpoint
	// so the shutdown sequence races with no concurrent collector (on
	// the error path too — the disk is going down either way).
	//lsvd:ignore shutdown: Close holds wmu across GC stop by design; closed is set so nothing can queue behind it
	d.bs.StopGC()
	if derr == nil {
		//lsvd:ignore shutdown: final seal under wmu by design — the disk is closed
		derr = d.bs.Seal()
	}
	if derr == nil {
		//lsvd:ignore shutdown: final checkpoint under wmu by design — the disk is closed
		derr = d.bs.Checkpoint()
	}
	// Drain the shipper after the final seal+checkpoint so a clean close
	// leaves the replica with the closing checkpoint and superblock — a
	// zero-lag replica. On error paths it still detaches; with the
	// replica backend down, the per-object drain budget caps the wait
	// and the replica simply stays at its last consistent watermark.
	if d.shipper != nil {
		//lsvd:ignore shutdown: replica drain under wmu by design — budget-capped, and the disk is closed
		d.shipper.Close()
	}
	if derr != nil {
		return derr
	}
	if err := d.wc.Close(); err != nil {
		return err
	}
	d.adm.drain()
	return d.rc.Persist()
}

// Kill models process death for crash testing: the destage pipeline
// stops without flushing — queued writes are dropped (they remain in
// the cache log and are replayed at the next Open) — and in-flight
// uploads are quiesced so the backend stops changing. The disk is
// unusable afterwards; recover with Open.
func (d *Disk) Kill() {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	// Wake writers stalled on the RPO bound so they see closed and
	// error out instead of sleeping through the kill.
	d.notifyReplicaWake()
	// Stop replication before quiescing the backend: a late ack would
	// advance the watermark and re-drive deferred deletions, mutating
	// the backend after the kill point. Abort drops queued feed events —
	// the crash model — leaving the replica a consistent prefix.
	if d.shipper != nil {
		//lsvd:ignore kill path: Abort joins the shipper goroutine under wmu by design; it exits promptly without backend I/O
		d.shipper.Abort()
	}
	if d.quit != nil {
		close(d.quit)
		//lsvd:ignore Kill waits for the destager to exit; quit is closed so the exit is prompt
		<-d.done
	}
	// Writers that passed wmu before the kill may still be committing
	// their cache-log group writes; wait them out so nothing touches
	// the (possibly host-shared) device after Kill returns.
	d.wc.Quiesce()
	d.adm.stop()
	d.bs.Abort()
	d.released()
}

// Snapshot creates a named snapshot (§3.6) after fencing the pipeline
// so the snapshot covers every acknowledged write.
func (d *Disk) Snapshot(name string) (blockstore.SnapshotInfo, error) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return blockstore.SnapshotInfo{}, ErrClosed
	}
	if !d.readOnly {
		if err := d.drainLocked(); err != nil {
			return blockstore.SnapshotInfo{}, err
		}
	}
	//lsvd:ignore snapshot fence: wmu held across snapshot creation by design — the snapshot must cover every acknowledged write
	return d.bs.CreateSnapshot(name)
}

// DeleteSnapshot removes a snapshot.
func (d *Disk) DeleteSnapshot(name string) error {
	return d.bs.DeleteSnapshot(name)
}

// Snapshots lists snapshots.
func (d *Disk) Snapshots() []blockstore.SnapshotInfo {
	return d.bs.Snapshots()
}

// RunGC triggers a garbage-collection pass. It runs under the block
// store's own lock and may proceed concurrently with reads and with
// the foreground write path.
func (d *Disk) RunGC() error {
	return d.bs.RunGC()
}

// Stats returns a snapshot of all counters.
func (d *Disk) Stats() Stats {
	st := Stats{
		Writes: d.c.writes.Load(), Reads: d.c.reads.Load(),
		Flushes: d.c.flushes.Load(), Trims: d.c.trims.Load(),
		BytesWritten: d.c.bytesWritten.Load(), BytesRead: d.c.bytesRead.Load(),
		WriteCacheHitSectors: d.c.wcHitSectors.Load(),
		ReadCacheHitSectors:  d.c.rcHitSectors.Load(),
		BackendReadSectors:   d.c.backendReadSectors.Load(),
		ZeroFillSectors:      d.c.zeroFillSectors.Load(),
		PrefetchedSectors:    d.c.prefetchedSectors.Load(),
		WriteSeq:             d.writeSeq.Load(),
		RecoveredReplayed:    d.recoveredReplayed,
		OpenNanos:            d.openNanos,
		AdmissionsDropped:    d.adm.dropped.Load(),
		RingKicks:            d.ringKicks.Load(),
		RingFences:           d.ringFences.Load(),
	}
	if d.ch != nil {
		st.DestageQueued = len(d.ch)
	}
	if d.shipper != nil {
		st.ReplicaEnabled = true
		st.Replica = d.shipper.Stats()
		st.ReplicaStalls = d.replicaStalls.Load()
	}
	st.WriteCache = d.wc.Stats()
	st.ReadCache = d.rc.Stats()
	st.Backend = d.bs.Stats()
	st.BackendGETs = st.Backend.FetchGETs
	st.FetchesDeduped = st.Backend.FetchesDeduped
	st.RunsCoalesced = st.Backend.RunsCoalesced
	st.PrefetchHitSectors = st.ReadCache.PrefetchHitSectors
	return st
}

// Backend exposes the block store (for replication tooling and the
// experiment harness).
func (d *Disk) Backend() *blockstore.Store { return d.bs }
