// Package deferorder is the golden self-test for the deferorder
// analyzer: deferred releases must run in inverse acquisition order
// (defers are LIFO), and a deferred release inside a loop body does
// not run per iteration.
package deferorder

import "sync"

type pair struct {
	a  sync.Mutex //lsvd:lock test.a
	b  sync.Mutex //lsvd:lock test.b
	n  int
	hs []handle
}

type handle struct{}

func (handle) Close() error { return nil }

// inverted acquires a then b, but defers a's release LAST — so it runs
// FIRST, releasing the outer lock while the inner one is still held.
func (p *pair) inverted() {
	p.a.Lock()
	p.b.Lock()
	defer p.b.Unlock()
	defer p.a.Unlock() // want "deferred unlock order inverted: defers run LIFO, so test.a is released before test.b"
	p.n++
}

// nested is the idiomatic shape: each defer directly follows its
// acquisition, so releases invert acquisitions on their own.
func (p *pair) nested() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
	p.n++
}

// loopDefer queues one deferred release per iteration; the lock is
// still held when iteration two calls Lock again.
func (p *pair) loopDefer() {
	for i := 0; i < len(p.hs); i++ {
		p.a.Lock()
		defer p.a.Unlock() // want "defer p.a.Unlock inside a loop runs only when the function returns"
		p.n++
	}
}

// rangeClose leaks every handle until return.
func (p *pair) rangeClose() {
	for _, h := range p.hs {
		defer h.Close() // want "defer h.Close inside a loop runs only when the function returns"
	}
}

// hoisted is the fix for loopDefer: the loop body lives in its own
// function literal, so each defer runs at the end of its iteration.
func (p *pair) hoisted() {
	for i := 0; i < len(p.hs); i++ {
		func() {
			p.a.Lock()
			defer p.a.Unlock()
			p.n++
		}()
	}
}

// halfVisible defers two releases but only one acquisition is in this
// function; without both acquisition points the order is unknowable
// and the analyzer stays quiet.
func (p *pair) halfVisible() {
	p.b.Lock()
	defer p.b.Unlock()
	defer p.a.Unlock()
	p.n++
}
