// Package annform is the golden self-test for the directives
// analyzer: suppressions and lock annotations must carry their
// arguments, and a malformed directive must not suppress its own
// report.
package annform

import "sync"

type s struct {
	mu sync.Mutex //lsvd:lock
	// want-prev "malformed lsvd directive"
	ok sync.Mutex //lsvd:lock ann.ok
}

func bareIgnore() int {
	//lsvd:ignore
	// want-prev "malformed lsvd directive"
	return 1
}

func reasonedIgnore() int {
	//lsvd:ignore self-test: a well-formed suppression reports nothing
	return 2
}
