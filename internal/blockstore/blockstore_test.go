package blockstore

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/objstore"
)

var ctx = context.Background()

const volSectors = block.LBA(1 << 20) // 512 MiB virtual disk

func newVolume(t *testing.T, store objstore.Store, cfg Config) *Store {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = store
	}
	if cfg.Volume == "" {
		cfg.Volume = "vol"
	}
	if cfg.VolSectors == 0 {
		cfg.VolSectors = volSectors
	}
	s, err := Create(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func payload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// readAll reads ext via Lookup/ReadRun, zero-filling holes.
func readAll(t *testing.T, s *Store, ext block.Extent) []byte {
	t.Helper()
	buf := make([]byte, ext.Bytes())
	for _, run := range s.Lookup(ext) {
		if !run.Present {
			continue
		}
		data, err := s.ReadRun(run)
		if err != nil {
			t.Fatal(err)
		}
		copy(buf[(run.LBA-ext.LBA).Bytes():], data)
	}
	return buf
}

func TestWriteSealRead(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{})
	ext := block.Extent{LBA: 100, Sectors: 64}
	data := payload(1, int(ext.Bytes()))
	if err := s.Append(1, ext, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, s, ext); !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Uninitialized ranges read as zeros (absent runs).
	runs := s.Lookup(block.Extent{LBA: 500000, Sectors: 8})
	if len(runs) != 1 || runs[0].Present {
		t.Fatalf("uninitialized range: %+v", runs)
	}
}

func TestAutoSealAtBatchSize(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{BatchBytes: 256 * 1024})
	buf := payload(1, 64*1024)
	for i := 0; i < 8; i++ {
		ext := block.Extent{LBA: block.LBA(i * 128), Sectors: 128}
		if err := s.Append(uint64(i+1), ext, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Objects < 2 { // initial checkpoint + at least one data object
		t.Fatalf("no auto-seal: %+v", st)
	}
	if st.DurableWriteSeq == 0 {
		t.Fatal("destage watermark not advanced")
	}
}

func TestIntraBatchCoalescing(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{})
	ext := block.Extent{LBA: 0, Sectors: 32}
	_ = s.Append(1, ext, payload(1, int(ext.Bytes())))
	newer := payload(2, int(ext.Bytes()))
	_ = s.Append(2, ext, newer)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BytesCoalesced != uint64(ext.Bytes()) {
		t.Fatalf("coalesced %d bytes, want %d", st.BytesCoalesced, ext.Bytes())
	}
	if got := readAll(t, s, ext); !bytes.Equal(got, newer) {
		t.Fatal("coalesced batch returned stale data")
	}
	// The sealed object holds only one copy.
	if st.DataSectors != uint64(ext.Sectors) {
		t.Fatalf("object holds %d sectors, want %d", st.DataSectors, ext.Sectors)
	}
}

func TestNoCoalesceMode(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{NoCoalesce: true})
	ext := block.Extent{LBA: 0, Sectors: 32}
	_ = s.Append(1, ext, payload(1, int(ext.Bytes())))
	newer := payload(2, int(ext.Bytes()))
	_ = s.Append(2, ext, newer)
	_ = s.Seal()
	st := s.Stats()
	if st.DataSectors != 2*uint64(ext.Sectors) {
		t.Fatalf("no-coalesce object holds %d sectors, want %d", st.DataSectors, 2*ext.Sectors)
	}
	// Later write must still win (arrival order preserved in header).
	if got := readAll(t, s, ext); !bytes.Equal(got, newer) {
		t.Fatal("no-coalesce lost write order")
	}
}

func TestTrimAcrossBatches(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{})
	ext := block.Extent{LBA: 0, Sectors: 64}
	_ = s.Append(1, ext, payload(1, int(ext.Bytes())))
	_ = s.Seal()
	if err := s.Trim(2, block.Extent{LBA: 16, Sectors: 16}); err != nil {
		t.Fatal(err)
	}
	_ = s.Seal()
	runs := s.Lookup(ext)
	if len(runs) != 3 || runs[1].Present {
		t.Fatalf("trim not applied: %+v", runs)
	}
}

func TestRecovery(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{CheckpointEvery: 4, BatchBytes: 64 * 1024})
	want := map[int][]byte{}
	for i := 0; i < 20; i++ {
		ext := block.Extent{LBA: block.LBA(i * 200), Sectors: 64}
		d := payload(int64(i), int(ext.Bytes()))
		want[i] = d
		if err := s.Append(uint64(i+1), ext, d); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Seal()
	_ = s.Trim(21, block.Extent{LBA: 0, Sectors: 32})
	_ = s.Seal()

	s2, err := Open(ctx, Config{Volume: "vol", Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if s2.VolSectors() != volSectors {
		t.Fatalf("volume size lost: %d", s2.VolSectors())
	}
	for i := 1; i < 20; i++ {
		ext := block.Extent{LBA: block.LBA(i * 200), Sectors: 64}
		if got := readAll(t, s2, ext); !bytes.Equal(got, want[i]) {
			t.Fatalf("write %d lost after recovery", i)
		}
	}
	// The trim survived.
	runs := s2.Lookup(block.Extent{LBA: 0, Sectors: 32})
	if len(runs) != 1 || runs[0].Present {
		t.Fatalf("trim lost: %+v", runs)
	}
	if s2.DurableWriteSeq() < 20 {
		t.Fatalf("watermark %d", s2.DurableWriteSeq())
	}
}

func TestRecoveryPrefixRuleDeletesStranded(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{BatchBytes: 32 * 1024, CheckpointEvery: 1 << 30})
	for i := 0; i < 6; i++ {
		ext := block.Extent{LBA: block.LBA(i * 100), Sectors: 64}
		_ = s.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes())))
	}
	_ = s.Seal()
	// Simulate an in-flight PUT gap: delete a middle object (e.g. 99,
	// 100, 102 seen -> take 99, 100; 102 is stranded).
	names, _ := store.List(ctx, "vol.")
	var seqNames []string
	for _, n := range names {
		if _, ok := parseSeq("vol", n); ok {
			seqNames = append(seqNames, n)
		}
	}
	if len(seqNames) < 4 {
		t.Fatalf("need >=4 objects, have %v", seqNames)
	}
	gap := seqNames[len(seqNames)-2]
	if err := store.Delete(ctx, gap); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(ctx, Config{Volume: "vol", Store: store})
	if err != nil {
		t.Fatal(err)
	}
	// The object after the gap must have been deleted as stranded.
	names2, _ := store.List(ctx, "vol.")
	for _, n := range names2 {
		if n == seqNames[len(seqNames)-1] {
			t.Fatal("stranded object survived recovery")
		}
	}
	if s2.Stats().ObjectsDeleted == 0 {
		t.Fatal("no stranded deletion accounted")
	}
}

func TestGCReclaimsSpaceAndPreservesData(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{
		BatchBytes: 128 * 1024, GCLowWater: 0.70, GCHighWater: 0.75,
		CheckpointEvery: 8,
	})
	// Overwrite a small working set repeatedly to generate garbage.
	const ws = 32 // extents
	latest := map[int]int64{}
	seq := uint64(0)
	for round := 0; round < 30; round++ {
		for i := 0; i < ws; i++ {
			seq++
			ext := block.Extent{LBA: block.LBA(i * 128), Sectors: 64}
			latest[i] = int64(seq)
			if err := s.Append(seq, ext, payload(int64(seq), int(ext.Bytes()))); err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = s.Seal()
	if err := s.Checkpoint(); err != nil { // release pending deletes
		t.Fatal(err)
	}
	st := s.Stats()
	if st.GCRuns == 0 || st.ObjectsDeleted == 0 {
		t.Fatalf("GC never ran: %+v", st)
	}
	if u := s.Utilization(); u < 0.65 {
		t.Fatalf("utilization %.2f after GC", u)
	}
	// All newest data intact.
	for i := 0; i < ws; i++ {
		ext := block.Extent{LBA: block.LBA(i * 128), Sectors: 64}
		if got := readAll(t, s, ext); !bytes.Equal(got, payload(latest[i], int(ext.Bytes()))) {
			t.Fatalf("extent %d corrupted by GC", i)
		}
	}
	// And recovery after GC still yields the same data.
	s2, err := Open(ctx, Config{Volume: "vol", Store: store})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ws; i++ {
		ext := block.Extent{LBA: block.LBA(i * 128), Sectors: 64}
		if got := readAll(t, s2, ext); !bytes.Equal(got, payload(latest[i], int(ext.Bytes()))) {
			t.Fatalf("extent %d corrupted after GC+recovery", i)
		}
	}
}

func TestGCUsesLocalCache(t *testing.T) {
	store := objstore.NewMem()
	hits := 0
	// "Local cache": a sector-granular shadow of everything written,
	// maintained outside the store (the callback runs with the store
	// lock held, so it must not call back into the store).
	shadow := map[block.LBA][]byte{}
	remember := func(ext block.Extent, data []byte) {
		for i := block.LBA(0); i < block.LBA(ext.Sectors); i++ {
			sec := make([]byte, block.SectorSize)
			copy(sec, data[i.Bytes():])
			shadow[ext.LBA+i] = sec
		}
	}
	s := newVolume(t, store, Config{
		BatchBytes: 64 * 1024, GCLowWater: 0, // manual GC
		FetchFromCache: func(ext block.Extent, buf []byte) bool {
			for i := block.LBA(0); i < block.LBA(ext.Sectors); i++ {
				sec, ok := shadow[ext.LBA+i]
				if !ok {
					return false
				}
				copy(buf[i.Bytes():], sec)
			}
			hits++
			return true
		},
	})
	ext := block.Extent{LBA: 0, Sectors: 128}
	d1 := payload(1, int(ext.Bytes()))
	_ = s.Append(1, ext, d1)
	remember(ext, d1)
	_ = s.Seal()
	// Overwrite half; first object becomes 50% utilized.
	half := block.Extent{LBA: 0, Sectors: 64}
	d2 := payload(2, int(half.Bytes()))
	_ = s.Append(2, half, d2)
	remember(half, d2)
	_ = s.Seal()
	if err := s.RunGC(); err != nil {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Fatal("GC did not consult the local cache")
	}
	// Data still correct after cache-served GC.
	want := append([]byte{}, d1...)
	copy(want, d2)
	if got := readAll(t, s, ext); !bytes.Equal(got, want) {
		t.Fatal("cache-served GC corrupted data")
	}
}

func TestSnapshotCreateMountDelete(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{})
	extA := block.Extent{LBA: 0, Sectors: 64}
	origA := payload(1, int(extA.Bytes()))
	_ = s.Append(1, extA, origA)
	_ = s.Seal()
	info, err := s.CreateSnapshot("snap1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq == 0 {
		t.Fatal("zero snapshot seq")
	}
	// Overwrite after the snapshot.
	newerA := payload(2, int(extA.Bytes()))
	_ = s.Append(2, extA, newerA)
	_ = s.Seal()
	if got := readAll(t, s, extA); !bytes.Equal(got, newerA) {
		t.Fatal("live volume lost overwrite")
	}
	// Mount the snapshot read-only: sees the original.
	snap, err := OpenSnapshot(ctx, Config{Volume: "vol", Store: store}, "snap1")
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, snap, extA); !bytes.Equal(got, origA) {
		t.Fatal("snapshot does not reflect point-in-time state")
	}
	if err := snap.Append(3, extA, origA); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("snapshot mount writable: %v", err)
	}
	if err := s.DeleteSnapshot("snap1"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteSnapshot("snap1"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestSnapshotDefersGCDeletes(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{BatchBytes: 64 * 1024, GCLowWater: 0})
	ext := block.Extent{LBA: 0, Sectors: 128}
	orig := payload(1, int(ext.Bytes()))
	_ = s.Append(1, ext, orig)
	_ = s.Seal()
	if _, err := s.CreateSnapshot("pin"); err != nil {
		t.Fatal(err)
	}
	// Fully overwrite; the first object is now garbage but pinned.
	_ = s.Append(2, ext, payload(2, int(ext.Bytes())))
	_ = s.Seal()
	if err := s.RunGC(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().DeferredDeletes == 0 {
		t.Fatal("pinned object not deferred")
	}
	// Snapshot still mounts and reads the original data.
	snap, err := OpenSnapshot(ctx, Config{Volume: "vol", Store: store}, "pin")
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, snap, ext); !bytes.Equal(got, orig) {
		t.Fatal("snapshot data destroyed by GC")
	}
	// Deleting the snapshot releases the deferred delete.
	before := s.Stats().ObjectsDeleted
	if err := s.DeleteSnapshot("pin"); err != nil {
		t.Fatal(err)
	}
	if s.Stats().ObjectsDeleted <= before {
		t.Fatal("deferred delete not executed after snapshot removal")
	}
}

func TestCloneSharesBaseAndDiverges(t *testing.T) {
	store := objstore.NewMem()
	base := newVolume(t, store, Config{Volume: "base"})
	ext := block.Extent{LBA: 0, Sectors: 64}
	baseData := payload(1, int(ext.Bytes()))
	_ = base.Append(1, ext, baseData)
	_ = base.Seal()
	if _, err := base.CreateSnapshot("golden"); err != nil {
		t.Fatal(err)
	}
	if err := Clone(ctx, Config{Volume: "base", Store: store}, "golden", "clone1"); err != nil {
		t.Fatal(err)
	}
	if err := Clone(ctx, Config{Volume: "base", Store: store}, "golden", "clone2"); err != nil {
		t.Fatal(err)
	}
	c1, err := Open(ctx, Config{Volume: "clone1", Store: store})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Open(ctx, Config{Volume: "clone2", Store: store})
	if err != nil {
		t.Fatal(err)
	}
	// Both clones read the base data through the shared prefix.
	if got := readAll(t, c1, ext); !bytes.Equal(got, baseData) {
		t.Fatal("clone1 cannot read base data")
	}
	// Clone 1 diverges; clone 2 and base unaffected.
	d1 := payload(10, int(ext.Bytes()))
	_ = c1.Append(100, ext, d1)
	_ = c1.Seal()
	if got := readAll(t, c1, ext); !bytes.Equal(got, d1) {
		t.Fatal("clone1 lost its write")
	}
	if got := readAll(t, c2, ext); !bytes.Equal(got, baseData) {
		t.Fatal("clone2 sees clone1's write")
	}
	if got := readAll(t, base, ext); !bytes.Equal(got, baseData) {
		t.Fatal("base modified by clone")
	}
	// Clone recovery works.
	c1b, err := Open(ctx, Config{Volume: "clone1", Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, c1b, ext); !bytes.Equal(got, d1) {
		t.Fatal("clone1 recovery lost data")
	}
	vol, seq := c1b.BaseImage()
	if vol != "base" || seq == 0 {
		t.Fatalf("base image %q/%d", vol, seq)
	}
}

func TestCloneGCOnlyTouchesOwnObjects(t *testing.T) {
	store := objstore.NewMem()
	base := newVolume(t, store, Config{Volume: "base", BatchBytes: 64 * 1024})
	ext := block.Extent{LBA: 0, Sectors: 128}
	baseData := payload(1, int(ext.Bytes()))
	_ = base.Append(1, ext, baseData)
	_ = base.Seal()
	_, _ = base.CreateSnapshot("g")
	if err := Clone(ctx, Config{Volume: "base", Store: store}, "g", "c"); err != nil {
		t.Fatal(err)
	}
	c, _ := Open(ctx, Config{Volume: "c", Store: store})
	// Clone fully overwrites the base data repeatedly.
	for i := 2; i < 10; i++ {
		_ = c.Append(uint64(i), ext, payload(int64(i), int(ext.Bytes())))
		_ = c.Seal()
	}
	if err := c.RunGC(); err != nil {
		t.Fatal(err)
	}
	_ = c.Checkpoint()
	// Base objects all still present.
	baseNames, _ := store.List(ctx, "base.")
	if len(baseNames) < 3 {
		t.Fatalf("base objects deleted by clone GC: %v", baseNames)
	}
	if got := readAll(t, base, ext); !bytes.Equal(got, baseData) {
		t.Fatal("base data destroyed")
	}
}

func TestFetchRunPrefetchReturnsTemporalNeighbors(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{})
	// Two writes far apart in LBA space land adjacently in the object.
	extA := block.Extent{LBA: 0, Sectors: 32}
	extB := block.Extent{LBA: 100000, Sectors: 32}
	dA := payload(1, int(extA.Bytes()))
	dB := payload(2, int(extB.Bytes()))
	_ = s.Append(1, extA, dA)
	_ = s.Append(2, extB, dB)
	_ = s.Seal()
	runs := s.Lookup(extA)
	if len(runs) != 1 || !runs[0].Present {
		t.Fatalf("lookup: %+v", runs)
	}
	data, extras, err := s.FetchRun(runs[0], 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, dA) {
		t.Fatal("primary read wrong")
	}
	foundB := false
	for _, ex := range extras {
		if ex.Ext.LBA == extB.LBA && bytes.Equal(ex.Data, dB) {
			foundB = true
		}
	}
	if !foundB {
		t.Fatalf("temporal neighbor not prefetched: %d extras", len(extras))
	}
}

func TestCreateExistingVolumeRejected(t *testing.T) {
	store := objstore.NewMem()
	newVolume(t, store, Config{})
	if _, err := Create(ctx, Config{Volume: "vol", Store: store, VolSectors: volSectors}); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if _, err := Create(ctx, Config{Volume: "x", Store: store}); err == nil {
		t.Fatal("zero-size create accepted")
	}
}

func TestOpenMissingVolumeRejected(t *testing.T) {
	if _, err := Open(ctx, Config{Volume: "ghost", Store: objstore.NewMem()}); err == nil {
		t.Fatal("missing volume opened")
	}
}

func TestWAFAccounting(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{BatchBytes: 256 * 1024, CheckpointEvery: 1 << 30, GCLowWater: 0})
	var clientBytes uint64
	for i := 0; i < 64; i++ {
		ext := block.Extent{LBA: block.LBA(i * 64), Sectors: 32}
		_ = s.Append(uint64(i+1), ext, payload(int64(i), int(ext.Bytes())))
		clientBytes += uint64(ext.Bytes())
	}
	_ = s.Seal()
	st := s.Stats()
	if st.BytesAppended != clientBytes {
		t.Fatalf("appended %d want %d", st.BytesAppended, clientBytes)
	}
	waf := float64(st.BytesPut) / float64(st.BytesAppended)
	// Object headers are the only overhead here: WAF just over 1.
	if waf < 1.0 || waf > 1.1 {
		t.Fatalf("WAF %.3f", waf)
	}
}
