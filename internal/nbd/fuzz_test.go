package nbd

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/simdev"
)

// scriptConn is a net.Conn that reads a canned client byte stream and
// discards everything the server writes — the harness for fuzzing the
// wire parsers without a socket.
type scriptConn struct {
	r *bytes.Reader
}

func (c *scriptConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *scriptConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *scriptConn) Close() error                     { return nil }
func (c *scriptConn) LocalAddr() net.Addr              { return scriptAddr{} }
func (c *scriptConn) RemoteAddr() net.Addr             { return scriptAddr{} }
func (c *scriptConn) SetDeadline(time.Time) error      { return nil }
func (c *scriptConn) SetReadDeadline(time.Time) error  { return nil }
func (c *scriptConn) SetWriteDeadline(time.Time) error { return nil }

type scriptAddr struct{}

func (scriptAddr) Network() string { return "script" }
func (scriptAddr) String() string  { return "script" }

// FuzzHandshake feeds arbitrary bytes as the entire client side of a
// connection — flags, option stream, and (if negotiation somehow
// completes) transmission requests. The server must terminate without
// panicking on every input: the stream is attacker-controlled in any
// real deployment.
func FuzzHandshake(f *testing.F) {
	flags := []byte{0, 0, 0, flagNoZeroes}
	opt := func(option uint32, payload []byte) []byte {
		hdr := make([]byte, 16)
		binary.BigEndian.PutUint64(hdr[0:], iHaveOpt)
		binary.BigEndian.PutUint32(hdr[8:], option)
		binary.BigEndian.PutUint32(hdr[12:], uint32(len(payload)))
		return append(hdr, payload...)
	}
	goPayload := make([]byte, 6+1)
	binary.BigEndian.PutUint32(goPayload, 1)
	goPayload[4] = 'd'
	f.Add(append(append([]byte{}, flags...), opt(optAbort, nil)...))
	f.Add(append(append([]byte{}, flags...), opt(optList, nil)...))
	f.Add(append(append([]byte{}, flags...), opt(optGo, goPayload)...))
	f.Add(append(append([]byte{}, flags...), opt(optExportName, []byte("d"))...))
	f.Add(append(append([]byte{}, flags...), opt(999, []byte("junk"))...))
	f.Add([]byte{0xff, 0xff})

	f.Fuzz(func(t *testing.T, stream []byte) {
		s := NewServer(Export{Name: "d", Disk: memVDisk{dev: simdev.NewMem(block.MiB)}})
		s.QueueDepth = 1
		_ = s.handle(&scriptConn{r: bytes.NewReader(stream)})
	})
}

// FuzzRequestStream fuzzes the transmission-phase request parser in
// isolation: arbitrary bytes as the post-handshake request stream.
func FuzzRequestStream(f *testing.F) {
	req := func(typ uint16, handle, offset uint64, length uint32, data []byte) []byte {
		hdr := make([]byte, 28)
		binary.BigEndian.PutUint32(hdr[0:], requestMagic)
		binary.BigEndian.PutUint16(hdr[6:], typ)
		binary.BigEndian.PutUint64(hdr[8:], handle)
		binary.BigEndian.PutUint64(hdr[16:], offset)
		binary.BigEndian.PutUint32(hdr[24:], length)
		return append(hdr, data...)
	}
	f.Add(req(cmdRead, 1, 0, 4096, nil))
	f.Add(append(req(cmdWrite, 2, 512, 512, make([]byte, 512)), req(cmdDisc, 3, 0, 0, nil)...))
	f.Add(req(cmdFlush, 4, 0, 0, nil))
	f.Add(req(77, 5, 0, 0, nil))
	f.Add(req(cmdRead, 6, 0, 64<<20, nil)) // oversized
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, stream []byte) {
		s := NewServer()
		reqs := make(chan ioRequest, 4)
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for req := range reqs {
				if req.typ == cmdWrite && uint32(len(req.data)) != req.length {
					t.Errorf("write request carries %d bytes, header claims %d", len(req.data), req.length)
				}
				if req.length > maxRequestLen {
					t.Errorf("request of %d bytes passed the size gate", req.length)
				}
			}
		}()
		_ = s.readRequests(&scriptConn{r: bytes.NewReader(stream)}, reqs)
		close(reqs)
		<-drained
	})
}
