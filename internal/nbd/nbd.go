// Package nbd implements a Network Block Device (NBD) server speaking
// the fixed-newstyle protocol, exposing any vdisk.Disk — in particular
// an LSVD volume — to a real kernel client (nbd-client / qemu-nbd) or
// to the in-package test client.
//
// This is the deployment substitute for the paper prototype's
// device-mapper kernel module (§3.7): the paper's own follow-up moved
// to a userspace implementation, and NBD provides the standard block
// interface without kernel code. Supported: NBD_OPT_EXPORT_NAME,
// NBD_OPT_GO, NBD_OPT_INFO, NBD_OPT_LIST, NBD_OPT_ABORT; transmission
// commands READ, WRITE, FLUSH, TRIM, DISC.
package nbd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"lsvd/internal/invariant"
	"lsvd/internal/vdisk"
)

// Protocol constants (https://github.com/NetworkBlockDevice/nbd/blob/master/doc/proto.md).
const (
	nbdMagic         = 0x4e42444d41474943 // "NBDMAGIC"
	iHaveOpt         = 0x49484156454F5054 // "IHAVEOPT"
	optReplyMagic    = 0x3e889045565a9
	requestMagic     = 0x25609513
	simpleReplyMagic = 0x67446698

	flagFixedNewstyle = 1 << 0
	flagNoZeroes      = 1 << 1

	optExportName = 1
	optAbort      = 2
	optList       = 3
	optInfo       = 6
	optGo         = 7

	repAck    = 1
	repServer = 2
	repInfo   = 3

	repErrUnsup   = 1<<31 | 1
	repErrInvalid = 1<<31 | 3
	repErrUnknown = 1<<31 | 6

	infoExport = 0

	cmdRead  = 0
	cmdWrite = 1
	cmdDisc  = 2
	cmdFlush = 3
	cmdTrim  = 4

	// Transmission flags.
	tfHasFlags  = 1 << 0
	tfSendFlush = 1 << 2
	tfSendTrim  = 1 << 5

	// Errno-style errors.
	errIO    = 5
	errInval = 22
	errNoSup = 95

	maxRequestLen = 32 << 20
)

// Export is one named disk served by a Server.
type Export struct {
	Name string
	Disk vdisk.Disk
}

// Server serves NBD exports over a listener.
type Server struct {
	mu      sync.Mutex
	exports map[string]vdisk.Disk

	// QueueDepth is the number of worker goroutines serving each
	// connection's requests, i.e. how much client queue depth actually
	// reaches the disk concurrently. Default 8; 1 restores strictly
	// serial request handling. Set before Serve.
	QueueDepth int

	ln     net.Listener
	wg     sync.WaitGroup
	closed bool
}

// NewServer creates a server with the given exports.
func NewServer(exports ...Export) *Server {
	s := &Server{exports: make(map[string]vdisk.Disk)}
	for _, e := range exports {
		s.exports[e.Name] = e.Disk
	}
	return s
}

// AddExport registers another export.
func (s *Server) AddExport(e Export) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exports[e.Name] = e.Disk
}

// Serve accepts connections on ln until Close; it blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		invariant.Go("nbd-conn", func() {
			defer s.wg.Done()
			defer conn.Close()
			_ = s.handle(conn)
		})
	}
}

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) export(name string) (vdisk.Disk, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// An empty requested name means "the default export": serve the
	// sole export if there is exactly one.
	if name == "" && len(s.exports) == 1 {
		for _, d := range s.exports {
			return d, true
		}
	}
	d, ok := s.exports[name]
	return d, ok
}

func (s *Server) exportNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.exports))
	for n := range s.exports {
		names = append(names, n)
	}
	return names
}

// handle runs the fixed-newstyle handshake then transmission.
func (s *Server) handle(conn net.Conn) error {
	var hs [18]byte
	binary.BigEndian.PutUint64(hs[0:], nbdMagic)
	binary.BigEndian.PutUint64(hs[8:], iHaveOpt)
	binary.BigEndian.PutUint16(hs[16:], flagFixedNewstyle|flagNoZeroes)
	if _, err := conn.Write(hs[:]); err != nil {
		return err
	}
	var clientFlags uint32
	if err := binary.Read(conn, binary.BigEndian, &clientFlags); err != nil {
		return err
	}
	noZeroes := clientFlags&flagNoZeroes != 0

	for {
		disk, done, err := s.negotiate(conn, noZeroes)
		if err != nil || done && disk == nil {
			return err
		}
		if disk != nil {
			return s.transmission(conn, disk)
		}
	}
}

// negotiate processes one client option. It returns a non-nil disk to
// enter transmission, done=true to close, or neither to keep
// negotiating.
func (s *Server) negotiate(conn net.Conn, noZeroes bool) (vdisk.Disk, bool, error) {
	var hdr struct {
		Magic  uint64
		Option uint32
		Length uint32
	}
	if err := binary.Read(conn, binary.BigEndian, &hdr); err != nil {
		return nil, true, err
	}
	if hdr.Magic != iHaveOpt {
		return nil, true, fmt.Errorf("nbd: bad option magic %#x", hdr.Magic)
	}
	if hdr.Length > 1<<20 {
		return nil, true, fmt.Errorf("nbd: oversized option payload %d", hdr.Length)
	}
	payload := make([]byte, hdr.Length)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, true, err
	}

	switch hdr.Option {
	case optExportName:
		disk, ok := s.export(string(payload))
		if !ok {
			// No error reply possible for EXPORT_NAME: hard close.
			return nil, true, fmt.Errorf("nbd: unknown export %q", payload)
		}
		var resp [10]byte
		binary.BigEndian.PutUint64(resp[0:], uint64(disk.Size()))
		binary.BigEndian.PutUint16(resp[8:], s.transmissionFlags())
		if _, err := conn.Write(resp[:]); err != nil {
			return nil, true, err
		}
		if !noZeroes {
			if _, err := conn.Write(make([]byte, 124)); err != nil {
				return nil, true, err
			}
		}
		return disk, false, nil

	case optGo, optInfo:
		if len(payload) < 6 {
			return nil, false, s.optReply(conn, hdr.Option, repErrInvalid, nil)
		}
		nameLen := binary.BigEndian.Uint32(payload)
		if int(nameLen)+6 > len(payload) {
			return nil, false, s.optReply(conn, hdr.Option, repErrInvalid, nil)
		}
		name := string(payload[4 : 4+nameLen])
		disk, ok := s.export(name)
		if !ok {
			return nil, false, s.optReply(conn, hdr.Option, repErrUnknown, []byte(name))
		}
		info := make([]byte, 12)
		binary.BigEndian.PutUint16(info[0:], infoExport)
		binary.BigEndian.PutUint64(info[2:], uint64(disk.Size()))
		binary.BigEndian.PutUint16(info[10:], s.transmissionFlags())
		if err := s.optReply(conn, hdr.Option, repInfo, info); err != nil {
			return nil, true, err
		}
		if err := s.optReply(conn, hdr.Option, repAck, nil); err != nil {
			return nil, true, err
		}
		if hdr.Option == optGo {
			return disk, false, nil
		}
		return nil, false, nil

	case optList:
		for _, name := range s.exportNames() {
			entry := make([]byte, 4+len(name))
			binary.BigEndian.PutUint32(entry, uint32(len(name)))
			copy(entry[4:], name)
			if err := s.optReply(conn, optList, repServer, entry); err != nil {
				return nil, true, err
			}
		}
		return nil, false, s.optReply(conn, optList, repAck, nil)

	case optAbort:
		_ = s.optReply(conn, optAbort, repAck, nil)
		return nil, true, nil

	default:
		return nil, false, s.optReply(conn, hdr.Option, repErrUnsup, nil)
	}
}

func (s *Server) transmissionFlags() uint16 {
	return tfHasFlags | tfSendFlush | tfSendTrim
}

func (s *Server) optReply(conn net.Conn, option, reply uint32, data []byte) error {
	hdr := make([]byte, 20)
	binary.BigEndian.PutUint64(hdr[0:], optReplyMagic)
	binary.BigEndian.PutUint32(hdr[8:], option)
	binary.BigEndian.PutUint32(hdr[12:], reply)
	binary.BigEndian.PutUint32(hdr[16:], uint32(len(data)))
	if _, err := conn.Write(hdr); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	_, err := conn.Write(data)
	return err
}

// ioRequest is one parsed transmission request handed to a worker.
// Write payloads are read off the wire by the reader goroutine (the
// stream is sequential), so workers never touch the receive side.
type ioRequest struct {
	typ    uint16
	handle uint64
	offset uint64
	length uint32
	data   []byte // write payload
}

// connState is the per-connection fan-out: a reader feeds requests to
// QueueDepth workers so a client queueing at depth >1 actually gets
// concurrent disk I/O (the LSVD read path is concurrent and writes are
// acknowledged at the cache log, so depth matters). Replies are
// serialized by replyMu; simple replies may interleave in any order,
// which NBD permits — the handle identifies the request.
type connState struct {
	conn    net.Conn
	disk    vdisk.Disk
	replyMu sync.Mutex
	failMu  sync.Mutex
	failed  error
}

// fail records the first reply-side error and closes the connection so
// the reader unblocks; later errors are ignored.
func (c *connState) fail(err error) {
	c.failMu.Lock()
	if c.failed == nil && err != nil {
		c.failed = err
		c.conn.Close()
	}
	c.failMu.Unlock()
}

func (c *connState) failure() error {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	return c.failed
}

// transmission serves I/O requests until DISC or error.
func (s *Server) transmission(conn net.Conn, disk vdisk.Disk) error {
	depth := s.QueueDepth
	if depth <= 0 {
		depth = 8
	}
	st := &connState{conn: conn, disk: disk}
	reqs := make(chan ioRequest, depth)
	var workers sync.WaitGroup
	workers.Add(depth)
	for i := 0; i < depth; i++ {
		invariant.Go("nbd-io-worker", func() {
			defer workers.Done()
			for req := range reqs {
				st.serve(req)
			}
		})
	}
	err := s.readRequests(conn, reqs)
	close(reqs)
	workers.Wait()
	if ferr := st.failure(); ferr != nil {
		return ferr
	}
	return err
}

// requestHdrLen is the wire size of a transmission request header:
// magic u32, flags u16, type u16, handle u64, offset u64, length u32.
const requestHdrLen = 28

// readRequests parses the request stream, feeding workers until DISC,
// EOF or a protocol error. The stream is read through one buffered
// reader with the fixed header decoded by hand, so a request header
// and its write payload are typically absorbed by a single socket read
// and no per-request reflection (binary.Read) or header allocation
// happens on the hot path.
func (s *Server) readRequests(conn net.Conn, reqs chan<- ioRequest) error {
	br := bufio.NewReaderSize(conn, 64<<10)
	var hdr [requestHdrLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		be := binary.BigEndian
		if magic := be.Uint32(hdr[0:]); magic != requestMagic {
			return fmt.Errorf("nbd: bad request magic %#x", magic)
		}
		r := ioRequest{
			typ:    be.Uint16(hdr[6:]), // hdr[4:6] is command flags (none supported)
			handle: be.Uint64(hdr[8:]),
			offset: be.Uint64(hdr[16:]),
			length: be.Uint32(hdr[24:]),
		}
		if r.length > maxRequestLen {
			return fmt.Errorf("nbd: request of %d bytes too large", r.length)
		}
		if r.typ == cmdWrite {
			r.data = make([]byte, r.length)
			if _, err := io.ReadFull(br, r.data); err != nil {
				return err
			}
		}
		if r.typ == cmdDisc {
			return nil
		}
		reqs <- r
	}
}

// serve executes one request against the disk and writes the reply.
func (c *connState) serve(req ioRequest) {
	switch req.typ {
	case cmdRead:
		buf := make([]byte, req.length)
		errno := uint32(0)
		if err := c.disk.ReadAt(buf, int64(req.offset)); err != nil {
			errno = errIO
		}
		if errno != 0 {
			buf = nil
		}
		c.reply(req.handle, errno, buf)

	case cmdWrite:
		errno := uint32(0)
		if err := c.disk.WriteAt(req.data, int64(req.offset)); err != nil {
			errno = errIO
		}
		c.reply(req.handle, errno, nil)

	case cmdFlush:
		errno := uint32(0)
		if err := c.disk.Flush(); err != nil {
			errno = errIO
		}
		c.reply(req.handle, errno, nil)

	case cmdTrim:
		errno := uint32(0)
		if err := c.disk.Trim(int64(req.offset), int64(req.length)); err != nil {
			errno = errInval
		}
		c.reply(req.handle, errno, nil)

	default:
		c.reply(req.handle, errNoSup, nil)
	}
}

// reply writes a simple reply header plus optional read payload as one
// critical section, so concurrent workers cannot interleave a header
// into another reply's data. Header and payload go out as one vectored
// write (net.Buffers → writev on TCP), so the payload is neither
// copied into a combined buffer nor sent as a separate small segment.
func (c *connState) reply(handle uint64, errno uint32, data []byte) {
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:], simpleReplyMagic)
	binary.BigEndian.PutUint32(hdr[4:], errno)
	binary.BigEndian.PutUint64(hdr[8:], handle)
	bufs := net.Buffers{hdr[:]}
	if len(data) > 0 {
		bufs = append(bufs, data)
	}
	c.replyMu.Lock()
	defer c.replyMu.Unlock()
	if _, err := bufs.WriteTo(c.conn); err != nil {
		c.fail(err)
	}
}
