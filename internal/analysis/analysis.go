package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, position-resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run is invoked once per package; the
// optional Finish hook runs after every package, for analyzers that
// accumulate cross-package facts (lockorder's acquired-before graph).
// Analyzers carrying state between Run and Finish are single-use;
// Analyzers() hands out fresh instances.
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pass)
	Finish func(report func(pos token.Position, format string, args ...any))
}

// Pass carries one analyzer's view of one package, plus the shared
// module-wide interprocedural context (call graph + effect summaries).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Ann      *Annotations
	IP       *Interproc

	diags *[]Diagnostic
}

// Reportf records a diagnostic unless an //lsvd:ignore annotation
// covers pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Ann.Ignored(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over every package and returns the
// deduplicated, position-sorted findings.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	anns := make([]*Annotations, len(pkgs))
	reg := &Registry{}
	for i, p := range pkgs {
		anns[i] = buildAnnotations(l.Fset, p, reg)
	}
	ip := buildInterproc(l, pkgs, anns)
	var diags []Diagnostic
	for _, a := range analyzers {
		for i, p := range pkgs {
			pass := &Pass{
				Analyzer: a, Fset: l.Fset, Files: p.Files,
				Pkg: p.Pkg, Info: p.Info, Ann: anns[i], IP: ip, diags: &diags,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			name := a.Name
			a.Finish(func(pos token.Position, format string, args ...any) {
				diags = append(diags, Diagnostic{Pos: pos, Analyzer: name, Message: fmt.Sprintf(format, args...)})
			})
		}
	}
	return dedupe(diags)
}

func dedupe(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Registry is module-wide annotation state shared by all packages: the
// set of declared lock names and the annotated field objects carrying
// them, so per-package passes can reason about locks a caller in
// another package may hold (or manipulate directly).
type Registry struct {
	LockNames []string
	lockObjs  map[types.Object]string
}

func (r *Registry) addLock(name string, obj types.Object) {
	if r.lockObjs == nil {
		r.lockObjs = make(map[types.Object]string)
	}
	if obj != nil {
		r.lockObjs[obj] = name
	}
	for _, n := range r.LockNames {
		if n == name {
			return
		}
	}
	r.LockNames = append(r.LockNames, name)
	sort.Strings(r.LockNames)
}

func (r *Registry) lockObj(obj types.Object) (string, bool) {
	name, ok := r.lockObjs[obj]
	return name, ok
}

func (r *Registry) hasLock(name string) bool {
	for _, n := range r.LockNames {
		if n == name {
			return true
		}
	}
	return false
}

// Annotations is the per-package index of lsvd directives:
//
//	//lsvd:lock <name>              on a mutex struct field: the lock
//	                                participates in lockheld/lockorder
//	                                under the given global name.
//	//lsvd:classifies-errors        on a function or struct field: backend
//	                                errors flowing through it are
//	                                classified transient-vs-terminal.
//	//lsvd:requires <lock>          on a function's doc comment: the
//	                                function must only be called with
//	                                the named //lsvd:lock mutex held
//	                                (the `fooLocked` helper contract).
//	                                Repeat the directive for multiple
//	                                locks; tokens after the name are
//	                                commentary.
//	//lsvd:ignore <reason>          suppresses diagnostics on its own
//	                                line and the following line; on a
//	                                function's doc comment, on the whole
//	                                function. The reason is mandatory.
type Annotations struct {
	Global     *Registry
	Locks      map[types.Object]string   // annotated mutex field -> lock name
	Classifies map[types.Object]bool     // annotated funcs and fields
	Requires   map[types.Object][]string // function -> locks that must be held by the caller

	requiresPos map[types.Object]token.Pos // directive position, for annform
	lineIgnores map[string]map[int]bool    // file -> lines covered
	fset        *token.FileSet
	malformed   []token.Pos // directives missing required arguments
}

// Ignored reports whether an //lsvd:ignore covers the position.
func (a *Annotations) Ignored(pos token.Position) bool {
	lines := a.lineIgnores[pos.Filename]
	return lines[pos.Line]
}

// IgnoredAt is Ignored for an unresolved token.Pos.
func (a *Annotations) IgnoredAt(pos token.Pos) bool {
	return a.Ignored(a.fset.Position(pos))
}

const (
	dirLock       = "lsvd:lock"
	dirClassifies = "lsvd:classifies-errors"
	dirIgnore     = "lsvd:ignore"
	dirRequires   = "lsvd:requires"
)

// directive returns the argument of the named directive if the
// comment group carries it ("" argument, found=true for bare ones).
func directive(g *ast.CommentGroup, name string) (arg string, found bool) {
	if g == nil {
		return "", false
	}
	for _, c := range g.List {
		t := strings.TrimPrefix(c.Text, "//")
		t = strings.TrimSpace(t)
		if t == name {
			return "", true
		}
		if rest, ok := strings.CutPrefix(t, name+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// directiveAll returns one entry per occurrence of the named directive
// in the comment group ("" for bare ones), with positions.
func directiveAll(g *ast.CommentGroup, name string) (args []string, poss []token.Pos) {
	if g == nil {
		return nil, nil
	}
	for _, c := range g.List {
		t := strings.TrimPrefix(c.Text, "//")
		t = strings.TrimSpace(t)
		if t == name {
			args, poss = append(args, ""), append(poss, c.Pos())
			continue
		}
		if rest, ok := strings.CutPrefix(t, name+" "); ok {
			args, poss = append(args, strings.TrimSpace(rest)), append(poss, c.Pos())
		}
	}
	return args, poss
}

func buildAnnotations(fset *token.FileSet, p *Package, reg *Registry) *Annotations {
	a := &Annotations{
		Global:      reg,
		Locks:       make(map[types.Object]string),
		Classifies:  make(map[types.Object]bool),
		Requires:    make(map[types.Object][]string),
		requiresPos: make(map[types.Object]token.Pos),
		lineIgnores: make(map[string]map[int]bool),
		fset:        fset,
	}
	for _, f := range p.Files {
		// Line ignores: every comment anywhere in the file.
		for _, g := range f.Comments {
			for _, c := range g.List {
				t := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if t != dirIgnore && !strings.HasPrefix(t, dirIgnore+" ") {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(t, dirIgnore))
				if reason == "" {
					a.malformed = append(a.malformed, c.Pos())
					continue
				}
				pos := fset.Position(c.Pos())
				a.coverLine(pos.Filename, pos.Line)
				a.coverLine(pos.Filename, pos.Line+1)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if _, ok := directive(n.Doc, dirIgnore); ok {
					start := fset.Position(n.Pos())
					end := fset.Position(n.End())
					for line := start.Line; line <= end.Line; line++ {
						a.coverLine(start.Filename, line)
					}
				}
				if _, ok := directive(n.Doc, dirClassifies); ok {
					if obj := p.Info.Defs[n.Name]; obj != nil {
						a.Classifies[obj] = true
					}
				}
				if args, poss := directiveAll(n.Doc, dirRequires); len(args) > 0 {
					obj := p.Info.Defs[n.Name]
					for i, arg := range args {
						// The lock name is the first token; anything
						// after it is commentary.
						name := ""
						if fs := strings.Fields(arg); len(fs) > 0 {
							name = fs[0]
						}
						if name == "" {
							a.malformed = append(a.malformed, poss[i])
							continue
						}
						if obj != nil {
							a.Requires[obj] = append(a.Requires[obj], name)
							a.requiresPos[obj] = poss[i]
						}
					}
				}
			case *ast.StructType:
				for _, field := range n.Fields.List {
					a.fieldDirectives(p, field)
				}
			}
			return true
		})
	}
	return a
}

func (a *Annotations) fieldDirectives(p *Package, field *ast.Field) {
	for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if arg, ok := directive(doc, dirLock); ok {
			// The lock name is the first token; anything after it is
			// commentary.
			name := ""
			if fs := strings.Fields(arg); len(fs) > 0 {
				name = fs[0]
			}
			if name == "" {
				a.malformed = append(a.malformed, field.Pos())
				continue
			}
			for _, id := range field.Names {
				if obj := p.Info.Defs[id]; obj != nil {
					a.Locks[obj] = name
					a.Global.addLock(name, obj)
				}
			}
		}
		if _, ok := directive(doc, dirClassifies); ok {
			for _, id := range field.Names {
				if obj := p.Info.Defs[id]; obj != nil {
					a.Classifies[obj] = true
				}
			}
		}
	}
}

func (a *Annotations) coverLine(file string, line int) {
	if a.lineIgnores[file] == nil {
		a.lineIgnores[file] = make(map[int]bool)
	}
	a.lineIgnores[file][line] = true
}

// annform is the directives analyzer: it reports malformed lsvd
// directives (an //lsvd:ignore without a reason, an //lsvd:lock or
// //lsvd:requires without a name, an //lsvd:requires naming a lock no
// //lsvd:lock declares), so suppressions and contracts always carry a
// resolvable justification.
func newAnnform() *Analyzer {
	a := &Analyzer{
		Name: "annform",
		Doc:  "lsvd directives must be well-formed (//lsvd:ignore requires a reason, //lsvd:lock and //lsvd:requires a declared lock name)",
	}
	a.Run = func(pass *Pass) {
		for _, pos := range pass.Ann.malformed {
			// Bypass ignore handling: a malformed directive must not
			// suppress its own report.
			*pass.diags = append(*pass.diags, Diagnostic{
				Pos:      pass.Fset.Position(pos),
				Analyzer: a.Name,
				Message:  "malformed lsvd directive: //lsvd:ignore requires a reason, //lsvd:lock and //lsvd:requires a name",
			})
		}
		for obj, names := range pass.Ann.Requires {
			for _, name := range names {
				if !pass.Ann.Global.hasLock(name) {
					pass.Reportf(pass.Ann.requiresPos[obj], "//lsvd:requires names unknown lock %q (no //lsvd:lock declares it)", name)
				}
			}
		}
	}
	return a
}
