package core

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

// slowStore delays every PUT so the destage queue stays populated,
// letting crash tests catch the pipeline mid-drain.
type slowStore struct {
	objstore.Store
	delay time.Duration
}

func (s *slowStore) Put(ctx context.Context, name string, data []byte) error {
	time.Sleep(s.delay)
	return s.Store.Put(ctx, name, data)
}

// TestCrashMidDestageRecoversFromCache: a crash with writes still
// queued for destage must lose nothing when the cache survives — the
// write log holds every acknowledged write and recovery replays the
// tail the backend is missing (§3.3).
func TestCrashMidDestageRecoversFromCache(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.Store = &slowStore{Store: o.Store, delay: 2 * time.Millisecond}
		o.BatchBytes = 64 * 1024 // seal often so the pipeline is busy
	})
	const n = 32
	for i := 0; i < n; i++ {
		if err := h.disk.WriteAt(payload(int64(i), 64*1024), int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.disk.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash now: the queue/uploads are (very likely) still draining.
	if q := h.disk.Stats().DestageQueued; q == 0 {
		t.Log("destage queue already empty at crash (still a valid recovery test)")
	}
	h.disk.Kill()
	durable := h.disk.Backend().Stats().DurableWriteSeq
	if durable >= n {
		t.Log("pipeline drained before the crash; replay path not exercised")
	}
	h.reopen(t)
	if durable < n && h.disk.Stats().RecoveredReplayed == 0 {
		t.Fatal("backend incomplete but no cache records replayed")
	}
	for i := 0; i < n; i++ {
		got := make([]byte, 64*1024)
		if err := h.disk.ReadAt(got, int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(int64(i), 64*1024)) {
			t.Fatalf("write %d lost in mid-destage crash", i)
		}
	}
}

// TestCrashMidDestageBlankCacheKeepsPrefix: same crash, but the cache
// is lost too. Writes beyond the destaged point may vanish, but the
// survivors must form a prefix of the acknowledged order (§3.4) —
// in-order commit of concurrent uploads is exactly what guarantees it.
func TestCrashMidDestageBlankCacheKeepsPrefix(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.Store = &slowStore{Store: o.Store, delay: 2 * time.Millisecond}
		o.BatchBytes = 64 * 1024
		o.UploadDepth = 8
	})
	const n = 32
	for i := 0; i < n; i++ {
		if err := h.disk.WriteAt(payload(int64(i), 64*1024), int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
	}
	h.disk.Kill()
	h.opts.CacheDev = simdev.NewMem(256 * block.MiB)
	h.reopen(t)
	present := make([]bool, n)
	for i := 0; i < n; i++ {
		got := make([]byte, 64*1024)
		if err := h.disk.ReadAt(got, int64(i)*(1<<20)); err != nil {
			t.Fatal(err)
		}
		present[i] = bytes.Equal(got, payload(int64(i), 64*1024))
	}
	seenGap := false
	for i, p := range present {
		if !p {
			seenGap = true
		} else if seenGap {
			t.Fatalf("prefix consistency violated: write %d present after a gap", i)
		}
	}
}

// TestDestageStress hammers the full concurrent data path — parallel
// writers, readers, trims, flushes, GC passes and stats polls — while
// the async pipeline destages underneath. Run with -race this is the
// end-to-end locking check for the rewrite.
func TestDestageStress(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.BatchBytes = 256 * 1024
		o.UploadDepth = 4
		o.CheckpointEvery = 16
	})
	const workers = 6
	const iters = 80
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each worker owns a disjoint 16 MiB region.
			base := int64(g) * (16 << 20)
			rng := rand.New(rand.NewSource(int64(g)))
			buf := payload(int64(g), 32*1024)
			rd := make([]byte, len(buf))
			for i := 0; i < iters; i++ {
				off := base + int64(rng.Intn(256))*32*1024
				switch rng.Intn(10) {
				case 0:
					if err := h.disk.Trim(off, int64(len(buf))); err != nil {
						errs <- err
						return
					}
				case 1:
					if err := h.disk.Flush(); err != nil {
						errs <- err
						return
					}
				default:
					if err := h.disk.WriteAt(buf, off); err != nil {
						errs <- err
						return
					}
					if err := h.disk.ReadAt(rd, off); err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(rd, buf) {
						t.Errorf("worker %d: torn read at %d", g, off)
						return
					}
				}
			}
			errs <- nil
		}(g)
	}

	// Control-plane goroutine: stats polls and explicit GC passes
	// racing the data path.
	ctl := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-ctl:
				errs <- nil
				return
			default:
			}
			_ = h.disk.Stats()
			if err := h.disk.RunGC(); err != nil {
				errs <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Wait for the workers by draining their results, then stop the
	// control goroutine.
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(ctl)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Everything still consistent after a full drain.
	if err := h.disk.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := h.disk.Close(); err != nil {
		t.Fatal(err)
	}
}
