// Package objstore provides the S3-compatible object interface LSVD
// uses for long-term durability (paper §3): immutable named objects
// with PUT/GET/range-GET/DELETE/LIST. Implementations include an
// in-memory store (with a "slim" mode that elides all-zero payload
// tails so benchmark-scale volumes cost little RAM), a directory-backed
// store for real use, and a wrapper adding S3-like latency, bandwidth
// accounting and fault injection.
package objstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned for GETs and DELETEs of missing objects.
var ErrNotFound = errors.New("objstore: object not found")

// ErrBadName is returned for syntactically invalid object names (path
// escapes, absolute paths, reserved temp names). It is terminal under
// retry: no number of attempts makes a bad name valid.
var ErrBadName = errors.New("objstore: invalid object name")

// ErrBadRange is returned when a range request's offset lies outside
// the object. Terminal under retry.
var ErrBadRange = errors.New("objstore: invalid range")

// Store is the S3-like backend interface. Objects are immutable by
// convention (only the volume superblock is ever overwritten);
// implementations need not enforce it.
type Store interface {
	// Put stores data under name, replacing any existing object.
	Put(ctx context.Context, name string, data []byte) error
	// Get returns the full object.
	Get(ctx context.Context, name string) ([]byte, error)
	// GetRange returns length bytes at offset off; short results are
	// errors except when the object ends inside the range, in which
	// case the available suffix is returned.
	GetRange(ctx context.Context, name string, off, length int64) ([]byte, error)
	// Delete removes an object. Deleting a missing object returns
	// ErrNotFound.
	Delete(ctx context.Context, name string) error
	// List returns all object names with the given prefix, sorted.
	List(ctx context.Context, prefix string) ([]string, error)
	// Size returns an object's length in bytes.
	Size(ctx context.Context, name string) (int64, error)
}

// VectorPutter is an optional Store extension: PutV stores the
// concatenation of bufs under name without requiring the caller to
// assemble a contiguous image first. The write path builds objects as
// a header plus references into payload staging buffers; a store that
// implements PutV saves one full copy of every object. All wrappers in
// this package forward it, so the zero-copy path survives Prefixed,
// Retrier, Metered and Faulty stacking.
type VectorPutter interface {
	PutV(ctx context.Context, name string, bufs [][]byte) error
}

// PutVec stores the concatenation of bufs, via PutV when the store
// supports it and a contiguous copy otherwise.
func PutVec(ctx context.Context, s Store, name string, bufs [][]byte) error {
	if vp, ok := s.(VectorPutter); ok {
		return vp.PutV(ctx, name, bufs)
	}
	return s.Put(ctx, name, VecJoin(bufs))
}

// VecLen sums the lengths of bufs.
func VecLen(bufs [][]byte) int64 {
	var n int64
	for _, b := range bufs {
		n += int64(len(b))
	}
	return n
}

// VecJoin concatenates bufs into one buffer.
func VecJoin(bufs [][]byte) []byte {
	out := make([]byte, 0, VecLen(bufs))
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

// slimPrefix is the minimum head kept verbatim by the slim memory
// store; everything up to the last non-zero byte is kept regardless,
// which always covers object headers.
const slimPrefix = 4096

type memObject struct {
	data []byte // full data, or the non-zero head in slim mode
	size int64  // logical size
}

// Mem is an in-memory Store. With Slim set, payload bytes beyond the
// last non-zero byte are not retained: Get/GetRange synthesize zeros.
// Slim mode is exact for benchmark workloads that write zero payloads
// and is rejected (falls back to full retention) when an object has
// non-zero data past the retained head.
type Mem struct {
	Slim bool

	mu      sync.RWMutex
	objects map[string]memObject
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{objects: make(map[string]memObject)} }

// NewMemSlim returns an in-memory store that elides all-zero tails.
func NewMemSlim() *Mem { return &Mem{Slim: true, objects: make(map[string]memObject)} }

// Put implements Store.
func (s *Mem) Put(_ context.Context, name string, data []byte) error {
	obj := memObject{size: int64(len(data))}
	keep := len(data)
	if s.Slim {
		// Retain up to the last non-zero byte, at least slimPrefix.
		nz := lastNonZero(data)
		keep = nz + 1
		if keep < slimPrefix {
			keep = slimPrefix
		}
		if keep > len(data) {
			keep = len(data)
		}
	}
	obj.data = make([]byte, keep)
	copy(obj.data, data[:keep])
	s.mu.Lock()
	s.objects[name] = obj
	s.mu.Unlock()
	return nil
}

// PutV implements VectorPutter: one copy, straight from the caller's
// pieces into the retained buffer (honoring slim-mode tail elision).
func (s *Mem) PutV(_ context.Context, name string, bufs [][]byte) error {
	size := VecLen(bufs)
	keep := size
	if s.Slim {
		keep = 0
		pos := size
		for i := len(bufs) - 1; i >= 0; i-- {
			pos -= int64(len(bufs[i]))
			if nz := lastNonZero(bufs[i]); nz >= 0 {
				keep = pos + int64(nz) + 1
				break
			}
		}
		if keep < slimPrefix {
			keep = slimPrefix
		}
		if keep > size {
			keep = size
		}
	}
	obj := memObject{size: size, data: make([]byte, 0, keep)}
	for _, b := range bufs {
		room := keep - int64(len(obj.data))
		if room <= 0 {
			break
		}
		if int64(len(b)) > room {
			b = b[:room]
		}
		obj.data = append(obj.data, b...)
	}
	s.mu.Lock()
	s.objects[name] = obj
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *Mem) Get(ctx context.Context, name string) ([]byte, error) {
	return s.GetRange(ctx, name, 0, -1)
}

// GetRange implements Store. length -1 means "to the end".
func (s *Mem) GetRange(_ context.Context, name string, off, length int64) ([]byte, error) {
	s.mu.RLock()
	obj, ok := s.objects[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if off < 0 || off > obj.size {
		return nil, fmt.Errorf("%w: offset %d outside object %s of %d bytes", ErrBadRange, off, name, obj.size)
	}
	if length < 0 || off+length > obj.size {
		length = obj.size - off
	}
	out := make([]byte, length)
	if off < int64(len(obj.data)) {
		copy(out, obj.data[off:min64(int64(len(obj.data)), off+length)])
	}
	return out, nil
}

// Delete implements Store.
func (s *Mem) Delete(_ context.Context, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(s.objects, name)
	return nil
}

// List implements Store.
func (s *Mem) List(_ context.Context, prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for name := range s.objects {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Size implements Store.
func (s *Mem) Size(_ context.Context, name string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.objects[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return obj.size, nil
}

// TotalBytes returns the sum of logical object sizes (live backend
// footprint, used by GC experiments).
func (s *Mem) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, o := range s.objects {
		n += o.size
	}
	return n
}

// Count returns the number of objects.
func (s *Mem) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

func lastNonZero(p []byte) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// tmpPrefix begins every temp file Dir.Put stages before its rename.
// '#' never appears in valid object names (path rejects it below), so
// List can filter temp files exactly without ever hiding a legitimate
// object, and a Put of "<name>.tmp" cannot collide with staging files.
const tmpPrefix = "#tmp#"

// Dir is a directory-backed Store for real deployments: each object is
// a file; names may contain '/' which map to subdirectories.
type Dir struct {
	root string

	// NoSync skips the fsyncs in Put. Puts remain atomic (tmp+rename)
	// but are no longer crash-durable: an acknowledged object can
	// vanish if the host crashes before writeback. Benchmarks may set
	// it; deployments that care about §3.3 durability must not.
	NoSync bool

	mu   sync.Mutex // serializes Put's tmp-rename per store
	tmpN uint64     // staging-file counter, under mu
}

// NewDir returns a store rooted at dir, creating it if necessary.
func NewDir(dir string) (*Dir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Dir{root: dir}, nil
}

// NewDirNoSync returns a directory store with durability fsyncs
// disabled — faster, but acknowledged objects may be lost on host
// crash.
func NewDirNoSync(dir string) (*Dir, error) {
	s, err := NewDir(dir)
	if err != nil {
		return nil, err
	}
	s.NoSync = true
	return s, nil
}

func (s *Dir) path(name string) (string, error) {
	clean := filepath.Clean(name)
	if clean == "." || strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("%w: %q", ErrBadName, name)
	}
	for _, seg := range strings.Split(filepath.ToSlash(clean), "/") {
		if strings.HasPrefix(seg, tmpPrefix) {
			return "", fmt.Errorf("%w: %q uses reserved temp prefix", ErrBadName, name)
		}
	}
	return filepath.Join(s.root, clean), nil
}

// Put implements Store with an atomic, crash-durable tmp+rename: the
// staged file is fsynced before the rename and the parent directory
// after, so an acknowledged Put survives a host crash (unless NoSync).
func (s *Dir) Put(_ context.Context, name string, data []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tmpN++
	tmp := filepath.Join(dir, fmt.Sprintf("%s%d.%d", tmpPrefix, os.Getpid(), s.tmpN))
	if err := s.writeTemp(tmp, data); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return err
	}
	if s.NoSync {
		return nil
	}
	return syncDir(dir)
}

func (s *Dir) writeTemp(tmp string, data []byte) error {
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if !s.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// syncDir fsyncs a directory so a preceding rename in it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get implements Store.
func (s *Dir) Get(_ context.Context, name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return data, err
}

// GetRange implements Store.
func (s *Dir) GetRange(_ context.Context, name string, off, length int64) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if off < 0 || off > st.Size() {
		return nil, fmt.Errorf("%w: offset %d outside object %s of %d bytes", ErrBadRange, off, name, st.Size())
	}
	if length < 0 || off+length > st.Size() {
		length = st.Size() - off
	}
	out := make([]byte, length)
	if _, err := f.ReadAt(out, off); err != nil {
		return nil, err
	}
	return out, nil
}

// Delete implements Store.
func (s *Dir) Delete(_ context.Context, name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return err
}

// List implements Store.
func (s *Dir) List(_ context.Context, prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(s.root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(path.Base(rel), tmpPrefix) {
			return nil
		}
		if strings.HasPrefix(rel, prefix) {
			out = append(out, rel)
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// Size implements Store.
func (s *Dir) Size(_ context.Context, name string) (int64, error) {
	p, err := s.path(name)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(p)
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
