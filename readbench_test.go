package lsvd

// Read-miss-path benchmark (paper §4.2.1, Fig 6/7): a QD sweep of
// random 4 KiB cold reads and a cold 1 MiB sequential read against a
// backend with simulated range-GET latency, comparing the serial miss
// path (FetchDepth 1, the pre-fan-out behavior) with the parallel
// fetcher pool. Runs as a quick smoke test under `make check`; `make
// bench-read` sets LSVD_READBENCH_OUT to record BENCH_readpath.json
// for the perf trajectory.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"lsvd/internal/objstore"
)

// slowGetStore adds a fixed latency to every backend range GET,
// modeling an S3 endpoint (paper Table 6: ~5.9 ms per range request;
// we use 2 ms to keep the smoke run fast — only ratios matter).
type slowGetStore struct {
	ObjectStore
	delay time.Duration
}

func (s *slowGetStore) GetRange(ctx context.Context, name string, off, length int64) ([]byte, error) {
	time.Sleep(s.delay)
	return s.ObjectStore.GetRange(ctx, name, off, length)
}

const benchGetLatency = 2 * time.Millisecond

type readBenchResult struct {
	Name       string  `json:"name"`
	FetchDepth int     `json:"fetch_depth"`
	QD         int     `json:"qd"`
	Ops        int     `json:"ops"`
	NsPerOp    int64   `json:"ns_per_op"`
	MBPerSec   float64 `json:"mb_per_s"`
	GETsPerOp  float64 `json:"gets_per_op"`
}

// newColdReadDisk seeds blocks 4 KiB apart at a 64 KiB stride (so the
// map keeps one run per block), destages, and reopens with an empty
// cache: every read must take the backend miss path.
func newColdReadDisk(t *testing.T, met *objstore.Metered, fetchDepth, blocks int) *Disk {
	t.Helper()
	opts := VolumeOptions{
		Name:  fmt.Sprintf("readbench-%d", fetchDepth),
		Store: met, Cache: MemCacheDevice(256 * MiB),
		Size:       int64(blocks) * 64 * KiB * 2,
		BatchBytes: 1 * MiB,
		// One-sector window: no temporal prefetch, no window sharing —
		// the sweep measures pure miss fan-out.
		PrefetchBytes: 512,
		FetchDepth:    fetchDepth,
	}
	d, err := Create(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for b := 0; b < blocks; b++ {
		buf[0] = byte(b)
		if err := d.WriteAt(buf, int64(b)*64*KiB); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	opts.Cache = MemCacheDevice(256 * MiB)
	d, err = Open(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestReadPathQDSweep measures random 4 KiB cold-read throughput at
// queue depths 1..8 for FetchDepth 1 (serial baseline) and 8, plus the
// cold fragmented 1 MiB sequential read, and asserts the parallel path
// clears 2x the serial throughput at QD 8.
func TestReadPathQDSweep(t *testing.T) {
	var results []readBenchResult
	throughput := map[int]float64{} // FetchDepth -> QD8 MB/s

	for _, depth := range []int{1, 8} {
		for _, qd := range []int{1, 2, 4, 8} {
			const perWorker = 20
			blocks := qd * perWorker
			met := objstore.NewMetered(&slowGetStore{ObjectStore: MemStore(), delay: benchGetLatency})
			d := newColdReadDisk(t, met, depth, blocks)
			met.Reset()

			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < qd; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					rd := make([]byte, 4096)
					// Each worker owns a disjoint shuffled block range:
					// all reads stay cold, none dedup against another.
					order := rng.Perm(perWorker)
					for _, i := range order {
						if err := d.ReadAt(rd, int64(w*perWorker+i)*64*KiB); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			ops := qd * perWorker
			gets := met.Stats().GetRanges
			res := readBenchResult{
				Name: "rand4k-cold", FetchDepth: depth, QD: qd, Ops: ops,
				NsPerOp:   elapsed.Nanoseconds() / int64(ops),
				MBPerSec:  float64(ops) * 4096 / elapsed.Seconds() / 1e6,
				GETsPerOp: float64(gets) / float64(ops),
			}
			results = append(results, res)
			if qd == 8 {
				throughput[depth] = res.MBPerSec
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			t.Logf("rand4k-cold depth=%d qd=%d: %6.0f ns/op %6.2f MB/s %4.2f GETs/op",
				depth, qd, float64(res.NsPerOp), res.MBPerSec, res.GETsPerOp)
		}
	}

	// Cold 1 MiB sequential read over a fragmented map: 16 blocks of
	// 64 KiB were destaged into separate batches, so the read fans out
	// across several objects.
	for _, depth := range []int{1, 8} {
		met := objstore.NewMetered(&slowGetStore{ObjectStore: MemStore(), delay: benchGetLatency})
		opts := VolumeOptions{
			Name:  fmt.Sprintf("seqbench-%d", depth),
			Store: met, Cache: MemCacheDevice(256 * MiB),
			Size: 64 * MiB, BatchBytes: 256 * KiB,
			PrefetchBytes: 512, FetchDepth: depth,
		}
		d, err := Create(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		chunk := make([]byte, 64*KiB)
		for off := int64(0); off < 1*MiB; off += int64(len(chunk)) {
			chunk[0] = byte(off >> 16)
			if err := d.WriteAt(chunk, off); err != nil {
				t.Fatal(err)
			}
			if err := d.Flush(); err != nil { // one object per chunk
				t.Fatal(err)
			}
		}
		if err := d.Drain(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		opts.Cache = MemCacheDevice(256 * MiB)
		d, err = Open(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		met.Reset()
		rd := make([]byte, 1*MiB)
		start := time.Now()
		if err := d.ReadAt(rd, 0); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		gets := met.Stats().GetRanges
		results = append(results, readBenchResult{
			Name: "seqread-1m-cold", FetchDepth: depth, QD: 1, Ops: 1,
			NsPerOp:   elapsed.Nanoseconds(),
			MBPerSec:  1.0 / elapsed.Seconds(),
			GETsPerOp: float64(gets),
		})
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("seqread-1m-cold depth=%d: %.2f ms, %d GETs", depth, float64(elapsed.Microseconds())/1000, gets)
	}

	// Acceptance: >=2x at QD 8 vs the serial path under the same
	// simulated backend latency.
	if throughput[8] < 2*throughput[1] {
		t.Errorf("QD8 parallel path %.2f MB/s < 2x serial %.2f MB/s", throughput[8], throughput[1])
	}

	if out := os.Getenv("LSVD_READBENCH_OUT"); out != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
