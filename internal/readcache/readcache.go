// Package readcache implements LSVD's SSD read cache (paper §3.1).
// Unlike the write-back cache it holds only clean data fetched from the
// backend, so its metadata needs no logging: losing the map merely
// costs re-fetches. The cache allocates space in large slabs, evicting
// whole slabs FIFO (the prototype's policy) or by LRU, and keeps an
// in-memory extent map from vLBA to SSD location that is periodically
// persisted to a reserved region to avoid cold restarts (§3.2).
//
// Write-after-read hazards — a backend fetch racing with a newer client
// write — are handled two ways: reads always consult the write cache
// first (§3.1), and the core invalidates overlapping read-cache entries
// on every write so that stale data cannot be exposed after the write
// cache evicts the newer copy.
package readcache

import (
	"encoding/binary"
	"fmt"
	"sync"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/journal"
	"lsvd/internal/simdev"
)

// Policy selects the slab eviction policy.
type Policy int

const (
	// FIFO evicts the oldest-filled slab, as in the paper's prototype.
	FIFO Policy = iota
	// LRU evicts the slab least recently hit.
	LRU
)

// Config configures a read cache.
type Config struct {
	// SlabBytes is the allocation/eviction unit. Default 4 MiB.
	SlabBytes int64
	// Policy is the eviction policy. Default FIFO.
	Policy Policy
	// MapBytes reserves space for map persistence. Default 16 MiB.
	MapBytes int64
}

func (c *Config) setDefaults() {
	if c.SlabBytes == 0 {
		c.SlabBytes = 4 * block.MiB
	}
	if c.MapBytes == 0 {
		c.MapBytes = 16 * block.MiB
	}
}

type slab struct {
	idx      int
	gen      uint32 // generation: bumped on reuse, stored in map targets
	fill     int64  // bytes used
	lastHit  uint64 // logical clock of last lookup hit
	inserted []block.Extent
}

// Stats reports cache activity.
type Stats struct {
	Slabs, LiveSlabs   int
	Hits, Misses       uint64
	Inserts            uint64
	SlabEvictions      uint64
	MapExtents         int
	PersistedMapBytes  int64
	PrefetchHitSectors uint64 // hit sectors that were inserted by prefetch
}

// Cache is a slab-based SSD read cache.
type Cache struct {
	mu  sync.Mutex
	dev simdev.Device
	cfg Config

	dataStart int64
	slabs     []*slab
	order     []int // fill/reuse order (FIFO queue of slab indices)
	active    int   // slab currently being filled, -1 if none
	clock     uint64
	nextGen   uint32

	m *extmap.Map
	// pf marks vLBA ranges whose cached copy came from temporal
	// prefetch rather than a demand miss; hits on them feed the
	// PrefetchHitSectors counter (how much the read-ahead actually
	// earned). Stats-only: it is not persisted, so a restart merely
	// forgets the tags.
	pf *extmap.Map

	hits, misses, inserts, evictions uint64
	pfHitSectors                     uint64
	persistedBytes                   int64
}

// New builds a read cache on dev, attempting to load a persisted map.
func New(dev simdev.Device, cfg Config) (*Cache, error) {
	cfg.setDefaults()
	c := &Cache{dev: dev, cfg: cfg, m: extmap.New(), pf: extmap.New(), active: -1, nextGen: 1}
	c.dataStart = block.BlockSize + cfg.MapBytes
	n := (dev.Size() - c.dataStart) / cfg.SlabBytes
	if n < 2 {
		return nil, fmt.Errorf("readcache: device of %d bytes holds %d slabs; need >= 2", dev.Size(), n)
	}
	for i := 0; i < int(n); i++ {
		c.slabs = append(c.slabs, &slab{idx: i})
	}
	c.loadMap() // best effort; failure just means a cold cache
	return c, nil
}

func (c *Cache) slabBase(idx int) int64 { return c.dataStart + int64(idx)*c.cfg.SlabBytes }

// Lookup returns the cache's coverage of ext and bumps hit statistics.
func (c *Cache) Lookup(ext block.Extent) []extmap.Run {
	c.mu.Lock()
	defer c.mu.Unlock()
	runs := c.m.Lookup(ext)
	hit := false
	for _, r := range runs {
		if r.Present {
			hit = true
			c.clock++
			if s := c.slabOfTarget(r.Target); s != nil {
				s.lastHit = c.clock
			}
			c.notePrefetchHit(r.Extent)
		}
	}
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	return runs
}

// notePrefetchHit credits hit sectors that prefetch (rather than a
// demand miss) brought into the cache.
func (c *Cache) notePrefetchHit(ext block.Extent) {
	if c.pf.Len() == 0 {
		return
	}
	for _, pr := range c.pf.Lookup(ext) {
		if pr.Present {
			c.pfHitSectors += uint64(pr.Sectors)
		}
	}
}

func (c *Cache) slabOfTarget(t extmap.Target) *slab {
	off := t.Off.Bytes()
	if off < c.dataStart {
		return nil
	}
	idx := int((off - c.dataStart) / c.cfg.SlabBytes)
	if idx < 0 || idx >= len(c.slabs) || c.slabs[idx].gen != t.Obj {
		return nil
	}
	return c.slabs[idx]
}

// ReadAt reads cached data previously located via Lookup. Under
// concurrency a Lookup target can be evicted before the read; callers
// on the data path should use ReadExtent, which holds the lock across
// lookup and read.
func (c *Cache) ReadAt(t extmap.Target, buf []byte) error {
	return c.dev.ReadAt(buf, t.Off.Bytes())
}

// ReadExtent looks up ext, bumps hit statistics, and reads every
// present run into the matching positions of buf (len(buf) ==
// ext.Bytes()), all under one lock acquisition so a concurrent slab
// eviction cannot reuse the space mid-read. Absent runs are returned
// untouched for the caller's next level.
func (c *Cache) ReadExtent(ext block.Extent, buf []byte) ([]extmap.Run, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	runs := c.m.Lookup(ext)
	hit := false
	for _, r := range runs {
		if !r.Present {
			continue
		}
		hit = true
		c.clock++
		if s := c.slabOfTarget(r.Target); s != nil {
			s.lastHit = c.clock
		}
		c.notePrefetchHit(r.Extent)
		off := (r.LBA - ext.LBA).Bytes()
		if err := c.dev.ReadAt(buf[off:off+r.Bytes()], r.Target.Off.Bytes()); err != nil {
			return nil, err
		}
	}
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	return runs, nil
}

// Insert stores fetched backend data for ext, splitting across slabs
// as needed and evicting old slabs when the cache is full.
func (c *Cache) Insert(ext block.Extent, data []byte) error {
	return c.insert(ext, data, false)
}

// InsertPrefetched is Insert for data brought in by temporal prefetch
// rather than a demand miss; later hits on it are counted separately
// so bench runs can report what the read-ahead earned.
func (c *Cache) InsertPrefetched(ext block.Extent, data []byte) error {
	return c.insert(ext, data, true)
}

func (c *Cache) insert(ext block.Extent, data []byte, prefetched bool) error {
	if int64(len(data)) != ext.Bytes() {
		return fmt.Errorf("readcache: extent %v does not match %d data bytes", ext, len(data))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prefetched {
		// Identity target (Off = LBA) so adjacent tags merge in the map.
		c.pf.Update(ext, extmap.Target{Off: ext.LBA})
	} else if c.pf.Len() > 0 {
		c.pf.Delete(ext) // demand data over a prefetched range drops the tag
	}
	for ext.Sectors > 0 {
		s, err := c.writableSlab()
		if err != nil {
			return err
		}
		room := c.cfg.SlabBytes - s.fill
		take := ext.Bytes()
		if take > room {
			take = room &^ (block.SectorSize - 1)
		}
		sectors := uint32(take >> block.SectorShift)
		sub := block.Extent{LBA: ext.LBA, Sectors: sectors}
		off := c.slabBase(s.idx) + s.fill
		if err := c.dev.WriteAt(data[:take], off); err != nil {
			return err
		}
		c.m.Update(sub, extmap.Target{Obj: s.gen, Off: block.LBAFromBytes(off)})
		s.inserted = append(s.inserted, sub)
		s.fill += take
		c.inserts++
		data = data[take:]
		ext.LBA += block.LBA(sectors)
		ext.Sectors -= sectors
	}
	return nil
}

// writableSlab returns the active slab with space, advancing to a
// fresh or evicted slab as needed.
func (c *Cache) writableSlab() (*slab, error) {
	if c.active >= 0 && c.slabs[c.active].fill < c.cfg.SlabBytes {
		return c.slabs[c.active], nil
	}
	// Find an unused slab.
	for _, s := range c.slabs {
		if s.gen == 0 {
			s.gen = c.nextGen
			c.nextGen++
			c.active = s.idx
			c.order = append(c.order, s.idx)
			return s, nil
		}
	}
	// Evict one.
	victim := c.pickVictim()
	c.evict(victim)
	s := c.slabs[victim]
	s.gen = c.nextGen
	c.nextGen++
	c.active = s.idx
	c.order = append(c.order, s.idx)
	return s, nil
}

func (c *Cache) pickVictim() int {
	switch c.cfg.Policy {
	case LRU:
		best, bestHit := -1, uint64(1<<63)
		for _, s := range c.slabs {
			if s.idx == c.active {
				continue
			}
			if s.lastHit < bestHit {
				best, bestHit = s.idx, s.lastHit
			}
		}
		return best
	default: // FIFO: oldest in fill order that isn't active
		for i, idx := range c.order {
			if idx != c.active {
				c.order = append(c.order[:i], c.order[i+1:]...)
				return idx
			}
		}
		return 0
	}
}

func (c *Cache) evict(idx int) {
	s := c.slabs[idx]
	lo := block.LBAFromBytes(c.slabBase(idx))
	hi := lo + block.LBA(c.cfg.SlabBytes>>block.SectorShift)
	gen := s.gen
	for _, ext := range s.inserted {
		c.m.DeleteIf(ext, func(r extmap.Run) bool {
			return r.Target.Obj == gen && r.Target.Off >= lo && r.Target.Off < hi
		})
	}
	if c.cfg.Policy == LRU {
		// Remove from order queue too (FIFO removes in pickVictim).
		for i, o := range c.order {
			if o == idx {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
	// Drop prefetch tags for whatever the eviction actually removed
	// (overlapping data re-inserted into newer slabs keeps its tag).
	if c.pf.Len() > 0 {
		for _, ext := range s.inserted {
			for _, r := range c.m.Lookup(ext) {
				if !r.Present {
					c.pf.Delete(r.Extent)
				}
			}
		}
	}
	s.inserted = nil
	s.fill = 0
	s.lastHit = 0
	c.evictions++
}

// Invalidate drops any cached data overlapping ext (called by the core
// on every client write).
func (c *Cache) Invalidate(ext block.Extent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.Delete(ext)
	if c.pf.Len() > 0 {
		c.pf.Delete(ext)
	}
}

// Persist writes the map to the reserved region (best effort; §3.2:
// "the read cache map is periodically persisted to SSD").
func (c *Cache) Persist() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	mapBytes, err := c.m.MarshalBinary()
	if err != nil {
		return err
	}
	// Slab table: idx, gen, fill per slab.
	table := make([]byte, 4+len(c.slabs)*16)
	binary.LittleEndian.PutUint32(table, uint32(len(c.slabs)))
	for i, s := range c.slabs {
		p := table[4+i*16:]
		binary.LittleEndian.PutUint32(p, s.gen)
		binary.LittleEndian.PutUint64(p[4:], uint64(s.fill))
		binary.LittleEndian.PutUint32(p[12:], 0)
	}
	payload := append(table, mapBytes...)
	rec, err := journal.Encode(&journal.Header{Type: journal.TypeCheckpoint, Seq: 1, DataLen: uint64(len(payload))}, payload, true)
	if err != nil {
		return err
	}
	if int64(len(rec)) > c.cfg.MapBytes {
		return fmt.Errorf("readcache: persisted map of %d bytes exceeds reserved %d", len(rec), c.cfg.MapBytes)
	}
	if err := c.dev.WriteAt(rec, block.BlockSize); err != nil {
		return err
	}
	c.persistedBytes = int64(len(rec))
	return c.dev.Flush()
}

// loadMap attempts to restore a persisted map; any failure leaves the
// cache cold, which is safe.
func (c *Cache) loadMap() {
	hdr := make([]byte, block.BlockSize)
	if err := c.dev.ReadAt(hdr, block.BlockSize); err != nil {
		return
	}
	h, _, err := journal.DecodeHeader(hdr)
	if err != nil || h.Type != journal.TypeCheckpoint {
		return
	}
	total := int64(journal.AlignedHeaderSize(len(h.Extents))) + int64(h.DataLen)
	total = (total + block.BlockSize - 1) &^ (block.BlockSize - 1)
	if total > c.cfg.MapBytes {
		return
	}
	full := make([]byte, total)
	if err := c.dev.ReadAt(full, block.BlockSize); err != nil {
		return
	}
	_, payload, _, err := journal.Decode(full, true)
	if err != nil || len(payload) < 4 {
		return
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if n != len(c.slabs) || len(payload) < 4+n*16 {
		return
	}
	maxGen := uint32(0)
	for i := 0; i < n; i++ {
		p := payload[4+i*16:]
		c.slabs[i].gen = binary.LittleEndian.Uint32(p)
		c.slabs[i].fill = int64(binary.LittleEndian.Uint64(p[4:]))
		if c.slabs[i].gen > maxGen {
			maxGen = c.slabs[i].gen
		}
		if c.slabs[i].gen != 0 {
			c.order = append(c.order, i)
		}
	}
	c.nextGen = maxGen + 1
	if err := c.m.UnmarshalBinary(payload[4+n*16:]); err != nil {
		c.m.Reset()
		return
	}
	// Rebuild per-slab insert lists from the map so future evictions
	// can clean their entries.
	c.m.Foreach(func(ext block.Extent, t extmap.Target) bool {
		if s := c.slabOfTarget(t); s != nil {
			s.inserted = append(s.inserted, ext)
		}
		return true
	})
}

// Stats returns a snapshot of statistics.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := 0
	for _, s := range c.slabs {
		if s.gen != 0 {
			live++
		}
	}
	return Stats{
		Slabs: len(c.slabs), LiveSlabs: live,
		Hits: c.hits, Misses: c.misses, Inserts: c.inserts,
		SlabEvictions: c.evictions, MapExtents: c.m.Len(),
		PersistedMapBytes:  c.persistedBytes,
		PrefetchHitSectors: c.pfHitSectors,
	}
}
