// Package analysis is lsvd-vet's stdlib-only analyzer framework: a
// package loader built on `go list -export` + go/importer (no
// golang.org/x/tools), annotation parsing for the lsvd directive
// grammar (//lsvd:lock, //lsvd:requires, //lsvd:classifies-errors,
// //lsvd:ignore), a lock-flow walker and interprocedural effect
// summaries shared by the concurrency analyzers, and the ten analyzers
// themselves (annform, chanleak, ctxflow, deferorder, errclass,
// goroguard, lockheld, lockorder, sectmath, spinwait). See DESIGN.md
// §5e.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader type-checks packages from syntax, resolving every import —
// stdlib and module alike — through compiler export data discovered
// with one `go list -export -deps -json` run. Only target packages pay
// for parsing; dependencies come from their .a files, which is what
// keeps the driver stdlib-only: go/importer's default lookup cannot
// find stdlib export data on modern toolchains, so we hand it the
// paths the go command reports.
type Loader struct {
	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// NewLoader lists patterns (with dependencies and export data) in dir
// and returns a loader plus the type-checked target packages, sorted
// by import path.
func NewLoader(dir string, patterns ...string) (*Loader, []*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list failed: %v\n%s", err, stderr.String())
	}

	l := &Loader{
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
	}
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := l.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return l, pkgs, nil
}

// LoadDir parses and type-checks every .go file in dir as one package
// under the given import path. It serves the self-test harness, whose
// seeded-violation packages live in testdata/ (invisible to the go
// tool); their imports must be dependencies of the module proper so
// export data is available.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		// Self-test packages are analyzed, not tested; a stray _test.go
		// would be a separate test package and break type-checking.
		if strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(importPath, dir, files)
}

func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Files: files, Pkg: pkg, Info: info}, nil
}
